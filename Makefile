# Development targets for the ABCCC reproduction.
#
#   make build   compile everything
#   make test    full test suite (tier-1 gate: go build ./... && go test ./...)
#   make vet     static analysis
#   make race    race-check the concurrent packages (parallel metrics,
#                heap allocator equivalence, experiment worker pool, and the
#                goroutine-per-device emulator); slow on small machines
#   make bench   micro + experiment benchmarks with allocation counts
#   make bench-smoke  one fast suite pass diffed against the recorded
#                BENCH_pr1.json baseline; fails on a large regression
#   make fuzz-smoke  fuzz arbitrary fault schedules against the packet and
#                multipath-transport conservation invariants (serial and
#                sharded engines) for a few seconds each
#   make bench-scale  quick sharded-engine scaling sweep (1k servers); the
#                full 1k/10k/100k sweep is `cmd/benchsuite -scale`, recorded
#                as BENCH_pr6.json
#   make obsreport-smoke  render the committed F26 run record through
#                cmd/obsreport (terminal, HTML, diff) and assert malformed
#                input exits nonzero
#   make emu-smoke  pin the actor engine's accounting equivalence against the
#                goroutine oracle on small configs, then check 1k-server
#                serving throughput against the committed BENCH_emu_smoke.json
#                baseline (generous threshold; CI machines are noisy)
#   make svc-smoke  validate and statically analyze the committed 3-tier
#                service graph through cmd/simulate, run it under a switch
#                outage, and re-check the smoke-scale F30 retry-storm grid
#                for byte determinism
#   make surv-smoke  run seeded lifetime trials through cmd/simulate (wear-out
#                and churn), render the committed surv run record through
#                cmd/obsreport, and re-check the smoke-scale F31 survivability
#                figure for byte determinism across GOMAXPROCS
#   make check   everything a PR must pass locally

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race bench bench-smoke bench-scale fuzz-smoke obsreport-smoke emu-smoke svc-smoke surv-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The experiments package replays whole figures under the race detector;
# on a small CI machine that can blow go test's default 10m per-package
# timeout, so the budget is explicit.
race:
	$(GO) test -race -timeout 30m ./internal/experiments ./internal/graph ./internal/flowsim ./internal/emu ./internal/obs ./internal/packetsim ./internal/eventq ./internal/failure ./internal/svc ./internal/surv ./internal/bcube ./internal/topotest

bench:
	$(GO) test -bench=. -benchmem -run XXX .
	$(GO) test -bench=MaxMin -benchmem -run XXX ./internal/flowsim
	$(GO) test -bench=. -benchmem -run XXX ./internal/obs
	$(GO) test -bench=BenchmarkRun -benchmem -run XXX ./internal/packetsim ./internal/emu

# The 10x threshold only catches order-of-magnitude blowups: CI machines are
# shared and noisy, so a tight gate would flake. Use `cmd/benchsuite
# -compare old.json new.json` locally for real before/after numbers.
bench-smoke:
	$(GO) run ./cmd/benchsuite -compare BENCH_pr1.json -threshold 10

bench-scale:
	$(GO) run ./cmd/benchsuite -scale -sizes 1k -shards 1,2,4,8

# go test accepts one -fuzz target at a time, so each invariant gets its own
# invocation.
fuzz-smoke:
	$(GO) test ./internal/packetsim -run XXX -fuzz FuzzFaultPlanConservation -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packetsim -run XXX -fuzz FuzzMultipathConservation -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packetsim -run XXX -fuzz FuzzShardConservation -fuzztime $(FUZZTIME)
	$(GO) test ./internal/svc -run XXX -fuzz FuzzSvcConservation -fuzztime $(FUZZTIME)

# Equivalence first (the engines must agree message-for-message on
# overflow-free configs), then throughput: a fresh 1k sweep must not lose
# more than 75% of the committed baseline's msgs/sec — loose enough for
# shared CI machines, tight enough to catch an engine falling off a cliff.
emu-smoke:
	$(GO) test -run 'TestEngineMatchesReference|TestEngineShardCountInvariance' ./internal/emu
	$(GO) run ./cmd/benchsuite -scale -engine emu -sizes 1k -baseline BENCH_emu_smoke.json -threshold 0.75 > /dev/null

# Renders every obsreport mode against the committed fixture, then checks
# the failure path: malformed JSONL must exit nonzero.
obsreport-smoke:
	$(GO) run ./cmd/obsreport cmd/obsreport/testdata/f26.jsonl.gz
	$(GO) run ./cmd/obsreport cmd/obsreport/testdata/svc.jsonl.gz
	$(GO) run ./cmd/obsreport -html /tmp/obsreport-smoke.html cmd/obsreport/testdata/f26.jsonl.gz
	$(GO) run ./cmd/obsreport -diff cmd/obsreport/testdata/f26.jsonl.gz cmd/obsreport/testdata/mini.jsonl
	printf '{not json\n' > /tmp/obsreport-smoke-bad.jsonl
	! $(GO) run ./cmd/obsreport /tmp/obsreport-smoke-bad.jsonl 2>/dev/null

# The committed 3-tier graph must validate and analyze through the CLI, run
# under a one-switch outage with a fault timeline, and the smoke-scale F30
# grid must reproduce byte for byte.
svc-smoke:
	$(GO) run ./cmd/simulate -topo abccc -sim svc -graph internal/svc/testdata/3tier.json -policy none -requests 1
	$(GO) run ./cmd/simulate -topo abccc -sim svc -graph 3tier -policy throttle -rate 4000 -deadline 60ms -requests 80 \
		-faults switches -mtbf 5ms -mttr 20ms
	$(GO) test ./internal/experiments -run TestRetryStormSmokeDeterministic -count=1

# Seeded lifetime trials through the CLI (wear-out MTTF and repairable
# churn), the committed surv run record through obsreport, and the
# smoke-scale F31 figure re-checked for byte determinism.
surv-smoke:
	$(GO) run ./cmd/simulate -topo abccc -sim surv -trials 8 -horizon 30y
	$(GO) run ./cmd/simulate -topo bcube -n 4 -k 1 -sim surv -churn \
		-classes "switches=2d:4h,links=5d:2h" -horizon 30d -trials 4
	$(GO) run ./cmd/obsreport cmd/obsreport/testdata/surv.jsonl.gz
	$(GO) test ./internal/experiments -run TestSurvSmokeDeterministic -count=1

check: build vet test race
