// Package repro's benchmarks regenerate every table and figure of the
// reconstructed ABCCC evaluation (one benchmark per experiment ID in
// DESIGN.md), plus micro-benchmarks of the primitives. Run with:
//
//	go test -bench=. -benchmem
//
// Human-readable experiment output comes from `go run ./cmd/benchsuite`.
package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/flowsim"
	"repro/internal/metrics"
	"repro/internal/packetsim"
	"repro/internal/planner"
	"repro/internal/traffic"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1Properties(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkT2NetworkSize(b *testing.B)    { benchExperiment(b, "T2") }
func BenchmarkF1Diameter(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2ASPL(b *testing.B)           { benchExperiment(b, "F2") }
func BenchmarkF3Bisection(b *testing.B)      { benchExperiment(b, "F3") }
func BenchmarkF4CapEx(b *testing.B)          { benchExperiment(b, "F4") }
func BenchmarkF5Permutation(b *testing.B)    { benchExperiment(b, "F5") }
func BenchmarkF6ABT(b *testing.B)            { benchExperiment(b, "F6") }
func BenchmarkF7ServerFailures(b *testing.B) { benchExperiment(b, "F7") }
func BenchmarkF8SwitchFailures(b *testing.B) { benchExperiment(b, "F8") }
func BenchmarkF9LinkFailures(b *testing.B)   { benchExperiment(b, "F9") }
func BenchmarkF10ParallelPaths(b *testing.B) { benchExperiment(b, "F10") }
func BenchmarkF11Expansion(b *testing.B)     { benchExperiment(b, "F11") }
func BenchmarkF12PacketSim(b *testing.B)     { benchExperiment(b, "F12") }
func BenchmarkF13PortTradeoff(b *testing.B)  { benchExperiment(b, "F13") }
func BenchmarkF14Broadcast(b *testing.B)     { benchExperiment(b, "F14") }

// Micro-benchmarks of the core primitives.

func BenchmarkBuildABCCC(b *testing.B) {
	cfg := core.Config{N: 8, K: 2, P: 3} // 1024 servers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteABCCC(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 8, K: 2, P: 3})
	servers := tp.Network().Servers()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if _, err := tp.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelPathsABCCC(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 8, K: 2, P: 3})
	servers := tp.Network().Servers()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src != dst && tp.ParallelPaths(src, dst) == nil {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkBroadcastTreeABCCC(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2})
	root := tp.Network().Server(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.BroadcastTree(root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinFairPermutation(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 2}) // 192 servers
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	paths, err := flowsim.RoutePaths(tp, flows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowsim.MaxMinFair(tp.Network(), paths); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinFairPermutationLarge(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 8, K: 2, P: 3}) // 1024 servers
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	paths, err := flowsim.RoutePaths(tp, flows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowsim.MaxMinFair(tp.Network(), paths); err != nil {
			b.Fatal(err)
		}
	}
}

// All-pairs metric benchmarks: BFS fans out over every server source with
// per-worker scratch (internal/graph.ForEachBFS).

func BenchmarkDiameterLinksABCCC(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 8, K: 2, P: 3}) // 1024 servers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.DiameterLinks(tp.Network()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkASPLExactABCCC(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 2, P: 3}) // 128 servers, all sources
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.ASPL(tp.Network(), 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketSimUniform(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Uniform(tp.Network().NumServers(), 16, rng)
	cfg := packetsim.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packetsim.Run(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF15Emulation(b *testing.B)   { benchExperiment(b, "F15") }
func BenchmarkF16LoadBalance(b *testing.B) { benchExperiment(b, "F16") }

func BenchmarkEmulatorPermutation(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := emu.Run(tp, flows)
		if err != nil || stats.Delivered != len(flows) {
			b.Fatalf("stats %+v err %v", stats, err)
		}
	}
}

func BenchmarkNextHop(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 8, K: 2, P: 3})
	servers := tp.Network().Servers()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if _, err := tp.NextHop(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF17Incremental(b *testing.B) { benchExperiment(b, "F17") }
func BenchmarkF18ShuffleFCT(b *testing.B)  { benchExperiment(b, "F18") }

func BenchmarkBuildPartial(b *testing.B) {
	cfg := core.Config{N: 8, K: 1, P: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPartial(cfg, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF19Transport(b *testing.B) { benchExperiment(b, "F19") }

func BenchmarkTransportShuffle(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows, err := traffic.Shuffle(tp.Network().NumServers(), 4, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := packetsim.DefaultTransport()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packetsim.RunTransport(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF20ControlPlane(b *testing.B) { benchExperiment(b, "F20") }

func BenchmarkF21Reconvergence(b *testing.B) { benchExperiment(b, "F21") }

func BenchmarkF22SinglePointsOfFailure(b *testing.B) { benchExperiment(b, "F22") }

func BenchmarkT3WiringComplexity(b *testing.B) { benchExperiment(b, "T3") }

func BenchmarkF23Collectives(b *testing.B) { benchExperiment(b, "F23") }

func BenchmarkF24GrowWhileServing(b *testing.B) { benchExperiment(b, "F24") }

func BenchmarkF25LatencyVsLoad(b *testing.B) { benchExperiment(b, "F25") }

func BenchmarkF26RecoveryTimeline(b *testing.B) { benchExperiment(b, "F26") }

func BenchmarkF27GracefulDegradation(b *testing.B) { benchExperiment(b, "F27") }

func BenchmarkF28ShardScaling(b *testing.B) { benchExperiment(b, "F28") }

func BenchmarkF29ServingWorkloads(b *testing.B) { benchExperiment(b, "F29") }

func BenchmarkF30RetryStorm(b *testing.B) { benchExperiment(b, "F30") }

func BenchmarkF31Survivability(b *testing.B) { benchExperiment(b, "F31") }

func BenchmarkPlannerSearch(b *testing.B) {
	req := planner.Requirements{MinServers: 5000, MaxServerPorts: 4, MaxSwitchPorts: 48}
	model := cost.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(req, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDVColdStart(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emu.RunDV(tp, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChaosSchedule(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emu.Chaos(tp, 10, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}
