package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunSimulations(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		want    string
		wantErr bool
	}{
		{
			name: "abccc flow permutation",
			args: []string{"-topo", "abccc", "-n", "4", "-k", "1", "-p", "3", "-pattern", "permutation"},
			want: "max-min fair",
		},
		{
			name: "bccc flow alltoall",
			args: []string{"-topo", "bccc", "-n", "3", "-k", "1", "-pattern", "alltoall"},
			want: "ABT",
		},
		{
			name: "bcube packet uniform",
			args: []string{"-topo", "bcube", "-n", "4", "-k", "1", "-pattern", "uniform", "-sim", "packet", "-count", "8"},
			want: "packet sim",
		},
		{
			name: "dcell flow incast",
			args: []string{"-topo", "dcell", "-n", "3", "-k", "1", "-pattern", "incast"},
			want: "bottleneck",
		},
		{
			name: "fattree packet shuffle",
			args: []string{"-topo", "fattree", "-k", "4", "-pattern", "shuffle", "-sim", "packet"},
			want: "delivered",
		},
		{
			name: "hotspot",
			args: []string{"-topo", "abccc", "-pattern", "hotspot", "-count", "20"},
			want: "max-min fair",
		},
		{
			name: "packet with faults",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "packet", "-faults", "links"},
			want: "fault timeline",
		},
		{
			name: "transport with faults",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport", "-faults", "switches, links"},
			want: "reroutes",
		},
		{
			name: "transport multipath",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport", "-faults", "switches", "-multipath", "-paths", "3"},
			want: "failovers",
		},
		{name: "bad topo", args: []string{"-topo", "torus"}, wantErr: true},
		{name: "bad pattern", args: []string{"-pattern", "chaos"}, wantErr: true},
		{name: "bad sim", args: []string{"-sim", "quantum"}, wantErr: true},
		{name: "bad config", args: []string{"-topo", "fattree", "-k", "3"}, wantErr: true},
		{name: "faults with flow sim", args: []string{"-sim", "flow", "-faults", "links"}, wantErr: true},
		{name: "bad fault kind", args: []string{"-sim", "packet", "-faults", "gremlins"}, wantErr: true},
		{name: "bad mtbf", args: []string{"-sim", "packet", "-faults", "links", "-mtbf", "0s"}, wantErr: true},
		{name: "multipath with flow sim", args: []string{"-sim", "flow", "-multipath"}, wantErr: true},
		{name: "multipath without faults", args: []string{"-sim", "transport", "-multipath"}, wantErr: true},
		{name: "paths without multipath", args: []string{"-sim", "transport", "-faults", "switches", "-paths", "2"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("run(%v) succeeded; output:\n%s", tt.args, buf.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(buf.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, buf.String())
			}
		})
	}
}

// TestFaultRunDeterministic: the seeded fault schedule and both engines are
// deterministic, so the whole report must reproduce byte for byte.
func TestFaultRunDeterministic(t *testing.T) {
	args := []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport",
		"-faults", "switches,links", "-seed", "9"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same seed, different reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestWorkloadDefaults(t *testing.T) {
	// All pattern helpers must produce non-empty workloads even on small
	// server counts.
	for _, pattern := range []string{"permutation", "alltoall", "uniform", "incast", "shuffle", "hotspot"} {
		var buf bytes.Buffer
		args := []string{"-topo", "abccc", "-n", "2", "-k", "1", "-p", "2", "-pattern", pattern}
		if err := run(args, &buf); err != nil {
			t.Errorf("pattern %s on tiny net: %v", pattern, err)
		}
	}
}

// TestMetricsSummary is the acceptance contract: `-sim packet -metrics`
// prints a drop-cause/latency-histogram summary after the run.
func TestMetricsSummary(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-pattern", "alltoall", "-sim", "packet", "-metrics"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"instrumentation summary",
		"packetsim_delivered",
		"packetsim_dropped_droptail",
		"packetsim_latency_ns",
		"packetsim_queue_depth_pkts",
		"p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsSummaryFlowAndTransport(t *testing.T) {
	for sim, want := range map[string]string{
		"flow":      "flowsim_rounds",
		"transport": "transport_completed_flows",
	} {
		var buf bytes.Buffer
		args := []string{"-topo", "abccc", "-pattern", "permutation", "-sim", sim, "-metrics"}
		if err := run(args, &buf); err != nil {
			t.Fatalf("sim %s: %v", sim, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("sim %s summary missing %q:\n%s", sim, want, buf.String())
		}
	}
}

// TestHopTraceJSONL exercises -trace end to end: the written file must be
// valid JSONL that parses back into hop events.
func TestHopTraceJSONL(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "hops.jsonl")
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-pattern", "permutation", "-sim", "packet", "-trace", traceFile}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}
	var delivers int
	for _, ev := range events {
		if ev.Kind == "deliver" {
			delivers++
		}
	}
	if delivers == 0 {
		t.Error("trace has no deliver events")
	}
	if err := run([]string{"-sim", "packet", "-trace", t.TempDir() + "/nope/x.jsonl"}, &buf); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

func TestPprofFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "abccc", "-pprof", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pprof: serving") {
		t.Errorf("output missing pprof banner:\n%s", buf.String())
	}
	if err := run([]string{"-pprof", "256.0.0.1:bad"}, &buf); err == nil {
		t.Error("bad pprof address accepted")
	}
}

func TestTraceSaveAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/wl.jsonl"
	var buf bytes.Buffer
	if err := run([]string{"-topo", "abccc", "-pattern", "permutation", "-save", trace}, &buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	buf.Reset()
	if err := run([]string{"-topo", "abccc", "-load", trace}, &buf); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(buf.String(), "trace:") {
		t.Errorf("replay output missing trace marker:\n%s", buf.String())
	}
	if err := run([]string{"-load", dir + "/missing.jsonl"}, &buf); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"-save", dir + "/nope/x.jsonl"}, &buf); err == nil {
		t.Error("unwritable save path accepted")
	}
}
