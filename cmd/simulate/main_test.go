package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSimulations(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		want    string
		wantErr bool
	}{
		{
			name: "abccc flow permutation",
			args: []string{"-topo", "abccc", "-n", "4", "-k", "1", "-p", "3", "-pattern", "permutation"},
			want: "max-min fair",
		},
		{
			name: "bccc flow alltoall",
			args: []string{"-topo", "bccc", "-n", "3", "-k", "1", "-pattern", "alltoall"},
			want: "ABT",
		},
		{
			name: "bcube packet uniform",
			args: []string{"-topo", "bcube", "-n", "4", "-k", "1", "-pattern", "uniform", "-sim", "packet", "-count", "8"},
			want: "packet sim",
		},
		{
			name: "dcell flow incast",
			args: []string{"-topo", "dcell", "-n", "3", "-k", "1", "-pattern", "incast"},
			want: "bottleneck",
		},
		{
			name: "fattree packet shuffle",
			args: []string{"-topo", "fattree", "-k", "4", "-pattern", "shuffle", "-sim", "packet"},
			want: "delivered",
		},
		{
			name: "hotspot",
			args: []string{"-topo", "abccc", "-pattern", "hotspot", "-count", "20"},
			want: "max-min fair",
		},
		{name: "bad topo", args: []string{"-topo", "torus"}, wantErr: true},
		{name: "bad pattern", args: []string{"-pattern", "chaos"}, wantErr: true},
		{name: "bad sim", args: []string{"-sim", "quantum"}, wantErr: true},
		{name: "bad config", args: []string{"-topo", "fattree", "-k", "3"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("run(%v) succeeded; output:\n%s", tt.args, buf.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(buf.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, buf.String())
			}
		})
	}
}

func TestWorkloadDefaults(t *testing.T) {
	// All pattern helpers must produce non-empty workloads even on small
	// server counts.
	for _, pattern := range []string{"permutation", "alltoall", "uniform", "incast", "shuffle", "hotspot"} {
		var buf bytes.Buffer
		args := []string{"-topo", "abccc", "-n", "2", "-k", "1", "-p", "2", "-pattern", pattern}
		if err := run(args, &buf); err != nil {
			t.Errorf("pattern %s on tiny net: %v", pattern, err)
		}
	}
}

func TestTraceSaveAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/wl.jsonl"
	var buf bytes.Buffer
	if err := run([]string{"-topo", "abccc", "-pattern", "permutation", "-save", trace}, &buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	buf.Reset()
	if err := run([]string{"-topo", "abccc", "-load", trace}, &buf); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(buf.String(), "trace:") {
		t.Errorf("replay output missing trace marker:\n%s", buf.String())
	}
	if err := run([]string{"-load", dir + "/missing.jsonl"}, &buf); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"-save", dir + "/nope/x.jsonl"}, &buf); err == nil {
		t.Error("unwritable save path accepted")
	}
}
