package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/svc"
)

func TestRunSimulations(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		want    string
		wantErr bool
	}{
		{
			name: "abccc flow permutation",
			args: []string{"-topo", "abccc", "-n", "4", "-k", "1", "-p", "3", "-pattern", "permutation"},
			want: "max-min fair",
		},
		{
			name: "bccc flow alltoall",
			args: []string{"-topo", "bccc", "-n", "3", "-k", "1", "-pattern", "alltoall"},
			want: "ABT",
		},
		{
			name: "bcube packet uniform",
			args: []string{"-topo", "bcube", "-n", "4", "-k", "1", "-pattern", "uniform", "-sim", "packet", "-count", "8"},
			want: "packet sim",
		},
		{
			name: "dcell flow incast",
			args: []string{"-topo", "dcell", "-n", "3", "-k", "1", "-pattern", "incast"},
			want: "bottleneck",
		},
		{
			name: "fattree packet shuffle",
			args: []string{"-topo", "fattree", "-k", "4", "-pattern", "shuffle", "-sim", "packet"},
			want: "delivered",
		},
		{
			name: "hotspot",
			args: []string{"-topo", "abccc", "-pattern", "hotspot", "-count", "20"},
			want: "max-min fair",
		},
		{
			name: "packet with faults",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "packet", "-faults", "links"},
			want: "fault timeline",
		},
		{
			name: "transport with faults",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport", "-faults", "switches, links"},
			want: "reroutes",
		},
		{
			name: "transport multipath",
			args: []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport", "-faults", "switches", "-multipath", "-paths", "3"},
			want: "failovers",
		},
		{
			name: "svc throttle with faults",
			args: []string{"-topo", "abccc", "-sim", "svc", "-graph", "3tier", "-policy", "throttle",
				"-faults", "switches", "-mtbf", "5ms", "-mttr", "20ms", "-requests", "60"},
			want: "fault timeline",
		},
		{
			name: "svc hedge chain healthy",
			args: []string{"-topo", "abccc", "-sim", "svc", "-graph", "chain", "-policy", "hedge", "-requests", "40"},
			want: "svc run: 40/40 completed",
		},
		{
			name: "svc multipath",
			args: []string{"-topo", "abccc", "-sim", "svc", "-policy", "fixed", "-requests", "40",
				"-faults", "switches", "-mtbf", "5ms", "-multipath", "-paths", "3"},
			want: "multipath:",
		},
		{
			name: "surv wearout",
			args: []string{"-topo", "abccc", "-sim", "surv", "-trials", "4", "-horizon", "20y"},
			want: "MTTF to first partition",
		},
		{
			name: "surv churn",
			args: []string{"-topo", "bcube", "-n", "4", "-k", "1", "-sim", "surv", "-churn",
				"-classes", "switches=2d:4h,links=5d:2h", "-horizon", "20d", "-trials", "4"},
			want: "partitioned",
		},
		{
			name: "surv threshold disabled",
			args: []string{"-topo", "abccc", "-sim", "surv", "-trials", "2", "-threshold", "0"},
			want: "mean end state",
		},
		{name: "bad topo", args: []string{"-topo", "torus"}, wantErr: true},
		{name: "surv with shards", args: []string{"-sim", "surv", "-shards", "2"}, wantErr: true},
		{name: "surv with faults", args: []string{"-sim", "surv", "-faults", "links"}, wantErr: true},
		{name: "surv with trace", args: []string{"-sim", "surv", "-trace", "x.jsonl"}, wantErr: true},
		{name: "surv with metrics", args: []string{"-sim", "surv", "-metrics"}, wantErr: true},
		{name: "surv with save", args: []string{"-sim", "surv", "-save", "x.jsonl"}, wantErr: true},
		{name: "surv bad horizon", args: []string{"-sim", "surv", "-horizon", "soon"}, wantErr: true},
		{name: "surv bad classes", args: []string{"-sim", "surv", "-classes", "gremlins=1y"}, wantErr: true},
		{name: "surv classes missing mtbf", args: []string{"-sim", "surv", "-classes", "links"}, wantErr: true},
		{name: "surv churn needs mttr", args: []string{"-sim", "surv", "-churn", "-trials", "2"}, wantErr: true},
		{name: "surv zero trials", args: []string{"-sim", "surv", "-trials", "0"}, wantErr: true},
		{name: "svc bad graph", args: []string{"-sim", "svc", "-graph", "mesh"}, wantErr: true},
		{name: "svc bad policy", args: []string{"-sim", "svc", "-policy", "yolo"}, wantErr: true},
		{name: "svc with shards", args: []string{"-sim", "svc", "-shards", "2"}, wantErr: true},
		{name: "svc with trace", args: []string{"-sim", "svc", "-trace", "x.jsonl"}, wantErr: true},
		{name: "svc with save", args: []string{"-sim", "svc", "-save", "x.jsonl"}, wantErr: true},
		{name: "svc bad rate", args: []string{"-sim", "svc", "-rate", "0"}, wantErr: true},
		{name: "bad pattern", args: []string{"-pattern", "chaos"}, wantErr: true},
		{name: "bad sim", args: []string{"-sim", "quantum"}, wantErr: true},
		{name: "bad config", args: []string{"-topo", "fattree", "-k", "3"}, wantErr: true},
		{name: "faults with flow sim", args: []string{"-sim", "flow", "-faults", "links"}, wantErr: true},
		{name: "bad fault kind", args: []string{"-sim", "packet", "-faults", "gremlins"}, wantErr: true},
		{name: "bad mtbf", args: []string{"-sim", "packet", "-faults", "links", "-mtbf", "0s"}, wantErr: true},
		{name: "multipath with flow sim", args: []string{"-sim", "flow", "-multipath"}, wantErr: true},
		{name: "multipath without faults", args: []string{"-sim", "transport", "-multipath"}, wantErr: true},
		{name: "paths without multipath", args: []string{"-sim", "transport", "-faults", "switches", "-paths", "2"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("run(%v) succeeded; output:\n%s", tt.args, buf.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(buf.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, buf.String())
			}
		})
	}
}

// TestSvcGraphFile runs -sim svc against a JSON graph file instead of a
// built-in, and checks the analyzer report names its services.
func TestSvcGraphFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.WriteGraph(f, svc.Diamond()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-sim", "svc", "-graph", path, "-policy", "none", "-requests", "30"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gateway -> users -> db", "per-request attempt bound", "svc worst request"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
	if err := run([]string{"-sim", "svc", "-graph", filepath.Join(t.TempDir(), "nope.json")}, &buf); err == nil {
		t.Error("missing graph file accepted")
	}
}

// TestSvcSeriesRecord: -sim svc -series writes a run record whose engine is
// svc and whose tracks are all service-layer tracks.
func TestSvcSeriesRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-sim", "svc", "-policy", "throttle", "-requests", "50", "-series", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if !recs.HasMeta || recs.Meta.Engine != "svc" {
		t.Errorf("run record meta = %+v, want engine svc", recs.Meta)
	}
	if len(recs.Series) == 0 {
		t.Error("run record has no series points")
	}
	for _, pt := range recs.Series {
		if !strings.HasPrefix(pt.Track, "svc_") {
			t.Errorf("non-svc track %q in svc run record", pt.Track)
		}
	}
}

// TestSurvSeriesRecord: -sim surv -series replays one extra seeded lifetime
// and writes a run record whose engine is surv and whose tracks are all
// survivability tracks.
func TestSurvSeriesRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "surv.jsonl")
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-sim", "surv", "-trials", "2", "-horizon", "10y", "-series", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "series: wrote") {
		t.Errorf("output missing series marker:\n%s", buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if !recs.HasMeta || recs.Meta.Engine != "surv" {
		t.Errorf("run record meta = %+v, want engine surv", recs.Meta)
	}
	if len(recs.Series) == 0 {
		t.Error("run record has no series points")
	}
	for _, pt := range recs.Series {
		if !strings.HasPrefix(pt.Track, "surv_") {
			t.Errorf("non-surv track %q in surv run record", pt.Track)
		}
	}
}

// TestSurvRunDeterministic: the seeded trial batch must reproduce byte for
// byte, including the MTTF estimate and threshold lines.
func TestSurvRunDeterministic(t *testing.T) {
	args := []string{"-topo", "abccc", "-sim", "surv", "-trials", "6", "-horizon", "20y", "-seed", "9"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same seed, different surv reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestParseSpan pins the survivability time-span grammar.
func TestParseSpan(t *testing.T) {
	good := map[string]float64{
		"30y":   30 * 365 * 86400,
		"1.5y":  1.5 * 365 * 86400,
		"90d":   90 * 86400,
		"500ms": 0.5,
		"2h":    7200,
	}
	for in, want := range good {
		got, err := parseSpan(in)
		if err != nil || got != want {
			t.Errorf("parseSpan(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "soon", "yd", "x1y"} {
		if _, err := parseSpan(in); err == nil {
			t.Errorf("parseSpan(%q) accepted", in)
		}
	}
}

// TestSvcMetricsSummary: -sim svc -metrics prints the service-layer counters.
func TestSvcMetricsSummary(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-sim", "svc", "-graph", "3tier", "-metrics", "-requests", "40"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"svc_requests", "svc_completed", "svc_ok_storage"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-metrics output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSvcRunDeterministic: the svc report under a seeded fault schedule must
// reproduce byte for byte, timeline included.
func TestSvcRunDeterministic(t *testing.T) {
	args := []string{"-topo", "abccc", "-sim", "svc", "-policy", "none", "-requests", "80",
		"-faults", "switches", "-mtbf", "5ms", "-mttr", "20ms", "-seed", "9"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same seed, different svc reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestFaultRunDeterministic: the seeded fault schedule and both engines are
// deterministic, so the whole report must reproduce byte for byte.
func TestFaultRunDeterministic(t *testing.T) {
	args := []string{"-topo", "abccc", "-pattern", "shuffle", "-sim", "transport",
		"-faults", "switches,links", "-seed", "9"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same seed, different reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestWorkloadDefaults(t *testing.T) {
	// All pattern helpers must produce non-empty workloads even on small
	// server counts.
	for _, pattern := range []string{"permutation", "alltoall", "uniform", "incast", "shuffle", "hotspot"} {
		var buf bytes.Buffer
		args := []string{"-topo", "abccc", "-n", "2", "-k", "1", "-p", "2", "-pattern", pattern}
		if err := run(args, &buf); err != nil {
			t.Errorf("pattern %s on tiny net: %v", pattern, err)
		}
	}
}

// TestMetricsSummary is the acceptance contract: `-sim packet -metrics`
// prints a drop-cause/latency-histogram summary after the run.
func TestMetricsSummary(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-pattern", "alltoall", "-sim", "packet", "-metrics"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"instrumentation summary",
		"packetsim_delivered",
		"packetsim_dropped_droptail",
		"packetsim_latency_ns",
		"packetsim_queue_depth_pkts",
		"p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsSummaryFlowAndTransport(t *testing.T) {
	for sim, want := range map[string]string{
		"flow":      "flowsim_rounds",
		"transport": "transport_completed_flows",
	} {
		var buf bytes.Buffer
		args := []string{"-topo", "abccc", "-pattern", "permutation", "-sim", sim, "-metrics"}
		if err := run(args, &buf); err != nil {
			t.Fatalf("sim %s: %v", sim, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("sim %s summary missing %q:\n%s", sim, want, buf.String())
		}
	}
}

// TestHopTraceJSONL exercises -trace end to end: the written file must be
// valid JSONL that parses back into hop events.
func TestHopTraceJSONL(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "hops.jsonl")
	var buf bytes.Buffer
	args := []string{"-topo", "abccc", "-pattern", "permutation", "-sim", "packet", "-trace", traceFile}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}
	var delivers int
	for _, ev := range events {
		if ev.Kind == "deliver" {
			delivers++
		}
	}
	if delivers == 0 {
		t.Error("trace has no deliver events")
	}
	if err := run([]string{"-sim", "packet", "-trace", t.TempDir() + "/nope/x.jsonl"}, &buf); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

func TestPprofFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-topo", "abccc", "-pprof", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pprof: serving") {
		t.Errorf("output missing pprof banner:\n%s", buf.String())
	}
	if err := run([]string{"-pprof", "256.0.0.1:bad"}, &buf); err == nil {
		t.Error("bad pprof address accepted")
	}
}

func TestTraceSaveAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/wl.jsonl"
	var buf bytes.Buffer
	if err := run([]string{"-topo", "abccc", "-pattern", "permutation", "-save", trace}, &buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	buf.Reset()
	if err := run([]string{"-topo", "abccc", "-load", trace}, &buf); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(buf.String(), "trace:") {
		t.Errorf("replay output missing trace marker:\n%s", buf.String())
	}
	if err := run([]string{"-load", dir + "/missing.jsonl"}, &buf); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"-save", dir + "/nope/x.jsonl"}, &buf); err == nil {
		t.Error("unwritable save path accepted")
	}
}
