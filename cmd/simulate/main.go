// Command simulate runs flow-level or packet-level simulations of a
// workload on a chosen data-center structure.
//
// Usage:
//
//	simulate -topo abccc -n 4 -k 1 -p 3 -pattern permutation -sim flow
//	simulate -topo bcube -n 4 -k 2 -pattern shuffle -sim packet
//	simulate -topo fattree -k 4 -pattern alltoall -sim flow
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/flowsim"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		topo    = fs.String("topo", "abccc", "structure: abccc|bccc|bcube|dcell|fattree|hypercube")
		n       = fs.Int("n", 4, "switch radix (abccc/bccc/bcube/dcell)")
		k       = fs.Int("k", 1, "order (or fat-tree port count)")
		p       = fs.Int("p", 2, "NIC ports per server (abccc)")
		pattern = fs.String("pattern", "permutation", "workload: permutation|alltoall|uniform|incast|shuffle|hotspot")
		sim     = fs.String("sim", "flow", "simulator: flow|packet|transport")
		seed    = fs.Int64("seed", 1, "workload seed")
		count   = fs.Int("count", 0, "flow count for uniform/hotspot (default: one per server)")
		load    = fs.String("load", "", "replay a JSONL workload trace instead of -pattern")
		save    = fs.String("save", "", "write the generated workload as a JSONL trace")
		metrics = fs.Bool("metrics", false, "print an instrumentation summary (counters, drop causes, histograms) after the run")
		trace   = fs.String("trace", "", "write a JSONL event trace (per-packet hops, drops, deliveries) to this file")
		pprofFl = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the run")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := buildTopology(*topo, *n, *k, *p)
	if err != nil {
		return err
	}
	servers := t.Network().NumServers()
	rng := rand.New(rand.NewSource(*seed))
	var flows []traffic.Flow
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if flows, err = traffic.ReadTrace(f, servers); err != nil {
			return err
		}
		*pattern = "trace:" + *load
	} else if flows, err = buildWorkload(*pattern, servers, *count, rng); err != nil {
		return err
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := traffic.WriteTrace(f, flows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s: %d servers, %d flows (%s)\n",
		t.Network().Name(), servers, len(flows), *pattern)

	// Observability: a nil registry/tracer disables instrumentation inside
	// the simulators; -pprof serves profiles for the duration of the run.
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer(0)
	}
	if *pprofFl != "" {
		addr, stop, err := obs.StartPprof(*pprofFl)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer stop()
		fmt.Fprintf(w, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	switch *sim {
	case "flow":
		paths, err := flowsim.RoutePaths(t, flows)
		if err != nil {
			return err
		}
		asg, err := flowsim.MaxMinFairCapacityObserved(t.Network(), paths, flowsim.DefaultCapacity, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "max-min fair: bottleneck rate %.4f, sum %.2f, ABT %.2f (per server %.4f)\n",
			asg.MinRate(), asg.SumRate(), asg.ABT(), asg.ABT()/float64(servers))
	case "packet":
		cfg := packetsim.Default()
		cfg.Metrics = reg
		cfg.Trace = tracer
		res, err := packetsim.Run(t, flows, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "packet sim: delivered %d, dropped %d (%.2f%%), avg latency %.1fus, p99 %.1fus, throughput %.2f Gb/s\n",
			res.Delivered, res.Dropped, 100*res.DropRate(),
			res.AvgLatencySec*1e6, res.P99LatencySec*1e6, res.ThroughputBps*8/1e9)
	case "transport":
		cfg := packetsim.DefaultTransport()
		cfg.Link.Metrics = reg
		cfg.Link.Trace = tracer
		res, err := packetsim.RunTransport(t, flows, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "transport sim: %d/%d flows completed, %d retransmits, mean FCT %.2fms, makespan %.2fms, goodput %.2f Gb/s\n",
			res.CompletedFlows, len(flows), res.Retransmits,
			res.MeanFCTSec*1e3, res.MakespanSec*1e3, res.GoodputBps*8/1e9)
	default:
		return fmt.Errorf("unknown simulator %q", *sim)
	}

	if tracer != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: wrote %d events to %s (%d overwritten by ring wraparound)\n",
			len(tracer.Events()), *trace, tracer.Dropped())
	}
	if reg != nil {
		fmt.Fprintln(w, "\ninstrumentation summary:")
		if err := obs.WriteSummary(w, reg); err != nil {
			return err
		}
	}
	return nil
}

func buildTopology(name string, n, k, p int) (topology.Topology, error) {
	switch name {
	case "abccc":
		return core.Build(core.Config{N: n, K: k, P: p})
	case "bccc":
		return bccc.Build(bccc.Config{N: n, K: k})
	case "bcube":
		return bcube.Build(bcube.Config{N: n, K: k})
	case "dcell":
		return dcell.Build(dcell.Config{N: n, K: k})
	case "fattree":
		return fattree.Build(fattree.Config{K: k})
	case "hypercube":
		return hypercube.Build(hypercube.Config{D: k})
	default:
		return nil, fmt.Errorf("unknown structure %q", name)
	}
}

func buildWorkload(pattern string, servers, count int, rng *rand.Rand) ([]traffic.Flow, error) {
	if count <= 0 {
		count = servers
	}
	switch pattern {
	case "permutation":
		return traffic.Permutation(servers, rng), nil
	case "alltoall":
		return traffic.AllToAll(servers), nil
	case "uniform":
		return traffic.Uniform(servers, count, rng), nil
	case "incast":
		fanin := servers / 4
		if fanin < 1 {
			fanin = 1
		}
		return traffic.Incast(servers, 0, fanin, rng)
	case "shuffle":
		part := servers / 4
		if part < 1 {
			part = 1
		}
		return traffic.Shuffle(servers, part, part, rng)
	case "hotspot":
		spots := servers / 8
		if spots < 1 {
			spots = 1
		}
		return traffic.Hotspot(servers, spots, count, rng)
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}
