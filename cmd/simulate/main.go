// Command simulate runs flow-level or packet-level simulations of a
// workload on a chosen data-center structure.
//
// Usage:
//
//	simulate -topo abccc -n 4 -k 1 -p 3 -pattern permutation -sim flow
//	simulate -topo bcube -n 4 -k 2 -pattern shuffle -sim packet
//	simulate -topo fattree -k 4 -pattern alltoall -sim flow
//	simulate -topo abccc -n 8 -k 2 -sim emu -workload rpc -requests 1024
//	simulate -topo abccc -sim svc -graph 3tier -policy throttle -faults switches -mtbf 5ms
//	simulate -topo abccc -sim surv -trials 32 -horizon 30y -classes "switches=5y,links=10y"
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/emu"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/flowsim"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/surv"
	"repro/internal/svc"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		topo    = fs.String("topo", "abccc", "structure: abccc|bccc|bcube|dcell|fattree|hypercube")
		n       = fs.Int("n", 4, "switch radix (abccc/bccc/bcube/dcell)")
		k       = fs.Int("k", 1, "order (or fat-tree port count)")
		p       = fs.Int("p", 2, "NIC ports per server (abccc)")
		pattern = fs.String("pattern", "permutation", "workload: permutation|alltoall|uniform|incast|shuffle|hotspot")
		sim     = fs.String("sim", "flow", "simulator: flow|packet|transport|emu (sharded actor emulator)|svc (service dependency graph)|surv (connectivity-level lifetime trials)")
		seed    = fs.Int64("seed", 1, "workload seed")
		count   = fs.Int("count", 0, "flow count for uniform/hotspot (default: one per server)")
		load    = fs.String("load", "", "replay a JSONL workload trace instead of -pattern")
		save    = fs.String("save", "", "write the generated workload as a JSONL trace")
		metrics = fs.Bool("metrics", false, "print an instrumentation summary (counters, drop causes, histograms) after the run")
		trace   = fs.String("trace", "", "write a JSONL event trace (per-packet hops, drops, deliveries) to this file")
		pprofFl = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the run")
		faults  = fs.String("faults", "", "inject live failures into these component classes (comma list of servers,switches,links; packet/transport sims only)")
		mtbf    = fs.Duration("mtbf", 500*time.Microsecond, "mean time between failure onsets for -faults")
		mttr    = fs.Duration("mttr", 1*time.Millisecond, "mean down-for-duration repair window for -faults")
		mpath   = fs.Bool("multipath", false, "proactive multipath failover over precompiled disjoint paths (transport sim with -faults only)")
		paths   = fs.Int("paths", 0, "per-flow path-set cap for -multipath (default 4)")
		shards  = fs.Int("shards", 0, "run the sharded parallel engine over this many topology shards (packet/transport sims; results are identical for every value)")
		workers = fs.Int("workers", 0, "goroutines driving -shards (default min(shards, GOMAXPROCS))")
		series  = fs.String("series", "", "write sim-time-windowed telemetry (goodput, drop causes, queue depth) as run-record JSONL to this file (packet/transport sims; render with obsreport)")
		serWin  = fs.Duration("series-window", time.Millisecond, "window width for -series")
		profSh  = fs.Bool("profile-shards", false, "record per-shard busy/wait runtime windows into the -series run record (requires -shards and -series)")
		emuWl   = fs.String("workload", "rpc", "with -sim emu, serving workload: rpc|incast|shuffle, or flows to inject the -pattern workload one-shot")
		reqs    = fs.Int("requests", 256, "with -sim emu/svc, request count (rpc/svc) or wave count (incast)")
		fanout  = fs.Int("fanout", 4, "with -sim emu, RPC fan-out degree / incast fan-in")
		retries = fs.Int("retries", 1, "with -sim emu, retry budget after a missed deadline")
		graphFl = fs.String("graph", "3tier", "with -sim svc, service graph: 3tier|chain|diamond or a JSON graph file")
		policy  = fs.String("policy", "fixed", "with -sim svc, retry mitigation policy: none|fixed|throttle|hedge")
		rate    = fs.Float64("rate", 2000, "with -sim svc, root request arrival rate per second")
		deadln  = fs.Duration("deadline", 50*time.Millisecond, "with -sim svc, end-to-end request deadline")
		trials  = fs.Int("trials", 16, "with -sim surv, number of independent seeded lifetime trials")
		horizon = fs.String("horizon", "30y", "with -sim surv, trial horizon: a Go duration, or y/d units (30y, 90d)")
		classes = fs.String("classes", "switches=5y,links=10y", "with -sim surv, per-class lifetimes kind=MTBF[:MTTR], comma-separated (MTTR needed with -churn)")
		churn   = fs.Bool("churn", false, "with -sim surv, repairable Poisson churn instead of no-repair wear-out")
		thresh  = fs.Float64("threshold", 0.99, "with -sim surv, report mean first time reachability drops below this fraction (0 disables)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if (*mpath || *paths != 0) && *sim != "transport" && *sim != "svc" {
		return fmt.Errorf("-multipath/-paths require -sim transport or svc")
	}
	if *paths != 0 && !*mpath {
		return fmt.Errorf("-paths requires -multipath")
	}
	if *mpath && *faults == "" {
		return fmt.Errorf("-multipath requires -faults (the proactive layer only arms under a fault plan)")
	}
	if (*shards != 0 || *workers != 0) && (*sim == "flow" || *sim == "svc" || *sim == "surv") {
		return fmt.Errorf("-shards/-workers require -sim packet, transport or emu (the service layer runs on the serial engine; surv parallelizes over trials by itself)")
	}
	if *workers != 0 && *shards == 0 {
		return fmt.Errorf("-workers requires -shards")
	}
	if *shards != 0 && *trace != "" && *workers != 1 {
		return fmt.Errorf("-trace with -shards needs -workers 1 (parallel drains interleave trace records nondeterministically)")
	}
	if *series != "" && *sim == "flow" {
		return fmt.Errorf("-series requires -sim packet, transport, emu, svc or surv (the flow model has no notion of time)")
	}
	if *sim == "svc" && *trace != "" {
		return fmt.Errorf("-trace records per-packet hops; -sim svc reports at the service layer (use -series)")
	}
	if *sim == "svc" && (*load != "" || *save != "") {
		return fmt.Errorf("-load/-save apply to flow workloads; -sim svc derives its traffic from the call graph")
	}
	if *sim == "surv" && (*trace != "" || *metrics) {
		return fmt.Errorf("-trace/-metrics record packet-level telemetry; -sim surv replays at connectivity level (use -series)")
	}
	if *sim == "surv" && (*load != "" || *save != "") {
		return fmt.Errorf("-load/-save apply to flow workloads; -sim surv has no flows")
	}
	if *sim == "surv" && *faults != "" {
		return fmt.Errorf("-faults drives the packet simulators; -sim surv draws its own schedule from -classes/-churn")
	}
	if *faults != "" && *sim == "emu" {
		return fmt.Errorf("-faults drives the packet simulators' event queues; the emulator takes static dead devices instead")
	}
	if *series != "" && *serWin <= 0 {
		return fmt.Errorf("-series-window must be positive, got %v", *serWin)
	}
	if *profSh && (*shards == 0 || *series == "") {
		return fmt.Errorf("-profile-shards requires -shards and -series (the profile rides in the run record)")
	}

	t, err := buildTopology(*topo, *n, *k, *p)
	if err != nil {
		return err
	}
	servers := t.Network().NumServers()
	rng := rand.New(rand.NewSource(*seed))
	var flows []traffic.Flow
	if *sim == "svc" {
		// The service layer derives its traffic from the call graph; there is
		// no flow workload to build. -pattern becomes the run label.
		*pattern = fmt.Sprintf("svc:%s/%s", *graphFl, *policy)
	} else if *sim == "surv" {
		// Lifetime trials replay component schedules, not flows.
		mode := "wearout"
		if *churn {
			mode = "churn"
		}
		*pattern = fmt.Sprintf("surv:%s/%s", mode, *horizon)
	} else if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if flows, err = traffic.ReadTrace(f, servers); err != nil {
			return err
		}
		*pattern = "trace:" + *load
	} else if flows, err = buildWorkload(*pattern, servers, *count, rng); err != nil {
		return err
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := traffic.WriteTrace(f, flows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *sim == "svc" || *sim == "surv" {
		fmt.Fprintf(w, "%s: %d servers (%s)\n", t.Network().Name(), servers, *pattern)
	} else {
		fmt.Fprintf(w, "%s: %d servers, %d flows (%s)\n",
			t.Network().Name(), servers, len(flows), *pattern)
	}

	// Observability: a nil registry/tracer disables instrumentation inside
	// the simulators; -pprof serves profiles for the duration of the run.
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer(0)
	}
	var ser *obs.Series
	// The surv case writes its own run record (its time axis is the trial
	// horizon, not the packet clock), so the shared series stays unarmed.
	if *series != "" && *sim != "surv" {
		width := serWin.Nanoseconds()
		if *sim == "emu" {
			width = 1 // the emulator's time axis is rounds: one window per round
		}
		ser = obs.NewSeries(width)
	}
	var prof *obs.ShardProfile
	if *profSh {
		prof = obs.NewShardProfile()
	}
	if *pprofFl != "" {
		addr, stop, err := obs.StartPprof(*pprofFl)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer stop()
		fmt.Fprintf(w, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	// Live fault injection: a seeded Poisson schedule of down/up events for
	// the requested component classes, fed through the packet simulators'
	// event queues. The schedule draws from the workload RNG after the flows
	// are built, so -faults never perturbs the workload itself.
	var plan *failure.FaultPlan
	var timeline *packetsim.Timeline
	if *faults != "" {
		if *sim == "flow" {
			return fmt.Errorf("-faults requires -sim packet or transport (the flow model has no notion of time)")
		}
		var kinds []failure.Kind
		for _, name := range strings.Split(*faults, ",") {
			kind, err := failure.ParseKind(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			kinds = append(kinds, kind)
		}
		// The horizon tracks MTBF so the schedule always holds a meaningful
		// number of failure onsets, whatever time scale the user picked.
		scfg := failure.ScheduleConfig{
			Kinds:      kinds,
			MTBFSec:    mtbf.Seconds(),
			MTTRSec:    mttr.Seconds(),
			HorizonSec: 20 * mtbf.Seconds(),
		}
		if plan, err = failure.Schedule(t.Network(), scfg, rng); err != nil {
			return err
		}
		timeline = &packetsim.Timeline{}
		fmt.Fprintf(w, "faults: %d scheduled events (%s; MTBF %v, MTTR %v, horizon %v)\n",
			plan.Len(), *faults, *mtbf, *mttr, 20**mtbf)
	}

	switch *sim {
	case "flow":
		paths, err := flowsim.RoutePaths(t, flows)
		if err != nil {
			return err
		}
		asg, err := flowsim.MaxMinFairCapacityObserved(t.Network(), paths, flowsim.DefaultCapacity, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "max-min fair: bottleneck rate %.4f, sum %.2f, ABT %.2f (per server %.4f)\n",
			asg.MinRate(), asg.SumRate(), asg.ABT(), asg.ABT()/float64(servers))
	case "packet":
		cfg := packetsim.Default()
		cfg.Metrics = reg
		cfg.Trace = tracer
		cfg.Faults = plan
		cfg.Timeline = timeline
		cfg.Series = ser
		var res packetsim.Result
		if *shards != 0 {
			res, err = packetsim.RunSharded(t, flows, cfg, packetsim.ShardOpts{Shards: *shards, Workers: *workers, Profile: prof})
		} else {
			res, err = packetsim.Run(t, flows, cfg)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "packet sim: delivered %d, dropped %d+%d fault (%.2f%%), avg latency %.1fus, p99 %.1fus, throughput %.2f Gb/s\n",
			res.Delivered, res.Dropped, res.DroppedFault, 100*res.DropRate(),
			res.AvgLatencySec*1e6, res.P99LatencySec*1e6, res.ThroughputBps*8/1e9)
	case "transport":
		cfg := packetsim.DefaultTransport()
		cfg.Link.Metrics = reg
		cfg.Link.Trace = tracer
		cfg.Faults = plan
		cfg.Timeline = timeline
		cfg.Link.Series = ser
		cfg.Multipath = *mpath
		cfg.MultipathPaths = *paths
		var res packetsim.TransportResult
		if *shards != 0 {
			res, err = packetsim.RunTransportSharded(t, flows, cfg, packetsim.ShardOpts{Shards: *shards, Workers: *workers, Profile: prof})
		} else {
			res, err = packetsim.RunTransport(t, flows, cfg)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "transport sim: %d/%d flows completed (%d failed), %d retransmits, %d reroutes, mean FCT %.2fms, makespan %.2fms, goodput %.2f Gb/s\n",
			res.CompletedFlows, len(flows), res.FailedFlows, res.Retransmits, res.Reroutes,
			res.MeanFCTSec*1e3, res.MakespanSec*1e3, res.GoodputBps*8/1e9)
		if *mpath {
			fmt.Fprintf(w, "multipath: %d failovers, %d path switches, probes %d ok / %d failed\n",
				res.Failovers, res.PathSwitches, res.ProbeSuccesses, res.ProbeFailures)
		}
	case "svc":
		g, err := loadServiceGraph(*graphFl)
		if err != nil {
			return err
		}
		pol, err := svc.ParsePolicy(*policy)
		if err != nil {
			return err
		}
		var rep *svc.Report
		if pol == svc.PolicyNone {
			rep, err = svc.AnalyzeUnbudgeted(g, deadln.Seconds())
		} else {
			rep, err = svc.Analyze(g)
		}
		if err != nil {
			return err
		}
		writeAnalysis(w, g, rep)
		cfg := svc.Config{
			Policy:      pol,
			DeadlineSec: deadln.Seconds(),
			RatePerSec:  *rate,
			Requests:    *reqs,
			Seed:        *seed,
			Transport:   packetsim.DefaultTransport(),
			Metrics:     reg,
			Series:      ser,
		}
		cfg.Transport.Faults = plan
		cfg.Transport.Timeline = timeline
		cfg.Transport.Multipath = *mpath
		cfg.Transport.MultipathPaths = *paths
		res, err := svc.Run(t, g, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "svc run: %d/%d completed (%d deadline exceeded, %d aborted), goodput %.0f of %.0f offered rps, mean %.2fms, p99 %.2fms\n",
			res.Completed, res.Requests, res.DeadlineExceeded, res.Aborted,
			res.GoodputRps, res.OfferedRps, res.MeanLatencySec*1e3, res.P99LatencySec*1e3)
		fmt.Fprintf(w, "svc legs: %d started (%d ok, %d timed out, %d cancelled), %d retries (%d denied), %d hedges, %d wasted responses\n",
			res.LegsStarted, res.LegsSucceeded, res.LegsTimedOut, res.LegsCancelled,
			res.Retries, res.RetriesDenied, res.Hedges, res.WastedResponses)
		fmt.Fprintf(w, "svc worst request: %d legs (static bound %d)\n",
			res.MaxRequestLegs, rep.TotalAttemptsBound)
		if *mpath {
			fmt.Fprintf(w, "multipath: %d failovers, %d path switches, probes %d ok / %d failed\n",
				res.Transport.Failovers, res.Transport.PathSwitches,
				res.Transport.ProbeSuccesses, res.Transport.ProbeFailures)
		}
	case "surv":
		horizonSec, err := parseSpan(*horizon)
		if err != nil {
			return fmt.Errorf("-horizon: %w", err)
		}
		classRates, err := parseClassSpec(*classes)
		if err != nil {
			return fmt.Errorf("-classes: %w", err)
		}
		var thresholds []float64
		if *thresh > 0 {
			thresholds = []float64{*thresh}
		}
		st, err := surv.RunTrials(t.Network(), surv.TrialConfig{
			Classes:    classRates,
			Churn:      *churn,
			HorizonSec: horizonSec,
			Trials:     *trials,
			Seed:       *seed,
			Thresholds: thresholds,
		})
		if err != nil {
			return err
		}
		m := st.MTTF
		fmt.Fprintf(w, "surv: %d trials over %s (%s), %d partitioned, %d censored at horizon\n",
			*trials, *horizon, *classes, m.N, m.Censored)
		fmt.Fprintf(w, "MTTF to first partition: mean %s, %.0f%% CI [%s, %s]\n",
			fmtSpan(m.Mean), m.Level*100, fmtSpan(m.Lo), fmtSpan(m.Hi))
		if len(st.Below) > 0 {
			b := st.Below[0]
			fmt.Fprintf(w, "first time below %.4g reachability: mean %s (%d/%d trials crossed)\n",
				*thresh, fmtSpan(b.Mean), b.N, b.N+b.Censored)
		}
		if len(st.MeanCurve) > 0 {
			last := st.MeanCurve[len(st.MeanCurve)-1]
			fmt.Fprintf(w, "mean end state: reachable pairs %.4f, largest component %.4f of servers\n",
				last.ReachableFrac, last.LargestFrac)
		}
		if *series != "" {
			if err := writeSurvSeries(*series, w, t.Network(), classRates, *churn, horizonSec,
				thresholds, *seed, *pattern); err != nil {
				return err
			}
		}
	case "emu":
		fw, ok := t.(emu.Forwarder)
		if !ok {
			return fmt.Errorf("-sim emu needs a structure with hop-by-hop forwarding (%q has none)", *topo)
		}
		opts := []emu.Option{emu.WithMetrics(reg), emu.WithTrace(tracer), emu.WithSeries(ser)}
		if *shards != 0 {
			opts = append(opts, emu.WithShards(*shards))
		}
		if *workers != 0 {
			opts = append(opts, emu.WithWorkers(*workers))
		}
		if *emuWl == "flows" {
			stats, err := emu.RunSharded(fw, flows, opts...)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "emu: %d messages in %d rounds; injected %d, delivered %d, dropped failed/ttl/overflow %d/%d/%d, max hops %d, accounted=%v\n",
				stats.Messages, stats.Rounds, stats.Injected, stats.Delivered,
				stats.DroppedFailed, stats.DroppedTTL, stats.DroppedOverflow,
				stats.MaxHops, stats.Accounted())
			break
		}
		var wl emu.Workload
		switch *emuWl {
		case "rpc":
			wl = emu.Workload{Kind: emu.RPCFanout, Requests: *reqs, Fanout: *fanout, RetryBudget: *retries, Seed: *seed}
		case "incast":
			wl = emu.Workload{Kind: emu.IncastWave, Requests: *reqs, Fanout: *fanout, RetryBudget: *retries, Seed: *seed}
		case "shuffle":
			part := servers / 4
			if part < 1 {
				part = 1
			}
			wl = emu.Workload{Kind: emu.StorageShuffle, Mappers: part, Reducers: part, Seed: *seed}
		default:
			return fmt.Errorf("unknown -workload %q (have rpc, incast, shuffle, flows)", *emuWl)
		}
		ws, err := emu.RunWorkload(fw, wl, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "emu %s: %d requests, %d completed, %d timed out, %d retries, p50/p99 latency %d/%d rounds\n",
			*emuWl, ws.Requests, ws.Completed, ws.TimedOut, ws.RetriesSent,
			reqQuantile(ws.LatencyHistogram, ws.Completed, 0.50),
			reqQuantile(ws.LatencyHistogram, ws.Completed, 0.99))
		fmt.Fprintf(w, "emu: %d messages in %d rounds; injected %d, delivered %d, dropped failed/ttl/overflow %d/%d/%d, accounted=%v\n",
			ws.Messages, ws.Rounds, ws.Injected, ws.Delivered,
			ws.DroppedFailed, ws.DroppedTTL, ws.DroppedOverflow, ws.Accounted())
	default:
		return fmt.Errorf("unknown simulator %q", *sim)
	}
	if timeline != nil {
		writeTimeline(w, timeline)
	}

	if ser != nil {
		engine := *sim
		if *shards != 0 {
			engine += "-sharded"
		}
		workload := fmt.Sprintf("%s, %d flows, seed %d", *pattern, len(flows), *seed)
		windowNs := serWin.Nanoseconds()
		if *sim == "emu" {
			// The emulator's series axis is rounds, one window per round.
			windowNs = 1
			if *emuWl != "flows" {
				workload = fmt.Sprintf("%s, %d requests, seed %d", *emuWl, *reqs, *seed)
			}
		}
		if *sim == "svc" {
			workload = fmt.Sprintf("%s graph, %s policy, %d requests, seed %d", *graphFl, *policy, *reqs, *seed)
		}
		meta := obs.RunMeta{
			Label:          fmt.Sprintf("%s/%s", t.Network().Name(), *pattern),
			Engine:         engine,
			Topology:       t.Network().Name(),
			Workload:       workload,
			Shards:         *shards,
			Workers:        *workers,
			SeriesWindowNs: windowNs,
			Series:         true,
			Profile:        prof != nil,
		}
		f, err := os.Create(*series)
		if err != nil {
			return err
		}
		if err := obs.WriteRun(f, meta, nil, ser, prof); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "series: wrote %d points to %s (render with obsreport)\n", len(ser.Points()), *series)
	}
	if tracer != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: wrote %d events to %s (%d overwritten by ring wraparound)\n",
			len(tracer.Events()), *trace, tracer.Dropped())
	}
	if reg != nil {
		fmt.Fprintln(w, "\ninstrumentation summary:")
		if err := obs.WriteSummary(w, reg); err != nil {
			return err
		}
	}
	return nil
}

// reqQuantile is the nearest-rank quantile of a completed-request latency
// histogram in rounds (0 when the workload tracks no request latency).
func reqQuantile(hist []int, total int, q float64) int {
	if total == 0 || len(hist) == 0 {
		return 0
	}
	rank := int(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for r, c := range hist {
		seen += c
		if seen >= rank {
			return r
		}
	}
	return len(hist) - 1
}

// loadServiceGraph resolves -graph: a built-in name first, then a JSON file.
func loadServiceGraph(name string) (*svc.Graph, error) {
	if g, err := svc.Builtin(name); err == nil {
		return g, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("-graph %q is neither a built-in (3tier|chain|diamond) nor a readable file: %w", name, err)
	}
	defer f.Close()
	return svc.ReadGraph(f)
}

// writeAnalysis prints the static retry-amplification report of a service
// graph: one line per root-to-leaf path, then the whole-graph attempt bound
// the run must stay under.
func writeAnalysis(w io.Writer, g *svc.Graph, rep *svc.Report) {
	fmt.Fprintf(w, "service graph: %d services, %d call edges, root %s; static analysis (%d root-to-leaf paths):\n",
		len(g.Services), len(g.Calls), g.Root, len(rep.Paths))
	for _, p := range rep.Paths {
		fmt.Fprintf(w, "  %-40s  amplification %4d  worst latency %7.1fms\n",
			strings.Join(p.Services, " -> "), p.Amplification, p.WorstLatencySec*1e3)
	}
	fmt.Fprintf(w, "  per-request attempt bound: %d legs\n", rep.TotalAttemptsBound)
}

// writeTimeline prints the per-epoch availability series of a fault run.
func writeTimeline(w io.Writer, tl *packetsim.Timeline) {
	fmt.Fprintf(w, "fault timeline (%d epochs):\n", len(tl.Epochs))
	for i, e := range tl.Epochs {
		fmt.Fprintf(w, "  epoch %2d  %8.3f-%8.3fms  goodput %7.3f Gb/s  avail %.4f  drops fault/stale/tail %d/%d/%d  reroutes %d  failovers %d\n",
			i, e.StartSec*1e3, e.EndSec*1e3, e.GoodputBps()*8/1e9, e.Availability(),
			e.DroppedFault, e.DroppedStale, e.DroppedTail, e.Reroutes, e.Failovers)
	}
}

// parseSpan parses a lifetime span: y (365-day years) and d suffixes for the
// survivability time scales, any Go duration otherwise.
func parseSpan(s string) (float64, error) {
	for suffix, sec := range map[string]float64{"y": 365 * 86400, "d": 86400} {
		if strings.HasSuffix(s, suffix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, suffix), 64)
			if err != nil {
				return 0, fmt.Errorf("bad span %q", s)
			}
			return v * sec, nil
		}
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad span %q (want a Go duration or y/d units)", s)
	}
	return d.Seconds(), nil
}

// parseClassSpec parses the -classes grammar: kind=MTBF[:MTTR], comma
// separated, with spans in parseSpan units.
func parseClassSpec(spec string) ([]failure.ClassRate, error) {
	var out []failure.ClassRate
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad class %q (want kind=MTBF[:MTTR])", part)
		}
		kind, err := failure.ParseKind(strings.TrimSpace(kv[0]))
		if err != nil {
			return nil, err
		}
		cr := failure.ClassRate{Kind: kind}
		times := strings.SplitN(kv[1], ":", 2)
		if cr.MTBFSec, err = parseSpan(strings.TrimSpace(times[0])); err != nil {
			return nil, err
		}
		if len(times) == 2 {
			if cr.MTTRSec, err = parseSpan(strings.TrimSpace(times[1])); err != nil {
				return nil, err
			}
		}
		out = append(out, cr)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-classes is empty")
	}
	return out, nil
}

// fmtSpan renders a seconds quantity on the survivability time scales:
// years down to half a year, days down to a day, seconds below.
func fmtSpan(sec float64) string {
	switch {
	case math.IsNaN(sec):
		return "-"
	case sec >= 0.5*365*86400:
		return fmt.Sprintf("%.2fy", sec/(365*86400))
	case sec >= 86400:
		return fmt.Sprintf("%.1fd", sec/86400)
	default:
		return fmt.Sprintf("%.3gs", sec)
	}
}

// writeSurvSeries replays one extra seeded lifetime with the series layer
// armed and writes the run record: the -series path for -sim surv.
func writeSurvSeries(path string, w io.Writer, net *topology.Network, classRates []failure.ClassRate,
	churn bool, horizonSec float64, thresholds []float64, seed int64, label string) error {
	rng := rand.New(rand.NewSource(seed))
	var plan *failure.FaultPlan
	var err error
	if churn {
		plan, err = failure.Schedule(net, failure.ScheduleConfig{
			HorizonSec: horizonSec, Classes: classRates}, rng)
	} else {
		plan, err = failure.Wearout(net, classRates, horizonSec, rng)
	}
	if err != nil {
		return err
	}
	windowNs := int64(horizonSec / 64 * 1e9)
	if windowNs < 1 {
		windowNs = 1
	}
	ser := obs.NewSeries(windowNs)
	if _, err := surv.Lifetime(net, plan, surv.Config{
		HorizonSec: horizonSec,
		Thresholds: thresholds,
		Series:     ser,
	}); err != nil {
		return err
	}
	meta := obs.RunMeta{
		Label:          fmt.Sprintf("%s/%s", net.Name(), label),
		Engine:         "surv",
		Topology:       net.Name(),
		Workload:       fmt.Sprintf("%s, seed %d", label, seed),
		SeriesWindowNs: windowNs,
		Series:         true,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteRun(f, meta, nil, ser, nil); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "series: wrote %d points to %s (render with obsreport)\n", len(ser.Points()), path)
	return nil
}

func buildTopology(name string, n, k, p int) (topology.Topology, error) {
	switch name {
	case "abccc":
		return core.Build(core.Config{N: n, K: k, P: p})
	case "bccc":
		return bccc.Build(bccc.Config{N: n, K: k})
	case "bcube":
		return bcube.Build(bcube.Config{N: n, K: k})
	case "dcell":
		return dcell.Build(dcell.Config{N: n, K: k})
	case "fattree":
		return fattree.Build(fattree.Config{K: k})
	case "hypercube":
		return hypercube.Build(hypercube.Config{D: k})
	default:
		return nil, fmt.Errorf("unknown structure %q", name)
	}
}

func buildWorkload(pattern string, servers, count int, rng *rand.Rand) ([]traffic.Flow, error) {
	if count <= 0 {
		count = servers
	}
	switch pattern {
	case "permutation":
		return traffic.Permutation(servers, rng), nil
	case "alltoall":
		return traffic.AllToAll(servers), nil
	case "uniform":
		return traffic.Uniform(servers, count, rng), nil
	case "incast":
		fanin := servers / 4
		if fanin < 1 {
			fanin = 1
		}
		return traffic.Incast(servers, 0, fanin, rng)
	case "shuffle":
		part := servers / 4
		if part < 1 {
			part = 1
		}
		return traffic.Shuffle(servers, part, part, rng)
	case "hotspot":
		spots := servers / 8
		if spots < 1 {
			spots = 1
		}
		return traffic.Hotspot(servers, spots, count, rng)
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}
