package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func writeReport(t *testing.T, dir, name string, r report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleReports() (report, report) {
	oldRep := report{
		Workers:      1,
		TotalSeconds: 3,
		Experiments: []experiments.Timing{
			{ID: "F1", Seconds: 1.0},
			{ID: "F2", Seconds: 1.0},
			{ID: "F3", Seconds: 1.0},
		},
	}
	newRep := report{
		Workers:      1,
		TotalSeconds: 2.6,
		Experiments: []experiments.Timing{
			{ID: "F1", Seconds: 0.5}, // improved
			{ID: "F2", Seconds: 1.1}, // +10%, within default threshold
			{ID: "F4", Seconds: 1.0}, // new experiment
		},
	}
	return oldRep, newRep
}

func TestCompareReportsWithinThreshold(t *testing.T) {
	oldRep, newRep := sampleReports()
	var buf bytes.Buffer
	if err := compareReports(&buf, oldRep, newRep, 0.2); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"F1", "-50.0%", "F2", "+10.0%", "new", "F3", "removed", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("no regression expected:\n%s", out)
	}
}

func TestCompareReportsFlagsRegression(t *testing.T) {
	oldRep, newRep := sampleReports()
	var buf bytes.Buffer
	err := compareReports(&buf, oldRep, newRep, 0.05) // F2's +10% now regresses
	var reg *regressionError
	if !errors.As(err, &reg) {
		t.Fatalf("err = %v, want regressionError", err)
	}
	if len(reg.ids) != 1 || reg.ids[0] != "F2" {
		t.Errorf("regressed = %v, want [F2]", reg.ids)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("table does not mark the regression:\n%s", buf.String())
	}
	// New-only and removed experiments must never count as regressions.
	for _, id := range reg.ids {
		if id == "F4" || id == "F3" {
			t.Errorf("asymmetric experiment %s counted as regression", id)
		}
	}
}

func TestRunCompareTwoFiles(t *testing.T) {
	dir := t.TempDir()
	oldRep, newRep := sampleReports()
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", newRep)

	var buf bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("compare: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "F1") {
		t.Errorf("missing delta table:\n%s", buf.String())
	}
	if err := run([]string{"-compare", oldPath, "-threshold", "0.05", newPath}, &buf); err == nil {
		t.Error("tight threshold did not fail")
	}
}

func TestRunCompareErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-compare", filepath.Join(dir, "absent.json")}, io.Discard); err == nil {
		t.Error("missing old report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", bad}, io.Discard); err == nil {
		t.Error("malformed report accepted")
	}
	empty := writeReport(t, dir, "empty.json", report{})
	if err := run([]string{"-compare", empty}, io.Discard); err == nil {
		t.Error("report without timings accepted")
	}
}
