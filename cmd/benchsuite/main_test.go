package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
	if !strings.Contains(buf.String(), "T2") {
		t.Errorf("-list output missing T2:\n%s", buf.String())
	}
}

func TestRunSingle(t *testing.T) {
	if err := run([]string{"-run", "T2"}, io.Discard); err != nil {
		t.Fatalf("run(-run T2): %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "XX"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleParallelFlag(t *testing.T) {
	if err := run([]string{"-j", "2", "-run", "T2"}, io.Discard); err != nil {
		t.Fatalf("run(-j 2 -run T2): %v", err)
	}
}

func TestRunSingleJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "-run", "T2"}, &buf); err != nil {
		t.Fatalf("run(-json -run T2): %v", err)
	}
	var r report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	checkProvenance(t, r.Provenance)
}

// TestJSONProvenanceHeader is the satellite contract: -json reports carry
// enough machine context to compare BENCH_*.json trajectories across hosts.
func TestJSONProvenanceHeader(t *testing.T) {
	p := buildProvenance(obsConfig{})
	checkProvenance(t, p)
}

func checkProvenance(t *testing.T, p provenance) {
	t.Helper()
	if p.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", p.GoVersion, runtime.Version())
	}
	if p.GOMAXPROCS < 1 || p.NumCPU < 1 {
		t.Errorf("gomaxprocs/num_cpu = %d/%d, want >= 1", p.GOMAXPROCS, p.NumCPU)
	}
	if p.Revision == "" {
		t.Error("revision must never be empty (falls back to \"unknown\")")
	}
	ts, err := time.Parse(time.RFC3339, p.Timestamp)
	if err != nil {
		t.Fatalf("timestamp %q is not RFC3339: %v", p.Timestamp, err)
	}
	if age := time.Since(ts); age < 0 || age > time.Hour {
		t.Errorf("timestamp %q is not recent (age %v)", p.Timestamp, age)
	}
}

// TestFullRunWithMetricsAndTrace drives the complete observed pipeline: all
// experiments, a progress trace on disk, and a printed metrics summary.
func TestFullRunWithMetricsAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchsuite run; skipped with -short")
	}
	traceFile := filepath.Join(t.TempDir(), "progress.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-json", "-metrics", "-trace", traceFile}, &buf); err != nil {
		t.Fatalf("run(-json -metrics -trace): %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "instrumentation summary") ||
		!strings.Contains(out, experiments.MetricCompleted) {
		t.Errorf("output missing metrics summary:\n%s", out)
	}
	if !strings.Contains(out, "\"provenance\"") {
		t.Errorf("-json output missing provenance header:\n%s", out)
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	// Every experiment contributes an exp_start and an exp_done.
	want := 2 * experiments.NumExperiments()
	if len(events) != want {
		t.Fatalf("trace has %d events, want %d", len(events), want)
	}
	starts := map[string]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case "exp_start":
			starts[ev.Detail] = true
		case "exp_done":
			if !starts[ev.Detail] {
				t.Errorf("experiment %s finished without starting", ev.Detail)
			}
		default:
			t.Errorf("unexpected event kind %q", ev.Kind)
		}
	}
}
