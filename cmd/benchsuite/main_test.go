package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestRunSingle(t *testing.T) {
	if err := run([]string{"-run", "T2"}); err != nil {
		t.Fatalf("run(-run T2): %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "XX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleParallelFlag(t *testing.T) {
	if err := run([]string{"-j", "2", "-run", "T2"}); err != nil {
		t.Fatalf("run(-j 2 -run T2): %v", err)
	}
}

func TestRunSingleJSON(t *testing.T) {
	if err := run([]string{"-json", "-run", "T2"}); err != nil {
		t.Fatalf("run(-json -run T2): %v", err)
	}
}
