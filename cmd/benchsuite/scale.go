package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/packetsim"
	"repro/internal/traffic"
)

// The -scale mode benchmarks the sharded engine on large ABCCC builds: for
// each topology size it runs the same workload once per requested shard
// count, times the runs, and checks every result against the shards=1 run.
// The JSON report (committed as BENCH_pr6.json) carries the usual provenance
// header — speedup columns are only meaningful when num_cpu allows the
// workers to actually run in parallel.

// scaleSizes maps the -sizes tokens to ABCCC configurations: 1k, 10k, and
// 100k servers within a few percent (1536, 12288, 98304).
var scaleSizes = map[string]core.Config{
	"1k":   {N: 8, K: 2, P: 2},
	"10k":  {N: 16, K: 2, P: 2},
	"100k": {N: 32, K: 2, P: 2},
	// 1m (1,029,000 servers) is the serving-emulator headline size; the
	// goroutine oracle is skipped there (see emuOracleCutoff).
	"1m": {N: 70, K: 2, P: 2},
}

// scaleRow is one (size, shard-count) measurement.
type scaleRow struct {
	Size      string  `json:"size"`
	Servers   int     `json:"servers"`
	Flows     int     `json:"flows"`
	Shards    int     `json:"shards"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup"`
	Delivered int     `json:"delivered"`
	Identical bool    `json:"identical"`
}

// scaleReport is the -scale -json output schema.
type scaleReport struct {
	Provenance provenance `json:"provenance"`
	Engine     string     `json:"engine"`
	FlowBytes  int        `json:"flow_bytes"`
	Rows       []scaleRow `json:"rows"`
}

// runScale executes the scaling sweep and emits the JSON report.
func runScale(w io.Writer, sizes, shardList string, flowBytes int) error {
	shardCounts, err := parseShardList(shardList)
	if err != nil {
		return err
	}
	rep := scaleReport{
		Provenance: buildProvenance(obsConfig{}),
		Engine:     "packet",
		FlowBytes:  flowBytes,
	}
	for _, size := range strings.Split(sizes, ",") {
		size = strings.TrimSpace(size)
		cfg, ok := scaleSizes[size]
		if !ok {
			return fmt.Errorf("unknown -sizes token %q (have 1k, 10k, 100k)", size)
		}
		tp, err := core.Build(cfg)
		if err != nil {
			return err
		}
		n := tp.Network().NumServers()
		rng := rand.New(rand.NewSource(1))
		flows := traffic.Permutation(n, rng)
		for i := range flows {
			flows[i].Bytes = int64(flowBytes)
		}
		var base packetsim.Result
		var baseSec float64
		for i, s := range shardCounts {
			opts := packetsim.ShardOpts{Shards: s}
			start := time.Now()
			res, err := packetsim.RunSharded(tp, flows, packetsim.Default(), opts)
			if err != nil {
				return err
			}
			sec := time.Since(start).Seconds()
			if i == 0 {
				base, baseSec = res, sec
			}
			workers := s
			if g := runtime.GOMAXPROCS(0); workers > g {
				workers = g
			}
			rep.Rows = append(rep.Rows, scaleRow{
				Size:      size,
				Servers:   n,
				Flows:     len(flows),
				Shards:    s,
				Workers:   workers,
				Seconds:   sec,
				Speedup:   baseSec / sec,
				Delivered: res.Delivered,
				Identical: res == base,
			})
			fmt.Fprintf(os.Stderr, "benchsuite: scale %s shards=%d: %.2fs (x%.2f), delivered %d, identical=%v\n",
				size, s, sec, baseSec/sec, res.Delivered, res == base)
		}
	}
	return emitReport(w, rep)
}

// parseShardList parses a "1,2,4,8"-style shard sweep.
func parseShardList(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers, e.g. 1,2,4)", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -shards list")
	}
	return out, nil
}
