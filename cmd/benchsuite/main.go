// Command benchsuite regenerates every table and figure of the reconstructed
// ABCCC evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchsuite            # run everything on all CPUs
//	benchsuite -j 1       # run everything serially (same output, slower)
//	benchsuite -run F11   # run one experiment by ID
//	benchsuite -list      # list experiment IDs and titles
//	benchsuite -json      # emit per-experiment wall-clock timings as JSON
//	benchsuite -metrics   # print an instrumentation summary after the run
//	benchsuite -trace f   # write per-experiment progress events as JSONL
//	benchsuite -pprof a   # serve net/http/pprof on address a during the run
//
//	benchsuite -compare old.json             # run the suite, diff against old.json
//	benchsuite -compare old.json new.json    # diff two recorded reports
//	benchsuite -compare old.json -threshold 0.5
//
//	benchsuite -scale                        # sharded-engine scaling sweep (JSON)
//	benchsuite -scale -sizes 1k -shards 1,4  # restrict sizes and shard counts
//
// Experiments render on a worker pool (-j workers) and are emitted in
// presentation order, so the output is identical for every -j. With -json
// the experiment tables are discarded and a machine-readable timing report
// is printed instead — the format committed as BENCH_*.json to track the
// repository's performance trajectory across PRs. The report carries a
// provenance header (go version, GOMAXPROCS, CPU count, VCS revision,
// timestamp) so trajectories stay comparable across machines.
//
// -compare diffs per-experiment timings (the old report against a second
// file, or against a fresh run when no second file is given) and exits
// nonzero when any experiment slowed by more than -threshold (a fraction;
// the 0.2 default flags +20%). Experiments present in only one report are
// listed but never fail the comparison, so the suite can keep growing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// provenance identifies the machine and source revision a timing report came
// from, plus which observability layers were armed during the measured run —
// instrumentation has a (small) cost, so reports are only comparable when
// their obs configurations match.
type provenance struct {
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Revision   string    `json:"revision"`
	Timestamp  string    `json:"timestamp"`
	Obs        obsConfig `json:"obs"`
}

// obsConfig records which telemetry layers were live while timings were
// taken.
type obsConfig struct {
	Metrics bool `json:"metrics"`
	Trace   bool `json:"trace"`
	Series  bool `json:"series"`
}

// buildProvenance stamps the current run. The revision comes from the VCS
// metadata the Go linker embeds (absent in plain `go test` binaries, then
// "unknown"); a locally modified tree gets a "-dirty" suffix.
func buildProvenance(oc obsConfig) provenance {
	rev := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if dirty && rev != "unknown" {
			rev += "-dirty"
		}
	}
	return provenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Revision:   rev,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Obs:        oc,
	}
}

// report is the -json output schema.
type report struct {
	Provenance   provenance           `json:"provenance"`
	Workers      int                  `json:"workers"`
	TotalSeconds float64              `json:"total_seconds"`
	Experiments  []experiments.Timing `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiments and exit")
		only      = fs.String("run", "", "run a single experiment by ID (e.g. F11)")
		workers   = fs.Int("j", runtime.NumCPU(), "render experiments on this many parallel workers")
		asJSON    = fs.Bool("json", false, "discard tables, print per-experiment timings as JSON")
		metrics   = fs.Bool("metrics", false, "print an instrumentation summary after the run")
		trace     = fs.String("trace", "", "write per-experiment progress events as JSONL to this file")
		series    = fs.String("series", "", "write suite wall-clock telemetry (per-window experiment completions and runtimes) as run-record JSONL to this file; render with obsreport")
		pprofFl   = fs.String("pprof", "", "serve net/http/pprof on this address during the run")
		compare   = fs.String("compare", "", "diff timings against this benchsuite -json report; nonzero exit on regression")
		threshold = fs.Float64("threshold", 0.2, "with -compare, flag experiments that slowed by more than this fraction")
		scale     = fs.Bool("scale", false, "run the sharded-engine scaling sweep instead of the experiment suite; emits a JSON report")
		sizes     = fs.String("sizes", "1k,10k,100k", "with -scale, comma list of ABCCC sizes (1k|10k|100k|1m)")
		shards    = fs.String("shards", "1,2,4,8", "with -scale -engine packet, comma list of shard counts to sweep")
		flowBytes = fs.Int("bytes", 16<<10, "with -scale -engine packet, bytes per workload flow")
		engine    = fs.String("engine", "packet", "with -scale, which engine to sweep: packet (shard-count scaling) or emu (goroutine vs sharded actor cores)")
		workloads = fs.String("workloads", "rpc,incast,shuffle", "with -scale -engine emu, comma list of serving workloads")
		emuShards = fs.Int("emu-shards", emu.DefaultShards, "with -scale -engine emu, shard count for the actor engine")
		baseline  = fs.String("baseline", "", "with -scale -engine emu, fail if sharded msgs/sec regressed past -threshold vs this committed report")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale {
		switch *engine {
		case "packet":
			return runScale(w, *sizes, *shards, *flowBytes)
		case "emu":
			return runEmuScale(w, *sizes, *workloads, *emuShards, *baseline, *threshold)
		default:
			return fmt.Errorf("unknown -engine %q (have packet, emu)", *engine)
		}
	}
	if *compare != "" {
		oldRep, err := loadReport(*compare)
		if err != nil {
			return err
		}
		var newRep report
		if path := fs.Arg(0); path != "" {
			if newRep, err = loadReport(path); err != nil {
				return err
			}
		} else {
			// No second file: measure the suite as it stands now.
			start := time.Now()
			timings, err := experiments.RunAllTimed(io.Discard, *workers)
			if err != nil {
				return err
			}
			newRep = report{
				Provenance:   buildProvenance(obsConfig{}),
				Workers:      *workers,
				TotalSeconds: time.Since(start).Seconds(),
				Experiments:  timings,
			}
		}
		return compareReports(w, oldRep, newRep, *threshold)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *pprofFl != "" {
		addr, stop, err := obs.StartPprof(*pprofFl)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "benchsuite: pprof serving on http://%s/debug/pprof/\n", addr)
	}
	if *only != "" {
		e, ok := experiments.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *only)
		}
		if !*asJSON {
			return experiments.RunOne(w, e)
		}
		start := time.Now()
		if err := experiments.RunOne(io.Discard, e); err != nil {
			return err
		}
		return emitReport(w, report{
			Provenance:   buildProvenance(obsConfig{}),
			Workers:      1,
			TotalSeconds: time.Since(start).Seconds(),
			Experiments: []experiments.Timing{
				{ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds()},
			},
		})
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *trace != "" || *series != "" {
		// -series folds the trace's exp_start/exp_done pairs into windowed
		// curves, so it arms the tracer even when no trace file was asked for.
		tracer = obs.NewTracer(0)
	}

	out := w
	if *asJSON {
		out = io.Discard
	}
	start := time.Now()
	timings, err := experiments.RunAllObserved(out, *workers, reg, tracer)
	if err != nil {
		return err
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *series != "" {
		if err := writeSuiteSeries(*series, tracer, len(timings), *workers); err != nil {
			return err
		}
	}
	if reg != nil {
		fmt.Fprintln(w, "instrumentation summary:")
		if err := obs.WriteSummary(w, reg); err != nil {
			return err
		}
	}
	if !*asJSON {
		return nil
	}
	return emitReport(w, report{
		Provenance:   buildProvenance(obsConfig{Metrics: *metrics, Trace: *trace != "", Series: *series != ""}),
		Workers:      *workers,
		TotalSeconds: time.Since(start).Seconds(),
		Experiments:  timings,
	})
}

// suiteSeriesWindowNs is the wall-clock window width of -series curves: fine
// enough to see the pool drain, coarse enough that a full suite run stays a
// few dozen windows.
const suiteSeriesWindowNs = int64(100 * time.Millisecond)

// writeSuiteSeries folds the suite trace into wall-clock windowed curves —
// experiment completions per window and summed/peak experiment runtimes
// attributed to the window each experiment finished in — and writes the
// combined run record (trace included) for obsreport.
func writeSuiteSeries(path string, tr *obs.Tracer, n, workers int) error {
	ser := obs.NewSeries(suiteSeriesWindowNs)
	completions := ser.Track("exp_completions")
	runtimes := ser.Track("exp_runtime_ns")
	starts := map[int64]int64{}
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "exp_start":
			starts[ev.ID] = ev.TimeNs
		case "exp_done", "exp_fail":
			completions.Add(ev.TimeNs, 1)
			if s, ok := starts[ev.ID]; ok {
				runtimes.Add(ev.TimeNs, ev.TimeNs-s)
			}
		}
	}
	meta := obs.RunMeta{
		Label:          "benchsuite",
		Engine:         "suite",
		Workload:       fmt.Sprintf("%d experiments, %d workers", n, workers),
		Workers:        workers,
		SeriesWindowNs: suiteSeriesWindowNs,
		Trace:          true,
		Series:         true,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteRun(f, meta, tr, ser, nil); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func emitReport(w io.Writer, r any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
