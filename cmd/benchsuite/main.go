// Command benchsuite regenerates every table and figure of the reconstructed
// ABCCC evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchsuite            # run everything on all CPUs
//	benchsuite -j 1       # run everything serially (same output, slower)
//	benchsuite -run F11   # run one experiment by ID
//	benchsuite -list      # list experiment IDs and titles
//	benchsuite -json      # emit per-experiment wall-clock timings as JSON
//
// Experiments render on a worker pool (-j workers) and are emitted in
// presentation order, so the output is identical for every -j. With -json
// the experiment tables are discarded and a machine-readable timing report
// is printed instead — the format committed as BENCH_*.json to track the
// repository's performance trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// report is the -json output schema.
type report struct {
	Workers      int                  `json:"workers"`
	TotalSeconds float64              `json:"total_seconds"`
	Experiments  []experiments.Timing `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		only    = fs.String("run", "", "run a single experiment by ID (e.g. F11)")
		workers = fs.Int("j", runtime.NumCPU(), "render experiments on this many parallel workers")
		asJSON  = fs.Bool("json", false, "discard tables, print per-experiment timings as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *only != "" {
		e, ok := experiments.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *only)
		}
		if !*asJSON {
			return experiments.RunOne(os.Stdout, e)
		}
		start := time.Now()
		if err := experiments.RunOne(io.Discard, e); err != nil {
			return err
		}
		return emitReport(os.Stdout, report{
			Workers:      1,
			TotalSeconds: time.Since(start).Seconds(),
			Experiments: []experiments.Timing{
				{ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds()},
			},
		})
	}
	if !*asJSON {
		return experiments.RunAllParallel(os.Stdout, *workers)
	}
	start := time.Now()
	timings, err := experiments.RunAllTimed(io.Discard, *workers)
	if err != nil {
		return err
	}
	return emitReport(os.Stdout, report{
		Workers:      *workers,
		TotalSeconds: time.Since(start).Seconds(),
		Experiments:  timings,
	})
}

func emitReport(w io.Writer, r report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
