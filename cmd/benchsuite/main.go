// Command benchsuite regenerates every table and figure of the reconstructed
// ABCCC evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchsuite            # run everything
//	benchsuite -run F11   # run one experiment by ID
//	benchsuite -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	var (
		list = fs.Bool("list", false, "list experiments and exit")
		only = fs.String("run", "", "run a single experiment by ID (e.g. F11)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *only != "" {
		e, ok := experiments.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *only)
		}
		return experiments.RunOne(os.Stdout, e)
	}
	return experiments.RunAll(os.Stdout)
}
