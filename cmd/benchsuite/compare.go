package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
)

// loadReport reads a benchsuite -json report from disk.
func loadReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Experiments) == 0 {
		return r, fmt.Errorf("%s: no experiment timings", path)
	}
	return r, nil
}

// regressionError carries the experiments that slowed past the threshold;
// main turns it into a nonzero exit.
type regressionError struct {
	ids       []string
	threshold float64
}

func (e *regressionError) Error() string {
	return fmt.Sprintf("benchsuite: %d experiment(s) regressed more than %.0f%%: %v",
		len(e.ids), e.threshold*100, e.ids)
}

// compareReports diffs two timing reports experiment by experiment and
// writes a delta table. Experiments present in only one report are listed
// but never counted as regressions (the suite grows across PRs). A
// regression is new > old * (1 + threshold); any regression makes the
// returned error non-nil.
func compareReports(w io.Writer, oldRep, newRep report, threshold float64) error {
	index := make(map[string]experiments.Timing, len(oldRep.Experiments))
	for _, t := range oldRep.Experiments {
		index[t.ID] = t
	}

	fmt.Fprintf(w, "old: %s (%s, j=%d)\n", oldRep.Provenance.Revision, oldRep.Provenance.Timestamp, oldRep.Workers)
	fmt.Fprintf(w, "new: %s (%s, j=%d)\n", newRep.Provenance.Revision, newRep.Provenance.Timestamp, newRep.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "id\told(s)\tnew(s)\tdelta\t")

	var regressed []string
	seen := make(map[string]bool, len(newRep.Experiments))
	for _, n := range newRep.Experiments {
		seen[n.ID] = true
		o, ok := index[n.ID]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.4f\tnew\t\n", n.ID, n.Seconds)
			continue
		}
		delta := 0.0
		if o.Seconds > 0 {
			delta = n.Seconds/o.Seconds - 1
		}
		flag := ""
		if o.Seconds > 0 && n.Seconds > o.Seconds*(1+threshold) {
			flag = "REGRESSED"
			regressed = append(regressed, n.ID)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.1f%%\t%s\n", n.ID, o.Seconds, n.Seconds, delta*100, flag)
	}
	for _, o := range oldRep.Experiments {
		if !seen[o.ID] {
			fmt.Fprintf(tw, "%s\t%.4f\t-\tremoved\t\n", o.ID, o.Seconds)
		}
	}
	fmt.Fprintf(tw, "total\t%.4f\t%.4f\t%+.1f%%\t\n",
		oldRep.TotalSeconds, newRep.TotalSeconds, (newRep.TotalSeconds/oldRep.TotalSeconds-1)*100)
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(regressed) > 0 {
		return &regressionError{ids: regressed, threshold: threshold}
	}
	return nil
}
