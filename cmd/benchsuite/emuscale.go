package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/traffic"
)

// The -scale -engine emu mode benchmarks the emulator's two execution cores
// against each other: for each topology size and serving workload it runs
// the sharded actor engine (emu.RunWorkload) and, where feasible, the
// goroutine-per-node oracle (emu.Run) on an equivalent one-shot flow volume.
// The unit of comparison is messages handled per wall second — both engines
// count every hello, ack, data, request and response they process, and on
// overflow-free configs they handle identical message sets, so the ratio is
// a clean engine comparison. The JSON report is committed as BENCH_pr8.json;
// -baseline re-checks a fresh sharded run against a committed report and
// fails on throughput regressions, mirroring -compare.

// emuOracleCutoff names the size above which the goroutine oracle is not
// run: at 1M servers its boot alone (one goroutine and one 20 KB channel per
// node) dwarfs any useful measurement, which is the point of the new engine.
const emuOracleCutoff = "1m"

// emuScaleRow is one (size, workload, engine) measurement.
type emuScaleRow struct {
	Size       string  `json:"size"`
	Servers    int     `json:"servers"`
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"` // "goroutine" or "sharded"
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	TimedOut   int     `json:"timed_out"`
	Messages   int     `json:"messages"`
	Delivered  int     `json:"delivered"`
	Seconds    float64 `json:"seconds"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Speedup is sharded msgs/sec over the goroutine engine's on the same
	// (size, workload); 0 when the oracle was skipped.
	Speedup   float64 `json:"speedup,omitempty"`
	Accounted bool    `json:"accounted"`
}

// emuScaleReport is the -scale -engine emu JSON schema.
type emuScaleReport struct {
	Provenance provenance    `json:"provenance"`
	Engine     string        `json:"engine"`
	Shards     int           `json:"shards"`
	Rows       []emuScaleRow `json:"rows"`
}

// emuWorkloadFor builds the serving workload for one -workloads token. The
// request volumes are fixed across sizes: past 10k servers the discovery
// sweep dominates the message count anyway, which is exactly the uniform
// all-nodes traffic an engine comparison wants.
func emuWorkloadFor(kind string, servers int) (emu.Workload, error) {
	clamp := func(v, hi int) int {
		if v > hi {
			return hi
		}
		return v
	}
	switch kind {
	case "rpc":
		return emu.Workload{Kind: emu.RPCFanout, Requests: 1024,
			Fanout: clamp(4, servers-1), RetryBudget: 1, Seed: 8}, nil
	case "incast":
		return emu.Workload{Kind: emu.IncastWave, Requests: 8,
			Fanout: clamp(256, servers-1), RetryBudget: 2, Seed: 8}, nil
	case "shuffle":
		m := clamp(64, servers/2)
		return emu.Workload{Kind: emu.StorageShuffle, Mappers: m,
			Reducers: clamp(32, servers-m), Seed: 8}, nil
	}
	return emu.Workload{}, fmt.Errorf("unknown -workloads token %q (have rpc, incast, shuffle)", kind)
}

// emuOracleFlows derives the goroutine engine's one-shot workload for a
// serving pattern: the same endpoint distribution at the same message
// volume (request legs plus response legs), minus the request semantics the
// oracle does not have.
func emuOracleFlows(kind string, wl emu.Workload, servers int, rng *rand.Rand) ([]traffic.Flow, error) {
	switch kind {
	case "rpc":
		return traffic.Uniform(servers, 2*wl.Requests*wl.Fanout, rng), nil
	case "incast":
		var flows []traffic.Flow
		for i := 0; i < wl.Requests; i++ {
			wave, err := traffic.Incast(servers, 0, wl.Fanout, rng)
			if err != nil {
				return nil, err
			}
			// Scatter legs target the senders; the wave itself converges back.
			for _, f := range wave {
				flows = append(flows, traffic.Flow{Src: f.Dst, Dst: f.Src}, f)
			}
		}
		return flows, nil
	case "shuffle":
		return traffic.Shuffle(servers, wl.Mappers, wl.Reducers, rng)
	}
	return nil, fmt.Errorf("unknown workload %q", kind)
}

// runEmuScale executes the engine-comparison sweep and emits the report.
func runEmuScale(w io.Writer, sizes, workloads string, shards int, baseline string, threshold float64) error {
	rep := emuScaleReport{
		Provenance: buildProvenance(obsConfig{}),
		Engine:     "emu",
		Shards:     shards,
	}
	for _, size := range strings.Split(sizes, ",") {
		size = strings.TrimSpace(size)
		cfg, ok := scaleSizes[size]
		if !ok {
			return fmt.Errorf("unknown -sizes token %q (have 1k, 10k, 100k, 1m)", size)
		}
		tp, err := core.Build(cfg)
		if err != nil {
			return err
		}
		n := tp.Network().NumServers()
		for _, kind := range strings.Split(workloads, ",") {
			kind = strings.TrimSpace(kind)
			wl, err := emuWorkloadFor(kind, n)
			if err != nil {
				return err
			}

			var oracleRate float64
			if size != emuOracleCutoff {
				flows, err := emuOracleFlows(kind, wl, n, rand.New(rand.NewSource(wl.Seed)))
				if err != nil {
					return err
				}
				// Settle the heap before every timed run (as testing.B does):
				// at 100k+ servers each engine boots hundreds of MB, and a
				// predecessor's garbage would bill its GC debt to whoever
				// runs next.
				runtime.GC()
				start := time.Now()
				st, err := emu.Run(tp, flows)
				if err != nil {
					return err
				}
				sec := time.Since(start).Seconds()
				oracleRate = float64(st.Messages) / sec
				rep.Rows = append(rep.Rows, emuScaleRow{
					Size: size, Servers: n, Workload: kind, Engine: "goroutine",
					Requests: len(flows), Completed: st.Delivered, Messages: st.Messages,
					Delivered: st.Delivered, Seconds: sec, MsgsPerSec: oracleRate,
					Accounted: st.Accounted(),
				})
				fmt.Fprintf(os.Stderr, "benchsuite: emu %s %s goroutine: %.2fs, %.0f msgs/s\n",
					size, kind, sec, oracleRate)
			} else {
				fmt.Fprintf(os.Stderr, "benchsuite: emu %s %s goroutine: skipped (oracle cutoff)\n", size, kind)
			}

			opts := []emu.Option{emu.WithShards(shards)}
			runtime.GC()
			start := time.Now()
			ws, err := emu.RunWorkload(tp, wl, opts...)
			if err != nil {
				return err
			}
			sec := time.Since(start).Seconds()
			rate := float64(ws.Messages) / sec
			row := emuScaleRow{
				Size: size, Servers: n, Workload: kind, Engine: "sharded",
				Requests: ws.Requests, Completed: ws.Completed, TimedOut: ws.TimedOut,
				Messages: ws.Messages, Delivered: ws.Delivered, Seconds: sec,
				MsgsPerSec: rate, Accounted: ws.Accounted(),
			}
			if oracleRate > 0 {
				row.Speedup = rate / oracleRate
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Fprintf(os.Stderr, "benchsuite: emu %s %s sharded:   %.2fs, %.0f msgs/s (x%.2f)\n",
				size, kind, sec, rate, row.Speedup)
		}
	}
	if baseline != "" {
		if err := checkEmuBaseline(os.Stderr, rep, baseline, threshold); err != nil {
			return err
		}
	}
	return emitReport(w, rep)
}

// checkEmuBaseline compares the fresh sweep's sharded rows against a
// committed report: a row that lost more than `threshold` (fractional) of
// its baseline msgs/sec fails the check. Rows present in only one report are
// listed but never fail, so the sweep can grow.
func checkEmuBaseline(w io.Writer, rep emuScaleReport, path string, threshold float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base emuScaleReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byKey := map[string]emuScaleRow{}
	for _, r := range base.Rows {
		byKey[r.Size+"/"+r.Workload+"/"+r.Engine] = r
	}
	var failed []string
	for _, r := range rep.Rows {
		if r.Engine != "sharded" {
			continue
		}
		key := r.Size + "/" + r.Workload + "/" + r.Engine
		b, ok := byKey[key]
		if !ok {
			fmt.Fprintf(w, "benchsuite: baseline: %s not in %s (new row, skipped)\n", key, path)
			continue
		}
		floor := b.MsgsPerSec * (1 - threshold)
		verdict := "ok"
		if r.MsgsPerSec < floor {
			verdict = "REGRESSED"
			failed = append(failed, key)
		}
		fmt.Fprintf(w, "benchsuite: baseline: %s %.0f msgs/s vs %.0f baseline (floor %.0f): %s\n",
			key, r.MsgsPerSec, b.MsgsPerSec, floor, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("emu throughput regressed past %.0f%% on: %s",
			threshold*100, strings.Join(failed, ", "))
	}
	return nil
}
