// Command abccc builds and inspects ABCCC instances.
//
// Usage:
//
//	abccc -n 4 -k 1 -p 2 info
//	abccc -n 4 -k 1 -p 2 route '[0,0|0]' '[3,2|1]' [-strategy grouped]
//	abccc -n 4 -k 1 -p 2 paths '[0,0|0]' '[3,2|1]'
//	abccc -n 4 -k 1 -p 2 broadcast '[0,0|0]'
//	abccc -n 4 -k 1 -p 2 expand
//	abccc -n 4 -k 1 -p 2 dot > net.dot
//	abccc -n 4 -k 1 -p 2 wiring
//	abccc plan -servers 5000 -max-ports 4 -max-radix 48
//	abccc -n 4 -k 1 -p 2 emulate
//	abccc -n 4 -k 1 -p 2 partial 5
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/planner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abccc:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("abccc", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 4, "switch radix")
		k        = fs.Int("k", 1, "order (addresses have k+1 digits)")
		p        = fs.Int("p", 2, "NIC ports per server")
		strategy = fs.String("strategy", "grouped", "routing strategy: grouped|identity|reversed|random")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command: info|route|paths|broadcast|expand|dot|wiring|json|emulate|partial|plan")
	}
	if rest[0] == "plan" {
		return plan(w, rest[1:])
	}
	tp, err := core.Build(core.Config{N: *n, K: *k, P: *p})
	if err != nil {
		return err
	}
	switch rest[0] {
	case "info":
		return info(w, tp)
	case "route":
		if len(rest) != 3 {
			return fmt.Errorf("route needs <src> <dst> addresses like '[0,1|0]'")
		}
		return route(w, tp, rest[1], rest[2], *strategy)
	case "paths":
		if len(rest) != 3 {
			return fmt.Errorf("paths needs <src> <dst>")
		}
		return paths(w, tp, rest[1], rest[2])
	case "broadcast":
		if len(rest) != 2 {
			return fmt.Errorf("broadcast needs <root>")
		}
		return broadcast(w, tp, rest[1])
	case "expand":
		return expand(w, tp)
	case "dot":
		return topology.WriteDOT(w, tp.Network())
	case "wiring":
		return tp.WriteWiringPlan(w)
	case "json":
		return topology.WriteJSON(w, tp.Network())
	case "emulate":
		return emulate(w, tp)
	case "partial":
		if len(rest) != 2 {
			return fmt.Errorf("partial needs <crossbars>")
		}
		return partial(w, core.Config{N: *n, K: *k, P: *p}, rest[1])
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

func info(w io.Writer, tp *core.ABCCC) error {
	props := tp.Properties()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "structure\t%s\n", props.Name)
	fmt.Fprintf(tw, "servers\t%d\n", props.Servers)
	fmt.Fprintf(tw, "switches\t%d\n", props.Switches)
	fmt.Fprintf(tw, "links\t%d\n", props.Links)
	fmt.Fprintf(tw, "servers per crossbar (r)\t%d\n", tp.Config().ServersPerCrossbar())
	fmt.Fprintf(tw, "NIC ports per server\t%d\n", props.ServerPorts)
	fmt.Fprintf(tw, "switch radix\t%d\n", props.SwitchPorts)
	fmt.Fprintf(tw, "diameter\t%d hops (%d links)\n", props.Diameter, props.DiameterLinks)
	fmt.Fprintf(tw, "bisection\t%d links\n", props.BisectionLinks)
	return tw.Flush()
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "grouped":
		return core.StrategyGrouped, nil
	case "identity":
		return core.StrategyIdentity, nil
	case "reversed":
		return core.StrategyReversed, nil
	case "random":
		return core.StrategyRandom, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func endpoints(tp *core.ABCCC, srcS, dstS string) (src, dst int, err error) {
	srcAddr, err := tp.ParseAddr(srcS)
	if err != nil {
		return 0, 0, err
	}
	dstAddr, err := tp.ParseAddr(dstS)
	if err != nil {
		return 0, 0, err
	}
	if src, err = tp.NodeOf(srcAddr); err != nil {
		return 0, 0, err
	}
	dst, err = tp.NodeOf(dstAddr)
	return src, dst, err
}

func route(w io.Writer, tp *core.ABCCC, srcS, dstS, stratS string) error {
	strat, err := parseStrategy(stratS)
	if err != nil {
		return err
	}
	src, dst, err := endpoints(tp, srcS, dstS)
	if err != nil {
		return err
	}
	path, err := tp.RouteWithStrategy(src, dst, strat, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (%d hops, %d links)\n", formatPath(tp.Network(), path),
		path.SwitchHops(tp.Network()), path.Len())
	return nil
}

func paths(w io.Writer, tp *core.ABCCC, srcS, dstS string) error {
	src, dst, err := endpoints(tp, srcS, dstS)
	if err != nil {
		return err
	}
	pp := tp.ParallelPaths(src, dst)
	fmt.Fprintf(w, "%d internally disjoint paths:\n", len(pp))
	for _, path := range pp {
		fmt.Fprintf(w, "  %s (%d hops)\n", formatPath(tp.Network(), path),
			path.SwitchHops(tp.Network()))
	}
	return nil
}

func broadcast(w io.Writer, tp *core.ABCCC, rootS string) error {
	addr, err := tp.ParseAddr(rootS)
	if err != nil {
		return err
	}
	root, err := tp.NodeOf(addr)
	if err != nil {
		return err
	}
	depth, err := tp.BroadcastDepth(root)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "broadcast from %s reaches all %d servers in %d hops\n",
		rootS, tp.Network().NumServers(), depth)
	return nil
}

func expand(w io.Writer, tp *core.ABCCC) error {
	_, report, err := core.Expand(tp)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report)
	return nil
}

// emulate boots the instance as goroutine-per-device processes, delivers a
// permutation with the static hop-by-hop policy, and converges the
// distance-vector and link-state control planes for comparison.
func emulate(w io.Writer, tp *core.ABCCC) error {
	flows := traffic.Permutation(tp.Network().NumServers(), rand.New(rand.NewSource(1)))
	stats, err := emu.Run(tp, flows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "static forwarding: delivered %d/%d (max %d hops), %d adjacencies discovered\n",
		stats.Delivered, stats.Injected, stats.MaxHops, stats.HelloAcks)
	dv, err := emu.RunDV(tp, flows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distance-vector:   converged in %d rounds / %d advertisements, delivered %d/%d\n",
		dv.Rounds, dv.Messages, dv.Delivered, dv.Injected)
	ls, err := emu.RunLS(tp, flows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "link-state:        flooded %d LSAs in %d rounds, delivered %d/%d\n",
		ls.Messages, ls.Rounds, ls.Delivered, ls.Injected)
	return nil
}

// partial builds an incremental deployment and reports its state plus the
// cost of the next growth step.
func partial(w io.Writer, cfg core.Config, arg string) error {
	m, err := strconv.Atoi(arg)
	if err != nil {
		return fmt.Errorf("partial: %w", err)
	}
	p, err := core.BuildPartial(cfg, m)
	if err != nil {
		return err
	}
	net := p.Network()
	fmt.Fprintf(w, "%s: %d servers, %d switches, %d cables; connected: %v\n",
		net.Name(), net.NumServers(), net.NumSwitches(), net.NumLinks(),
		net.Graph().Connected(nil))
	if p.Crossbars() < cfg.NumVectors() {
		_, report, err := core.Grow(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "next step: %s\n", report)
	} else {
		fmt.Fprintln(w, "deployment complete")
	}
	return nil
}

// plan runs the deployment planner with its own flag set.
func plan(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("abccc plan", flag.ContinueOnError)
	var (
		servers  = fs.Int("servers", 1000, "minimum server population")
		maxPorts = fs.Int("max-ports", 4, "NIC ports available per server")
		maxRadix = fs.Int("max-radix", 48, "largest switch radix available")
		budget   = fs.Float64("budget", 0, "total interconnect budget in $ (0 = unlimited)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	frontier, err := planner.Plan(planner.Requirements{
		MinServers:     *servers,
		MaxServerPorts: *maxPorts,
		MaxSwitchPorts: *maxRadix,
		MaxBudget:      *budget,
	}, cost.Default())
	if err != nil {
		return err
	}
	if len(frontier) == 0 {
		fmt.Fprintln(w, "no feasible configuration under these constraints")
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tservers\tdiam(hops)\tbisec/srv\ttotal $\t$/server")
	for _, c := range frontier {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.0f\t%.2f\n",
			c.Props.Name, c.Props.Servers, c.Props.Diameter,
			c.BisectionPerServer, c.CapEx.Total(), c.PerServer)
	}
	return tw.Flush()
}

func formatPath(net *topology.Network, path topology.Path) string {
	labels := make([]string, len(path))
	for i, node := range path {
		labels[i] = net.Label(node)
	}
	return strings.Join(labels, " -> ")
}
