package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCommands(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		want    string
		wantErr bool
	}{
		{
			name: "info",
			args: []string{"-n", "4", "-k", "1", "-p", "2", "info"},
			want: "ABCCC(4,1,2)",
		},
		{
			name: "route",
			args: []string{"-n", "4", "-k", "1", "-p", "2", "route", "[0,0|0]", "[3,2|1]"},
			want: "hops",
		},
		{
			name: "route identity strategy",
			args: []string{"-n", "4", "-k", "1", "-p", "2", "-strategy", "identity", "route", "[0,0|0]", "[3,2|1]"},
			want: "hops",
		},
		{
			name: "paths",
			args: []string{"-n", "4", "-k", "1", "-p", "2", "paths", "[0,0|0]", "[3,2|1]"},
			want: "disjoint paths",
		},
		{
			name: "broadcast",
			args: []string{"-n", "4", "-k", "1", "-p", "2", "broadcast", "[0,0|0]"},
			want: "reaches all 32 servers",
		},
		{
			name: "expand",
			args: []string{"-n", "4", "-k", "0", "-p", "2", "expand"},
			want: "rewired 0",
		},
		{name: "no command", args: []string{"-n", "4"}, wantErr: true},
		{name: "unknown command", args: []string{"bogus"}, wantErr: true},
		{name: "bad config", args: []string{"-n", "1", "info"}, wantErr: true},
		{name: "bad address", args: []string{"route", "junk", "[0,0|1]"}, wantErr: true},
		{name: "bad dst address", args: []string{"route", "[0,0|1]", "junk"}, wantErr: true},
		{name: "bad strategy", args: []string{"-strategy", "zigzag", "route", "[0,0|0]", "[0,0|1]"}, wantErr: true},
		{name: "route arity", args: []string{"route", "[0,0|0]"}, wantErr: true},
		{name: "paths arity", args: []string{"paths"}, wantErr: true},
		{name: "broadcast arity", args: []string{"broadcast"}, wantErr: true},
		{name: "broadcast bad root", args: []string{"broadcast", "zzz"}, wantErr: true},
		{name: "expand at capacity", args: []string{"-n", "2", "-k", "1", "-p", "2", "expand"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tt.args, &buf)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("run(%v) succeeded, want error; output:\n%s", tt.args, buf.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(buf.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, buf.String())
			}
		})
	}
}

func TestDotOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "2", "-k", "0", "-p", "2", "dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph") || !strings.Contains(out, "--") {
		t.Errorf("dot output malformed:\n%s", out)
	}
}

func TestWiringOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "2", "-k", "0", "-p", "2", "wiring"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "port 0 <->") {
		t.Errorf("wiring output malformed:\n%s", buf.String())
	}
}

func TestPlanCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"plan", "-servers", "500", "-max-ports", "3", "-max-radix", "24"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$/server") || !strings.Contains(buf.String(), "ABCCC(") {
		t.Errorf("plan output malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"plan", "-servers", "99999999", "-max-ports", "2", "-max-radix", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no feasible") {
		t.Errorf("impossible plan output:\n%s", buf.String())
	}
	if err := run([]string{"plan", "-servers", "0"}, &buf); err == nil {
		t.Error("invalid plan requirements accepted")
	}
	if err := run([]string{"plan", "-bogus"}, &buf); err == nil {
		t.Error("bad plan flag accepted")
	}
}

func TestEmulateCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-k", "1", "-p", "2", "emulate"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"static forwarding", "distance-vector", "link-state"} {
		if !strings.Contains(out, want) {
			t.Errorf("emulate output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "2", "-k", "0", "-p", "2", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"nodes"`) || !strings.Contains(buf.String(), `"links"`) {
		t.Errorf("json output malformed:\n%s", buf.String())
	}
}

func TestPartialCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-k", "1", "-p", "2", "partial", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "next step") {
		t.Errorf("partial output malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-n", "3", "-k", "1", "-p", "2", "partial", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deployment complete") {
		t.Errorf("complete output malformed:\n%s", buf.String())
	}
	if err := run([]string{"partial"}, &buf); err == nil {
		t.Error("missing arg accepted")
	}
	if err := run([]string{"partial", "x"}, &buf); err == nil {
		t.Error("non-numeric arg accepted")
	}
	if err := run([]string{"partial", "99"}, &buf); err == nil {
		t.Error("oversized arg accepted")
	}
}
