package main

import (
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// -update regenerates testdata: the f26.jsonl.gz fixture (re-running the F26
// smoke scenario via experiments.WriteRecoveryRun), the svc.jsonl.gz fixture
// (the F30 smoke cell via experiments.WriteRetryStormRun), the surv.jsonl.gz
// fixture (an F31 lifetime replay via experiments.WriteSurvRun), and every
// golden file. Shard busy/wait numbers are wall-clock, so regeneration
// rewrites fixture and goldens together; committed, the pair is byte-stable.
var update = flag.Bool("update", false, "regenerate testdata fixtures and golden files")

const (
	fixture     = "testdata/f26.jsonl.gz"
	svcFixture  = "testdata/svc.jsonl.gz"
	survFixture = "testdata/surv.jsonl.gz"
)

func TestMain(m *testing.M) {
	flag.Parse()
	if *update {
		if err := regenFixtures(); err != nil {
			fmt.Fprintln(os.Stderr, "regenerate fixtures:", err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

func regenFixtures() error {
	if err := writeGzFixture(fixture, experiments.WriteRecoveryRun); err != nil {
		return err
	}
	if err := writeGzFixture(svcFixture, experiments.WriteRetryStormRun); err != nil {
		return err
	}
	return writeGzFixture(survFixture, experiments.WriteSurvRun)
}

func writeGzFixture(path string, write func(io.Writer) error) error {
	var raw bytes.Buffer
	if err := write(&raw); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// golden compares got against testdata/name, or rewrites it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (regenerate with: go test ./cmd/obsreport -update)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (regenerate with: go test ./cmd/obsreport -update)\ngot:\n%s",
			name, truncate(got, 2000))
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}

func TestTerminalGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{fixture}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden(t, "f26.txt", out.Bytes())
}

// TestSvcTerminalGolden pins the generic-track fallback: a service-layer run
// record carries only svc_* tracks the report has no dedicated columns for,
// so the timeline renders one raw-named column per track.
func TestSvcTerminalGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{svcFixture}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"engine=svc", "svc_offered_req", "svc_ok_storage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("svc report missing %q", want)
		}
	}
	if strings.Contains(out.String(), "goodput(Gb/s)") {
		t.Error("svc report used the packet-track columns instead of the generic fallback")
	}
	golden(t, "svc.txt", out.Bytes())
}

// TestSurvTerminalGolden pins the series-track fallback on a survivability
// run record: surv_* gauge tracks only (one point per sample instant, no
// metrics registry), rendered as raw-named timeline columns.
func TestSurvTerminalGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{survFixture}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"engine=surv", "surv_reachable_ppm", "surv_events"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("surv report missing %q", want)
		}
	}
	if strings.Contains(out.String(), "goodput(Gb/s)") {
		t.Error("surv report used the packet-track columns instead of the generic fallback")
	}
	golden(t, "surv.txt", out.Bytes())
}

func TestHTMLGolden(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "f26.html")
	var msg bytes.Buffer
	if err := run([]string{"-html", outPath, fixture}, &msg); err != nil {
		t.Fatalf("run -html: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	for _, want := range []string{`id="goodput"`, `id="shards"`, `class="cell"`, `id="obs-data"`, "</html>"} {
		if !strings.Contains(string(got), want) {
			t.Errorf("HTML output missing %q", want)
		}
	}
	golden(t, "f26.html", got)
}

func TestDiffGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-diff", fixture, "testdata/mini.jsonl"}, &out); err != nil {
		t.Fatalf("run -diff: %v", err)
	}
	golden(t, "diff.txt", out.Bytes())
}

// TestMixedLegacyFile pins the tolerant-read path: legacy events with no
// "type" field, a blank line, an unknown record type, and typed sections all
// in one file.
func TestMixedLegacyFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"testdata/mini.jsonl"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"no meta header", "1 unknown (skipped)", "pkt_send", "pkt_recv"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q in:\n%s", want, s)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		args []string
	}{
		{"malformed json", []string{write("bad.jsonl", "{not json\n")}},
		{"empty file", []string{write("empty.jsonl", "")}},
		{"missing file", []string{filepath.Join(dir, "nope.jsonl")}},
		{"truncated gzip", []string{write("trunc.jsonl.gz", "\x1f\x8b\x08")}},
		{"diff arity", []string{"-diff", fixture}},
		{"no args", nil},
	}
	for _, tc := range cases {
		if err := run(tc.args, io.Discard); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}
