// Command obsreport renders offline reports from run-record JSONL files —
// the combined telemetry stream (meta header, trace events, series points,
// shard profile rows) written by obs.WriteRun, or any legacy trace written by
// obs.Tracer.WriteJSONL. Files ending in .gz are decompressed transparently.
//
// Usage:
//
//	obsreport run.jsonl            terminal timeline report
//	obsreport -html out.html run.jsonl
//	obsreport -diff a.jsonl b.jsonl
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	var (
		htmlOut = fs.String("html", "", "write a self-contained HTML report to this file instead of the terminal timeline")
		diff    = fs.Bool("diff", false, "compare two run records side by side (takes exactly two files)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: obsreport [-html out.html] run.jsonl | obsreport -diff a.jsonl b.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff takes exactly two files, got %d", fs.NArg())
		}
		a, err := load(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := load(fs.Arg(1))
		if err != nil {
			return err
		}
		return writeDiff(w, a, b)
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("expected one run-record file, got %d args", fs.NArg())
	}
	r, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := writeHTML(f, r); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *htmlOut)
		return nil
	}
	return writeReport(w, r)
}

// runFile is one loaded record file: the parsed records plus the name the
// report refers to it by.
type runFile struct {
	name string
	recs *obs.RunRecords
}

// load reads a run-record file, decompressing .gz transparently.
func load(path string) (*runFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	recs, err := obs.ReadRecords(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(recs.Events) == 0 && len(recs.Series) == 0 && len(recs.ShardWindows) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}
	return &runFile{name: path, recs: recs}, nil
}
