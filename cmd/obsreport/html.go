// Self-contained HTML report: inline SVG time-series charts (goodput, drop
// causes, transport activity, queue depth) and a shard busy/wait utilization
// heatmap, with a hover layer and a table view per chart. No external assets:
// the palette, the markup, and the small tooltip script are all inlined, so
// the file opens anywhere.

package main

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/packetsim"
)

// Categorical palette (fixed slot order; color follows the track, never its
// rank) and sequential ramp for the heatmap. Light/dark pairs swap via CSS
// custom properties; see the style block in writeHTML.
var seriesSlots = []struct{ light, dark string }{
	{"#2a78d6", "#3987e5"}, // 1 blue
	{"#eb6834", "#d95926"}, // 2 orange
	{"#1baf7a", "#199e70"}, // 3 aqua
	{"#eda100", "#c98500"}, // 4 yellow
	{"#e87ba4", "#d55181"}, // 5 magenta
	{"#008300", "#008300"}, // 6 green
	{"#4a3aa7", "#9085e9"}, // 7 violet
	{"#e34948", "#e66767"}, // 8 red
}

// trackSlot fixes each known track to a palette slot (0-based).
var trackSlot = map[string]int{
	packetsim.SeriesGoodputBytes: 0,
	packetsim.SeriesDropFault:    1,
	packetsim.SeriesDropStale:    2,
	packetsim.SeriesDropTail:     3,
	packetsim.SeriesRetransmits:  4,
	packetsim.SeriesReroutes:     5,
	packetsim.SeriesFailovers:    6,
	packetsim.SeriesQueueDepth:   7,
}

// sequential blue ramp, light surface (step 100..700) — heatmap magnitude.
var seqLight = []string{"#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5", "#256abf", "#184f95", "#0d366b"}

// dark-surface run of the same hue, light→dark meaning low→high utilization
// (reversed so "near zero" recedes toward the dark surface).
var seqDark = []string{"#0d366b", "#184f95", "#1c5cab", "#256abf", "#3987e5", "#6da7ec", "#9ec5f4"}

// Chart geometry (SVG user units).
const (
	chartW     = 760
	chartH     = 230
	plotLeft   = 56
	plotRight  = chartW - 120
	plotTop    = 18
	plotBottom = chartH - 34
)

// chartSeries is one line on a chart.
type chartSeries struct {
	name string
	slot int
	vals []float64
}

// lineChart is one rendered time-series card.
type lineChart struct {
	id, title, sub string
	unit           string
	dec            int // value decimals in labels/tooltips
	widthMs        float64
	series         []chartSeries
}

// jsChart is the hover-layer data embedded for one line chart.
type jsChart struct {
	ID     string      `json:"id"`
	Unit   string      `json:"unit"`
	Dec    int         `json:"dec"`
	Times  []string    `json:"times"`
	Xpx    []float64   `json:"xpx"`
	Names  []string    `json:"names"`
	Slots  []int       `json:"slots"`
	Values [][]float64 `json:"values"`
}

func esc(s string) string { return html.EscapeString(s) }

// niceCeil rounds up to a 1/2/2.5/5 x 10^k ceiling for a clean y-axis.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*base {
			return m * base
		}
	}
	return 10 * base
}

func fmtVal(v float64, dec int) string {
	return fmt.Sprintf("%.*f", dec, v)
}

// buildCharts derives the report's line charts from the folded series. Only
// tracks present in the file get a line; charts with no tracks are skipped.
func buildCharts(fs *foldedSeries) []*lineChart {
	if fs.n == 0 {
		return nil
	}
	widthMs := ms(fs.widthNs)
	sums := func(track string) []float64 {
		s := fs.sums[track]
		if s == nil {
			return nil
		}
		out := make([]float64, fs.n)
		for i, v := range s {
			out[i] = float64(v)
		}
		return out
	}
	var charts []*lineChart

	if fs.sums[packetsim.SeriesGoodputBytes] != nil {
		vals := make([]float64, fs.n)
		for i := range vals {
			vals[i] = fs.goodputGbps(i)
		}
		charts = append(charts, &lineChart{
			id: "goodput", title: "Goodput", sub: "delivered payload rate per window",
			unit: "Gb/s", dec: 3, widthMs: widthMs,
			series: []chartSeries{{"goodput", trackSlot[packetsim.SeriesGoodputBytes], vals}},
		})
	}

	drops := &lineChart{
		id: "drops", title: "Drops by cause", sub: "packets dropped per window",
		unit: "drops", dec: 0, widthMs: widthMs,
	}
	for _, tr := range []struct{ track, label string }{
		{packetsim.SeriesDropFault, "fault"},
		{packetsim.SeriesDropStale, "stale"},
		{packetsim.SeriesDropTail, "tail"},
	} {
		if v := sums(tr.track); v != nil {
			drops.series = append(drops.series, chartSeries{tr.label, trackSlot[tr.track], v})
		}
	}
	if len(drops.series) > 0 {
		charts = append(charts, drops)
	}

	act := &lineChart{
		id: "activity", title: "Recovery activity", sub: "transport recovery actions per window",
		unit: "events", dec: 0, widthMs: widthMs,
	}
	for _, tr := range []struct{ track, label string }{
		{packetsim.SeriesRetransmits, "retransmits"},
		{packetsim.SeriesReroutes, "reroutes"},
		{packetsim.SeriesFailovers, "failovers"},
	} {
		if v := sums(tr.track); v != nil {
			act.series = append(act.series, chartSeries{tr.label, trackSlot[tr.track], v})
		}
	}
	if len(act.series) > 0 {
		charts = append(charts, act)
	}

	// Tracks without a dedicated chart (suite records, future engines) each
	// get their own single-series card — one series, slot 1, named by the
	// card title.
	for ti, track := range fs.tracks() {
		if _, known := trackSlot[track]; known {
			continue
		}
		charts = append(charts, &lineChart{
			id: fmt.Sprintf("track-%d", ti), title: track, sub: "summed per window",
			unit: "sum", dec: 0, widthMs: widthMs,
			series: []chartSeries{{track, 0, sums(track)}},
		})
	}

	if m := fs.maxs[packetsim.SeriesQueueDepth]; m != nil {
		vals := make([]float64, fs.n)
		for i, v := range m {
			vals[i] = float64(v)
		}
		charts = append(charts, &lineChart{
			id: "queue", title: "Queue depth", sub: "deepest backlog sampled per window",
			unit: "pkts", dec: 0, widthMs: widthMs,
			series: []chartSeries{{"max queue", trackSlot[packetsim.SeriesQueueDepth], vals}},
		})
	}
	return charts
}

// xCenter returns the SVG x of window i's center.
func xCenter(i, n int) float64 {
	return plotLeft + (float64(i)+0.5)*(plotRight-plotLeft)/float64(n)
}

// renderLineChart draws one card's SVG: hairline grid, 2px round-join lines,
// ringed markers when the point count allows, and direct end labels (with
// simple collision nudging) when the chart has 2-4 series.
func renderLineChart(b *strings.Builder, c *lineChart) {
	n := len(c.series[0].vals)
	yMax := 0.0
	for _, s := range c.series {
		for _, v := range s.vals {
			if v > yMax {
				yMax = v
			}
		}
	}
	yMax = niceCeil(yMax)
	y := func(v float64) float64 {
		return plotBottom - v/yMax*(plotBottom-plotTop)
	}

	fmt.Fprintf(b, `<svg class="chart" id="%s" viewBox="0 0 %d %d" role="img" aria-label="%s" tabindex="0">`,
		c.id, chartW, chartH, esc(c.title))
	// Grid: 4 horizontal hairlines + baseline, ticks in muted ink.
	for i := 0; i <= 4; i++ {
		gy := plotTop + float64(i)*(plotBottom-plotTop)/4
		cls := "grid"
		if i == 4 {
			cls = "axis"
		}
		fmt.Fprintf(b, `<line class="%s" x1="%d" y1="%.1f" x2="%d" y2="%.1f"/>`,
			cls, plotLeft, gy, plotRight, gy)
		fmt.Fprintf(b, `<text class="tick" x="%d" y="%.1f" text-anchor="end">%s</text>`,
			plotLeft-6, gy+3.5, fmtVal(yMax*float64(4-i)/4, c.dec))
	}
	// X ticks: window starts at ~6 positions.
	step := (n + 5) / 6
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		tx := plotLeft + float64(i)*(plotRight-plotLeft)/float64(n)
		fmt.Fprintf(b, `<text class="tick" x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			tx, plotBottom+16, fmtVal(float64(i)*c.widthMs, 0))
	}
	fmt.Fprintf(b, `<text class="tick" x="%d" y="%d" text-anchor="middle">ms</text>`,
		plotRight+18, plotBottom+16)
	fmt.Fprintf(b, `<text class="unit" x="%d" y="%d">%s</text>`, plotLeft-44, plotTop-4, esc(c.unit))

	// Lines, then markers (markers on top so their surface rings separate
	// crossings). Marker radius 4 with a 2px surface ring.
	for _, s := range c.series {
		var path strings.Builder
		for i, v := range s.vals {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f", cmd, xCenter(i, n), y(v))
		}
		fmt.Fprintf(b, `<path class="line" d="%s" stroke="var(--series-%d)"/>`, path.String(), s.slot+1)
	}
	if n <= 40 {
		for _, s := range c.series {
			for i, v := range s.vals {
				fmt.Fprintf(b, `<circle class="dot" cx="%.1f" cy="%.1f" r="4" fill="var(--series-%d)"/>`,
					xCenter(i, n), y(v), s.slot+1)
			}
		}
	}
	// Direct end labels for 2-4 series, nudged apart when they collide; a
	// single series is named by the card title, and the legend always covers
	// identity past that.
	if len(c.series) >= 2 && len(c.series) <= 4 {
		type lab struct {
			y    float64
			name string
			slot int
		}
		labs := make([]lab, len(c.series))
		for i, s := range c.series {
			labs[i] = lab{y(s.vals[n-1]), s.name, s.slot}
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i].y < labs[j].y })
		for i := 1; i < len(labs); i++ {
			if labs[i].y < labs[i-1].y+14 {
				labs[i].y = labs[i-1].y + 14
			}
		}
		for _, l := range labs {
			fmt.Fprintf(b, `<rect x="%d" y="%.1f" width="10" height="2" fill="var(--series-%d)"/>`,
				plotRight+8, l.y-1, l.slot+1)
			fmt.Fprintf(b, `<text class="endlabel" x="%d" y="%.1f">%s</text>`,
				plotRight+22, l.y+3.5, esc(l.name))
		}
	}
	// Hover layer targets (filled by script): crosshair + focus dot.
	fmt.Fprintf(b, `<line class="cross" x1="0" x2="0" y1="%d" y2="%d" visibility="hidden"/>`,
		plotTop, plotBottom)
	b.WriteString(`</svg>`)
}

// legendHTML renders the legend row for a multi-series chart (a single
// series needs none — the card title names it).
func legendHTML(b *strings.Builder, c *lineChart) {
	if len(c.series) < 2 {
		return
	}
	b.WriteString(`<div class="legend">`)
	for _, s := range c.series {
		fmt.Fprintf(b, `<span class="key"><span class="swatch" style="background:var(--series-%d)"></span>%s</span>`,
			s.slot+1, esc(s.name))
	}
	b.WriteString(`</div>`)
}

// tableHTML renders the chart's table-view twin inside a <details>.
func tableHTML(b *strings.Builder, c *lineChart) {
	b.WriteString(`<details class="tableview"><summary>Table view</summary><table><thead><tr><th>window (ms)</th>`)
	for _, s := range c.series {
		fmt.Fprintf(b, `<th>%s (%s)</th>`, esc(s.name), esc(c.unit))
	}
	b.WriteString(`</tr></thead><tbody>`)
	n := len(c.series[0].vals)
	for i := 0; i < n; i++ {
		t0 := float64(i) * c.widthMs
		fmt.Fprintf(b, `<tr><td>%s–%s</td>`, fmtVal(t0, 2), fmtVal(t0+c.widthMs, 2))
		for _, s := range c.series {
			fmt.Fprintf(b, `<td>%s</td>`, fmtVal(s.vals[i], c.dec))
		}
		b.WriteString(`</tr>`)
	}
	b.WriteString(`</tbody></table></details>`)
}

// heatmap is the bucketed shard-utilization grid.
type heatmap struct {
	shards  []int
	cols    int
	t0ms    []float64 // per-column start
	t1ms    []float64
	busy    map[int][]int64 // shard -> per-column busy ns
	wait    map[int][]int64
	events  map[int][]int64
	hasData map[int][]bool
}

// heatmapCols caps the grid width: thousands of conservative windows bucket
// into at most this many columns (sums first, ratios after — never an
// average of ratios).
const heatmapCols = 72

func buildHeatmap(rows []obs.ShardWindow) *heatmap {
	if len(rows) == 0 {
		return nil
	}
	minT, maxT := rows[0].T0Ns, rows[0].T0Ns
	shardSet := map[int]bool{}
	for _, r := range rows {
		if r.T0Ns < minT {
			minT = r.T0Ns
		}
		if r.T0Ns > maxT {
			maxT = r.T0Ns
		}
		shardSet[r.Shard] = true
	}
	shards := make([]int, 0, len(shardSet))
	for s := range shardSet {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	span := maxT - minT + 1
	cols := heatmapCols
	if int64(cols) > span {
		cols = int(span)
	}
	hm := &heatmap{
		shards: shards, cols: cols,
		t0ms: make([]float64, cols), t1ms: make([]float64, cols),
		busy: map[int][]int64{}, wait: map[int][]int64{},
		events: map[int][]int64{}, hasData: map[int][]bool{},
	}
	for c := 0; c < cols; c++ {
		hm.t0ms[c] = ms(minT + int64(c)*span/int64(cols))
		hm.t1ms[c] = ms(minT + int64(c+1)*span/int64(cols))
	}
	for _, s := range shards {
		hm.busy[s] = make([]int64, cols)
		hm.wait[s] = make([]int64, cols)
		hm.events[s] = make([]int64, cols)
		hm.hasData[s] = make([]bool, cols)
	}
	for _, r := range rows {
		c := int((r.T0Ns - minT) * int64(cols) / span)
		if c >= cols {
			c = cols - 1
		}
		hm.busy[r.Shard][c] += r.BusyNs
		hm.wait[r.Shard][c] += r.WaitNs
		hm.events[r.Shard][c] += r.Events
		hm.hasData[r.Shard][c] = true
	}
	return hm
}

// renderHeatmap draws the utilization grid: one row per shard, time buckets
// left to right, the sequential ramp carrying busy/(busy+wait). Cells keep a
// 2px surface gap; empty buckets stay surface-colored.
func renderHeatmap(b *strings.Builder, hm *heatmap) {
	const cellH = 30
	top := 18
	gridW := plotRight - plotLeft
	h := top + len(hm.shards)*cellH + 40
	fmt.Fprintf(b, `<svg class="chart heat" id="shards" viewBox="0 0 %d %d" role="img" aria-label="Shard utilization">`,
		chartW, h)
	cw := float64(gridW) / float64(hm.cols)
	for ri, s := range hm.shards {
		fmt.Fprintf(b, `<text class="tick" x="%d" y="%d" text-anchor="end">shard %d</text>`,
			plotLeft-8, top+ri*cellH+cellH/2+4, s)
		for c := 0; c < hm.cols; c++ {
			if !hm.hasData[s][c] {
				continue
			}
			busy, wait := hm.busy[s][c], hm.wait[s][c]
			util := 0.0
			if busy+wait > 0 {
				util = float64(busy) / float64(busy+wait)
			}
			bin := int(util * float64(len(seqLight)))
			if bin >= len(seqLight) {
				bin = len(seqLight) - 1
			}
			tip := fmt.Sprintf("shard %d | %.2f–%.2f ms | util %.0f%% | busy %.3f ms | wait %.3f ms | %d events",
				s, hm.t0ms[c], hm.t1ms[c], util*100, ms(busy), ms(wait), hm.events[s][c])
			fmt.Fprintf(b, `<rect class="cell" x="%.1f" y="%d" width="%.1f" height="%d" fill="var(--seq-%d)" data-tip="%s"/>`,
				float64(plotLeft)+float64(c)*cw+1, top+ri*cellH+1, cw-2, cellH-2, bin+1, esc(tip))
		}
	}
	// Time ticks under the grid.
	for c := 0; c <= 6; c++ {
		frac := float64(c) / 6
		tx := float64(plotLeft) + frac*float64(gridW)
		t := hm.t0ms[0] + frac*(hm.t1ms[hm.cols-1]-hm.t0ms[0])
		fmt.Fprintf(b, `<text class="tick" x="%.1f" y="%d" text-anchor="middle">%.1f</text>`,
			tx, top+len(hm.shards)*cellH+16, t)
	}
	fmt.Fprintf(b, `<text class="tick" x="%d" y="%d" text-anchor="middle">ms</text>`,
		plotRight+18, top+len(hm.shards)*cellH+16)
	// Scale legend: the ramp with 0%% and 100%% anchors.
	ly := top + len(hm.shards)*cellH + 26
	for i := range seqLight {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="16" height="8" fill="var(--seq-%d)"/>`,
			plotLeft+i*18, ly, i+1)
	}
	fmt.Fprintf(b, `<text class="tick" x="%d" y="%d" text-anchor="start">0%% busy</text>`,
		plotLeft+len(seqLight)*18+6, ly+8)
	fmt.Fprintf(b, `<text class="tick" x="%d" y="%d" text-anchor="end">◀</text>`, plotLeft-4, ly+8)
	b.WriteString(`</svg>`)
}

// heatTableHTML is the heatmap's table-view twin: per-shard totals.
func heatTableHTML(b *strings.Builder, prof *obs.ShardProfile, rows []obs.ShardWindow) {
	rowsPerShard := map[int]int{}
	for _, r := range rows {
		rowsPerShard[r.Shard]++
	}
	b.WriteString(`<details class="tableview"><summary>Table view</summary><table><thead><tr><th>shard</th><th>windows</th><th>events</th><th>busy (ms)</th><th>wait (ms)</th><th>util %</th><th>handoff out/in</th></tr></thead><tbody>`)
	for _, s := range prof.Summary() {
		util := 0.0
		if s.BusyNs+s.WaitNs > 0 {
			util = float64(s.BusyNs) / float64(s.BusyNs+s.WaitNs) * 100
		}
		fmt.Fprintf(b, `<tr><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%d/%d</td></tr>`,
			s.Shard, rowsPerShard[s.Shard], s.Events, ms(s.BusyNs), ms(s.WaitNs), util, s.HandoffOut, s.HandoffIn)
	}
	fmt.Fprintf(b, `</tbody></table><p class="note">imbalance index %.2f (1 = perfectly balanced)</p></details>`,
		prof.ImbalanceIndex())
}

// writeHTML renders the full report page.
func writeHTML(w io.Writer, r *runFile) error {
	recs := r.recs
	fs := foldSeries(recs.Series)
	charts := buildCharts(fs)
	hm := buildHeatmap(recs.ShardWindows)

	title := r.name
	if recs.HasMeta && recs.Meta.Label != "" {
		title = recs.Meta.Label
	}

	var b strings.Builder
	b.WriteString(`<!doctype html><html lang="en"><head><meta charset="utf-8"><meta name="viewport" content="width=device-width,initial-scale=1">`)
	fmt.Fprintf(&b, `<title>%s — obsreport</title>`, esc(title))
	writeCSS(&b)
	b.WriteString(`</head><body><div class="page">`)

	fmt.Fprintf(&b, `<h1>%s</h1>`, esc(title))
	b.WriteString(`<p class="meta">`)
	if recs.HasMeta {
		m := recs.Meta
		parts := []string{}
		if m.Engine != "" {
			parts = append(parts, "engine "+esc(m.Engine))
		}
		if m.Topology != "" {
			parts = append(parts, "topology "+esc(m.Topology))
		}
		if m.Workload != "" {
			parts = append(parts, esc(m.Workload))
		}
		if m.Shards > 0 {
			parts = append(parts, fmt.Sprintf("%d shards × %d workers", m.Shards, m.Workers))
		}
		if m.SeriesWindowNs > 0 {
			parts = append(parts, fmt.Sprintf("%.2f ms series windows", ms(m.SeriesWindowNs)))
		}
		b.WriteString(strings.Join(parts, " · "))
	} else {
		b.WriteString("legacy trace (no meta header)")
	}
	fmt.Fprintf(&b, ` · %d events, %d series points, %d shard windows</p>`,
		len(recs.Events), len(recs.Series), len(recs.ShardWindows))

	var hover []jsChart
	for _, c := range charts {
		fmt.Fprintf(&b, `<section class="card"><h2>%s</h2><p class="sub">%s</p>`, esc(c.title), esc(c.sub))
		legendHTML(&b, c)
		renderLineChart(&b, c)
		tableHTML(&b, c)
		b.WriteString(`</section>`)

		n := len(c.series[0].vals)
		jc := jsChart{ID: c.id, Unit: c.unit, Dec: c.dec}
		for i := 0; i < n; i++ {
			t0 := float64(i) * c.widthMs
			jc.Times = append(jc.Times, fmt.Sprintf("%.2f–%.2f ms", t0, t0+c.widthMs))
			jc.Xpx = append(jc.Xpx, math.Round(xCenter(i, n)*10)/10)
		}
		for _, s := range c.series {
			jc.Names = append(jc.Names, s.name)
			jc.Slots = append(jc.Slots, s.slot+1)
			jc.Values = append(jc.Values, s.vals)
		}
		hover = append(hover, jc)
	}

	if hm != nil {
		b.WriteString(`<section class="card"><h2>Shard utilization</h2><p class="sub">busy share of each conservative window barrier (busy ÷ busy+wait), bucketed over simulated time</p>`)
		renderHeatmap(&b, hm)
		heatTableHTML(&b, profileOf(recs.ShardWindows), recs.ShardWindows)
		b.WriteString(`</section>`)
	}

	if len(charts) == 0 && hm == nil {
		b.WriteString(`<section class="card"><h2>No time-series sections</h2><p class="sub">this file carries trace events only — run with obs.Series / ShardOpts.Profile armed to chart it</p></section>`)
	}

	data, err := json.Marshal(hover)
	if err != nil {
		return err
	}
	// </ inside the JSON payload would close the script element early.
	fmt.Fprintf(&b, `<script type="application/json" id="obs-data">%s</script>`,
		strings.ReplaceAll(string(data), "</", `<\/`))
	writeJS(&b)
	b.WriteString(`</div></body></html>`)
	_, err = io.WriteString(w, b.String())
	return err
}

// writeCSS emits the style block: palette slots as custom properties with the
// dark-mode steps swapped in via prefers-color-scheme, and the chart chrome
// (hairline grid, recessive ticks, card surfaces).
func writeCSS(b *strings.Builder) {
	b.WriteString("<style>:root{color-scheme:light dark}\n.page{--surface:#fcfcfb;--plane:#f9f9f7;--ink:#0b0b0b;--ink-2:#52514e;--muted:#898781;--grid:#e1e0d9;--axis:#c3c2b7;--border:rgba(11,11,11,0.10)")
	for i, s := range seriesSlots {
		fmt.Fprintf(b, ";--series-%d:%s", i+1, s.light)
	}
	for i, s := range seqLight {
		fmt.Fprintf(b, ";--seq-%d:%s", i+1, s)
	}
	b.WriteString("}\n@media (prefers-color-scheme:dark){.page{--surface:#1a1a19;--plane:#0d0d0d;--ink:#ffffff;--ink-2:#c3c2b7;--muted:#898781;--grid:#2c2c2a;--axis:#383835;--border:rgba(255,255,255,0.10)")
	for i, s := range seriesSlots {
		fmt.Fprintf(b, ";--series-%d:%s", i+1, s.dark)
	}
	for i, s := range seqDark {
		fmt.Fprintf(b, ";--seq-%d:%s", i+1, s)
	}
	b.WriteString("}}\n")
	b.WriteString(`body{margin:0;background:var(--plane)}
.page{font-family:system-ui,-apple-system,"Segoe UI",sans-serif;color:var(--ink);background:var(--plane);max-width:860px;margin:0 auto;padding:24px 16px 48px}
h1{font-size:22px;font-weight:600;margin:0 0 4px}
h2{font-size:15px;font-weight:600;margin:0 0 2px}
.meta{color:var(--ink-2);font-size:13px;margin:0 0 20px}
.sub{color:var(--muted);font-size:12px;margin:0 0 10px}
.card{background:var(--surface);border:1px solid var(--border);border-radius:8px;padding:16px 18px;margin:0 0 16px}
.chart{display:block;width:100%;height:auto}
.grid{stroke:var(--grid);stroke-width:1}
.axis{stroke:var(--axis);stroke-width:1}
.tick,.unit{fill:var(--muted);font-size:11px;font-variant-numeric:tabular-nums}
.endlabel{fill:var(--ink-2);font-size:11px}
.line{fill:none;stroke-width:2;stroke-linejoin:round;stroke-linecap:round}
.dot{stroke:var(--surface);stroke-width:2}
.cell:hover,.cell:focus{stroke:var(--ink);stroke-width:1;outline:none}
.cross{stroke:var(--axis);stroke-width:1}
.legend{display:flex;gap:14px;flex-wrap:wrap;font-size:12px;color:var(--ink-2);margin:0 0 8px}
.key{display:inline-flex;align-items:center;gap:6px}
.swatch{display:inline-block;width:12px;height:3px;border-radius:1px}
.tableview{margin-top:10px;font-size:12px;color:var(--ink-2)}
.tableview summary{cursor:pointer;color:var(--muted)}
.tableview table{border-collapse:collapse;margin-top:8px}
.tableview th,.tableview td{text-align:right;padding:3px 10px;border-bottom:1px solid var(--grid);font-variant-numeric:tabular-nums}
.tableview th{color:var(--muted);font-weight:500}
.tableview td:first-child,.tableview th:first-child{text-align:left}
.note{color:var(--muted)}
.tip{position:fixed;pointer-events:none;background:var(--surface);border:1px solid var(--border);border-radius:6px;box-shadow:0 2px 8px rgba(0,0,0,.12);padding:8px 10px;font-size:12px;display:none;z-index:10}
.tip .t{color:var(--muted);margin-bottom:4px}
.tip .row{display:flex;align-items:center;gap:6px}
.tip .v{font-weight:600;font-variant-numeric:tabular-nums}
.tip .n{color:var(--ink-2)}
</style>`)
}

// writeJS emits the hover layer: a crosshair tooltip on line charts (nearest
// window to the pointer; arrow keys when the chart is focused) and per-cell
// tooltips on the heatmap. Tooltips only enhance — every value is also in the
// table views — and all text lands via textContent.
func writeJS(b *strings.Builder) {
	b.WriteString(`<script>
(function(){
"use strict";
var tip=document.createElement('div');tip.className='tip';document.body.appendChild(tip);
function show(x,y){tip.style.display='block';var r=tip.getBoundingClientRect();
var px=x+14,py=y+14;if(px+r.width>innerWidth-8)px=x-r.width-14;if(py+r.height>innerHeight-8)py=y-r.height-14;
tip.style.left=px+'px';tip.style.top=py+'px';}
function hide(){tip.style.display='none';}
function fill(rows){tip.textContent='';rows.forEach(function(r){
var d=document.createElement('div');d.className=r.cls;
if(r.swatch){var s=document.createElement('span');s.className='swatch';s.style.background=r.swatch;d.appendChild(s);}
if(r.v!==undefined){var v=document.createElement('span');v.className='v';v.textContent=r.v;d.appendChild(v);}
var n=document.createElement('span');n.className=r.v!==undefined?'n':'';n.textContent=r.text;d.appendChild(n);
tip.appendChild(d);});}
var data=[];try{data=JSON.parse(document.getElementById('obs-data').textContent);}catch(e){}
data.forEach(function(c){
var svg=document.getElementById(c.id);if(!svg)return;
var cross=svg.querySelector('.cross');var idx=-1;
function pick(i,clientX,clientY){
if(i<0||i>=c.xpx.length){cross.setAttribute('visibility','hidden');hide();idx=-1;return;}
idx=i;cross.setAttribute('x1',c.xpx[i]);cross.setAttribute('x2',c.xpx[i]);cross.setAttribute('visibility','visible');
var rows=[{cls:'t',text:c.times[i]}];
c.names.forEach(function(nm,s){rows.push({cls:'row',swatch:'var(--series-'+c.slots[s]+')',v:c.values[s][i].toFixed(c.dec)+' '+c.unit,text:nm});});
fill(rows);show(clientX,clientY);}
svg.addEventListener('pointermove',function(ev){
var pt=svg.createSVGPoint();pt.x=ev.clientX;pt.y=ev.clientY;
var m=svg.getScreenCTM();if(!m)return;var loc=pt.matrixTransform(m.inverse());
var best=0,bd=1e9;c.xpx.forEach(function(x,i){var d=Math.abs(x-loc.x);if(d<bd){bd=d;best=i;}});
pick(best,ev.clientX,ev.clientY);});
svg.addEventListener('pointerleave',function(){pick(-1);});
svg.addEventListener('keydown',function(ev){
if(ev.key==='ArrowRight'||ev.key==='ArrowLeft'){
var r=svg.getBoundingClientRect();
pick(idx<0?0:Math.min(Math.max(idx+(ev.key==='ArrowRight'?1:-1),0),c.xpx.length-1),r.left+r.width/2,r.top+r.height/2);
ev.preventDefault();}
if(ev.key==='Escape')pick(-1);});
svg.addEventListener('blur',function(){pick(-1);});
});
document.querySelectorAll('.cell').forEach(function(cell){
cell.setAttribute('tabindex','0');
function on(ev){var parts=(cell.getAttribute('data-tip')||'').split(' | ');
fill(parts.map(function(p,i){return {cls:i===0?'t':'row',text:p};}));
var r=cell.getBoundingClientRect();show(ev.clientX||r.right,ev.clientY||r.top);}
cell.addEventListener('pointermove',on);
cell.addEventListener('focus',on);
cell.addEventListener('pointerleave',hide);
cell.addEventListener('blur',hide);
});
})();
</script>`)
}
