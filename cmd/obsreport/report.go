// Terminal rendering: the timeline table, the shard-runtime summary, and the
// two-file diff. Everything here works from loaded records only — the tool
// never re-runs a simulation.

package main

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/obs"
	"repro/internal/packetsim"
)

// Track labels the report knows how to head columns with; anything else in a
// file still shows up in totals and the diff under its raw track name.
var trackLabels = map[string]string{
	packetsim.SeriesGoodputBytes: "goodput bytes",
	packetsim.SeriesQueueDepth:   "queue depth",
	packetsim.SeriesDropTail:     "tail drops",
	packetsim.SeriesDropFault:    "fault drops",
	packetsim.SeriesDropStale:    "stale drops",
	packetsim.SeriesRetransmits:  "retransmits",
	packetsim.SeriesReroutes:     "reroutes",
	packetsim.SeriesFailovers:    "failovers",
}

// foldedSeries is the dense per-window view of a file's series points: one
// vector per track, window 0 through the last active window.
type foldedSeries struct {
	widthNs int64
	n       int
	sums    map[string][]int64
	maxs    map[string][]int64
	counts  map[string][]int64
}

// foldSeries folds the points into dense vectors. The window width comes from
// the points themselves (T1-T0), so files without a meta header still render.
func foldSeries(pts []obs.SeriesPoint) *foldedSeries {
	fs := &foldedSeries{
		sums:   map[string][]int64{},
		maxs:   map[string][]int64{},
		counts: map[string][]int64{},
	}
	max := int64(-1)
	for _, pt := range pts {
		if pt.Window > max {
			max = pt.Window
		}
		if fs.widthNs == 0 && pt.T1Ns > pt.T0Ns {
			fs.widthNs = pt.T1Ns - pt.T0Ns
		}
	}
	fs.n = int(max + 1)
	for _, pt := range pts {
		s := fs.sums[pt.Track]
		if s == nil {
			s = make([]int64, fs.n)
			fs.sums[pt.Track] = s
			fs.maxs[pt.Track] = make([]int64, fs.n)
			fs.counts[pt.Track] = make([]int64, fs.n)
		}
		s[pt.Window] += pt.Sum
		fs.counts[pt.Track][pt.Window] += pt.Count
		if pt.Max > fs.maxs[pt.Track][pt.Window] {
			fs.maxs[pt.Track][pt.Window] = pt.Max
		}
	}
	return fs
}

// at returns the summed value of a track at window w (0 for absent tracks).
func (fs *foldedSeries) at(track string, w int) int64 {
	if s := fs.sums[track]; s != nil {
		return s[w]
	}
	return 0
}

// goodputGbps converts a goodput-bytes window sum to Gb/s over the window.
func (fs *foldedSeries) goodputGbps(w int) float64 {
	if fs.widthNs == 0 {
		return 0
	}
	return float64(fs.at(packetsim.SeriesGoodputBytes, w)) * 8 / float64(fs.widthNs)
}

// hasKnownTracks reports whether any packetsim track the report has
// dedicated columns for appears in the fold.
func (fs *foldedSeries) hasKnownTracks() bool {
	for track := range trackLabels {
		if fs.sums[track] != nil {
			return true
		}
	}
	return false
}

// tracks returns the sorted track names present in the fold.
func (fs *foldedSeries) tracks() []string {
	names := make([]string, 0, len(fs.sums))
	for name := range fs.sums {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// totals returns the whole-run sum per track, sorted by track name.
func (fs *foldedSeries) totals() map[string]int64 {
	out := make(map[string]int64, len(fs.sums))
	for name, s := range fs.sums {
		var t int64
		for _, v := range s {
			t += v
		}
		out[name] = t
	}
	return out
}

// profileOf reconstructs an obs.ShardProfile from loaded rows so its summary
// and imbalance helpers apply to offline files.
func profileOf(rows []obs.ShardWindow) *obs.ShardProfile {
	if len(rows) == 0 {
		return nil
	}
	p := obs.NewShardProfile()
	p.RecordWindow(rows)
	return p
}

// eventKinds tallies trace events by kind with first/last timestamps.
type kindStat struct {
	kind        string
	count       int
	first, last int64
}

func eventKinds(events []obs.Event) []kindStat {
	byKind := map[string]*kindStat{}
	for _, ev := range events {
		ks := byKind[ev.Kind]
		if ks == nil {
			ks = &kindStat{kind: ev.Kind, first: ev.TimeNs, last: ev.TimeNs}
			byKind[ev.Kind] = ks
		}
		ks.count++
		if ev.TimeNs < ks.first {
			ks.first = ev.TimeNs
		}
		if ev.TimeNs > ks.last {
			ks.last = ev.TimeNs
		}
	}
	out := make([]kindStat, 0, len(byKind))
	for _, ks := range byKind {
		out = append(out, *ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].kind < out[j].kind })
	return out
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// writeMeta prints the run header common to the report and both diff columns.
func writeMeta(w io.Writer, r *runFile) {
	recs := r.recs
	if recs.HasMeta {
		m := recs.Meta
		fmt.Fprintf(w, "run: %s  engine=%s  topology=%s  workload=%s\n",
			orDash(m.Label), orDash(m.Engine), orDash(m.Topology), orDash(m.Workload))
		if m.Shards > 0 {
			fmt.Fprintf(w, "shards=%d workers=%d  ", m.Shards, m.Workers)
		}
		if m.SeriesWindowNs > 0 {
			fmt.Fprintf(w, "series window=%.2fms  ", ms(m.SeriesWindowNs))
		}
	} else {
		fmt.Fprintf(w, "run: %s (no meta header: legacy trace)\n", r.name)
	}
	fmt.Fprintf(w, "records: %d events, %d series points, %d shard windows",
		len(recs.Events), len(recs.Series), len(recs.ShardWindows))
	if recs.Unknown > 0 {
		fmt.Fprintf(w, ", %d unknown (skipped)", recs.Unknown)
	}
	fmt.Fprintln(w)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// writeReport renders the terminal timeline: meta, the per-window table, the
// shard-runtime summary, and the trace-event tally.
func writeReport(w io.Writer, r *runFile) error {
	writeMeta(w, r)
	recs := r.recs

	if len(recs.Series) > 0 {
		fs := foldSeries(recs.Series)
		fmt.Fprintf(w, "\ntimeline (%.2f ms windows):\n", ms(fs.widthNs))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		if fs.hasKnownTracks() {
			fmt.Fprintln(tw, "win\tt(ms)\tgoodput(Gb/s)\tdrops fault/stale/tail\trtx\treroutes\tfailovers\tqueue max")
			for i := 0; i < fs.n; i++ {
				t0 := ms(int64(i) * fs.widthNs)
				fmt.Fprintf(tw, "%d\t%.2f-%.2f\t%.3f\t%d/%d/%d\t%d\t%d\t%d\t%d\n",
					i, t0, t0+ms(fs.widthNs), fs.goodputGbps(i),
					fs.at(packetsim.SeriesDropFault, i),
					fs.at(packetsim.SeriesDropStale, i),
					fs.at(packetsim.SeriesDropTail, i),
					fs.at(packetsim.SeriesRetransmits, i),
					fs.at(packetsim.SeriesReroutes, i),
					fs.at(packetsim.SeriesFailovers, i),
					maxAt(fs, packetsim.SeriesQueueDepth, i))
			}
		} else {
			// Tracks this tool has no dedicated columns for (a suite record,
			// a future engine): one summed column per track, raw names.
			fmt.Fprint(tw, "win\tt(ms)")
			names := fs.tracks()
			for _, n := range names {
				fmt.Fprintf(tw, "\t%s", n)
			}
			fmt.Fprintln(tw)
			for i := 0; i < fs.n; i++ {
				t0 := ms(int64(i) * fs.widthNs)
				fmt.Fprintf(tw, "%d\t%.2f-%.2f", i, t0, t0+ms(fs.widthNs))
				for _, n := range names {
					fmt.Fprintf(tw, "\t%d", fs.at(n, i))
				}
				fmt.Fprintln(tw)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if prof := profileOf(recs.ShardWindows); prof != nil {
		rowsPerShard := map[int]int{}
		for _, row := range recs.ShardWindows {
			rowsPerShard[row.Shard]++
		}
		fmt.Fprintf(w, "\nshard runtime (%d conservative windows):\n",
			len(recs.ShardWindows)/shardsIn(recs.ShardWindows))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "shard\twindows\tevents\tbusy(ms)\twait(ms)\tutil%\thandoff out/in")
		for _, s := range prof.Summary() {
			util := 0.0
			if s.BusyNs+s.WaitNs > 0 {
				util = float64(s.BusyNs) / float64(s.BusyNs+s.WaitNs) * 100
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%.2f\t%.1f\t%d/%d\n",
				s.Shard, rowsPerShard[s.Shard], s.Events, ms(s.BusyNs), ms(s.WaitNs), util,
				s.HandoffOut, s.HandoffIn)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "imbalance index: %.2f (mean of per-window max/mean busy; 1 = perfectly balanced)\n",
			prof.ImbalanceIndex())
	}

	if len(recs.Events) > 0 {
		fmt.Fprintln(w, "\ntrace events:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "kind\tcount\tfirst(ms)\tlast(ms)")
		for _, ks := range eventKinds(recs.Events) {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", ks.kind, ks.count, ms(ks.first), ms(ks.last))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func maxAt(fs *foldedSeries, track string, w int) int64 {
	if m := fs.maxs[track]; m != nil {
		return m[w]
	}
	return 0
}

// shardsIn counts the distinct shards in a row set.
func shardsIn(rows []obs.ShardWindow) int {
	seen := map[int]bool{}
	for _, r := range rows {
		seen[r.Shard] = true
	}
	if len(seen) == 0 {
		return 1
	}
	return len(seen)
}

// writeDiff renders the side-by-side comparison of two run records: meta,
// per-track series totals, shard-runtime totals, and trace-event tallies.
func writeDiff(w io.Writer, a, b *runFile) error {
	fmt.Fprintf(w, "A: %s\n", a.name)
	writeMeta(w, a)
	fmt.Fprintf(w, "\nB: %s\n", b.name)
	writeMeta(w, b)

	fa, fb := foldSeries(a.recs.Series), foldSeries(b.recs.Series)
	ta, tb := fa.totals(), fb.totals()
	names := map[string]bool{}
	for n := range ta {
		names[n] = true
	}
	for n := range tb {
		names[n] = true
	}
	if len(names) > 0 {
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		fmt.Fprintln(w, "\nseries totals:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "track\tA\tB\tdelta")
		for _, n := range sorted {
			label := n
			if l, ok := trackLabels[n]; ok {
				label = l
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%+d\n", label, ta[n], tb[n], tb[n]-ta[n])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	pa, pb := profileOf(a.recs.ShardWindows), profileOf(b.recs.ShardWindows)
	if pa != nil || pb != nil {
		fmt.Fprintln(w, "\nshard runtime:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\tA\tB")
		line := func(label string, va, vb string) { fmt.Fprintf(tw, "%s\t%s\t%s\n", label, va, vb) }
		line("windows", profWindows(pa), profWindows(pb))
		line("busy(ms)", profBusy(pa), profBusy(pb))
		line("wait(ms)", profWait(pa), profWait(pb))
		line("imbalance", profImb(pa), profImb(pb))
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	ka, kb := eventKinds(a.recs.Events), eventKinds(b.recs.Events)
	if len(ka) > 0 || len(kb) > 0 {
		counts := map[string][2]int{}
		for _, ks := range ka {
			c := counts[ks.kind]
			c[0] = ks.count
			counts[ks.kind] = c
		}
		for _, ks := range kb {
			c := counts[ks.kind]
			c[1] = ks.count
			counts[ks.kind] = c
		}
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintln(w, "\ntrace events:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "kind\tA\tB\tdelta")
		for _, k := range kinds {
			c := counts[k]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%+d\n", k, c[0], c[1], c[1]-c[0])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func profWindows(p *obs.ShardProfile) string {
	if p == nil {
		return "-"
	}
	rows := p.Windows()
	if len(rows) == 0 {
		return "-"
	}
	shards := shardsIn(rows)
	return fmt.Sprintf("%d x %d shards", len(rows)/shards, shards)
}

func profBusy(p *obs.ShardProfile) string {
	if p == nil {
		return "-"
	}
	var busy int64
	for _, s := range p.Summary() {
		busy += s.BusyNs
	}
	return fmt.Sprintf("%.2f", ms(busy))
}

func profWait(p *obs.ShardProfile) string {
	if p == nil {
		return "-"
	}
	var wait int64
	for _, s := range p.Summary() {
		wait += s.WaitNs
	}
	return fmt.Sprintf("%.2f", ms(wait))
}

func profImb(p *obs.ShardProfile) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%.2f", p.ImbalanceIndex())
}
