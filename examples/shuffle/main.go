// Shuffle: run a MapReduce-style shuffle (every mapper streams to every
// reducer) on ABCCC and BCube at comparable scale, comparing the max-min
// fair aggregate bottleneck throughput (flow level) and the loss/latency
// behaviour (packet level) — the workload the paper's introduction
// motivates server-centric networks with.
//
//	go run ./examples/shuffle
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/flowsim"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	subjects := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", mustABCCC(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", mustABCCC(core.Config{N: 4, K: 1, P: 3})},
		{"BCube(4,1)", mustBCube(bcube.Config{N: 4, K: 1})},
	}
	for _, s := range subjects {
		n := s.t.Network().NumServers()
		rng := rand.New(rand.NewSource(99))
		flows, err := traffic.Shuffle(n, n/4, n/4, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d servers, shuffle %dx%d = %d flows\n",
			s.name, n, n/4, n/4, len(flows))

		paths, err := flowsim.RoutePaths(s.t, flows)
		if err != nil {
			log.Fatal(err)
		}
		asg, err := flowsim.MaxMinFair(s.t.Network(), paths)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  flow level: bottleneck %.3f of line rate, ABT %.2f\n",
			asg.MinRate(), asg.ABT())

		res, err := packetsim.Run(s.t, flows, packetsim.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  packet level: %.1f%% dropped, avg latency %.0fus, %.2f Gb/s delivered\n",
			100*res.DropRate(), res.AvgLatencySec*1e6, res.ThroughputBps*8/1e9)
	}
}

func mustABCCC(cfg core.Config) *core.ABCCC {
	t, err := core.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func mustBCube(cfg bcube.Config) *bcube.BCube {
	t, err := bcube.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
