// Quickstart: build an ABCCC network, look up addresses, route between two
// servers, and print the headline topological properties.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

func main() {
	// ABCCC(n=4, k=1, p=2): 4-port switches, 2-digit addresses, dual-port
	// servers — the BCCC-compatible configuration.
	tp, err := core.Build(core.Config{N: 4, K: 1, P: 2})
	if err != nil {
		log.Fatal(err)
	}
	net := tp.Network()
	props := tp.Properties()
	fmt.Printf("built %s: %d servers, %d switches, %d cables\n",
		props.Name, props.Servers, props.Switches, props.Links)
	fmt.Printf("diameter %d hops, bisection %d links\n", props.Diameter, props.BisectionLinks)

	// Addresses are digit vectors plus a server slot within the crossbar.
	src, err := tp.NodeOf(core.Addr{Vec: 0, J: 0}) // server [0,0|0]
	if err != nil {
		log.Fatal(err)
	}
	dstAddr, err := tp.ParseAddr("[3,2|1]")
	if err != nil {
		log.Fatal(err)
	}
	dst, err := tp.NodeOf(dstAddr)
	if err != nil {
		log.Fatal(err)
	}

	// One-to-one routing with the default (grouped) permutation strategy.
	path, err := tp.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, len(path))
	for i, node := range path {
		labels[i] = net.Label(node)
	}
	fmt.Printf("route %s -> %s:\n  %s\n  (%d switch hops)\n",
		net.Label(src), net.Label(dst), strings.Join(labels, " -> "),
		path.SwitchHops(net))

	// Multiple disjoint paths back up every pair.
	parallel := tp.ParallelPaths(src, dst)
	fmt.Printf("the pair has %d internally disjoint paths\n", len(parallel))
}
