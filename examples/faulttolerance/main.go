// Fault tolerance: kill 10% of the switches in an ABCCC network, then show
// the fault-tolerant routing algorithm steering around the failures, and
// measure how many server pairs stay connected versus how many the
// algorithm actually serves.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	tp, err := core.Build(core.Config{N: 4, K: 2, P: 3})
	if err != nil {
		log.Fatal(err)
	}
	net := tp.Network()
	fmt.Printf("%s: %d servers, %d switches\n",
		net.Name(), net.NumServers(), net.NumSwitches())

	rng := rand.New(rand.NewSource(2015))
	view := failure.Inject(net, failure.Switches, 0.10, rng)
	fmt.Println("failed 10% of switches")

	// One concrete pair: direct route vs fault-tolerant detour.
	src, dst := net.Server(0), net.Server(net.NumServers()-1)
	direct, err := tp.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct route %s -> %s: %d hops, alive after failures: %v\n",
		net.Label(src), net.Label(dst), direct.SwitchHops(net), direct.Alive(net, view))
	if detour, err := tp.RouteAvoiding(src, dst, view); err != nil {
		fmt.Println("fault-tolerant routing found no path:", err)
	} else {
		fmt.Printf("fault-tolerant route: %d hops (stretch %+d), fully alive: %v\n",
			detour.SwitchHops(net),
			detour.SwitchHops(net)-direct.SwitchHops(net),
			detour.Alive(net, view))
	}

	// Population view over sampled pairs.
	pairs := failure.SamplePairs(net, 500, rng)
	miss, disconnected := metrics.ConnectionFailureRatio(net, view,
		func(s, d int, v *graph.View) (topology.Path, error) {
			return tp.RouteAvoiding(s, d, v)
		}, pairs)
	fmt.Printf("over %d sampled pairs: %.1f%% disconnected by the failures, "+
		"%.1f%% unserved by fault routing\n",
		len(pairs), 100*disconnected, 100*miss)
}
