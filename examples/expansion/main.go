// Expansion: grow an ABCCC data center order by order and show the paper's
// headline property — existing servers and cables are never touched — then
// contrast with BCube, where every expansion opens every server for a new
// NIC.
//
//	go run ./examples/expansion
package main

import (
	"fmt"
	"log"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/cost"
)

func main() {
	model := cost.Default()

	fmt.Println("ABCCC growth (n=6, p=2):")
	tp, err := core.Build(core.Config{N: 6, K: 0, P: 2})
	if err != nil {
		log.Fatal(err)
	}
	for tp.Config().K < 2 {
		bigger, report, err := core.Expand(tp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", report)
		fmt.Printf("    expansion spend: $%.0f\n",
			model.ExpansionCost(report, bigger.Config().N, bigger.Config().P))
		tp = bigger
	}

	fmt.Println("BCube growth (n=6) — the comparison ABCCC was designed to win:")
	bt, err := bcube.Build(bcube.Config{N: 6, K: 0})
	if err != nil {
		log.Fatal(err)
	}
	for bt.Config().K < 2 {
		bigger, report, err := bcube.Expand(bt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", report)
		fmt.Printf("    expansion spend: $%.0f (including %d NIC retrofits)\n",
			model.ExpansionCost(report, bigger.Config().N, bigger.Config().K+1),
			report.UpgradedServers)
		bt = bigger
	}
}
