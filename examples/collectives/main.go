// Collectives: the GBC3 extension operations on an ABCCC — one-to-all
// broadcast, all-to-one gather with in-network aggregation, one-to-many
// multicast, and pipelined broadcast over edge-disjoint trees.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// r = 1 configuration: every server owns every address level, which
	// unlocks the full edge-disjoint broadcast forest.
	tp, err := core.Build(core.Config{N: 4, K: 2, P: 4})
	if err != nil {
		log.Fatal(err)
	}
	net := tp.Network()
	root := net.Server(0)
	fmt.Printf("%s: %d servers; collective root %s\n",
		net.Name(), net.NumServers(), net.Label(root))

	depth, err := tp.BroadcastDepth(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast: every server reached in <= %d switch hops, each cable used once\n", depth)

	gather, err := tp.GatherTree(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gather: %d contributions aggregate up the same tree in %d hops\n",
		len(gather)-1, depth)

	dsts := net.Servers()[48:56]
	mc, err := tp.Multicast(root, dsts)
	if err != nil {
		log.Fatal(err)
	}
	longest := 0
	for _, p := range mc {
		if h := p.SwitchHops(net); h > longest {
			longest = h
		}
	}
	fmt.Printf("multicast to %d servers: worst path %d hops, shared prefixes sent once\n",
		len(mc), longest)

	forest, err := tp.BroadcastForest(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined broadcast: %d edge-disjoint trees -> a large payload moves %dx faster\n",
		len(forest), len(forest))
}
