// Planning: a capacity-planning session for a 5,000-server deployment with
// commodity hardware limits. The planner enumerates feasible ABCCC
// configurations and returns the Pareto frontier over cost per server,
// diameter, and per-server bisection bandwidth; we then build the cheapest
// choice at a small starting order and grow it, showing the expansion road
// the paper's expandability claim promises.
//
//	go run ./examples/planning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/planner"
)

func main() {
	req := planner.Requirements{
		MinServers:     5000,
		MaxServerPorts: 4,
		MaxSwitchPorts: 48,
	}
	model := cost.Default()
	frontier, err := planner.Plan(req, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto frontier for >= %d servers (NICs <= %d, radix <= %d):\n",
		req.MinServers, req.MaxServerPorts, req.MaxSwitchPorts)
	for _, c := range frontier {
		fmt.Printf("  %-14s %6d servers, %2d hops diameter, %.3f bisection/srv, $%.0f/server\n",
			c.Props.Name, c.Props.Servers, c.Props.Diameter, c.BisectionPerServer, c.PerServer)
	}
	if len(frontier) == 0 {
		log.Fatal("no feasible configuration")
	}

	// Deploy the cheapest frontier choice incrementally: start at order 0
	// and grow, never touching installed hardware.
	choice := frontier[0].Config
	fmt.Printf("\ndeploying %v incrementally:\n", frontier[0].Props.Name)
	tp, err := core.Build(core.Config{N: choice.N, K: 0, P: choice.P})
	if err != nil {
		log.Fatal(err)
	}
	for tp.Config().K < choice.K {
		bigger, report, err := core.Expand(tp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s — spend $%.0f, touch %.0f%% of installed plant\n",
			report, model.ExpansionCost(report, bigger.Config().N, bigger.Config().P),
			100*report.TouchedFraction())
		tp = bigger
	}
	props := tp.Properties()
	fmt.Printf("final: %s with %d servers online\n", props.Name, props.Servers)
}
