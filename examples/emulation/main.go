// Emulation: run an ABCCC network as a live distributed system — one
// goroutine per server and switch, channels as cables — and watch hop-by-hop
// forwarding (O(1) state per device) deliver a full permutation workload,
// then kill a switch and watch the loss get accounted packet by packet.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/traffic"
)

func main() {
	tp, err := core.Build(core.Config{N: 4, K: 1, P: 2})
	if err != nil {
		log.Fatal(err)
	}
	net := tp.Network()
	fmt.Printf("booting %s as %d communicating processes (%d servers + %d switches)\n",
		net.Name(), net.Graph().NumNodes(), net.NumServers(), net.NumSwitches())

	flows := traffic.Permutation(net.NumServers(), rand.New(rand.NewSource(7)))
	stats, err := emu.Run(tp, flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy run: %d/%d delivered, max %d switch hops, %d adjacencies discovered\n",
		stats.Delivered, stats.Injected, stats.MaxHops, stats.HelloAcks)
	fmt.Printf("hop histogram: %v\n", stats.HopHistogram)

	// Pull the plug on one level switch.
	victim := net.Switches()[len(net.Switches())-1]
	fmt.Printf("killing switch %s...\n", net.Label(victim))
	broken, err := emu.Run(tp, flows, emu.WithFailedNodes(victim))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded run: %d delivered, %d lost at the dead switch (accounted: %v)\n",
		broken.Delivered, broken.DroppedFailed, broken.Accounted())
}
