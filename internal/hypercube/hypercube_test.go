package hypercube

import (
	"math/bits"
	"testing"
)

func TestValidate(t *testing.T) {
	for _, d := range []int{0, 21, -1} {
		if err := (Config{D: d}).Validate(); err == nil {
			t.Errorf("Validate(D=%d) succeeded", d)
		}
	}
	if err := (Config{D: 4}).Validate(); err != nil {
		t.Errorf("Validate(D=4): %v", err)
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, d := range []int{1, 3, 5} {
		h := MustBuild(Config{D: d})
		props := h.Properties()
		net := h.Network()
		if net.NumServers() != props.Servers || net.NumLinks() != props.Links ||
			net.NumSwitches() != 0 {
			t.Errorf("%s: built %d/%d/%d, formula %d/0/%d", net.Name(),
				net.NumServers(), net.NumSwitches(), net.NumLinks(),
				props.Servers, props.Links)
		}
	}
}

func TestRouteIsBitFixing(t *testing.T) {
	h := MustBuild(Config{D: 4})
	net := h.Network()
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			p, err := h.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
			want := bits.OnesCount(uint(src ^ dst))
			if p.Len() != want {
				t.Fatalf("Route(%d,%d) = %d links, want Hamming distance %d",
					src, dst, p.Len(), want)
			}
		}
	}
}

func TestDiameterTight(t *testing.T) {
	h := MustBuild(Config{D: 5})
	net := h.Network()
	worst := 0
	for _, src := range net.Servers() {
		ecc, ok := net.Graph().Eccentricity(src, nil, nil)
		if !ok {
			t.Fatal("disconnected")
		}
		if ecc > worst {
			worst = ecc
		}
	}
	if worst != 5 {
		t.Errorf("diameter %d, want 5", worst)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(Config{D: 0}); err == nil {
		t.Error("Build(0) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	MustBuild(Config{D: 0})
}

func TestServerAt(t *testing.T) {
	h := MustBuild(Config{D: 2})
	if !h.Network().IsServer(h.ServerAt(3)) {
		t.Error("ServerAt(3) is not a server")
	}
}
