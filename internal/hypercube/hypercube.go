// Package hypercube implements the classic binary hypercube, included as a
// context row in the comparison tables (the "Hypercubes" keyword of the
// paper): 2^d servers, direct cables, no switches.
package hypercube

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/topology"
)

// Config selects a hypercube instance with dimension D.
type Config struct {
	D int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.D < 1 || c.D > 20 {
		return fmt.Errorf("hypercube: dimension D = %d, need 1..20", c.D)
	}
	return nil
}

// Hypercube is a built instance; immutable after Build.
type Hypercube struct {
	cfg     Config
	net     *topology.Network
	servers []int
}

var _ topology.Topology = (*Hypercube)(nil)

// Build constructs the d-dimensional binary hypercube.
func Build(cfg Config) (*Hypercube, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := 1 << cfg.D
	h := &Hypercube{
		cfg: cfg,
		net: topology.NewNetwork(fmt.Sprintf("Hypercube(%d)", cfg.D)),
	}
	h.servers = make([]int, n)
	for v := 0; v < n; v++ {
		h.servers[v] = h.net.AddServer("S" + strconv.Itoa(v))
	}
	for v := 0; v < n; v++ {
		for b := 0; b < cfg.D; b++ {
			u := v ^ (1 << b)
			if v < u {
				if err := h.net.Connect(h.servers[v], h.servers[u]); err != nil {
					return nil, fmt.Errorf("hypercube: wire: %w", err)
				}
			}
		}
	}
	return h, nil
}

// MustBuild is Build for known-good configs.
func MustBuild(cfg Config) *Hypercube {
	h, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Network returns the built network.
func (h *Hypercube) Network() *topology.Network { return h.net }

// ServerAt returns the node index of vertex v.
func (h *Hypercube) ServerAt(v int) int { return h.servers[v] }

// Properties returns the analytic comparison-table row.
func (h *Hypercube) Properties() topology.Properties {
	n := 1 << h.cfg.D
	return topology.Properties{
		Name:           h.net.Name(),
		Servers:        n,
		Switches:       0,
		Links:          h.cfg.D * n / 2,
		ServerPorts:    h.cfg.D,
		SwitchPorts:    0,
		Diameter:       h.cfg.D,
		DiameterLinks:  h.cfg.D,
		BisectionLinks: n / 2,
	}
}

// Route implements bit-fixing routing, correcting differing bits from the
// lowest to the highest.
func (h *Hypercube) Route(src, dst int) (topology.Path, error) {
	if err := topology.CheckEndpoints(h.net, src, dst); err != nil {
		return nil, err
	}
	cur, target := src, dst
	path := topology.Path{src}
	for cur != target {
		b := bits.TrailingZeros(uint(cur ^ target))
		cur ^= 1 << b
		path = append(path, h.servers[cur])
	}
	return path, nil
}
