package failure

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

func build(t *testing.T) *core.ABCCC {
	t.Helper()
	return core.MustBuild(core.Config{N: 3, K: 1, P: 2})
}

func countFailedNodes(net *topology.Network, view *graph.View, nodes []int) int {
	failed := 0
	for _, n := range nodes {
		if !view.NodeUp(n) {
			failed++
		}
	}
	return failed
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Servers, "servers"},
		{Switches, "switches"},
		{Links, "links"},
		{Kind(7), "kind(7)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestInjectServers(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	rng := rand.New(rand.NewSource(1))
	view := Inject(net, Servers, 0.5, rng)
	want := len(net.Servers()) / 2
	if got := countFailedNodes(net, view, net.Servers()); got != want {
		t.Errorf("failed %d servers, want %d", got, want)
	}
	if got := countFailedNodes(net, view, net.Switches()); got != 0 {
		t.Errorf("failed %d switches, want 0", got)
	}
}

func TestInjectSwitches(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Switches, 0.25, rand.New(rand.NewSource(2)))
	want := len(net.Switches()) / 4
	if got := countFailedNodes(net, view, net.Switches()); got != want {
		t.Errorf("failed %d switches, want %d", got, want)
	}
}

func TestInjectLinks(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Links, 0.2, rand.New(rand.NewSource(3)))
	want := net.Graph().NumEdges() / 5
	failed := 0
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if !view.EdgeUp(e) {
			failed++
		}
	}
	if failed != want {
		t.Errorf("failed %d links, want %d", failed, want)
	}
}

func TestInjectClampsFraction(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Servers, 2.0, rand.New(rand.NewSource(4)))
	if got := countFailedNodes(net, view, net.Servers()); got != len(net.Servers()) {
		t.Errorf("fraction > 1 failed %d, want all %d", got, len(net.Servers()))
	}
	view2 := Inject(net, Servers, -1, rand.New(rand.NewSource(4)))
	if got := countFailedNodes(net, view2, net.Servers()); got != 0 {
		t.Errorf("fraction < 0 failed %d, want 0", got)
	}
}

func TestInjectIntoMixedScenario(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	rng := rand.New(rand.NewSource(5))
	view := graph.NewView(net.Graph())
	InjectInto(view, net, Switches, 0.2, rng)
	InjectInto(view, net, Links, 0.1, rng)
	swFailed := countFailedNodes(net, view, net.Switches())
	linkFailed := 0
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if !view.EdgeUp(e) {
			linkFailed++
		}
	}
	if swFailed == 0 || linkFailed == 0 {
		t.Errorf("mixed scenario: %d switches, %d links failed", swFailed, linkFailed)
	}
}

func TestInjectDeterministic(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	v1 := Inject(net, Switches, 0.3, rand.New(rand.NewSource(9)))
	v2 := Inject(net, Switches, 0.3, rand.New(rand.NewSource(9)))
	for _, sw := range net.Switches() {
		if v1.NodeUp(sw) != v2.NodeUp(sw) {
			t.Fatal("same seed, different failures")
		}
	}
}

func TestSamplePairs(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	pairs := SamplePairs(net, 50, rand.New(rand.NewSource(6)))
	if len(pairs) != 50 {
		t.Fatalf("len = %d", len(pairs))
	}
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			t.Fatal("self pair")
		}
		if !net.IsServer(pr[0]) || !net.IsServer(pr[1]) {
			t.Fatal("non-server in pair")
		}
	}
	tiny := topology.NewNetwork("one")
	tiny.AddServer("s")
	if SamplePairs(tiny, 5, rand.New(rand.NewSource(1))) != nil {
		t.Error("SamplePairs with one server should be nil")
	}
}
