package failure

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

func build(t *testing.T) *core.ABCCC {
	t.Helper()
	return core.MustBuild(core.Config{N: 3, K: 1, P: 2})
}

func countFailedNodes(net *topology.Network, view *graph.View, nodes []int) int {
	failed := 0
	for _, n := range nodes {
		if !view.NodeUp(n) {
			failed++
		}
	}
	return failed
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Servers, "servers"},
		{Switches, "switches"},
		{Links, "links"},
		{Kind(7), "kind(7)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestInjectServers(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	rng := rand.New(rand.NewSource(1))
	view := Inject(net, Servers, 0.5, rng)
	want := len(net.Servers()) / 2
	if got := countFailedNodes(net, view, net.Servers()); got != want {
		t.Errorf("failed %d servers, want %d", got, want)
	}
	if got := countFailedNodes(net, view, net.Switches()); got != 0 {
		t.Errorf("failed %d switches, want 0", got)
	}
}

func TestInjectSwitches(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Switches, 0.25, rand.New(rand.NewSource(2)))
	want := roundCount(0.25, len(net.Switches()))
	if got := countFailedNodes(net, view, net.Switches()); got != want {
		t.Errorf("failed %d switches, want %d", got, want)
	}
}

func TestInjectLinks(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Links, 0.2, rand.New(rand.NewSource(3)))
	want := roundCount(0.2, net.Graph().NumEdges())
	failed := 0
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if !view.EdgeUp(e) {
			failed++
		}
	}
	if failed != want {
		t.Errorf("failed %d links, want %d", failed, want)
	}
}

func TestInjectClampsFraction(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	view := Inject(net, Servers, 2.0, rand.New(rand.NewSource(4)))
	if got := countFailedNodes(net, view, net.Servers()); got != len(net.Servers()) {
		t.Errorf("fraction > 1 failed %d, want all %d", got, len(net.Servers()))
	}
	view2 := Inject(net, Servers, -1, rand.New(rand.NewSource(4)))
	if got := countFailedNodes(net, view2, net.Servers()); got != 0 {
		t.Errorf("fraction < 0 failed %d, want 0", got)
	}
}

func TestInjectIntoMixedScenario(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	rng := rand.New(rand.NewSource(5))
	view := graph.NewView(net.Graph())
	InjectInto(view, net, Switches, 0.2, rng)
	InjectInto(view, net, Links, 0.1, rng)
	swFailed := countFailedNodes(net, view, net.Switches())
	linkFailed := 0
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if !view.EdgeUp(e) {
			linkFailed++
		}
	}
	if swFailed == 0 || linkFailed == 0 {
		t.Errorf("mixed scenario: %d switches, %d links failed", swFailed, linkFailed)
	}
}

func TestInjectDeterministic(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	v1 := Inject(net, Switches, 0.3, rand.New(rand.NewSource(9)))
	v2 := Inject(net, Switches, 0.3, rand.New(rand.NewSource(9)))
	for _, sw := range net.Switches() {
		if v1.NodeUp(sw) != v2.NodeUp(sw) {
			t.Fatal("same seed, different failures")
		}
	}
}

func TestSamplePairs(t *testing.T) {
	tp := build(t)
	net := tp.Network()
	pairs := SamplePairs(net, 50, rand.New(rand.NewSource(6)))
	if len(pairs) != 50 {
		t.Fatalf("len = %d", len(pairs))
	}
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			t.Fatal("self pair")
		}
		if !net.IsServer(pr[0]) || !net.IsServer(pr[1]) {
			t.Fatal("non-server in pair")
		}
	}
	tiny := topology.NewNetwork("one")
	tiny.AddServer("s")
	if SamplePairs(tiny, 5, rand.New(rand.NewSource(1))) != nil {
		t.Error("SamplePairs with one server should be nil")
	}
}

// Regression for the floor-truncation bug: 2% of 48 switches used to floor to
// zero, silently injecting nothing. Round-to-nearest must fail one.
func TestInjectSmallFractionRounds(t *testing.T) {
	net := topology.NewNetwork("switchfarm")
	for i := 0; i < 48; i++ {
		net.AddSwitch("sw")
	}
	view := Inject(net, Switches, 0.02, rand.New(rand.NewSource(11)))
	if got := countFailedNodes(net, view, net.Switches()); got != 1 {
		t.Errorf("2%% of 48 switches failed %d, want 1 (floor bug regression)", got)
	}
}

func TestRoundCount(t *testing.T) {
	tests := []struct {
		frac float64
		n    int
		want int
	}{
		{0.02, 48, 1}, // the old floor bug: used to be 0
		{0.25, 10, 3}, // 2.5 rounds half away from zero
		{0.5, 3, 2},
		{1.0, 7, 7},
		{2.0, 7, 7}, // clamped to n
		{0.0, 7, 0},
	}
	for _, tt := range tests {
		if got := roundCount(tt.frac, tt.n); got != tt.want {
			t.Errorf("roundCount(%v, %d) = %d, want %d", tt.frac, tt.n, got, tt.want)
		}
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		count := rng.Intn(n + 1)
		got := sampleIndices(n, count, rng)
		if len(got) != count {
			t.Fatalf("n=%d count=%d: len = %d", n, count, len(got))
		}
		seen := make(map[int]bool, count)
		for _, i := range got {
			if i < 0 || i >= n {
				t.Fatalf("index %d out of [0,%d)", i, n)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d (n=%d count=%d)", i, n, count)
			}
			seen[i] = true
		}
	}
	if sampleIndices(10, 0, rng) != nil {
		t.Error("count 0 should return nil")
	}
	if got := sampleIndices(5, 9, rng); len(got) != 5 {
		t.Errorf("count > n clamps to n, got len %d", len(got))
	}
	a := sampleIndices(30, 10, rand.New(rand.NewSource(5)))
	b := sampleIndices(30, 10, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different samples")
		}
	}
}

func TestInjectEmptyClassNoPanic(t *testing.T) {
	// A network with servers but no switches and no links: injecting into the
	// empty classes must be a quiet no-op, not a panic.
	net := topology.NewNetwork("lonely")
	net.AddServer("a")
	net.AddServer("b")
	view := Inject(net, Switches, 0.5, rand.New(rand.NewSource(7)))
	if got := countFailedNodes(net, view, net.Servers()); got != 0 {
		t.Errorf("failed %d nodes injecting into empty switch class", got)
	}
	view = Inject(net, Links, 1.0, rand.New(rand.NewSource(7)))
	for _, s := range net.Servers() {
		if !view.NodeUp(s) {
			t.Error("link injection on linkless network touched a node")
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tt := range []struct {
		s    string
		want Kind
	}{{"servers", Servers}, {"switches", Switches}, {"links", Links}} {
		got, err := ParseKind(tt.s)
		if err != nil || got != tt.want {
			t.Errorf("ParseKind(%q) = %v, %v", tt.s, got, err)
		}
	}
	if _, err := ParseKind("gremlins"); err == nil {
		t.Error("ParseKind should reject unknown kinds")
	}
}
