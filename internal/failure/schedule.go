package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/topology"
)

// FaultEvent is one timed component state change: at TimeSec, the component
// identified by (Kind, Index) goes down (Up == false) or comes back
// (Up == true). For Servers and Switches, Index is the node id; for Links it
// is the edge id.
type FaultEvent struct {
	TimeSec float64
	Kind    Kind
	Index   int
	Up      bool
}

// Apply transitions the event's component in view.
func (e FaultEvent) Apply(view *graph.View) {
	switch {
	case e.Kind == Links && e.Up:
		view.RepairEdge(e.Index)
	case e.Kind == Links:
		view.FailEdge(e.Index)
	case e.Up:
		view.RepairNode(e.Index)
	default:
		view.FailNode(e.Index)
	}
}

// FaultPlan is a deterministic schedule of timed fault events, ordered by
// time with schedule order breaking ties. The discrete-event simulators feed
// these events through their own queues alongside packet events, so a plan
// fully determines when each component dies and recovers during a run. An
// empty (or nil) plan injects nothing.
type FaultPlan struct {
	Events []FaultEvent
}

// Len returns the number of scheduled events; safe on a nil plan.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Sort orders events by time, keeping the relative order of same-time events
// (so "down then up" pairs emitted at one instant stay in cause order).
func (p *FaultPlan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool {
		return p.Events[i].TimeSec < p.Events[j].TimeSec
	})
}

// Validate checks every event against the network it will be injected into:
// times must be finite and non-negative, kinds valid, and indices must name
// an existing component of the right class.
func (p *FaultPlan) Validate(net *topology.Network) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if math.IsNaN(e.TimeSec) || math.IsInf(e.TimeSec, 0) || e.TimeSec < 0 {
			return fmt.Errorf("failure: event %d has invalid time %v", i, e.TimeSec)
		}
		switch e.Kind {
		case Servers:
			if !net.IsServer(e.Index) {
				return fmt.Errorf("failure: event %d: node %d is not a server", i, e.Index)
			}
		case Switches:
			if e.Index < 0 || e.Index >= net.Graph().NumNodes() || net.Kind(e.Index) != topology.Switch {
				return fmt.Errorf("failure: event %d: node %d is not a switch", i, e.Index)
			}
		case Links:
			if e.Index < 0 || e.Index >= net.Graph().NumEdges() {
				return fmt.Errorf("failure: event %d: edge %d out of range", i, e.Index)
			}
		default:
			return fmt.Errorf("failure: event %d has invalid kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// ClassRate is the failure behavior of one component class, used by the
// per-class form of ScheduleConfig and by Wearout. Unlike the legacy
// whole-network MTBFSec, these rates are per component: a class of n
// components with MTBFSec m contributes failure onsets at rate n/m, which is
// how datasheet MTBF figures (per switch, per cable) compose into network
// churn.
type ClassRate struct {
	// Kind is the component class.
	Kind Kind
	// MTBFSec is the mean lifetime of one component of this class
	// (exponential). Must be positive.
	MTBFSec float64
	// MTTRSec is the mean down-for-duration repair window (exponential).
	// Required positive for churn schedules; ignored by Wearout, which
	// never repairs.
	MTTRSec float64
}

// ScheduleConfig parameterizes Schedule. Two forms exist:
//
//   - Legacy single-rate: Kinds + MTBFSec + MTTRSec, where MTBFSec is the
//     mean gap between failure onsets across the whole network and every
//     eligible class is equally likely regardless of its size.
//   - Per-class: a non-empty Classes list, each class failing at its own
//     per-component rate (onsets form the superposition of the class
//     Poisson processes). Kinds/MTBFSec/MTTRSec are ignored in this form.
type ScheduleConfig struct {
	// Kinds lists the component classes eligible to fail. Classes with no
	// components in the network are skipped. Ignored when Classes is set.
	Kinds []Kind
	// MTBFSec is the mean time between failure onsets across the whole
	// network (exponentially distributed inter-failure gaps). Ignored when
	// Classes is set.
	MTBFSec float64
	// MTTRSec is the mean down-for-duration repair window (exponential);
	// every failure is paired with a repair event, possibly past the horizon.
	// Ignored when Classes is set.
	MTTRSec float64
	// HorizonSec bounds failure onsets; no component dies at or after it.
	HorizonSec float64
	// Classes, when non-empty, selects the per-class form: each entry fails
	// independently at len(pool)/MTBFSec onsets per second with its own
	// repair rate.
	Classes []ClassRate
}

// Validate checks the active form's rates: the horizon and every mean must
// be positive and finite. It does not need the network — empty component
// pools are legal (skipped) and checked by Schedule itself.
func (cfg ScheduleConfig) Validate() error {
	if !positive(cfg.HorizonSec) {
		return fmt.Errorf("failure: horizon %v must be positive", cfg.HorizonSec)
	}
	if len(cfg.Classes) > 0 {
		return validateClasses(cfg.Classes, true)
	}
	if !positive(cfg.MTBFSec) || !positive(cfg.MTTRSec) {
		return fmt.Errorf("failure: MTBF %v and MTTR %v must be positive", cfg.MTBFSec, cfg.MTTRSec)
	}
	return nil
}

// positive reports whether x is a positive finite number.
func positive(x float64) bool {
	return x > 0 && !math.IsInf(x, 1)
}

// validateClasses rejects invalid kinds and non-positive rates. needRepair
// additionally requires repair rates (churn schedules repair; wear-out does
// not and ignores MTTRSec entirely).
func validateClasses(classes []ClassRate, needRepair bool) error {
	if len(classes) == 0 {
		return fmt.Errorf("failure: no component classes given")
	}
	for i, cr := range classes {
		switch cr.Kind {
		case Servers, Switches, Links:
		default:
			return fmt.Errorf("failure: class %d has invalid kind %d", i, int(cr.Kind))
		}
		if !positive(cr.MTBFSec) {
			return fmt.Errorf("failure: class %d (%s) MTBF %v must be positive", i, cr.Kind, cr.MTBFSec)
		}
		if needRepair && !positive(cr.MTTRSec) {
			return fmt.Errorf("failure: class %d (%s) MTTR %v must be positive", i, cr.Kind, cr.MTTRSec)
		}
	}
	return nil
}

// Schedule generates a seeded failure/repair schedule: failure onsets arrive
// as a Poisson process with mean gap MTBFSec over [0, HorizonSec); each
// picks a uniformly random component of a uniformly random eligible class
// and holds it down for an exponential MTTRSec window. A component already
// down at an onset is skipped (the onset is consumed, keeping the rng stream
// — and therefore the schedule — deterministic per seed). The returned plan
// is sorted and valid for net.
func Schedule(net *topology.Network, cfg ScheduleConfig, rng *rand.Rand) (*FaultPlan, error) {
	if len(cfg.Classes) > 0 {
		return schedulePerClass(net, cfg, rng)
	}
	if cfg.MTBFSec <= 0 || cfg.MTTRSec <= 0 || cfg.HorizonSec <= 0 {
		return nil, fmt.Errorf("failure: MTBF, MTTR and horizon must be positive")
	}
	var kinds []Kind
	pools := make(map[Kind][]int)
	for _, k := range cfg.Kinds {
		if pool := components(net, k); len(pool) > 0 {
			kinds = append(kinds, k)
			pools[k] = pool
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("failure: no eligible components in any requested class")
	}

	plan := &FaultPlan{}
	type compKey struct {
		kind Kind
		idx  int
	}
	repairAt := make(map[compKey]float64)
	for t := rng.ExpFloat64() * cfg.MTBFSec; t < cfg.HorizonSec; t += rng.ExpFloat64() * cfg.MTBFSec {
		kind := kinds[rng.Intn(len(kinds))]
		pool := pools[kind]
		idx := pool[rng.Intn(len(pool))]
		down := rng.ExpFloat64() * cfg.MTTRSec
		key := compKey{kind, idx}
		if repairAt[key] > t {
			continue // still down from an earlier failure
		}
		repairAt[key] = t + down
		plan.Events = append(plan.Events,
			FaultEvent{TimeSec: t, Kind: kind, Index: idx},
			FaultEvent{TimeSec: t + down, Kind: kind, Index: idx, Up: true})
	}
	plan.Sort()
	return plan, nil
}

// schedulePerClass is Schedule's per-class form: the onset stream is the
// superposition of one Poisson process per class (rate len(pool)/MTBFSec),
// each onset picking its class proportionally to the class rate, a uniform
// component within it, and an exponential repair window at the class's own
// MTTRSec. Busy components consume their draws exactly like the legacy path,
// keeping the rng stream — and the schedule — deterministic per seed.
func schedulePerClass(net *topology.Network, cfg ScheduleConfig, rng *rand.Rand) (*FaultPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type classPool struct {
		cr   ClassRate
		pool []int
		rate float64 // onsets per second contributed by this class
	}
	var classes []classPool
	var total float64
	for _, cr := range cfg.Classes {
		if pool := components(net, cr.Kind); len(pool) > 0 {
			rate := float64(len(pool)) / cr.MTBFSec
			classes = append(classes, classPool{cr: cr, pool: pool, rate: rate})
			total += rate
		}
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("failure: no eligible components in any requested class")
	}

	plan := &FaultPlan{}
	type compKey struct {
		kind Kind
		idx  int
	}
	repairAt := make(map[compKey]float64)
	for t := rng.ExpFloat64() / total; t < cfg.HorizonSec; t += rng.ExpFloat64() / total {
		r := rng.Float64() * total
		ci := 0
		for ci < len(classes)-1 && r >= classes[ci].rate {
			r -= classes[ci].rate
			ci++
		}
		c := classes[ci]
		idx := c.pool[rng.Intn(len(c.pool))]
		down := rng.ExpFloat64() * c.cr.MTTRSec
		key := compKey{c.cr.Kind, idx}
		if repairAt[key] > t {
			continue // still down from an earlier failure
		}
		repairAt[key] = t + down
		plan.Events = append(plan.Events,
			FaultEvent{TimeSec: t, Kind: c.cr.Kind, Index: idx},
			FaultEvent{TimeSec: t + down, Kind: c.cr.Kind, Index: idx, Up: true})
	}
	plan.Sort()
	return plan, nil
}

// Wearout builds the no-repair lifetime scenario of survivability analysis:
// every component of every listed class draws one independent exponential
// lifetime at its class's per-component MTBFSec and dies at that instant,
// permanently. Only deaths inside [0, horizonSec) appear in the plan.
// Lifetimes are drawn in a deterministic order — classes as given, then
// components in pool order — so one seed fully determines the schedule.
// MTTRSec is ignored: wear-out never repairs.
func Wearout(net *topology.Network, classes []ClassRate, horizonSec float64, rng *rand.Rand) (*FaultPlan, error) {
	if !positive(horizonSec) {
		return nil, fmt.Errorf("failure: horizon %v must be positive", horizonSec)
	}
	if err := validateClasses(classes, false); err != nil {
		return nil, err
	}
	plan := &FaultPlan{}
	eligible := false
	for _, cr := range classes {
		pool := components(net, cr.Kind)
		if len(pool) > 0 {
			eligible = true
		}
		for _, idx := range pool {
			if t := rng.ExpFloat64() * cr.MTBFSec; t < horizonSec {
				plan.Events = append(plan.Events, FaultEvent{TimeSec: t, Kind: cr.Kind, Index: idx})
			}
		}
	}
	if !eligible {
		return nil, fmt.Errorf("failure: no eligible components in any requested class")
	}
	plan.Sort()
	return plan, nil
}

// Burst builds the recovery-timeline scenario: count distinct components of
// one class all fail at atSec and all recover at repairSec. Components are
// drawn uniformly without replacement from rng.
func Burst(net *topology.Network, kind Kind, count int, atSec, repairSec float64, rng *rand.Rand) (*FaultPlan, error) {
	if atSec < 0 || repairSec <= atSec {
		return nil, fmt.Errorf("failure: burst window [%v, %v) is not a valid down-for-duration window", atSec, repairSec)
	}
	pool := components(net, kind)
	if count < 1 || count > len(pool) {
		return nil, fmt.Errorf("failure: burst of %d from %d %s", count, len(pool), kind)
	}
	plan := &FaultPlan{Events: make([]FaultEvent, 0, 2*count)}
	picks := sampleIndices(len(pool), count, rng)
	for _, i := range picks {
		plan.Events = append(plan.Events, FaultEvent{TimeSec: atSec, Kind: kind, Index: pool[i]})
	}
	for _, i := range picks {
		plan.Events = append(plan.Events, FaultEvent{TimeSec: repairSec, Kind: kind, Index: pool[i], Up: true})
	}
	return plan, nil
}

// Downs builds the graceful-degradation scenario: a fraction `rate` of one
// component class fails at atSec and never recovers — the sustained-damage
// counterpart of Burst. A zero rate yields an empty plan (the healthy
// baseline of a sweep); the count rounds to nearest so small networks still
// see low rates.
func Downs(net *topology.Network, kind Kind, rate, atSec float64, rng *rand.Rand) (*FaultPlan, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("failure: rate %v outside [0, 1]", rate)
	}
	if atSec < 0 {
		return nil, fmt.Errorf("failure: negative fault time %v", atSec)
	}
	pool := components(net, kind)
	if len(pool) == 0 {
		return nil, fmt.Errorf("failure: no %s to fail", kind)
	}
	count := int(math.Round(rate * float64(len(pool))))
	plan := &FaultPlan{Events: make([]FaultEvent, 0, count)}
	for _, i := range sampleIndices(len(pool), count, rng) {
		plan.Events = append(plan.Events, FaultEvent{TimeSec: atSec, Kind: kind, Index: pool[i]})
	}
	return plan, nil
}

// components returns the ids of a class's components (node ids for servers
// and switches, edge ids for links).
func components(net *topology.Network, kind Kind) []int {
	switch kind {
	case Servers:
		return net.Servers()
	case Switches:
		return net.Switches()
	case Links:
		ids := make([]int, net.Graph().NumEdges())
		for i := range ids {
			ids[i] = i
		}
		return ids
	default:
		return nil
	}
}
