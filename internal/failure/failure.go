// Package failure injects component failures for the fault-tolerance
// experiments: given a built network, it fails a seeded random fraction of
// servers, switches, or cables and returns the resulting graph view.
package failure

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Kind selects which component class fails.
type Kind int

// Component classes.
const (
	Servers Kind = iota + 1
	Switches
	Links
)

// String returns the component-class name.
func (k Kind) String() string {
	switch k {
	case Servers:
		return "servers"
	case Switches:
		return "switches"
	case Links:
		return "links"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a component-class name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "servers":
		return Servers, nil
	case "switches":
		return Switches, nil
	case "links":
		return Links, nil
	default:
		return 0, fmt.Errorf("failure: unknown component class %q", s)
	}
}

// Inject returns a view of net with the given fraction of the chosen
// component class failed, selected uniformly at random from rng. Fractions
// are clamped to [0, 1].
func Inject(net *topology.Network, kind Kind, fraction float64, rng *rand.Rand) *graph.View {
	view := graph.NewView(net.Graph())
	InjectInto(view, net, kind, fraction, rng)
	return view
}

// InjectInto adds failures of one component class to an existing view,
// allowing mixed scenarios (e.g. 5% switches plus 2% cables).
func InjectInto(view *graph.View, net *topology.Network, kind Kind, fraction float64, rng *rand.Rand) {
	if fraction <= 0 {
		return
	}
	if fraction > 1 {
		fraction = 1
	}
	switch kind {
	case Servers:
		failNodes(view, net.Servers(), fraction, rng)
	case Switches:
		failNodes(view, net.Switches(), fraction, rng)
	case Links:
		edges := net.Graph().NumEdges()
		for _, e := range sampleIndices(edges, roundCount(fraction, edges), rng) {
			view.FailEdge(e)
		}
	}
}

func failNodes(view *graph.View, nodes []int, fraction float64, rng *rand.Rand) {
	for _, i := range sampleIndices(len(nodes), roundCount(fraction, len(nodes)), rng) {
		view.FailNode(nodes[i])
	}
}

// roundCount converts a failure fraction into a component count, rounding to
// nearest. Flooring here silently turned small sweep points (2% of 48
// switches) into no-ops, flattening the low end of the F7-F9 curves.
func roundCount(fraction float64, n int) int {
	count := int(math.Round(fraction * float64(n)))
	if count > n {
		count = n
	}
	return count
}

// sampleIndices draws count distinct indices uniformly from [0, n) with a
// partial Fisher-Yates shuffle: only the count inspected slots of the
// virtual index table are materialized (in a map), instead of permuting all
// n indices to keep a prefix. Draw order is deterministic in rng.
func sampleIndices(n, count int, rng *rand.Rand) []int {
	if count > n {
		count = n
	}
	if count <= 0 {
		return nil
	}
	out := make([]int, count)
	displaced := make(map[int]int, count)
	at := func(i int) int {
		if v, ok := displaced[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		out[i] = at(j)
		displaced[j] = at(i)
	}
	return out
}

// SamplePairs draws `count` random ordered pairs of distinct servers (as
// node ids) for failure-ratio measurements.
func SamplePairs(net *topology.Network, count int, rng *rand.Rand) [][2]int {
	servers := net.Servers()
	if len(servers) < 2 {
		return nil
	}
	pairs := make([][2]int, count)
	for i := range pairs {
		a := rng.Intn(len(servers))
		b := rng.Intn(len(servers) - 1)
		if b >= a {
			b++
		}
		pairs[i] = [2]int{servers[a], servers[b]}
	}
	return pairs
}
