// Package failure injects component failures for the fault-tolerance
// experiments: given a built network, it fails a seeded random fraction of
// servers, switches, or cables and returns the resulting graph view.
package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Kind selects which component class fails.
type Kind int

// Component classes.
const (
	Servers Kind = iota + 1
	Switches
	Links
)

// String returns the component-class name.
func (k Kind) String() string {
	switch k {
	case Servers:
		return "servers"
	case Switches:
		return "switches"
	case Links:
		return "links"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Inject returns a view of net with the given fraction of the chosen
// component class failed, selected uniformly at random from rng. Fractions
// are clamped to [0, 1].
func Inject(net *topology.Network, kind Kind, fraction float64, rng *rand.Rand) *graph.View {
	view := graph.NewView(net.Graph())
	InjectInto(view, net, kind, fraction, rng)
	return view
}

// InjectInto adds failures of one component class to an existing view,
// allowing mixed scenarios (e.g. 5% switches plus 2% cables).
func InjectInto(view *graph.View, net *topology.Network, kind Kind, fraction float64, rng *rand.Rand) {
	if fraction <= 0 {
		return
	}
	if fraction > 1 {
		fraction = 1
	}
	switch kind {
	case Servers:
		failNodes(view, net.Servers(), fraction, rng)
	case Switches:
		failNodes(view, net.Switches(), fraction, rng)
	case Links:
		edges := net.Graph().NumEdges()
		count := int(fraction * float64(edges))
		for _, e := range rng.Perm(edges)[:count] {
			view.FailEdge(e)
		}
	}
}

func failNodes(view *graph.View, nodes []int, fraction float64, rng *rand.Rand) {
	count := int(fraction * float64(len(nodes)))
	perm := rng.Perm(len(nodes))
	for _, i := range perm[:count] {
		view.FailNode(nodes[i])
	}
}

// SamplePairs draws `count` random ordered pairs of distinct servers (as
// node ids) for failure-ratio measurements.
func SamplePairs(net *topology.Network, count int, rng *rand.Rand) [][2]int {
	servers := net.Servers()
	if len(servers) < 2 {
		return nil
	}
	pairs := make([][2]int, count)
	for i := range pairs {
		a := rng.Intn(len(servers))
		b := rng.Intn(len(servers) - 1)
		if b >= a {
			b++
		}
		pairs[i] = [2]int{servers[a], servers[b]}
	}
	return pairs
}
