package failure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

func scheduleCfg() ScheduleConfig {
	return ScheduleConfig{
		Kinds:      []Kind{Switches, Links},
		MTBFSec:    1e-3,
		MTTRSec:    2e-3,
		HorizonSec: 20e-3,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	net := build(t).Network()
	p1, err := Schedule(net, scheduleCfg(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Schedule(net, scheduleCfg(), rand.New(rand.NewSource(42)))
	if len(p1.Events) != len(p2.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Events), len(p2.Events))
	}
	for i := range p1.Events {
		if p1.Events[i] != p2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, p1.Events[i], p2.Events[i])
		}
	}
	if p1.Len() == 0 {
		t.Fatal("20ms horizon at 1ms MTBF produced no failures")
	}
}

func TestScheduleSortedAndPaired(t *testing.T) {
	net := build(t).Network()
	plan, err := Schedule(net, scheduleCfg(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(net); err != nil {
		t.Fatalf("schedule invalid for its own network: %v", err)
	}
	downs, ups := 0, 0
	for i, e := range plan.Events {
		if i > 0 && e.TimeSec < plan.Events[i-1].TimeSec {
			t.Fatalf("event %d out of order", i)
		}
		if e.Up {
			ups++
		} else {
			downs++
			if e.TimeSec >= scheduleCfg().HorizonSec {
				t.Fatalf("failure onset %v past horizon", e.TimeSec)
			}
		}
	}
	if downs != ups {
		t.Errorf("unpaired events: %d downs, %d ups", downs, ups)
	}
	// Replaying the plan through a view must end all-alive: every failure has
	// a matching repair.
	view := graph.NewView(net.Graph())
	for _, e := range plan.Events {
		e.Apply(view)
	}
	for n := 0; n < net.Graph().NumNodes(); n++ {
		if !view.NodeUp(n) {
			t.Fatalf("node %d still down after full replay", n)
		}
	}
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if !view.EdgeUp(e) {
			t.Fatalf("edge %d still down after full replay", e)
		}
	}
}

func TestScheduleRejectsBadConfig(t *testing.T) {
	net := build(t).Network()
	rng := rand.New(rand.NewSource(1))
	bad := []ScheduleConfig{
		{Kinds: []Kind{Switches}, MTBFSec: 0, MTTRSec: 1, HorizonSec: 1},
		{Kinds: []Kind{Switches}, MTBFSec: 1, MTTRSec: -1, HorizonSec: 1},
		{Kinds: []Kind{Switches}, MTBFSec: 1, MTTRSec: 1, HorizonSec: 0},
		{Kinds: nil, MTBFSec: 1, MTTRSec: 1, HorizonSec: 1},
	}
	for i, cfg := range bad {
		if _, err := Schedule(net, cfg, rng); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	net := build(t).Network()
	sw := net.Switches()[0]
	srv := net.Servers()[0]
	cases := []struct {
		name string
		ev   FaultEvent
		ok   bool
	}{
		{"good switch", FaultEvent{TimeSec: 1, Kind: Switches, Index: sw}, true},
		{"good server", FaultEvent{TimeSec: 0, Kind: Servers, Index: srv}, true},
		{"good link", FaultEvent{TimeSec: 2, Kind: Links, Index: 0}, true},
		{"server as switch", FaultEvent{TimeSec: 1, Kind: Switches, Index: srv}, false},
		{"switch as server", FaultEvent{TimeSec: 1, Kind: Servers, Index: sw}, false},
		{"edge out of range", FaultEvent{TimeSec: 1, Kind: Links, Index: net.Graph().NumEdges()}, false},
		{"negative time", FaultEvent{TimeSec: -1, Kind: Links, Index: 0}, false},
		{"nan time", FaultEvent{TimeSec: math.NaN(), Kind: Links, Index: 0}, false},
		{"bad kind", FaultEvent{TimeSec: 1, Kind: Kind(9), Index: 0}, false},
	}
	for _, tc := range cases {
		plan := &FaultPlan{Events: []FaultEvent{tc.ev}}
		err := plan.Validate(net)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(net); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if nilPlan.Len() != 0 {
		t.Error("nil plan Len != 0")
	}
}

func TestBurst(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	plan, err := Burst(net, Switches, 3, 2e-3, 6e-3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(net); err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (3 downs + 3 ups)", plan.Len())
	}
	downed := make(map[int]bool)
	for _, e := range plan.Events[:3] {
		if e.Up || e.TimeSec != 2e-3 || net.Kind(e.Index) != topology.Switch {
			t.Fatalf("bad down event %+v", e)
		}
		if downed[e.Index] {
			t.Fatalf("switch %d failed twice", e.Index)
		}
		downed[e.Index] = true
	}
	for _, e := range plan.Events[3:] {
		if !e.Up || e.TimeSec != 6e-3 || !downed[e.Index] {
			t.Fatalf("repair event %+v does not match a failure", e)
		}
	}

	if _, err := Burst(net, Switches, 0, 1, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := Burst(net, Switches, 1e6, 1, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("count > pool accepted")
	}
	if _, err := Burst(net, Switches, 1, 5, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty repair window accepted")
	}
}

func TestDowns(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	plan, err := Downs(net, Switches, 0.25, 1e-3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(net); err != nil {
		t.Fatal(err)
	}
	want := int(math.Round(0.25 * float64(len(net.Switches()))))
	if plan.Len() != want {
		t.Fatalf("Len = %d, want %d", plan.Len(), want)
	}
	downed := make(map[int]bool)
	for _, e := range plan.Events {
		if e.Up || e.TimeSec != 1e-3 || net.Kind(e.Index) != topology.Switch {
			t.Fatalf("bad event %+v: Downs must only fail, at the given time", e)
		}
		if downed[e.Index] {
			t.Fatalf("switch %d failed twice", e.Index)
		}
		downed[e.Index] = true
	}

	if zero, err := Downs(net, Switches, 0, 1e-3, rand.New(rand.NewSource(5))); err != nil || zero.Len() != 0 {
		t.Errorf("rate 0: plan %v, err %v; want empty plan", zero, err)
	}
	if _, err := Downs(net, Switches, 1.5, 1e-3, rand.New(rand.NewSource(5))); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := Downs(net, Switches, -0.1, 1e-3, rand.New(rand.NewSource(5))); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Downs(net, Switches, 0.5, -1, rand.New(rand.NewSource(5))); err == nil {
		t.Error("negative time accepted")
	}
}
