package failure

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// planHash fingerprints a plan exactly: every event's bit-exact time, kind,
// index, and direction feed an FNV-1a stream. Two plans hash equal iff they
// are event-for-event identical.
func planHash(p *FaultPlan) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, e := range p.Events {
		put(math.Float64bits(e.TimeSec))
		put(uint64(e.Kind))
		put(uint64(e.Index))
		if e.Up {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// Golden RNG-stream pins: a long-horizon schedule of each generator on
// ABCCC(4,1,2) with a fixed seed must reproduce these exact event streams
// forever. Any refactor that reorders or adds rng draws shifts every seeded
// trial in the survivability suite; this test makes that break loudly
// instead of silently changing published MTTF numbers.
const (
	goldenLegacyHash   uint64 = 0x04fafbdb7d5467fc
	goldenLegacyLen           = 3898
	goldenPerClassHash uint64 = 0x6dea94ccb75db669
	goldenPerClassLen         = 4322
	goldenWearoutHash  uint64 = 0xe0e82e6a0a84751a
	goldenWearoutLen          = 51
)

func TestGoldenScheduleStreams(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()

	legacy, err := Schedule(net, ScheduleConfig{
		Kinds:      []Kind{Switches, Links},
		MTBFSec:    0.5,
		MTTRSec:    2,
		HorizonSec: 1000,
	}, rand.New(rand.NewSource(1234)))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Events) != goldenLegacyLen || planHash(legacy) != goldenLegacyHash {
		t.Errorf("legacy stream drifted: len=%d hash=%#x, want len=%d hash=%#x",
			len(legacy.Events), planHash(legacy), goldenLegacyLen, goldenLegacyHash)
	}

	perClass, err := Schedule(net, ScheduleConfig{
		HorizonSec: 1000,
		Classes: []ClassRate{
			{Kind: Switches, MTBFSec: 20, MTTRSec: 2},
			{Kind: Links, MTBFSec: 60, MTTRSec: 1},
		},
	}, rand.New(rand.NewSource(1234)))
	if err != nil {
		t.Fatal(err)
	}
	if len(perClass.Events) != goldenPerClassLen || planHash(perClass) != goldenPerClassHash {
		t.Errorf("per-class stream drifted: len=%d hash=%#x, want len=%d hash=%#x",
			len(perClass.Events), planHash(perClass), goldenPerClassLen, goldenPerClassHash)
	}

	wear, err := Wearout(net, []ClassRate{
		{Kind: Switches, MTBFSec: 500},
		{Kind: Links, MTBFSec: 1500},
	}, 1000, rand.New(rand.NewSource(1234)))
	if err != nil {
		t.Fatal(err)
	}
	if len(wear.Events) != goldenWearoutLen || planHash(wear) != goldenWearoutHash {
		t.Errorf("wear-out stream drifted: len=%d hash=%#x, want len=%d hash=%#x",
			len(wear.Events), planHash(wear), goldenWearoutLen, goldenWearoutHash)
	}
}

func TestSchedulePerClassShape(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	cfg := ScheduleConfig{
		HorizonSec: 200,
		Classes: []ClassRate{
			{Kind: Switches, MTBFSec: 50, MTTRSec: 1},
			{Kind: Links, MTBFSec: 5000, MTTRSec: 1},
		},
	}
	plan, err := Schedule(net, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(net); err != nil {
		t.Fatalf("per-class schedule invalid for its own network: %v", err)
	}
	var switchDowns, linkDowns int
	downs, ups := 0, 0
	for i, e := range plan.Events {
		if i > 0 && e.TimeSec < plan.Events[i-1].TimeSec {
			t.Fatalf("event %d out of order", i)
		}
		if e.Up {
			ups++
			continue
		}
		downs++
		if e.TimeSec >= cfg.HorizonSec {
			t.Fatalf("onset %v past horizon", e.TimeSec)
		}
		if e.Kind == Switches {
			switchDowns++
		} else {
			linkDowns++
		}
	}
	if downs != ups {
		t.Errorf("unpaired events: %d downs, %d ups", downs, ups)
	}
	// Expected onsets: switches 24/50·200 = 96, links 96/5000·200 ≈ 3.8.
	// The class mix must reflect the per-component rates, not a uniform
	// class pick: an order-of-magnitude check keeps the test robust.
	if switchDowns < 5*linkDowns {
		t.Errorf("class mix ignores rates: %d switch downs vs %d link downs", switchDowns, linkDowns)
	}
	if downs == 0 {
		t.Error("no failures over 4 expected switch lifetimes")
	}

	// Determinism per seed.
	again, _ := Schedule(net, cfg, rand.New(rand.NewSource(9)))
	if planHash(plan) != planHash(again) {
		t.Error("same seed produced different per-class schedules")
	}
}

func TestWearoutShape(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	classes := []ClassRate{{Kind: Switches, MTBFSec: 10}, {Kind: Links, MTBFSec: 10}}
	plan, err := Wearout(net, classes, 1e9, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(net); err != nil {
		t.Fatal(err)
	}
	// An effectively infinite horizon kills every component exactly once.
	want := len(net.Switches()) + net.Graph().NumEdges()
	if plan.Len() != want {
		t.Fatalf("Len = %d, want %d (every component dies once)", plan.Len(), want)
	}
	seen := map[[2]int]bool{}
	for i, e := range plan.Events {
		if e.Up {
			t.Fatalf("event %d is a repair; wear-out never repairs", i)
		}
		if i > 0 && e.TimeSec < plan.Events[i-1].TimeSec {
			t.Fatalf("event %d out of order", i)
		}
		key := [2]int{int(e.Kind), e.Index}
		if seen[key] {
			t.Fatalf("component %v dies twice", key)
		}
		seen[key] = true
	}
	// A short horizon keeps only early deaths.
	short, err := Wearout(net, classes, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range short.Events {
		if e.TimeSec >= 1 {
			t.Fatalf("death at %v past horizon 1", e.TimeSec)
		}
	}
	if short.Len() >= plan.Len() {
		t.Error("short horizon did not truncate the schedule")
	}
}

func TestClassValidation(t *testing.T) {
	net := core.MustBuild(core.Config{N: 4, K: 1, P: 2}).Network()
	rng := rand.New(rand.NewSource(1))
	badCfgs := []ScheduleConfig{
		{HorizonSec: 1, Classes: []ClassRate{{Kind: Switches, MTBFSec: 0, MTTRSec: 1}}},
		{HorizonSec: 1, Classes: []ClassRate{{Kind: Switches, MTBFSec: -2, MTTRSec: 1}}},
		{HorizonSec: 1, Classes: []ClassRate{{Kind: Switches, MTBFSec: math.Inf(1), MTTRSec: 1}}},
		{HorizonSec: 1, Classes: []ClassRate{{Kind: Switches, MTBFSec: 1, MTTRSec: 0}}},
		{HorizonSec: 1, Classes: []ClassRate{{Kind: Kind(7), MTBFSec: 1, MTTRSec: 1}}},
		{HorizonSec: 0, Classes: []ClassRate{{Kind: Switches, MTBFSec: 1, MTTRSec: 1}}},
	}
	for i, cfg := range badCfgs {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated, want error", i)
		}
		if _, err := Schedule(net, cfg, rng); err == nil {
			t.Errorf("config %d scheduled, want error", i)
		}
	}
	good := ScheduleConfig{HorizonSec: 1, Classes: []ClassRate{{Kind: Switches, MTBFSec: 1, MTTRSec: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good per-class config rejected: %v", err)
	}
	if err := scheduleCfg().Validate(); err != nil {
		t.Errorf("good legacy config rejected: %v", err)
	}
	if err := (ScheduleConfig{HorizonSec: 1, MTBFSec: 1, MTTRSec: -1}).Validate(); err == nil {
		t.Error("legacy config with negative MTTR validated")
	}

	// Wearout: rejects bad rates, ignores MTTR.
	if _, err := Wearout(net, []ClassRate{{Kind: Switches, MTBFSec: -1}}, 1, rng); err == nil {
		t.Error("negative wear-out MTBF accepted")
	}
	if _, err := Wearout(net, nil, 1, rng); err == nil {
		t.Error("empty class list accepted")
	}
	if _, err := Wearout(net, []ClassRate{{Kind: Switches, MTBFSec: 1}}, 0, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Wearout(net, []ClassRate{{Kind: Switches, MTBFSec: 1, MTTRSec: -5}}, 1, rng); err != nil {
		t.Errorf("wear-out should ignore MTTR: %v", err)
	}
}
