package flowsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/topology"
)

// Instrument names registered by MaxMinFairCapacityObserved.
const (
	// MetricRounds counts progressive-filling rounds (bottleneck pops).
	MetricRounds = "flowsim_rounds"
	// MetricHeapUpdates counts saturation-key updates on the resource heap.
	MetricHeapUpdates = "flowsim_heap_updates"
	// MetricHeapRemoves counts resources drained from the heap early.
	MetricHeapRemoves = "flowsim_heap_removes"
	// MetricFlowsFrozen counts flows frozen at their bottleneck level.
	MetricFlowsFrozen = "flowsim_flows_frozen"
)

// MaxMinFairCapacity is MaxMinFair with an explicit per-link capacity.
//
// It implements progressive filling with an active set: directed link
// resources sit in an indexed min-heap keyed by the fill level at which each
// would saturate (level + remaining/active). Each round pops the bottleneck
// resource, freezes its flows at that level, and lazily settles only the
// resources those flows touch — instead of rescanning and draining all 2·E
// resources every round. Every resource is popped at most once, so the whole
// allocation costs O((F·L + E)·log E) for F flows of path length L rather
// than the reference implementation's O(rounds·(E + F·L)).
func MaxMinFairCapacity(net *topology.Network, paths []topology.Path, capacity float64) (Assignment, error) {
	return MaxMinFairCapacityObserved(net, paths, capacity, nil)
}

// MaxMinFairCapacityObserved is MaxMinFairCapacity recording allocator work
// metrics — filling rounds, heap updates/removals, frozen flows (see the
// Metric* constants) — into m. Tallies accumulate in locals and are flushed
// once at the end, so a nil m costs nothing on the allocation hot path.
func MaxMinFairCapacityObserved(net *topology.Network, paths []topology.Path, capacity float64, m *obs.Registry) (Assignment, error) {
	if capacity <= 0 {
		return Assignment{}, fmt.Errorf("flowsim: capacity %f must be positive", capacity)
	}
	g := net.Graph()
	numRes := 2 * g.NumEdges() // resource 2*edge+direction, as in the reference

	// Flow → resource lists in CSR form: flow i uses
	// flowRes[flowStart[i]:flowStart[i+1]].
	flowStart := make([]int32, len(paths)+1)
	for i, p := range paths {
		flowStart[i+1] = flowStart[i]
		if len(p) >= 2 {
			flowStart[i+1] += int32(len(p) - 1)
		}
	}
	flowRes := make([]int32, flowStart[len(paths)])
	active := make([]int32, numRes)
	for i, p := range paths {
		if len(p) < 2 {
			continue // zero-length flow (src == dst): infinite local rate, skip
		}
		idx := flowStart[i]
		for j := 1; j < len(p); j++ {
			e := g.EdgeBetween(p[j-1], p[j])
			if e == -1 {
				return Assignment{}, fmt.Errorf("flowsim: path %d hops a non-edge %s-%s",
					i, net.Label(p[j-1]), net.Label(p[j]))
			}
			r := int32(2 * e)
			if p[j-1] > p[j] {
				r++
			}
			flowRes[idx] = r
			idx++
			active[r]++
		}
	}

	// Resource → flow lists, also CSR (resFlows[resStart[r]:resStart[r+1]]).
	resStart := make([]int32, numRes+1)
	for _, r := range flowRes {
		resStart[r+1]++
	}
	for r := 0; r < numRes; r++ {
		resStart[r+1] += resStart[r]
	}
	resFlows := make([]int32, len(flowRes))
	cursor := make([]int32, numRes)
	copy(cursor, resStart[:numRes])
	for i := range paths {
		for _, r := range flowRes[flowStart[i]:flowStart[i+1]] {
			resFlows[cursor[r]] = int32(i)
			cursor[r]++
		}
	}

	// Lazy per-resource accounting: remaining[r] is the capacity left as of
	// fill level settledAt[r]; a resource is settled to the current level
	// only when one of its flows freezes.
	remaining := make([]float64, numRes)
	settledAt := make([]float64, numRes)
	for r := range remaining {
		remaining[r] = capacity
	}

	h := newResourceHeap(numRes)
	for r := 0; r < numRes; r++ {
		if active[r] > 0 {
			h.push(int32(r), capacity/float64(active[r]))
		}
	}

	rates := make([]float64, len(paths))
	frozen := make([]bool, len(paths))
	level := 0.0
	var rounds, heapUpdates, heapRemoves, flowsFrozen int64
	for h.len() > 0 {
		r, sat := h.pop()
		level = sat
		rounds++
		for _, f := range resFlows[resStart[r]:resStart[r+1]] {
			if frozen[f] {
				continue
			}
			frozen[f] = true
			rates[f] = level
			flowsFrozen++
			for _, rr := range flowRes[flowStart[f]:flowStart[f+1]] {
				remaining[rr] -= (level - settledAt[rr]) * float64(active[rr])
				settledAt[rr] = level
				active[rr]--
				if h.pos[rr] < 0 {
					continue // the popped bottleneck itself, or already drained
				}
				if active[rr] == 0 {
					h.remove(rr)
					heapRemoves++
				} else {
					h.update(rr, level+remaining[rr]/float64(active[rr]))
					heapUpdates++
				}
			}
		}
	}
	if m != nil {
		m.Counter(MetricRounds).Add(rounds)
		m.Counter(MetricHeapUpdates).Add(heapUpdates)
		m.Counter(MetricHeapRemoves).Add(heapRemoves)
		m.Counter(MetricFlowsFrozen).Add(flowsFrozen)
	}

	// Count allocated flows; every flow that crosses at least one finite-
	// capacity link froze when its bottleneck was popped (guard as in the
	// reference implementation).
	count := 0
	for i := range rates {
		if flowStart[i] == flowStart[i+1] {
			continue
		}
		count++
		if !frozen[i] {
			rates[i] = level
		}
	}
	return Assignment{Rates: rates, Flows: count}, nil
}

// resourceHeap is an indexed binary min-heap of link resources keyed by
// saturation level, supporting in-place key updates and removal by resource
// id — the decrease/increase-key operations the active-set filling needs.
type resourceHeap struct {
	ids []int32   // heap order: ids[0] has the smallest key
	key []float64 // key[r] is resource r's saturation level
	pos []int32   // pos[r] is r's index in ids, or -1 when absent
}

func newResourceHeap(numRes int) *resourceHeap {
	h := &resourceHeap{
		ids: make([]int32, 0, numRes),
		key: make([]float64, numRes),
		pos: make([]int32, numRes),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *resourceHeap) len() int { return len(h.ids) }

func (h *resourceHeap) push(r int32, k float64) {
	h.key[r] = k
	h.pos[r] = int32(len(h.ids))
	h.ids = append(h.ids, r)
	h.siftUp(len(h.ids) - 1)
}

func (h *resourceHeap) pop() (int32, float64) {
	r := h.ids[0]
	h.removeAt(0)
	return r, h.key[r]
}

func (h *resourceHeap) remove(r int32) { h.removeAt(int(h.pos[r])) }

func (h *resourceHeap) update(r int32, k float64) {
	h.key[r] = k
	i := int(h.pos[r])
	h.siftDown(i)
	h.siftUp(i)
}

func (h *resourceHeap) removeAt(i int) {
	r := h.ids[i]
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.pos[r] = -1
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

func (h *resourceHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *resourceHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.key[h.ids[parent]] <= h.key[h.ids[i]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *resourceHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ids) && h.key[h.ids[l]] < h.key[h.ids[small]] {
			small = l
		}
		if r < len(h.ids) && h.key[h.ids[r]] < h.key[h.ids[small]] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
