package flowsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestObservedAllocationMatchesPlain pins that attaching a registry changes
// nothing about the allocation itself, and that the allocator-work counters
// are self-consistent.
func TestObservedAllocationMatchesPlain(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(9))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	paths, err := RoutePaths(tp, flows)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := MaxMinFairCapacity(tp.Network(), paths, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	observed, err := MaxMinFairCapacityObserved(tp.Network(), paths, DefaultCapacity, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rates) != len(observed.Rates) || plain.Flows != observed.Flows {
		t.Fatalf("observed allocation differs: %+v vs %+v", plain, observed)
	}
	for i := range plain.Rates {
		if plain.Rates[i] != observed.Rates[i] {
			t.Fatalf("rate %d differs: %f vs %f", i, plain.Rates[i], observed.Rates[i])
		}
	}

	rounds := reg.Counter(MetricRounds).Value()
	frozen := reg.Counter(MetricFlowsFrozen).Value()
	if rounds < 1 {
		t.Error("no filling rounds recorded")
	}
	if frozen > int64(observed.Flows) {
		t.Errorf("froze %d flows, only %d allocated", frozen, observed.Flows)
	}
	// Progressive filling freezes every allocated flow at most once; flows
	// that never meet a saturated link are settled by the final-level guard.
	if frozen < 1 {
		t.Error("no flows frozen on a loaded network")
	}
	if reg.Counter(MetricHeapUpdates).Value() == 0 && reg.Counter(MetricHeapRemoves).Value() == 0 {
		t.Error("no heap operations recorded")
	}
}
