package flowsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// CompletionReport summarizes flow completion times under the (optimistic)
// fluid model: each flow transfers its bytes at its max-min fair rate held
// constant. The paper family reports shuffle completion through the ABT
// metric; FCTs give the same story per flow.
type CompletionReport struct {
	// TimesSec[i] is the completion time of flow i (0 for local flows).
	TimesSec []float64
	// MakespanSec is the slowest completion (the shuffle finishing time).
	MakespanSec float64
	// MeanSec and P99Sec summarize the distribution over non-local flows.
	MeanSec, P99Sec float64
}

// CompletionTimes computes fluid-model completion times for a workload whose
// paths received the given max-min assignment. lineRateBps converts the
// allocator's rate units (1.0 = line rate) into bytes per second.
func CompletionTimes(flows []traffic.Flow, paths []topology.Path, asg Assignment, lineRateBps float64) (CompletionReport, error) {
	if lineRateBps <= 0 {
		return CompletionReport{}, fmt.Errorf("flowsim: line rate %f must be positive", lineRateBps)
	}
	if len(flows) != len(paths) || len(flows) != len(asg.Rates) {
		return CompletionReport{}, fmt.Errorf("flowsim: %d flows, %d paths, %d rates",
			len(flows), len(paths), len(asg.Rates))
	}
	rep := CompletionReport{TimesSec: make([]float64, len(flows))}
	var active []float64
	for i, f := range flows {
		if len(paths[i]) < 2 {
			continue // src == dst: instantaneous
		}
		rate := asg.Rates[i] * lineRateBps
		if rate <= 0 {
			return CompletionReport{}, fmt.Errorf("flowsim: flow %d has zero allocated rate", i)
		}
		t := float64(f.Bytes) / rate
		rep.TimesSec[i] = t
		active = append(active, t)
		if t > rep.MakespanSec {
			rep.MakespanSec = t
		}
	}
	if len(active) == 0 {
		return rep, nil
	}
	sum := 0.0
	for _, t := range active {
		sum += t
	}
	rep.MeanSec = sum / float64(len(active))
	sort.Float64s(active)
	rep.P99Sec = active[int(math.Min(float64(len(active)-1), float64(len(active)*99)/100))]
	return rep, nil
}
