// Package flowsim is a flow-level network simulator: given a set of flows
// with fixed paths over a built network, it computes the max-min fair
// bandwidth allocation by progressive filling and derives the throughput
// metrics the paper family reports — most importantly the aggregate
// bottleneck throughput (ABT) of BCube's evaluation methodology (number of
// flows times the rate of the slowest flow).
package flowsim

import (
	"fmt"
	"math"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// DefaultCapacity is the per-link capacity in rate units (1.0 = one line
// rate; all links in a commodity DCN run at the same speed).
const DefaultCapacity = 1.0

// Assignment is the result of the max-min fair allocation.
type Assignment struct {
	// Rates[i] is the allocated rate of the i-th input flow.
	Rates []float64
	// Flows is the number of allocated flows.
	Flows int
}

// MinRate returns the rate of the slowest flow (0 when there are no flows).
func (a Assignment) MinRate() float64 {
	if len(a.Rates) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, r := range a.Rates {
		if r < min {
			min = r
		}
	}
	return min
}

// SumRate returns the total allocated throughput.
func (a Assignment) SumRate() float64 {
	total := 0.0
	for _, r := range a.Rates {
		total += r
	}
	return total
}

// ABT returns the aggregate bottleneck throughput: flows × bottleneck rate.
// It is the metric of the BCube evaluation that the ABCCC simulations adopt:
// with an all-to-all shuffle, the job finishes when the slowest flow does.
func (a Assignment) ABT() float64 {
	return float64(a.Flows) * a.MinRate()
}

// MaxMinFair computes the max-min fair allocation of unit-capacity links
// among the given paths by progressive filling: all unfrozen flows grow at
// the same rate; when a link saturates, its flows freeze; repeat.
//
// Paths must be node paths over net (as produced by topology routing). Links
// are full duplex: each direction of a cable is its own capacity-limited
// resource, as in a real data center.
func MaxMinFair(net *topology.Network, paths []topology.Path) (Assignment, error) {
	return MaxMinFairCapacity(net, paths, DefaultCapacity)
}

// referenceMaxMinFairCapacity is the original O(rounds·links) progressive
// filling loop: every round rescans all 2·E directed resources to find the
// next saturating link and drains all of them. It is kept as the executable
// specification that the production heap-based MaxMinFairCapacity is tested
// against (see maxminheap.go and the equivalence tests).
func referenceMaxMinFairCapacity(net *topology.Network, paths []topology.Path, capacity float64) (Assignment, error) {
	if capacity <= 0 {
		return Assignment{}, fmt.Errorf("flowsim: capacity %f must be positive", capacity)
	}
	g := net.Graph()
	// flowEdges[i] lists the directed link resources of flow i (resource
	// 2*edge+direction); active[r] counts unfrozen flows on resource r.
	flowEdges := make([][]int, len(paths))
	active := make([]int, 2*g.NumEdges())
	for i, p := range paths {
		if len(p) < 2 {
			continue // zero-length flow (src == dst): infinite local rate, skip
		}
		edges := make([]int, 0, len(p)-1)
		for j := 1; j < len(p); j++ {
			e := g.EdgeBetween(p[j-1], p[j])
			if e == -1 {
				return Assignment{}, fmt.Errorf("flowsim: path %d hops a non-edge %s-%s",
					i, net.Label(p[j-1]), net.Label(p[j]))
			}
			r := 2 * e
			if p[j-1] > p[j] {
				r++
			}
			edges = append(edges, r)
			active[r]++
		}
		flowEdges[i] = edges
	}

	remaining := make([]float64, 2*g.NumEdges())
	for e := range remaining {
		remaining[e] = capacity
	}
	rates := make([]float64, len(paths))
	frozen := make([]bool, len(paths))
	level := 0.0 // current fill level of unfrozen flows

	for {
		// The next saturating link bounds the uniform growth of all
		// unfrozen flows.
		bump := math.Inf(1)
		for e := range remaining {
			if active[e] == 0 {
				continue
			}
			if b := remaining[e] / float64(active[e]); b < bump {
				bump = b
			}
		}
		if math.IsInf(bump, 1) {
			break // no active links left: every remaining flow is local
		}
		level += bump
		// Drain the growth from every link carrying unfrozen flows.
		for e := range remaining {
			if active[e] > 0 {
				remaining[e] -= bump * float64(active[e])
			}
		}
		// Freeze flows crossing a saturated link.
		for i, edges := range flowEdges {
			if frozen[i] || len(edges) == 0 {
				continue
			}
			for _, e := range edges {
				if remaining[e] <= 1e-12 {
					frozen[i] = true
					rates[i] = level
					break
				}
			}
			if frozen[i] {
				for _, e := range edges {
					active[e]--
				}
			}
		}
	}
	// Flows that never met a saturated link (shouldn't happen with finite
	// capacity, but guard): give them the final level.
	count := 0
	for i := range rates {
		if len(flowEdges[i]) == 0 {
			continue
		}
		count++
		if !frozen[i] {
			rates[i] = level
		}
	}
	return Assignment{Rates: rates, Flows: count}, nil
}

// RoutePaths routes every flow of a workload on the given structure,
// translating the workload's server indices to node ids via the network's
// server list.
func RoutePaths(t topology.Topology, flows []traffic.Flow) ([]topology.Path, error) {
	servers := t.Network().Servers()
	paths := make([]topology.Path, len(flows))
	for i, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return nil, fmt.Errorf("flowsim: flow %d endpoints (%d,%d) out of %d servers",
				i, f.Src, f.Dst, len(servers))
		}
		p, err := t.Route(servers[f.Src], servers[f.Dst])
		if err != nil {
			return nil, fmt.Errorf("flowsim: route flow %d: %w", i, err)
		}
		paths[i] = p
	}
	return paths, nil
}
