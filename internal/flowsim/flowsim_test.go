package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

const eps = 1e-9

// chainNet builds a 3-server chain: s0 - swA - s1 - swB - s2.
func chainNet(t *testing.T) (*topology.Network, [3]int) {
	t.Helper()
	net := topology.NewNetwork("chain")
	s0 := net.AddServer("s0")
	swA := net.AddSwitch("swA")
	s1 := net.AddServer("s1")
	swB := net.AddSwitch("swB")
	s2 := net.AddServer("s2")
	for _, pr := range [][2]int{{s0, swA}, {swA, s1}, {s1, swB}, {swB, s2}} {
		if err := net.Connect(pr[0], pr[1]); err != nil {
			t.Fatal(err)
		}
	}
	return net, [3]int{s0, s1, s2}
}

func TestSingleFlowGetsFullCapacity(t *testing.T) {
	net, s := chainNet(t)
	asg, err := MaxMinFair(net, []topology.Path{{s[0], net.Switches()[0], s[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(asg.Rates[0]-1.0) > eps {
		t.Errorf("rate = %f, want 1.0", asg.Rates[0])
	}
	if math.Abs(asg.ABT()-1.0) > eps || math.Abs(asg.SumRate()-1.0) > eps {
		t.Errorf("ABT %f Sum %f", asg.ABT(), asg.SumRate())
	}
}

func TestTwoFlowsShareALink(t *testing.T) {
	net, s := chainNet(t)
	swA, swB := net.Switches()[0], net.Switches()[1]
	// Both flows cross swA->s1 in the same direction.
	p1 := topology.Path{s[0], swA, s[1]}
	p2 := topology.Path{s[0], swA, s[1], swB, s[2]}
	asg, err := MaxMinFair(net, []topology.Path{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range asg.Rates {
		if math.Abs(r-0.5) > eps {
			t.Errorf("rate[%d] = %f, want 0.5", i, r)
		}
	}
}

func TestOppositeDirectionsDoNotShare(t *testing.T) {
	// Full duplex: s0->s1 and s1->s0 each get the full line rate.
	net, s := chainNet(t)
	swA := net.Switches()[0]
	asg, err := MaxMinFair(net, []topology.Path{
		{s[0], swA, s[1]},
		{s[1], swA, s[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range asg.Rates {
		if math.Abs(r-1.0) > eps {
			t.Errorf("rate[%d] = %f, want 1.0 (full duplex)", i, r)
		}
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Classic max-min: flows A,B share link 1; flow C alone on link 2.
	// After A,B freeze at 0.5, C continues to 1.0.
	net, s := chainNet(t)
	swA, swB := net.Switches()[0], net.Switches()[1]
	asg, err := MaxMinFair(net, []topology.Path{
		{s[0], swA, s[1]},
		{s[0], swA, s[1]}, // same route: shares s0->swA and swA->s1
		{s[1], swB, s[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(asg.Rates[0]-0.5) > eps || math.Abs(asg.Rates[1]-0.5) > eps {
		t.Errorf("shared rates = %f,%f, want 0.5", asg.Rates[0], asg.Rates[1])
	}
	if math.Abs(asg.Rates[2]-1.0) > eps {
		t.Errorf("solo rate = %f, want 1.0", asg.Rates[2])
	}
	if math.Abs(asg.MinRate()-0.5) > eps {
		t.Errorf("MinRate = %f", asg.MinRate())
	}
	if math.Abs(asg.ABT()-1.5) > eps {
		t.Errorf("ABT = %f, want 3 flows * 0.5 = 1.5", asg.ABT())
	}
}

func TestZeroLengthFlowsSkipped(t *testing.T) {
	net, s := chainNet(t)
	asg, err := MaxMinFair(net, []topology.Path{{s[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if asg.Flows != 0 {
		t.Errorf("Flows = %d, want 0", asg.Flows)
	}
	if asg.MinRate() != 0 && len(asg.Rates) == 0 {
		t.Error("MinRate on empty")
	}
}

func TestInvalidPathRejected(t *testing.T) {
	net, s := chainNet(t)
	if _, err := MaxMinFair(net, []topology.Path{{s[0], s[2]}}); err == nil {
		t.Error("non-edge path accepted")
	}
	if _, err := MaxMinFairCapacity(net, nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRoutePathsWorkload(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	paths, err := RoutePaths(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(flows) {
		t.Fatalf("paths %d != flows %d", len(paths), len(flows))
	}
	asg, err := MaxMinFair(tp.Network(), paths)
	if err != nil {
		t.Fatal(err)
	}
	if asg.MinRate() <= 0 {
		t.Errorf("MinRate = %f, want > 0", asg.MinRate())
	}
	if asg.ABT() > asg.SumRate()+eps {
		t.Errorf("ABT %f > SumRate %f", asg.ABT(), asg.SumRate())
	}
}

func TestRoutePathsBadFlow(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RoutePaths(tp, []traffic.Flow{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
}

func TestPermutationABTScalesWithBisection(t *testing.T) {
	// Sanity on a real structure: under a permutation workload the ABT per
	// flow cannot exceed line rate, and must be positive.
	tp := bcube.MustBuild(bcube.Config{N: 4, K: 1})
	rng := rand.New(rand.NewSource(2))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	paths, err := RoutePaths(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := MaxMinFair(tp.Network(), paths)
	if err != nil {
		t.Fatal(err)
	}
	if asg.MinRate() <= 0 || asg.MinRate() > 1+eps {
		t.Errorf("MinRate = %f out of (0,1]", asg.MinRate())
	}
}

func TestAllToAllABTOrderingABCCCPorts(t *testing.T) {
	// The paper's tunability claim: at the same n and k, increasing p
	// (fewer servers per crossbar, more level bandwidth per server) must
	// not decrease the per-server bottleneck rate under all-to-all.
	rateFor := func(p int) float64 {
		tp := core.MustBuild(core.Config{N: 4, K: 1, P: p})
		flows := traffic.AllToAll(tp.Network().NumServers())
		paths, err := RoutePaths(tp, flows)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := MaxMinFair(tp.Network(), paths)
		if err != nil {
			t.Fatal(err)
		}
		return asg.MinRate() * float64(tp.Network().NumServers())
	}
	if r2, r3 := rateFor(2), rateFor(3); r3 < r2-eps {
		t.Errorf("per-server bottleneck bandwidth decreased with more ports: p2=%f p3=%f", r2, r3)
	}
}
