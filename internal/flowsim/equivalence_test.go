package flowsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// workloadPaths routes a workload on a small ABCCC instance for the
// heap-vs-reference property tests.
func workloadPaths(t testing.TB, cfg core.Config, kind string, seed int64) (*topology.Network, []topology.Path) {
	t.Helper()
	tp := core.MustBuild(cfg)
	rng := rand.New(rand.NewSource(seed))
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	switch kind {
	case "permutation":
		flows = traffic.Permutation(n, rng)
	case "uniform":
		flows = traffic.Uniform(n, n, rng)
	case "alltoall":
		flows = traffic.AllToAll(n)
	default:
		t.Fatalf("unknown workload %q", kind)
	}
	paths, err := RoutePaths(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	return tp.Network(), paths
}

// TestHeapMatchesReference is the equivalence property test of the tentpole
// rewrite: on random permutation and uniform workloads (and all-to-all), the
// heap-based active-set allocator must reproduce the reference progressive
// filling rates within 1e-9.
func TestHeapMatchesReference(t *testing.T) {
	const tol = 1e-9
	cfgs := []core.Config{
		{N: 3, K: 1, P: 2},
		{N: 4, K: 1, P: 3},
		{N: 4, K: 2, P: 2},
	}
	for _, cfg := range cfgs {
		for _, kind := range []string{"permutation", "uniform", "alltoall"} {
			for seed := int64(1); seed <= 5; seed++ {
				if kind == "alltoall" && seed > 1 {
					continue // deterministic workload: one seed is enough
				}
				name := fmt.Sprintf("%v/%s/seed%d", cfg, kind, seed)
				t.Run(name, func(t *testing.T) {
					net, paths := workloadPaths(t, cfg, kind, seed)
					for _, capacity := range []float64{1.0, 2.5} {
						got, err := MaxMinFairCapacity(net, paths, capacity)
						if err != nil {
							t.Fatal(err)
						}
						want, err := referenceMaxMinFairCapacity(net, paths, capacity)
						if err != nil {
							t.Fatal(err)
						}
						if got.Flows != want.Flows {
							t.Fatalf("Flows = %d, reference %d", got.Flows, want.Flows)
						}
						if len(got.Rates) != len(want.Rates) {
							t.Fatalf("len(Rates) = %d, reference %d", len(got.Rates), len(want.Rates))
						}
						for i := range got.Rates {
							if math.Abs(got.Rates[i]-want.Rates[i]) > tol {
								t.Errorf("cap %.1f rate[%d] = %.12f, reference %.12f",
									capacity, i, got.Rates[i], want.Rates[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestHeapMatchesReferenceSyntheticChains stresses the uneven-share cascades
// (many distinct freeze levels) that a single data-center permutation rarely
// produces: random flows over a long chain of switches.
func TestHeapMatchesReferenceSyntheticChains(t *testing.T) {
	const tol = 1e-9
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.NewNetwork("chain")
		const hosts = 12
		nodes := make([]int, 0, 2*hosts-1)
		for i := 0; i < hosts; i++ {
			nodes = append(nodes, net.AddServer(fmt.Sprintf("s%d", i)))
			if i < hosts-1 {
				nodes = append(nodes, net.AddSwitch(fmt.Sprintf("sw%d", i)))
			}
		}
		for i := 1; i < len(nodes); i++ {
			if err := net.Connect(nodes[i-1], nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Random sub-chain flows, including reverse direction and repeats.
		paths := make([]topology.Path, 30)
		for i := range paths {
			a, b := rng.Intn(len(nodes)), rng.Intn(len(nodes))
			if a == b {
				b = (b + 2) % len(nodes)
			}
			if a > b {
				a, b = b, a
			}
			p := make(topology.Path, 0, b-a+1)
			for v := a; v <= b; v++ {
				p = append(p, nodes[v])
			}
			if rng.Intn(2) == 0 { // reverse half the flows
				for l, r := 0, len(p)-1; l < r; l, r = l+1, r-1 {
					p[l], p[r] = p[r], p[l]
				}
			}
			paths[i] = p
		}
		got, err := MaxMinFairCapacity(net, paths, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceMaxMinFairCapacity(net, paths, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Rates {
			if math.Abs(got.Rates[i]-want.Rates[i]) > tol {
				t.Errorf("seed %d rate[%d] = %.12f, reference %.12f", seed, i, got.Rates[i], want.Rates[i])
			}
		}
	}
}

func benchPermutationPaths(b *testing.B, cfg core.Config) (*topology.Network, []topology.Path) {
	b.Helper()
	net, paths := workloadPaths(b, cfg, "permutation", 1)
	return net, paths
}

// BenchmarkMaxMinHeap / BenchmarkMaxMinReference give the before/after view
// of the tentpole rewrite at the benchmark configs quoted in the PR.
func BenchmarkMaxMinHeap192(b *testing.B) {
	net, paths := benchPermutationPaths(b, core.Config{N: 4, K: 2, P: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMinFairCapacity(net, paths, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinReference192(b *testing.B) {
	net, paths := benchPermutationPaths(b, core.Config{N: 4, K: 2, P: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceMaxMinFairCapacity(net, paths, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinHeap1024(b *testing.B) {
	net, paths := benchPermutationPaths(b, core.Config{N: 8, K: 2, P: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMinFairCapacity(net, paths, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinReference1024(b *testing.B) {
	net, paths := benchPermutationPaths(b, core.Config{N: 8, K: 2, P: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceMaxMinFairCapacity(net, paths, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
