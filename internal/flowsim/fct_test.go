package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestCompletionTimesSingleFlow(t *testing.T) {
	net, s := chainNet(t)
	paths := []topology.Path{{s[0], net.Switches()[0], s[1]}}
	asg, err := MaxMinFair(net, paths)
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{{Src: 0, Dst: 1, Bytes: 1000}}
	rep, err := CompletionTimes(flows, paths, asg, 1000 /* B/s */)
	if err != nil {
		t.Fatal(err)
	}
	// Full line rate: 1000 bytes at 1000 B/s = 1 s.
	if math.Abs(rep.TimesSec[0]-1.0) > eps || math.Abs(rep.MakespanSec-1.0) > eps {
		t.Errorf("FCT = %f, makespan %f, want 1.0", rep.TimesSec[0], rep.MakespanSec)
	}
	if math.Abs(rep.MeanSec-1.0) > eps || math.Abs(rep.P99Sec-1.0) > eps {
		t.Errorf("mean %f p99 %f", rep.MeanSec, rep.P99Sec)
	}
}

func TestCompletionTimesSharedLinkDoubles(t *testing.T) {
	net, s := chainNet(t)
	sw := net.Switches()[0]
	paths := []topology.Path{{s[0], sw, s[1]}, {s[0], sw, s[1]}}
	asg, err := MaxMinFair(net, paths)
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{{Src: 0, Dst: 1, Bytes: 500}, {Src: 0, Dst: 1, Bytes: 500}}
	rep, err := CompletionTimes(flows, paths, asg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1.0, 1.0} { // half rate each
		if math.Abs(rep.TimesSec[i]-want) > eps {
			t.Errorf("FCT[%d] = %f, want %f", i, rep.TimesSec[i], want)
		}
	}
}

func TestCompletionTimesLocalFlow(t *testing.T) {
	net, s := chainNet(t)
	paths := []topology.Path{{s[0]}}
	asg, err := MaxMinFair(net, paths)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompletionTimes([]traffic.Flow{{Src: 0, Dst: 0, Bytes: 10}}, paths, asg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimesSec[0] != 0 || rep.MakespanSec != 0 {
		t.Errorf("local flow FCT = %f", rep.TimesSec[0])
	}
}

func TestCompletionTimesErrors(t *testing.T) {
	net, s := chainNet(t)
	paths := []topology.Path{{s[0], net.Switches()[0], s[1]}}
	asg, _ := MaxMinFair(net, paths)
	flows := []traffic.Flow{{Src: 0, Dst: 1, Bytes: 10}}
	if _, err := CompletionTimes(flows, paths, asg, 0); err == nil {
		t.Error("zero line rate accepted")
	}
	if _, err := CompletionTimes(nil, paths, asg, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestShuffleMakespanMatchesABTOrdering(t *testing.T) {
	// At matched flow sizes, higher ABT per flow means lower makespan: the
	// p=3 instance must finish its shuffle no slower than p=2 per flow.
	makespan := func(p int) float64 {
		tp := core.MustBuild(core.Config{N: 4, K: 1, P: p})
		n := tp.Network().NumServers()
		flows, err := traffic.Shuffle(n, 4, 4, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		paths, err := RoutePaths(tp, flows)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := MaxMinFair(tp.Network(), paths)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := CompletionTimes(flows, paths, asg, 125e6)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MakespanSec
	}
	if m2, m3 := makespan(2), makespan(3); m3 > m2+eps {
		t.Errorf("p=3 shuffle slower than p=2: %f vs %f", m3, m2)
	}
}
