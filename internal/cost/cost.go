// Package cost implements the capital-expenditure model used in the paper's
// cost comparison: switches priced by port count, server NICs priced per
// port, and cabling priced per link. Only interconnect CapEx is modeled —
// the servers themselves cost the same in every structure and cancel out of
// every comparison.
//
// The default prices are 2015-era commodity list prices; all comparisons in
// the paper depend on price ratios, not absolute dollars, and the model is
// fully parameterizable.
package cost

import (
	"fmt"

	"repro/internal/topology"
)

// Model holds the unit prices.
type Model struct {
	// SwitchBase is the fixed cost of a switch chassis.
	SwitchBase float64
	// SwitchPerPort is the incremental cost per switch port.
	SwitchPerPort float64
	// NICPerPort is the cost of one server NIC port.
	NICPerPort float64
	// Cable is the cost of one cable (including both transceivers).
	Cable float64
}

// Default returns the documented 2015-era commodity price model:
// a 48-port GbE switch around $2,500 (~$150 base + $49/port), $30 per NIC
// port, $5 per cable.
func Default() Model {
	return Model{
		SwitchBase:    150,
		SwitchPerPort: 49,
		NICPerPort:    30,
		Cable:         5,
	}
}

// Breakdown is the CapEx bill of one structure.
type Breakdown struct {
	Name     string
	Switches float64
	NICs     float64
	Cables   float64
}

// Total returns the summed CapEx.
func (b Breakdown) Total() float64 { return b.Switches + b.NICs + b.Cables }

// PerServer returns the interconnect CapEx per server.
func (b Breakdown) PerServer(servers int) float64 {
	if servers == 0 {
		return 0
	}
	return b.Total() / float64(servers)
}

// String formats the bill for CLI output.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s: switches $%.0f + NICs $%.0f + cables $%.0f = $%.0f",
		b.Name, b.Switches, b.NICs, b.Cables, b.Total())
}

// Switch returns the price of one switch with the given port count.
func (m Model) Switch(ports int) float64 {
	if ports <= 0 {
		return 0
	}
	return m.SwitchBase + m.SwitchPerPort*float64(ports)
}

// CapEx prices a structure from its analytic properties.
func (m Model) CapEx(p topology.Properties) Breakdown {
	return Breakdown{
		Name:     p.Name,
		Switches: float64(p.Switches) * m.Switch(p.SwitchPorts),
		NICs:     float64(p.Servers) * float64(p.ServerPorts) * m.NICPerPort,
		Cables:   float64(p.Links) * m.Cable,
	}
}

// ExpansionCost prices an expansion report: new switches are bought at the
// after-structure's radix, new server slots need full NIC sets, rewired
// cables cost a cable each (labor folded in), and upgraded servers need one
// extra NIC port installed.
func (m Model) ExpansionCost(r topology.ExpansionReport, switchPorts, serverPorts int) float64 {
	newServerNICs := float64(r.NewServers*serverPorts) * m.NICPerPort
	return float64(r.NewSwitches)*m.Switch(switchPorts) +
		newServerNICs +
		float64(r.NewLinks+r.RewiredLinks)*m.Cable +
		float64(r.UpgradedServers)*m.NICPerPort
}
