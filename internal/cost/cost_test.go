package cost

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/topology"
)

func TestSwitchPrice(t *testing.T) {
	m := Default()
	tests := []struct {
		ports int
		want  float64
	}{
		{ports: 0, want: 0},
		{ports: -1, want: 0},
		{ports: 48, want: 150 + 49*48},
		{ports: 8, want: 150 + 49*8},
	}
	for _, tt := range tests {
		if got := m.Switch(tt.ports); got != tt.want {
			t.Errorf("Switch(%d) = %f, want %f", tt.ports, got, tt.want)
		}
	}
}

func TestCapExBreakdown(t *testing.T) {
	m := Default()
	props := topology.Properties{
		Name:        "toy",
		Servers:     10,
		Switches:    2,
		Links:       20,
		ServerPorts: 2,
		SwitchPorts: 8,
	}
	b := m.CapEx(props)
	if b.Switches != 2*(150+49*8) {
		t.Errorf("Switches = %f", b.Switches)
	}
	if b.NICs != 10*2*30 {
		t.Errorf("NICs = %f", b.NICs)
	}
	if b.Cables != 20*5 {
		t.Errorf("Cables = %f", b.Cables)
	}
	if got := b.Total(); math.Abs(got-(b.Switches+b.NICs+b.Cables)) > 1e-9 {
		t.Errorf("Total = %f", got)
	}
	if got := b.PerServer(10); math.Abs(got-b.Total()/10) > 1e-9 {
		t.Errorf("PerServer = %f", got)
	}
	if b.PerServer(0) != 0 {
		t.Error("PerServer(0) != 0")
	}
	if !strings.Contains(b.String(), "toy") {
		t.Errorf("String() = %q", b.String())
	}
}

func TestABCCCCheaperPerServerThanBCubeAtMatchedPorts(t *testing.T) {
	// At comparable scale, ABCCC amortizes switches over more servers per
	// crossbar than BCube's per-server switch-port footprint, so its
	// interconnect CapEx per server must come out lower when BCube needs
	// many NIC ports.
	m := Default()
	a := core.MustBuild(core.Config{N: 8, K: 3, P: 2}) // 4*8^4 = 16384 servers, 2 NICs
	b := bcube.MustBuild(bcube.Config{N: 8, K: 3})     // 8^4 = 4096 servers, 4 NICs
	ca := m.CapEx(a.Properties()).PerServer(a.Properties().Servers)
	cb := m.CapEx(b.Properties()).PerServer(b.Properties().Servers)
	if ca >= cb {
		t.Errorf("ABCCC per-server CapEx %f >= BCube %f", ca, cb)
	}
}

func TestExpansionCostZeroTouchVsUpgrade(t *testing.T) {
	m := Default()
	zero := topology.ExpansionReport{NewServers: 10, NewSwitches: 2, NewLinks: 30}
	upgrade := zero
	upgrade.UpgradedServers = 100
	upgrade.RewiredLinks = 50
	cz := m.ExpansionCost(zero, 8, 2)
	cu := m.ExpansionCost(upgrade, 8, 2)
	if cu <= cz {
		t.Errorf("upgrade expansion %f not more expensive than zero-touch %f", cu, cz)
	}
	wantZero := 2*(150+49*8) + 10*2*30 + 30*5
	if math.Abs(cz-float64(wantZero)) > 1e-9 {
		t.Errorf("zero-touch cost = %f, want %d", cz, wantZero)
	}
}
