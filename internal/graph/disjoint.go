package graph

// GreedyDisjointPaths returns up to k internally vertex-disjoint paths from
// src to dst, found by repeatedly taking a shortest path and failing its
// interior nodes. Greedy extraction is not maximal in general (max-flow is;
// see VertexDisjointPaths), but it serves as the structure-agnostic baseline
// the native parallel-path constructions are compared against.
func (g *Graph) GreedyDisjointPaths(src, dst, k int) [][]int {
	if src == dst || k <= 0 {
		return nil
	}
	view := NewView(g)
	var out [][]int
	for len(out) < k {
		path := g.ShortestPath(src, dst, view)
		if path == nil {
			break
		}
		out = append(out, path)
		for _, node := range path[1 : len(path)-1] {
			view.FailNode(node)
		}
		if len(path) == 2 {
			// Direct edge: remove it so the next round must differ.
			view.FailEdge(g.EdgeBetween(src, dst))
		}
	}
	return out
}
