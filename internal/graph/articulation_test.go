package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestArticulationPointsLine(t *testing.T) {
	g := line(t, 5)
	got := g.ArticulationPoints()
	sort.Ints(got)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("APs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("APs = %v, want %v", got, want)
		}
	}
}

func TestArticulationPointsCycleHasNone(t *testing.T) {
	if got := cycle(t, 6).ArticulationPoints(); got != nil {
		t.Errorf("cycle APs = %v, want none", got)
	}
}

func TestArticulationPointsBridgeNode(t *testing.T) {
	// Two triangles joined at node 2 via node 6: 2 and 6... build two
	// triangles sharing node 2 through a connector 6.
	g := New(7)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 3)
	g.MustAddEdge(2, 6)
	g.MustAddEdge(6, 3)
	got := g.ArticulationPoints()
	sort.Ints(got)
	want := []int{2, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("APs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("APs = %v, want %v", got, want)
		}
	}
}

func TestArticulationPointsDisconnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	got := g.ArticulationPoints()
	sort.Ints(got)
	want := []int{1, 4}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("APs = %v, want %v", got, want)
	}
}

// TestPropertyArticulationMatchesBruteForce cross-checks Tarjan against the
// definition: v is an articulation point iff failing it increases the
// number of pairs that cannot reach each other.
func TestPropertyArticulationMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		g := randomConnectedGraph(rng, n, rng.Intn(n))
		fast := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			fast[v] = true
		}
		for v := 0; v < n; v++ {
			view := NewView(g)
			view.FailNode(v)
			// Count reachable pairs among the remaining nodes.
			disconnected := false
			var first = -1
			for u := 0; u < n; u++ {
				if u != v {
					first = u
					break
				}
			}
			if first == -1 {
				continue
			}
			res := g.BFS(first, view)
			for u := 0; u < n; u++ {
				if u != v && res.Dist[u] == Unreachable {
					disconnected = true
				}
			}
			if disconnected != fast[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
