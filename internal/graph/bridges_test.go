package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBridgesLine(t *testing.T) {
	g := line(t, 4)
	if got := len(g.Bridges()); got != 3 {
		t.Errorf("line has %d bridges, want 3", got)
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	if got := cycle(t, 5).Bridges(); got != nil {
		t.Errorf("cycle bridges = %v, want none", got)
	}
}

func TestBridgesTwoTrianglesOneBridge(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 3)
	bridge := g.MustAddEdge(2, 3)
	got := g.Bridges()
	if len(got) != 1 || got[0] != bridge {
		t.Errorf("bridges = %v, want [%d]", got, bridge)
	}
}

func TestPropertyBridgesMatchBruteForce(t *testing.T) {
	// e is a bridge iff failing it disconnects some previously connected
	// pair.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := randomConnectedGraph(rng, n, rng.Intn(n))
		fast := map[int]bool{}
		for _, e := range g.Bridges() {
			fast[e] = true
		}
		for e := 0; e < g.NumEdges(); e++ {
			view := NewView(g)
			view.FailEdge(e)
			if g.Connected(view) == fast[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
