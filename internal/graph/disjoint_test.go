package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyDisjointPathsCycle(t *testing.T) {
	g := cycle(t, 8)
	paths := g.GreedyDisjointPaths(0, 4, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths on a cycle, want 2", len(paths))
	}
	seen := map[int]bool{}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 4 {
			t.Fatalf("bad endpoints: %v", p)
		}
		for _, node := range p[1 : len(p)-1] {
			if seen[node] {
				t.Fatalf("paths share node %d", node)
			}
			seen[node] = true
		}
	}
}

func TestGreedyDisjointPathsDirectEdge(t *testing.T) {
	// Triangle: direct edge plus the two-hop detour.
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	paths := g.GreedyDisjointPaths(0, 2, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (direct + detour)", len(paths))
	}
}

func TestGreedyDisjointPathsDegenerate(t *testing.T) {
	g := line(t, 3)
	if got := g.GreedyDisjointPaths(1, 1, 3); got != nil {
		t.Errorf("self pair returned %v", got)
	}
	if got := g.GreedyDisjointPaths(0, 2, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestPropertyGreedyNeverExceedsMaxFlow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, 2*n)
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		greedy := g.GreedyDisjointPaths(u, v, n)
		limit := g.VertexDisjointPaths(u, v)
		if len(greedy) > limit || len(greedy) < 1 {
			return false
		}
		// Validate disjointness.
		seen := map[int]bool{}
		for _, p := range greedy {
			for _, node := range p[1 : len(p)-1] {
				if seen[node] {
					return false
				}
				seen[node] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
