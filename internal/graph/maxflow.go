package graph

// Dinic's max-flow on a directed flow network. The topology packages use it
// for two verification jobs: exact min-cuts between canonical bisection
// halves (cross-checking the analytic digit-cut formulas) and counting
// internally vertex-disjoint paths (verifying the parallel-path claims).

type flowArc struct {
	to  int32
	rev int32 // index of the reverse arc in adj[to]
	cap int32
}

// FlowNetwork is a directed graph with integer capacities for Dinic's
// algorithm. Build one with NewFlowNetwork and AddArc.
type FlowNetwork struct {
	adj [][]flowArc
}

// NewFlowNetwork returns a flow network with n nodes and no arcs.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{adj: make([][]flowArc, n)}
}

// AddNode appends a node and returns its index.
func (f *FlowNetwork) AddNode() int {
	f.adj = append(f.adj, nil)
	return len(f.adj) - 1
}

// AddArc adds a directed arc u->v with the given capacity (and a zero-capacity
// reverse arc used for residual flow).
func (f *FlowNetwork) AddArc(u, v, capacity int) {
	f.adj[u] = append(f.adj[u], flowArc{to: int32(v), rev: int32(len(f.adj[v])), cap: int32(capacity)})
	f.adj[v] = append(f.adj[v], flowArc{to: int32(u), rev: int32(len(f.adj[u]) - 1), cap: 0})
}

// AddUndirected adds capacity in both directions, modeling an undirected
// capacitated edge.
func (f *FlowNetwork) AddUndirected(u, v, capacity int) {
	f.AddArc(u, v, capacity)
	f.AddArc(v, u, capacity)
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm. It mutates
// residual capacities; call it once per network.
func (f *FlowNetwork) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	n := len(f.adj)
	level := make([]int32, n)
	iter := make([]int32, n)
	queue := make([]int32, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range f.adj[u] {
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int32, limit int32) int32
	dfs = func(u int32, limit int32) int32 {
		if int(u) == t {
			return limit
		}
		for ; iter[u] < int32(len(f.adj[u])); iter[u]++ {
			a := &f.adj[u][iter[u]]
			if a.cap <= 0 || level[a.to] != level[u]+1 {
				continue
			}
			pushed := dfs(a.to, min32(limit, a.cap))
			if pushed > 0 {
				a.cap -= pushed
				f.adj[a.to][a.rev].cap += pushed
				return pushed
			}
		}
		return 0
	}

	const inf = int32(1) << 30
	total := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(int32(s), inf)
			if pushed == 0 {
				break
			}
			total += int(pushed)
		}
	}
	return total
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// MinCutBetween returns the minimum number of edges that must be removed from
// g to disconnect every node in side from every node in other. Nodes listed
// in neither set are free intermediates. All edges have unit capacity.
func (g *Graph) MinCutBetween(side, other []int) int {
	f := NewFlowNetwork(g.NumNodes() + 2)
	s := g.NumNodes()
	t := s + 1
	for _, e := range g.edges {
		f.AddUndirected(int(e.U), int(e.V), 1)
	}
	const inf = 1 << 29
	for _, v := range side {
		f.AddArc(s, v, inf)
	}
	for _, v := range other {
		f.AddArc(v, t, inf)
	}
	return f.MaxFlow(s, t)
}

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths between src and dst (standard node-splitting
// reduction: node v becomes v_in -> v_out with capacity 1, except the
// terminals which get infinite self-capacity).
func (g *Graph) VertexDisjointPaths(src, dst int) int {
	return g.VertexDisjointPathsIn(src, dst, nil)
}

// VertexDisjointPathsIn is VertexDisjointPaths restricted to the components
// alive in view: failed nodes and edges carry no flow, so the result is the
// pair's surviving path diversity — the capacity-retention measure the
// survivability suite samples over a degraded network. A nil view means no
// failures; a dead endpoint yields 0.
func (g *Graph) VertexDisjointPathsIn(src, dst int, view *View) int {
	if src == dst || !view.NodeUp(src) || !view.NodeUp(dst) {
		return 0
	}
	n := g.NumNodes()
	f := NewFlowNetwork(2 * n) // v_in = v, v_out = v + n
	const inf = 1 << 29
	for v := 0; v < n; v++ {
		if !view.NodeUp(v) {
			continue
		}
		capacity := 1
		if v == src || v == dst {
			capacity = inf
		}
		f.AddArc(v, v+n, capacity)
	}
	for id, e := range g.edges {
		if !view.EdgeUp(id) || !view.NodeUp(int(e.U)) || !view.NodeUp(int(e.V)) {
			continue
		}
		f.AddArc(int(e.U)+n, int(e.V), 1)
		f.AddArc(int(e.V)+n, int(e.U), 1)
	}
	return f.MaxFlow(src+n, dst)
}
