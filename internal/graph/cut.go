package graph

// CutImpact scores every alive node and edge by the damage its individual
// removal would do: the number of unordered pairs of weight units (with the
// survivability suite's weights, server pairs) that are connected now but
// disconnected once that one component is removed. Nodes and edges whose
// removal splits nothing — everything outside the articulation-point/bridge
// set, plus anything already failed in view — score 0.
//
// The scores come from a single iterative low-link DFS per component, the
// same traversal as ArticulationPoints and Bridges, augmented with subtree
// weights: removing node v from a component of total weight S leaves groups
// equal to each child subtree c with low(c) ≥ disc(v) (weight w_c) plus the
// rest of the component (S − w(v) − Σw_c), so the pairs lost are
//
//	C(S−w(v), 2) − Σ C(w_c, 2) − C(S−w(v)−Σw_c, 2)
//
// and removing a bridge edge whose child side has weight W loses W·(S−W).
// A nil weight counts every node as 1; a nil view means no failures.
func (g *Graph) CutImpact(view *View, weight []int64) (nodeImpact, edgeImpact []int64) {
	n := g.NumNodes()
	nodeImpact = make([]int64, n)
	edgeImpact = make([]int64, g.NumEdges())
	if weight == nil {
		weight = make([]int64, n)
		for i := range weight {
			weight[i] = 1
		}
	}
	var (
		disc    = make([]int32, n) // discovery time, 0 = unvisited
		low     = make([]int32, n)
		pedge   = make([]int32, n) // edge to DFS parent
		pnode   = make([]int32, n) // DFS parent node
		subW    = make([]int64, n) // DFS subtree weight
		splitW  = make([]int64, n) // Σ weight of split-off child subtrees
		splitSq = make([]int64, n) // Σ C(w_c, 2) over those subtrees
		timer   int32
	)
	type frame struct {
		node int32
		next int32
	}
	type bridgeCand struct {
		edge int32
		w    int64 // child-side subtree weight
	}
	var order []int32 // visit order of the current component
	var cands []bridgeCand
	for start := 0; start < n; start++ {
		if disc[start] != 0 || !view.NodeUp(start) {
			continue
		}
		order = order[:0]
		cands = cands[:0]
		timer++
		disc[start] = timer
		low[start] = timer
		pedge[start] = -1
		pnode[start] = -1
		subW[start] = weight[start]
		order = append(order, int32(start))
		stack := []frame{{node: int32(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if int(f.next) < len(g.adj[u]) {
				h := g.adj[u][f.next]
				f.next++
				if h.edge == pedge[u] || !view.usable(h) {
					continue
				}
				if disc[h.to] == 0 {
					pedge[h.to] = h.edge
					pnode[h.to] = u
					timer++
					disc[h.to] = timer
					low[h.to] = timer
					subW[h.to] = weight[h.to]
					order = append(order, h.to)
					stack = append(stack, frame{node: h.to})
				} else if disc[h.to] < low[u] {
					low[u] = disc[h.to]
				}
				continue
			}
			// Post-order: fold this subtree into the parent.
			stack = stack[:len(stack)-1]
			p := pnode[u]
			if p == -1 {
				continue
			}
			if low[u] < low[p] {
				low[p] = low[u]
			}
			subW[p] += subW[u]
			if low[u] >= disc[p] {
				// Subtree u cannot reach above p: removing p splits it off.
				// (At the DFS root this holds for every child, which is
				// exactly the root rule — all child subtrees separate.)
				splitW[p] += subW[u]
				splitSq[p] += choose2(subW[u])
			}
			if low[u] == disc[u] {
				cands = append(cands, bridgeCand{edge: pedge[u], w: subW[u]})
			}
		}
		// Impacts need the component total, known only now.
		total := subW[start]
		for _, v := range order {
			rem := total - weight[v]
			rest := rem - splitW[v]
			nodeImpact[v] = choose2(rem) - splitSq[v] - choose2(rest)
		}
		for _, c := range cands {
			edgeImpact[c.edge] = c.w * (total - c.w)
		}
	}
	return nodeImpact, edgeImpact
}

// choose2 returns x·(x−1)/2, the unordered pairs among x units.
func choose2(x int64) int64 { return x * (x - 1) / 2 }
