package graph

// Unreachable marks nodes not reached by a traversal in distance slices.
const Unreachable int32 = -1

// BFSResult holds per-node distances and BFS-tree parents from one source.
type BFSResult struct {
	Source int
	// Dist[v] is the hop distance from Source to v, or Unreachable.
	Dist []int32
	// Parent[v] is the predecessor of v on a shortest path, or -1.
	Parent []int32
}

// BFSScratch holds the reusable buffers of one breadth-first search. A
// scratch amortizes the per-call dist/parent/queue allocations away: the
// all-pairs metrics reuse one scratch per worker across thousands of
// sources. A scratch must not be shared between concurrent searches.
type BFSScratch struct {
	dist   []int32
	parent []int32
	queue  []int32
}

// NewBFSScratch returns a scratch sized for an n-node graph. Scratches grow
// on demand, so sizing is an optimization, not a requirement.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:   make([]int32, n),
		parent: make([]int32, n),
		queue:  make([]int32, 0, n),
	}
}

// reset grows the buffers to n nodes and marks every node unreached.
func (s *BFSScratch) reset(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.parent = make([]int32, n)
		s.queue = make([]int32, 0, n)
	}
	s.dist = s.dist[:n]
	s.parent = s.parent[:n]
	for i := range s.dist {
		s.dist[i] = Unreachable
		s.parent[i] = -1
	}
	s.queue = s.queue[:0]
}

// BFS runs a breadth-first search from src over the graph as seen through
// view (a nil view means no failures). It returns hop distances counted in
// edges traversed.
func (g *Graph) BFS(src int, view *View) BFSResult {
	return g.BFSScratched(src, view, NewBFSScratch(g.NumNodes()))
}

// BFSScratched is BFS reusing the buffers of s. The returned result aliases
// the scratch: it is valid only until the next search with the same scratch,
// and callers needing to retain it must copy the slices out.
func (g *Graph) BFSScratched(src int, view *View, s *BFSScratch) BFSResult {
	s.reset(g.NumNodes())
	res := BFSResult{Source: src, Dist: s.dist, Parent: s.parent}
	if src < 0 || src >= g.NumNodes() || !view.NodeUp(src) {
		return res
	}
	s.dist[src] = 0
	queue := append(s.queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := s.dist[u]
		for _, h := range g.adj[u] {
			if s.dist[h.to] != Unreachable || !view.usable(h) {
				continue
			}
			s.dist[h.to] = du + 1
			s.parent[h.to] = u
			queue = append(queue, h.to)
		}
	}
	s.queue = queue[:0]
	return res
}

// PathTo reconstructs the shortest path from the BFS source to dst as a node
// sequence including both endpoints. It returns nil if dst is unreachable.
func (r BFSResult) PathTo(dst int) []int {
	if dst < 0 || dst >= len(r.Dist) || r.Dist[dst] == Unreachable {
		return nil
	}
	path := make([]int, r.Dist[dst]+1)
	for v := int32(dst); v != -1; v = r.Parent[v] {
		path[r.Dist[v]] = int(v)
	}
	return path
}

// ShortestPath returns a shortest path between src and dst (both endpoints
// included) under view, or nil if disconnected.
func (g *Graph) ShortestPath(src, dst int, view *View) []int {
	return g.BFS(src, view).PathTo(dst)
}

// Eccentricity returns the largest finite distance from the BFS source to any
// node in targets (or to all nodes when targets is nil), and whether every
// target was reachable.
func (r BFSResult) Eccentricity(targets []int) (int, bool) {
	max, all := 0, true
	if targets == nil {
		for v, d := range r.Dist {
			if v == r.Source {
				continue
			}
			if d == Unreachable {
				all = false
				continue
			}
			if int(d) > max {
				max = int(d)
			}
		}
		return max, all
	}
	for _, v := range targets {
		d := r.Dist[v]
		if v == r.Source {
			continue
		}
		if d == Unreachable {
			all = false
			continue
		}
		if int(d) > max {
			max = int(d)
		}
	}
	return max, all
}

// Eccentricity returns the largest finite distance from src to any node in
// targets (or to all nodes when targets is nil), and whether every target was
// reachable.
func (g *Graph) Eccentricity(src int, targets []int, view *View) (int, bool) {
	return g.BFS(src, view).Eccentricity(targets)
}

// Connected reports whether every alive node is reachable from the first
// alive node.
func (g *Graph) Connected(view *View) bool {
	src := -1
	for v := 0; v < g.NumNodes(); v++ {
		if view.NodeUp(v) {
			src = v
			break
		}
	}
	if src == -1 {
		return true
	}
	res := g.BFS(src, view)
	for v := 0; v < g.NumNodes(); v++ {
		if view.NodeUp(v) && res.Dist[v] == Unreachable {
			return false
		}
	}
	return true
}
