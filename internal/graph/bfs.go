package graph

// Unreachable marks nodes not reached by a traversal in distance slices.
const Unreachable int32 = -1

// BFSResult holds per-node distances and BFS-tree parents from one source.
type BFSResult struct {
	Source int
	// Dist[v] is the hop distance from Source to v, or Unreachable.
	Dist []int32
	// Parent[v] is the predecessor of v on a shortest path, or -1.
	Parent []int32
}

// BFS runs a breadth-first search from src over the graph as seen through
// view (a nil view means no failures). It returns hop distances counted in
// edges traversed.
func (g *Graph) BFS(src int, view *View) BFSResult {
	res := BFSResult{
		Source: src,
		Dist:   make([]int32, g.NumNodes()),
		Parent: make([]int32, g.NumNodes()),
	}
	for i := range res.Dist {
		res.Dist[i] = Unreachable
		res.Parent[i] = -1
	}
	if src < 0 || src >= g.NumNodes() || !view.NodeUp(src) {
		return res
	}
	res.Dist[src] = 0
	queue := make([]int32, 1, g.NumNodes())
	queue[0] = int32(src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := res.Dist[u]
		for _, h := range g.adj[u] {
			if res.Dist[h.to] != Unreachable || !view.usable(h) {
				continue
			}
			res.Dist[h.to] = du + 1
			res.Parent[h.to] = u
			queue = append(queue, h.to)
		}
	}
	return res
}

// PathTo reconstructs the shortest path from the BFS source to dst as a node
// sequence including both endpoints. It returns nil if dst is unreachable.
func (r BFSResult) PathTo(dst int) []int {
	if dst < 0 || dst >= len(r.Dist) || r.Dist[dst] == Unreachable {
		return nil
	}
	path := make([]int, r.Dist[dst]+1)
	for v := int32(dst); v != -1; v = r.Parent[v] {
		path[r.Dist[v]] = int(v)
	}
	return path
}

// ShortestPath returns a shortest path between src and dst (both endpoints
// included) under view, or nil if disconnected.
func (g *Graph) ShortestPath(src, dst int, view *View) []int {
	return g.BFS(src, view).PathTo(dst)
}

// Eccentricity returns the largest finite distance from src to any node in
// targets (or to all nodes when targets is nil), and whether every target was
// reachable.
func (g *Graph) Eccentricity(src int, targets []int, view *View) (int, bool) {
	res := g.BFS(src, view)
	max, all := 0, true
	if targets == nil {
		for v, d := range res.Dist {
			if v == src {
				continue
			}
			if d == Unreachable {
				all = false
				continue
			}
			if int(d) > max {
				max = int(d)
			}
		}
		return max, all
	}
	for _, v := range targets {
		d := res.Dist[v]
		if v == src {
			continue
		}
		if d == Unreachable {
			all = false
			continue
		}
		if int(d) > max {
			max = int(d)
		}
	}
	return max, all
}

// Connected reports whether every alive node is reachable from the first
// alive node.
func (g *Graph) Connected(view *View) bool {
	src := -1
	for v := 0; v < g.NumNodes(); v++ {
		if view.NodeUp(v) {
			src = v
			break
		}
	}
	if src == -1 {
		return true
	}
	res := g.BFS(src, view)
	for v := 0; v < g.NumNodes(); v++ {
		if view.NodeUp(v) && res.Dist[v] == Unreachable {
			return false
		}
	}
	return true
}
