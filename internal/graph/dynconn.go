package graph

// DynConn tracks the connected components of a graph incrementally as nodes
// and edges fail and recover, maintaining weighted component aggregates
// without recomputing connectivity from scratch at every event. It is the
// engine behind the survivability suite's lifetime simulations: a multi-year
// fault schedule over a 100k-server network touches hundreds of thousands of
// events, and a full BFS per event would make the horizon intractable.
//
// The structure is asymmetric, matching the asymmetry of the operations:
//
//   - Repairs only ever merge components, which a disjoint-set union over
//     "base component ids" handles in near-constant amortized time.
//   - Failures may split a component. A split is detected with a targeted
//     BFS from one surviving neighbor of the failed component that stops as
//     soon as it has seen every other surviving neighbor — for a non-cut
//     component (the overwhelmingly common case in a well-connected DCN)
//     the search touches only a small ball around the failure. Only a real
//     split pays for a traversal of the regions it creates, and the region
//     the detection BFS explored keeps its old id, so the giant component is
//     never relabeled.
//
// Each node carries a caller-supplied non-negative weight (the survivability
// suite weighs servers 1 and switches 0), and the tracker maintains the
// total alive weight, the sum of squared component weights, and the number
// of components with positive weight. From these, the fraction of reachable
// server pairs and the first-partition predicate are O(1) per event.
//
// DynConn owns its View: callers apply events through the tracker (not the
// view) and read the view for routing or auditing. It is not safe for
// concurrent use; parallel trials each build their own tracker.
type DynConn struct {
	g      *Graph
	view   *View
	weight []int64

	comp []int32 // base component id per node; -1 while the node is down

	// Disjoint-set forest over base ids. size/wsum are meaningful at roots
	// only. A root with size 0 is a retired id (its component died).
	parent []int32
	size   []int64
	wsum   []int64

	aliveWeight int64 // Σ weight over alive nodes
	sumSquares  int64 // Σ wsum(root)² over live roots
	comps       int   // live components
	weighted    int   // live components with wsum > 0

	// Per-operation scratch: seen[v] == epoch marks v visited this op.
	seen  []int32
	epoch int32
	queue []int32
}

// NewDynConn returns a tracker for g with every node and edge alive.
// weight[v] is node v's contribution to the component aggregates and must be
// non-negative; a nil weight counts every node as 1.
func NewDynConn(g *Graph, weight []int64) *DynConn {
	n := g.NumNodes()
	if weight == nil {
		weight = make([]int64, n)
		for i := range weight {
			weight[i] = 1
		}
	}
	d := &DynConn{
		g:      g,
		view:   NewView(g),
		weight: weight,
		comp:   make([]int32, n),
		seen:   make([]int32, n),
		queue:  make([]int32, 0, n),
	}
	for i := range d.comp {
		d.comp[i] = -1
	}
	// One sweep assigns a base id per initial component.
	for v := 0; v < n; v++ {
		if d.comp[v] != -1 {
			continue
		}
		id := d.newBase()
		d.comp[v] = id
		w, sz := weight[v], int64(1)
		q := append(d.queue[:0], int32(v))
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, h := range g.adj[u] {
				if d.comp[h.to] != -1 {
					continue
				}
				d.comp[h.to] = id
				w += weight[h.to]
				sz++
				q = append(q, h.to)
			}
		}
		d.queue = q[:0]
		d.size[id] = sz
		d.wsum[id] = w
		d.addComp(w)
		d.aliveWeight += w
	}
	return d
}

// View returns the tracker's view of the graph. Callers may read it freely
// but must mutate component state only through the tracker's methods.
func (d *DynConn) View() *View { return d.view }

// AliveWeight returns the summed weight of alive nodes.
func (d *DynConn) AliveWeight() int64 { return d.aliveWeight }

// SumSquares returns Σ W² over component weights W.
func (d *DynConn) SumSquares() int64 { return d.sumSquares }

// Pairs returns the number of unordered pairs of distinct weight units that
// share a component: Σ W·(W−1)/2 = (SumSquares − AliveWeight)/2. With 0/1
// weights this is the count of mutually reachable alive server pairs.
func (d *DynConn) Pairs() int64 { return (d.sumSquares - d.aliveWeight) / 2 }

// Components returns the number of connected components over alive nodes.
func (d *DynConn) Components() int { return d.comps }

// WeightedComponents returns the number of components with positive weight —
// the partition predicate: alive servers are mutually reachable iff this is
// at most 1.
func (d *DynConn) WeightedComponents() int { return d.weighted }

// LargestWeight returns the weight of the heaviest component (0 when no node
// is alive). It scans the base-id table, so it is meant for sampling points,
// not per-event calls.
func (d *DynConn) LargestWeight() int64 {
	var best int64
	for id := range d.parent {
		if d.parent[id] == int32(id) && d.size[id] > 0 && d.wsum[id] > best {
			best = d.wsum[id]
		}
	}
	return best
}

// CompOf returns a canonical component id for node u, or -1 if u is down.
// Two alive nodes are connected iff their ids are equal. Ids are stable only
// until the next mutation.
func (d *DynConn) CompOf(u int) int32 {
	if d.comp[u] == -1 {
		return -1
	}
	return d.find(d.comp[u])
}

// addComp and dropComp update the aggregate counters for a component of
// weight w entering or leaving the live set.
func (d *DynConn) addComp(w int64) {
	d.sumSquares += w * w
	d.comps++
	if w > 0 {
		d.weighted++
	}
}

func (d *DynConn) dropComp(w int64) {
	d.sumSquares -= w * w
	d.comps--
	if w > 0 {
		d.weighted--
	}
}

// newBase allocates a fresh base component id.
func (d *DynConn) newBase() int32 {
	id := int32(len(d.parent))
	d.parent = append(d.parent, id)
	d.size = append(d.size, 0)
	d.wsum = append(d.wsum, 0)
	return id
}

// find returns the root of base id b with path halving.
func (d *DynConn) find(b int32) int32 {
	for d.parent[b] != b {
		d.parent[b] = d.parent[d.parent[b]]
		b = d.parent[b]
	}
	return b
}

// union merges the components rooted at a and b (distinct roots) and returns
// the surviving root, keeping the aggregates consistent.
func (d *DynConn) union(a, b int32) int32 {
	if d.size[a] < d.size[b] {
		a, b = b, a
	}
	d.dropComp(d.wsum[a])
	d.dropComp(d.wsum[b])
	d.parent[b] = a
	d.size[a] += d.size[b]
	d.wsum[a] += d.wsum[b]
	d.size[b], d.wsum[b] = 0, 0
	d.addComp(d.wsum[a])
	return a
}

// nextEpoch advances the per-operation visit marker.
func (d *DynConn) nextEpoch() int32 {
	d.epoch++
	if d.epoch == 0 { // int32 wraparound: clear marks and restart
		for i := range d.seen {
			d.seen[i] = 0
		}
		d.epoch = 1
	}
	return d.epoch
}

// FailNode marks node u failed and updates component state. Failing an
// already-down node is a no-op.
func (d *DynConn) FailNode(u int) {
	if !d.view.NodeUp(u) {
		return
	}
	r := d.find(d.comp[u])
	w := d.weight[u]
	d.view.FailNode(u)
	d.comp[u] = -1
	d.aliveWeight -= w
	d.dropComp(d.wsum[r])
	remW, remSize := d.wsum[r]-w, d.size[r]-1
	if remSize == 0 { // u was the component's last node
		d.size[r], d.wsum[r] = 0, 0
		return
	}
	// Surviving neighbors of u inside the component.
	nbrs := d.queue[:0]
	for _, h := range d.g.adj[u] {
		if d.view.usable(h) {
			nbrs = append(nbrs, h.to)
		}
	}
	if len(nbrs) <= 1 {
		// At most one attachment point: the rest of the component is intact
		// (remSize > 0 implies exactly one here — every survivor reached u
		// through some alive neighbor).
		d.queue = nbrs[:0]
		d.size[r], d.wsum[r] = remSize, remW
		d.addComp(remW)
		return
	}
	// Split check: BFS from nbrs[0], stopping once every other neighbor has
	// been seen. The epoch marks double as membership marks for the region.
	epoch := d.nextEpoch()
	targets := append([]int32(nil), nbrs[1:]...)
	missing := len(targets)
	q := nbrs[:1] // targets was copied out, so q may grow over nbrs' storage
	d.seen[q[0]] = epoch
	regW, regSize := d.weight[q[0]], int64(1)
	for head := 0; head < len(q) && missing > 0; head++ {
		v := q[head]
		for _, h := range d.g.adj[v] {
			if d.seen[h.to] == epoch || !d.view.usable(h) {
				continue
			}
			d.seen[h.to] = epoch
			regW += d.weight[h.to]
			regSize++
			q = append(q, h.to)
		}
		// Re-count outstanding targets lazily: cheap because targets is the
		// (tiny) neighbor list, not the region.
		missing = 0
		for _, t := range targets {
			if d.seen[t] != epoch {
				missing++
			}
		}
	}
	if missing == 0 {
		// All attachment points are still mutually connected: no split.
		d.queue = q[:0]
		d.size[r], d.wsum[r] = remSize, remW
		d.addComp(remW)
		return
	}
	// Finish exploring the first region (the early-exit loop above may have
	// stopped mid-frontier only when missing hit 0, so q is already complete
	// here — the loop ran to exhaustion).
	// The explored region keeps the old root id r: no relabeling for the
	// region the detection BFS already paid to walk.
	d.size[r], d.wsum[r] = regSize, regW
	d.addComp(regW)
	// Each unseen attachment point anchors a new region.
	for _, t := range targets {
		if d.seen[t] == epoch {
			continue
		}
		id := d.newBase()
		d.seen[t] = epoch
		d.comp[t] = id
		tw, tsize := d.weight[t], int64(1)
		q = q[:0]
		q = append(q, t)
		for head := 0; head < len(q); head++ {
			v := q[head]
			for _, h := range d.g.adj[v] {
				if d.seen[h.to] == epoch || !d.view.usable(h) {
					continue
				}
				d.seen[h.to] = epoch
				d.comp[h.to] = id
				tw += d.weight[h.to]
				tsize++
				q = append(q, h.to)
			}
		}
		d.size[id], d.wsum[id] = tsize, tw
		d.addComp(tw)
	}
	d.queue = q[:0]
}

// RepairNode marks node u alive and merges it with its alive neighborhood.
// Repairing an alive node is a no-op.
func (d *DynConn) RepairNode(u int) {
	if d.view.NodeUp(u) {
		return
	}
	d.view.RepairNode(u)
	w := d.weight[u]
	d.aliveWeight += w
	id := d.newBase()
	d.comp[u] = id
	d.size[id], d.wsum[id] = 1, w
	d.addComp(w)
	root := id
	for _, h := range d.g.adj[u] {
		if !d.view.usable(h) {
			continue
		}
		nr := d.find(d.comp[h.to])
		if nr != root {
			root = d.union(root, nr)
		}
	}
}

// FailEdge marks edge id failed and splits its component if the edge was a
// cut edge. Failing an already-down edge is a no-op.
func (d *DynConn) FailEdge(id int) {
	if !d.view.EdgeUp(id) {
		return
	}
	d.view.FailEdge(id)
	e := d.g.edges[id]
	u, v := int(e.U), int(e.V)
	if !d.view.NodeUp(u) || !d.view.NodeUp(v) {
		return // a dead endpoint: the edge carried no connectivity
	}
	r := d.find(d.comp[u])
	// BFS from u until v is seen. If v is unreachable, u's region splits off;
	// v's (unexplored) side keeps the old id.
	epoch := d.nextEpoch()
	q := append(d.queue[:0], int32(u))
	d.seen[u] = epoch
	regW, regSize := d.weight[u], int64(1)
	found := false
	for head := 0; head < len(q) && !found; head++ {
		x := q[head]
		for _, h := range d.g.adj[x] {
			if d.seen[h.to] == epoch || !d.view.usable(h) {
				continue
			}
			if int(h.to) == v {
				found = true
				break
			}
			d.seen[h.to] = epoch
			regW += d.weight[h.to]
			regSize++
			q = append(q, h.to)
		}
	}
	if found {
		d.queue = q[:0]
		return
	}
	// Split: u's region (fully enumerated in q) gets a fresh id.
	nid := d.newBase()
	for _, x := range q {
		d.comp[x] = nid
	}
	d.queue = q[:0]
	oldW := d.wsum[r]
	d.dropComp(oldW)
	d.size[nid], d.wsum[nid] = regSize, regW
	d.size[r] -= regSize
	d.wsum[r] = oldW - regW
	d.addComp(regW)
	d.addComp(oldW - regW)
}

// RepairEdge marks edge id alive and merges its endpoints' components.
// Repairing an alive edge is a no-op.
func (d *DynConn) RepairEdge(id int) {
	if d.view.EdgeUp(id) {
		return
	}
	d.view.RepairEdge(id)
	e := d.g.edges[id]
	u, v := int(e.U), int(e.V)
	if !d.view.NodeUp(u) || !d.view.NodeUp(v) {
		return
	}
	ru, rv := d.find(d.comp[u]), d.find(d.comp[v])
	if ru != rv {
		d.union(ru, rv)
	}
}
