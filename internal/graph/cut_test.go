package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// brutePairs counts connected weight-unit pairs under view by BFS.
func brutePairs(g *Graph, view *View, weight []int64) int64 {
	return bruteComponents(g, view, weight).pairs
}

// TestPropertyCutImpactMatchesBruteForce checks every node and edge score of
// CutImpact against the definition: pairs (among the *other* weight units)
// connected before but not after removing that one component — computed the
// slow way by failing the component in a copied view and re-counting.
func TestPropertyCutImpactMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := randomConnectedGraph(rng, n, rng.Intn(n))
		weight := make([]int64, n)
		for i := range weight {
			weight[i] = int64(rng.Intn(3))
		}
		// A random degraded view: the scores must hold on damaged networks,
		// not just pristine ones.
		var downNodes, downEdges []int
		view := NewView(g)
		for v := 0; v < n; v++ {
			if rng.Intn(5) == 0 {
				view.FailNode(v)
				downNodes = append(downNodes, v)
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Intn(6) == 0 {
				view.FailEdge(e)
				downEdges = append(downEdges, e)
			}
		}
		rebuild := func() *View {
			w := NewView(g)
			for _, v := range downNodes {
				w.FailNode(v)
			}
			for _, e := range downEdges {
				w.FailEdge(e)
			}
			return w
		}

		nodeImpact, edgeImpact := g.CutImpact(view, weight)
		before := brutePairs(g, view, weight)
		st := bruteComponents(g, view, weight)
		compWeight := make(map[int]int64)
		for v, c := range st.comp {
			if c != -1 {
				compWeight[c] += weight[v]
			}
		}
		for v := 0; v < n; v++ {
			if !view.NodeUp(v) {
				if nodeImpact[v] != 0 {
					t.Fatalf("seed %d: dead node %d has impact %d", seed, v, nodeImpact[v])
				}
				continue
			}
			w := rebuild()
			w.FailNode(v)
			after := brutePairs(g, w, weight)
			// Pairs involving v's own units vanish trivially; subtract them
			// to leave the impact on the rest of the network.
			S := compWeight[st.comp[v]]
			wv := weight[v]
			want := before - after - wv*(S-wv) - choose2(wv)
			if nodeImpact[v] != want {
				t.Fatalf("seed %d: node %d impact %d want %d", seed, v, nodeImpact[v], want)
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if !view.EdgeUp(e) {
				if edgeImpact[e] != 0 {
					t.Fatalf("seed %d: dead edge %d has impact %d", seed, e, edgeImpact[e])
				}
				continue
			}
			w := rebuild()
			w.FailEdge(e)
			want := before - brutePairs(g, w, weight)
			if edgeImpact[e] != want {
				t.Fatalf("seed %d: edge %d impact %d want %d", seed, e, edgeImpact[e], want)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCutImpactAgreesWithArticulationAndBridges pins the structural
// equivalence on pristine unit-weight graphs: a node scores positive impact
// iff it is an articulation point, an edge iff it is a bridge.
func TestCutImpactAgreesWithArticulationAndBridges(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		g := randomConnectedGraph(rng, n, rng.Intn(n))
		nodeImpact, edgeImpact := g.CutImpact(nil, nil)
		aps := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			aps[v] = true
		}
		for v := 0; v < n; v++ {
			if (nodeImpact[v] > 0) != aps[v] {
				t.Fatalf("seed %d: node %d impact %d vs AP %v", seed, v, nodeImpact[v], aps[v])
			}
		}
		bridges := map[int]bool{}
		for _, e := range g.Bridges() {
			bridges[e] = true
		}
		for e := 0; e < g.NumEdges(); e++ {
			if (edgeImpact[e] > 0) != bridges[e] {
				t.Fatalf("seed %d: edge %d impact %d vs bridge %v", seed, e, edgeImpact[e], bridges[e])
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVertexDisjointPathsInMatchesViewlessOnPristine pins that the
// view-aware variant reduces to the original on a nil view, and that failing
// a node on every path drops the count.
func TestVertexDisjointPathsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 10, 12)
	for trial := 0; trial < 20; trial++ {
		u, v := rng.Intn(10), rng.Intn(10)
		if u == v {
			continue
		}
		if got, want := g.VertexDisjointPathsIn(u, v, nil), g.VertexDisjointPaths(u, v); got != want {
			t.Fatalf("nil view: %d disjoint paths, want %d", got, want)
		}
	}
	// A 4-cycle has 2 disjoint paths between opposite corners; failing one
	// relay node leaves 1, failing both leaves 0.
	c := New(4)
	c.MustAddEdge(0, 1)
	c.MustAddEdge(1, 2)
	c.MustAddEdge(2, 3)
	c.MustAddEdge(3, 0)
	view := NewView(c)
	if got := c.VertexDisjointPathsIn(0, 2, view); got != 2 {
		t.Fatalf("pristine cycle: %d paths, want 2", got)
	}
	view.FailNode(1)
	if got := c.VertexDisjointPathsIn(0, 2, view); got != 1 {
		t.Fatalf("one relay down: %d paths, want 1", got)
	}
	view.FailNode(3)
	if got := c.VertexDisjointPathsIn(0, 2, view); got != 0 {
		t.Fatalf("both relays down: %d paths, want 0", got)
	}
	view.RepairNode(1)
	if got := c.VertexDisjointPathsIn(0, 2, view); got != 1 {
		t.Fatalf("after repair: %d paths, want 1", got)
	}
}
