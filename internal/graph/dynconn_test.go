package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteStats recomputes DynConn's aggregates from scratch by BFS over view.
type bruteStats struct {
	aliveWeight int64
	sumSquares  int64
	pairs       int64
	comps       int
	weighted    int
	largest     int64
	comp        []int // component id per node, -1 when down
}

func bruteComponents(g *Graph, view *View, weight []int64) bruteStats {
	n := g.NumNodes()
	st := bruteStats{comp: make([]int, n)}
	for i := range st.comp {
		st.comp[i] = -1
	}
	var queue []int32
	for v := 0; v < n; v++ {
		if st.comp[v] != -1 || !view.NodeUp(v) {
			continue
		}
		id := st.comps
		st.comp[v] = id
		w := weight[v]
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, h := range g.adj[u] {
				if st.comp[h.to] != -1 || !view.usable(h) {
					continue
				}
				st.comp[h.to] = id
				w += weight[h.to]
				queue = append(queue, h.to)
			}
		}
		st.aliveWeight += w
		st.sumSquares += w * w
		st.comps++
		if w > 0 {
			st.weighted++
		}
		if w > st.largest {
			st.largest = w
		}
	}
	st.pairs = (st.sumSquares - st.aliveWeight) / 2
	return st
}

func checkAgainstBrute(t *testing.T, g *Graph, d *DynConn, weight []int64, step int) {
	t.Helper()
	st := bruteComponents(g, d.View(), weight)
	if d.AliveWeight() != st.aliveWeight {
		t.Fatalf("step %d: AliveWeight=%d want %d", step, d.AliveWeight(), st.aliveWeight)
	}
	if d.SumSquares() != st.sumSquares {
		t.Fatalf("step %d: SumSquares=%d want %d", step, d.SumSquares(), st.sumSquares)
	}
	if d.Pairs() != st.pairs {
		t.Fatalf("step %d: Pairs=%d want %d", step, d.Pairs(), st.pairs)
	}
	if d.Components() != st.comps {
		t.Fatalf("step %d: Components=%d want %d", step, d.Components(), st.comps)
	}
	if d.WeightedComponents() != st.weighted {
		t.Fatalf("step %d: WeightedComponents=%d want %d", step, d.WeightedComponents(), st.weighted)
	}
	if d.LargestWeight() != st.largest {
		t.Fatalf("step %d: LargestWeight=%d want %d", step, d.LargestWeight(), st.largest)
	}
	// Component ids must induce the same partition as brute-force BFS.
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			bruteSame := st.comp[u] != -1 && st.comp[u] == st.comp[v]
			cu, cv := d.CompOf(u), d.CompOf(v)
			dynSame := cu != -1 && cu == cv
			if bruteSame != dynSame {
				t.Fatalf("step %d: connectivity(%d,%d): dyn %v brute %v", step, u, v, dynSame, bruteSame)
			}
		}
	}
}

// TestPropertyDynConnMatchesBruteForce drives random fail/repair churn over
// random graphs and checks every aggregate against a from-scratch BFS
// recompute after every single event — the correctness oracle for the whole
// survivability engine.
func TestPropertyDynConnMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := randomConnectedGraph(rng, n, rng.Intn(2*n))
		weight := make([]int64, n)
		for i := range weight {
			weight[i] = int64(rng.Intn(4)) // includes 0-weight (switch-like) nodes
		}
		d := NewDynConn(g, weight)
		checkAgainstBrute(t, g, d, weight, -1)
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0:
				d.FailNode(rng.Intn(n))
			case 1:
				d.RepairNode(rng.Intn(n))
			case 2:
				d.FailEdge(rng.Intn(g.NumEdges()))
			default:
				d.RepairEdge(rng.Intn(g.NumEdges()))
			}
			checkAgainstBrute(t, g, d, weight, step)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDynConnPathSplitAndHeal pins the split/merge mechanics on a path graph
// where every interior node is a cut vertex.
func TestDynConnPathSplitAndHeal(t *testing.T) {
	const n = 5
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v)
	}
	d := NewDynConn(g, nil)
	if d.Pairs() != 10 || d.Components() != 1 {
		t.Fatalf("pristine path: pairs=%d comps=%d", d.Pairs(), d.Components())
	}
	d.FailNode(2) // 0-1 | 3-4
	if d.Components() != 2 || d.WeightedComponents() != 2 {
		t.Fatalf("after cut: comps=%d weighted=%d", d.Components(), d.WeightedComponents())
	}
	if d.Pairs() != 2 || d.LargestWeight() != 2 {
		t.Fatalf("after cut: pairs=%d largest=%d", d.Pairs(), d.LargestWeight())
	}
	d.RepairNode(2)
	if d.Components() != 1 || d.Pairs() != 10 {
		t.Fatalf("after heal: comps=%d pairs=%d", d.Components(), d.Pairs())
	}
	d.FailEdge(g.EdgeBetween(0, 1))
	if d.Components() != 2 || d.LargestWeight() != 4 {
		t.Fatalf("after bridge cut: comps=%d largest=%d", d.Components(), d.LargestWeight())
	}
	d.RepairEdge(g.EdgeBetween(0, 1))
	if d.Components() != 1 || d.Pairs() != 10 {
		t.Fatalf("after bridge heal: comps=%d pairs=%d", d.Components(), d.Pairs())
	}
}

// TestDynConnIdempotentEvents pins that double-fail and double-repair are
// no-ops (fault plans can legally replay an event after a busy-skip).
func TestDynConnIdempotentEvents(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	d := NewDynConn(g, nil)
	d.FailNode(1)
	d.FailNode(1)
	if d.Components() != 2 || d.AliveWeight() != 2 {
		t.Fatalf("after double fail: comps=%d alive=%d", d.Components(), d.AliveWeight())
	}
	d.RepairNode(1)
	d.RepairNode(1)
	if d.Components() != 1 || d.AliveWeight() != 3 {
		t.Fatalf("after double repair: comps=%d alive=%d", d.Components(), d.AliveWeight())
	}
	d.FailEdge(0)
	d.FailEdge(0)
	if d.Components() != 2 {
		t.Fatalf("after double edge fail: comps=%d", d.Components())
	}
	d.RepairEdge(0)
	d.RepairEdge(0)
	if d.Components() != 1 {
		t.Fatalf("after double edge repair: comps=%d", d.Components())
	}
}
