package graph

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestForEachBFSObservedUtilization checks the worker-utilization
// instrumentation of the parallel BFS driver: every source is counted, every
// worker reports its item tally, and the tallies sum back to the source
// count.
func TestForEachBFSObservedUtilization(t *testing.T) {
	g := gridGraph(8, 8)
	sources := make([]int, g.NumNodes())
	for i := range sources {
		sources[i] = i
	}
	for _, workers := range []int{1, 3, 0} {
		reg := obs.NewRegistry()
		var visited atomic.Int64
		g.ForEachBFSObserved(sources, nil, workers, reg, func(i int, res BFSResult) {
			visited.Add(1)
			if res.Dist[sources[i]] != 0 {
				t.Errorf("source %d has nonzero self-distance", sources[i])
			}
		})
		if visited.Load() != int64(len(sources)) {
			t.Fatalf("workers=%d: visited %d sources, want %d", workers, visited.Load(), len(sources))
		}
		if got := reg.Counter(MetricBFSSources).Value(); got != int64(len(sources)) {
			t.Errorf("workers=%d: %s = %d, want %d", workers, MetricBFSSources, got, len(sources))
		}
		items := reg.Histogram(MetricWorkerItems).Snapshot()
		launched := reg.Counter(MetricBFSWorkers).Value()
		if items.Count != launched {
			t.Errorf("workers=%d: %d worker tallies from %d workers", workers, items.Count, launched)
		}
		if items.Sum != int64(len(sources)) {
			t.Errorf("workers=%d: worker items sum to %d, want %d", workers, items.Sum, len(sources))
		}
	}
}

// TestForEachBFSNilRegistry pins that the unobserved entry point still works
// (the instrumented driver with a nil registry is the production path).
func TestForEachBFSNilRegistry(t *testing.T) {
	g := gridGraph(4, 4)
	sources := []int{0, 5, 15}
	var visited atomic.Int64
	g.ForEachBFS(sources, nil, 2, func(i int, res BFSResult) { visited.Add(1) })
	if visited.Load() != int64(len(sources)) {
		t.Fatalf("visited %d, want %d", visited.Load(), len(sources))
	}
}
