package graph

// ArticulationPoints returns the nodes whose removal disconnects the graph
// (Tarjan's low-link algorithm, iterative to stay stack-safe on large
// networks). In data-center terms these are single points of failure; a
// well-designed server-centric structure should have none among its
// switches once servers are multi-homed.
func (g *Graph) ArticulationPoints() []int {
	n := g.NumNodes()
	var (
		disc     = make([]int32, n) // discovery time, 0 = unvisited
		low      = make([]int32, n)
		parent   = make([]int32, n)
		childCnt = make([]int32, n)
		isAP     = make([]bool, n)
		timer    int32
	)
	for i := range parent {
		parent[i] = -1
	}

	type frame struct {
		node int32
		next int32 // index into adjacency list
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{node: int32(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if int(f.next) < len(g.adj[u]) {
				v := g.adj[u][f.next].to
				f.next++
				if disc[v] == 0 {
					parent[v] = u
					childCnt[u]++
					timer++
					disc[v] = timer
					low[v] = timer
					stack = append(stack, frame{node: v})
				} else if v != parent[u] && disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			p := parent[u]
			if p == -1 {
				continue
			}
			if low[u] < low[p] {
				low[p] = low[u]
			}
			if parent[p] != -1 && low[u] >= disc[p] {
				isAP[p] = true
			}
		}
		// The DFS root is an articulation point iff it has >= 2 children.
		if childCnt[start] >= 2 {
			isAP[start] = true
		}
	}
	var out []int
	for v, ap := range isAP {
		if ap {
			out = append(out, v)
		}
	}
	return out
}
