// Package graph provides a compact undirected multigraph used as the common
// substrate for every data-center topology in this repository.
//
// Nodes are dense integer indices assigned by the topology builders. Edges
// have stable integer identities so that link-failure experiments can disable
// individual cables. All traversal helpers accept an optional View that masks
// failed nodes and edges without copying the graph.
package graph

import (
	"errors"
	"fmt"
)

// ErrNodeRange is returned when a node index is outside [0, NumNodes).
var ErrNodeRange = errors.New("graph: node index out of range")

// Edge is an undirected edge between nodes U and V.
type Edge struct {
	U, V int32
}

type halfEdge struct {
	to   int32
	edge int32
}

// Graph is an undirected multigraph with stable edge identities.
// The zero value is an empty graph with no nodes.
type Graph struct {
	adj   [][]halfEdge
	edges []Edge
}

// New returns a graph with n nodes, numbered 0..n-1, and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds an undirected edge between u and v and returns its edge ID.
// Self-loops and duplicate edges are rejected with an error: data-center
// cabling never needs either, so their appearance indicates a builder bug.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return 0, fmt.Errorf("%w: (%d,%d) with %d nodes", ErrNodeRange, u, v, len(g.adj))
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop on node %d", u)
	}
	for _, h := range g.adj[u] {
		if int(h.to) == v {
			return 0, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	id := int32(len(g.edges))
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	g.adj[u] = append(g.adj[u], halfEdge{to: int32(v), edge: id})
	g.adj[v] = append(g.adj[v], halfEdge{to: int32(u), edge: id})
	return int(id), nil
}

// MustAddEdge is AddEdge for construction code whose inputs are guaranteed in
// range by the caller; it panics on builder bugs.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the endpoints of edge id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Degree returns the number of edges incident to node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors appends the neighbors of u to dst and returns it. The returned
// slice aliases dst, not graph internals.
func (g *Graph) Neighbors(u int, dst []int) []int {
	for _, h := range g.adj[u] {
		dst = append(dst, int(h.to))
	}
	return dst
}

// EdgeBetween returns the edge ID connecting u and v, or -1 if none exists.
func (g *Graph) EdgeBetween(u, v int) int {
	if u < 0 || u >= len(g.adj) {
		return -1
	}
	for _, h := range g.adj[u] {
		if int(h.to) == v {
			return int(h.edge)
		}
	}
	return -1
}

// View masks failed nodes and edges over an underlying graph without copying
// it. The zero-value View (nil masks) passes everything through.
type View struct {
	g        *Graph
	nodeDown []bool
	edgeDown []bool
}

// NewView returns a view of g with nothing failed.
func NewView(g *Graph) *View {
	return &View{g: g}
}

// Graph returns the underlying graph.
func (v *View) Graph() *Graph { return v.g }

// FailNode marks node u as failed.
func (v *View) FailNode(u int) {
	if v.nodeDown == nil {
		v.nodeDown = make([]bool, v.g.NumNodes())
	}
	v.nodeDown[u] = true
}

// FailEdge marks edge id as failed.
func (v *View) FailEdge(id int) {
	if v.edgeDown == nil {
		v.edgeDown = make([]bool, v.g.NumEdges())
	}
	v.edgeDown[id] = true
}

// RepairNode marks node u as alive again. Views started as all-alive, so
// repairing a node that never failed is a no-op.
func (v *View) RepairNode(u int) {
	if v.nodeDown != nil {
		v.nodeDown[u] = false
	}
}

// RepairEdge marks edge id as alive again.
func (v *View) RepairEdge(id int) {
	if v.edgeDown != nil {
		v.edgeDown[id] = false
	}
}

// NodeUp reports whether node u is alive.
func (v *View) NodeUp(u int) bool {
	return v == nil || v.nodeDown == nil || !v.nodeDown[u]
}

// EdgeUp reports whether edge id is alive.
func (v *View) EdgeUp(id int) bool {
	return v == nil || v.edgeDown == nil || !v.edgeDown[id]
}

// usable reports whether the half-edge h leaving an alive node is traversable.
func (v *View) usable(h halfEdge) bool {
	if v == nil {
		return true
	}
	return v.EdgeUp(int(h.edge)) && v.NodeUp(int(h.to))
}
