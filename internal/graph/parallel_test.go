package graph

import (
	"testing"
)

// gridGraph builds a w×h grid with a few failed cells to exercise views.
func gridGraph(w, h int) *Graph {
	g := New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				g.MustAddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return g
}

func TestBFSScratchedMatchesBFSAcrossReuse(t *testing.T) {
	g := gridGraph(7, 5)
	view := NewView(g)
	view.FailNode(12)
	view.FailEdge(3)
	s := NewBFSScratch(g.NumNodes())
	// Reuse one scratch across every source; each result must match a fresh
	// allocation-per-call BFS.
	for src := 0; src < g.NumNodes(); src++ {
		want := g.BFS(src, view)
		got := g.BFSScratched(src, view, s)
		for v := range want.Dist {
			if want.Dist[v] != got.Dist[v] {
				t.Fatalf("src %d: Dist[%d] = %d, want %d", src, v, got.Dist[v], want.Dist[v])
			}
		}
		if p, q := want.PathTo(g.NumNodes()-1), got.PathTo(g.NumNodes()-1); len(p) != len(q) {
			t.Fatalf("src %d: path lengths differ: %d vs %d", src, len(q), len(p))
		}
	}
}

func TestBFSScratchGrowsAcrossGraphs(t *testing.T) {
	small, big := gridGraph(2, 2), gridGraph(9, 9)
	s := NewBFSScratch(small.NumNodes())
	if res := small.BFSScratched(0, nil, s); res.Dist[3] != 2 {
		t.Fatalf("small grid corner distance = %d, want 2", res.Dist[3])
	}
	if res := big.BFSScratched(0, nil, s); res.Dist[80] != 16 {
		t.Fatalf("big grid corner distance = %d, want 16", res.Dist[80])
	}
}

func TestForEachBFSMatchesSerialForEveryWorkerCount(t *testing.T) {
	g := gridGraph(6, 6)
	sources := make([]int, g.NumNodes())
	for i := range sources {
		sources[i] = i
	}
	want := make([]int, len(sources))
	for i, src := range sources {
		ecc, ok := g.Eccentricity(src, nil, nil)
		if !ok {
			t.Fatal("grid disconnected")
		}
		want[i] = ecc
	}
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got := make([]int, len(sources))
		g.ForEachBFS(sources, nil, workers, func(i int, res BFSResult) {
			ecc, ok := res.Eccentricity(nil)
			if !ok {
				t.Error("grid disconnected under ForEachBFS")
			}
			got[i] = ecc
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d: ecc[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct{ req, items, min, max int }{
		{0, 100, 1, 1 << 20}, // GOMAXPROCS-sized, whatever the machine has
		{-3, 5, 1, 5},
		{8, 3, 3, 3},
		{2, 100, 2, 2},
		{4, 0, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.req, c.items)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]", c.req, c.items, got, c.min, c.max)
		}
	}
}
