package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count: non-positive means "use all
// available parallelism" (GOMAXPROCS), and the count never exceeds the number
// of work items.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachBFS runs a breadth-first search from every source, fanning the
// sources out over `workers` goroutines (non-positive: GOMAXPROCS). Each
// worker owns one BFSScratch, so the steady state allocates nothing per
// source. visit is called once per source, concurrently from the worker
// goroutines and in unspecified order; its res aliases worker-local scratch
// and is valid only during the call. Callers keep determinism by writing
// results into per-index slots of a pre-sized slice (the i argument is the
// index of the source in sources).
func (g *Graph) ForEachBFS(sources []int, view *View, workers int, visit func(i int, res BFSResult)) {
	workers = Workers(workers, len(sources))
	if workers == 1 {
		s := NewBFSScratch(g.NumNodes())
		for i, src := range sources {
			visit(i, g.BFSScratched(src, view, s))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := NewBFSScratch(g.NumNodes())
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sources) {
					return
				}
				visit(i, g.BFSScratched(sources[i], view, s))
			}
		}()
	}
	wg.Wait()
}
