package graph

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Instrument names registered by ForEachBFSObserved.
const (
	// MetricBFSSources counts BFS sources processed.
	MetricBFSSources = "graph_bfs_sources"
	// MetricBFSWorkers counts worker goroutines launched.
	MetricBFSWorkers = "graph_bfs_workers"
	// MetricWorkerItems is a histogram of per-worker item counts — with
	// dynamic work-stealing hand-out, a tight distribution means even
	// utilization, a wide one means stragglers hogged the queue.
	MetricWorkerItems = "graph_bfs_worker_items"
)

// Workers clamps a requested worker count: non-positive means "use all
// available parallelism" (GOMAXPROCS), and the count never exceeds the number
// of work items.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachBFS runs a breadth-first search from every source, fanning the
// sources out over `workers` goroutines (non-positive: GOMAXPROCS). Each
// worker owns one BFSScratch, so the steady state allocates nothing per
// source. visit is called once per source, concurrently from the worker
// goroutines and in unspecified order; its res aliases worker-local scratch
// and is valid only during the call. Callers keep determinism by writing
// results into per-index slots of a pre-sized slice (the i argument is the
// index of the source in sources).
func (g *Graph) ForEachBFS(sources []int, view *View, workers int, visit func(i int, res BFSResult)) {
	g.ForEachBFSObserved(sources, view, workers, nil, visit)
}

// ForEachBFSObserved is ForEachBFS recording driver utilization into m:
// sources processed, workers launched, and a per-worker item-count histogram
// (see the Metric* constants). Per-worker tallies stay in locals until the
// worker exits, so a nil m adds nothing to the per-source cost.
func (g *Graph) ForEachBFSObserved(sources []int, view *View, workers int, m *obs.Registry, visit func(i int, res BFSResult)) {
	workers = Workers(workers, len(sources))
	m.Counter(MetricBFSSources).Add(int64(len(sources)))
	m.Counter(MetricBFSWorkers).Add(int64(workers))
	hItems := m.Histogram(MetricWorkerItems)
	if workers == 1 {
		s := NewBFSScratch(g.NumNodes())
		for i, src := range sources {
			visit(i, g.BFSScratched(src, view, s))
		}
		hItems.Observe(int64(len(sources)))
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := NewBFSScratch(g.NumNodes())
			var items int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sources) {
					hItems.Observe(items)
					return
				}
				items++
				visit(i, g.BFSScratched(sources[i], view, s))
			}
		}()
	}
	wg.Wait()
}
