package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// line returns a path graph 0-1-2-...-(n-1).
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge(i, i+1); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", i, i+1, err)
		}
	}
	return g
}

// cycle returns a cycle graph on n nodes.
func cycle(t *testing.T, n int) *Graph {
	t.Helper()
	g := line(t, n)
	if _, err := g.AddEdge(n-1, 0); err != nil {
		t.Fatalf("close cycle: %v", err)
	}
	return g
}

func TestAddEdgeErrors(t *testing.T) {
	tests := []struct {
		name string
		u, v int
	}{
		{name: "negative u", u: -1, v: 0},
		{name: "u out of range", u: 3, v: 0},
		{name: "v out of range", u: 0, v: 3},
		{name: "self loop", u: 1, v: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(3)
			if _, err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) = nil error, want error", tt.u, tt.v)
			}
		})
	}
}

func TestAddEdgeDuplicate(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("first AddEdge: %v", err)
	}
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate AddEdge(1,0) succeeded, want error")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	if got := g.Degree(3); got != 1 {
		t.Errorf("Degree(3) = %d, want 1", got)
	}
	nbrs := g.Neighbors(0, nil)
	if len(nbrs) != 3 {
		t.Fatalf("Neighbors(0) = %v, want 3 entries", nbrs)
	}
	seen := map[int]bool{}
	for _, v := range nbrs {
		seen[v] = true
	}
	for _, want := range []int{1, 2, 3} {
		if !seen[want] {
			t.Errorf("Neighbors(0) missing %d: %v", want, nbrs)
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	g := New(3)
	id := g.MustAddEdge(0, 2)
	if got := g.EdgeBetween(0, 2); got != id {
		t.Errorf("EdgeBetween(0,2) = %d, want %d", got, id)
	}
	if got := g.EdgeBetween(2, 0); got != id {
		t.Errorf("EdgeBetween(2,0) = %d, want %d", got, id)
	}
	if got := g.EdgeBetween(0, 1); got != -1 {
		t.Errorf("EdgeBetween(0,1) = %d, want -1", got)
	}
	if got := g.EdgeBetween(-5, 1); got != -1 {
		t.Errorf("EdgeBetween(-5,1) = %d, want -1", got)
	}
	e := g.Edge(id)
	if e.U != 0 || e.V != 2 {
		t.Errorf("Edge(%d) = %+v, want {0 2}", id, e)
	}
}

func TestBFSDistancesOnLine(t *testing.T) {
	g := line(t, 5)
	res := g.BFS(0, nil)
	for v := 0; v < 5; v++ {
		if int(res.Dist[v]) != v {
			t.Errorf("Dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	res := g.BFS(0, nil)
	if res.Dist[2] != Unreachable {
		t.Errorf("Dist[2] = %d, want Unreachable", res.Dist[2])
	}
	if p := res.PathTo(2); p != nil {
		t.Errorf("PathTo(2) = %v, want nil", p)
	}
}

func TestBFSFromFailedSource(t *testing.T) {
	g := line(t, 3)
	v := NewView(g)
	v.FailNode(0)
	res := g.BFS(0, v)
	if res.Dist[1] != Unreachable {
		t.Errorf("BFS from failed source reached node 1 (dist %d)", res.Dist[1])
	}
}

func TestPathToEndpoints(t *testing.T) {
	g := cycle(t, 6)
	path := g.ShortestPath(0, 3, nil)
	if len(path) != 4 {
		t.Fatalf("ShortestPath(0,3) = %v, want length 4", path)
	}
	if path[0] != 0 || path[len(path)-1] != 3 {
		t.Errorf("path endpoints = %d,%d, want 0,3", path[0], path[len(path)-1])
	}
	for i := 0; i+1 < len(path); i++ {
		if g.EdgeBetween(path[i], path[i+1]) == -1 {
			t.Errorf("path step %d-%d is not an edge", path[i], path[i+1])
		}
	}
}

func TestViewFailEdgeForcesLongWayAround(t *testing.T) {
	g := cycle(t, 6)
	direct := g.EdgeBetween(0, 1)
	v := NewView(g)
	v.FailEdge(direct)
	path := g.ShortestPath(0, 1, v)
	if len(path) != 6 {
		t.Fatalf("path after failing direct edge = %v, want the 5-hop detour", path)
	}
}

func TestViewFailNodeDisconnects(t *testing.T) {
	g := line(t, 5)
	v := NewView(g)
	v.FailNode(2)
	if p := g.ShortestPath(0, 4, v); p != nil {
		t.Errorf("path through failed node = %v, want nil", p)
	}
	if g.Connected(v) {
		t.Error("Connected = true with middle node failed")
	}
}

func TestEccentricity(t *testing.T) {
	g := line(t, 5)
	ecc, all := g.Eccentricity(0, nil, nil)
	if ecc != 4 || !all {
		t.Errorf("Eccentricity(0) = %d,%v, want 4,true", ecc, all)
	}
	ecc, all = g.Eccentricity(2, []int{0, 4}, nil)
	if ecc != 2 || !all {
		t.Errorf("Eccentricity(2,{0,4}) = %d,%v, want 2,true", ecc, all)
	}
}

func TestEccentricityUnreachableTargets(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	ecc, all := g.Eccentricity(0, nil, nil)
	if all {
		t.Error("Eccentricity reported all reachable on disconnected graph")
	}
	if ecc != 1 {
		t.Errorf("Eccentricity = %d, want 1", ecc)
	}
}

func TestConnected(t *testing.T) {
	if !cycle(t, 4).Connected(nil) {
		t.Error("cycle reported disconnected")
	}
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if g.Connected(nil) {
		t.Error("two components reported connected")
	}
}

func TestConnectedAllNodesFailed(t *testing.T) {
	g := line(t, 2)
	v := NewView(g)
	v.FailNode(0)
	v.FailNode(1)
	if !g.Connected(v) {
		t.Error("empty alive set should count as connected")
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	// s=0 -> {1,2} -> t=3, all unit arcs: max flow 2.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 1)
	f.AddArc(0, 2, 1)
	f.AddArc(1, 3, 1)
	f.AddArc(2, 3, 1)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Errorf("MaxFlow = %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// Wide fan-in behind a single capacity-3 arc.
	f := NewFlowNetwork(3)
	f.AddArc(0, 1, 10)
	f.AddArc(1, 2, 3)
	if got := f.MaxFlow(0, 2); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
	f2 := NewFlowNetwork(2)
	f2.AddArc(0, 1, 5)
	if got := f2.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s==t) = %d, want 0", got)
	}
}

func TestMinCutBetweenCycle(t *testing.T) {
	g := cycle(t, 8)
	// Cutting a cycle into two arcs always needs exactly 2 edges.
	if got := g.MinCutBetween([]int{0}, []int{4}); got != 2 {
		t.Errorf("MinCutBetween = %d, want 2", got)
	}
}

func TestMinCutBetweenGroups(t *testing.T) {
	// Two triangles joined by one bridge: cut = 1.
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 3)
	g.MustAddEdge(2, 3)
	if got := g.MinCutBetween([]int{0, 1}, []int{4, 5}); got != 1 {
		t.Errorf("MinCutBetween = %d, want 1 (the bridge)", got)
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *Graph
		s, d  int
		want  int
	}{
		{name: "cycle has 2", build: func(t *testing.T) *Graph { return cycle(t, 6) }, s: 0, d: 3, want: 2},
		{name: "line has 1", build: func(t *testing.T) *Graph { return line(t, 4) }, s: 0, d: 3, want: 1},
		{name: "same node", build: func(t *testing.T) *Graph { return line(t, 2) }, s: 0, d: 0, want: 0},
		{
			name: "k4 has 3",
			build: func(t *testing.T) *Graph {
				g := New(4)
				for i := 0; i < 4; i++ {
					for j := i + 1; j < 4; j++ {
						g.MustAddEdge(i, j)
					}
				}
				return g
			},
			s: 0, d: 3, want: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.build(t)
			if got := g.VertexDisjointPaths(tt.s, tt.d); got != tt.want {
				t.Errorf("VertexDisjointPaths = %d, want %d", got, tt.want)
			}
		})
	}
}

// randomConnectedGraph builds a connected random graph on n nodes: a random
// spanning tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && g.EdgeBetween(u, v) == -1 {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestPropertyBFSSymmetric(t *testing.T) {
	// On undirected graphs, dist(u,v) == dist(v,u).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, n)
		u, v := rng.Intn(n), rng.Intn(n)
		return g.BFS(u, nil).Dist[v] == g.BFS(v, nil).Dist[u]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyShortestPathIsValidAndShortest(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, 2*n)
		u, v := rng.Intn(n), rng.Intn(n)
		path := g.ShortestPath(u, v, nil)
		dist := g.BFS(u, nil).Dist[v]
		if u == v {
			return len(path) == 1 && path[0] == u
		}
		if len(path) != int(dist)+1 || path[0] != u || path[len(path)-1] != v {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if g.EdgeBetween(path[i], path[i+1]) == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVertexDisjointAtMostMinDegree(t *testing.T) {
	// Menger: #disjoint paths <= min(deg(u), deg(v)) for non-adjacent pairs,
	// and <= deg in general since each path consumes one incident edge.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, 2*n)
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		k := g.VertexDisjointPaths(u, v)
		du, dv := g.Degree(u), g.Degree(v)
		limit := du
		if dv < limit {
			limit = dv
		}
		return k >= 1 && k <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinCutMatchesDisjointEdgePaths(t *testing.T) {
	// Menger (edge form): min cut between {u} and {v} equals max number of
	// edge-disjoint u-v paths, which is what MinCutBetween computes. Sanity:
	// it must be >= 1 on a connected graph and <= min degree.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, n)
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		cut := g.MinCutBetween([]int{u}, []int{v})
		limit := g.Degree(u)
		if d := g.Degree(v); d < limit {
			limit = d
		}
		return cut >= 1 && cut <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d, want 0", g.NumNodes())
	}
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Errorf("AddNode ids = %d,%d, want 0,1", a, b)
	}
	if _, err := g.AddEdge(a, b); err != nil {
		t.Errorf("AddEdge on added nodes: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestViewRepair(t *testing.T) {
	g := New(3)
	e, _ := g.AddEdge(0, 1)
	v := NewView(g)

	// Repair before any failure must be a no-op, not a panic.
	v.RepairNode(0)
	v.RepairEdge(e)
	if !v.NodeUp(0) || !v.EdgeUp(e) {
		t.Fatal("repair on a fresh view changed state")
	}

	v.FailNode(1)
	v.FailEdge(e)
	if v.NodeUp(1) || v.EdgeUp(e) {
		t.Fatal("failures not applied")
	}
	v.RepairNode(1)
	v.RepairEdge(e)
	if !v.NodeUp(1) || !v.EdgeUp(e) {
		t.Fatal("repairs not applied")
	}
	// Fail again after repair: the down/up cycle must be repeatable.
	v.FailNode(1)
	if v.NodeUp(1) {
		t.Fatal("re-failure after repair not applied")
	}
}
