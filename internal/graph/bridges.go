package graph

// Bridges returns the edge IDs whose removal disconnects the graph
// (cut edges), via the same iterative low-link DFS as ArticulationPoints.
// In cabling terms these are the cables whose failure partitions the
// network — zero in any 2-edge-connected interconnect.
func (g *Graph) Bridges() []int {
	n := g.NumNodes()
	var (
		disc  = make([]int32, n)
		low   = make([]int32, n)
		pedge = make([]int32, n) // edge to parent
		timer int32
	)
	for i := range pedge {
		pedge[i] = -1
	}
	var bridges []int

	type frame struct {
		node int32
		next int32
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{node: int32(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if int(f.next) < len(g.adj[u]) {
				h := g.adj[u][f.next]
				f.next++
				if h.edge == pedge[u] {
					continue // don't reuse the tree edge to the parent
				}
				if disc[h.to] == 0 {
					pedge[h.to] = h.edge
					timer++
					disc[h.to] = timer
					low[h.to] = timer
					stack = append(stack, frame{node: h.to})
				} else if disc[h.to] < low[u] {
					low[u] = disc[h.to]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if pedge[u] == -1 {
				continue
			}
			e := g.edges[pedge[u]]
			parent := e.U
			if parent == u {
				parent = e.V
			}
			if low[u] < low[parent] {
				low[parent] = low[u]
			}
			if low[u] == disc[u] {
				bridges = append(bridges, int(pedge[u]))
			}
		}
	}
	return bridges
}
