package dcell

import (
	"testing"

	"repro/internal/topology"
)

func configs() []Config {
	return []Config{
		{N: 2, K: 0},
		{N: 4, K: 0},
		{N: 2, K: 1}, // 6 servers
		{N: 3, K: 1}, // 12 servers
		{N: 4, K: 1}, // 20 servers
		{N: 2, K: 2}, // 42 servers
		{N: 3, K: 2}, // 156 servers
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		cfg     Config
		wantErr bool
	}{
		{cfg: Config{N: 4, K: 1}},
		{cfg: Config{N: 1, K: 0}, wantErr: true},
		{cfg: Config{N: 4, K: -1}, wantErr: true},
		{cfg: Config{N: 7, K: 3}, wantErr: true}, // 7 -> 56 -> 3192 -> 10.2M servers: too large
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("Validate(%+v) = %v, wantErr %v", tt.cfg, err, tt.wantErr)
		}
	}
}

func TestSizes(t *testing.T) {
	// Known series from the DCell paper: n=2 -> 2, 6, 42; n=3 -> 3, 12, 156.
	tl, g := Config{N: 2, K: 2}.Sizes()
	if tl[0] != 2 || tl[1] != 6 || tl[2] != 42 {
		t.Errorf("t = %v, want [2 6 42]", tl)
	}
	if g[1] != 3 || g[2] != 7 {
		t.Errorf("g = %v, want [_ 3 7]", g)
	}
	tl, _ = Config{N: 3, K: 2}.Sizes()
	if tl[2] != 156 {
		t.Errorf("t_2(n=3) = %d, want 156", tl[2])
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, cfg := range configs() {
		d := MustBuild(cfg)
		props := d.Properties()
		net := d.Network()
		if net.NumServers() != props.Servers || net.NumSwitches() != props.Switches ||
			net.NumLinks() != props.Links {
			t.Errorf("%s: built %d/%d/%d, formula %d/%d/%d", net.Name(),
				net.NumServers(), net.NumSwitches(), net.NumLinks(),
				props.Servers, props.Switches, props.Links)
		}
		if got := net.MaxDegree(topology.Server); got > cfg.K+1 {
			t.Errorf("%s: server degree %d > %d ports", net.Name(), got, cfg.K+1)
		}
		if !net.Graph().Connected(nil) {
			t.Errorf("%s: disconnected", net.Name())
		}
	}
}

func TestRouteAllPairsValidWithinBounds(t *testing.T) {
	for _, cfg := range configs() {
		d := MustBuild(cfg)
		net := d.Network()
		props := d.Properties()
		for _, src := range net.Servers() {
			for _, dst := range net.Servers() {
				p, err := d.Route(src, dst)
				if err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%s: %s->%s: %v", net.Name(), net.Label(src), net.Label(dst), err)
				}
				if src != dst && p.Len() > props.DiameterLinks {
					t.Fatalf("%s: %s->%s = %d links > bound %d", net.Name(),
						net.Label(src), net.Label(dst), p.Len(), props.DiameterLinks)
				}
			}
		}
	}
}

func TestRoutingDiameterBoundTightForSmall(t *testing.T) {
	// For DCell(2,1) the worst DCellRouting path must reach the 5-link
	// bound exactly (verified by hand in the package docs).
	d := MustBuild(Config{N: 2, K: 1})
	net := d.Network()
	worst := 0
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			p, err := d.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if p.Len() > worst {
				worst = p.Len()
			}
		}
	}
	if worst != 5 {
		t.Errorf("worst DCellRouting path = %d links, want 5", worst)
	}
}

func TestLevelLinkDegrees(t *testing.T) {
	// In DCell(n,k), every server has exactly one switch cable plus at most
	// one cable per level 1..k.
	d := MustBuild(Config{N: 3, K: 2})
	net := d.Network()
	for _, s := range net.Servers() {
		if deg := net.Graph().Degree(s); deg > 3 {
			t.Fatalf("server %s degree %d > k+1 = 3", net.Label(s), deg)
		}
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	d := MustBuild(Config{N: 2, K: 1})
	s := d.Network().Server(0)
	p, err := d.Route(s, s)
	if err != nil || len(p) != 1 {
		t.Errorf("Route(self) = %v, %v", p, err)
	}
	sw := d.Network().Switches()[0]
	if _, err := d.Route(sw, s); err == nil {
		t.Error("Route(switch, ...) succeeded")
	}
	if _, err := Build(Config{N: 0, K: 0}); err == nil {
		t.Error("Build(invalid) succeeded")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustBuild(Config{N: 0})
}

func TestAccessors(t *testing.T) {
	d := MustBuild(Config{N: 2, K: 1})
	if d.Config() != (Config{N: 2, K: 1}) {
		t.Errorf("Config = %+v", d.Config())
	}
	if d.NumServers() != 6 {
		t.Errorf("NumServers = %d, want 6", d.NumServers())
	}
	if !d.Network().IsServer(d.ServerAt(3)) {
		t.Error("ServerAt(3) is not a server")
	}
}
