package dcell

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestRouteAvoidingNoFailures(t *testing.T) {
	d := MustBuild(Config{N: 3, K: 1})
	net := d.Network()
	view := graph.NewView(net.Graph())
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			p, err := d.RouteAvoiding(src, dst, view)
			if err != nil {
				t.Fatalf("%s->%s: %v", net.Label(src), net.Label(dst), err)
			}
			if err := p.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRouteAvoidingAroundDeadLink(t *testing.T) {
	d := MustBuild(Config{N: 4, K: 1})
	net := d.Network()
	src, dst := d.ServerAt(0), d.ServerAt(19)
	direct, err := d.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	view.FailEdge(net.Graph().EdgeBetween(direct[0], direct[1]))
	p, err := d.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding: %v", err)
	}
	if !p.Alive(net, view) {
		t.Error("route uses the dead cable")
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestRouteAvoidingEndpointDown(t *testing.T) {
	d := MustBuild(Config{N: 2, K: 1})
	net := d.Network()
	view := graph.NewView(net.Graph())
	view.FailNode(d.ServerAt(5))
	if _, err := d.RouteAvoiding(d.ServerAt(0), d.ServerAt(5), view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	if _, err := d.RouteAvoiding(net.Switches()[0], d.ServerAt(0), view); err == nil {
		t.Error("switch endpoint accepted")
	}
}

func TestRouteAvoidingSelf(t *testing.T) {
	d := MustBuild(Config{N: 2, K: 1})
	s := d.ServerAt(2)
	p, err := d.RouteAvoiding(s, s, graph.NewView(d.Network().Graph()))
	if err != nil || len(p) != 1 {
		t.Errorf("self = %v, %v", p, err)
	}
}

func TestRouteAvoidingUnderRandomFailures(t *testing.T) {
	d := MustBuild(Config{N: 3, K: 2}) // 156 servers
	net := d.Network()
	rng := rand.New(rand.NewSource(4))
	view := graph.NewView(net.Graph())
	for e := 0; e < net.Graph().NumEdges(); e++ {
		if rng.Float64() < 0.05 {
			view.FailEdge(e)
		}
	}
	servers := net.Servers()
	connected, served := 0, 0
	for trial := 0; trial < 200; trial++ {
		src := servers[rng.Intn(len(servers))]
		dst := servers[rng.Intn(len(servers))]
		if src == dst || net.Graph().ShortestPath(src, dst, view) == nil {
			continue
		}
		connected++
		p, err := d.RouteAvoiding(src, dst, view)
		if err != nil {
			continue
		}
		if !p.Alive(net, view) {
			t.Fatal("dead components on returned route")
		}
		if err := p.Validate(net, src, dst); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if connected == 0 {
		t.Fatal("no connected pairs sampled")
	}
	if ratio := float64(served) / float64(connected); ratio < 0.8 {
		t.Errorf("DFR served %.2f of connected pairs, want >= 0.8", ratio)
	}
}
