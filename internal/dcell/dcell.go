// Package dcell implements DCell (Guo et al., SIGCOMM 2008), the recursive
// server-centric baseline used in the paper family's comparison tables.
//
// DCell_0 is n servers on one n-port switch. DCell_l is g_l = t_{l-1}+1
// copies of DCell_{l-1} (t_{l-1} = servers per DCell_{l-1}), with exactly one
// direct server-to-server cable between every pair of copies: for copies
// i < j, server j-1 of copy i connects to server i of copy j.
package dcell

import (
	"fmt"
	"strconv"

	"repro/internal/topology"
)

// Config selects a DCell instance: n servers per DCell_0, recursion level k.
type Config struct {
	N int
	K int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("dcell: N = %d, need >= 2", c.N)
	}
	if c.K < 0 {
		return fmt.Errorf("dcell: K = %d, need >= 0", c.K)
	}
	t := c.N
	for l := 1; l <= c.K; l++ {
		g := t + 1
		if t > (4<<20)/g {
			return fmt.Errorf("dcell: instance too large (N=%d K=%d)", c.N, c.K)
		}
		t *= g
	}
	return nil
}

// Sizes returns t[l] (servers in a DCell_l) and g[l] (copies of DCell_{l-1}
// inside a DCell_l) for l = 0..k.
func (c Config) Sizes() (t, g []int) {
	t = make([]int, c.K+1)
	g = make([]int, c.K+1)
	t[0], g[0] = c.N, 1
	for l := 1; l <= c.K; l++ {
		g[l] = t[l-1] + 1
		t[l] = g[l] * t[l-1]
	}
	return t, g
}

// DCell is a built instance; immutable after Build.
type DCell struct {
	cfg      Config
	net      *topology.Network
	servers  []int // servers[uid]
	switches []int // switches[uid/n]
	t, g     []int
}

var _ topology.Topology = (*DCell)(nil)

// Build constructs DCell(n,k).
func Build(cfg Config) (*DCell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t, g := cfg.Sizes()
	d := &DCell{
		cfg: cfg,
		net: topology.NewNetwork(fmt.Sprintf("DCell(%d,%d)", cfg.N, cfg.K)),
		t:   t,
		g:   g,
	}
	total := t[cfg.K]
	d.servers = make([]int, total)
	for uid := 0; uid < total; uid++ {
		d.servers[uid] = d.net.AddServer("S" + strconv.Itoa(uid))
	}
	// DCell_0 switches: consecutive n uids share one.
	d.switches = make([]int, total/cfg.N)
	for s := range d.switches {
		sw := d.net.AddSwitch("SW" + strconv.Itoa(s))
		d.switches[s] = sw
		for i := 0; i < cfg.N; i++ {
			if err := d.net.Connect(d.servers[s*cfg.N+i], sw); err != nil {
				return nil, fmt.Errorf("dcell: wire switch: %w", err)
			}
		}
	}
	// Level links: for every DCell_l instance, one cable per copy pair.
	for l := 1; l <= cfg.K; l++ {
		for offset := 0; offset < total; offset += t[l] {
			for i := 0; i < g[l]; i++ {
				for j := i + 1; j < g[l]; j++ {
					u := offset + i*t[l-1] + (j - 1)
					v := offset + j*t[l-1] + i
					if err := d.net.Connect(d.servers[u], d.servers[v]); err != nil {
						return nil, fmt.Errorf("dcell: wire level %d: %w", l, err)
					}
				}
			}
		}
	}
	return d, nil
}

// MustBuild is Build for known-good configs.
func MustBuild(cfg Config) *DCell {
	d, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Network returns the built network.
func (d *DCell) Network() *topology.Network { return d.net }

// Config returns the instance parameters.
func (d *DCell) Config() Config { return d.cfg }

// ServerAt returns the node index of the server with the given uid.
func (d *DCell) ServerAt(uid int) int { return d.servers[uid] }

// NumServers returns t_k.
func (d *DCell) NumServers() int { return d.t[d.cfg.K] }

// Properties returns the analytic comparison-table row. Diameter is the
// DCellRouting bound 2^(k+1)-1 server hops (3*2^k - 1 links: level-0 hops
// cross a switch, higher levels are direct cables); bisection is the
// top-level cut floor(g_k/2)*ceil(g_k/2) cables. See Config.Properties.
func (d *DCell) Properties() topology.Properties { return d.cfg.Properties() }

// Properties returns the analytic comparison-table row without building the
// instance; see DCell.Properties for the conventions.
func (c Config) Properties() topology.Properties {
	k := c.K
	t, g := c.Sizes()
	total := t[k]
	links := total // one switch cable per server
	for l := 1; l <= k; l++ {
		links += (total / t[l]) * g[l] * (g[l] - 1) / 2
	}
	diameter := 1<<(k+1) - 1
	diameterLinks := 3*(1<<k) - 1
	if k == 0 {
		diameter, diameterLinks = 1, 2
	}
	gk := g[k]
	bisection := (gk / 2) * ((gk + 1) / 2)
	if k == 0 {
		bisection = c.N / 2 // cutting the single switch's server set
	}
	return topology.Properties{
		Name:           fmt.Sprintf("DCell(%d,%d)", c.N, c.K),
		Servers:        total,
		Switches:       total / c.N,
		Links:          links,
		ServerPorts:    k + 1,
		SwitchPorts:    c.N,
		Diameter:       diameter,
		DiameterLinks:  diameterLinks,
		BisectionLinks: bisection,
	}
}

// Route implements DCellRouting (the paper's recursive algorithm): find the
// highest level at which the endpoints are in different copies, take the
// unique cable joining the two copies, and recurse on both sides.
func (d *DCell) Route(src, dst int) (topology.Path, error) {
	if err := topology.CheckEndpoints(d.net, src, dst); err != nil {
		return nil, err
	}
	su, du := d.uidOf(src), d.uidOf(dst)
	uids := d.routeUIDs(su, du, d.cfg.K)
	path := make(topology.Path, 0, 2*len(uids))
	for i, uid := range uids {
		if i > 0 {
			// Consecutive uids in the same DCell_0 communicate through
			// their switch; level links are direct cables.
			prev := uids[i-1]
			if prev/d.cfg.N == uid/d.cfg.N {
				path = append(path, d.switches[uid/d.cfg.N])
			}
		}
		path = append(path, d.servers[uid])
	}
	return path, nil
}

// routeUIDs returns the server-uid sequence of the DCellRouting path from su
// to du inside their common DCell_l.
func (d *DCell) routeUIDs(su, du, l int) []int {
	if su == du {
		return []int{su}
	}
	// Descend to the level where the endpoints sit in different copies.
	for l > 0 && su/d.t[l-1] == du/d.t[l-1] {
		l--
	}
	if l == 0 {
		return []int{su, du} // same DCell_0: one switch hop
	}
	offset := su / d.t[l] * d.t[l]
	i := (su % d.t[l]) / d.t[l-1]
	j := (du % d.t[l]) / d.t[l-1]
	// The unique cable between copies i and j of this DCell_l.
	var n1, n2 int
	if i < j {
		n1 = offset + i*d.t[l-1] + (j - 1)
		n2 = offset + j*d.t[l-1] + i
	} else {
		n1 = offset + i*d.t[l-1] + j
		n2 = offset + j*d.t[l-1] + (i - 1)
	}
	left := d.routeUIDs(su, n1, l-1)
	right := d.routeUIDs(n2, du, l-1)
	return append(left, right...)
}

func (d *DCell) uidOf(node int) int { return node } // servers are created first
