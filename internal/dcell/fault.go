package dcell

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// ErrNoRoute is returned when fault-tolerant routing gives up.
var ErrNoRoute = errors.New("dcell: fault-tolerant routing found no route")

var _ topology.FaultRouter = (*DCell)(nil)

// RouteAvoiding is a DFR-flavored fault-tolerant routing: it walks the
// DCellRouting path greedily and, when the next step is dead, local-reroutes
// through any alive neighbor that has not been visited (the local-reroute
// half of the DCell paper's DFR; the proxy half is subsumed by allowing the
// detour to restart DCellRouting from the neighbor). Bounded by a hop
// budget; the miss rate against true connectivity is an evaluation metric.
func (d *DCell) RouteAvoiding(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(d.net, src, dst); err != nil {
		return nil, err
	}
	if !view.NodeUp(src) || !view.NodeUp(dst) {
		return nil, fmt.Errorf("%w: endpoint failed", ErrNoRoute)
	}
	if src == dst {
		return topology.Path{src}, nil
	}

	g := d.net.Graph()
	visited := map[int]bool{src: true}
	path := topology.Path{src}
	cur := src
	budget := 8 * (1 << (d.cfg.K + 1)) // a few times the routing diameter

	// step moves cur to `to` if the cable and node are alive and unvisited.
	step := func(to int) bool {
		if to == cur || !view.NodeUp(to) || visited[to] {
			return false
		}
		if !view.EdgeUp(g.EdgeBetween(cur, to)) {
			return false
		}
		visited[to] = true
		path = append(path, to)
		cur = to
		return true
	}

	for hops := 0; hops < budget; hops++ {
		if cur == dst {
			return path, nil
		}
		// Greedy: follow the DCellRouting plan from the current server.
		if d.net.IsServer(cur) {
			plan := d.routeUIDs(d.uidOf(cur), d.uidOf(dst), d.cfg.K)
			advanced := false
			if len(plan) > 1 {
				next := d.servers[plan[1]]
				if plan[1]/d.cfg.N == d.uidOf(cur)/d.cfg.N {
					// Same DCell_0: the hop crosses the shared switch.
					sw := d.switches[plan[1]/d.cfg.N]
					if step(sw) {
						advanced = step(next)
					}
				} else {
					advanced = step(next)
				}
			}
			if advanced {
				continue
			}
			// Local reroute: any alive unvisited neighbor (its switch fans
			// out to the whole DCell_0; level links jump sub-DCells).
			if d.detour(step, cur) {
				continue
			}
			return nil, fmt.Errorf("%w: stuck at %s after %d hops", ErrNoRoute, d.net.Label(cur), hops)
		}
		// At a switch (after a partial step): deliver to any alive member,
		// preferring the planned one; handled by detour.
		if d.detour(step, cur) {
			continue
		}
		return nil, fmt.Errorf("%w: stuck at switch %s", ErrNoRoute, d.net.Label(cur))
	}
	return nil, fmt.Errorf("%w: hop budget exhausted", ErrNoRoute)
}

// detour tries every alive, unvisited neighbor of cur in deterministic
// order.
func (d *DCell) detour(step func(int) bool, cur int) bool {
	for _, nb := range d.net.Graph().Neighbors(cur, nil) {
		if step(nb) {
			return true
		}
	}
	return false
}
