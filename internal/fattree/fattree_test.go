package fattree

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		cfg     Config
		wantErr bool
	}{
		{cfg: Config{K: 4}},
		{cfg: Config{K: 2}},
		{cfg: Config{K: 3}, wantErr: true},
		{cfg: Config{K: 0}, wantErr: true},
		{cfg: Config{K: 50}, wantErr: true},
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("Validate(%+v) = %v, wantErr %v", tt.cfg, err, tt.wantErr)
		}
	}
}

func TestBuildCountsMatchProperties(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		tp := MustBuild(Config{K: k})
		props := tp.Properties()
		net := tp.Network()
		if net.NumServers() != props.Servers || net.NumSwitches() != props.Switches ||
			net.NumLinks() != props.Links {
			t.Errorf("%s: built %d/%d/%d, formula %d/%d/%d", net.Name(),
				net.NumServers(), net.NumSwitches(), net.NumLinks(),
				props.Servers, props.Switches, props.Links)
		}
		if got := net.MaxDegree(topology.Switch); got != k {
			t.Errorf("%s: switch degree %d, want %d", net.Name(), got, k)
		}
		if got := net.MaxDegree(topology.Server); got != 1 {
			t.Errorf("%s: server degree %d, want 1", net.Name(), got)
		}
		if !net.Graph().Connected(nil) {
			t.Errorf("%s: disconnected", net.Name())
		}
	}
}

func TestRouteAllPairs(t *testing.T) {
	for _, k := range []int{2, 4} {
		tp := MustBuild(Config{K: k})
		net := tp.Network()
		for _, src := range net.Servers() {
			for _, dst := range net.Servers() {
				p, err := tp.Route(src, dst)
				if err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("%s: %v", net.Name(), err)
				}
				if src != dst && p.Len() > 6 {
					t.Fatalf("%s: route %d links > 6", net.Name(), p.Len())
				}
			}
		}
	}
}

func TestDiameterLinksTight(t *testing.T) {
	tp := MustBuild(Config{K: 4})
	net := tp.Network()
	servers := net.Servers()
	worst := 0
	for _, src := range servers {
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			t.Fatal("disconnected")
		}
		if ecc > worst {
			worst = ecc
		}
	}
	if worst != tp.Properties().DiameterLinks {
		t.Errorf("measured diameter %d links, analytic %d", worst, tp.Properties().DiameterLinks)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	tp := MustBuild(Config{K: 4})
	for p := 0; p < 4; p++ {
		for e := 0; e < 2; e++ {
			for host := 0; host < 2; host++ {
				node := tp.ServerAt(p, e, host)
				gp, ge, gh := tp.locate(node)
				if gp != p || ge != e || gh != host {
					t.Fatalf("locate(ServerAt(%d,%d,%d)) = (%d,%d,%d)", p, e, host, gp, ge, gh)
				}
			}
		}
	}
}

func TestRouteAvoidingCoreFailure(t *testing.T) {
	tp := MustBuild(Config{K: 4})
	net := tp.Network()
	src := tp.ServerAt(0, 0, 0)
	dst := tp.ServerAt(3, 1, 1)
	direct, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	view.FailNode(direct[3]) // the core switch
	p, err := tp.RouteAvoiding(src, dst, view)
	if err != nil {
		t.Fatalf("RouteAvoiding: %v", err)
	}
	if !p.Alive(net, view) {
		t.Error("route uses failed core")
	}
	if err := p.Validate(net, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestRouteAvoidingEdgeSwitchFailureKillsHost(t *testing.T) {
	// Fat-tree servers are single-homed: losing the edge switch cuts them off.
	tp := MustBuild(Config{K: 4})
	net := tp.Network()
	src := tp.ServerAt(0, 0, 0)
	dst := tp.ServerAt(1, 0, 0)
	view := graph.NewView(net.Graph())
	view.FailNode(tp.edges[0][0])
	if _, err := tp.RouteAvoiding(src, dst, view); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	tp := MustBuild(Config{K: 2})
	s := tp.Network().Server(0)
	p, err := tp.Route(s, s)
	if err != nil || len(p) != 1 {
		t.Errorf("Route(self) = %v, %v", p, err)
	}
	sw := tp.Network().Switches()[0]
	if _, err := tp.Route(sw, s); err == nil {
		t.Error("Route(switch, server) succeeded")
	}
	if _, err := Build(Config{K: 3}); err == nil {
		t.Error("Build(odd k) succeeded")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustBuild(Config{K: 1})
}

func TestConfigAccessor(t *testing.T) {
	if got := MustBuild(Config{K: 4}).Config(); got.K != 4 {
		t.Errorf("Config = %+v", got)
	}
}

func TestExpandReplacesEverything(t *testing.T) {
	old := MustBuild(Config{K: 4})
	bigger, report, err := Expand(old)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Config().K != 6 {
		t.Errorf("expanded K = %d, want 6", bigger.Config().K)
	}
	if report.ReplacedSwitches != old.Network().NumSwitches() {
		t.Errorf("replaced %d switches, want all %d", report.ReplacedSwitches, old.Network().NumSwitches())
	}
	if report.RewiredLinks != old.Network().NumLinks() {
		t.Errorf("rewired %d links, want all %d", report.RewiredLinks, old.Network().NumLinks())
	}
	if report.TouchedFraction() < 0.5 {
		t.Errorf("touched fraction %.2f suspiciously low", report.TouchedFraction())
	}
	if _, _, err := Expand(MustBuild(Config{K: 48})); err == nil {
		t.Error("expansion past the radix guard succeeded")
	}
}

func TestNextHopWalksAllPairs(t *testing.T) {
	tp := MustBuild(Config{K: 4})
	net := tp.Network()
	for _, src := range net.Servers() {
		for _, dst := range net.Servers() {
			cur := src
			steps := 0
			for cur != dst {
				next, err := tp.NextHop(cur, dst)
				if err != nil {
					t.Fatalf("NextHop(%s,%s): %v", net.Label(cur), net.Label(dst), err)
				}
				if net.Graph().EdgeBetween(cur, next) == -1 {
					t.Fatalf("NextHop returned non-neighbor %s from %s",
						net.Label(next), net.Label(cur))
				}
				cur = next
				if steps++; steps > 8 {
					t.Fatalf("walk too long: %s -> %s", net.Label(src), net.Label(dst))
				}
			}
		}
	}
}

func TestNextHopErrors(t *testing.T) {
	tp := MustBuild(Config{K: 2})
	if _, err := tp.NextHop(tp.ServerAt(0, 0, 0), tp.Network().Switches()[0]); err == nil {
		t.Error("switch destination accepted")
	}
	s := tp.ServerAt(1, 0, 0)
	if next, err := tp.NextHop(s, s); err != nil || next != s {
		t.Errorf("self hop = %d, %v", next, err)
	}
}
