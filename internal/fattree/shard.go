package fattree

import "repro/internal/topology"

var _ topology.Sharder = (*FatTree)(nil)

// ShardOf implements topology.Sharder: whole pods — edge switches, their
// servers, and the pod's aggregation layer — stay inside one shard, so only
// core-layer hops cross the cut. Core switches, which talk to every pod,
// spread evenly across shards by core index.
func (t *FatTree) ShardOf(id, s int) int {
	k := t.cfg.K
	h := k / 2
	podBlock := h*(1+h) + h // h edge switches, h*h servers, h aggs
	if id < k*podBlock {
		return topology.ContiguousShard(id/podBlock, k, s)
	}
	return topology.ContiguousShard(id-k*podBlock, h*h, s)
}
