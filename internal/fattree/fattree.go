// Package fattree implements the three-layer fat-tree of Al-Fares et al.
// (SIGCOMM 2008), the switch-centric baseline in the comparison tables.
//
// A fat-tree built from k-port switches has k pods. Each pod has k/2 edge
// switches (each serving k/2 servers) and k/2 aggregation switches; (k/2)^2
// core switches join the pods. It supports k^3/4 servers at full bisection
// bandwidth using identical commodity switches.
package fattree

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// ErrNoRoute is returned when fault-tolerant routing finds no alive path.
var ErrNoRoute = errors.New("fattree: no alive path")

// Config selects a fat-tree instance: switch port count k (even, >= 2).
type Config struct {
	K int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.K < 2 || c.K%2 != 0 {
		return fmt.Errorf("fattree: K = %d, need an even value >= 2", c.K)
	}
	if c.K > 48 {
		return fmt.Errorf("fattree: K = %d too large", c.K)
	}
	return nil
}

// FatTree is a built instance; immutable after Build.
type FatTree struct {
	cfg Config
	net *topology.Network
	// servers[pod][edge][host], edges[pod][e], aggs[pod][a], cores[a][c].
	servers [][][]int
	edges   [][]int
	aggs    [][]int
	cores   [][]int
}

var (
	_ topology.Topology    = (*FatTree)(nil)
	_ topology.FaultRouter = (*FatTree)(nil)
)

// Build constructs a fat-tree from k-port switches.
func Build(cfg Config) (*FatTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.K
	h := k / 2
	t := &FatTree{
		cfg: cfg,
		net: topology.NewNetwork(fmt.Sprintf("FatTree(%d)", k)),
	}
	t.servers = make([][][]int, k)
	t.edges = make([][]int, k)
	t.aggs = make([][]int, k)
	for p := 0; p < k; p++ {
		t.edges[p] = make([]int, h)
		t.aggs[p] = make([]int, h)
		t.servers[p] = make([][]int, h)
		for e := 0; e < h; e++ {
			t.edges[p][e] = t.net.AddSwitch(fmt.Sprintf("E%d/%d", p, e))
			t.servers[p][e] = make([]int, h)
			for host := 0; host < h; host++ {
				s := t.net.AddServer(fmt.Sprintf("S%d/%d/%d", p, e, host))
				t.servers[p][e][host] = s
				if err := t.net.Connect(s, t.edges[p][e]); err != nil {
					return nil, fmt.Errorf("fattree: wire server: %w", err)
				}
			}
		}
		for a := 0; a < h; a++ {
			t.aggs[p][a] = t.net.AddSwitch(fmt.Sprintf("A%d/%d", p, a))
			for e := 0; e < h; e++ {
				if err := t.net.Connect(t.edges[p][e], t.aggs[p][a]); err != nil {
					return nil, fmt.Errorf("fattree: wire agg: %w", err)
				}
			}
		}
	}
	t.cores = make([][]int, h)
	for a := 0; a < h; a++ {
		t.cores[a] = make([]int, h)
		for c := 0; c < h; c++ {
			t.cores[a][c] = t.net.AddSwitch(fmt.Sprintf("C%d/%d", a, c))
			for p := 0; p < k; p++ {
				if err := t.net.Connect(t.aggs[p][a], t.cores[a][c]); err != nil {
					return nil, fmt.Errorf("fattree: wire core: %w", err)
				}
			}
		}
	}
	return t, nil
}

// MustBuild is Build for known-good configs.
func MustBuild(cfg Config) *FatTree {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Network returns the built network.
func (t *FatTree) Network() *topology.Network { return t.net }

// Config returns the instance parameters.
func (t *FatTree) Config() Config { return t.cfg }

// ServerAt returns the node index of host `host` on edge switch e of pod p.
func (t *FatTree) ServerAt(p, e, host int) int { return t.servers[p][e][host] }

// Properties returns the analytic comparison-table row; see
// Config.Properties.
func (t *FatTree) Properties() topology.Properties { return t.cfg.Properties() }

// Properties returns the analytic comparison-table row without building the
// instance: k^3/4 servers, 5k^2/4 switches, diameter 6 links, full k^3/8
// bisection.
func (c Config) Properties() topology.Properties {
	k := c.K
	return topology.Properties{
		Name:           fmt.Sprintf("FatTree(%d)", k),
		Servers:        k * k * k / 4,
		Switches:       5 * k * k / 4,
		Links:          3 * k * k * k / 4,
		ServerPorts:    1,
		SwitchPorts:    k,
		Diameter:       5, // switches traversed on an inter-pod path
		DiameterLinks:  6,
		BisectionLinks: k * k * k / 8,
	}
}

// Route returns the canonical up-down path, picking among the equal-cost
// aggregation/core choices with a deterministic hash of the endpoints (the
// static flavor of ECMP used for reproducible experiments).
func (t *FatTree) Route(src, dst int) (topology.Path, error) {
	return t.routeVia(src, dst, nil)
}

// RouteAvoiding searches the equal-cost up-down paths for one that is fully
// alive in view.
func (t *FatTree) RouteAvoiding(src, dst int, view *graph.View) (topology.Path, error) {
	p, err := t.routeVia(src, dst, view)
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (t *FatTree) routeVia(src, dst int, view *graph.View) (topology.Path, error) {
	if err := topology.CheckEndpoints(t.net, src, dst); err != nil {
		return nil, err
	}
	if src == dst {
		return topology.Path{src}, nil
	}
	if view != nil && (!view.NodeUp(src) || !view.NodeUp(dst)) {
		return nil, fmt.Errorf("%w: endpoint failed", ErrNoRoute)
	}
	p1, e1, _ := t.locate(src)
	p2, e2, _ := t.locate(dst)
	h := t.cfg.K / 2

	alive := func(path topology.Path) bool {
		return view == nil || path.Alive(t.net, view)
	}

	if p1 == p2 && e1 == e2 {
		path := topology.Path{src, t.edges[p1][e1], dst}
		if alive(path) {
			return path, nil
		}
		return nil, fmt.Errorf("%w: shared edge switch down", ErrNoRoute)
	}
	// The deterministic ECMP hash picks the starting choice; under failures
	// every equal-cost choice is probed in hash order.
	seed := (src*2654435761 + dst) & 0x7fffffff
	if p1 == p2 {
		for i := 0; i < h; i++ {
			a := (seed + i) % h
			path := topology.Path{src, t.edges[p1][e1], t.aggs[p1][a], t.edges[p1][e2], dst}
			if alive(path) {
				return path, nil
			}
		}
		return nil, fmt.Errorf("%w: all intra-pod paths down", ErrNoRoute)
	}
	for i := 0; i < h*h; i++ {
		x := (seed + i) % (h * h)
		a, c := x/h, x%h
		path := topology.Path{
			src, t.edges[p1][e1], t.aggs[p1][a], t.cores[a][c],
			t.aggs[p2][a], t.edges[p2][e2], dst,
		}
		if alive(path) {
			return path, nil
		}
	}
	return nil, fmt.Errorf("%w: all inter-pod paths down", ErrNoRoute)
}

// locate recovers (pod, edge, host) for a server node from creation order:
// within a pod, edge switch then its h servers, repeated h times, then the
// h aggregation switches.
func (t *FatTree) locate(node int) (pod, edge, host int) {
	h := t.cfg.K / 2
	podSize := h*(h+1) + h // h edge groups of (1 switch + h servers) + h aggs
	pod = node / podSize
	rest := node % podSize
	edge = rest / (h + 1)
	host = rest%(h+1) - 1
	return pod, edge, host
}
