package fattree

import (
	"fmt"
)

// NextHop makes the hop-by-hop forwarding decision at node cur for a packet
// heading to server dst, using only locally derivable state — the two-level
// routing-table scheme of the fat-tree paper, made deterministic: upward
// port choices hash on the destination server, so every device picks
// consistently and paths are valley-free (up then down) and loop-free. It
// satisfies the emulator's Forwarder interface.
func (t *FatTree) NextHop(cur, dst int) (int, error) {
	if !t.net.IsServer(dst) {
		return 0, fmt.Errorf("fattree: next hop destination %d is not a server", dst)
	}
	if cur == dst {
		return dst, nil
	}
	h := t.cfg.K / 2
	dp, de, _ := t.locate(dst)
	if t.net.IsServer(cur) {
		cp, ce, _ := t.locate(cur)
		return t.edges[cp][ce], nil
	}
	// Classify the switch by scanning the construction tables (a real
	// device knows its role; recovering it here keeps the decision local in
	// spirit: it depends only on the device identity and dst).
	for p := range t.edges {
		for e := range t.edges[p] {
			if t.edges[p][e] == cur {
				if p == dp && e == de {
					return dst, nil // deliver
				}
				return t.aggs[p][dst%h], nil // up, dst-hashed aggregation
			}
		}
	}
	for p := range t.aggs {
		for a := range t.aggs[p] {
			if t.aggs[p][a] == cur {
				if p == dp {
					return t.edges[p][de], nil // down to the rack
				}
				return t.cores[a][dst%h], nil // up, dst-hashed core
			}
		}
	}
	for a := range t.cores {
		for c := range t.cores[a] {
			if t.cores[a][c] == cur {
				return t.aggs[dp][a], nil // down into the destination pod
			}
		}
	}
	return 0, fmt.Errorf("fattree: cannot classify node %d", cur)
}
