package fattree

import (
	"fmt"

	"repro/internal/topology"
)

// Expand grows the fat-tree to the next even port count, k+2 — the only way
// a 3-layer fat-tree gains capacity. Unlike the server-centric structures,
// nothing survives: every switch must grow from k to k+2 ports (radix is
// baked into the silicon, so all 5k^2/4 switches are replaced) and the
// entire cable plant is repulled to the new wiring pattern. This is the
// contrast row in the expansion-cost experiment.
func Expand(old *FatTree) (*FatTree, topology.ExpansionReport, error) {
	bigger, err := Build(Config{K: old.cfg.K + 2})
	if err != nil {
		return nil, topology.ExpansionReport{}, fmt.Errorf("fattree: expand: %w", err)
	}
	report := topology.ExpansionReport{
		Before:        old.net.Name(),
		After:         bigger.net.Name(),
		ServersBefore: old.net.NumServers(),
		ServersAfter:  bigger.net.NumServers(),
		NewServers:    bigger.net.NumServers() - old.net.NumServers(),
		// Every new-radix switch is a purchase; the old ones are scrap.
		NewSwitches:      bigger.net.NumSwitches(),
		ReplacedSwitches: old.net.NumSwitches(),
		// The whole old cable plant moves; the new plant is pulled fresh.
		NewLinks:     bigger.net.NumLinks(),
		RewiredLinks: old.net.NumLinks(),
	}
	return bigger, report, nil
}
