package svc

import "fmt"

// ThreeTier returns the canonical storm-study graph: a frontend fanning out
// to a midtier which fans out to storage — the shape whose multiplicative
// amplification (fanout 2 x 2, retry budget 3 per edge) turns a small
// outage into a retry storm. Timeouts sit an order of magnitude above the
// healthy flow completion times of the default GbE link model, so they fire
// only when failures or congestion bite.
func ThreeTier() *Graph {
	return &Graph{
		Root: "frontend",
		Services: []Service{
			{Name: "frontend", Replicas: 4},
			{Name: "midtier", Replicas: 8, WorkSec: 50e-6},
			{Name: "storage", Replicas: 16, WorkSec: 20e-6},
		},
		Calls: []Call{
			{From: "frontend", To: "midtier", TimeoutSec: 10e-3, MaxRetries: 3,
				Fanout: 2, RequestBytes: 2 << 10, ResponseBytes: 32 << 10},
			{From: "midtier", To: "storage", TimeoutSec: 5e-3, MaxRetries: 3,
				Fanout: 2, RequestBytes: 1 << 10, ResponseBytes: 16 << 10},
		},
	}
}

// Chain returns a three-deep linear graph (no fan-out): amplification is
// pure retry multiplication, (1+2)*(1+1) = 6 on the storage edge.
func Chain() *Graph {
	return &Graph{
		Root: "api",
		Services: []Service{
			{Name: "api", Replicas: 2},
			{Name: "backend", Replicas: 2, WorkSec: 50e-6},
			{Name: "store", Replicas: 2, WorkSec: 20e-6},
		},
		Calls: []Call{
			{From: "api", To: "backend", TimeoutSec: 8e-3, MaxRetries: 2,
				Fanout: 1, RequestBytes: 2 << 10, ResponseBytes: 16 << 10},
			{From: "backend", To: "store", TimeoutSec: 4e-3, MaxRetries: 1,
				Fanout: 1, RequestBytes: 1 << 10, ResponseBytes: 8 << 10},
		},
	}
}

// Diamond returns a two-path graph — root calls two middle services that
// both depend on one sink — exercising the analyzer's path enumeration and
// the runtime's convergent placement.
func Diamond() *Graph {
	return &Graph{
		Root: "gateway",
		Services: []Service{
			{Name: "gateway", Replicas: 2},
			{Name: "users", Replicas: 4, WorkSec: 30e-6},
			{Name: "orders", Replicas: 4, WorkSec: 30e-6},
			{Name: "db", Replicas: 8, WorkSec: 20e-6},
		},
		Calls: []Call{
			{From: "gateway", To: "users", TimeoutSec: 10e-3, MaxRetries: 1,
				Fanout: 1, RequestBytes: 2 << 10, ResponseBytes: 16 << 10},
			{From: "gateway", To: "orders", TimeoutSec: 10e-3, MaxRetries: 1,
				Fanout: 1, RequestBytes: 2 << 10, ResponseBytes: 16 << 10},
			{From: "users", To: "db", TimeoutSec: 5e-3, MaxRetries: 1,
				Fanout: 1, RequestBytes: 1 << 10, ResponseBytes: 8 << 10},
			{From: "orders", To: "db", TimeoutSec: 5e-3, MaxRetries: 1,
				Fanout: 1, RequestBytes: 1 << 10, ResponseBytes: 8 << 10},
		},
	}
}

// Builtin returns the named built-in graph (3tier, chain, diamond).
func Builtin(name string) (*Graph, error) {
	switch name {
	case "3tier":
		return ThreeTier(), nil
	case "chain":
		return Chain(), nil
	case "diamond":
		return Diamond(), nil
	}
	return nil, fmt.Errorf("svc: unknown built-in graph %q (want 3tier|chain|diamond)", name)
}
