package svc

import (
	"bytes"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata fixtures")

// validChain is a minimal well-formed chain used as the mutation base for
// the validation battery.
func validChain() *Graph {
	return &Graph{
		Root: "a",
		Services: []Service{
			{Name: "a", Replicas: 1},
			{Name: "b", Replicas: 2},
			{Name: "c", Replicas: 2},
		},
		Calls: []Call{
			{From: "a", To: "b", TimeoutSec: 2, MaxRetries: 2, Fanout: 1, RequestBytes: 1 << 10, ResponseBytes: 1 << 10},
			{From: "b", To: "c", TimeoutSec: 1, MaxRetries: 1, Fanout: 1, RequestBytes: 1 << 10, ResponseBytes: 1 << 10},
		},
	}
}

func TestValidateBattery(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Graph)
		wantErr string
	}{
		{name: "valid chain", mutate: func(*Graph) {}},
		{name: "empty graph", mutate: func(g *Graph) { g.Services = nil; g.Calls = nil }, wantErr: "no services"},
		{name: "missing root", mutate: func(g *Graph) { g.Root = "" }, wantErr: "no root"},
		{name: "unknown root", mutate: func(g *Graph) { g.Root = "nope" }, wantErr: "not a service"},
		{name: "empty service name", mutate: func(g *Graph) { g.Services[1].Name = "" }, wantErr: "empty name"},
		{name: "duplicate service", mutate: func(g *Graph) { g.Services[2].Name = "b" }, wantErr: "duplicate service"},
		{name: "zero replicas", mutate: func(g *Graph) { g.Services[1].Replicas = 0 }, wantErr: "replicas"},
		{name: "negative work", mutate: func(g *Graph) { g.Services[1].WorkSec = -1 }, wantErr: "work time"},
		{name: "unknown callee", mutate: func(g *Graph) { g.Calls[1].To = "ghost" }, wantErr: "unknown service"},
		{name: "unknown caller", mutate: func(g *Graph) { g.Calls[0].From = "ghost" }, wantErr: "unknown service"},
		{name: "self call", mutate: func(g *Graph) { g.Calls[1].To = "b" }, wantErr: "self-call"},
		{name: "duplicate edge", mutate: func(g *Graph) { g.Calls = append(g.Calls, g.Calls[0]) }, wantErr: "duplicate call"},
		{name: "zero timeout", mutate: func(g *Graph) { g.Calls[0].TimeoutSec = 0 }, wantErr: "positive timeout"},
		{name: "negative timeout", mutate: func(g *Graph) { g.Calls[1].TimeoutSec = -3 }, wantErr: "positive timeout"},
		{name: "NaN timeout", mutate: func(g *Graph) { g.Calls[1].TimeoutSec = nan() }, wantErr: "positive timeout"},
		{name: "negative retries", mutate: func(g *Graph) { g.Calls[0].MaxRetries = -1 }, wantErr: "retry budget"},
		{name: "zero fanout", mutate: func(g *Graph) { g.Calls[0].Fanout = 0 }, wantErr: "fan-out"},
		{name: "zero request bytes", mutate: func(g *Graph) { g.Calls[0].RequestBytes = 0 }, wantErr: "bytes"},
		{name: "zero response bytes", mutate: func(g *Graph) { g.Calls[0].ResponseBytes = 0 }, wantErr: "bytes"},
		{name: "two cycle", mutate: func(g *Graph) {
			g.Calls = append(g.Calls, Call{From: "b", To: "a", TimeoutSec: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1})
		}, wantErr: "cycle"},
		{name: "three cycle", mutate: func(g *Graph) {
			g.Calls = append(g.Calls, Call{From: "c", To: "a", TimeoutSec: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1})
		}, wantErr: "cycle"},
		{name: "cycle off the root", mutate: func(g *Graph) {
			// A cycle among services the root never reaches is still invalid.
			g.Services = append(g.Services, Service{Name: "x", Replicas: 1}, Service{Name: "y", Replicas: 1})
			g.Calls = append(g.Calls,
				Call{From: "x", To: "y", TimeoutSec: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
				Call{From: "y", To: "x", TimeoutSec: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1})
		}, wantErr: "cycle"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := validChain()
			tt.mutate(g)
			err := g.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestBuiltinGraphs(t *testing.T) {
	for _, name := range []string{"3tier", "chain", "diamond"} {
		g, err := Builtin(name)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", name, err)
		}
	}
	if _, err := Builtin("mesh"); err == nil {
		t.Error("Builtin accepted an unknown name")
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	want := ThreeTier()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the graph:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCommittedThreeTier pins the committed graph file (the one svc-smoke
// and the simulate CLI load) to the in-code builder. Regenerate with
// go test ./internal/svc -run CommittedThreeTier -update.
func TestCommittedThreeTier(t *testing.T) {
	const path = "testdata/3tier.json"
	if *update {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteGraph(f, ThreeTier()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := ThreeTier(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s diverges from ThreeTier(); rerun with -update:\ngot  %+v\nwant %+v", path, got, want)
	}
}

func TestReadGraphDefaults(t *testing.T) {
	in := `{
		"root": "a",
		"services": [{"name": "a"}, {"name": "b"}],
		"calls": [{"from": "a", "to": "b", "timeout_sec": 0.5}]
	}`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Services[0].Replicas != 1 || g.Services[1].Replicas != 1 {
		t.Errorf("replica default not applied: %+v", g.Services)
	}
	c := g.Calls[0]
	if c.Fanout != 1 || c.RequestBytes != DefaultRequestBytes || c.ResponseBytes != DefaultResponseBytes {
		t.Errorf("call defaults not applied: %+v", c)
	}
}

func TestReadGraphRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{broken`,
		"unknown field": `{"root": "a", "services": [{"name": "a"}], "calls": [], "extra": 1}`,
		"invalid graph": `{"root": "a", "services": [{"name": "a"}, {"name": "b"}],
			"calls": [{"from": "a", "to": "b", "timeout_sec": -1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadGraph accepted %q", name, in)
		}
	}
}
