package svc

import (
	"fmt"
	"math/rand"
)

// Placement assigns every service replica a server index (into
// topology.Network.Servers()).
type Placement struct {
	// Servers[name][j] is the server hosting replica j of the service.
	Servers map[string][]int
}

// Place spreads replicas over numServers servers deterministically: a
// seeded permutation of the servers is consumed round-robin in service
// declaration order, so distinct replicas (and distinct services) land on
// distinct servers until the machine pool is exhausted, then wrap and
// share. The seed decouples placement from the fault sample — the same
// graph can be placed identically across a failure sweep.
func Place(g *Graph, numServers int, seed int64) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if numServers < 1 {
		return nil, fmt.Errorf("svc: placement needs >= 1 servers, got %d", numServers)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(numServers)
	p := &Placement{Servers: make(map[string][]int, len(g.Services))}
	cursor := 0
	for _, s := range g.Services {
		hosts := make([]int, s.Replicas)
		for j := range hosts {
			hosts[j] = perm[cursor%numServers]
			cursor++
		}
		p.Servers[s.Name] = hosts
	}
	return p, nil
}
