package svc

import (
	"math"
	"reflect"
	"testing"
)

// analyzerChain is the cascadeguard reference chain: A->B timeout 2s with 2
// retries, B->C timeout 1s with 1 retry. Hand-computed worst case:
// attempts(A->B) = 3, attempts(B->C) = 2, so the C edge sees 3*2 = 6
// attempts per request and the root waits 2*3 + 1*2 = 8 s.
func analyzerChain() *Graph {
	return &Graph{
		Root: "a",
		Services: []Service{
			{Name: "a", Replicas: 1},
			{Name: "b", Replicas: 1},
			{Name: "c", Replicas: 1},
		},
		Calls: []Call{
			{From: "a", To: "b", TimeoutSec: 2, MaxRetries: 2, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
			{From: "b", To: "c", TimeoutSec: 1, MaxRetries: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
		},
	}
}

func TestAnalyzeChainPinned(t *testing.T) {
	rep, err := Analyze(analyzerChain())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("chain has %d paths, want 1", len(rep.Paths))
	}
	p := rep.Paths[0]
	if !reflect.DeepEqual(p.Services, []string{"a", "b", "c"}) {
		t.Errorf("path = %v, want [a b c]", p.Services)
	}
	if p.Amplification != 6 {
		t.Errorf("amplification = %d, want 6", p.Amplification)
	}
	if p.WorstLatencySec != 8 {
		t.Errorf("worst latency = %g, want 8", p.WorstLatencySec)
	}
	if rep.MaxAmplification != 6 || rep.WorstLatencySec != 8 {
		t.Errorf("report maxima = (%d, %g), want (6, 8)", rep.MaxAmplification, rep.WorstLatencySec)
	}
	if want := []int64{3, 6}; !reflect.DeepEqual(rep.EdgeAttemptsBound, want) {
		t.Errorf("edge bounds = %v, want %v", rep.EdgeAttemptsBound, want)
	}
	if rep.TotalAttemptsBound != 9 {
		t.Errorf("total bound = %d, want 9", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeDiamondPinned(t *testing.T) {
	// Two root-to-leaf paths; both middle edges allow 2 attempts (1 retry,
	// timeout 2s) and both sink edges allow 2 attempts (1 retry, timeout 1s):
	// per path amplification 2*2 = 4, latency 2*2 + 1*2 = 6 s. The sink edges
	// each carry one path's 4 attempts; total 2+2+4+4 = 12.
	g := &Graph{
		Root: "root",
		Services: []Service{
			{Name: "root", Replicas: 1},
			{Name: "left", Replicas: 1},
			{Name: "right", Replicas: 1},
			{Name: "sink", Replicas: 1},
		},
		Calls: []Call{
			{From: "root", To: "left", TimeoutSec: 2, MaxRetries: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
			{From: "root", To: "right", TimeoutSec: 2, MaxRetries: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
			{From: "left", To: "sink", TimeoutSec: 1, MaxRetries: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
			{From: "right", To: "sink", TimeoutSec: 1, MaxRetries: 1, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
		},
	}
	rep, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 2 {
		t.Fatalf("diamond has %d paths, want 2", len(rep.Paths))
	}
	for i, p := range rep.Paths {
		if p.Amplification != 4 || p.WorstLatencySec != 6 {
			t.Errorf("path %d (%v): amp=%d latency=%g, want 4 and 6", i, p.Services, p.Amplification, p.WorstLatencySec)
		}
	}
	if want := []int64{2, 2, 4, 4}; !reflect.DeepEqual(rep.EdgeAttemptsBound, want) {
		t.Errorf("edge bounds = %v, want %v", rep.EdgeAttemptsBound, want)
	}
	if rep.TotalAttemptsBound != 12 {
		t.Errorf("total bound = %d, want 12", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeFanoutPinned(t *testing.T) {
	// A->B fanout 2 with 1 retry (timeout 2s): 2*2 = 4 attempts on the first
	// edge. Each of the up-to-4 B executions fans out 3 ways with no retries
	// (timeout 1s): 4*3 = 12 attempts on the second edge. Latency along the
	// single path: 2*2 + 1*1 = 5 s (fan-out is parallel).
	g := &Graph{
		Root: "a",
		Services: []Service{
			{Name: "a", Replicas: 1},
			{Name: "b", Replicas: 1},
			{Name: "c", Replicas: 1},
		},
		Calls: []Call{
			{From: "a", To: "b", TimeoutSec: 2, MaxRetries: 1, Fanout: 2, RequestBytes: 1, ResponseBytes: 1},
			{From: "b", To: "c", TimeoutSec: 1, MaxRetries: 0, Fanout: 3, RequestBytes: 1, ResponseBytes: 1},
		},
	}
	rep, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("fanout graph has %d paths, want 1", len(rep.Paths))
	}
	p := rep.Paths[0]
	if p.Amplification != 12 || p.WorstLatencySec != 5 {
		t.Errorf("path amp=%d latency=%g, want 12 and 5", p.Amplification, p.WorstLatencySec)
	}
	if want := []int64{4, 12}; !reflect.DeepEqual(rep.EdgeAttemptsBound, want) {
		t.Errorf("edge bounds = %v, want %v", rep.EdgeAttemptsBound, want)
	}
	if rep.TotalAttemptsBound != 16 {
		t.Errorf("total bound = %d, want 16", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeUnbudgetedChainPinned(t *testing.T) {
	// With a 10 s root deadline and no retry budget, the 2 s edge fits
	// ceil(10/2) = 5 attempts and the 1 s edge ceil(10/1) = 10, so the sink
	// edge amplifies to 5*10 = 50 and the root can wait 2*5 + 1*10 = 20 s
	// (the deadline truncates the wait at runtime; the bound is structural).
	rep, err := AnalyzeUnbudgeted(analyzerChain(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxAmplification != 50 {
		t.Errorf("amplification = %d, want 50", rep.MaxAmplification)
	}
	if rep.WorstLatencySec != 20 {
		t.Errorf("worst latency = %g, want 20", rep.WorstLatencySec)
	}
	if want := []int64{5, 50}; !reflect.DeepEqual(rep.EdgeAttemptsBound, want) {
		t.Errorf("edge bounds = %v, want %v", rep.EdgeAttemptsBound, want)
	}
	if rep.TotalAttemptsBound != 55 {
		t.Errorf("total bound = %d, want 55", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeRootOnly(t *testing.T) {
	g := &Graph{Root: "solo", Services: []Service{{Name: "solo", Replicas: 1}}}
	rep, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 1 || rep.Paths[0].Amplification != 1 || rep.Paths[0].WorstLatencySec != 0 {
		t.Errorf("root-only report = %+v, want one trivial path", rep)
	}
	if rep.TotalAttemptsBound != 0 {
		t.Errorf("total bound = %d, want 0 (no edges)", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeUnbudgetedSaturates(t *testing.T) {
	// A chain of nanosecond timeouts under a long deadline overflows int64;
	// the bounds must clamp at MaxInt64, not wrap negative.
	g := &Graph{
		Root: "a",
		Services: []Service{
			{Name: "a", Replicas: 1},
			{Name: "b", Replicas: 1},
			{Name: "c", Replicas: 1},
		},
		Calls: []Call{
			{From: "a", To: "b", TimeoutSec: 1e-9, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
			{From: "b", To: "c", TimeoutSec: 1e-9, Fanout: 1, RequestBytes: 1, ResponseBytes: 1},
		},
	}
	rep, err := AnalyzeUnbudgeted(g, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxAmplification != math.MaxInt64 {
		t.Errorf("amplification = %d, want saturation at MaxInt64", rep.MaxAmplification)
	}
	if rep.TotalAttemptsBound != math.MaxInt64 {
		t.Errorf("total bound = %d, want saturation at MaxInt64", rep.TotalAttemptsBound)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := validChain()
	bad.Calls[0].TimeoutSec = -1
	if _, err := Analyze(bad); err == nil {
		t.Error("Analyze accepted an invalid graph")
	}
	for _, d := range []float64{0, -1, math.Inf(1), nan()} {
		if _, err := AnalyzeUnbudgeted(validChain(), d); err == nil {
			t.Errorf("AnalyzeUnbudgeted accepted deadline %g", d)
		}
	}
}
