package svc

import "fmt"

// Policy selects the retry-mitigation strategy a run applies on call
// timeouts. All policies propagate deadlines; they differ in how many
// attempts they permit and when they launch them.
//
//   - PolicyNone: no mitigation — retry immediately on every timeout, with
//     no backoff and no budget beyond the propagated deadline. This is the
//     unbudgeted baseline whose amplification AnalyzeUnbudgeted bounds, and
//     the configuration that collapses under faults.
//   - PolicyFixed: per-call budget of MaxRetries retries with exponential
//     backoff and deterministic jitter between attempts.
//   - PolicyThrottle: PolicyFixed plus a per-edge token bucket — a retry
//     costs one token, successes refill at ThrottleRatio tokens each — so
//     the retry rate adapts to the downstream success rate (the gRPC
//     retry-throttling design). An empty bucket denies the retry and fails
//     the call.
//   - PolicyHedge: PolicyFixed plus one hedged attempt per call, launched
//     at HedgeDelayFrac of the timeout if the first attempt has not
//     returned; the hedge spends a unit of the same MaxRetries budget, so
//     Analyze's budgeted bound still holds. First response wins; the loser
//     is cancelled.
type Policy int

const (
	PolicyNone Policy = iota
	PolicyFixed
	PolicyThrottle
	PolicyHedge
)

// ParsePolicy maps the flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none":
		return PolicyNone, nil
	case "fixed":
		return PolicyFixed, nil
	case "throttle":
		return PolicyThrottle, nil
	case "hedge":
		return PolicyHedge, nil
	}
	return 0, fmt.Errorf("svc: unknown policy %q (want none|fixed|throttle|hedge)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyFixed:
		return "fixed"
	case PolicyThrottle:
		return "throttle"
	case PolicyHedge:
		return "hedge"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}
