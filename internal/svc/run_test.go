package svc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/packetsim"
)

func abccc(t *testing.T) *core.ABCCC {
	t.Helper()
	return core.MustBuild(core.Config{N: 4, K: 1, P: 2}) // 32 servers, 24 switches
}

// checkConservation asserts the invariants every run must satisfy regardless
// of policy, faults, or deadlines: requests and legs each end exactly once,
// and the call counts match the graph's fan-out structure.
func checkConservation(t *testing.T, g *Graph, res *Result) {
	t.Helper()
	if got := res.Completed + res.DeadlineExceeded + res.Aborted; got != res.Requests {
		t.Errorf("request conservation: %d completed + %d deadline + %d aborted = %d, want %d requests",
			res.Completed, res.DeadlineExceeded, res.Aborted, got, res.Requests)
	}
	if got := res.LegsSucceeded + res.LegsTimedOut + res.LegsCancelled; got != res.LegsStarted {
		t.Errorf("leg conservation: %d ok + %d timeout + %d cancelled = %d, want %d started",
			res.LegsSucceeded, res.LegsTimedOut, res.LegsCancelled, got, res.LegsStarted)
	}
	idx := g.index()
	attempts := 0
	for e, c := range g.Calls {
		es := res.Edges[e]
		issued := res.Services[idx[c.From]].Issued
		if es.Calls != issued*c.Fanout {
			t.Errorf("edge %s->%s: %d calls, want %d issued(%s) * %d fanout = %d",
				c.From, c.To, es.Calls, issued, c.From, c.Fanout, issued*c.Fanout)
		}
		if got := es.Successes + es.Timeouts + es.Cancelled; got != es.Attempts {
			t.Errorf("edge %s->%s: attempt conservation %d, want %d", c.From, c.To, got, es.Attempts)
		}
		attempts += es.Attempts
	}
	if attempts != res.LegsStarted {
		t.Errorf("edge attempts sum to %d, want LegsStarted %d", attempts, res.LegsStarted)
	}
}

// checkAnalyzerBound asserts that the static analyzer's per-request attempt
// bound dominates the measured worst request — the acceptance criterion F30
// also pins in every sweep cell.
func checkAnalyzerBound(t *testing.T, g *Graph, cfg Config, res *Result) {
	t.Helper()
	var rep *Report
	var err error
	if cfg.Policy == PolicyNone {
		rep, err = AnalyzeUnbudgeted(g, cfg.DeadlineSec)
	} else {
		rep, err = Analyze(g)
	}
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.MaxRequestLegs) > rep.TotalAttemptsBound {
		t.Errorf("policy %v: worst request issued %d legs, analyzer bound is %d",
			cfg.Policy, res.MaxRequestLegs, rep.TotalAttemptsBound)
	}
}

func TestRunHealthyAllPolicies(t *testing.T) {
	tp := abccc(t)
	g := ThreeTier()
	for _, pol := range []Policy{PolicyNone, PolicyFixed, PolicyThrottle, PolicyHedge} {
		cfg := Config{
			Policy: pol, DeadlineSec: 50e-3, RatePerSec: 2000, Requests: 100, Seed: 7,
			Transport: packetsim.DefaultTransport(),
		}
		res, err := Run(tp, g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Requests != 100 || res.Completed != 100 {
			t.Errorf("%v: %d/%d requests completed on a healthy network", pol, res.Completed, res.Requests)
		}
		// Each request: 2 midtier legs + 2*2 storage legs, no retries.
		if res.LegsStarted != 600 || res.Retries != 0 || res.LegsTimedOut != 0 {
			t.Errorf("%v: legs=%d retries=%d timeouts=%d, want 600/0/0",
				pol, res.LegsStarted, res.Retries, res.LegsTimedOut)
		}
		if res.MaxRequestLegs != 6 {
			t.Errorf("%v: MaxRequestLegs = %d, want 6", pol, res.MaxRequestLegs)
		}
		if res.MeanLatencySec <= 0 || res.P99LatencySec < res.MeanLatencySec {
			t.Errorf("%v: implausible latency stats mean=%g p99=%g", pol, res.MeanLatencySec, res.P99LatencySec)
		}
		if res.GoodputRps != res.OfferedRps {
			t.Errorf("%v: goodput %g != offered %g with zero losses", pol, res.GoodputRps, res.OfferedRps)
		}
		checkConservation(t, g, res)
		checkAnalyzerBound(t, g, cfg, res)
	}
}

func TestRunDeterministic(t *testing.T) {
	tp := abccc(t)
	g := ThreeTier()
	net := tp.Network()
	plan, err := failure.Downs(net, failure.Switches, 0.1, 10e-3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Policy: PolicyThrottle, DeadlineSec: 40e-3, RatePerSec: 4000, Requests: 150, Seed: 11,
		Transport: packetsim.DefaultTransport(),
	}
	cfg.Transport.Faults = plan
	run := func() *Result {
		res, err := Run(tp, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (topology, graph, config, seed) produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunUnderFaultsAllPolicies(t *testing.T) {
	tp := abccc(t)
	net := tp.Network()
	for _, g := range []*Graph{ThreeTier(), Chain(), Diamond()} {
		// Kill ~2 of 24 switches early so mid-run requests hit black holes.
		plan, err := failure.Downs(net, failure.Switches, 0.08, 5e-3, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{PolicyNone, PolicyFixed, PolicyThrottle, PolicyHedge} {
			cfg := Config{
				Policy: pol, DeadlineSec: 30e-3, RatePerSec: 4000, Requests: 120, Seed: 5,
				Transport: packetsim.DefaultTransport(),
			}
			cfg.Transport.Faults = plan
			res, err := Run(tp, g, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Root, pol, err)
			}
			checkConservation(t, g, res)
			checkAnalyzerBound(t, g, cfg, res)
		}
	}
}

func TestRunRepairedBurst(t *testing.T) {
	tp := abccc(t)
	net := tp.Network()
	plan, err := failure.Burst(net, failure.Switches, 3, 5e-3, 15e-3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	g := ThreeTier()
	cfg := Config{
		Policy: PolicyFixed, DeadlineSec: 40e-3, RatePerSec: 2000, Requests: 120, Seed: 2,
		Transport: packetsim.DefaultTransport(),
	}
	cfg.Transport.Faults = plan
	cfg.Transport.Multipath = true
	res, err := Run(tp, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, g, res)
	checkAnalyzerBound(t, g, cfg, res)
	// The burst repairs mid-run: late arrivals see a healthy network again,
	// so the run must not collapse outright.
	if res.Completed == 0 {
		t.Error("no requests completed despite mid-run repair")
	}
}

func TestRunTinyDeadline(t *testing.T) {
	// A deadline far below one network round trip: nothing can complete, but
	// every request must still terminate and conserve.
	tp := abccc(t)
	g := ThreeTier()
	for _, pol := range []Policy{PolicyNone, PolicyFixed} {
		cfg := Config{
			Policy: pol, DeadlineSec: 20e-6, RatePerSec: 2000, Requests: 50, Seed: 1,
			Transport: packetsim.DefaultTransport(),
		}
		res, err := Run(tp, g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Completed != 0 {
			t.Errorf("%v: %d requests beat a 20us deadline", pol, res.Completed)
		}
		checkConservation(t, g, res)
		checkAnalyzerBound(t, g, cfg, res)
	}
}

func TestRunLocalCalls(t *testing.T) {
	// On a 2-server network the 28 replicas wrap heavily, so many calls are
	// server-local (src == dst flows) — they must complete like remote ones.
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	g := ThreeTier()
	cfg := Config{
		Policy: PolicyFixed, DeadlineSec: 100e-3, RatePerSec: 500, Requests: 40, Seed: 3,
		Transport: packetsim.DefaultTransport(),
	}
	res, err := Run(tp, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Requests {
		t.Errorf("completed %d/%d on a healthy 2-server network", res.Completed, res.Requests)
	}
	checkConservation(t, g, res)
}

func TestRunMetricsAndSeries(t *testing.T) {
	tp := abccc(t)
	g := ThreeTier()
	m := obs.NewRegistry()
	s := obs.NewSeries(obs.DefaultSeriesWindowNs)
	cfg := Config{
		Policy: PolicyFixed, DeadlineSec: 50e-3, RatePerSec: 2000, Requests: 80, Seed: 7,
		Transport: packetsim.DefaultTransport(),
		Metrics:   m, Series: s,
	}
	res, err := Run(tp, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter(MetricRequests).Value(); got != int64(res.Requests) {
		t.Errorf("%s = %d, want %d", MetricRequests, got, res.Requests)
	}
	if got := m.Counter(MetricCompleted).Value(); got != int64(res.Completed) {
		t.Errorf("%s = %d, want %d", MetricCompleted, got, res.Completed)
	}
	if got := m.Counter(ServiceMetric("ok", "storage")).Value(); got != int64(res.Edges[1].Successes) {
		t.Errorf("storage ok counter = %d, want %d", got, res.Edges[1].Successes)
	}
	names := map[string]bool{}
	for _, pt := range s.Points() {
		names[pt.Track] = true
	}
	for _, want := range []string{SeriesOffered, SeriesCompleted, ServiceMetric("ok", "midtier")} {
		if !names[want] {
			t.Errorf("series missing track %q (have %v)", want, names)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	g := ThreeTier()
	base := Config{
		Policy: PolicyFixed, DeadlineSec: 50e-3, RatePerSec: 1000, Requests: 10,
		Transport: packetsim.DefaultTransport(),
	}
	mutations := map[string]func(*Config){
		"zero deadline": func(c *Config) { c.DeadlineSec = 0 },
		"zero rate":     func(c *Config) { c.RatePerSec = 0 },
		"zero requests": func(c *Config) { c.Requests = 0 },
		"bad policy":    func(c *Config) { c.Policy = Policy(99) },
		"caller hook":   func(c *Config) { c.Transport.OnFlowDone = func(int, float64, bool) {} },
		"negative knob": func(c *Config) { c.BackoffBaseFrac = -1 },
		"bad transport": func(c *Config) { c.Transport.RTOSec = -1 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Run(tp, g, cfg); err == nil {
			t.Errorf("%s: Run accepted the config", name)
		}
	}
	bad := validChain()
	bad.Calls[0].TimeoutSec = -1
	if _, err := Run(tp, bad, base); err == nil {
		t.Error("Run accepted an invalid graph")
	}
}
