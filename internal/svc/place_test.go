package svc

import (
	"reflect"
	"testing"
)

func TestPlaceDeterministicAndDistinct(t *testing.T) {
	g := ThreeTier() // 4 + 8 + 16 = 28 replicas
	p1, err := Place(g, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(g, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same seed produced different placements")
	}

	seen := map[int]bool{}
	total := 0
	for _, s := range g.Services {
		hosts := p1.Servers[s.Name]
		if len(hosts) != s.Replicas {
			t.Fatalf("%s has %d hosts, want %d", s.Name, len(hosts), s.Replicas)
		}
		for _, h := range hosts {
			if h < 0 || h >= 32 {
				t.Fatalf("%s placed on out-of-range server %d", s.Name, h)
			}
			if seen[h] {
				t.Errorf("server %d hosts two replicas despite spare capacity", h)
			}
			seen[h] = true
			total++
		}
	}
	if total != 28 {
		t.Errorf("placed %d replicas, want 28", total)
	}

	p3, err := Place(g, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Error("different seeds produced identical placements")
	}
}

func TestPlaceWrapsWhenOversubscribed(t *testing.T) {
	g := ThreeTier()
	p, err := Place(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range g.Services {
		for _, h := range p.Servers[s.Name] {
			if h < 0 || h >= 8 {
				t.Fatalf("out-of-range server %d", h)
			}
			counts[h]++
		}
	}
	// 28 replicas over 8 servers round-robin: every server gets 3 or 4.
	for h, n := range counts {
		if n < 3 || n > 4 {
			t.Errorf("server %d hosts %d replicas, want 3 or 4", h, n)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(ThreeTier(), 0, 1); err == nil {
		t.Error("Place accepted zero servers")
	}
	bad := validChain()
	bad.Root = "nope"
	if _, err := Place(bad, 8, 1); err == nil {
		t.Error("Place accepted an invalid graph")
	}
}
