// Package svc is the service-dependency-graph workload layer: a validated
// call graph of services (each a replica set placed on the structure's
// servers) whose edges carry per-call timeouts, retry budgets, and fan-out.
// Run maps every RPC leg onto the transport engine as a real flow — subject
// to fault injection, multipath failover, and congestion — with deadline
// propagation and pluggable retry-mitigation policies, which is what lets
// the repo study retry storms and metastable collapse (experiments F30)
// instead of just raw flow metrics. Analyze bounds the worst-case retry
// amplification and latency of every root-to-leaf path statically, before a
// single packet is simulated.
package svc

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Service is one node of the call graph: a named replica set. WorkSec is
// the local processing time a replica spends per call before issuing its
// downstream calls (or its response, for a leaf).
type Service struct {
	Name     string  `json:"name"`
	Replicas int     `json:"replicas"`
	WorkSec  float64 `json:"work_sec,omitempty"`
}

// Call is one directed dependency edge: every execution of From issues
// Fanout calls to distinct replicas of To, each with the given timeout and
// retry budget. RequestBytes and ResponseBytes size the two flows an
// attempt puts on the wire.
type Call struct {
	From          string  `json:"from"`
	To            string  `json:"to"`
	TimeoutSec    float64 `json:"timeout_sec"`
	MaxRetries    int     `json:"max_retries"`
	Fanout        int     `json:"fanout"`
	RequestBytes  int64   `json:"request_bytes"`
	ResponseBytes int64   `json:"response_bytes"`
}

// Graph is a service dependency graph. Requests enter at Root and recurse
// down the call edges; the graph must be acyclic.
type Graph struct {
	Root     string    `json:"root"`
	Services []Service `json:"services"`
	Calls    []Call    `json:"calls"`
}

// Default flow sizes and fan-out applied by ReadGraph to omitted fields.
const (
	DefaultRequestBytes  = 2 << 10
	DefaultResponseBytes = 16 << 10
)

// index maps service names to their position in g.Services.
func (g *Graph) index() map[string]int {
	idx := make(map[string]int, len(g.Services))
	for i, s := range g.Services {
		idx[s.Name] = i
	}
	return idx
}

// outEdges returns, per service index, the indices of its outgoing calls in
// declaration order.
func (g *Graph) outEdges(idx map[string]int) [][]int {
	out := make([][]int, len(g.Services))
	for e, c := range g.Calls {
		f := idx[c.From]
		out[f] = append(out[f], e)
	}
	return out
}

// Validate checks the graph: a known root, unique non-empty service names,
// positive replica counts, edges between known distinct services with
// positive timeouts, non-negative retry budgets, positive fan-out and flow
// sizes, no duplicate edges, and no cycles. Services unreachable from the
// root are allowed (they simply host no traffic).
func (g *Graph) Validate() error {
	if len(g.Services) == 0 {
		return fmt.Errorf("svc: graph has no services")
	}
	idx := make(map[string]int, len(g.Services))
	for i, s := range g.Services {
		if s.Name == "" {
			return fmt.Errorf("svc: service %d has an empty name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("svc: duplicate service %q", s.Name)
		}
		if s.Replicas < 1 {
			return fmt.Errorf("svc: service %q needs >= 1 replicas, has %d", s.Name, s.Replicas)
		}
		if s.WorkSec < 0 || math.IsNaN(s.WorkSec) || math.IsInf(s.WorkSec, 0) {
			return fmt.Errorf("svc: service %q has invalid work time %g", s.Name, s.WorkSec)
		}
		idx[s.Name] = i
	}
	if g.Root == "" {
		return fmt.Errorf("svc: graph has no root")
	}
	if _, ok := idx[g.Root]; !ok {
		return fmt.Errorf("svc: root %q is not a service", g.Root)
	}
	seen := make(map[[2]string]bool, len(g.Calls))
	for e, c := range g.Calls {
		if _, ok := idx[c.From]; !ok {
			return fmt.Errorf("svc: call %d from unknown service %q", e, c.From)
		}
		if _, ok := idx[c.To]; !ok {
			return fmt.Errorf("svc: call %d to unknown service %q", e, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("svc: call %d is a self-call on %q", e, c.From)
		}
		if seen[[2]string{c.From, c.To}] {
			return fmt.Errorf("svc: duplicate call %s -> %s", c.From, c.To)
		}
		seen[[2]string{c.From, c.To}] = true
		if !(c.TimeoutSec > 0) || math.IsInf(c.TimeoutSec, 0) {
			return fmt.Errorf("svc: call %s -> %s needs a positive timeout, has %g", c.From, c.To, c.TimeoutSec)
		}
		if c.MaxRetries < 0 {
			return fmt.Errorf("svc: call %s -> %s has negative retry budget", c.From, c.To)
		}
		if c.Fanout < 1 {
			return fmt.Errorf("svc: call %s -> %s needs fan-out >= 1, has %d", c.From, c.To, c.Fanout)
		}
		if c.RequestBytes <= 0 || c.ResponseBytes <= 0 {
			return fmt.Errorf("svc: call %s -> %s needs positive request/response bytes", c.From, c.To)
		}
	}
	return g.checkAcyclic(idx)
}

// checkAcyclic rejects call cycles via iterative three-color DFS over the
// whole graph (not just the root's reach — a cycle among unreachable
// services is still a malformed graph).
func (g *Graph) checkAcyclic(idx map[string]int) error {
	out := g.outEdges(idx)
	const (
		white = iota // unvisited
		gray         // on the stack
		black        // done
	)
	color := make([]int, len(g.Services))
	for start := range g.Services {
		if color[start] != white {
			continue
		}
		// Stack frames: service index and position in its edge list.
		type frame struct{ s, i int }
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.i >= len(out[top.s]) {
				color[top.s] = black
				stack = stack[:len(stack)-1]
				continue
			}
			e := out[top.s][top.i]
			top.i++
			next := idx[g.Calls[e].To]
			switch color[next] {
			case gray:
				return fmt.Errorf("svc: call cycle through %q", g.Calls[e].To)
			case white:
				color[next] = gray
				stack = append(stack, frame{next, 0})
			}
		}
	}
	return nil
}

// ReadGraph decodes a graph from JSON, filling omitted per-call fields with
// defaults (fan-out 1, DefaultRequestBytes/DefaultResponseBytes, 1 replica
// per service), and validates it.
func ReadGraph(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Graph
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("svc: decode graph: %w", err)
	}
	for i := range g.Services {
		if g.Services[i].Replicas == 0 {
			g.Services[i].Replicas = 1
		}
	}
	for i := range g.Calls {
		c := &g.Calls[i]
		if c.Fanout == 0 {
			c.Fanout = 1
		}
		if c.RequestBytes == 0 {
			c.RequestBytes = DefaultRequestBytes
		}
		if c.ResponseBytes == 0 {
			c.ResponseBytes = DefaultResponseBytes
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// WriteGraph encodes the graph as indented JSON.
func WriteGraph(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}
