package svc

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/packetsim"
)

// FuzzSvcConservation drives randomized (graph, policy, fault schedule,
// deadline) combinations through the runtime and asserts the conservation
// invariants: every request and every RPC leg ends exactly once, call counts
// match the graph's fan-out structure, and the static analyzer's attempt
// bound dominates the measured worst request.
func FuzzSvcConservation(f *testing.F) {
	f.Add(uint8(0), uint8(0), int64(1), uint8(0), uint8(25))
	f.Add(uint8(0), uint8(1), int64(2), uint8(10), uint8(30))
	f.Add(uint8(1), uint8(2), int64(3), uint8(20), uint8(15))
	f.Add(uint8(2), uint8(3), int64(4), uint8(5), uint8(40))
	f.Add(uint8(0), uint8(0), int64(5), uint8(25), uint8(1))

	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	graphs := []*Graph{ThreeTier(), Chain(), Diamond()}
	policies := []Policy{PolicyNone, PolicyFixed, PolicyThrottle, PolicyHedge}

	f.Fuzz(func(t *testing.T, graphSel, polSel uint8, seed int64, faultPct, deadlineMs uint8) {
		g := graphs[int(graphSel)%len(graphs)]
		cfg := Config{
			Policy:      policies[int(polSel)%len(policies)],
			DeadlineSec: float64(1+int(deadlineMs)%50) * 1e-3,
			RatePerSec:  3000,
			Requests:    30,
			Seed:        seed,
			Transport:   packetsim.DefaultTransport(),
		}
		if rate := float64(int(faultPct)%30) / 100; rate > 0 {
			plan, err := failure.Downs(net, failure.Switches, rate, 2e-3, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Transport.Faults = plan
		}
		res, err := Run(tp, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, g, res)
		checkAnalyzerBound(t, g, cfg, res)
	})
}
