// The service-layer runtime: requests arrive open-loop at the root service
// and recurse down the call graph, every RPC leg a real transport flow on
// the DCN via the closed-loop TransportEngine. The cascade mechanics follow
// production RPC stacks:
//
//   - Deadline propagation: a call issued at time t against a context with
//     absolute deadline D times out at min(t + timeout, D), and the callee
//     execution it spawns inherits that instant as its own deadline. No
//     work outlives the root request's budget.
//   - No cancellation on timeout: a caller that gives up does not reach
//     into the network — its request may still arrive and the callee will
//     do the work (bounded by the propagated deadline) and send a response
//     nobody reads. This orphaned work is the amplification mechanism that
//     makes retry storms metastable, and the WastedResponses tally measures
//     it.
//   - A failed execution sends no response; the caller discovers the
//     failure by timeout. Error-propagation shortcuts would dampen the
//     storm the layer exists to study.
//
// Everything runs on the serial engine's totally ordered event queue —
// arrivals, timeouts, backoff timers, and hedges are wakes; attempt
// completions are OnFlowDone callbacks — so runs are byte-deterministic for
// a given (topology, graph, config, seed).

package svc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/topology"
)

// Config parameterizes a service-layer run.
type Config struct {
	// Policy is the retry-mitigation strategy (see Policy).
	Policy Policy
	// DeadlineSec is the end-to-end budget of every root request.
	DeadlineSec float64
	// RatePerSec is the open-loop arrival rate; Requests is how many arrive.
	RatePerSec float64
	Requests   int
	// Seed drives placement, replica choice, and backoff jitter.
	Seed int64

	// Transport configures the underlying engine (links, faults, multipath).
	// OnFlowDone must be nil — the runtime owns the completion hook.
	Transport packetsim.TransportConfig

	// Metrics receives per-service and aggregate counters; Series receives
	// the per-service tracks (svc_ok_<name>, svc_timeout_<name>,
	// svc_retry_<name>) plus the offered/completed request tracks. Both are
	// optional and nil-safe, and deliberately separate from the transport's
	// Link.Metrics/Link.Series so a run record can carry service-level
	// telemetry alone.
	Metrics *obs.Registry
	Series  *obs.Series

	// Policy knobs; zero values take the defaults.
	BackoffBaseFrac float64 // first backoff as a fraction of the edge timeout (default 0.25)
	ThrottleTokens  float64 // token-bucket capacity per edge (default 10)
	ThrottleRatio   float64 // tokens refunded per success (default 0.1)
	HedgeDelayFrac  float64 // hedge launch point as a fraction of the timeout (default 0.5)
}

// Aggregate instrument names registered on Config.Metrics. Per-service
// counters are named by ServiceMetric.
const (
	MetricRequests         = "svc_requests"
	MetricCompleted        = "svc_completed"
	MetricDeadlineExceeded = "svc_deadline_exceeded"
	MetricAborted          = "svc_aborted"
	MetricRetries          = "svc_retries"
	MetricHedges           = "svc_hedges"
	MetricRetriesDenied    = "svc_retries_denied"
)

// Series track names written to Config.Series. Per-service tracks are named
// by ServiceMetric with the ok/timeout/retry kinds.
const (
	SeriesOffered   = "svc_offered_req"
	SeriesCompleted = "svc_done_req"
)

// ServiceMetric names the per-service instrument (and series track) of one
// outcome kind: "ok", "timeout", or "retry", attributed to the callee.
func ServiceMetric(kind, service string) string {
	return "svc_" + kind + "_" + service
}

// EdgeStats counts per-edge call outcomes (indexed like Graph.Calls).
type EdgeStats struct {
	// Calls counts logical calls; Attempts the RPC legs they issued.
	Calls, Attempts int
	// Successes/Timeouts/Cancelled partition terminated attempts; Retries
	// and Hedges count the extra attempts by trigger; Denied counts retries
	// the throttle refused.
	Successes, Timeouts, Cancelled int
	Retries, Hedges, Denied        int
}

// ServiceStats counts per-service execution activity.
type ServiceStats struct {
	// Executions counts replica activations (one per delivered request
	// attempt); Issued counts those that beat their deadline and did work —
	// issued their downstream calls, or completed directly for a leaf.
	Executions, Issued int
}

// Result summarizes a run. The conservation invariants the property tests
// pin: Requests == Completed + DeadlineExceeded + Aborted; LegsStarted ==
// LegsSucceeded + LegsTimedOut + LegsCancelled; per edge, Calls ==
// Issued(From) * Fanout.
type Result struct {
	Requests, Completed, DeadlineExceeded, Aborted  int
	LegsStarted, LegsSucceeded                      int
	LegsTimedOut, LegsCancelled                     int
	Retries, Hedges, RetriesDenied, WastedResponses int
	// MaxRequestLegs is the largest number of attempts any single request
	// fanned out into — the quantity Analyze's TotalAttemptsBound bounds.
	MaxRequestLegs int
	// Latency stats cover completed requests only.
	MeanLatencySec, P99LatencySec float64
	// OfferedRps and GoodputRps are request rates over the arrival horizon
	// (Requests / RatePerSec).
	OfferedRps, GoodputRps float64
	HorizonSec             float64
	Edges                  []EdgeStats
	Services               []ServiceStats
	Transport              packetsim.TransportResult
}

// Defaults for the policy knobs.
const (
	defaultBackoffBaseFrac = 0.25
	defaultThrottleTokens  = 10
	defaultThrottleRatio   = 0.1
	defaultHedgeDelayFrac  = 0.5
)

// Request, attempt terminal states.
const (
	reqPending = iota
	reqCompleted
	reqDeadline
	reqAborted
)

const (
	attInflight = iota
	attSucceeded
	attTimedOut
	attCancelled
)

type reqState struct {
	arrival  float64
	deadline float64
	doneAt   float64
	legs     int32
	state    uint8
}

// execState is one replica activation: the root execution of a request, or
// the callee side of a delivered attempt.
type execState struct {
	svc      int32
	server   int32 // server index hosting the replica
	req      int32
	attempt  int32 // delivering attempt; -1 for the root execution
	pending  int32 // outstanding child calls
	deadline float64
	issued   bool
	failed   bool
}

// callState is one logical call (an edge instance under one execution),
// spanning all its attempts.
type callState struct {
	edge   int32
	exec   int32 // caller execution
	req    int32
	base   int32 // replica cursor base; attempt seq rotates from here
	atts   []int32
	done   bool
	failed bool
}

type attemptState struct {
	call     int32
	server   int32 // callee server index
	deadline float64
	state    uint8
}

// flowRef maps a transport flow id back to its attempt and direction.
type flowRef struct {
	att  int32
	resp bool
}

type runner struct {
	g   *Graph
	cfg Config
	eng *packetsim.TransportEngine
	rng *rand.Rand

	idx    map[string]int
	out    [][]int
	hosts  [][]int32 // per service: replica -> server index
	rrCall []int32   // per edge: replica cursor

	reqs     []reqState
	execs    []execState
	calls    []callState
	attempts []attemptState
	flows    map[int]flowRef

	tokens []float64 // per edge (throttle)

	res     Result
	lats    []float64
	err     error
	backoff float64 // BackoffBaseFrac after defaulting
	hedgeAt float64
	tokCap  float64
	tokAdd  float64

	// Hoisted nil-safe instruments.
	cReq, cDone, cDeadline, cAborted *obs.Counter
	cRetries, cHedges, cDenied       *obs.Counter
	cSvcOK, cSvcTimeout, cSvcRetry   []*obs.Counter
	tOffered, tDone                  *obs.Track
	tSvcOK, tSvcTimeout, tSvcRetry   []*obs.Track
}

// Validate checks the run parameters (the graph validates separately).
func (c *Config) Validate() error {
	if !(c.DeadlineSec > 0) || math.IsInf(c.DeadlineSec, 0) {
		return fmt.Errorf("svc: deadline must be positive, got %g", c.DeadlineSec)
	}
	if !(c.RatePerSec > 0) || math.IsInf(c.RatePerSec, 0) {
		return fmt.Errorf("svc: arrival rate must be positive, got %g", c.RatePerSec)
	}
	if c.Requests < 1 {
		return fmt.Errorf("svc: need >= 1 requests, got %d", c.Requests)
	}
	switch c.Policy {
	case PolicyNone, PolicyFixed, PolicyThrottle, PolicyHedge:
	default:
		return fmt.Errorf("svc: unknown policy %d", c.Policy)
	}
	if c.Transport.OnFlowDone != nil {
		return fmt.Errorf("svc: Transport.OnFlowDone is owned by the service runtime")
	}
	for _, v := range []float64{c.BackoffBaseFrac, c.ThrottleTokens, c.ThrottleRatio, c.HedgeDelayFrac} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("svc: policy knobs must be non-negative")
		}
	}
	return nil
}

// Run executes the graph's workload on topology t and returns the
// aggregate result. The graph is validated, replicas are placed with
// Place(cfg.Seed), and cfg.Requests arrive at the root at 1/cfg.RatePerSec
// spacing starting at time 0.
func Run(t topology.Topology, g *Graph, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	numServers := t.Network().NumServers()
	place, err := Place(g, numServers, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &runner{
		g:       g,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		idx:     g.index(),
		flows:   make(map[int]flowRef),
		rrCall:  make([]int32, len(g.Calls)),
		tokens:  make([]float64, len(g.Calls)),
		backoff: cfg.BackoffBaseFrac,
		hedgeAt: cfg.HedgeDelayFrac,
		tokCap:  cfg.ThrottleTokens,
		tokAdd:  cfg.ThrottleRatio,
	}
	r.out = g.outEdges(r.idx)
	if r.backoff == 0 {
		r.backoff = defaultBackoffBaseFrac
	}
	if r.hedgeAt == 0 {
		r.hedgeAt = defaultHedgeDelayFrac
	}
	if r.tokCap == 0 {
		r.tokCap = defaultThrottleTokens
	}
	if r.tokAdd == 0 {
		r.tokAdd = defaultThrottleRatio
	}
	r.hosts = make([][]int32, len(g.Services))
	for i, s := range g.Services {
		hs := place.Servers[s.Name]
		r.hosts[i] = make([]int32, len(hs))
		for j, h := range hs {
			r.hosts[i][j] = int32(h)
		}
	}
	for e := range r.tokens {
		r.tokens[e] = r.tokCap // buckets start full
	}
	r.res.Edges = make([]EdgeStats, len(g.Calls))
	r.res.Services = make([]ServiceStats, len(g.Services))
	r.hoistInstruments()

	tcfg := cfg.Transport
	tcfg.OnFlowDone = r.onFlowDone
	if r.eng, err = packetsim.NewTransportEngine(t, tcfg); err != nil {
		return nil, err
	}
	// Arrivals chain: each schedules the next, keeping the queue shallow.
	if err := r.eng.Schedule(0, func(now float64) { r.arrive(0, now) }); err != nil {
		return nil, err
	}
	tres, err := r.eng.Run()
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	r.res.Transport = tres
	r.finish()
	return &r.res, nil
}

func (r *runner) hoistInstruments() {
	m, s := r.cfg.Metrics, r.cfg.Series
	r.cReq = m.Counter(MetricRequests)
	r.cDone = m.Counter(MetricCompleted)
	r.cDeadline = m.Counter(MetricDeadlineExceeded)
	r.cAborted = m.Counter(MetricAborted)
	r.cRetries = m.Counter(MetricRetries)
	r.cHedges = m.Counter(MetricHedges)
	r.cDenied = m.Counter(MetricRetriesDenied)
	r.tOffered = s.Track(SeriesOffered)
	r.tDone = s.Track(SeriesCompleted)
	n := len(r.g.Services)
	r.cSvcOK = make([]*obs.Counter, n)
	r.cSvcTimeout = make([]*obs.Counter, n)
	r.cSvcRetry = make([]*obs.Counter, n)
	r.tSvcOK = make([]*obs.Track, n)
	r.tSvcTimeout = make([]*obs.Track, n)
	r.tSvcRetry = make([]*obs.Track, n)
	for i, svc := range r.g.Services {
		r.cSvcOK[i] = m.Counter(ServiceMetric("ok", svc.Name))
		r.cSvcTimeout[i] = m.Counter(ServiceMetric("timeout", svc.Name))
		r.cSvcRetry[i] = m.Counter(ServiceMetric("retry", svc.Name))
		r.tSvcOK[i] = s.Track(ServiceMetric("ok", svc.Name))
		r.tSvcTimeout[i] = s.Track(ServiceMetric("timeout", svc.Name))
		r.tSvcRetry[i] = s.Track(ServiceMetric("retry", svc.Name))
	}
}

// arrive admits root request i at time now and chains the next arrival.
func (r *runner) arrive(i int, now float64) {
	if i+1 < r.cfg.Requests {
		next := i + 1
		if err := r.eng.Schedule(float64(next)/r.cfg.RatePerSec, func(t float64) { r.arrive(next, t) }); err != nil {
			r.fail(err)
		}
	}
	req := int32(len(r.reqs))
	r.reqs = append(r.reqs, reqState{arrival: now, deadline: now + r.cfg.DeadlineSec})
	r.res.Requests++
	r.cReq.Inc()
	r.tOffered.Add(int64(now*1e9), 1)
	if err := r.eng.Schedule(r.reqs[req].deadline, func(t float64) { r.onReqDeadline(req, t) }); err != nil {
		r.fail(err)
		return
	}
	root := int32(r.idx[r.g.Root])
	server := r.hosts[root][int(req)%len(r.hosts[root])]
	r.spawnExec(root, server, req, -1, r.reqs[req].deadline, now)
}

// fail records the first internal error; the engine still drains, and Run
// surfaces it.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// spawnExec activates a replica of service s: after its work time it either
// issues its downstream calls or, for a leaf, completes.
func (r *runner) spawnExec(s, server, req, attempt int32, deadline, now float64) {
	e := int32(len(r.execs))
	r.execs = append(r.execs, execState{svc: s, server: server, req: req, attempt: attempt, deadline: deadline})
	r.res.Services[s].Executions++
	work := r.g.Services[s].WorkSec
	if work > 0 {
		if err := r.eng.Schedule(now+work, func(t float64) { r.runExec(e, t) }); err != nil {
			r.fail(err)
		}
		return
	}
	r.runExec(e, now)
}

// runExec does an execution's work instant: past-deadline executions fail
// (the caller has already given up and the budget is spent), leaves
// complete, interior services issue Fanout calls per out-edge.
func (r *runner) runExec(e int32, now float64) {
	ex := &r.execs[e]
	if now >= ex.deadline {
		r.failExec(e, now)
		return
	}
	r.res.Services[ex.svc].Issued++
	ex.issued = true
	edges := r.out[ex.svc]
	if len(edges) == 0 {
		r.completeExec(e, now)
		return
	}
	total := 0
	for _, edge := range edges {
		total += r.g.Calls[edge].Fanout
	}
	ex.pending = int32(total)
	for _, edge := range edges {
		for k := 0; k < r.g.Calls[edge].Fanout; k++ {
			r.startCall(int32(edge), e, now)
		}
	}
}

// startCall opens one logical call and launches its first attempt.
func (r *runner) startCall(edge, exec int32, now float64) {
	c := int32(len(r.calls))
	to := int32(r.idx[r.g.Calls[edge].To])
	r.calls = append(r.calls, callState{
		edge: edge,
		exec: exec,
		req:  r.execs[exec].req,
		base: r.rrCall[edge],
	})
	r.rrCall[edge]++
	r.res.Edges[edge].Calls++
	r.startAttempt(c, to, now, false)
}

// startAttempt launches attempt number len(call.atts) of call c: a request
// flow to the chosen replica, a timeout timer at the propagated deadline,
// and — for the hedge policy's first attempt — the hedge trigger.
func (r *runner) startAttempt(c, to int32, now float64, isHedge bool) {
	call := &r.calls[c]
	edge := &r.g.Calls[call.edge]
	seq := len(call.atts)
	replica := (int(call.base) + seq) % len(r.hosts[to])
	server := r.hosts[to][replica]
	deadline := math.Min(now+edge.TimeoutSec, r.execs[call.exec].deadline)
	a := int32(len(r.attempts))
	r.attempts = append(r.attempts, attemptState{call: c, server: server, deadline: deadline})
	call.atts = append(call.atts, a)
	r.res.Edges[call.edge].Attempts++
	r.res.LegsStarted++
	r.reqs[call.req].legs++
	if seq > 0 {
		if isHedge {
			r.res.Hedges++
			r.res.Edges[call.edge].Hedges++
			r.cHedges.Inc()
		} else {
			r.res.Retries++
			r.res.Edges[call.edge].Retries++
			r.cRetries.Inc()
			r.cSvcRetry[to].Inc()
			r.tSvcRetry[to].Add(int64(now*1e9), 1)
		}
	}
	caller := r.execs[call.exec].server
	flow, err := r.eng.InjectFlow(int(caller), int(server), edge.RequestBytes, now)
	if err != nil {
		r.fail(err)
		return
	}
	r.flows[flow] = flowRef{att: a}
	if err := r.eng.Schedule(deadline, func(t float64) { r.onAttemptTimeout(a, t) }); err != nil {
		r.fail(err)
	}
	if r.cfg.Policy == PolicyHedge && seq == 0 && edge.MaxRetries > 0 {
		hedge := now + r.hedgeAt*edge.TimeoutSec
		if hedge < deadline {
			if err := r.eng.Schedule(hedge, func(t float64) { r.onHedge(c, to, t) }); err != nil {
				r.fail(err)
			}
		}
	}
}

// onHedge launches the hedged attempt if the call is still waiting on its
// lone first attempt and budget remains.
func (r *runner) onHedge(c, to int32, now float64) {
	call := &r.calls[c]
	if call.done || call.failed || len(call.atts) != 1 {
		return
	}
	if r.attempts[call.atts[0]].state != attInflight {
		return
	}
	if len(call.atts) >= 1+r.g.Calls[call.edge].MaxRetries {
		return // budget already spent; the hedge would overdraw it
	}
	r.startAttempt(c, to, now, true)
}

// onFlowDone is the transport completion hook: request flows spawn callee
// executions (whether or not the caller still cares — network delivery is
// not cancellation-aware), response flows complete attempts.
func (r *runner) onFlowDone(flow int, atSec float64, completed bool) {
	ref, ok := r.flows[flow]
	if !ok {
		return
	}
	delete(r.flows, flow)
	if !completed {
		// The transport gave up on the flow (MaxFlowTimeouts); the attempt
		// resolves through its own timeout timer.
		return
	}
	att := &r.attempts[ref.att]
	call := &r.calls[att.call]
	if !ref.resp {
		// Request delivered: activate the callee replica with the attempt's
		// deadline (deadline propagation down the tree).
		to := int32(r.idx[r.g.Calls[call.edge].To])
		r.spawnExec(to, att.server, call.req, ref.att, att.deadline, atSec)
		return
	}
	if att.state != attInflight {
		r.res.WastedResponses++ // the caller had already moved on
		return
	}
	att.state = attSucceeded
	r.res.LegsSucceeded++
	r.res.Edges[call.edge].Successes++
	to := int32(r.idx[r.g.Calls[call.edge].To])
	r.cSvcOK[to].Inc()
	r.tSvcOK[to].Add(int64(atSec*1e9), 1)
	r.completeCall(att.call, atSec)
}

// completeCall settles a call on its first successful attempt: cancel any
// hedged sibling, refund the throttle, and notify the caller execution.
func (r *runner) completeCall(c int32, now float64) {
	call := &r.calls[c]
	call.done = true
	for _, a := range call.atts {
		if r.attempts[a].state == attInflight {
			r.attempts[a].state = attCancelled
			r.res.LegsCancelled++
			r.res.Edges[call.edge].Cancelled++
		}
	}
	if r.cfg.Policy == PolicyThrottle {
		r.tokens[call.edge] = math.Min(r.tokens[call.edge]+r.tokAdd, r.tokCap)
	}
	e := call.exec
	r.execs[e].pending--
	if r.execs[e].pending == 0 && r.execs[e].issued && !r.execs[e].failed {
		r.completeExec(e, now)
	}
}

// onAttemptTimeout fires at an attempt's propagated deadline: mark it, and
// if it was the call's last hope decide between retry and failure.
func (r *runner) onAttemptTimeout(a int32, now float64) {
	att := &r.attempts[a]
	if att.state != attInflight {
		return // resolved before the timer
	}
	att.state = attTimedOut
	call := &r.calls[att.call]
	r.res.LegsTimedOut++
	r.res.Edges[call.edge].Timeouts++
	to := int32(r.idx[r.g.Calls[call.edge].To])
	r.cSvcTimeout[to].Inc()
	r.tSvcTimeout[to].Add(int64(now*1e9), 1)
	if call.done || call.failed {
		return // orphaned sibling of a settled call
	}
	for _, sib := range call.atts {
		if r.attempts[sib].state == attInflight {
			return // a hedged sibling is still racing
		}
	}
	r.retryOrFail(att.call, to, now)
}

// retryOrFail applies the policy at a call's timeout: schedule the next
// attempt inside the remaining budget, or fail the call.
func (r *runner) retryOrFail(c, to int32, now float64) {
	call := &r.calls[c]
	edge := &r.g.Calls[call.edge]
	budget := r.execs[call.exec].deadline
	var at float64
	switch r.cfg.Policy {
	case PolicyNone:
		at = now // immediate, unbudgeted: the deadline is the only limit
	default:
		if len(call.atts) >= 1+edge.MaxRetries {
			r.failCall(c, now)
			return
		}
		base := r.backoff * edge.TimeoutSec
		backoff := base * math.Pow(2, float64(len(call.atts)-1))
		if backoff > 2*edge.TimeoutSec {
			backoff = 2 * edge.TimeoutSec
		}
		at = now + backoff*(0.5+0.5*r.rng.Float64())
	}
	if at >= budget {
		r.failCall(c, now)
		return
	}
	if r.cfg.Policy == PolicyThrottle {
		if r.tokens[call.edge] < 1 {
			r.res.RetriesDenied++
			r.res.Edges[call.edge].Denied++
			r.cDenied.Inc()
			r.failCall(c, now)
			return
		}
		r.tokens[call.edge]--
	}
	if err := r.eng.Schedule(at, func(t float64) {
		if r.calls[c].done || r.calls[c].failed {
			return
		}
		r.startAttempt(c, to, t, false)
	}); err != nil {
		r.fail(err)
	}
}

// failCall marks a call permanently failed and fails its caller execution:
// the execution will never respond, so its own caller discovers the failure
// by timeout (or, at the root, the request aborts immediately).
func (r *runner) failCall(c int32, now float64) {
	call := &r.calls[c]
	call.failed = true
	e := call.exec
	if !r.execs[e].failed {
		r.failExec(e, now)
	}
}

// failExec marks an execution failed. Root executions abort their request;
// everything else just goes silent.
func (r *runner) failExec(e int32, now float64) {
	ex := &r.execs[e]
	ex.failed = true
	if ex.attempt >= 0 {
		return
	}
	req := &r.reqs[ex.req]
	if req.state != reqPending {
		return
	}
	req.state = reqAborted
	req.doneAt = now
	r.res.Aborted++
	r.cAborted.Inc()
}

// completeExec fires when an execution's calls have all succeeded (or
// immediately for a leaf): the root completes its request, everything else
// sends its response flow back to the caller.
func (r *runner) completeExec(e int32, now float64) {
	ex := &r.execs[e]
	if ex.attempt < 0 {
		req := &r.reqs[ex.req]
		if req.state != reqPending {
			return // deadline beat us; the work was wasted
		}
		req.state = reqCompleted
		req.doneAt = now
		r.res.Completed++
		r.cDone.Inc()
		r.tDone.Add(int64(now*1e9), 1)
		r.lats = append(r.lats, now-req.arrival)
		return
	}
	att := &r.attempts[ex.attempt]
	caller := r.execs[r.calls[att.call].exec].server
	edge := &r.g.Calls[r.calls[att.call].edge]
	flow, err := r.eng.InjectFlow(int(ex.server), int(caller), edge.ResponseBytes, now)
	if err != nil {
		r.fail(err)
		return
	}
	r.flows[flow] = flowRef{att: ex.attempt, resp: true}
}

// onReqDeadline expires a still-pending request. Its outstanding calls run
// on as orphans, bounded by their own propagated deadlines.
func (r *runner) onReqDeadline(req int32, now float64) {
	rq := &r.reqs[req]
	if rq.state != reqPending {
		return
	}
	rq.state = reqDeadline
	rq.doneAt = now
	r.res.DeadlineExceeded++
	r.cDeadline.Inc()
}

// finish derives the aggregate rates and latency stats.
func (r *runner) finish() {
	for i := range r.reqs {
		if int(r.reqs[i].legs) > r.res.MaxRequestLegs {
			r.res.MaxRequestLegs = int(r.reqs[i].legs)
		}
	}
	r.res.HorizonSec = float64(r.cfg.Requests) / r.cfg.RatePerSec
	r.res.OfferedRps = float64(r.res.Requests) / r.res.HorizonSec
	r.res.GoodputRps = float64(r.res.Completed) / r.res.HorizonSec
	if len(r.lats) > 0 {
		sum := 0.0
		for _, l := range r.lats {
			sum += l
		}
		r.res.MeanLatencySec = sum / float64(len(r.lats))
		sort.Float64s(r.lats)
		rank := int(math.Ceil(0.99*float64(len(r.lats)))) - 1
		if rank < 0 {
			rank = 0
		}
		r.res.P99LatencySec = r.lats[rank]
	}
}
