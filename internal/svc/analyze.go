// Static worst-case analysis of a call graph: how many attempts can one
// root request fan out into, and how long can a caller wait before giving
// up, assuming every attempt burns its full timeout. The bounds are products
// along root-to-leaf paths — fan-out multiplies the calls, the retry budget
// multiplies the attempts per call — so they compose exactly the way retry
// storms do, and the F30 experiment pins the measured per-request attempt
// count under every policy against TotalAttemptsBound.

package svc

import (
	"fmt"
	"math"
)

// PathBound is the worst case of one root-to-leaf path.
type PathBound struct {
	// Services are the node names from root to leaf.
	Services []string
	// Amplification is the worst-case number of attempts on the path's final
	// edge per root request: the product over path edges of
	// fanout * attempts-per-call. This is the RetryAmplificationFactor of
	// the cascadeguard model.
	Amplification int64
	// WorstLatencySec is the longest the root can wait before the path's
	// failure surfaces: the sum over path edges of
	// timeout * attempts-per-call (fan-out is parallel, so it does not
	// lengthen the wait; backoff pauses are excluded — they are bounded
	// separately by the end-to-end deadline).
	WorstLatencySec float64
}

// Report is the static analysis of a graph.
type Report struct {
	// Paths holds every root-to-leaf path in DFS (declaration) order.
	Paths []PathBound
	// MaxAmplification and WorstLatencySec are the maxima over Paths.
	MaxAmplification int64
	WorstLatencySec  float64
	// EdgeAttemptsBound[e] bounds the total attempts on g.Calls[e] per root
	// request, summed over every path reaching the edge; TotalAttemptsBound
	// is the sum over edges — an upper bound on the RPC legs one request
	// can put on the network.
	EdgeAttemptsBound  []int64
	TotalAttemptsBound int64
}

// Analyze computes the worst-case report under budgeted retry semantics:
// every call makes at most 1 + MaxRetries attempts. This covers the fixed,
// throttle, and hedge policies (throttling only denies attempts; a hedge
// spends a unit of the same budget).
func Analyze(g *Graph) (*Report, error) {
	return analyze(g, func(c *Call) int64 { return int64(1 + c.MaxRetries) })
}

// AnalyzeUnbudgeted computes the report for PolicyNone, where retries are
// limited only by the propagated deadline: a call issued with budget B
// retries back-to-back and makes at most ceil(B / timeout) attempts, and no
// call ever holds more budget than the root deadline.
func AnalyzeUnbudgeted(g *Graph, deadlineSec float64) (*Report, error) {
	if !(deadlineSec > 0) || math.IsInf(deadlineSec, 0) {
		return nil, fmt.Errorf("svc: unbudgeted analysis needs a positive deadline, got %g", deadlineSec)
	}
	return analyze(g, func(c *Call) int64 {
		n := math.Ceil(deadlineSec / c.TimeoutSec)
		if n < 1 {
			return 1
		}
		if n >= math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(n)
	})
}

// satMul multiplies with saturation at MaxInt64; the unbudgeted bounds can
// genuinely explode and a silent overflow would invert the comparison the
// experiments rely on.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// analyze walks every root-to-leaf path, carrying the worst-case execution
// count of the current service (the product of fanout * attempts over the
// edges taken) and the accumulated worst-case latency.
func analyze(g *Graph, attempts func(c *Call) int64) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	idx := g.index()
	out := g.outEdges(idx)
	rep := &Report{EdgeAttemptsBound: make([]int64, len(g.Calls))}

	var visit func(s int, arrivals int64, latency float64, trail []string)
	visit = func(s int, arrivals int64, latency float64, trail []string) {
		if len(out[s]) == 0 {
			p := PathBound{
				Services:        append([]string(nil), trail...),
				Amplification:   arrivals,
				WorstLatencySec: latency,
			}
			rep.Paths = append(rep.Paths, p)
			if p.Amplification > rep.MaxAmplification {
				rep.MaxAmplification = p.Amplification
			}
			if p.WorstLatencySec > rep.WorstLatencySec {
				rep.WorstLatencySec = p.WorstLatencySec
			}
			return
		}
		for _, e := range out[s] {
			c := &g.Calls[e]
			att := satMul(arrivals, satMul(int64(c.Fanout), attempts(c)))
			rep.EdgeAttemptsBound[e] = satAdd(rep.EdgeAttemptsBound[e], att)
			visit(idx[c.To], att, latency+c.TimeoutSec*float64(attempts(c)), append(trail, c.To))
		}
	}
	root := idx[g.Root]
	visit(root, 1, 0, []string{g.Root})
	for _, b := range rep.EdgeAttemptsBound {
		rep.TotalAttemptsBound = satAdd(rep.TotalAttemptsBound, b)
	}
	return rep, nil
}
