// Package topotest is a conformance suite for Topology implementations,
// in the spirit of testing/fstest: every structure in this repository runs
// the same battery of structural and routing checks, so a new topology (or
// a refactoring of an old one) is held to the same contract.
package topotest

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Options tunes the conformance run.
type Options struct {
	// MaxPairs caps the routed pairs (default 900; exhaustive when the
	// network is smaller).
	MaxPairs int
	// SkipDiameterCheck disables the hop-diameter tightness check for
	// structures whose analytic Diameter is a bound or uses a non-hop
	// convention (DCell).
	SkipDiameterCheck bool
}

// Run executes the conformance battery against a built topology.
func Run(t *testing.T, tp topology.Topology, opts Options) {
	t.Helper()
	if opts.MaxPairs == 0 {
		opts.MaxPairs = 900
	}
	net := tp.Network()
	props := tp.Properties()

	t.Run("counts match properties", func(t *testing.T) {
		if net.NumServers() != props.Servers {
			t.Errorf("built %d servers, formula %d", net.NumServers(), props.Servers)
		}
		if net.NumSwitches() != props.Switches {
			t.Errorf("built %d switches, formula %d", net.NumSwitches(), props.Switches)
		}
		if net.NumLinks() != props.Links {
			t.Errorf("built %d links, formula %d", net.NumLinks(), props.Links)
		}
	})

	t.Run("degrees within hardware", func(t *testing.T) {
		if props.ServerPorts > 0 {
			if got := net.MaxDegree(topology.Server); got > props.ServerPorts {
				t.Errorf("server degree %d exceeds %d NIC ports", got, props.ServerPorts)
			}
		}
		if props.SwitchPorts > 0 {
			if got := net.MaxDegree(topology.Switch); got > props.SwitchPorts {
				t.Errorf("switch degree %d exceeds radix %d", got, props.SwitchPorts)
			}
		}
	})

	t.Run("connected", func(t *testing.T) {
		if !net.Graph().Connected(nil) {
			t.Error("built network is disconnected")
		}
	})

	t.Run("routes valid and bounded", func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		for _, pair := range samplePairs(net, opts.MaxPairs, rng) {
			src, dst := pair[0], pair[1]
			p, err := tp.Route(src, dst)
			if err != nil {
				t.Fatalf("Route(%s,%s): %v", net.Label(src), net.Label(dst), err)
			}
			if err := p.Validate(net, src, dst); err != nil {
				t.Fatal(err)
			}
			if props.DiameterLinks > 0 && src != dst && p.Len() > props.DiameterLinks {
				t.Fatalf("Route(%s,%s) = %d links > analytic %d",
					net.Label(src), net.Label(dst), p.Len(), props.DiameterLinks)
			}
		}
	})

	t.Run("self route", func(t *testing.T) {
		s := net.Server(0)
		p, err := tp.Route(s, s)
		if err != nil || len(p) != 1 || p[0] != s {
			t.Errorf("Route(self) = %v, %v", p, err)
		}
	})

	t.Run("switch endpoints rejected", func(t *testing.T) {
		if net.NumSwitches() == 0 {
			t.Skip("no switches")
		}
		sw := net.Switches()[0]
		s := net.Server(0)
		if _, err := tp.Route(sw, s); err == nil {
			t.Error("Route(switch, server) succeeded")
		}
		if _, err := tp.Route(s, sw); err == nil {
			t.Error("Route(server, switch) succeeded")
		}
	})

	if !opts.SkipDiameterCheck {
		t.Run("diameter tight", func(t *testing.T) {
			servers := net.Servers()
			if len(servers) > 600 {
				t.Skip("too large for exhaustive diameter")
			}
			worst := 0
			for _, src := range servers {
				ecc, ok := net.Graph().Eccentricity(src, servers, nil)
				if !ok {
					t.Fatal("disconnected")
				}
				if ecc > worst {
					worst = ecc
				}
			}
			if worst != props.DiameterLinks {
				t.Errorf("measured diameter %d links, analytic %d", worst, props.DiameterLinks)
			}
		})
	}
}

// samplePairs returns all ordered pairs when few, else a seeded sample.
func samplePairs(net *topology.Network, limit int, rng *rand.Rand) [][2]int {
	servers := net.Servers()
	n := len(servers)
	if n*n <= limit {
		pairs := make([][2]int, 0, n*n)
		for _, a := range servers {
			for _, b := range servers {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		return pairs
	}
	pairs := make([][2]int, limit)
	for i := range pairs {
		pairs[i] = [2]int{servers[rng.Intn(n)], servers[rng.Intn(n)]}
	}
	return pairs
}

// RunFaultRouter extends the battery for structures with fault-tolerant
// routing: with no failures it must serve every sampled pair with alive,
// valid paths; with a failed destination it must return an error.
func RunFaultRouter(t *testing.T, tp topology.Topology, fr topology.FaultRouter) {
	t.Helper()
	net := tp.Network()
	view := graph.NewView(net.Graph())
	rng := rand.New(rand.NewSource(2))
	t.Run("fault router healthy", func(t *testing.T) {
		for _, pair := range samplePairs(net, 200, rng) {
			p, err := fr.RouteAvoiding(pair[0], pair[1], view)
			if err != nil {
				t.Fatalf("RouteAvoiding(%s,%s): %v", net.Label(pair[0]), net.Label(pair[1]), err)
			}
			if err := p.Validate(net, pair[0], pair[1]); err != nil {
				t.Fatal(err)
			}
			if !p.Alive(net, view) {
				t.Fatal("dead components on a healthy route")
			}
		}
	})
	t.Run("fault router dead endpoint", func(t *testing.T) {
		dead := graph.NewView(net.Graph())
		dst := net.Server(net.NumServers() - 1)
		dead.FailNode(dst)
		if _, err := fr.RouteAvoiding(net.Server(0), dst, dead); err == nil {
			t.Error("route to a dead endpoint succeeded")
		}
	})
}

// RunMultipathRouter is the conformance battery for parallel-path
// constructions — the contract the transport engine's multipath failover
// layer leans on. For every sampled distinct server pair the path set must
// be non-empty, every path valid, the paths pairwise internally
// vertex-disjoint, at least two whenever the graph admits two, and never
// more than the max-flow bound; same-node and non-server inputs must come
// back empty.
func RunMultipathRouter(t *testing.T, tp topology.Topology, mr topology.MultipathRouter) {
	t.Helper()
	net := tp.Network()
	g := net.Graph()
	rng := rand.New(rand.NewSource(3))

	t.Run("parallel paths valid and disjoint", func(t *testing.T) {
		for _, pair := range samplePairs(net, 150, rng) {
			src, dst := pair[0], pair[1]
			if src == dst {
				continue
			}
			paths := mr.ParallelPaths(src, dst)
			if len(paths) == 0 {
				t.Fatalf("ParallelPaths(%s,%s) empty", net.Label(src), net.Label(dst))
			}
			used := make(map[int]int)
			for i, p := range paths {
				if err := p.Validate(net, src, dst); err != nil {
					t.Fatalf("path %d: %v", i, err)
				}
				for _, node := range p {
					if node == src || node == dst {
						continue
					}
					if prev, ok := used[node]; ok {
						t.Fatalf("paths %d and %d share internal node %s",
							prev, i, net.Label(node))
					}
					used[node] = i
				}
			}
			limit := g.VertexDisjointPaths(src, dst)
			if len(paths) > limit {
				t.Fatalf("ParallelPaths(%s,%s) = %d paths, max-flow bound %d",
					net.Label(src), net.Label(dst), len(paths), limit)
			}
			if limit >= 2 && len(paths) < 2 {
				t.Errorf("ParallelPaths(%s,%s) = 1 path, graph admits %d",
					net.Label(src), net.Label(dst), limit)
			}
		}
	})

	t.Run("parallel paths degenerate inputs", func(t *testing.T) {
		s := net.Server(0)
		if got := mr.ParallelPaths(s, s); len(got) != 0 {
			t.Errorf("ParallelPaths(self) = %d paths, want none", len(got))
		}
		if net.NumSwitches() > 0 {
			sw := net.Switches()[0]
			if got := mr.ParallelPaths(s, sw); len(got) != 0 {
				t.Errorf("ParallelPaths(server, switch) = %d paths, want none", len(got))
			}
			if got := mr.ParallelPaths(sw, s); len(got) != 0 {
				t.Errorf("ParallelPaths(switch, server) = %d paths, want none", len(got))
			}
		}
		if got := mr.ParallelPaths(-1, s); len(got) != 0 {
			t.Errorf("ParallelPaths(-1, server) = %d paths, want none", len(got))
		}
	})
}
