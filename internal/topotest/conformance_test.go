package topotest

import (
	"testing"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/hypercube"
	"repro/internal/topology"
)

// TestConformance runs the shared battery over every structure in the
// repository — the single place where a contract change must pass for all
// of them at once.
func TestConformance(t *testing.T) {
	subjects := []struct {
		name string
		t    topology.Topology
		opts Options
	}{
		{name: "ABCCC(4,1,2)", t: core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{name: "ABCCC(3,2,3)", t: core.MustBuild(core.Config{N: 3, K: 2, P: 3})},
		{name: "ABCCC(4,2,4)", t: core.MustBuild(core.Config{N: 4, K: 2, P: 4})},
		{name: "ABCCC(2,0,5)", t: core.MustBuild(core.Config{N: 2, K: 0, P: 5})},
		{name: "BCCC(3,1)", t: bccc.MustBuild(bccc.Config{N: 3, K: 1})},
		{name: "BCCC(4,2)", t: bccc.MustBuild(bccc.Config{N: 4, K: 2})},
		{name: "BCube(3,2)", t: bcube.MustBuild(bcube.Config{N: 3, K: 2})},
		{name: "BCube(4,1)", t: bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		// DCellRouting is not shortest-path and its Diameter field uses the
		// server-hop convention; skip the links-diameter tightness check.
		{name: "DCell(3,1)", t: dcell.MustBuild(dcell.Config{N: 3, K: 1}), opts: Options{SkipDiameterCheck: true}},
		{name: "DCell(2,2)", t: dcell.MustBuild(dcell.Config{N: 2, K: 2}), opts: Options{SkipDiameterCheck: true}},
		{name: "FatTree(4)", t: fattree.MustBuild(fattree.Config{K: 4})},
		{name: "FatTree(6)", t: fattree.MustBuild(fattree.Config{K: 6})},
		{name: "Hypercube(5)", t: hypercube.MustBuild(hypercube.Config{D: 5})},
	}
	for _, s := range subjects {
		s := s
		t.Run(s.name, func(t *testing.T) {
			Run(t, s.t, s.opts)
		})
	}
}

// TestConformancePartialDeployments holds incremental deployments to the
// same contract (minus the closed-form checks they don't claim).
func TestConformancePartialDeployments(t *testing.T) {
	for _, m := range []int{1, 3, 5, 9} {
		p, err := core.BuildPartial(core.Config{N: 3, K: 1, P: 2}, m)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Network().Name(), func(t *testing.T) {
			Run(t, p, Options{SkipDiameterCheck: true})
		})
	}
}

// TestFaultRouterConformance runs the fault-routing battery over every
// structure that implements it.
func TestFaultRouterConformance(t *testing.T) {
	abccc := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	bc := bccc.MustBuild(bccc.Config{N: 3, K: 1})
	bq := bcube.MustBuild(bcube.Config{N: 3, K: 1})
	dc := dcell.MustBuild(dcell.Config{N: 3, K: 1})
	ft := fattree.MustBuild(fattree.Config{K: 4})
	subjects := []struct {
		name string
		t    topology.Topology
		fr   topology.FaultRouter
	}{
		{"ABCCC adaptive", abccc, abccc},
		{"BCCC", bc, bc},
		{"BCube", bq, bq},
		{"DCell", dc, dc},
		{"FatTree", ft, ft},
	}
	for _, s := range subjects {
		s := s
		t.Run(s.name, func(t *testing.T) {
			RunFaultRouter(t, s.t, s.fr)
		})
	}
}

// TestMultipathRouterConformance runs the parallel-path battery over every
// structure that implements MultipathRouter. Fat-tree is absent by design:
// its servers have one NIC port, so no two internally disjoint paths exist.
func TestMultipathRouterConformance(t *testing.T) {
	subjects := []struct {
		name string
		t    topology.Topology
		mr   topology.MultipathRouter
	}{}
	add := func(name string, tp topology.Topology) {
		mr, ok := tp.(topology.MultipathRouter)
		if !ok {
			t.Fatalf("%s does not implement MultipathRouter", name)
		}
		subjects = append(subjects, struct {
			name string
			t    topology.Topology
			mr   topology.MultipathRouter
		}{name, tp, mr})
	}
	add("ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2}))
	add("ABCCC(3,2,3)", core.MustBuild(core.Config{N: 3, K: 2, P: 3}))
	add("BCCC(3,1)", bccc.MustBuild(bccc.Config{N: 3, K: 1}))
	add("BCCC(4,2)", bccc.MustBuild(bccc.Config{N: 4, K: 2}))
	add("BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1}))
	add("BCube(3,2)", bcube.MustBuild(bcube.Config{N: 3, K: 2}))
	for _, s := range subjects {
		s := s
		t.Run(s.name, func(t *testing.T) {
			RunMultipathRouter(t, s.t, s.mr)
		})
	}
}
