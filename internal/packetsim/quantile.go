package packetsim

import "math"

// quantile returns the nearest-rank q-quantile of xs, partially reordering
// xs in place. Nearest-rank over n samples is the ceil(q*n)-th smallest
// value (the old code floored the rank, which for n = 100 read the maximum
// instead of the 99th percentile). Quickselect finds that order statistic in
// expected O(n) without the full sort the percentile path used to pay.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quickselect(xs, nearestRankIndex(len(xs), q))
}

// nearestRankIndex returns the 0-based index of the nearest-rank q-quantile
// in a sorted n-sample slice: ceil(q*n)-1, clamped to [0, n-1].
func nearestRankIndex(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// quickselect places the k-th smallest element of xs at index k and returns
// it, using Hoare partitioning around a median-of-three pivot (deterministic,
// and robust against the long runs of duplicate values queueing-free
// latencies produce).
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		j := hoarePartition(xs, lo, hi)
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// hoarePartition partitions xs[lo..hi] and returns j such that every element
// of xs[lo..j] <= every element of xs[j+1..hi], with both halves non-empty.
func hoarePartition(xs []float64, lo, hi int) int {
	// Median-of-three: order lo/mid/hi, then pivot on the median, which
	// hoists to xs[lo]. This keeps sorted and reverse-sorted inputs — the
	// common shapes after near-FIFO delivery — at O(n).
	mid := lo + (hi-lo)/2
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[mid] < xs[hi] {
		xs[mid], xs[hi] = xs[hi], xs[mid]
	}
	// The three swaps above leave min at lo, median at hi, max at mid;
	// hoist the median to lo as the pivot (the min lands at hi, which also
	// guarantees the j-scan below terminates inside the range).
	xs[lo], xs[hi] = xs[hi], xs[lo]
	pivot := xs[lo]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if xs[i] >= pivot {
				break
			}
		}
		for {
			j--
			if xs[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
}
