// Time-resolved telemetry for the event engines: when a run is given an
// obs.Series (Config.Series), each engine routes its goodput, drop-cause,
// retransmit, queue-depth, failover, and reroute updates into sim-time
// windows alongside the whole-run counters. Every update is stamped with the
// event's simulated time, and window cells only accumulate commutative
// quantities, so a sharded run's series is byte-identical for every shard
// and worker count — the same guarantee as the Result merge.

package packetsim

import "repro/internal/obs"

// Series track names registered on Config.Series by the engines. The packet
// engine writes the first four; the transport engines write all of them
// (DropStale only in serial runs — the sharded transport has no stale drops
// by design, see shardtransport.go).
const (
	// SeriesGoodputBytes accrues delivered payload bytes: at delivery in the
	// packet engine, at cumulative-ACK advance in the transport engines.
	SeriesGoodputBytes = "goodput_bytes"
	// SeriesQueueDepth samples the drop-tail backlog (packets) ahead of each
	// transmission; the window max is the backlog high-water mark.
	SeriesQueueDepth = "queue_depth_pkts"
	// Per-cause drop curves, one update per lost packet.
	SeriesDropTail  = "drop_droptail"
	SeriesDropFault = "drop_fault"
	SeriesDropStale = "drop_stale"
	// Transport-only curves.
	SeriesRetransmits = "retransmits"
	SeriesFailovers   = "failovers"
	SeriesReroutes    = "reroutes"
)

// seriesTracks hoists an engine run's tracks the way the engines hoist
// nil-able instruments: the zero value (series disabled) leaves every track
// nil, so each recording site costs one pointer test, and armed gates the
// sites that would otherwise compute a timestamp for nothing.
type seriesTracks struct {
	armed bool

	goodput   *obs.Track
	queue     *obs.Track
	dropTail  *obs.Track
	dropFault *obs.Track
	dropStale *obs.Track
	rtx       *obs.Track
	failover  *obs.Track
	reroute   *obs.Track
}

func newSeriesTracks(s *obs.Series) seriesTracks {
	if s == nil {
		return seriesTracks{}
	}
	return seriesTracks{
		armed:     true,
		goodput:   s.Track(SeriesGoodputBytes),
		queue:     s.Track(SeriesQueueDepth),
		dropTail:  s.Track(SeriesDropTail),
		dropFault: s.Track(SeriesDropFault),
		dropStale: s.Track(SeriesDropStale),
		rtx:       s.Track(SeriesRetransmits),
		failover:  s.Track(SeriesFailovers),
		reroute:   s.Track(SeriesReroutes),
	}
}
