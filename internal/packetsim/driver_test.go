package packetsim

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/traffic"
)

// doneRec is one captured OnFlowDone notification.
type doneRec struct {
	flow      int
	at        float64
	completed bool
}

// TestOnFlowDoneOrderMatchesCompletionSort is the regression test for the
// completion hook: callbacks must fire in completion-time order (stably, so
// ties keep event order), i.e. sorting the captured sequence by time must be
// a no-op, and every completed flow must be reported exactly once.
func TestOnFlowDoneOrderMatchesCompletionSort(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	for i := 0; i < n; i++ {
		// Staggered sizes and starts so completions interleave.
		flows = append(flows, traffic.Flow{
			Src: i, Dst: (i + n/2) % n,
			Bytes:    int64(64<<10 + 16<<10*(i%5)),
			StartSec: 1e-5 * float64(i%3),
		})
	}
	cfg := DefaultTransport()
	var got []doneRec
	cfg.OnFlowDone = func(flow int, atSec float64, completed bool) {
		got = append(got, doneRec{flow, atSec, completed})
	}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != res.CompletedFlows {
		t.Fatalf("hook fired %d times, result has %d completed flows", len(got), res.CompletedFlows)
	}
	sorted := append([]doneRec(nil), got...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].at < sorted[j].at })
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("hook order diverges from completion-time sort at %d: got %+v, sorted %+v",
				i, got[i], sorted[i])
		}
	}
	seen := make(map[int]bool)
	for _, d := range got {
		if !d.completed {
			t.Errorf("fault-free run reported flow %d as not completed", d.flow)
		}
		if seen[d.flow] {
			t.Errorf("flow %d reported twice", d.flow)
		}
		seen[d.flow] = true
	}
	if last := got[len(got)-1].at; last != res.MakespanSec {
		t.Errorf("last hook at %g, makespan %g", last, res.MakespanSec)
	}
}

// TestOnFlowDoneReportsAborts pins completed=false for flows that give up
// after MaxFlowTimeouts: killing a destination server permanently must
// surface through the hook, not just the post-run FailedFlows tally.
func TestOnFlowDoneReportsAborts(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	flows := []traffic.Flow{
		{Src: 0, Dst: 5, Bytes: 64 << 10},
		{Src: 1, Dst: 8, Bytes: 64 << 10},
	}
	cfg := DefaultTransport()
	cfg.Faults = &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 1e-5, Kind: failure.Servers, Index: net.Servers()[5]},
	}}
	cfg.MaxFlowTimeouts = 5
	var got []doneRec
	cfg.OnFlowDone = func(flow int, atSec float64, completed bool) {
		got = append(got, doneRec{flow, atSec, completed})
	}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFlows != 1 || res.CompletedFlows != 1 {
		t.Fatalf("want one failed and one completed flow, got %+v", res)
	}
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	var aborts, completes int
	for _, d := range got {
		if d.completed {
			completes++
		} else {
			aborts++
			if d.flow != 0 {
				t.Errorf("abort reported for flow %d, want 0 (dead destination)", d.flow)
			}
		}
	}
	if aborts != 1 || completes != 1 {
		t.Errorf("got %d aborts and %d completes, want 1 and 1", aborts, completes)
	}
}

// TestEngineMatchesRunTransport: injecting the same workload up front into a
// TransportEngine must reproduce RunTransport bit-identically — the engine
// is the same event loop, only fed differently.
func TestEngineMatchesRunTransport(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := []traffic.Flow{
		{Src: 0, Dst: 9, Bytes: 512 << 10},
		{Src: 3, Dst: 12, Bytes: 512 << 10},
		{Src: 7, Dst: 1, Bytes: 512 << 10, StartSec: 2e-4},
	}
	for _, faults := range []bool{false, true} {
		cfg := DefaultTransport()
		if faults {
			cfg.Faults = &failure.FaultPlan{Events: []failure.FaultEvent{
				{TimeSec: 5e-4, Kind: failure.Switches, Index: tp.Network().Switches()[0]},
			}}
			cfg.Multipath = true
		}
		want, err := RunTransport(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewTransportEngine(tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			if _, err := eng.InjectFlow(f.Src, f.Dst, f.Bytes, f.StartSec); err != nil {
				t.Fatal(err)
			}
		}
		got, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("faults=%v: engine diverges from RunTransport:\nengine %+v\nbatch  %+v",
				faults, got, want)
		}
	}
}

// TestEngineClosedLoop drives a dependency chain: each completion injects
// the next flow from inside the OnFlowDone callback, and a local (src==dst)
// flow must complete through the same hook. This is the staged-injection
// contract the service layer builds on.
func TestEngineClosedLoop(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	cfg := DefaultTransport()
	var eng *TransportEngine
	var got []doneRec
	hops := []struct {
		src, dst int
	}{{0, 9}, {9, 4}, {4, 4}, {4, 0}} // includes a local leg
	next := 1
	cfg.OnFlowDone = func(flow int, atSec float64, completed bool) {
		got = append(got, doneRec{flow, atSec, completed})
		if !completed {
			t.Errorf("flow %d did not complete", flow)
		}
		if next < len(hops) {
			h := hops[next]
			next++
			if _, err := eng.InjectFlow(h.src, h.dst, 32<<10, atSec); err != nil {
				t.Errorf("inject from callback: %v", err)
			}
		}
	}
	eng, err := NewTransportEngine(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.InjectFlow(hops[0].src, hops[0].dst, 32<<10, 0); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != len(hops) {
		t.Fatalf("completed %d flows, want %d", res.CompletedFlows, len(hops))
	}
	if len(got) != len(hops) {
		t.Fatalf("hook fired %d times, want %d", len(got), len(hops))
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Errorf("chain completions out of order: %+v", got)
		}
		if got[i].flow != got[i-1].flow+1 {
			t.Errorf("chain flow ids out of order: %+v", got)
		}
	}
}

// TestEngineScheduleOrder pins wake semantics: callbacks fire at their
// scheduled times in time order, same-time wakes in registration order, and
// wakes interleave correctly with flow completions.
func TestEngineScheduleOrder(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	eng, err := NewTransportEngine(tp, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	mark := func(id int) func(float64) {
		return func(nowSec float64) { order = append(order, id) }
	}
	if err := eng.Schedule(2e-3, mark(2)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(1e-3, mark(1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Schedule(1e-3, mark(10)); err != nil { // same-time: after mark(1)
		t.Fatal(err)
	}
	if err := eng.Schedule(0, func(nowSec float64) {
		order = append(order, 0)
		// Nested schedule from a callback.
		if err := eng.Schedule(nowSec+3e-3, mark(3)); err != nil {
			t.Errorf("nested schedule: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 10, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestEngineRejectsMisuse covers the argument validation and single-shot
// contracts, plus the sharded engine's hook rejection.
func TestEngineRejectsMisuse(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	eng, err := NewTransportEngine(tp, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.InjectFlow(-1, 0, 1024, 0); err == nil {
		t.Error("accepted out-of-range src")
	}
	if _, err := eng.InjectFlow(0, 1<<20, 1024, 0); err == nil {
		t.Error("accepted out-of-range dst")
	}
	if _, err := eng.InjectFlow(0, 1, 0, 0); err == nil {
		t.Error("accepted zero bytes")
	}
	if _, err := eng.InjectFlow(0, 1, 1024, -1); err == nil {
		t.Error("accepted start before now")
	}
	if err := eng.Schedule(0, nil); err == nil {
		t.Error("accepted nil wake callback")
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("second Run did not error")
	}

	cfg := DefaultTransport()
	cfg.OnFlowDone = func(int, float64, bool) {}
	if _, err := RunTransportSharded(tp, []traffic.Flow{{Src: 0, Dst: 1, Bytes: 1024}}, cfg, ShardOpts{}); err == nil {
		t.Error("sharded engine accepted a completion hook")
	}
}
