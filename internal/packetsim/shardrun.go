// The sharded packet engine: packetsim.Run partitioned by topology shard and
// driven by the conservative window loop in shard.go. Each shard owns the
// nodes topology.ShardNodes assigns it, the directed link resources whose
// transmitter it owns, and its own event heap; packets hop between shards as
// barrier-exchanged handoffs.

package packetsim

import (
	"math"

	"repro/internal/eventq"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// pktShard is one shard of the packet engine: its heap plus the run tallies
// it accumulates locally and the merge step folds together.
type pktShard struct {
	win windowShard[simEvent]
	fs  *faultState

	delivered, dropped, droppedFault int
	deliveredBytes                   int64
	makespan                         float64
	latencies                        []float64
}

// RunSharded simulates the same physics as Run across opts.Shards topology
// shards. The result is byte-identical for every shard count and GOMAXPROCS;
// against the serial Run it is equivalent up to the same-time tie-break rule
// (see ALGORITHMS.md and the tolerance tests in shard_test.go): Run orders
// same-time forwards by heap-insertion sequence, while the sharded engine
// keys every hop of a packet's journey by the packet id so the order is
// content-derived and shard-independent. With shards <= 1 the sharded
// tie-break still applies, so RunSharded(1 shard) is its own oracle.
//
// Trace events from concurrent shards interleave nondeterministically (their
// multiset is still fixed); run with ShardOpts{Workers: 1} for a
// deterministic trace order.
func RunSharded(t topology.Topology, flows []traffic.Flow, cfg Config, opts ShardOpts) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	plan, err := planFor(t, flows)
	if err != nil {
		return Result{}, err
	}
	net := t.Network()
	numShards, workers := opts.normalized(net.Graph().NumNodes())
	nodeShard := topology.ShardNodes(t, numShards)

	txTime := float64(cfg.MTU) / cfg.LinkBandwidthBps
	gap := float64(cfg.MTU) / cfg.FlowRateBps
	// Lookahead: a cross-shard hop costs at least one transmit time plus the
	// propagation delay, so events generated inside a window land at least
	// this far past its start on any other shard.
	lookahead := txTime + cfg.LinkDelaySec

	shardsArr := make([]*pktShard, numShards)
	winArr := make([]*windowShard[simEvent], numShards)
	for s := range shardsArr {
		ps := &pktShard{}
		ps.win.q = *eventq.New[simEvent](64)
		ps.win.out = make([][]handoff[simEvent], numShards)
		shardsArr[s] = ps
		winArr[s] = &ps.win
	}

	// Injections are shard-local: each flow's pending-injection event lives on
	// its source node's shard. Keys are the packet ids base[i]+pn — constant
	// across a packet's whole journey, and a strict tie-break because a
	// journey has exactly one live event at any time.
	packets := make([]int32, len(flows))
	base := make([]int64, len(flows))
	var totalPackets int64
	for i, f := range flows {
		base[i] = totalPackets
		if len(plan.paths[i]) < 2 {
			continue // src == dst
		}
		packets[i] = int32((f.Bytes + int64(cfg.MTU) - 1) / int64(cfg.MTU))
		totalPackets += int64(packets[i])
		if packets[i] > 0 {
			src := int(nodeShard[plan.paths[i][0]])
			shardsArr[src].win.q.Push(f.StartSec, base[i], simEvent{flow: int32(i), pn: 0, idx: 0})
		}
	}

	// Fault plans replicate: every shard pops every transition at its exact
	// simulated time (negative keys sort before any packet at the same time),
	// so all per-shard failure views agree at every instant.
	var faultStates []*faultState
	if cfg.Faults != nil {
		faultStates, err = newShardFaultStates(cfg.Faults, net, numShards,
			cfg.Timeline != nil, cfg.Metrics, cfg.Trace)
		if err != nil {
			return Result{}, err
		}
		for s, ps := range shardsArr {
			for i, fe := range cfg.Faults.Events {
				ps.win.q.Push(fe.TimeSec, int64(i)-int64(len(cfg.Faults.Events)),
					simEvent{flow: -1, pn: int32(i)})
			}
			ps.fs = faultStates[s]
		}
	}

	var (
		cDelivered = cfg.Metrics.Counter(MetricDelivered)
		cDropped   = cfg.Metrics.Counter(MetricDroppedTail)
		cFault     = cfg.Metrics.Counter(MetricDroppedFault)
		hQueue     = cfg.Metrics.Histogram(MetricQueueDepth)
		hHops      = cfg.Metrics.Histogram(MetricHops)
		hLatency   = cfg.Metrics.Histogram(MetricLatencyNs)
		tracer     = cfg.Trace
		st         = newSeriesTracks(cfg.Series)
	)

	// linkFree is shared, but each element is touched only by the owner shard
	// of its transmitter node, so access is disjoint by construction.
	linkFree := make([]float64, plan.numRes)

	drain := func(s int, end float64) {
		ps := shardsArr[s]
		w := &ps.win
		fs := ps.fs
		for w.q.Len() > 0 {
			if t, _, _ := w.q.Peek(); t >= end {
				return
			}
			now, _, ev := w.q.Pop()
			w.processed++
			if ev.flow < 0 {
				fs.apply(now, int(ev.pn))
				continue
			}
			fi := int(ev.flow)
			path := plan.paths[fi]
			if ev.idx == 0 && ev.pn+1 < packets[fi] {
				// The packet just left its source: queue the flow's next
				// injection (always local — same source node).
				pn := ev.pn + 1
				w.q.Push(flows[fi].StartSec+float64(pn)*gap, base[fi]+int64(pn),
					simEvent{flow: ev.flow, pn: pn, idx: 0})
			}
			idx := int(ev.idx)
			pid := base[fi] + int64(ev.pn)
			if idx == len(path)-1 {
				sentAt := flows[fi].StartSec + float64(ev.pn)*gap
				ps.delivered++
				ps.deliveredBytes += int64(cfg.MTU)
				lat := now - sentAt
				ps.latencies = append(ps.latencies, lat)
				if now > ps.makespan {
					ps.makespan = now
				}
				cDelivered.Inc()
				hHops.Observe(int64(len(path) - 1))
				hLatency.Observe(int64(lat * 1e9))
				if st.armed {
					st.goodput.Add(int64(now*1e9), int64(cfg.MTU))
				}
				if fs != nil {
					fs.cur.Delivered++
					fs.cur.DeliveredBytes += int64(cfg.MTU)
				}
				if tracer != nil {
					tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "deliver",
						ID: pid, Node: path[idx], Hop: idx})
				}
				continue
			}
			r := plan.flowRes(fi)[idx]
			if fs != nil && !fs.hopAlive(path[idx], path[idx+1], r) {
				ps.droppedFault++
				cFault.Inc()
				fs.cur.DroppedFault++
				if st.armed {
					st.dropFault.Add(int64(now*1e9), 1)
				}
				if tracer != nil {
					tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "drop",
						ID: pid, Node: path[idx], Hop: idx, Detail: DropCauseFault})
				}
				continue
			}
			backlog := (linkFree[r] - now) / txTime
			if hQueue != nil {
				hQueue.Observe(int64(math.Max(backlog, 0)))
			}
			if st.armed {
				st.queue.Add(int64(now*1e9), int64(math.Max(backlog, 0)))
			}
			if backlog > float64(cfg.QueueLimitPackets) {
				ps.dropped++
				cDropped.Inc()
				if fs != nil {
					fs.cur.DroppedTail++
				}
				if st.armed {
					st.dropTail.Add(int64(now*1e9), 1)
				}
				if tracer != nil {
					tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "drop",
						ID: pid, Node: path[idx], Hop: idx, Detail: DropCauseTail})
				}
				continue
			}
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "hop",
					ID: pid, Node: path[idx], Hop: idx})
			}
			start := math.Max(now, linkFree[r])
			done := start + txTime
			linkFree[r] = done
			w.push(int(nodeShard[path[idx+1]]), s, done+cfg.LinkDelaySec, pid,
				simEvent{flow: ev.flow, pn: ev.pn, idx: ev.idx + 1})
		}
	}

	driver := newShardDriver(numShards, workers, cfg.Metrics, cfg.Trace, opts.Profile)
	if err := runWindows(driver, winArr, lookahead, drain, 0); err != nil {
		return Result{}, err
	}

	// Merge: integer tallies sum; the makespan is a max; the latency stats
	// come from the sorted concatenation, so every number is independent of
	// how work was spread across shards.
	var res Result
	var deliveredBytes int64
	parts := make([][]float64, numShards)
	for s, ps := range shardsArr {
		res.Delivered += ps.delivered
		res.Dropped += ps.dropped
		res.DroppedFault += ps.droppedFault
		deliveredBytes += ps.deliveredBytes
		if ps.makespan > res.MakespanSec {
			res.MakespanSec = ps.makespan
		}
		parts[s] = ps.latencies
	}
	res.AvgLatencySec, res.P99LatencySec = mergeLatencies(parts)
	if res.MakespanSec > 0 {
		res.ThroughputBps = float64(deliveredBytes) / res.MakespanSec
	}
	if faultStates != nil {
		if cfg.Timeline != nil {
			if err := finishShardTimelines(cfg.Timeline, faultStates, res.MakespanSec); err != nil {
				return Result{}, err
			}
		} else {
			for _, fs := range faultStates {
				fs.finish(res.MakespanSec)
			}
		}
	}
	return res, nil
}
