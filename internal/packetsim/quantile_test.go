package packetsim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNearestRankIndex(t *testing.T) {
	tests := []struct {
		n    int
		q    float64
		want int
	}{
		// The motivating bug: for n = 100 the old floor formula (n*99)/100
		// read index 99 — the maximum — instead of the 99th percentile.
		{100, 0.99, 98},
		{1, 0.99, 0},
		{2, 0.99, 1},
		{10, 0.5, 4},   // ceil(5) - 1
		{11, 0.5, 5},   // ceil(5.5) - 1
		{100, 1.0, 99}, // max
		{100, 0.0, 0},  // clamped to the minimum
		{200, 0.99, 197},
		{101, 0.99, 99},
	}
	for _, tt := range tests {
		if got := nearestRankIndex(tt.n, tt.q); got != tt.want {
			t.Errorf("nearestRankIndex(%d, %g) = %d, want %d", tt.n, tt.q, got, tt.want)
		}
	}
}

func TestQuantileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := map[string]func(n int) []float64{
		"random": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()
			}
			return xs
		},
		"sorted": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		"reversed": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
		"constant": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 3.14
			}
			return xs
		},
		"few-distinct": func(n int) []float64 { // heavy duplicates, like queueing-free latencies
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(3))
			}
			return xs
		},
	}
	for name, gen := range shapes {
		for _, n := range []int{1, 2, 3, 7, 100, 101, 1000} {
			for _, q := range []float64{0.0, 0.5, 0.9, 0.99, 1.0} {
				xs := gen(n)
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				want := sorted[nearestRankIndex(n, q)]
				if got := quantile(xs, q); got != want {
					t.Fatalf("%s n=%d q=%g: quantile = %g, sort says %g", name, n, q, got, want)
				}
			}
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := quantile(nil, 0.99); got != 0 {
		t.Errorf("quantile(nil) = %g, want 0", got)
	}
}
