package packetsim

import (
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TransportConfig parameterizes the Reno-like reliable transport that runs
// on top of the packet-level link model: slow start, congestion avoidance,
// fast retransmit on triple duplicate ACKs, and timeout recovery with
// exponential backoff. The original evaluation's simulations carry TCP
// flows; this reproduces their qualitative behaviour (losses become delay,
// not vanished traffic).
type TransportConfig struct {
	// Link is the underlying link/queue model.
	Link Config
	// AckBytes is the size of ACK packets (default 64).
	AckBytes int
	// InitCwnd and MaxCwnd bound the congestion window in packets.
	InitCwnd, MaxCwnd float64
	// RTOSec is the (fixed, deterministic) base retransmission timeout.
	RTOSec float64
	// DupAckThreshold triggers fast retransmit (default 3).
	DupAckThreshold int
	// MaxEvents aborts pathological runs (default 50e6).
	MaxEvents int64
	// ECN enables explicit congestion notification: packets enqueued behind
	// more than ECNThresholdPackets are marked instead of waiting for a
	// drop; the receiver echoes the mark and the sender halves its window
	// at most once per window of data (classic ECN-TCP). Congestion then
	// costs window reductions, not retransmissions.
	ECN                 bool
	ECNThresholdPackets int

	// Faults, when non-nil, injects the plan's timed down/up events into the
	// run. Packets transmitted across dead components drop with the
	// DropCauseFault cause, and a flow whose retransmission timer fires
	// after the failure set changed recompiles its route around the dead
	// components (structures implementing topology.FaultRouter; see
	// reroute). Nil keeps the engine bit-identical to the fault-free run.
	Faults *failure.FaultPlan
	// Timeline, when non-nil (and Faults is set), receives per-epoch
	// goodput/drop/reroute statistics. Not safe to share across runs.
	Timeline *Timeline
	// MaxFlowTimeouts aborts a flow after this many consecutive
	// retransmission timeouts without forward progress — the give-up that
	// lets a run terminate when failures permanently strand a flow (dead
	// endpoint, partitioned network). Only enforced while Faults is set;
	// 0 disables the cap.
	MaxFlowTimeouts int

	// Multipath arms proactive failover (multipath.go): each flow
	// precompiles up to MultipathPaths internally disjoint paths and
	// switches between them on fast-failover signals instead of waiting for
	// RTO. Only meaningful with Faults set — without a plan there are no
	// failures to react to and the engine stays bit-identical to the
	// single-path run.
	Multipath bool
	// MultipathPaths caps the per-flow path-set size; 0 means
	// DefaultMultipathPaths.
	MultipathPaths int

	// OnFlowDone, when non-nil, fires from inside the event loop as each
	// flow reaches its terminal state — completed (all bytes acked) or
	// aborted after MaxFlowTimeouts (completed=false) — in event order,
	// which is completion-time order with arrival order breaking ties.
	// Callbacks run at a safe point between events, so they may inject new
	// flows or schedule wakes on a TransportEngine (driver.go); this is how
	// closed-loop layers (retries, dependent RPCs) react deterministically.
	// Only the serial engine supports it: RunTransportSharded rejects a
	// config with a hook, since parallel shard drains would make callback
	// order depend on the worker schedule.
	OnFlowDone func(flow int, atSec float64, completed bool)
}

// DefaultTransport returns a GbE NewReno-ish configuration.
func DefaultTransport() TransportConfig {
	// MaxCwnd sits below the default queue depth so a lone flow never
	// overruns its own bottleneck buffer (the data-center BDP here is about
	// one packet; the window only fills queues). RTO is 1 ms, the usual
	// DCN-simulation value.
	return TransportConfig{
		Link:                Default(),
		AckBytes:            64,
		InitCwnd:            2,
		MaxCwnd:             64,
		RTOSec:              1e-3,
		DupAckThreshold:     3,
		MaxEvents:           50e6,
		ECNThresholdPackets: 20,
		MaxFlowTimeouts:     30,
	}
}

// Validate reports whether the configuration is usable.
func (c TransportConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.AckBytes <= 0 || c.InitCwnd < 1 || c.MaxCwnd < c.InitCwnd {
		return fmt.Errorf("packetsim: transport window/ack parameters invalid")
	}
	if c.RTOSec <= 0 {
		return fmt.Errorf("packetsim: RTO must be positive")
	}
	if c.DupAckThreshold < 1 {
		return fmt.Errorf("packetsim: dup-ack threshold must be >= 1")
	}
	if c.MaxEvents < 1000 {
		return fmt.Errorf("packetsim: MaxEvents too small")
	}
	if c.ECN && c.ECNThresholdPackets < 1 {
		return fmt.Errorf("packetsim: ECN threshold must be >= 1")
	}
	if c.MaxFlowTimeouts < 0 {
		return fmt.Errorf("packetsim: MaxFlowTimeouts must be >= 0")
	}
	if c.MultipathPaths < 0 {
		return fmt.Errorf("packetsim: MultipathPaths must be >= 0")
	}
	return nil
}

// TransportResult summarizes a reliable-transport run.
type TransportResult struct {
	// CompletedFlows counts flows that delivered all their bytes.
	CompletedFlows int
	// FailedFlows counts flows that gave up after MaxFlowTimeouts
	// consecutive timeouts (fault runs only).
	FailedFlows int
	// Retransmits counts data packets sent more than once.
	Retransmits int
	// Reroutes counts per-flow route recompilations around failures.
	Reroutes int
	// DroppedFault and DroppedStale count packets lost to dead components
	// and to route changes while in flight (fault runs only).
	DroppedFault, DroppedStale int
	// Failovers counts fast failovers (fault-epoch or dup-ACK triggered
	// path changes that skipped the RTO wait); PathSwitches counts every
	// scoreboard activation including RTO-driven ones and reverts;
	// ProbeSuccesses and ProbeFailures count probation re-probe outcomes
	// (multipath runs only).
	Failovers, PathSwitches       int
	ProbeSuccesses, ProbeFailures int
	// ECNMarks counts congestion marks applied (ECN mode only).
	ECNMarks int
	// MeanFCTSec, P99FCTSec, MakespanSec summarize completion times of the
	// completed flows.
	MeanFCTSec, P99FCTSec, MakespanSec float64
	// GoodputBps is unique payload bytes delivered divided by the makespan.
	GoodputBps float64
}

// Instrument names registered on TransportConfig.Link.Metrics by
// RunTransport. Queue-depth observations reuse MetricQueueDepth.
const (
	MetricRetransmits    = "transport_retransmits"
	MetricECNMarks       = "transport_ecn_marks"
	MetricCompletedFlows = "transport_completed_flows"
	MetricTransportDrops = "transport_dropped_droptail"
)

// tflow is the per-flow sender/receiver state. Flows live in one flat slice
// per run; the forward node path and compiled per-hop link resources alias
// the run's shared routePlan. The reverse (ACK) direction needs no
// materialized path: node i of the reverse path is fwd[len-1-i] and the
// resource of reverse hop i is res[len-2-i]^1 (the paired direction of the
// mirrored forward hop).
type tflow struct {
	fwd   topology.Path
	res   []int32 // forward per-hop link resources (len(fwd)-1)
	total int     // packets to deliver

	// Sender.
	nextSend int
	acked    int // cumulative: all seq < acked are delivered
	dupAcks  int
	inflight int
	cwnd     float64
	ssthresh float64
	rto      float64
	timerGen int32
	done     bool
	start    float64 // arrival time
	finish   float64 // absolute completion time

	// Fault-run state. routeEpoch versions the flow's compiled route:
	// every data/ACK packet is stamped with it at send time, and a packet
	// whose stamp no longer matches is stale (its path no longer exists)
	// and silently lost. planEpoch records the fault epoch the route was
	// last validated against, so a timeout recompiles at most once per
	// failure-set change. timeouts counts consecutive RTOs without
	// progress; aborted marks a flow that gave up.
	routeEpoch int32
	planEpoch  int32
	timeouts   int
	aborted    bool
	started    bool // the flow's start event has fired

	// Multipath scoreboard (multipath.go; nil alts when the layer is off).
	// alts[0] aliases the shared routePlan primary; cur is the active index,
	// -1 after falling off the scoreboard onto a RouteAvoiding recompile.
	// probing marks benched paths awaiting a probe; probeGen invalidates
	// superseded probe events; backoff is each path's next probation length.
	alts     []pathAlt
	cur      int
	probing  []bool
	probeGen []int32
	backoff  []float64

	// Receiver.
	rcvNext int
	buffer  map[int]bool // out-of-order packets held, allocated on first use
	rcvCE   bool         // a congestion mark awaits echoing

	// ECN sender state: ignore echoes until this seq is acked (one window
	// reduction per window of data).
	ecnHoldUntil int
}

// tevent kinds. Timer events carry the timer generation in gen; data and
// ACK arrivals carry the data sequence / cumulative ack in seq, their path
// position in idx, and the sending flow's route epoch in gen. Fault events
// carry the fault-plan index in seq. Probe events carry the scoreboard path
// index in seq and the probe generation in gen. Wake events (TransportEngine
// callbacks, driver.go) carry the callback slot in seq.
const (
	tevData = iota
	tevAck
	tevTimer
	tevStart
	tevFault
	tevProbe
	tevWake
)

// tevent is an unboxed transport event: a data or ACK packet reaching
// position idx of its path, a retransmission timer, a flow start, or a
// fault-plan transition. One 16-byte value replaces the old engine's
// heap-allocated tpkt plus boxed container/heap entry.
type tevent struct {
	flow int32
	seq  int32 // data sequence / cumulative ack (tevData, tevAck); plan index (tevFault)
	gen  int32 // timer generation (tevTimer); route epoch (tevData, tevAck)
	idx  int16 // position along the packet's path
	kind uint8
	ce   bool // congestion experienced (data) / echoed (ACKs)
}

// transportRun is the mutable simulation state.
type transportRun struct {
	cfg    TransportConfig
	flows  []tflow
	q      eventq.Queue[tevent]
	ord    int64
	now    float64
	events int64

	linkFree   []float64
	retransmit int
	ecnMarks   int

	// Fault-run state: the live failure view/epoch, the structure's
	// fault-tolerant router for recompiles (nil if not implemented), and
	// the graph for flattening rerouted paths into link resources.
	fs          *faultState
	frouter     topology.FaultRouter
	g           *graph.Graph
	net         *topology.Network
	reroutes    int
	faultDrops  int
	staleDrops  int
	failedFlows int

	// Multipath state (multipath.go): the path cap (0 = layer off) and the
	// failover/probe tallies.
	mpK          int
	failovers    int
	pathSwitches int
	probeOK      int
	probeFail    int

	// Closed-loop state (driver.go). Terminal-flow notifications are staged
	// on doneq during event handling and dispatched between events: onAck
	// and onTimer hold *tflow pointers into r.flows, which an OnFlowDone
	// callback injecting new flows would invalidate. wakes holds Schedule
	// callbacks by slot (tevWake events carry the slot in seq); wakeFree
	// recycles slots so long closed-loop runs don't grow the table.
	doneq    []flowDone
	wakes    []func(nowSec float64)
	wakeFree []int32

	// Hoisted nil-able instruments (see TransportConfig.Link.Metrics).
	cRtx, cECN, cDone, cDrops              *obs.Counter
	cFault, cStale, cReroute, cFailed      *obs.Counter
	cDataSent, cDataArr, cAckSent, cAckArr *obs.Counter
	cFailover, cSwitch                     *obs.Counter
	cProbeOK, cProbeFail                   *obs.Counter
	cPathBytes                             []*obs.Counter
	hQueue                                 *obs.Histogram
	tracer                                 *obs.Tracer
	st                                     seriesTracks
}

// flowDone is one staged terminal-flow notification (see doneq).
type flowDone struct {
	flow      int32
	at        float64
	completed bool
}

// push enqueues ev with the next ordinal, preserving the reference engine's
// push-order tie-break.
func (r *transportRun) push(t float64, ev tevent) {
	r.ord++
	r.q.Push(t, r.ord, ev)
}

// newTransportRun builds the mutable run state shared by RunTransport and
// the closed-loop TransportEngine: hoisted instruments, the fault state with
// its timed transition events, and the multipath tallies. numRes is the
// linkFree table size (2 * NumEdges). The caller supplies flows.
func newTransportRun(t topology.Topology, cfg TransportConfig, numRes int) (*transportRun, error) {
	run := &transportRun{
		cfg:       cfg,
		linkFree:  make([]float64, numRes),
		g:         t.Network().Graph(),
		net:       t.Network(),
		cRtx:      cfg.Link.Metrics.Counter(MetricRetransmits),
		cECN:      cfg.Link.Metrics.Counter(MetricECNMarks),
		cDone:     cfg.Link.Metrics.Counter(MetricCompletedFlows),
		cDrops:    cfg.Link.Metrics.Counter(MetricTransportDrops),
		cFault:    cfg.Link.Metrics.Counter(MetricTransportFaultDrops),
		cStale:    cfg.Link.Metrics.Counter(MetricTransportStaleDrops),
		cReroute:  cfg.Link.Metrics.Counter(MetricReroutes),
		cFailed:   cfg.Link.Metrics.Counter(MetricFailedFlows),
		cDataSent: cfg.Link.Metrics.Counter(MetricDataSent),
		cDataArr:  cfg.Link.Metrics.Counter(MetricDataArrived),
		cAckSent:  cfg.Link.Metrics.Counter(MetricAckSent),
		cAckArr:   cfg.Link.Metrics.Counter(MetricAckArrived),
		hQueue:    cfg.Link.Metrics.Histogram(MetricQueueDepth),
		tracer:    cfg.Link.Trace,
		st:        newSeriesTracks(cfg.Link.Series),
	}
	if cfg.Faults != nil {
		var err error
		run.fs, err = newFaultState(cfg.Faults, t.Network(), cfg.Timeline, cfg.Link.Metrics, cfg.Link.Trace)
		if err != nil {
			return nil, err
		}
		run.frouter, _ = t.(topology.FaultRouter)
		// Fault events carry negative keys so a transition at time T applies
		// before any packet event at T, in plan order.
		for i, fe := range cfg.Faults.Events {
			run.q.Push(fe.TimeSec, int64(i)-int64(len(cfg.Faults.Events)),
				tevent{kind: tevFault, seq: int32(i)})
		}
	}
	if cfg.Multipath && cfg.Faults != nil {
		run.mpK = cfg.MultipathPaths
		if run.mpK <= 0 {
			run.mpK = DefaultMultipathPaths
		}
		run.cFailover = cfg.Link.Metrics.Counter(MetricFailovers)
		run.cSwitch = cfg.Link.Metrics.Counter(MetricPathSwitches)
		run.cProbeOK = cfg.Link.Metrics.Counter(MetricProbeSuccess)
		run.cProbeFail = cfg.Link.Metrics.Counter(MetricProbeFailure)
		run.cPathBytes = make([]*obs.Counter, run.mpK+1)
		for j := range run.cPathBytes {
			run.cPathBytes[j] = cfg.Link.Metrics.Counter(pathGoodputMetric(j, run.mpK))
		}
	}
	return run, nil
}

// RunTransport simulates the workload with reliable Reno-like flows over the
// structure's routed paths (data forward, ACKs on the reversed path).
//
// Like Run it drives value events through an eventq.Queue over routes
// compiled (and cached) once per workload; the reference engine in
// reference.go pins its results exactly.
func RunTransport(t topology.Topology, flows []traffic.Flow, cfg TransportConfig) (TransportResult, error) {
	if err := cfg.Validate(); err != nil {
		return TransportResult{}, err
	}
	plan, err := planFor(t, flows)
	if err != nil {
		return TransportResult{}, err
	}
	run, err := newTransportRun(t, cfg, plan.numRes)
	if err != nil {
		return TransportResult{}, err
	}
	var mpPlan *multipathPlan
	if run.mpK > 0 {
		if mpPlan, err = plan.multipathFor(t, run.mpK); err != nil {
			return TransportResult{}, err
		}
	}
	for i, f := range flows {
		if len(plan.paths[i]) < 2 {
			continue // local flow: nothing to transport
		}
		run.flows = append(run.flows, tflow{
			fwd:      plan.paths[i],
			res:      plan.flowRes(i),
			total:    int((f.Bytes + int64(cfg.Link.MTU) - 1) / int64(cfg.Link.MTU)),
			cwnd:     cfg.InitCwnd,
			ssthresh: cfg.MaxCwnd,
			rto:      cfg.RTOSec,
			start:    f.StartSec,
		})
		if mpPlan != nil {
			fl := &run.flows[len(run.flows)-1]
			fl.alts = mpPlan.alts[i]
			fl.probing = make([]bool, len(fl.alts))
			fl.probeGen = make([]int32, len(fl.alts))
			fl.backoff = make([]float64, len(fl.alts))
			for j := range fl.backoff {
				fl.backoff[j] = cfg.RTOSec
			}
		}
		// Flows open at their arrival time.
		run.push(f.StartSec, tevent{flow: int32(len(run.flows) - 1), kind: tevStart})
	}

	if err := run.drain(); err != nil {
		return TransportResult{}, err
	}
	return run.results(), nil
}

// drain runs the event loop to completion. Staged terminal-flow
// notifications flush between events — the only point where no handler
// holds pointers into r.flows, so OnFlowDone callbacks may inject.
func (r *transportRun) drain() error {
	for r.q.Len() > 0 {
		r.events++
		if r.events > r.cfg.MaxEvents {
			return fmt.Errorf("packetsim: transport exceeded %d events", r.cfg.MaxEvents)
		}
		now, _, ev := r.q.Pop()
		r.now = now
		switch ev.kind {
		case tevStart:
			r.flows[ev.flow].started = true
			r.pump(int(ev.flow))
		case tevTimer:
			r.onTimer(int(ev.flow), ev.gen)
		case tevFault:
			r.fs.apply(now, int(ev.seq))
			r.onFaultEvent()
		case tevProbe:
			r.onProbe(int(ev.flow), int(ev.seq), ev.gen)
		case tevWake:
			r.onWake(int(ev.seq))
		default:
			r.onArrival(ev)
		}
		if len(r.doneq) > 0 {
			r.dispatchDone()
		}
	}
	return nil
}

// onWake fires a scheduled TransportEngine callback and recycles its slot.
func (r *transportRun) onWake(slot int) {
	fn := r.wakes[slot]
	r.wakes[slot] = nil
	r.wakeFree = append(r.wakeFree, int32(slot))
	fn(r.now)
}

// dispatchDone flushes staged OnFlowDone notifications in completion order.
// A callback may inject a local flow that completes at the current time,
// growing doneq mid-flush; the index loop picks those up in order.
func (r *transportRun) dispatchDone() {
	for i := 0; i < len(r.doneq); i++ {
		d := r.doneq[i]
		r.cfg.OnFlowDone(int(d.flow), d.at, d.completed)
	}
	r.doneq = r.doneq[:0]
}

// pump sends new data while the window allows.
func (r *transportRun) pump(flow int) {
	f := &r.flows[flow]
	if f.aborted {
		return
	}
	for !f.done && f.inflight < int(f.cwnd) && f.nextSend < f.total {
		r.sendData(flow, f.nextSend, false)
		f.nextSend++
		f.inflight++
	}
	if !f.done && f.acked < f.total {
		r.armTimer(flow)
	}
}

// armTimer (re)schedules the flow's retransmission timer.
func (r *transportRun) armTimer(flow int) {
	f := &r.flows[flow]
	f.timerGen++
	r.push(r.now+f.rto, tevent{flow: int32(flow), gen: f.timerGen, kind: tevTimer})
}

// sendData transmits one data packet from the flow's source, stamped with
// the flow's current route epoch.
func (r *transportRun) sendData(flow, seq int, rtx bool) {
	if rtx {
		r.retransmit++
		r.cRtx.Inc()
		if r.st.armed {
			r.st.rtx.Add(int64(r.now*1e9), 1)
		}
		if r.fs != nil {
			r.fs.cur.Retransmits++
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "retransmit",
				ID: int64(flow), Node: r.flows[flow].fwd[0], Hop: seq})
		}
	}
	r.transmit(tevent{flow: int32(flow), seq: int32(seq), gen: r.flows[flow].routeEpoch, kind: tevData}, 0)
}

// transmit pushes packet ev onto the link at position idx of its path;
// queueing and drops follow the same model as Run. The pushed arrival event
// is ev itself, advanced one hop (and congestion-marked when ECN fires).
func (r *transportRun) transmit(ev tevent, idx int) {
	f := &r.flows[ev.flow]
	isAck := ev.kind == tevAck
	bytes := r.cfg.Link.MTU
	last := len(f.fwd) - 2 // index of the final hop on either direction
	var res int32
	var u, v int
	if isAck {
		bytes = r.cfg.AckBytes
		res = f.res[last-idx] ^ 1
		u = f.fwd[len(f.fwd)-1-idx]
		v = f.fwd[len(f.fwd)-2-idx]
	} else {
		res = f.res[idx]
		u = f.fwd[idx]
		v = f.fwd[idx+1]
	}
	if idx == 0 {
		// Conservation probe: a packet journey begins (see MetricDataSent).
		if isAck {
			r.cAckSent.Inc()
		} else {
			r.cDataSent.Inc()
		}
	}
	if r.fs != nil && !r.fs.hopAlive(u, v, res) {
		// The hop touches a dead component: the packet is lost; the
		// transport's loss recovery (and rerouting) will handle it.
		r.faultDrops++
		r.cFault.Inc()
		r.fs.cur.DroppedFault++
		if r.st.armed {
			r.st.dropFault.Add(int64(r.now*1e9), 1)
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "drop",
				ID: int64(ev.flow), Node: u, Hop: idx, Detail: DropCauseFault})
		}
		return
	}
	txTime := float64(bytes) / r.cfg.Link.LinkBandwidthBps
	backlog := (r.linkFree[res] - r.now) / txTime
	if r.hQueue != nil {
		r.hQueue.Observe(int64(math.Max(backlog, 0)))
	}
	if r.st.armed {
		r.st.queue.Add(int64(r.now*1e9), int64(math.Max(backlog, 0)))
	}
	if backlog > float64(r.cfg.Link.QueueLimitPackets) {
		r.cDrops.Inc()
		if r.fs != nil {
			r.fs.cur.DroppedTail++
		}
		if r.st.armed {
			r.st.dropTail.Add(int64(r.now*1e9), 1)
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "drop",
				ID: int64(ev.flow), Node: u, Hop: idx, Detail: DropCauseTail})
		}
		return // drop-tail: the transport's loss recovery will handle it
	}
	if r.cfg.ECN && !isAck && backlog > float64(r.cfg.ECNThresholdPackets) && !ev.ce {
		ev.ce = true
		r.ecnMarks++
		r.cECN.Inc()
	}
	start := math.Max(r.now, r.linkFree[res])
	done := start + txTime
	r.linkFree[res] = done
	ev.idx = int16(idx + 1)
	r.push(done+r.cfg.Link.LinkDelaySec, ev)
}

// onArrival advances a packet along its path or hands it to the endpoint.
// During fault runs a packet whose route-epoch stamp is stale — its flow
// rerouted while it was in flight — is discarded first: its idx indexes a
// path that no longer exists.
func (r *transportRun) onArrival(ev tevent) {
	f := &r.flows[ev.flow]
	if r.fs != nil && ev.gen != f.routeEpoch {
		r.staleDrops++
		r.cStale.Inc()
		r.fs.cur.DroppedStale++
		if r.st.armed {
			r.st.dropStale.Add(int64(r.now*1e9), 1)
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "drop",
				ID: int64(ev.flow), Node: -1, Hop: int(ev.idx), Detail: DropCauseStale})
		}
		return
	}
	if int(ev.idx) < len(f.fwd)-1 {
		r.transmit(ev, int(ev.idx))
		return
	}
	if ev.kind == tevAck {
		r.cAckArr.Inc()
		r.onAck(int(ev.flow), int(ev.seq), ev.ce)
		return
	}
	r.cDataArr.Inc()
	r.onData(int(ev.flow), int(ev.seq), ev.ce)
}

// onData is the receiver: buffer/advance and emit a cumulative ACK, echoing
// any congestion mark. The out-of-order buffer is allocated on first
// reordering, so in-order flows never pay for it.
func (r *transportRun) onData(flow, seq int, ce bool) {
	f := &r.flows[flow]
	if seq == f.rcvNext && f.buffer == nil {
		f.rcvNext++ // in-order fast path
	} else if seq >= f.rcvNext {
		if f.buffer == nil {
			f.buffer = make(map[int]bool)
		}
		f.buffer[seq] = true
		for f.buffer[f.rcvNext] {
			delete(f.buffer, f.rcvNext)
			f.rcvNext++
		}
	}
	echo := f.rcvCE || ce
	f.rcvCE = false
	r.transmit(tevent{flow: int32(flow), seq: int32(f.rcvNext), gen: f.routeEpoch, kind: tevAck, ce: echo}, 0)
}

// onAck is the sender: slide the window, grow/shrink cwnd, pump.
func (r *transportRun) onAck(flow, ackNo int, ce bool) {
	f := &r.flows[flow]
	if f.done || f.aborted {
		return
	}
	if r.cfg.ECN && ce && ackNo >= f.ecnHoldUntil {
		// Halve once per window of data, like a single loss event but
		// without losing anything.
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.ecnHoldUntil = f.nextSend
	}
	switch {
	case ackNo > f.acked:
		newly := ackNo - f.acked
		f.acked = ackNo
		f.dupAcks = 0
		f.timeouts = 0 // forward progress: reset the give-up counter
		f.inflight -= newly
		if f.inflight < 0 {
			f.inflight = 0
		}
		if r.fs != nil {
			// Goodput accrues at the sender when bytes are acknowledged.
			r.fs.cur.Delivered += int64(newly)
			r.fs.cur.DeliveredBytes += int64(newly) * int64(r.cfg.Link.MTU)
		}
		if r.st.armed {
			r.st.goodput.Add(int64(r.now*1e9), int64(newly)*int64(r.cfg.Link.MTU))
		}
		if f.alts != nil {
			// Attribute the goodput to the path that carried it.
			idx := f.cur
			if idx < 0 {
				idx = len(r.cPathBytes) - 1
			}
			r.cPathBytes[idx].Add(int64(newly) * int64(r.cfg.Link.MTU))
		}
		for i := 0; i < newly; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++ // slow start
			} else {
				f.cwnd += 1 / f.cwnd // congestion avoidance
			}
		}
		if f.cwnd > r.cfg.MaxCwnd {
			f.cwnd = r.cfg.MaxCwnd
		}
		f.rto = r.cfg.RTOSec // fresh progress resets backoff
		if f.acked >= f.total {
			f.done = true
			f.finish = r.now
			f.timerGen++ // cancel the timer
			r.cDone.Inc()
			if r.fs != nil {
				r.fs.cur.CompletedFlows++
			}
			if r.tracer != nil {
				r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "flow_done",
					ID: int64(flow), Node: f.fwd[len(f.fwd)-1], Hop: f.total})
			}
			if r.cfg.OnFlowDone != nil {
				r.doneq = append(r.doneq, flowDone{flow: int32(flow), at: r.now, completed: true})
			}
			return
		}
		r.armTimer(flow)
	case ackNo == f.acked:
		f.dupAcks++
		if f.dupAcks == r.cfg.DupAckThreshold {
			if f.alts != nil && !f.fwd.Alive(r.net, r.fs.view) {
				// Fast-failover signal: duplicate ACKs while the active
				// path is dead mean the loss is a black hole, not
				// congestion — switch paths instead of retransmitting into
				// it (multipath.go).
				r.failover(flow)
			} else {
				// Fast retransmit + multiplicative decrease.
				f.ssthresh = math.Max(f.cwnd/2, 2)
				f.cwnd = f.ssthresh
				f.dupAcks = 0
				if f.inflight > 0 {
					f.inflight--
				}
				r.sendData(flow, f.acked, true)
			}
		}
	}
	r.pump(flow)
}

// onTimer fires a retransmission timeout: collapse the window, assume the
// pipe drained, resend the oldest unacked packet with backed-off RTO.
// During fault runs a timeout is also the reroute trigger — retransmitting
// into a black hole is pointless, so if the failure set changed since the
// route was last checked the flow recompiles it first — and the give-up
// point: after MaxFlowTimeouts consecutive timeouts without progress the
// flow aborts, letting the run terminate despite permanently dead flows.
func (r *transportRun) onTimer(flow int, gen int32) {
	f := &r.flows[flow]
	if f.done || f.aborted || gen != f.timerGen {
		return // stale timer
	}
	if r.fs != nil {
		f.timeouts++
		if r.cfg.MaxFlowTimeouts > 0 && f.timeouts >= r.cfg.MaxFlowTimeouts {
			f.aborted = true
			r.failedFlows++
			r.cFailed.Inc()
			if r.tracer != nil {
				r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "flow_abort",
					ID: int64(flow), Node: f.fwd[0], Hop: f.acked})
			}
			if r.cfg.OnFlowDone != nil {
				r.doneq = append(r.doneq, flowDone{flow: int32(flow), at: r.now})
			}
			return // no rearm: the flow's remaining events drain
		}
		if f.planEpoch != r.fs.epoch {
			r.reroute(flow)
		}
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inflight = 1
	f.dupAcks = 0
	f.rto = math.Min(f.rto*2, 64*r.cfg.RTOSec)
	r.sendData(flow, f.acked, true)
	r.armTimer(flow)
}

// reroute revalidates a flow's route against the current failure view: if
// the compiled path still lives the epoch stamp is simply refreshed; if it
// died and the structure has a fault-tolerant router, the flow recompiles a
// path avoiding every dead component and bumps its route epoch, orphaning
// (as stale) whatever was in flight on the old path. The new resources are
// a fresh slice — the cached routePlan shared across runs is never mutated.
// The reverse (ACK) direction needs no separate route: it uses resource^1
// of each mirrored forward hop, which survives rerouting by construction.
func (r *transportRun) reroute(flow int) {
	f := &r.flows[flow]
	f.planEpoch = r.fs.epoch
	if topology.Path(f.fwd).Alive(r.net, r.fs.view) {
		return // current route survived this failure set
	}
	if f.alts != nil {
		// Scoreboard first: bench the dead path and activate the best
		// precompiled alternative; RouteAvoiding below stays the last
		// resort for a fully dead scoreboard (multipath.go).
		r.probation(flow, f.cur)
		if j := r.pickPath(flow); j >= 0 {
			r.switchPath(flow, j)
			return
		}
	}
	if r.frouter == nil {
		return // no fault router: keep timing out until repair
	}
	p, err := r.frouter.RouteAvoiding(f.fwd[0], f.fwd[len(f.fwd)-1], r.fs.view)
	if err != nil || len(p) < 2 {
		// Unroutable under this failure set (the router is deterministic, so
		// retrying against the same view is pointless): back off until the
		// next epoch change revalidates.
		return
	}
	res, err := appendPathRes(make([]int32, 0, len(p)-1), r.g, p)
	if err != nil {
		return
	}
	f.fwd, f.res = p, res
	if f.alts != nil {
		f.cur = -1 // off the scoreboard; probes can pull it back on
	}
	f.routeEpoch++
	r.reroutes++
	r.cReroute.Inc()
	r.fs.cur.Reroutes++
	if r.st.armed {
		r.st.reroute.Add(int64(r.now*1e9), 1)
	}
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "reroute",
			ID: int64(flow), Node: f.fwd[0], Hop: len(p) - 1})
	}
}

// results aggregates the run.
func (r *transportRun) results() TransportResult {
	var res TransportResult
	res.Retransmits = r.retransmit
	res.ECNMarks = r.ecnMarks
	res.Reroutes = r.reroutes
	res.DroppedFault = r.faultDrops
	res.DroppedStale = r.staleDrops
	res.FailedFlows = r.failedFlows
	res.Failovers = r.failovers
	res.PathSwitches = r.pathSwitches
	res.ProbeSuccesses = r.probeOK
	res.ProbeFailures = r.probeFail
	fcts := make([]float64, 0, len(r.flows))
	var payload int64
	for i := range r.flows {
		f := &r.flows[i]
		if !f.done {
			continue
		}
		res.CompletedFlows++
		// FCT is arrival-to-completion; the makespan is the absolute finish.
		fcts = append(fcts, f.finish-f.start)
		payload += int64(f.total) * int64(r.cfg.Link.MTU)
		if f.finish > res.MakespanSec {
			res.MakespanSec = f.finish
		}
	}
	if len(fcts) > 0 {
		sum := 0.0
		for _, t := range fcts {
			sum += t
		}
		res.MeanFCTSec = sum / float64(len(fcts))
		res.P99FCTSec = quantile(fcts, 0.99)
	}
	if res.MakespanSec > 0 {
		res.GoodputBps = float64(payload) / res.MakespanSec
	}
	if r.fs != nil {
		r.fs.finish(res.MakespanSec)
	}
	return res
}
