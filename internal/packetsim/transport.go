package packetsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TransportConfig parameterizes the Reno-like reliable transport that runs
// on top of the packet-level link model: slow start, congestion avoidance,
// fast retransmit on triple duplicate ACKs, and timeout recovery with
// exponential backoff. The original evaluation's simulations carry TCP
// flows; this reproduces their qualitative behaviour (losses become delay,
// not vanished traffic).
type TransportConfig struct {
	// Link is the underlying link/queue model.
	Link Config
	// AckBytes is the size of ACK packets (default 64).
	AckBytes int
	// InitCwnd and MaxCwnd bound the congestion window in packets.
	InitCwnd, MaxCwnd float64
	// RTOSec is the (fixed, deterministic) base retransmission timeout.
	RTOSec float64
	// DupAckThreshold triggers fast retransmit (default 3).
	DupAckThreshold int
	// MaxEvents aborts pathological runs (default 50e6).
	MaxEvents int64
	// ECN enables explicit congestion notification: packets enqueued behind
	// more than ECNThresholdPackets are marked instead of waiting for a
	// drop; the receiver echoes the mark and the sender halves its window
	// at most once per window of data (classic ECN-TCP). Congestion then
	// costs window reductions, not retransmissions.
	ECN                 bool
	ECNThresholdPackets int
}

// DefaultTransport returns a GbE NewReno-ish configuration.
func DefaultTransport() TransportConfig {
	// MaxCwnd sits below the default queue depth so a lone flow never
	// overruns its own bottleneck buffer (the data-center BDP here is about
	// one packet; the window only fills queues). RTO is 1 ms, the usual
	// DCN-simulation value.
	return TransportConfig{
		Link:                Default(),
		AckBytes:            64,
		InitCwnd:            2,
		MaxCwnd:             64,
		RTOSec:              1e-3,
		DupAckThreshold:     3,
		MaxEvents:           50e6,
		ECNThresholdPackets: 20,
	}
}

// Validate reports whether the configuration is usable.
func (c TransportConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.AckBytes <= 0 || c.InitCwnd < 1 || c.MaxCwnd < c.InitCwnd {
		return fmt.Errorf("packetsim: transport window/ack parameters invalid")
	}
	if c.RTOSec <= 0 {
		return fmt.Errorf("packetsim: RTO must be positive")
	}
	if c.DupAckThreshold < 1 {
		return fmt.Errorf("packetsim: dup-ack threshold must be >= 1")
	}
	if c.MaxEvents < 1000 {
		return fmt.Errorf("packetsim: MaxEvents too small")
	}
	if c.ECN && c.ECNThresholdPackets < 1 {
		return fmt.Errorf("packetsim: ECN threshold must be >= 1")
	}
	return nil
}

// TransportResult summarizes a reliable-transport run.
type TransportResult struct {
	// CompletedFlows counts flows that delivered all their bytes.
	CompletedFlows int
	// Retransmits counts data packets sent more than once.
	Retransmits int
	// ECNMarks counts congestion marks applied (ECN mode only).
	ECNMarks int
	// MeanFCTSec, P99FCTSec, MakespanSec summarize completion times of the
	// completed flows.
	MeanFCTSec, P99FCTSec, MakespanSec float64
	// GoodputBps is unique payload bytes delivered divided by the makespan.
	GoodputBps float64
}

// Instrument names registered on TransportConfig.Link.Metrics by
// RunTransport. Queue-depth observations reuse MetricQueueDepth.
const (
	MetricRetransmits    = "transport_retransmits"
	MetricECNMarks       = "transport_ecn_marks"
	MetricCompletedFlows = "transport_completed_flows"
	MetricTransportDrops = "transport_dropped_droptail"
)

// tflow is the per-flow sender/receiver state.
type tflow struct {
	fwd, rev topology.Path
	total    int // packets to deliver

	// Sender.
	nextSend int
	acked    int // cumulative: all seq < acked are delivered
	dupAcks  int
	inflight int
	cwnd     float64
	ssthresh float64
	rto      float64
	timerGen int64
	done     bool
	start    float64 // arrival time
	finish   float64 // absolute completion time

	// Receiver.
	rcvNext int
	buffer  map[int]bool // out-of-order packets held
	rcvCE   bool         // a congestion mark awaits echoing

	// ECN sender state: ignore echoes until this seq is acked (one window
	// reduction per window of data).
	ecnHoldUntil int
}

// tpkt is a transport packet in flight.
type tpkt struct {
	flow  int
	seq   int // data sequence, or cumulative ack number for ACKs
	isAck bool
	rtx   bool
	ce    bool // congestion experienced (set on data) / echoed (on ACKs)
}

// startGen marks a flow-start event rather than a retransmission timer.
const startGen = -1

// tevent is either a packet arrival (pkt != nil), a flow timer, or a flow
// start (gen == startGen).
type tevent struct {
	t    float64
	ord  int64
	pkt  *tpkt
	idx  int // position along the packet's path
	flow int // timer owner when pkt == nil
	gen  int64
}

type teventHeap []tevent

func (h teventHeap) Len() int { return len(h) }
func (h teventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].ord < h[j].ord
}
func (h teventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *teventHeap) Push(x any)   { *h = append(*h, x.(tevent)) }
func (h *teventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// transportRun is the mutable simulation state.
type transportRun struct {
	cfg    TransportConfig
	net    *topology.Network
	flows  []*tflow
	h      teventHeap
	ord    int64
	now    float64
	events int64

	linkFree   []float64
	retransmit int
	ecnMarks   int

	// Hoisted nil-able instruments (see TransportConfig.Link.Metrics).
	cRtx, cECN, cDone, cDrops *obs.Counter
	hQueue                    *obs.Histogram
	tracer                    *obs.Tracer
}

// RunTransport simulates the workload with reliable Reno-like flows over the
// structure's routed paths (data forward, ACKs on the reversed path).
func RunTransport(t topology.Topology, flows []traffic.Flow, cfg TransportConfig) (TransportResult, error) {
	if err := cfg.Validate(); err != nil {
		return TransportResult{}, err
	}
	paths, err := flowsimRoute(t, flows)
	if err != nil {
		return TransportResult{}, err
	}
	run := &transportRun{
		cfg:      cfg,
		net:      t.Network(),
		linkFree: make([]float64, 2*t.Network().Graph().NumEdges()),
		cRtx:     cfg.Link.Metrics.Counter(MetricRetransmits),
		cECN:     cfg.Link.Metrics.Counter(MetricECNMarks),
		cDone:    cfg.Link.Metrics.Counter(MetricCompletedFlows),
		cDrops:   cfg.Link.Metrics.Counter(MetricTransportDrops),
		hQueue:   cfg.Link.Metrics.Histogram(MetricQueueDepth),
		tracer:   cfg.Link.Trace,
	}
	for i, f := range flows {
		if len(paths[i]) < 2 {
			continue // local flow: nothing to transport
		}
		rev := make(topology.Path, len(paths[i]))
		for j, node := range paths[i] {
			rev[len(paths[i])-1-j] = node
		}
		fl := &tflow{
			fwd:      paths[i],
			rev:      rev,
			total:    int((f.Bytes + int64(cfg.Link.MTU) - 1) / int64(cfg.Link.MTU)),
			cwnd:     cfg.InitCwnd,
			ssthresh: cfg.MaxCwnd,
			rto:      cfg.RTOSec,
			start:    f.StartSec,
			buffer:   make(map[int]bool),
		}
		run.flows = append(run.flows, fl)
		// Flows open at their arrival time (a start event, gen startGen).
		run.ord++
		run.h = append(run.h, tevent{t: f.StartSec, ord: run.ord, flow: len(run.flows) - 1, gen: startGen})
	}
	heap.Init(&run.h)

	for run.h.Len() > 0 {
		run.events++
		if run.events > cfg.MaxEvents {
			return TransportResult{}, fmt.Errorf("packetsim: transport exceeded %d events", cfg.MaxEvents)
		}
		ev := heap.Pop(&run.h).(tevent)
		run.now = ev.t
		if ev.pkt == nil {
			if ev.gen == startGen {
				run.pump(ev.flow)
			} else {
				run.onTimer(ev.flow, ev.gen)
			}
			continue
		}
		run.onArrival(ev)
	}

	return run.results(), nil
}

// pump sends new data while the window allows.
func (r *transportRun) pump(flow int) {
	f := r.flows[flow]
	for !f.done && f.inflight < int(f.cwnd) && f.nextSend < f.total {
		r.sendData(flow, f.nextSend, false)
		f.nextSend++
		f.inflight++
	}
	if !f.done && f.acked < f.total {
		r.armTimer(flow)
	}
}

// armTimer (re)schedules the flow's retransmission timer.
func (r *transportRun) armTimer(flow int) {
	f := r.flows[flow]
	f.timerGen++
	r.ord++
	heap.Push(&r.h, tevent{t: r.now + f.rto, ord: r.ord, flow: flow, gen: f.timerGen})
}

// sendData transmits one data packet from the flow's source.
func (r *transportRun) sendData(flow, seq int, rtx bool) {
	if rtx {
		r.retransmit++
		r.cRtx.Inc()
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "retransmit",
				ID: int64(flow), Node: r.flows[flow].fwd[0], Hop: seq})
		}
	}
	r.transmit(&tpkt{flow: flow, seq: seq, rtx: rtx}, r.flows[flow].fwd, 0, r.cfg.Link.MTU)
}

// transmit pushes a packet onto the first link of path[idx:]; queueing and
// drops follow the same model as Run.
func (r *transportRun) transmit(p *tpkt, path topology.Path, idx, bytes int) {
	u, v := path[idx], path[idx+1]
	g := r.net.Graph()
	e := g.EdgeBetween(u, v)
	res := 2 * e
	if u > v {
		res++
	}
	txTime := float64(bytes) / r.cfg.Link.LinkBandwidthBps
	backlog := (r.linkFree[res] - r.now) / txTime
	if r.hQueue != nil {
		r.hQueue.Observe(int64(math.Max(backlog, 0)))
	}
	if backlog > float64(r.cfg.Link.QueueLimitPackets) {
		r.cDrops.Inc()
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "drop",
				ID: int64(p.flow), Node: u, Hop: idx, Detail: "droptail"})
		}
		return // drop-tail: the transport's loss recovery will handle it
	}
	if r.cfg.ECN && !p.isAck && backlog > float64(r.cfg.ECNThresholdPackets) && !p.ce {
		p.ce = true
		r.ecnMarks++
		r.cECN.Inc()
	}
	start := math.Max(r.now, r.linkFree[res])
	done := start + txTime
	r.linkFree[res] = done
	r.ord++
	heap.Push(&r.h, tevent{t: done + r.cfg.Link.LinkDelaySec, ord: r.ord, pkt: p, idx: idx + 1})
}

// onArrival advances a packet along its path or hands it to the endpoint.
func (r *transportRun) onArrival(ev tevent) {
	p := ev.pkt
	f := r.flows[p.flow]
	path := f.fwd
	bytes := r.cfg.Link.MTU
	if p.isAck {
		path = f.rev
		bytes = r.cfg.AckBytes
	}
	if ev.idx < len(path)-1 {
		r.transmit(p, path, ev.idx, bytes)
		return
	}
	if p.isAck {
		r.onAck(p.flow, p.seq, p.ce)
		return
	}
	r.onData(p.flow, p.seq, p.ce)
}

// onData is the receiver: buffer/advance and emit a cumulative ACK, echoing
// any congestion mark.
func (r *transportRun) onData(flow, seq int, ce bool) {
	f := r.flows[flow]
	if seq >= f.rcvNext {
		f.buffer[seq] = true
		for f.buffer[f.rcvNext] {
			delete(f.buffer, f.rcvNext)
			f.rcvNext++
		}
	}
	echo := f.rcvCE || ce
	f.rcvCE = false
	r.transmit(&tpkt{flow: flow, seq: f.rcvNext, isAck: true, ce: echo}, f.rev, 0, r.cfg.AckBytes)
}

// onAck is the sender: slide the window, grow/shrink cwnd, pump.
func (r *transportRun) onAck(flow, ackNo int, ce bool) {
	f := r.flows[flow]
	if f.done {
		return
	}
	if r.cfg.ECN && ce && ackNo >= f.ecnHoldUntil {
		// Halve once per window of data, like a single loss event but
		// without losing anything.
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.ecnHoldUntil = f.nextSend
	}
	switch {
	case ackNo > f.acked:
		newly := ackNo - f.acked
		f.acked = ackNo
		f.dupAcks = 0
		f.inflight -= newly
		if f.inflight < 0 {
			f.inflight = 0
		}
		for i := 0; i < newly; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++ // slow start
			} else {
				f.cwnd += 1 / f.cwnd // congestion avoidance
			}
		}
		if f.cwnd > r.cfg.MaxCwnd {
			f.cwnd = r.cfg.MaxCwnd
		}
		f.rto = r.cfg.RTOSec // fresh progress resets backoff
		if f.acked >= f.total {
			f.done = true
			f.finish = r.now
			f.timerGen++ // cancel the timer
			r.cDone.Inc()
			if r.tracer != nil {
				r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "flow_done",
					ID: int64(flow), Node: f.fwd[len(f.fwd)-1], Hop: f.total})
			}
			return
		}
		r.armTimer(flow)
	case ackNo == f.acked:
		f.dupAcks++
		if f.dupAcks == r.cfg.DupAckThreshold {
			// Fast retransmit + multiplicative decrease.
			f.ssthresh = math.Max(f.cwnd/2, 2)
			f.cwnd = f.ssthresh
			f.dupAcks = 0
			if f.inflight > 0 {
				f.inflight--
			}
			r.sendData(flow, f.acked, true)
		}
	}
	r.pump(flow)
}

// onTimer fires a retransmission timeout: collapse the window, assume the
// pipe drained, resend the oldest unacked packet with backed-off RTO.
func (r *transportRun) onTimer(flow int, gen int64) {
	f := r.flows[flow]
	if f.done || gen != f.timerGen {
		return // stale timer
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inflight = 1
	f.dupAcks = 0
	f.rto = math.Min(f.rto*2, 64*r.cfg.RTOSec)
	r.sendData(flow, f.acked, true)
	r.armTimer(flow)
}

// results aggregates the run.
func (r *transportRun) results() TransportResult {
	var res TransportResult
	res.Retransmits = r.retransmit
	res.ECNMarks = r.ecnMarks
	var fcts []float64
	var payload int64
	for _, f := range r.flows {
		if !f.done {
			continue
		}
		res.CompletedFlows++
		// FCT is arrival-to-completion; the makespan is the absolute finish.
		fcts = append(fcts, f.finish-f.start)
		payload += int64(f.total) * int64(r.cfg.Link.MTU)
		if f.finish > res.MakespanSec {
			res.MakespanSec = f.finish
		}
	}
	if len(fcts) > 0 {
		sum := 0.0
		for _, t := range fcts {
			sum += t
		}
		res.MeanFCTSec = sum / float64(len(fcts))
		sort.Float64s(fcts)
		res.P99FCTSec = fcts[(len(fcts)*99)/100]
	}
	if res.MakespanSec > 0 {
		res.GoodputBps = float64(payload) / res.MakespanSec
	}
	return res
}
