// Proactive multipath failover for the transport engine. Structures
// implementing topology.MultipathRouter expose multiple internally
// vertex-disjoint paths per server pair; this file compiles them into the
// engine's flat link-resource form up front (cached on the routePlan, so
// sweeps pay once per workload) and defines the per-flow scoreboard the
// event loop consults: on a fast-failover signal — a fault-epoch transition
// touching the active path, or duplicate ACKs while it is dead — the flow
// switches to the next healthy precompiled path immediately instead of
// waiting for RTO. Failed paths enter exponential-backoff probation and are
// re-probed (tevProbe events) until repair; RTO plus RouteAvoiding remains
// the last resort when the whole scoreboard is dead.

package packetsim

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/obs"
	"repro/internal/topology"
)

// DefaultMultipathPaths is the per-flow path-set cap used when
// TransportConfig.Multipath is set and MultipathPaths is 0.
const DefaultMultipathPaths = 4

// Multipath instrument names registered on TransportConfig.Link.Metrics.
// Per-path goodput counters are named by pathGoodputMetric.
const (
	MetricFailovers    = "transport_failovers"
	MetricPathSwitches = "transport_path_switches"
	MetricProbeSuccess = "transport_probe_success"
	MetricProbeFailure = "transport_probe_failure"
)

// pathGoodputMetric names the per-path goodput counter for scoreboard index
// j of a k-path configuration; index k is the off-scoreboard RouteAvoiding
// fallback.
func pathGoodputMetric(j, k int) string {
	if j >= k {
		return "transport_path_goodput_bytes_fallback"
	}
	return "transport_path_goodput_bytes_" + strconv.Itoa(j)
}

// pathAlt is one precompiled path alternative: the node path and its per-hop
// directed link resources (the same flat form routePlan uses).
type pathAlt struct {
	fwd topology.Path
	res []int32
}

// multipathPlan holds every flow's disjoint path set. alts[flow][0] aliases
// the routePlan primary exactly, which is what keeps the armed-but-idle
// configuration byte-identical to the single-path engine; local flows have a
// nil set. Immutable once built and shared across concurrent runs.
type multipathPlan struct {
	alts [][]pathAlt
}

// multipathFor returns the plan's path sets capped at k alternatives per
// flow, compiling them on first use. Cached per k alongside the routes, so
// the sweep shape — one workload re-run across many load points — pays the
// ParallelPaths cost once.
func (p *routePlan) multipathFor(t topology.Topology, k int) (*multipathPlan, error) {
	p.mpMu.Lock()
	defer p.mpMu.Unlock()
	if mp, ok := p.mpByK[k]; ok {
		return mp, nil
	}
	mp, err := compileMultipath(t, p, k)
	if err != nil {
		return nil, err
	}
	if p.mpByK == nil {
		p.mpByK = make(map[int]*multipathPlan)
	}
	p.mpByK[k] = mp
	return mp, nil
}

// compileMultipath builds the per-flow path sets: the routePlan primary
// first (aliased, not recompiled), then up to k-1 of the structure's
// parallel paths, skipping the primary's duplicate. Structures without a
// MultipathRouter get singleton sets — the scoreboard then degenerates to
// the RouteAvoiding-only behaviour.
func compileMultipath(t topology.Topology, plan *routePlan, k int) (*multipathPlan, error) {
	mrouter, _ := t.(topology.MultipathRouter)
	g := t.Network().Graph()
	mp := &multipathPlan{alts: make([][]pathAlt, len(plan.paths))}
	for i, primary := range plan.paths {
		if len(primary) < 2 {
			continue // local flow: never transported
		}
		alts := []pathAlt{{fwd: primary, res: plan.flowRes(i)}}
		if mrouter != nil {
			for _, p := range mrouter.ParallelPaths(primary[0], primary[len(primary)-1]) {
				if len(alts) >= k {
					break
				}
				if len(p) < 2 || samePath(p, primary) {
					continue
				}
				res, err := appendPathRes(make([]int32, 0, len(p)-1), g, p)
				if err != nil {
					return nil, fmt.Errorf("packetsim: flow %d multipath: %w", i, err)
				}
				alts = append(alts, pathAlt{fwd: p, res: res})
			}
		}
		mp.alts[i] = alts
	}
	return mp, nil
}

// samePath reports whether two node paths are identical.
func samePath(a, b topology.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pickPath returns the lowest-indexed scoreboard path that is alive and not
// in probation; with none, the lowest-indexed alive one (an untested path
// beats RouteAvoiding); -1 when the whole scoreboard is dead. Index order
// makes the choice deterministic and biases flows back toward the primary.
func (r *transportRun) pickPath(flow int) int {
	f := &r.flows[flow]
	benched := -1
	for j := range f.alts {
		if !f.alts[j].fwd.Alive(r.net, r.fs.view) {
			continue
		}
		if f.probing[j] {
			if benched < 0 {
				benched = j
			}
			continue
		}
		return j
	}
	return benched
}

// switchPath activates scoreboard path j: the flow's working route becomes
// the precompiled alternative and the route epoch advances, orphaning (as
// stale) whatever is still in flight on the old path.
func (r *transportRun) switchPath(flow, j int) {
	f := &r.flows[flow]
	f.cur = j
	f.fwd, f.res = f.alts[j].fwd, f.alts[j].res
	f.routeEpoch++
	r.pathSwitches++
	r.cSwitch.Inc()
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "path_switch",
			ID: int64(flow), Node: f.fwd[0], Hop: j})
	}
}

// probation benches scoreboard path j after a failure: a probe event will
// re-test it after the path's current backoff, which doubles (capped at 64
// RTO) until a probe finds it alive again.
func (r *transportRun) probation(flow, j int) {
	f := &r.flows[flow]
	if j < 0 || f.probing[j] {
		return
	}
	f.probing[j] = true
	f.probeGen[j]++
	r.push(r.now+f.backoff[j], tevent{flow: int32(flow), seq: int32(j), gen: f.probeGen[j], kind: tevProbe})
	f.backoff[j] = math.Min(f.backoff[j]*2, 64*r.cfg.RTOSec)
}

// onProbe re-tests benched path j against the live failure view. Success
// clears probation, resets the backoff, and — when j is preferred over the
// active path (lower index, or the flow is off-scoreboard) — reverts the
// flow to it. Failure extends probation with the doubled backoff.
func (r *transportRun) onProbe(flow, j int, gen int32) {
	f := &r.flows[flow]
	if f.alts == nil || gen != f.probeGen[j] || !f.probing[j] {
		return // superseded probe
	}
	if f.done || f.aborted {
		f.probing[j] = false
		return // flow over: stop probing so the run can drain
	}
	if f.alts[j].fwd.Alive(r.net, r.fs.view) {
		f.probing[j] = false
		f.probeGen[j]++
		f.backoff[j] = r.cfg.RTOSec
		r.probeOK++
		r.cProbeOK.Inc()
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "probe",
				ID: int64(flow), Node: f.alts[j].fwd[0], Hop: j, Detail: "up"})
		}
		if f.cur < 0 || j < f.cur {
			r.switchPath(flow, j)
			if f.started {
				r.restartPipe(flow)
			}
		}
		return
	}
	r.probeFail++
	r.cProbeFail.Inc()
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "probe",
			ID: int64(flow), Node: f.alts[j].fwd[0], Hop: j, Detail: "down"})
	}
	f.probeGen[j]++
	r.push(r.now+f.backoff[j], tevent{flow: int32(flow), seq: int32(j), gen: f.probeGen[j], kind: tevProbe})
	f.backoff[j] = math.Min(f.backoff[j]*2, 64*r.cfg.RTOSec)
}

// failover is the fast-signal recovery path (fault-epoch notification or
// duplicate ACKs on a dead path): recover a route via the scoreboard — or
// RouteAvoiding as last resort — and restart the pipe immediately instead
// of waiting for RTO. A flow that cannot switch (nothing alive) is left for
// the RTO/probe machinery.
func (r *transportRun) failover(flow int) {
	f := &r.flows[flow]
	if f.done || f.aborted {
		return
	}
	oldEpoch := f.routeEpoch
	r.reroute(flow)
	if f.routeEpoch == oldEpoch {
		return // nowhere to go under this failure set
	}
	r.failovers++
	r.cFailover.Inc()
	r.fs.cur.Failovers++
	if r.st.armed {
		r.st.failover.Add(int64(r.now*1e9), 1)
	}
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(r.now * 1e9), Kind: "failover",
			ID: int64(flow), Node: f.fwd[0], Hop: f.cur})
	}
	if f.started {
		r.restartPipe(flow)
	}
}

// restartPipe restarts the sender on a freshly activated path: halve the
// window (a failover is one loss event, not a full RTO collapse), write off
// the orphaned in-flight packets, resend the oldest unacked one, and refill
// the window. pump re-arms the retransmission timer.
func (r *transportRun) restartPipe(flow int) {
	f := &r.flows[flow]
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = f.ssthresh
	f.dupAcks = 0
	f.inflight = 1
	r.sendData(flow, f.acked, true)
	r.pump(flow)
}

// onFaultEvent is the proactive trigger: after every fault-plan transition,
// multipath flows whose active path now touches a dead component fail over
// immediately. Repairs ride the same scan — they bump the epoch, and benched
// paths come back via their scheduled probes.
func (r *transportRun) onFaultEvent() {
	if r.mpK == 0 {
		return
	}
	for i := range r.flows {
		f := &r.flows[i]
		if f.done || f.aborted || f.alts == nil {
			continue
		}
		if !f.fwd.Alive(r.net, r.fs.view) {
			r.failover(i)
		}
	}
}
