package packetsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

func TestTransportConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*TransportConfig)
		wantErr bool
	}{
		{name: "default", mutate: func(*TransportConfig) {}},
		{name: "bad link", mutate: func(c *TransportConfig) { c.Link.MTU = 0 }, wantErr: true},
		{name: "zero ack", mutate: func(c *TransportConfig) { c.AckBytes = 0 }, wantErr: true},
		{name: "tiny cwnd", mutate: func(c *TransportConfig) { c.InitCwnd = 0 }, wantErr: true},
		{name: "max below init", mutate: func(c *TransportConfig) { c.MaxCwnd = 1 }, wantErr: true},
		{name: "zero rto", mutate: func(c *TransportConfig) { c.RTOSec = 0 }, wantErr: true},
		{name: "zero dupack", mutate: func(c *TransportConfig) { c.DupAckThreshold = 0 }, wantErr: true},
		{name: "tiny events", mutate: func(c *TransportConfig) { c.MaxEvents = 10 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultTransport()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransportSingleFlowCompletes(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := []traffic.Flow{{Src: 0, Dst: 9, Bytes: 1 << 20}} // ~700 packets
	res, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != 1 {
		t.Fatalf("completed %d flows, want 1 (%+v)", res.CompletedFlows, res)
	}
	if res.MakespanSec <= 0 || res.GoodputBps <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
	// A lone flow on idle links should see zero losses.
	if res.Retransmits != 0 {
		t.Errorf("lone flow retransmitted %d times", res.Retransmits)
	}
}

func TestTransportGoodputNearLineRateForLoneFlow(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	cfg := DefaultTransport()
	flows := []traffic.Flow{{Src: 0, Dst: 9, Bytes: 8 << 20}}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined windows should reach a decent fraction of line rate.
	if res.GoodputBps < 0.5*cfg.Link.LinkBandwidthBps {
		t.Errorf("goodput %.2e Bps, want >= half of line rate %.2e",
			res.GoodputBps, cfg.Link.LinkBandwidthBps)
	}
}

func TestTransportIncastCompletesWithRetransmits(t *testing.T) {
	// Heavy incast with small queues loses packets, but the transport must
	// still deliver every flow (losses become retransmissions, not missing
	// data) — the qualitative difference from the raw injection model.
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	cfg := DefaultTransport()
	cfg.Link.QueueLimitPackets = 8
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	for src := 1; src < n; src++ {
		flows = append(flows, traffic.Flow{Src: src, Dst: 0, Bytes: 256 << 10})
	}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != len(flows) {
		t.Fatalf("completed %d of %d flows", res.CompletedFlows, len(flows))
	}
	if res.Retransmits == 0 {
		t.Error("tiny queues under incast produced zero retransmits")
	}
}

func TestTransportDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := []traffic.Flow{
		{Src: 0, Dst: 9, Bytes: 512 << 10},
		{Src: 3, Dst: 12, Bytes: 512 << 10},
		{Src: 7, Dst: 1, Bytes: 512 << 10},
	}
	a, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic transport:\n%+v\n%+v", a, b)
	}
}

func TestTransportSelfFlowIgnored(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	res, err := RunTransport(tp, []traffic.Flow{{Src: 0, Dst: 0, Bytes: 1 << 20}}, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != 0 || res.MakespanSec != 0 {
		t.Errorf("self flow produced %+v", res)
	}
}

func TestTransportErrors(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RunTransport(tp, []traffic.Flow{{Src: 0, Dst: 99}}, DefaultTransport()); err == nil {
		t.Error("out-of-range flow accepted")
	}
	bad := DefaultTransport()
	bad.RTOSec = -1
	if _, err := RunTransport(tp, nil, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTransportSharedBottleneckFairness(t *testing.T) {
	// Two flows into the same destination share its access link; both must
	// finish, and in roughly comparable time (no starvation).
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	flows := []traffic.Flow{
		{Src: 1, Dst: 0, Bytes: 2 << 20},
		{Src: 2, Dst: 0, Bytes: 2 << 20},
	}
	res, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != 2 {
		t.Fatalf("completed %d of 2", res.CompletedFlows)
	}
	if res.P99FCTSec > 4*res.MeanFCTSec {
		t.Errorf("starvation suspected: p99 %.3f vs mean %.3f", res.P99FCTSec, res.MeanFCTSec)
	}
}

func TestECNValidation(t *testing.T) {
	cfg := DefaultTransport()
	cfg.ECN = true
	cfg.ECNThresholdPackets = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ECN threshold accepted")
	}
}

func TestECNReducesRetransmitsUnderIncast(t *testing.T) {
	// With marking at a shallow threshold, congestion is signalled before
	// queues overflow: the ECN run must complete with fewer retransmissions
	// than the loss-driven run on the same incast.
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	for src := 1; src < n/2; src++ {
		flows = append(flows, traffic.Flow{Src: src, Dst: 0, Bytes: 512 << 10})
	}
	loss := DefaultTransport()
	loss.Link.QueueLimitPackets = 16
	lossRes, err := RunTransport(tp, flows, loss)
	if err != nil {
		t.Fatal(err)
	}
	ecn := loss
	ecn.ECN = true
	ecn.ECNThresholdPackets = 8
	ecnRes, err := RunTransport(tp, flows, ecn)
	if err != nil {
		t.Fatal(err)
	}
	if ecnRes.CompletedFlows != len(flows) || lossRes.CompletedFlows != len(flows) {
		t.Fatalf("incomplete runs: ecn %d, loss %d of %d",
			ecnRes.CompletedFlows, lossRes.CompletedFlows, len(flows))
	}
	if ecnRes.ECNMarks == 0 {
		t.Error("ECN run marked nothing")
	}
	if lossRes.Retransmits == 0 {
		t.Skip("loss run had no retransmits; scenario too gentle to compare")
	}
	if ecnRes.Retransmits >= lossRes.Retransmits {
		t.Errorf("ECN retransmits %d >= loss-driven %d", ecnRes.Retransmits, lossRes.Retransmits)
	}
}

func TestECNOffNeverMarks(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	res, err := RunTransport(tp, []traffic.Flow{{Src: 0, Dst: 9, Bytes: 1 << 20}}, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.ECNMarks != 0 {
		t.Errorf("ECN disabled but %d marks", res.ECNMarks)
	}
}

func TestTransportHonorsArrivalTimes(t *testing.T) {
	// A flow arriving at t=5ms cannot finish before 5ms.
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := []traffic.Flow{{Src: 0, Dst: 9, Bytes: 64 << 10, StartSec: 5e-3}}
	res, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != 1 {
		t.Fatalf("incomplete: %+v", res)
	}
	if res.MakespanSec < 5e-3 {
		t.Errorf("flow finished at %.4fs, before its own arrival", res.MakespanSec)
	}
}

func TestTransportPoissonLoadCompletes(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(8))
	flows, err := traffic.Poisson(tp.Network().NumServers(), 500, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Skip("no arrivals drawn")
	}
	res, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != len(flows) {
		t.Errorf("completed %d of %d Poisson flows", res.CompletedFlows, len(flows))
	}
}
