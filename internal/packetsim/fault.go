// Live fault injection for the discrete-event engines. A failure.FaultPlan
// rides the same eventq heap as packet events: every scheduled down/up
// transition pops as an event, flips the run's graph.View, and opens a new
// epoch. Packets whose next hop touches a dead component drop with the
// DropCauseFault cause; the transport engine additionally reroutes timed-out
// flows around the failures (see transport.go). With a nil plan none of this
// machinery is armed and both engines are bit-identical to their reference
// runs.

package packetsim

import (
	"fmt"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Drop causes recorded in trace events (obs.Event.Detail) and obs counters.
const (
	// DropCauseTail is a drop-tail queue overflow.
	DropCauseTail = "droptail"
	// DropCauseFault is a packet transmitted into a failed link or node.
	DropCauseFault = "fault"
	// DropCauseStale is a packet from a superseded route epoch (transport
	// only): when a flow reroutes, packets still in flight on the old path
	// are lost, exactly as if the path had blackholed them.
	DropCauseStale = "stale-route"
)

// Fault-layer instrument names registered on the run's metrics registry.
const (
	MetricDroppedFault        = "packetsim_dropped_fault"
	MetricFaultEvents         = "packetsim_fault_events"
	MetricTransportFaultDrops = "transport_dropped_fault"
	MetricTransportStaleDrops = "transport_dropped_stale"
	MetricReroutes            = "transport_reroutes"
	MetricFailedFlows         = "transport_failed_flows"
	// Conservation probes: journeys started (a packet entering the network
	// at its source) and journeys finished at an endpoint. Together with the
	// drop-cause counters these satisfy
	//   sent == arrived + dropped(tail) + dropped(fault) + dropped(stale)
	// for data and ACK packets alike; the property tests pin this.
	MetricDataSent    = "transport_data_sent"
	MetricDataArrived = "transport_data_arrived"
	MetricAckSent     = "transport_ack_sent"
	MetricAckArrived  = "transport_ack_arrived"
)

// EpochStat aggregates one fault epoch: the interval between consecutive
// fault-plan event times (the first epoch starts at 0; the last ends at the
// run's makespan). Counters cover only what happened inside the interval.
type EpochStat struct {
	StartSec, EndSec float64
	// FaultEvents is the number of plan events applied at StartSec.
	FaultEvents int
	// Delivered counts packets reaching their destination (packet engine) or
	// newly acknowledged data packets (transport engine); DeliveredBytes is
	// the corresponding payload volume.
	Delivered      int64
	DeliveredBytes int64
	// Drop-cause counts.
	DroppedTail  int64
	DroppedFault int64
	DroppedStale int64
	// Transport-only: retransmissions, route recompilations, fast multipath
	// failovers, and flows that completed during the epoch.
	Retransmits    int64
	Reroutes       int64
	Failovers      int64
	CompletedFlows int64
}

// GoodputBps returns the epoch's delivered payload rate.
func (e EpochStat) GoodputBps() float64 {
	if e.EndSec <= e.StartSec {
		return 0
	}
	return float64(e.DeliveredBytes) / (e.EndSec - e.StartSec)
}

// Availability returns delivered / (delivered + dropped) over the epoch — the
// fraction of packet journeys that survived it. 1 when nothing moved.
func (e EpochStat) Availability() float64 {
	lost := e.DroppedTail + e.DroppedFault + e.DroppedStale
	if e.Delivered+lost == 0 {
		return 1
	}
	return float64(e.Delivered) / float64(e.Delivered+lost)
}

// Timeline collects per-epoch statistics of one run. Attach a fresh Timeline
// per run via Config.Timeline / TransportConfig.Timeline; it is not safe to
// share across concurrent runs.
type Timeline struct {
	Epochs []EpochStat
}

// faultState is the live-failure state shared by both engines: the plan, the
// mutable view of currently-dead components, the epoch counter the transport
// engine's route invalidation keys on, and the accumulating epoch stats.
type faultState struct {
	plan  *failure.FaultPlan
	view  *graph.View
	epoch int32

	timeline *Timeline
	cur      EpochStat

	cEvents *obs.Counter
	tracer  *obs.Tracer
}

// newFaultState validates the plan against the network and arms the state.
func newFaultState(plan *failure.FaultPlan, net *topology.Network, timeline *Timeline, metrics *obs.Registry, tracer *obs.Tracer) (*faultState, error) {
	if err := plan.Validate(net); err != nil {
		return nil, fmt.Errorf("packetsim: %w", err)
	}
	return &faultState{
		plan:     plan,
		view:     graph.NewView(net.Graph()),
		timeline: timeline,
		cEvents:  metrics.Counter(MetricFaultEvents),
		tracer:   tracer,
	}, nil
}

// apply executes plan event i at simulated time now: the first event at a new
// boundary closes the running epoch, then the transition flips the view.
// Same-time events share one boundary (a burst is one epoch edge, not many).
func (s *faultState) apply(now float64, i int) {
	if now > s.cur.StartSec {
		s.closeEpoch(now)
	}
	s.cur.FaultEvents++
	s.epoch++
	ev := s.plan.Events[i]
	ev.Apply(s.view)
	s.cEvents.Inc()
	if s.tracer != nil {
		kind := "fault"
		if ev.Up {
			kind = "repair"
		}
		node := ev.Index
		if ev.Kind == failure.Links {
			node = -1
		}
		s.tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: kind,
			ID: int64(i), Node: node, Detail: ev.Kind.String()})
	}
}

// closeEpoch flushes the accumulating epoch as [cur.StartSec, endSec).
func (s *faultState) closeEpoch(endSec float64) {
	if s.timeline != nil {
		s.cur.EndSec = endSec
		s.timeline.Epochs = append(s.timeline.Epochs, s.cur)
	}
	s.cur = EpochStat{StartSec: endSec}
}

// finish closes the final epoch at the run's makespan (or the last fault
// event's time, whichever is later).
func (s *faultState) finish(makespanSec float64) {
	if s.timeline == nil {
		return
	}
	end := makespanSec
	if s.cur.StartSec > end {
		end = s.cur.StartSec
	}
	s.cur.EndSec = end
	s.timeline.Epochs = append(s.timeline.Epochs, s.cur)
}

// hopAlive reports whether the directed hop u->v over link resource res is
// fully alive: both endpoints up and the underlying cable (res >> 1) up.
func (s *faultState) hopAlive(u, v int, res int32) bool {
	return s.view.NodeUp(u) && s.view.NodeUp(v) && s.view.EdgeUp(int(res>>1))
}
