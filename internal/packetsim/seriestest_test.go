package packetsim

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
)

const testSeriesWindowNs = 100_000 // 100 us

// seriesPoints runs fn with a fresh armed series and returns its flattened
// points.
func seriesPoints(t *testing.T, fn func(s *obs.Series)) []obs.SeriesPoint {
	t.Helper()
	s := obs.NewSeries(testSeriesWindowNs)
	fn(s)
	return s.Points()
}

func comparePoints(t *testing.T, label string, got, want []obs.SeriesPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d series points, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: point %d = %+v, want %+v", label, i, got[i], want[i])
			return
		}
	}
}

// TestSeriesArmedKeepsResultsIdentical pins the zero-interference contract:
// arming Series (and the profiler, for sharded runs) cannot change a single
// bit of the simulation result.
func TestSeriesArmedKeepsResultsIdentical(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 64<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("packet", func(t *testing.T) {
		cfg := Default()
		cfg.Faults = plan
		plainRes, err := Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Series = obs.NewSeries(testSeriesWindowNs)
		armedRes, err := Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if armedRes != plainRes {
			t.Errorf("series armed changed Run result:\n  %+v\n  != %+v", armedRes, plainRes)
		}
	})
	t.Run("transport", func(t *testing.T) {
		cfg := DefaultTransport()
		cfg.Faults = plan
		cfg.Multipath = true
		plainRes, err := RunTransport(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Link.Series = obs.NewSeries(testSeriesWindowNs)
		armedRes, err := RunTransport(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if armedRes != plainRes {
			t.Errorf("series armed changed RunTransport result:\n  %+v\n  != %+v", armedRes, plainRes)
		}
	})
	t.Run("sharded", func(t *testing.T) {
		cfg := DefaultTransport()
		cfg.Faults = plan
		plainRes, err := RunTransportSharded(tp, flows, cfg, ShardOpts{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Link.Series = obs.NewSeries(testSeriesWindowNs)
		armedRes, err := RunTransportSharded(tp, flows, cfg,
			ShardOpts{Shards: 4, Profile: obs.NewShardProfile()})
		if err != nil {
			t.Fatal(err)
		}
		if armedRes != plainRes {
			t.Errorf("series+profile armed changed sharded result:\n  %+v\n  != %+v", armedRes, plainRes)
		}
	})
}

// TestShardSeriesEquivalenceMatrix extends the equivalence matrix to
// series-on runs: with telemetry armed, both the Result and the entire
// windowed series must stay byte-identical for every shard count. The series
// holds because every cell is a commutative fold over updates stamped with
// event times that are themselves bit-identical across shard counts.
func TestShardSeriesEquivalenceMatrix(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 17, 64<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	run := func(shards int) (Result, []obs.SeriesPoint) {
		var res Result
		pts := seriesPoints(t, func(s *obs.Series) {
			cfg := Default()
			cfg.Faults = plan
			cfg.Series = s
			var err error
			res, err = RunSharded(tp, flows, cfg,
				ShardOpts{Shards: shards, Profile: obs.NewShardProfile()})
			if err != nil {
				t.Fatal(err)
			}
		})
		return res, pts
	}
	want, wantPts := run(1)
	if want.Delivered == 0 {
		t.Fatal("oracle run delivered nothing")
	}
	if len(wantPts) == 0 {
		t.Fatal("oracle run produced no series points")
	}
	for _, s := range shardCounts[1:] {
		got, gotPts := run(s)
		if got != want {
			t.Errorf("shards=%d result %+v\n  != shards=1 %+v", s, got, want)
		}
		comparePoints(t, "shards="+itoa(s), gotPts, wantPts)
	}
}

// TestTransportShardSeriesEquivalenceMatrix is the transport-engine version,
// in the hardest mode (faults + multipath), with the profiler armed too.
func TestTransportShardSeriesEquivalenceMatrix(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 23, 256<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}

	run := func(shards int) (TransportResult, []obs.SeriesPoint) {
		var res TransportResult
		pts := seriesPoints(t, func(s *obs.Series) {
			cfg := DefaultTransport()
			cfg.Faults = plan
			cfg.Multipath = true
			cfg.Link.Series = s
			var err error
			res, err = RunTransportSharded(tp, flows, cfg,
				ShardOpts{Shards: shards, Profile: obs.NewShardProfile()})
			if err != nil {
				t.Fatal(err)
			}
		})
		return res, pts
	}
	want, wantPts := run(1)
	if want.CompletedFlows == 0 {
		t.Fatal("oracle run completed no flows")
	}
	var sawGoodput bool
	for _, pt := range wantPts {
		if pt.Track == SeriesGoodputBytes {
			sawGoodput = true
		}
	}
	if !sawGoodput {
		t.Fatal("oracle series has no goodput track")
	}
	for _, s := range shardCounts[1:] {
		got, gotPts := run(s)
		if got != want {
			t.Errorf("shards=%d result %+v\n  != shards=1 %+v", s, got, want)
		}
		comparePoints(t, "shards="+itoa(s), gotPts, wantPts)
	}
}

// TestSeriesTotalsMatchResult cross-checks the windowed series against the
// run's whole-run tallies: summing every window of a curve must reproduce
// the corresponding Result field.
func TestSeriesTotalsMatchResult(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 64<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Faults = plan
	var res Result
	pts := seriesPoints(t, func(s *obs.Series) {
		cfg.Series = s
		var err error
		res, err = Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})

	totals := map[string]int64{}
	for _, pt := range pts {
		totals[pt.Track] += pt.Sum
	}
	if got, want := totals[SeriesGoodputBytes], int64(res.Delivered)*int64(cfg.MTU); got != want {
		t.Errorf("goodput series sums to %d bytes, Result says %d", got, want)
	}
	if got, want := totals[SeriesDropTail], int64(res.Dropped); got != want {
		t.Errorf("droptail series sums to %d, Result says %d", got, want)
	}
	if got, want := totals[SeriesDropFault], int64(res.DroppedFault); got != want {
		t.Errorf("fault-drop series sums to %d, Result says %d", got, want)
	}
}

// TestShardProfiler checks the runtime profiler's structural invariants on a
// real sharded transport run: every window carries one row per shard, event
// counts reconcile with the registry's window instrument, handoff traffic
// balances (every sent event is received), and the derived summaries and
// imbalance index are sane.
func TestShardProfiler(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 23, 256<<10)
	const shards = 4

	prof := obs.NewShardProfile()
	reg := obs.NewRegistry()
	cfg := DefaultTransport()
	cfg.Link.Metrics = reg
	res, err := RunTransportSharded(tp, flows, cfg,
		ShardOpts{Shards: shards, Workers: 2, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows == 0 {
		t.Fatal("run completed no flows")
	}

	rows := prof.Windows()
	if len(rows) == 0 {
		t.Fatal("profiler recorded no windows")
	}
	if len(rows)%shards != 0 {
		t.Fatalf("%d profile rows is not a multiple of %d shards", len(rows), shards)
	}
	numWindows := len(rows) / shards
	if got := reg.Counter(MetricShardWindows).Value(); got != int64(numWindows) {
		t.Errorf("profiler saw %d windows, registry counted %d", numWindows, got)
	}

	var events, out, in, busy int64
	perWindow := map[int64]int{}
	for _, r := range rows {
		if r.Shard < 0 || r.Shard >= shards {
			t.Fatalf("row has shard %d outside [0,%d)", r.Shard, shards)
		}
		if r.BusyNs < 0 || r.WaitNs < 0 || r.Events < 0 {
			t.Fatalf("negative measurement in row %+v", r)
		}
		if r.LookaheadNs <= 0 {
			t.Errorf("window %d lookahead %d, want positive (multi-shard run)", r.Window, r.LookaheadNs)
		}
		perWindow[r.Window]++
		events += r.Events
		out += r.HandoffOut
		in += r.HandoffIn
		busy += r.BusyNs
	}
	for w, n := range perWindow {
		if n != shards {
			t.Errorf("window %d has %d rows, want %d", w, n, shards)
		}
	}
	if out != in {
		t.Errorf("handoff volumes do not balance: out %d, in %d", out, in)
	}
	if got := reg.Counter(MetricShardHandoffs).Value(); got != out {
		t.Errorf("profiler counted %d handoffs, registry counted %d", out, got)
	}
	if events == 0 || busy == 0 {
		t.Errorf("profiler totals empty: events %d, busy %d ns", events, busy)
	}
	if got := reg.Counter(MetricShardBusyNs).Value(); got != busy {
		t.Errorf("registry busy total %d, profile rows sum to %d", got, busy)
	}

	if sum := prof.Summary(); len(sum) != shards {
		t.Errorf("summary has %d shards, want %d", len(sum), shards)
	}
	if imb := prof.ImbalanceIndex(); imb < 1 || imb > shards {
		t.Errorf("imbalance index %v outside [1, %d]", imb, shards)
	}
}

// TestShardProfilerDisabledRecordsNothing: without Profile the profiler
// instruments must not even register.
func TestShardProfilerDisabledRecordsNothing(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 64<<10)
	reg := obs.NewRegistry()
	cfg := Default()
	cfg.Metrics = reg
	if _, err := RunSharded(tp, flows, cfg, ShardOpts{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricShardBusyNs || c.Name == MetricShardWaitNs {
			t.Errorf("unprofiled run registered %s", c.Name)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
