package packetsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestTraceRoundTripMonotone emits a packetsim hop trace, serializes it to
// JSONL, re-parses it, and verifies that per-packet hop indices increase one
// at a time and timestamps are monotone — the satellite contract that makes
// -trace output trustworthy for latency forensics.
func TestTraceRoundTripMonotone(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(7))
	flows := traffic.Uniform(tp.Network().NumServers(), 32, rng)

	cfg := Default()
	cfg.Trace = obs.NewTracer(1 << 20) // big enough that nothing wraps
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Dropped() != 0 {
		t.Fatalf("ring wrapped (%d dropped); enlarge the tracer", cfg.Trace.Dropped())
	}

	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events traced")
	}

	// Global order: the simulator pops events in time order, so the trace
	// itself must be time-sorted.
	for i := 1; i < len(events); i++ {
		if events[i].TimeNs < events[i-1].TimeNs {
			t.Fatalf("trace not globally time-ordered at %d: %d < %d",
				i, events[i].TimeNs, events[i-1].TimeNs)
		}
	}

	// Per-packet order: hops advance one at a time from 0, timestamps are
	// monotone, and a packet's trace ends in exactly one deliver or drop.
	type pktState struct {
		nextHop int
		lastT   int64
		ended   bool
	}
	perPkt := map[int64]*pktState{}
	var delivered, dropped int
	for i, ev := range events {
		ps, ok := perPkt[ev.ID]
		if !ok {
			ps = &pktState{lastT: -1 << 62}
			perPkt[ev.ID] = ps
		}
		if ps.ended {
			t.Fatalf("event %d: packet %d continues after its terminal event", i, ev.ID)
		}
		if ev.TimeNs < ps.lastT {
			t.Fatalf("event %d: packet %d time went backwards (%d < %d)", i, ev.ID, ev.TimeNs, ps.lastT)
		}
		ps.lastT = ev.TimeNs
		switch ev.Kind {
		case "hop":
			if ev.Hop != ps.nextHop {
				t.Fatalf("event %d: packet %d at hop %d, want %d", i, ev.ID, ev.Hop, ps.nextHop)
			}
			ps.nextHop++
		case "deliver":
			if ev.Hop != ps.nextHop {
				t.Fatalf("event %d: packet %d delivered at hop %d, want %d", i, ev.ID, ev.Hop, ps.nextHop)
			}
			ps.ended = true
			delivered++
		case "drop":
			if ev.Detail != "droptail" {
				t.Errorf("event %d: drop cause %q, want droptail", i, ev.Detail)
			}
			ps.ended = true
			dropped++
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	for id, ps := range perPkt {
		if !ps.ended {
			t.Errorf("packet %d trace never reached a terminal event", id)
		}
	}

	// The trace and the result must tell the same story, and the metrics
	// registry must agree with both.
	if delivered != res.Delivered || dropped != res.Dropped {
		t.Errorf("trace saw %d/%d delivered/dropped, result says %d/%d",
			delivered, dropped, res.Delivered, res.Dropped)
	}
	if got := cfg.Metrics.Counter(MetricDelivered).Value(); got != int64(res.Delivered) {
		t.Errorf("metrics delivered = %d, result %d", got, res.Delivered)
	}
	if got := cfg.Metrics.Counter(MetricDroppedTail).Value(); got != int64(res.Dropped) {
		t.Errorf("metrics dropped = %d, result %d", got, res.Dropped)
	}
	if got := cfg.Metrics.Histogram(MetricLatencyNs).Snapshot().Count; got != int64(res.Delivered) {
		t.Errorf("latency histogram count = %d, want %d", got, res.Delivered)
	}
}

// TestRunMetricsMatchResultUnderOverload checks the counters against the
// Result on a workload that actually drops packets.
func TestRunMetricsMatchResultUnderOverload(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	servers := tp.Network().NumServers()
	rng := rand.New(rand.NewSource(3))
	flows, err := traffic.Incast(servers, 0, servers-1, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.QueueLimitPackets = 4 // tiny buffers force drop-tail losses
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("overload scenario dropped nothing; tighten the queue")
	}
	if got := cfg.Metrics.Counter(MetricDroppedTail).Value(); got != int64(res.Dropped) {
		t.Errorf("drop counter = %d, result %d", got, res.Dropped)
	}
	qs := cfg.Metrics.Histogram(MetricQueueDepth).Snapshot()
	if qs.Count == 0 || qs.Max < int64(cfg.QueueLimitPackets) {
		t.Errorf("queue-depth histogram %+v should have seen the full queue", qs)
	}
}

// TestRunIdenticalWithAndWithoutInstrumentation pins the zero-interference
// contract: attaching metrics and tracing must not change simulation output.
func TestRunIdenticalWithAndWithoutInstrumentation(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(11))
	flows := traffic.Uniform(tp.Network().NumServers(), 64, rng)

	plain, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Metrics = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(1 << 10)
	instrumented, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Errorf("instrumentation changed the result:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
}

func benchRun(b *testing.B, cfg Config) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Uniform(tp.Network().NumServers(), 16, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunInstrumentationOff is the hot path every uninstrumented caller
// pays; compare against BenchmarkRunMetrics/BenchmarkRunTraced for the cost
// of turning telemetry on (see README "Observability" for recorded numbers).
func BenchmarkRunInstrumentationOff(b *testing.B) { benchRun(b, Default()) }

func BenchmarkRunMetrics(b *testing.B) {
	cfg := Default()
	cfg.Metrics = obs.NewRegistry()
	benchRun(b, cfg)
}

func BenchmarkRunTraced(b *testing.B) {
	cfg := Default()
	cfg.Metrics = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(0)
	benchRun(b, cfg)
}
