package packetsim

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// routePlan is a workload's routes compiled for the event loop: every flow's
// forward path flattened into directed link-resource indices, so advancing a
// packet one hop is a single slice load instead of an EdgeBetween adjacency
// scan. Plans are immutable once built and safe to share across concurrent
// runs — the parallel experiment sweeps lean on this.
type routePlan struct {
	// paths[i] is flow i's forward node path (len < 2 for a local flow).
	paths []topology.Path
	// res holds the directed link resource of every forward hop of every
	// flow, flow-major; off[i]:off[i+1] is flow i's slice. Resource r for
	// the hop u->v over edge e is 2e (u < v) or 2e+1 (u > v), matching the
	// engines' linkFree indexing. The reverse hop's resource is r^1.
	res []int32
	off []int32
	// pairs[i] is flow i's Src<<32|Dst, recorded so a cache hit can verify
	// the flows slice still describes the same endpoints.
	pairs []int64
	// numRes is 2 * NumEdges, the linkFree table size.
	numRes int

	// mpByK lazily caches the per-flow disjoint path sets (multipath.go)
	// keyed by the path cap, guarded because plans are shared across
	// concurrent sweep runs. The routes above stay immutable; this is an
	// add-only side table.
	mpMu  sync.Mutex
	mpByK map[int]*multipathPlan
}

// flowRes returns flow i's per-hop forward resources.
func (p *routePlan) flowRes(i int) []int32 { return p.res[p.off[i]:p.off[i+1]] }

// matches reports whether the plan was compiled for these flows' endpoints.
func (p *routePlan) matches(flows []traffic.Flow) bool {
	if len(flows) != len(p.pairs) {
		return false
	}
	for i := range flows {
		if p.pairs[i] != int64(flows[i].Src)<<32|int64(flows[i].Dst) {
			return false
		}
	}
	return true
}

// compileRoutes routes every flow with the structure's own algorithm and
// flattens the paths into link resources.
func compileRoutes(t topology.Topology, flows []traffic.Flow) (*routePlan, error) {
	paths, err := flowsimRoute(t, flows)
	if err != nil {
		return nil, err
	}
	g := t.Network().Graph()
	plan := &routePlan{
		paths:  paths,
		off:    make([]int32, len(flows)+1),
		pairs:  make([]int64, len(flows)),
		numRes: 2 * g.NumEdges(),
	}
	hops := 0
	for _, p := range paths {
		if len(p) >= 2 {
			hops += len(p) - 1
		}
	}
	plan.res = make([]int32, 0, hops)
	for i, p := range paths {
		plan.off[i] = int32(len(plan.res))
		plan.pairs[i] = int64(flows[i].Src)<<32 | int64(flows[i].Dst)
		var err error
		if plan.res, err = appendPathRes(plan.res, g, p); err != nil {
			return nil, fmt.Errorf("packetsim: flow %d: %w", i, err)
		}
	}
	plan.off[len(flows)] = int32(len(plan.res))
	return plan, nil
}

// appendPathRes flattens one node path into directed link resources,
// appending to dst. It backs both the whole-workload compile above and the
// per-flow recompilation a rerouting transport flow performs when its cached
// route dies: the fresh slice keeps the shared (cached) plan immutable.
func appendPathRes(dst []int32, g *graph.Graph, p topology.Path) ([]int32, error) {
	for j := 0; j+1 < len(p); j++ {
		u, v := p[j], p[j+1]
		e := g.EdgeBetween(u, v)
		if e < 0 {
			return dst, fmt.Errorf("path hop %d->%d is not a cable", u, v)
		}
		r := int32(2 * e)
		if u > v {
			r++
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// routeCacheCap bounds the plan cache; past it the cache is dropped
// wholesale (sweeps cycle through a handful of (topology, workload) pairs,
// so anything smarter than "small and flat" is wasted machinery).
const routeCacheCap = 64

type routeCacheKey struct {
	topo  topology.Topology
	first *traffic.Flow // backing-array identity
	n     int
}

var routeCache struct {
	sync.Mutex
	m map[routeCacheKey]*routePlan
}

// planFor returns the compiled routes for (t, flows), reusing a cached plan
// when the same topology and flows slice were routed before — the shape of
// an experiment sweep, which re-runs one workload across many load points.
// Identity is (topology, backing array); a hit is verified against the
// flows' endpoints so slices rebuilt in place recompile instead of aliasing
// stale routes. Mutating Bytes/StartSec between runs — how sweeps vary load
// — keeps the cached routes valid.
func planFor(t topology.Topology, flows []traffic.Flow) (*routePlan, error) {
	if len(flows) == 0 {
		return compileRoutes(t, flows)
	}
	key := routeCacheKey{topo: t, first: &flows[0], n: len(flows)}
	routeCache.Lock()
	defer routeCache.Unlock()
	if plan, ok := routeCache.m[key]; ok && plan.matches(flows) {
		return plan, nil
	}
	plan, err := compileRoutes(t, flows)
	if err != nil {
		return nil, err
	}
	if routeCache.m == nil || len(routeCache.m) >= routeCacheCap {
		routeCache.m = make(map[routeCacheKey]*routePlan, routeCacheCap)
	}
	routeCache.m[key] = plan
	return plan, nil
}
