package packetsim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// fuzzEnv is built once: fuzzing re-invokes the target thousands of times and
// the topology/workload never change, only the fault plan does.
var fuzzEnv struct {
	once  sync.Once
	topo  *core.ABCCC
	net   *topology.Network
	flows []traffic.Flow
}

func fuzzSetup() {
	fuzzEnv.once.Do(func() {
		fuzzEnv.topo = core.MustBuild(core.Config{N: 3, K: 1, P: 2})
		fuzzEnv.net = fuzzEnv.topo.Network()
		n := fuzzEnv.net.NumServers()
		flows, err := traffic.Shuffle(n, n/2, n/2, rand.New(rand.NewSource(77)))
		if err != nil {
			panic(err)
		}
		fuzzEnv.flows = sized(flows, 8<<10)
	})
}

// decodePlan turns arbitrary fuzz bytes into a valid fault plan: each
// 4-byte chunk becomes one event, with the raw values clamped into range so
// every input exercises the engine instead of tripping Validate. Byte 0 is
// the time (in 0.1 ms ticks), byte 1 picks the component class, byte 2 the
// component, byte 3 the direction.
func decodePlan(net *topology.Network, raw []byte) *failure.FaultPlan {
	plan := &failure.FaultPlan{}
	servers, switches := net.Servers(), net.Switches()
	edges := net.Graph().NumEdges()
	for i := 0; i+4 <= len(raw) && len(plan.Events) < 64; i += 4 {
		ev := failure.FaultEvent{
			TimeSec: float64(raw[i]) * 1e-4,
			Up:      raw[i+3]&1 == 1,
		}
		switch raw[i+1] % 3 {
		case 0:
			ev.Kind, ev.Index = failure.Servers, servers[int(raw[i+2])%len(servers)]
		case 1:
			ev.Kind, ev.Index = failure.Switches, switches[int(raw[i+2])%len(switches)]
		default:
			ev.Kind, ev.Index = failure.Links, int(raw[i+2])%edges
		}
		plan.Events = append(plan.Events, ev)
	}
	plan.Sort()
	return plan
}

// FuzzFaultPlanConservation feeds arbitrary fault schedules — including
// shapes Schedule never emits, like repairs of never-failed components,
// double failures, and events at time zero — through the packet engine and
// checks packet conservation: every injected packet is delivered or dropped
// with a cause, exactly once. `make fuzz-smoke` runs this for a few seconds
// in CI.
func FuzzFaultPlanConservation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 3, 0})                             // one server down, never repaired
	f.Add([]byte{5, 1, 2, 0, 20, 1, 2, 1})                 // switch down then up
	f.Add([]byte{0, 2, 7, 0, 0, 2, 7, 0, 9, 2, 7, 1})      // double link failure at t=0
	f.Add([]byte{3, 0, 1, 1, 8, 1, 0, 0, 8, 2, 5, 0})      // repair-before-fail, same-time mixed burst
	f.Add([]byte{255, 1, 9, 0, 1, 0, 0, 0, 128, 2, 40, 1}) // late + early + mid

	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzSetup()
		plan := decodePlan(fuzzEnv.net, raw)
		cfg := Default()
		cfg.Faults = plan
		cfg.Timeline = &Timeline{}
		res, err := Run(fuzzEnv.topo, fuzzEnv.flows, cfg)
		if err != nil {
			t.Fatalf("valid decoded plan rejected: %v", err)
		}
		injected := injectedPackets(fuzzEnv.flows, cfg.MTU)
		if got := res.Delivered + res.Dropped + res.DroppedFault; got != injected {
			t.Fatalf("conservation violated: delivered %d + droptail %d + fault %d != injected %d (plan %+v)",
				res.Delivered, res.Dropped, res.DroppedFault, injected, plan.Events)
		}
		for i, e := range cfg.Timeline.Epochs {
			if e.EndSec < e.StartSec {
				t.Fatalf("epoch %d runs backwards: [%v, %v)", i, e.StartSec, e.EndSec)
			}
			if i > 0 && e.StartSec != cfg.Timeline.Epochs[i-1].EndSec {
				t.Fatalf("epoch %d not contiguous", i)
			}
		}
	})
}

// FuzzMultipathConservation drives the multipath transport through arbitrary
// fault schedules: whatever sequence of failovers, path switches, probes,
// reverts and RouteAvoiding fallbacks a plan provokes, the packet-journey
// ledger — sent == arrived + dropped, per cause, data and ACKs alike — must
// hold, and the run must terminate. `make fuzz-smoke` runs this in CI.
func FuzzMultipathConservation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 1, 3, 0})                             // one switch down, never repaired
	f.Add([]byte{5, 1, 2, 0, 20, 1, 2, 1})                 // primary dies then revives (probe revert)
	f.Add([]byte{0, 1, 1, 0, 0, 1, 4, 0, 0, 1, 7, 0})      // burst at t=0: scoreboard attrition
	f.Add([]byte{3, 0, 1, 0, 8, 2, 5, 0, 40, 0, 1, 1})     // dead endpoint + link, late repair
	f.Add([]byte{255, 1, 9, 0, 1, 0, 0, 0, 128, 2, 40, 1}) // late + early + mid

	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzSetup()
		plan := decodePlan(fuzzEnv.net, raw)
		cfg := DefaultTransport()
		cfg.Faults = plan
		cfg.Multipath = true
		cfg.MultipathPaths = 3
		cfg.MaxFlowTimeouts = 6
		reg := obs.NewRegistry()
		cfg.Link.Metrics = reg
		if _, err := RunTransport(fuzzEnv.topo, fuzzEnv.flows, cfg); err != nil {
			t.Fatalf("valid decoded plan rejected: %v", err)
		}
		sent := reg.Counter(MetricDataSent).Value() + reg.Counter(MetricAckSent).Value()
		arrived := reg.Counter(MetricDataArrived).Value() + reg.Counter(MetricAckArrived).Value()
		dropped := reg.Counter(MetricTransportDrops).Value() +
			reg.Counter(MetricTransportFaultDrops).Value() +
			reg.Counter(MetricTransportStaleDrops).Value()
		if sent != arrived+dropped {
			t.Fatalf("conservation violated: sent %d != arrived %d + dropped %d (plan %+v)",
				sent, arrived, dropped, plan.Events)
		}
	})
}

// FuzzShardConservation drives the sharded engines' handoff/barrier path
// through arbitrary fault schedules and shard counts. The first fuzz byte
// picks the shard count; the rest decode into a fault plan. Three properties
// must survive every input: packet conservation in the sharded packet
// engine, the journey ledger in the sharded multipath transport, and
// byte-identical results against the single-shard run of the same engine.
// `make fuzz-smoke` runs this in CI.
func FuzzShardConservation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2})                                            // two shards, no faults
	f.Add([]byte{4, 10, 1, 3, 0})                               // one switch down, never repaired
	f.Add([]byte{7, 5, 1, 2, 0, 20, 1, 2, 1})                   // prime shards, down-then-up
	f.Add([]byte{3, 0, 1, 1, 0, 0, 1, 4, 0, 0, 1, 7, 0})        // burst at t=0
	f.Add([]byte{255, 255, 1, 9, 0, 1, 0, 0, 0, 128, 2, 40, 1}) // oversized shard count

	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzSetup()
		shards := 1
		if len(raw) > 0 {
			shards = 1 + int(raw[0])%8
			raw = raw[1:]
		}
		plan := decodePlan(fuzzEnv.net, raw)

		// Packet engine: conservation plus single-shard equivalence.
		cfg := Default()
		cfg.Faults = plan
		res, err := RunSharded(fuzzEnv.topo, fuzzEnv.flows, cfg, ShardOpts{Shards: shards})
		if err != nil {
			t.Fatalf("valid decoded plan rejected: %v", err)
		}
		injected := injectedPackets(fuzzEnv.flows, cfg.MTU)
		if got := res.Delivered + res.Dropped + res.DroppedFault; got != injected {
			t.Fatalf("shards=%d conservation violated: %d != injected %d (plan %+v)",
				shards, got, injected, plan.Events)
		}
		if base, err := RunSharded(fuzzEnv.topo, fuzzEnv.flows, cfg, ShardOpts{Shards: 1}); err != nil {
			t.Fatal(err)
		} else if res != base {
			t.Fatalf("shards=%d result %+v != shards=1 %+v (plan %+v)", shards, res, base, plan.Events)
		}

		// Multipath transport: journey ledger plus single-shard equivalence.
		tcfg := DefaultTransport()
		tcfg.Faults = plan
		tcfg.Multipath = true
		tcfg.MultipathPaths = 3
		tcfg.MaxFlowTimeouts = 6
		reg := obs.NewRegistry()
		tcfg.Link.Metrics = reg
		tres, err := RunTransportSharded(fuzzEnv.topo, fuzzEnv.flows, tcfg, ShardOpts{Shards: shards})
		if err != nil {
			t.Fatalf("valid decoded plan rejected: %v", err)
		}
		sent := reg.Counter(MetricDataSent).Value() + reg.Counter(MetricAckSent).Value()
		arrived := reg.Counter(MetricDataArrived).Value() + reg.Counter(MetricAckArrived).Value()
		dropped := reg.Counter(MetricTransportDrops).Value() +
			reg.Counter(MetricTransportFaultDrops).Value() +
			reg.Counter(MetricTransportStaleDrops).Value()
		if sent != arrived+dropped {
			t.Fatalf("shards=%d conservation violated: sent %d != arrived %d + dropped %d (plan %+v)",
				shards, sent, arrived, dropped, plan.Events)
		}
		tcfg.Link.Metrics = nil
		if tbase, err := RunTransportSharded(fuzzEnv.topo, fuzzEnv.flows, tcfg, ShardOpts{Shards: 1}); err != nil {
			t.Fatal(err)
		} else if tres != tbase {
			t.Fatalf("shards=%d transport %+v != shards=1 %+v (plan %+v)", shards, tres, tbase, plan.Events)
		}
	})
}
