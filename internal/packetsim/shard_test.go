package packetsim

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// shardCounts is the equivalence matrix's shard axis: serial, even splits,
// and a prime count that never divides the topology evenly.
var shardCounts = []int{1, 2, 4, 7}

func TestShardEquivalenceMatrix(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 17, 64<<10)

	for _, withFaults := range []bool{false, true} {
		name := "plain"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			var plan *failure.FaultPlan
			if withFaults {
				var err error
				plan, err = failure.Burst(tp.Network(), failure.Switches,
					len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(5)))
				if err != nil {
					t.Fatal(err)
				}
			}
			run := func(shards int) (Result, *Timeline) {
				cfg := Default()
				var tl *Timeline
				if plan != nil {
					cfg.Faults = plan
					tl = &Timeline{}
					cfg.Timeline = tl
				}
				res, err := RunSharded(tp, flows, cfg, ShardOpts{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				return res, tl
			}
			want, wantTL := run(1)
			if want.Delivered == 0 {
				t.Fatal("oracle run delivered nothing")
			}
			injected := injectedPackets(flows, Default().MTU)
			if got := want.Delivered + want.Dropped + want.DroppedFault; got != injected {
				t.Fatalf("conservation: delivered+dropped = %d, injected = %d", got, injected)
			}
			for _, s := range shardCounts[1:] {
				got, gotTL := run(s)
				if got != want {
					t.Errorf("shards=%d result %+v\n  != shards=1 %+v", s, got, want)
				}
				if plan != nil {
					compareTimelines(t, s, gotTL, wantTL)
				}
			}
		})
	}
}

func TestTransportShardEquivalenceMatrix(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 23, 256<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"plain", "faults", "multipath"} {
		t.Run(mode, func(t *testing.T) {
			run := func(shards int) (TransportResult, *Timeline) {
				cfg := DefaultTransport()
				var tl *Timeline
				if mode != "plain" {
					cfg.Faults = plan
					tl = &Timeline{}
					cfg.Timeline = tl
				}
				if mode == "multipath" {
					cfg.Multipath = true
				}
				res, err := RunTransportSharded(tp, flows, cfg, ShardOpts{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				return res, tl
			}
			want, wantTL := run(1)
			if want.CompletedFlows == 0 {
				t.Fatal("oracle run completed no flows")
			}
			for _, s := range shardCounts[1:] {
				got, gotTL := run(s)
				if got != want {
					t.Errorf("shards=%d result %+v\n  != shards=1 %+v", s, got, want)
				}
				if wantTL != nil {
					compareTimelines(t, s, gotTL, wantTL)
				}
			}
		})
	}
}

// compareTimelines asserts two fault timelines are identical epoch for epoch.
func compareTimelines(t *testing.T, shards int, got, want *Timeline) {
	t.Helper()
	if len(got.Epochs) != len(want.Epochs) {
		t.Errorf("shards=%d: %d epochs, want %d", shards, len(got.Epochs), len(want.Epochs))
		return
	}
	for i := range want.Epochs {
		if got.Epochs[i] != want.Epochs[i] {
			t.Errorf("shards=%d epoch %d: %+v\n  != %+v", shards, i, got.Epochs[i], want.Epochs[i])
		}
	}
}

// TestShardWorkerInvariance is the concurrency property: the worker count —
// including every GOMAXPROCS the pool might see — must never leak into
// results. Runs the fault+multipath transport (the hardest path) across
// worker counts at a fixed shard count and across GOMAXPROCS values.
func TestShardWorkerInvariance(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 128<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) TransportResult {
		cfg := DefaultTransport()
		cfg.Faults = plan
		cfg.Multipath = true
		res, err := RunTransportSharded(tp, flows, cfg, ShardOpts{Shards: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{2, 3, 4, 8} {
		if got := run(w); got != want {
			t.Errorf("workers=%d result %+v\n  != workers=1 %+v", w, got, want)
		}
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := run(0); got != want {
		t.Errorf("GOMAXPROCS=2 result %+v\n  != baseline %+v", got, want)
	}
}

// TestShardedMatchesSerialExactlyWithoutTies pins the strongest serial
// equivalence available: with a single flow there are no same-time ties and
// no reroutes, so the sharded engines' content-derived keys pop in exactly
// the serial order and the results must be bit-identical — except the packet
// engine's AvgLatencySec, where the sharded merge sums the (identical)
// latency multiset in sorted order instead of delivery order, which can move
// the mean by an ulp.
func TestShardedMatchesSerialExactlyWithoutTies(t *testing.T) {
	tp := faultTopo(t)
	n := tp.Network().NumServers()
	flows := []traffic.Flow{{Src: 0, Dst: n / 2, Bytes: 256 << 10}}

	serial, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		sharded, err := RunSharded(tp, flows, Default(), ShardOpts{Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sharded.AvgLatencySec - serial.AvgLatencySec); d > 1e-12*serial.AvgLatencySec {
			t.Errorf("packet shards=%d avg latency %g != serial %g", s, sharded.AvgLatencySec, serial.AvgLatencySec)
		}
		sharded.AvgLatencySec = serial.AvgLatencySec
		if sharded != serial {
			t.Errorf("packet shards=%d %+v != serial %+v", s, sharded, serial)
		}
	}

	tserial, err := RunTransport(tp, flows, DefaultTransport())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		tsharded, err := RunTransportSharded(tp, flows, DefaultTransport(), ShardOpts{Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		if tsharded != tserial {
			t.Errorf("transport shards=%d %+v != serial %+v", s, tsharded, tserial)
		}
	}
}

// TestShardedVsSerialTolerance documents the tie-break divergence: on a
// contended workload the sharded engine orders same-time events by packet id
// where the serial engine uses push order, so individual packet fates can
// differ — but the offered load is conserved exactly and the aggregate
// numbers must stay within a few percent.
func TestShardedVsSerialTolerance(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 17, 64<<10)
	cfg := Default()

	serial, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSharded(tp, flows, cfg, ShardOpts{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	injected := injectedPackets(flows, cfg.MTU)
	if got := sharded.Delivered + sharded.Dropped + sharded.DroppedFault; got != injected {
		t.Fatalf("sharded conservation: %d != injected %d", got, injected)
	}
	if got := serial.Delivered + serial.Dropped + serial.DroppedFault; got != injected {
		t.Fatalf("serial conservation: %d != injected %d", got, injected)
	}
	const tol = 0.05 // 5%: tie-break reshuffling, not model drift
	relDiff := func(a, b float64) float64 {
		if a == 0 && b == 0 {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	if d := relDiff(float64(sharded.Delivered), float64(serial.Delivered)); d > tol {
		t.Errorf("delivered diverges %.1f%%: sharded %d, serial %d", d*100, sharded.Delivered, serial.Delivered)
	}
	if d := relDiff(sharded.AvgLatencySec, serial.AvgLatencySec); d > tol {
		t.Errorf("avg latency diverges %.1f%%: sharded %g, serial %g", d*100, sharded.AvgLatencySec, serial.AvgLatencySec)
	}
	if d := relDiff(sharded.MakespanSec, serial.MakespanSec); d > tol {
		t.Errorf("makespan diverges %.1f%%: sharded %g, serial %g", d*100, sharded.MakespanSec, serial.MakespanSec)
	}
}

// TestShardInstruments verifies the sharded-engine gauges actually move: a
// multi-shard run must record windows, and a workload that crosses the cut
// must record handoffs with a consistent batch histogram.
func TestShardInstruments(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 17, 16<<10)
	cfg := Default()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if _, err := RunSharded(tp, flows, cfg, ShardOpts{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(MetricShardWindows).Value() == 0 {
		t.Error("no synchronization windows recorded")
	}
	handoffs := reg.Counter(MetricShardHandoffs).Value()
	if handoffs == 0 {
		t.Error("a shuffle workload crossed no shard boundary")
	}
	batch := reg.Histogram(MetricShardHandoffBatch).Snapshot()
	if batch.Sum != handoffs {
		t.Errorf("handoff batch histogram sums to %d, counter says %d", batch.Sum, handoffs)
	}
	if reg.Histogram(MetricShardWindowEvents).Snapshot().Count == 0 {
		t.Error("no per-window event counts observed")
	}
}

// TestMergedLatenciesMatchSerialQuantiles is the per-shard metrics-merge
// regression: however a latency sample set is split across shards, the
// merged mean and p99 must equal the serial engine's single-slice
// quantile()/mean computation on the same samples.
func TestMergedLatenciesMatchSerialQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 7, 100, 1001} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 1e-4
		}
		// Serial reference: the engines' own aggregation on one slice.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		sum := 0.0
		for _, v := range sorted {
			sum += v
		}
		wantAvg := sum / float64(n)
		wantP99 := quantile(append([]float64(nil), xs...), 0.99)

		for _, k := range []int{1, 2, 4, 7} {
			parts := make([][]float64, k)
			for i, v := range xs {
				s := rng.Intn(k)
				_ = i
				parts[s] = append(parts[s], v)
			}
			avg, p99 := mergeLatencies(parts)
			if avg != wantAvg {
				t.Errorf("n=%d k=%d merged avg %g != serial %g", n, k, avg, wantAvg)
			}
			if p99 != wantP99 {
				t.Errorf("n=%d k=%d merged p99 %g != serial %g", n, k, p99, wantP99)
			}
		}
	}
	if avg, p99 := mergeLatencies(nil); avg != 0 || p99 != 0 {
		t.Errorf("empty merge = (%g, %g), want zeros", avg, p99)
	}
}

// TestShardedTransportConservation checks the packet-conservation ledger on
// a sharded fault+multipath run: every data and ACK journey launched must be
// accounted for by an arrival or a counted drop.
func TestShardedTransportConservation(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 29, 128<<10)
	plan, err := failure.Burst(tp.Network(), failure.Switches,
		len(tp.Network().Switches())/4, 1e-4, 2e-3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = true
	reg := obs.NewRegistry()
	cfg.Link.Metrics = reg
	if _, err := RunTransportSharded(tp, flows, cfg, ShardOpts{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	sent := reg.Counter(MetricDataSent).Value() + reg.Counter(MetricAckSent).Value()
	arrived := reg.Counter(MetricDataArrived).Value() + reg.Counter(MetricAckArrived).Value()
	dropped := reg.Counter(MetricTransportDrops).Value() +
		reg.Counter(MetricTransportFaultDrops).Value() +
		reg.Counter(MetricTransportStaleDrops).Value()
	if sent != arrived+dropped {
		t.Errorf("conservation: sent %d != arrived %d + dropped %d", sent, arrived, dropped)
	}
	if reg.Counter(MetricTransportStaleDrops).Value() != 0 {
		t.Error("sharded engine recorded stale drops; it must not have a stale path")
	}
}
