// Shared machinery of the sharded discrete-event engines (shardrun.go,
// shardtransport.go): topology partitioning, the conservative time-windowed
// synchronization loop with deterministic cross-shard handoff, and the
// order-independent merges that keep a sharded run's results byte-identical
// for every shard count and GOMAXPROCS.
//
// # Conservative windows
//
// The compiled link-resource arrays partition cleanly: directed resource r
// (transmitter u) belongs to the shard of u, and a packet reaching node v is
// processed on v's shard. Every cross-shard event is therefore a packet
// arrival pushed at least lookahead = min-transmit-time + link-delay into
// the future, so the loop can safely drain, in parallel, all events with
// time < M + lookahead (M = global minimum pending time) before exchanging
// handoffs at a barrier: nothing generated inside the window can land inside
// it on another shard. Timers, probes, injections, and fault transitions are
// shard-local (fault plans are replicated into every shard's queue up
// front), so they never constrain the lookahead.
//
// # Determinism
//
// Event keys are content-derived (packet identity, not push order), so each
// shard's heap pops in an order fixed by the workload alone, and all events
// touching one link resource are processed on its owner shard in global
// (time, key) order no matter how many shards exist. Commutative aggregates
// (counts, maxima) merge trivially; float aggregates (latency sums,
// quantiles) are computed over sorted samples, which fixes the accumulation
// order. The shard-equivalence tests pin byte-identical results across
// -shards 1..N; shard_test.go documents the (tie-break only) tolerance
// against the serial engines.

package packetsim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/topology"
)

// ShardOpts parameterizes a sharded run.
type ShardOpts struct {
	// Shards is the number of topology shards; values below 1 mean 1. The
	// result is byte-identical for every value.
	Shards int
	// Workers caps the goroutines driving shards; 0 means
	// min(Shards, GOMAXPROCS).
	Workers int
	// Profile, when non-nil, arms the shard runtime profiler: every
	// synchronization window records one obs.ShardWindow per shard —
	// wall-clock busy vs barrier-wait time, events processed, handoff
	// outbox/inbox volumes, and the window's lookahead width — and the
	// busy/wait totals and per-window load-imbalance index register on the
	// run's metrics (MetricShardBusyNs and friends). Profiling measures
	// wall-clock around whole window phases, never inside the event loop,
	// and cannot change simulation results. Nil disables it.
	Profile *obs.ShardProfile
}

// normalized clamps the options against the network size.
func (o ShardOpts) normalized(numNodes int) (shards, workers int) {
	shards = o.Shards
	if shards < 1 {
		shards = 1
	}
	if numNodes > 0 && shards > numNodes {
		shards = numNodes
	}
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	return shards, workers
}

// Sharded-engine instrument names registered on the run's metrics registry.
const (
	// MetricShardWindows counts synchronization windows (barriers).
	MetricShardWindows = "shardsim_windows"
	// MetricShardHandoffs counts cross-shard packet handoffs.
	MetricShardHandoffs = "shardsim_handoffs"
	// MetricShardHandoffBatch observes the size of each nonempty src->dst
	// handoff batch exchanged at a barrier.
	MetricShardHandoffBatch = "shardsim_handoff_batch"
	// MetricShardWindowEvents observes events drained per shard per window.
	MetricShardWindowEvents = "shardsim_window_events"
	// MetricShardWindowStall gauges how many shards drained zero events in
	// the last window (its Max is the worst window's stall count).
	MetricShardWindowStall = "shardsim_window_stall"
	// Profiler instruments, registered only when ShardOpts.Profile is set:
	// total wall-clock nanoseconds shards spent draining events vs waiting
	// at (or queueing for) the window barrier, and a histogram of the
	// per-window load-imbalance index in milli-units (1000 = perfectly
	// balanced, N*1000 = one shard did all the work).
	MetricShardBusyNs         = "shardsim_busy_ns"
	MetricShardWaitNs         = "shardsim_wait_ns"
	MetricShardImbalanceMilli = "shardsim_imbalance_milli"
)

// shardPool runs per-shard closures on persistent worker goroutines; nil
// (workers <= 1) degrades to inline serial execution with zero overhead.
type shardPool struct {
	tasks chan func()
}

func newShardPool(workers int) *shardPool {
	if workers <= 1 {
		return nil
	}
	p := &shardPool{tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// forEach executes fn(0..n-1) across the pool and waits for all of them; the
// WaitGroup barrier gives every write before it a happens-before edge into
// everything after it, which is what makes the phase exchanges race-free.
func (p *shardPool) forEach(n int, fn func(int)) {
	if p == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			fn(i)
		}
	}
	wg.Wait()
}

func (p *shardPool) close() {
	if p != nil {
		close(p.tasks)
	}
}

// handoff is one cross-shard event in flight between windows.
type handoff[T any] struct {
	time float64
	key  int64
	ev   T
}

// windowShard is the per-shard queue state the window loop drives.
type windowShard[T any] struct {
	q eventq.Queue[T]
	// out[dst] collects this shard's cross-shard pushes for the window.
	out [][]handoff[T]
	// processed counts events drained in the current window.
	processed int64
}

// push routes an event to its destination shard: local events enter the heap
// directly, remote ones wait in the outbox for the window barrier.
func (w *windowShard[T]) push(dst, self int, time float64, key int64, ev T) {
	if dst == self {
		w.q.Push(time, key, ev)
		return
	}
	w.out[dst] = append(w.out[dst], handoff[T]{time: time, key: key, ev: ev})
}

// shardDriver is the coordinator's bookkeeping: the pool plus the sharded
// engines' instruments (all nil-safe when the run has no metrics registry)
// and, when ShardOpts.Profile is armed, the runtime profiler state.
type shardDriver struct {
	shards int
	pool   *shardPool

	cWindows  *obs.Counter
	cHandoffs *obs.Counter
	hBatch    *obs.Histogram
	hWindow   *obs.Histogram
	gStall    *obs.Gauge

	// Profiler (nil profile = off; the window loop then takes no clock
	// readings at all). The busy/wait counters and imbalance histogram are
	// registered lazily in newShardDriver only when profiling, so an
	// unprofiled metrics run's summary stays unchanged.
	profile *obs.ShardProfile
	tracer  *obs.Tracer
	cBusy   *obs.Counter
	cWait   *obs.Counter
	hImb    *obs.Histogram
}

func newShardDriver(shards, workers int, metrics *obs.Registry, tracer *obs.Tracer, profile *obs.ShardProfile) *shardDriver {
	d := &shardDriver{
		shards:    shards,
		pool:      newShardPool(workers),
		cWindows:  metrics.Counter(MetricShardWindows),
		cHandoffs: metrics.Counter(MetricShardHandoffs),
		hBatch:    metrics.Histogram(MetricShardHandoffBatch),
		hWindow:   metrics.Histogram(MetricShardWindowEvents),
		gStall:    metrics.Gauge(MetricShardWindowStall),
	}
	if profile != nil {
		d.profile = profile
		d.tracer = tracer
		d.cBusy = metrics.Counter(MetricShardBusyNs)
		d.cWait = metrics.Counter(MetricShardWaitNs)
		d.hImb = metrics.Histogram(MetricShardImbalanceMilli)
	}
	return d
}

// runWindows drives the conservative loop until every shard heap drains.
// drain(s, end) must process shard s's local events with time < end in
// (time, key) order, routing pushes through windowShard.push and adding to
// processed. budget > 0 aborts the run once the total processed event count
// exceeds it (the transport engine's MaxEvents brake).
func runWindows[T any](d *shardDriver, shards []*windowShard[T], lookahead float64, drain func(s int, end float64), budget int64) error {
	defer d.pool.close()
	var total int64
	prof := d.profile != nil
	var busyNs []int64
	var winIdx int64
	if prof {
		busyNs = make([]int64, len(shards))
	}
	for {
		// Coordinator: the global minimum pending time opens the window.
		minT := math.Inf(1)
		for _, sh := range shards {
			if sh.q.Len() > 0 {
				if t, _, _ := sh.q.Peek(); t < minT {
					minT = t
				}
			}
		}
		if math.IsInf(minT, 1) {
			return nil // every heap is dry: the run is over
		}
		// The window edge must sit at or below every cross-shard arrival a
		// drained event can generate. Mathematically that is minT + lookahead,
		// but the engines compute an arrival as ((t + tx) + delay) while the
		// edge would be minT + (tx + delay): float non-associativity can land
		// an arrival an ulp BEFORE the edge, deferring it behind events it
		// must precede. A relative margin of 1e-12 (thousands of ulps, yet
		// vanishing against any physical lookahead) keeps the edge strictly
		// conservative.
		end := minT + lookahead
		end -= end * 1e-12
		if end <= minT {
			end = math.Nextafter(minT, math.Inf(1)) // degenerate lookahead: still make progress
		}
		if len(shards) == 1 {
			end = math.Inf(1) // one shard: no cross-shard events, one window
		}

		// Drain phase: every shard advances to the window edge in parallel.
		// When profiling, each shard clocks its own drain; the phase clock
		// wraps the whole forEach, so phase − busy is the shard's stall —
		// barrier wait plus (with fewer workers than shards) the time its
		// task queued for a worker slot, which is exactly the serialization
		// being measured.
		var phaseStart time.Time
		if prof {
			phaseStart = time.Now()
		}
		d.pool.forEach(len(shards), func(s int) {
			shards[s].processed = 0
			if prof {
				t0 := time.Now()
				drain(s, end)
				busyNs[s] = time.Since(t0).Nanoseconds()
			} else {
				drain(s, end)
			}
		})
		var phaseNs int64
		if prof {
			phaseNs = time.Since(phaseStart).Nanoseconds()
		}

		d.cWindows.Inc()
		stalled := 0
		for _, sh := range shards {
			if sh.processed == 0 {
				stalled++
			}
			total += sh.processed
			d.hWindow.Observe(sh.processed)
		}
		d.gStall.Set(int64(stalled))
		if budget > 0 && total > budget {
			return fmt.Errorf("packetsim: sharded run exceeded %d events", budget)
		}

		// Profile the window before the exchange phase empties the outboxes.
		if prof {
			d.profileWindow(winIdx, minT, end, phaseNs, busyNs, shardStats(shards))
		}
		winIdx++

		// Exchange phase: each destination drains every source's outbox into
		// its heap. Push order cannot affect pop order (keys are a strict
		// total order), and the barrier between phases makes the cross-shard
		// reads race-free.
		d.pool.forEach(len(shards), func(dst int) {
			n := 0
			for _, src := range shards {
				n += len(src.out[dst])
			}
			if n == 0 {
				return
			}
			shards[dst].q.Grow(n)
			for _, src := range shards {
				batch := src.out[dst]
				if len(batch) == 0 {
					continue
				}
				for _, h := range batch {
					shards[dst].q.Push(h.time, h.key, h.ev)
				}
				d.hBatch.Observe(int64(len(batch)))
				src.out[dst] = src.out[dst][:0]
			}
			d.cHandoffs.Add(int64(n))
		})
	}
}

// shardWindowStat is the per-shard event/handoff tallies of one window,
// extracted from the generic shard slice before the exchange phase empties
// the outboxes (methods cannot be generic, so the extraction is a function).
type shardWindowStat struct {
	events, out, in int64
}

func shardStats[T any](shards []*windowShard[T]) []shardWindowStat {
	stats := make([]shardWindowStat, len(shards))
	for s, sh := range shards {
		stats[s].events = sh.processed
		for _, b := range sh.out {
			stats[s].out += int64(len(b))
		}
		for _, src := range shards {
			stats[s].in += int64(len(src.out[s]))
		}
	}
	return stats
}

// profileWindow records one window into the armed profiler: a ShardWindow
// row per shard, busy/wait totals on the registry, the window's imbalance
// index into the histogram (in milli-units), and — when the run traces — a
// "shard_window" event per shard so the runtime profile interleaves with
// the packet trace.
func (d *shardDriver) profileWindow(win int64, minT, end float64, phaseNs int64, busyNs []int64, stats []shardWindowStat) {
	t0Ns := int64(minT * 1e9)
	lookNs := int64(-1) // unbounded final window of a single-shard run
	if !math.IsInf(end, 1) {
		lookNs = int64((end - minT) * 1e9)
	}
	rows := make([]obs.ShardWindow, len(stats))
	var maxBusy, sumBusy int64
	for s, stat := range stats {
		wait := phaseNs - busyNs[s]
		if wait < 0 {
			wait = 0
		}
		rows[s] = obs.ShardWindow{
			Window: win, Shard: s, T0Ns: t0Ns, LookaheadNs: lookNs,
			BusyNs: busyNs[s], WaitNs: wait, Events: stat.events,
			HandoffOut: stat.out, HandoffIn: stat.in,
		}
		d.cBusy.Add(busyNs[s])
		d.cWait.Add(wait)
		if busyNs[s] > maxBusy {
			maxBusy = busyNs[s]
		}
		sumBusy += busyNs[s]
		if d.tracer != nil {
			d.tracer.Record(obs.Event{TimeNs: t0Ns, Kind: "shard_window",
				ID: win, Node: s, Hop: int(stat.events),
				Detail: fmt.Sprintf("busy_ns=%d wait_ns=%d out=%d in=%d",
					busyNs[s], wait, stat.out, stat.in)})
		}
	}
	if sumBusy > 0 {
		d.hImb.Observe(int64(float64(maxBusy) * float64(len(stats)) / float64(sumBusy) * 1000))
	}
	d.profile.RecordWindow(rows)
}

// newShardFaultStates arms one independent faultState per shard: every shard
// applies the full plan at the exact simulated times (the plan events are
// replicated into each shard's queue), so all per-shard failure views agree
// at every instant and the per-shard epoch timelines align boundary for
// boundary. Only shard 0 carries the run's metrics and tracer — fault
// transitions would otherwise be counted and traced once per shard.
func newShardFaultStates(plan *failure.FaultPlan, net *topology.Network, shards int, wantTimeline bool, metrics *obs.Registry, tracer *obs.Tracer) ([]*faultState, error) {
	states := make([]*faultState, shards)
	for s := range states {
		var tl *Timeline
		if wantTimeline {
			tl = &Timeline{}
		}
		reg, tr := (*obs.Registry)(nil), (*obs.Tracer)(nil)
		if s == 0 {
			reg, tr = metrics, tracer
		}
		fs, err := newFaultState(plan, net, tl, reg, tr)
		if err != nil {
			return nil, err
		}
		states[s] = fs
	}
	return states, nil
}

// finishShardTimelines closes every shard's final epoch at the global
// makespan and merges the per-shard timelines into dst. Epoch boundaries are
// identical across shards by construction; counts sum, and FaultEvents —
// counted once per shard — come from shard 0 alone.
func finishShardTimelines(dst *Timeline, states []*faultState, makespanSec float64) error {
	if dst == nil {
		return nil
	}
	for _, fs := range states {
		fs.finish(makespanSec)
	}
	base := states[0].timeline
	dst.Epochs = append(dst.Epochs[:0], base.Epochs...)
	for s := 1; s < len(states); s++ {
		part := states[s].timeline
		if len(part.Epochs) != len(base.Epochs) {
			return fmt.Errorf("packetsim: shard %d saw %d fault epochs, shard 0 saw %d",
				s, len(part.Epochs), len(base.Epochs))
		}
		for i, e := range part.Epochs {
			m := &dst.Epochs[i]
			if e.StartSec != m.StartSec || e.EndSec != m.EndSec {
				return fmt.Errorf("packetsim: shard %d epoch %d boundary mismatch", s, i)
			}
			m.Delivered += e.Delivered
			m.DeliveredBytes += e.DeliveredBytes
			m.DroppedTail += e.DroppedTail
			m.DroppedFault += e.DroppedFault
			m.DroppedStale += e.DroppedStale
			m.Retransmits += e.Retransmits
			m.Reroutes += e.Reroutes
			m.Failovers += e.Failovers
			m.CompletedFlows += e.CompletedFlows
		}
	}
	return nil
}

// mergeLatencies concatenates the shards' delivery-latency samples, sorts
// them, and returns the mean and nearest-rank p99. Sorting first makes both
// numbers independent of how deliveries were distributed across shards: the
// multiset is identical for every shard count, the quantile is an order
// statistic, and summing in ascending order fixes the float accumulation
// order bit for bit. It reuses the serial engine's nearestRankIndex so the
// sharded and serial quantile definitions can never drift apart.
func mergeLatencies(parts [][]float64) (avg, p99 float64) {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return 0, 0
	}
	all := make([]float64, 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Float64s(all)
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	return sum / float64(n), all[nearestRankIndex(n, 0.99)]
}
