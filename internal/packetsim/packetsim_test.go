package packetsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func build(t *testing.T) *core.ABCCC {
	t.Helper()
	return core.MustBuild(core.Config{N: 3, K: 1, P: 2})
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "default ok", mutate: func(*Config) {}},
		{name: "zero bandwidth", mutate: func(c *Config) { c.LinkBandwidthBps = 0 }, wantErr: true},
		{name: "zero flow rate", mutate: func(c *Config) { c.FlowRateBps = 0 }, wantErr: true},
		{name: "zero mtu", mutate: func(c *Config) { c.MTU = 0 }, wantErr: true},
		{name: "zero queue", mutate: func(c *Config) { c.QueueLimitPackets = 0 }, wantErr: true},
		{name: "negative delay", mutate: func(c *Config) { c.LinkDelaySec = -1 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSingleFlowDeliversEverything(t *testing.T) {
	tp := build(t)
	cfg := Default()
	flows := []traffic.Flow{{Src: 0, Dst: 5, Bytes: 15000}} // 10 packets
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 || res.Dropped != 0 {
		t.Errorf("delivered %d dropped %d, want 10/0", res.Delivered, res.Dropped)
	}
	if res.AvgLatencySec <= 0 || res.MakespanSec <= 0 || res.ThroughputBps <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
	if res.P99LatencySec < res.AvgLatencySec-1e-12 {
		t.Errorf("p99 %g < avg %g", res.P99LatencySec, res.AvgLatencySec)
	}
}

func TestLatencyMatchesStoreAndForwardFormula(t *testing.T) {
	// One packet over h links with no queueing: latency = h*(tx + delay).
	tp := build(t)
	cfg := Default()
	flows := []traffic.Flow{{Src: 0, Dst: 5, Bytes: int64(cfg.MTU)}}
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := tp.Network()
	p, err := tp.Route(net.Server(0), net.Server(5))
	if err != nil {
		t.Fatal(err)
	}
	h := float64(p.Len())
	want := h * (float64(cfg.MTU)/cfg.LinkBandwidthBps + cfg.LinkDelaySec)
	if math.Abs(res.AvgLatencySec-want) > 1e-12 {
		t.Errorf("latency %g, want %g over %d links", res.AvgLatencySec, want, p.Len())
	}
}

func TestSelfFlowIgnored(t *testing.T) {
	tp := build(t)
	res, err := Run(tp, []traffic.Flow{{Src: 3, Dst: 3, Bytes: 4500}}, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Dropped != 0 {
		t.Errorf("self flow produced traffic: %+v", res)
	}
}

func TestIncastOverloadDropsPackets(t *testing.T) {
	// Many senders into one server at full rate with tiny queues must drop.
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	cfg := Default()
	cfg.QueueLimitPackets = 2
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	for src := 1; src < n; src++ {
		flows = append(flows, traffic.Flow{Src: src, Dst: 0, Bytes: 30000})
	}
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("incast with tiny queues dropped nothing")
	}
	if res.DropRate() <= 0 || res.DropRate() >= 1 {
		t.Errorf("DropRate = %f", res.DropRate())
	}
}

func TestBiggerQueuesDropLess(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	var flows []traffic.Flow
	for src := 1; src < 10; src++ {
		flows = append(flows, traffic.Flow{Src: src, Dst: 0, Bytes: 60000})
	}
	drops := func(limit int) int {
		cfg := Default()
		cfg.QueueLimitPackets = limit
		res, err := Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Dropped
	}
	small, big := drops(1), drops(1000)
	if big > small {
		t.Errorf("bigger queue dropped more: %d vs %d", big, small)
	}
	_ = n
}

func TestDeterministic(t *testing.T) {
	tp := build(t)
	flows := []traffic.Flow{
		{Src: 0, Dst: 7, Bytes: 45000},
		{Src: 3, Dst: 11, Bytes: 45000},
		{Src: 8, Dst: 2, Bytes: 45000},
	}
	r1, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("non-deterministic results:\n%+v\n%+v", r1, r2)
	}
}

func TestRunErrors(t *testing.T) {
	tp := build(t)
	if _, err := Run(tp, []traffic.Flow{{Src: 0, Dst: 999}}, Default()); err == nil {
		t.Error("out-of-range flow accepted")
	}
	bad := Default()
	bad.MTU = 0
	if _, err := Run(tp, nil, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEmptyWorkload(t *testing.T) {
	tp := build(t)
	res, err := Run(tp, nil, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.DropRate() != 0 || res.ThroughputBps != 0 {
		t.Errorf("empty workload result %+v", res)
	}
}

var _ topology.Topology = (*core.ABCCC)(nil) // packetsim drives any Topology

func TestRunHonorsArrivalTimes(t *testing.T) {
	tp := build(t)
	cfg := Default()
	flows := []traffic.Flow{{Src: 0, Dst: 5, Bytes: int64(cfg.MTU), StartSec: 2e-3}}
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.MakespanSec < 2e-3 {
		t.Errorf("result %+v, want delivery after the 2ms arrival", res)
	}
}
