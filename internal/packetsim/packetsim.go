// Package packetsim is a deterministic discrete-event packet-level
// simulator used for the latency/queueing experiments. Packets follow
// precomputed source routes; every directed link has a serializing
// transmitter, a propagation delay, and a drop-tail queue.
//
// The simulator substitutes for the testbed/ns-style packet simulation of
// the original evaluation: it reproduces queueing delay, loss under
// overload, and the relative latency ordering between structures, which is
// what the figures compare.
package packetsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Config parameterizes the simulated hardware.
type Config struct {
	// LinkBandwidthBps is the transmit rate of each link direction in
	// bytes per second.
	LinkBandwidthBps float64
	// LinkDelaySec is the per-link propagation (plus switching) delay.
	LinkDelaySec float64
	// QueueLimitPackets is the drop-tail queue capacity per link direction.
	QueueLimitPackets int
	// MTU is the packet size in bytes.
	MTU int
	// FlowRateBps is the per-flow injection rate in bytes per second.
	FlowRateBps float64

	// Metrics, when non-nil, receives run instrumentation: delivered/dropped
	// counters, queue-depth, hop-count and end-to-end latency histograms
	// (see METRIC_* constants for the instrument names). Nil — the default —
	// disables metrics at the cost of a pointer test per packet event.
	Metrics *obs.Registry
	// Trace, when non-nil, records one obs.Event per packet hop ("hop"),
	// delivery ("deliver") and drop ("drop", Detail "droptail"), stamped
	// with simulated time in nanoseconds. Nil disables tracing.
	Trace *obs.Tracer
}

// Instrument names registered on Config.Metrics by Run.
const (
	MetricDelivered   = "packetsim_delivered"
	MetricDroppedTail = "packetsim_dropped_droptail"
	MetricQueueDepth  = "packetsim_queue_depth_pkts"
	MetricHops        = "packetsim_hops"
	MetricLatencyNs   = "packetsim_latency_ns"
)

// Default returns a GbE-like configuration: 125 MB/s links, 1 us delay,
// 100-packet queues, 1500-byte packets, flows injecting at link rate.
func Default() Config {
	return Config{
		LinkBandwidthBps:  125e6,
		LinkDelaySec:      1e-6,
		QueueLimitPackets: 100,
		MTU:               1500,
		FlowRateBps:       125e6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LinkBandwidthBps <= 0 || c.FlowRateBps <= 0 {
		return fmt.Errorf("packetsim: bandwidth and flow rate must be positive")
	}
	if c.MTU <= 0 {
		return fmt.Errorf("packetsim: MTU must be positive")
	}
	if c.QueueLimitPackets < 1 {
		return fmt.Errorf("packetsim: queue limit must be >= 1")
	}
	if c.LinkDelaySec < 0 {
		return fmt.Errorf("packetsim: negative link delay")
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	// Delivered and Dropped count packets.
	Delivered, Dropped int
	// AvgLatencySec and P99LatencySec summarize delivered-packet latency.
	AvgLatencySec, P99LatencySec float64
	// MakespanSec is the time the last packet was delivered.
	MakespanSec float64
	// ThroughputBps is delivered bytes divided by the makespan.
	ThroughputBps float64
}

// DropRate returns dropped / offered.
func (r Result) DropRate() float64 {
	total := r.Delivered + r.Dropped
	if total == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(total)
}

// event is a packet arriving at position idx of its path at time t.
type event struct {
	t   float64
	seq int64 // deterministic tie-break
	pkt *packet
	idx int // index into pkt.path of the node just reached
}

// packet stays in the 48-byte allocation size class — one is heap-allocated
// per simulated packet, so flowIdx/id are int32 (flow and packet counts are
// far below 2^31 in any runnable scenario).
type packet struct {
	path    topology.Path
	bytes   int
	sentAt  float64
	flowIdx int32
	id      int32 // stable per-packet id for tracing
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the given workload on a structure, routing each flow with
// the structure's own routing algorithm and injecting its packets at the
// configured flow rate starting at time zero.
func Run(t topology.Topology, flows []traffic.Flow, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	paths, err := flowsimRoute(t, flows)
	if err != nil {
		return Result{}, err
	}
	g := t.Network().Graph()

	txTime := float64(cfg.MTU) / cfg.LinkBandwidthBps
	gap := float64(cfg.MTU) / cfg.FlowRateBps

	var h eventHeap
	var seq int64
	for i, f := range flows {
		if len(paths[i]) < 2 {
			continue // src == dst
		}
		packets := int((f.Bytes + int64(cfg.MTU) - 1) / int64(cfg.MTU))
		for pn := 0; pn < packets; pn++ {
			sent := f.StartSec + float64(pn)*gap
			h = append(h, event{
				t:   sent,
				seq: seq,
				pkt: &packet{path: paths[i], bytes: cfg.MTU, sentAt: sent, flowIdx: int32(i), id: int32(seq)},
				idx: 0,
			})
			seq++
		}
	}
	heap.Init(&h)

	// Instrumentation: hoisted nil-able instruments; every update below is a
	// nil-check no-op when cfg.Metrics/cfg.Trace are unset.
	var (
		cDelivered = cfg.Metrics.Counter(MetricDelivered)
		cDropped   = cfg.Metrics.Counter(MetricDroppedTail)
		hQueue     = cfg.Metrics.Histogram(MetricQueueDepth)
		hHops      = cfg.Metrics.Histogram(MetricHops)
		hLatency   = cfg.Metrics.Histogram(MetricLatencyNs)
		tracer     = cfg.Trace
	)

	// linkFree[r] is when directed link resource r's transmitter frees.
	linkFree := make([]float64, 2*g.NumEdges())
	var res Result
	var latencies []float64
	var deliveredBytes int64

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		pkt, idx := ev.pkt, ev.idx
		if idx == len(pkt.path)-1 {
			res.Delivered++
			deliveredBytes += int64(pkt.bytes)
			lat := ev.t - pkt.sentAt
			latencies = append(latencies, lat)
			if ev.t > res.MakespanSec {
				res.MakespanSec = ev.t
			}
			cDelivered.Inc()
			hHops.Observe(int64(len(pkt.path) - 1))
			hLatency.Observe(int64(lat * 1e9))
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(ev.t * 1e9), Kind: "deliver",
					ID: int64(pkt.id), Node: pkt.path[idx], Hop: idx})
			}
			continue
		}
		u, v := pkt.path[idx], pkt.path[idx+1]
		e := g.EdgeBetween(u, v)
		r := 2 * e
		if u > v {
			r++
		}
		// Drop-tail: the backlog ahead of us, in packets, is the remaining
		// busy time divided by the per-packet transmit time.
		backlog := (linkFree[r] - ev.t) / txTime
		if hQueue != nil {
			hQueue.Observe(int64(math.Max(backlog, 0)))
		}
		if backlog > float64(cfg.QueueLimitPackets) {
			res.Dropped++
			cDropped.Inc()
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(ev.t * 1e9), Kind: "drop",
					ID: int64(pkt.id), Node: u, Hop: idx, Detail: "droptail"})
			}
			continue
		}
		if tracer != nil {
			tracer.Record(obs.Event{TimeNs: int64(ev.t * 1e9), Kind: "hop",
				ID: int64(pkt.id), Node: u, Hop: idx})
		}
		start := math.Max(ev.t, linkFree[r])
		done := start + txTime
		linkFree[r] = done
		heap.Push(&h, event{t: done + cfg.LinkDelaySec, seq: seq, pkt: pkt, idx: idx + 1})
		seq++
	}

	if len(latencies) > 0 {
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.AvgLatencySec = sum / float64(len(latencies))
		sort.Float64s(latencies)
		res.P99LatencySec = latencies[(len(latencies)*99)/100]
	}
	if res.MakespanSec > 0 {
		res.ThroughputBps = float64(deliveredBytes) / res.MakespanSec
	}
	return res, nil
}

// flowsimRoute mirrors flowsim.RoutePaths without importing it (avoiding a
// dependency between the two simulators).
func flowsimRoute(t topology.Topology, flows []traffic.Flow) ([]topology.Path, error) {
	servers := t.Network().Servers()
	paths := make([]topology.Path, len(flows))
	for i, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return nil, fmt.Errorf("packetsim: flow %d endpoints out of range", i)
		}
		p, err := t.Route(servers[f.Src], servers[f.Dst])
		if err != nil {
			return nil, fmt.Errorf("packetsim: route flow %d: %w", i, err)
		}
		paths[i] = p
	}
	return paths, nil
}
