// Package packetsim is a deterministic discrete-event packet-level
// simulator used for the latency/queueing experiments. Packets follow
// precomputed source routes; every directed link has a serializing
// transmitter, a propagation delay, and a drop-tail queue.
//
// The simulator substitutes for the testbed/ns-style packet simulation of
// the original evaluation: it reproduces queueing delay, loss under
// overload, and the relative latency ordering between structures, which is
// what the figures compare.
//
// The event core is built for sweep-heavy evaluation: events are unboxed
// values on a 4-ary eventq.Queue (no allocation per event), routes are
// compiled once per (topology, workload) into flat link-resource arrays and
// cached across runs, and packets are injected lazily — one pending event
// per flow instead of materializing every packet up front — so the heap
// stays O(flows + in-flight) no matter how heavy the workload. The
// pre-overhaul engines survive in reference.go as the oracle the
// equivalence tests pin these results against, event for event.
package packetsim

import (
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Config parameterizes the simulated hardware.
type Config struct {
	// LinkBandwidthBps is the transmit rate of each link direction in
	// bytes per second.
	LinkBandwidthBps float64
	// LinkDelaySec is the per-link propagation (plus switching) delay.
	LinkDelaySec float64
	// QueueLimitPackets is the drop-tail queue capacity per link direction.
	QueueLimitPackets int
	// MTU is the packet size in bytes.
	MTU int
	// FlowRateBps is the per-flow injection rate in bytes per second.
	FlowRateBps float64

	// Metrics, when non-nil, receives run instrumentation: delivered/dropped
	// counters, queue-depth, hop-count and end-to-end latency histograms
	// (see METRIC_* constants for the instrument names). Nil — the default —
	// disables metrics at the cost of a pointer test per packet event.
	Metrics *obs.Registry
	// Trace, when non-nil, records one obs.Event per packet hop ("hop"),
	// delivery ("deliver") and drop ("drop", Detail "droptail"), stamped
	// with simulated time in nanoseconds. Nil disables tracing.
	Trace *obs.Tracer
	// Series, when non-nil, receives sim-time-windowed telemetry: per-window
	// goodput, drop-cause, and queue-depth curves (see the Series* track
	// names in series.go; the transport engines add retransmit, failover,
	// and reroute curves). The windowed cells are byte-identical for every
	// shard and worker count. Nil disables the layer.
	Series *obs.Series

	// Faults, when non-nil, is a live fault-injection schedule: its timed
	// down/up events flow through the event queue alongside packets, and a
	// packet transmitted across a dead link or node drops with the
	// DropCauseFault cause. Nil (the default) leaves the run bit-identical
	// to the fault-free engine.
	Faults *failure.FaultPlan
	// Timeline, when non-nil (and Faults is set), receives per-epoch
	// delivery/drop statistics — one epoch per fault-event boundary. A
	// Timeline must not be shared across concurrent runs.
	Timeline *Timeline
}

// Instrument names registered on Config.Metrics by Run.
const (
	MetricDelivered   = "packetsim_delivered"
	MetricDroppedTail = "packetsim_dropped_droptail"
	MetricQueueDepth  = "packetsim_queue_depth_pkts"
	MetricHops        = "packetsim_hops"
	MetricLatencyNs   = "packetsim_latency_ns"
)

// Default returns a GbE-like configuration: 125 MB/s links, 1 us delay,
// 100-packet queues, 1500-byte packets, flows injecting at link rate.
func Default() Config {
	return Config{
		LinkBandwidthBps:  125e6,
		LinkDelaySec:      1e-6,
		QueueLimitPackets: 100,
		MTU:               1500,
		FlowRateBps:       125e6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LinkBandwidthBps <= 0 || c.FlowRateBps <= 0 {
		return fmt.Errorf("packetsim: bandwidth and flow rate must be positive")
	}
	if c.MTU <= 0 {
		return fmt.Errorf("packetsim: MTU must be positive")
	}
	if c.QueueLimitPackets < 1 {
		return fmt.Errorf("packetsim: queue limit must be >= 1")
	}
	if c.LinkDelaySec < 0 {
		return fmt.Errorf("packetsim: negative link delay")
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	// Delivered and Dropped count packets (Dropped is drop-tail overflow).
	Delivered, Dropped int
	// DroppedFault counts packets lost to a failed link or node while a
	// fault plan was active (always 0 without one).
	DroppedFault int
	// AvgLatencySec and P99LatencySec summarize delivered-packet latency.
	AvgLatencySec, P99LatencySec float64
	// MakespanSec is the time the last packet was delivered.
	MakespanSec float64
	// ThroughputBps is delivered bytes divided by the makespan.
	ThroughputBps float64
}

// DropRate returns dropped (any cause) / offered.
func (r Result) DropRate() float64 {
	total := r.Delivered + r.Dropped + r.DroppedFault
	if total == 0 {
		return 0
	}
	return float64(r.Dropped+r.DroppedFault) / float64(total)
}

// simEvent is an unboxed event payload: packet pn of flow has just reached
// position idx of its path. idx == 0 means the packet is being injected at
// its source (forwarded arrivals always have idx >= 1), which doubles as
// the cue to schedule the flow's next injection. The packet's send time and
// trace id derive from (flow, pn), so the event carries no pointers and a
// Push/Pop moves 16 bytes inline through the heap. A negative flow marks a
// fault-plan event instead: pn indexes the plan and idx is unused.
type simEvent struct {
	flow int32
	pn   int32 // packet number within the flow
	idx  int32 // index into the flow's path of the node just reached
}

// Run simulates the given workload on a structure, routing each flow with
// the structure's own routing algorithm and injecting its packets at the
// configured flow rate starting at time zero.
//
// Injection is lazy: the queue holds one pending-injection event per flow
// (plus in-flight packets), not every future packet, so heavy all-to-all
// workloads no longer materialize O(total packets) events up front. Event
// keys reproduce the eager engine's numbering — injections take
// flowBase+pn, forwards a counter starting past all injections — so the pop
// sequence, and therefore every float operation, is identical to the
// reference engine's.
func Run(t topology.Topology, flows []traffic.Flow, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	plan, err := planFor(t, flows)
	if err != nil {
		return Result{}, err
	}

	txTime := float64(cfg.MTU) / cfg.LinkBandwidthBps
	gap := float64(cfg.MTU) / cfg.FlowRateBps

	// packets[i] is flow i's packet count; base[i] its first packet's event
	// key (the eager engine's per-packet seq numbering, preserved so ties
	// between flows resolve identically).
	packets := make([]int32, len(flows))
	base := make([]int64, len(flows))
	var totalPackets int64
	q := eventq.New[simEvent](64)
	for i, f := range flows {
		base[i] = totalPackets
		if len(plan.paths[i]) < 2 {
			continue // src == dst
		}
		packets[i] = int32((f.Bytes + int64(cfg.MTU) - 1) / int64(cfg.MTU))
		totalPackets += int64(packets[i])
		if packets[i] > 0 {
			q.Push(f.StartSec, base[i], simEvent{flow: int32(i), pn: 0, idx: 0})
		}
	}
	seq := totalPackets // forwarded-event keys sort after all injections

	// Live faults: schedule events carry negative keys, so a fault at time T
	// applies before any packet event at T, and plan order breaks same-time
	// ties. Nothing is pushed (and fs stays nil) without a plan.
	var fs *faultState
	if cfg.Faults != nil {
		fs, err = newFaultState(cfg.Faults, t.Network(), cfg.Timeline, cfg.Metrics, cfg.Trace)
		if err != nil {
			return Result{}, err
		}
		for i, fe := range cfg.Faults.Events {
			q.Push(fe.TimeSec, int64(i)-int64(len(cfg.Faults.Events)),
				simEvent{flow: -1, pn: int32(i)})
		}
	}

	// Instrumentation: hoisted nil-able instruments; every update below is a
	// nil-check no-op when cfg.Metrics/cfg.Trace are unset.
	var (
		cDelivered = cfg.Metrics.Counter(MetricDelivered)
		cDropped   = cfg.Metrics.Counter(MetricDroppedTail)
		cFault     = cfg.Metrics.Counter(MetricDroppedFault)
		hQueue     = cfg.Metrics.Histogram(MetricQueueDepth)
		hHops      = cfg.Metrics.Histogram(MetricHops)
		hLatency   = cfg.Metrics.Histogram(MetricLatencyNs)
		tracer     = cfg.Trace
		st         = newSeriesTracks(cfg.Series)
	)

	// linkFree[r] is when directed link resource r's transmitter frees.
	linkFree := make([]float64, plan.numRes)
	var res Result
	latencies := make([]float64, 0, totalPackets)
	var deliveredBytes int64

	for q.Len() > 0 {
		now, _, ev := q.Pop()
		if ev.flow < 0 {
			fs.apply(now, int(ev.pn))
			continue
		}
		fi := int(ev.flow)
		path := plan.paths[fi]
		if ev.idx == 0 && ev.pn+1 < packets[fi] {
			// This packet just left its source: queue the flow's next
			// injection. The send-time formula matches the eager engine's
			// bit for bit.
			pn := ev.pn + 1
			q.Push(flows[fi].StartSec+float64(pn)*gap, base[fi]+int64(pn),
				simEvent{flow: ev.flow, pn: pn, idx: 0})
		}
		idx := int(ev.idx)
		if idx == len(path)-1 {
			sentAt := flows[fi].StartSec + float64(ev.pn)*gap
			res.Delivered++
			deliveredBytes += int64(cfg.MTU)
			lat := now - sentAt
			latencies = append(latencies, lat)
			if now > res.MakespanSec {
				res.MakespanSec = now
			}
			cDelivered.Inc()
			hHops.Observe(int64(len(path) - 1))
			hLatency.Observe(int64(lat * 1e9))
			if st.armed {
				st.goodput.Add(int64(now*1e9), int64(cfg.MTU))
			}
			if fs != nil {
				fs.cur.Delivered++
				fs.cur.DeliveredBytes += int64(cfg.MTU)
			}
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "deliver",
					ID: base[fi] + int64(ev.pn), Node: path[idx], Hop: idx})
			}
			continue
		}
		r := plan.flowRes(fi)[idx]
		if fs != nil && !fs.hopAlive(path[idx], path[idx+1], r) {
			// The next hop touches a dead component: the packet is lost.
			res.DroppedFault++
			cFault.Inc()
			fs.cur.DroppedFault++
			if st.armed {
				st.dropFault.Add(int64(now*1e9), 1)
			}
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "drop",
					ID: base[fi] + int64(ev.pn), Node: path[idx], Hop: idx, Detail: DropCauseFault})
			}
			continue
		}
		// Drop-tail: the backlog ahead of us, in packets, is the remaining
		// busy time divided by the per-packet transmit time.
		backlog := (linkFree[r] - now) / txTime
		if hQueue != nil {
			hQueue.Observe(int64(math.Max(backlog, 0)))
		}
		if st.armed {
			st.queue.Add(int64(now*1e9), int64(math.Max(backlog, 0)))
		}
		if backlog > float64(cfg.QueueLimitPackets) {
			res.Dropped++
			cDropped.Inc()
			if fs != nil {
				fs.cur.DroppedTail++
			}
			if st.armed {
				st.dropTail.Add(int64(now*1e9), 1)
			}
			if tracer != nil {
				tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "drop",
					ID: base[fi] + int64(ev.pn), Node: path[idx], Hop: idx, Detail: DropCauseTail})
			}
			continue
		}
		if tracer != nil {
			tracer.Record(obs.Event{TimeNs: int64(now * 1e9), Kind: "hop",
				ID: base[fi] + int64(ev.pn), Node: path[idx], Hop: idx})
		}
		start := math.Max(now, linkFree[r])
		done := start + txTime
		linkFree[r] = done
		q.Push(done+cfg.LinkDelaySec, seq, simEvent{flow: ev.flow, pn: ev.pn, idx: ev.idx + 1})
		seq++
	}

	if len(latencies) > 0 {
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.AvgLatencySec = sum / float64(len(latencies))
		res.P99LatencySec = quantile(latencies, 0.99)
	}
	if res.MakespanSec > 0 {
		res.ThroughputBps = float64(deliveredBytes) / res.MakespanSec
	}
	if fs != nil {
		fs.finish(res.MakespanSec)
	}
	return res, nil
}

// flowsimRoute mirrors flowsim.RoutePaths without importing it (avoiding a
// dependency between the two simulators).
func flowsimRoute(t topology.Topology, flows []traffic.Flow) ([]topology.Path, error) {
	servers := t.Network().Servers()
	paths := make([]topology.Path, len(flows))
	for i, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return nil, fmt.Errorf("packetsim: flow %d endpoints out of range", i)
		}
		p, err := t.Route(servers[f.Src], servers[f.Dst])
		if err != nil {
			return nil, fmt.Errorf("packetsim: route flow %d: %w", i, err)
		}
		paths[i] = p
	}
	return paths, nil
}
