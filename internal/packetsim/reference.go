package packetsim

// This file preserves the pre-overhaul discrete-event engines — eager
// per-packet materialization onto a binary container/heap, with per-hop
// EdgeBetween adjacency scans — exactly as they shipped, modulo the
// nearest-rank p99 fix (applied to both engines so the comparison is about
// the event machinery, not the quantile formula). They exist only as the
// oracle for the equivalence tests and the baseline for the engine
// benchmarks: the production Run/RunTransport now compile routes once and
// drive an unboxed 4-ary eventq.Queue with lazy packet injection, and the
// tests pin their Result/TransportResult byte-identical to these.

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// refEvent is a packet arriving at position idx of its path at time t.
type refEvent struct {
	t   float64
	seq int64 // deterministic tie-break
	pkt *refPacket
	idx int // index into pkt.path of the node just reached
}

// refPacket is heap-allocated once per simulated packet — the allocation the
// lazy-injection engine eliminates.
type refPacket struct {
	path    topology.Path
	bytes   int
	sentAt  float64
	flowIdx int32
	id      int32
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// referenceRun is the pre-overhaul Run.
func referenceRun(t topology.Topology, flows []traffic.Flow, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	paths, err := flowsimRoute(t, flows)
	if err != nil {
		return Result{}, err
	}
	g := t.Network().Graph()

	txTime := float64(cfg.MTU) / cfg.LinkBandwidthBps
	gap := float64(cfg.MTU) / cfg.FlowRateBps

	var h refEventHeap
	var seq int64
	for i, f := range flows {
		if len(paths[i]) < 2 {
			continue // src == dst
		}
		packets := int((f.Bytes + int64(cfg.MTU) - 1) / int64(cfg.MTU))
		for pn := 0; pn < packets; pn++ {
			sent := f.StartSec + float64(pn)*gap
			h = append(h, refEvent{
				t:   sent,
				seq: seq,
				pkt: &refPacket{path: paths[i], bytes: cfg.MTU, sentAt: sent, flowIdx: int32(i), id: int32(seq)},
				idx: 0,
			})
			seq++
		}
	}
	heap.Init(&h)

	linkFree := make([]float64, 2*g.NumEdges())
	var res Result
	var latencies []float64
	var deliveredBytes int64

	for h.Len() > 0 {
		ev := heap.Pop(&h).(refEvent)
		pkt, idx := ev.pkt, ev.idx
		if idx == len(pkt.path)-1 {
			res.Delivered++
			deliveredBytes += int64(pkt.bytes)
			latencies = append(latencies, ev.t-pkt.sentAt)
			if ev.t > res.MakespanSec {
				res.MakespanSec = ev.t
			}
			continue
		}
		u, v := pkt.path[idx], pkt.path[idx+1]
		e := g.EdgeBetween(u, v)
		r := 2 * e
		if u > v {
			r++
		}
		backlog := (linkFree[r] - ev.t) / txTime
		if backlog > float64(cfg.QueueLimitPackets) {
			res.Dropped++
			continue
		}
		start := math.Max(ev.t, linkFree[r])
		done := start + txTime
		linkFree[r] = done
		heap.Push(&h, refEvent{t: done + cfg.LinkDelaySec, seq: seq, pkt: pkt, idx: idx + 1})
		seq++
	}

	if len(latencies) > 0 {
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.AvgLatencySec = sum / float64(len(latencies))
		res.P99LatencySec = quantile(latencies, 0.99)
	}
	if res.MakespanSec > 0 {
		res.ThroughputBps = float64(deliveredBytes) / res.MakespanSec
	}
	return res, nil
}

// refTflow is the per-flow sender/receiver state of the old transport.
type refTflow struct {
	fwd, rev topology.Path
	total    int

	nextSend int
	acked    int
	dupAcks  int
	inflight int
	cwnd     float64
	ssthresh float64
	rto      float64
	timerGen int64
	done     bool
	start    float64
	finish   float64

	rcvNext int
	buffer  map[int]bool
	rcvCE   bool

	ecnHoldUntil int
}

// refTpkt is a transport packet in flight (one heap allocation per send —
// another cost the value-event engine removes).
type refTpkt struct {
	flow  int
	seq   int
	isAck bool
	ce    bool
}

// startGen marks a flow-start event rather than a retransmission timer.
const startGen = -1

// refTevent is either a packet arrival (pkt != nil), a flow timer, or a flow
// start (gen == startGen).
type refTevent struct {
	t    float64
	ord  int64
	pkt  *refTpkt
	idx  int
	flow int
	gen  int64
}

type refTeventHeap []refTevent

func (h refTeventHeap) Len() int { return len(h) }
func (h refTeventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].ord < h[j].ord
}
func (h refTeventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refTeventHeap) Push(x any)   { *h = append(*h, x.(refTevent)) }
func (h *refTeventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refTransportRun is the old mutable transport state.
type refTransportRun struct {
	cfg    TransportConfig
	net    *topology.Network
	flows  []*refTflow
	h      refTeventHeap
	ord    int64
	now    float64
	events int64

	linkFree   []float64
	retransmit int
	ecnMarks   int
}

// referenceRunTransport is the pre-overhaul RunTransport.
func referenceRunTransport(t topology.Topology, flows []traffic.Flow, cfg TransportConfig) (TransportResult, error) {
	if err := cfg.Validate(); err != nil {
		return TransportResult{}, err
	}
	paths, err := flowsimRoute(t, flows)
	if err != nil {
		return TransportResult{}, err
	}
	run := &refTransportRun{
		cfg:      cfg,
		net:      t.Network(),
		linkFree: make([]float64, 2*t.Network().Graph().NumEdges()),
	}
	for i, f := range flows {
		if len(paths[i]) < 2 {
			continue // local flow: nothing to transport
		}
		rev := make(topology.Path, len(paths[i]))
		for j, node := range paths[i] {
			rev[len(paths[i])-1-j] = node
		}
		fl := &refTflow{
			fwd:      paths[i],
			rev:      rev,
			total:    int((f.Bytes + int64(cfg.Link.MTU) - 1) / int64(cfg.Link.MTU)),
			cwnd:     cfg.InitCwnd,
			ssthresh: cfg.MaxCwnd,
			rto:      cfg.RTOSec,
			start:    f.StartSec,
			buffer:   make(map[int]bool),
		}
		run.flows = append(run.flows, fl)
		run.ord++
		run.h = append(run.h, refTevent{t: f.StartSec, ord: run.ord, flow: len(run.flows) - 1, gen: startGen})
	}
	heap.Init(&run.h)

	for run.h.Len() > 0 {
		run.events++
		if run.events > cfg.MaxEvents {
			return TransportResult{}, fmt.Errorf("packetsim: transport exceeded %d events", cfg.MaxEvents)
		}
		ev := heap.Pop(&run.h).(refTevent)
		run.now = ev.t
		if ev.pkt == nil {
			if ev.gen == startGen {
				run.pump(ev.flow)
			} else {
				run.onTimer(ev.flow, ev.gen)
			}
			continue
		}
		run.onArrival(ev)
	}

	return run.results(), nil
}

func (r *refTransportRun) pump(flow int) {
	f := r.flows[flow]
	for !f.done && f.inflight < int(f.cwnd) && f.nextSend < f.total {
		r.sendData(flow, f.nextSend, false)
		f.nextSend++
		f.inflight++
	}
	if !f.done && f.acked < f.total {
		r.armTimer(flow)
	}
}

func (r *refTransportRun) armTimer(flow int) {
	f := r.flows[flow]
	f.timerGen++
	r.ord++
	heap.Push(&r.h, refTevent{t: r.now + f.rto, ord: r.ord, flow: flow, gen: f.timerGen})
}

func (r *refTransportRun) sendData(flow, seq int, rtx bool) {
	if rtx {
		r.retransmit++
	}
	r.transmit(&refTpkt{flow: flow, seq: seq}, r.flows[flow].fwd, 0, r.cfg.Link.MTU)
}

func (r *refTransportRun) transmit(p *refTpkt, path topology.Path, idx, bytes int) {
	u, v := path[idx], path[idx+1]
	g := r.net.Graph()
	e := g.EdgeBetween(u, v)
	res := 2 * e
	if u > v {
		res++
	}
	txTime := float64(bytes) / r.cfg.Link.LinkBandwidthBps
	backlog := (r.linkFree[res] - r.now) / txTime
	if backlog > float64(r.cfg.Link.QueueLimitPackets) {
		return // drop-tail: the transport's loss recovery will handle it
	}
	if r.cfg.ECN && !p.isAck && backlog > float64(r.cfg.ECNThresholdPackets) && !p.ce {
		p.ce = true
		r.ecnMarks++
	}
	start := math.Max(r.now, r.linkFree[res])
	done := start + txTime
	r.linkFree[res] = done
	r.ord++
	heap.Push(&r.h, refTevent{t: done + r.cfg.Link.LinkDelaySec, ord: r.ord, pkt: p, idx: idx + 1})
}

func (r *refTransportRun) onArrival(ev refTevent) {
	p := ev.pkt
	f := r.flows[p.flow]
	path := f.fwd
	bytes := r.cfg.Link.MTU
	if p.isAck {
		path = f.rev
		bytes = r.cfg.AckBytes
	}
	if ev.idx < len(path)-1 {
		r.transmit(p, path, ev.idx, bytes)
		return
	}
	if p.isAck {
		r.onAck(p.flow, p.seq, p.ce)
		return
	}
	r.onData(p.flow, p.seq, p.ce)
}

func (r *refTransportRun) onData(flow, seq int, ce bool) {
	f := r.flows[flow]
	if seq >= f.rcvNext {
		f.buffer[seq] = true
		for f.buffer[f.rcvNext] {
			delete(f.buffer, f.rcvNext)
			f.rcvNext++
		}
	}
	echo := f.rcvCE || ce
	f.rcvCE = false
	r.transmit(&refTpkt{flow: flow, seq: f.rcvNext, isAck: true, ce: echo}, f.rev, 0, r.cfg.AckBytes)
}

func (r *refTransportRun) onAck(flow, ackNo int, ce bool) {
	f := r.flows[flow]
	if f.done {
		return
	}
	if r.cfg.ECN && ce && ackNo >= f.ecnHoldUntil {
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.ecnHoldUntil = f.nextSend
	}
	switch {
	case ackNo > f.acked:
		newly := ackNo - f.acked
		f.acked = ackNo
		f.dupAcks = 0
		f.inflight -= newly
		if f.inflight < 0 {
			f.inflight = 0
		}
		for i := 0; i < newly; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++ // slow start
			} else {
				f.cwnd += 1 / f.cwnd // congestion avoidance
			}
		}
		if f.cwnd > r.cfg.MaxCwnd {
			f.cwnd = r.cfg.MaxCwnd
		}
		f.rto = r.cfg.RTOSec
		if f.acked >= f.total {
			f.done = true
			f.finish = r.now
			f.timerGen++
			return
		}
		r.armTimer(flow)
	case ackNo == f.acked:
		f.dupAcks++
		if f.dupAcks == r.cfg.DupAckThreshold {
			f.ssthresh = math.Max(f.cwnd/2, 2)
			f.cwnd = f.ssthresh
			f.dupAcks = 0
			if f.inflight > 0 {
				f.inflight--
			}
			r.sendData(flow, f.acked, true)
		}
	}
	r.pump(flow)
}

func (r *refTransportRun) onTimer(flow int, gen int64) {
	f := r.flows[flow]
	if f.done || gen != f.timerGen {
		return
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inflight = 1
	f.dupAcks = 0
	f.rto = math.Min(f.rto*2, 64*r.cfg.RTOSec)
	r.sendData(flow, f.acked, true)
	r.armTimer(flow)
}

func (r *refTransportRun) results() TransportResult {
	var res TransportResult
	res.Retransmits = r.retransmit
	res.ECNMarks = r.ecnMarks
	var fcts []float64
	var payload int64
	for _, f := range r.flows {
		if !f.done {
			continue
		}
		res.CompletedFlows++
		fcts = append(fcts, f.finish-f.start)
		payload += int64(f.total) * int64(r.cfg.Link.MTU)
		if f.finish > res.MakespanSec {
			res.MakespanSec = f.finish
		}
	}
	if len(fcts) > 0 {
		sum := 0.0
		for _, t := range fcts {
			sum += t
		}
		res.MeanFCTSec = sum / float64(len(fcts))
		res.P99FCTSec = quantile(fcts, 0.99)
	}
	if res.MakespanSec > 0 {
		res.GoodputBps = float64(payload) / res.MakespanSec
	}
	return res
}
