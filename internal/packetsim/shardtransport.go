// The sharded transport engine: RunTransport partitioned by topology shard
// and driven by the conservative window loop in shard.go. Sender state lives
// on the source node's shard, receiver state on the destination's, and every
// link resource on its transmitter's shard, so each field of a flow is
// written by exactly one shard.
//
// Two modeling choices diverge (deliberately) from the serial engine, both
// forced by the shard cut and both documented in ALGORITHMS.md:
//
//   - Packets carry their path. The serial engine resolves a packet's route
//     at every hop from mutable per-flow state and discards packets whose
//     route-epoch stamp went stale after a reroute. Mid-path reads of sender
//     state cannot cross shards, so here every event carries an immutable
//     *pathAlt and rides it end to end; packets in flight on a superseded
//     path are not discarded — they either drop at a dead hop with
//     DropCauseFault or arrive late (the receiver's cumulative-ACK machinery
//     absorbs both). DroppedStale is always zero in a sharded run.
//   - ACKs reverse the arriving packet's path. The serial receiver ACKs over
//     the flow's current route (sender state); here it reverses the path the
//     data packet actually took.
//
// Determinism: every event key is derived from packet identity — a per-flow
// journey number assigned where the journey starts, in that shard's
// deterministic event order — never from push order, so results are
// byte-identical for every shard count and GOMAXPROCS.

package packetsim

import (
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Event-key spaces of the sharded transport. Within one shard heap, at equal
// times: fault transitions (negative keys) apply first, then flow starts
// [0, nf), then data/ACK packets [nf, stProbeKeyBase), then probes, then
// timers. Every live event's key is unique: a packet journey (one sendData or
// one ACK emission) has exactly one live event, and timers/probes bump their
// generation before each push.
const (
	stProbeKeyBase = int64(1) << 60
	stTimerKeyBase = int64(1) << 61
)

// stevent is the sharded transport's unboxed event. Unlike tevent it carries
// its (immutable) path and its heap key, so any shard can advance the packet
// without reading flow state.
type stevent struct {
	path *pathAlt
	key  int64
	flow int32
	seq  int32 // data sequence / cumulative ack (data, ack); plan index (fault)
	gen  int32 // timer generation (timer); probe generation (probe)
	idx  int16 // position along the packet's path (reverse position for ACKs)
	kind uint8
	ce   bool
}

// stflow is per-flow transport state, field-partitioned by owner shard:
// sender fields are only touched while processing events on srcShard,
// receiver fields only on dstShard, so shards never race on a flow.
type stflow struct {
	total              int
	srcShard, dstShard int32

	// Sender (owned by srcShard). cur is the active path — an immutable
	// snapshot shared with every packet sent on it; curIdx is its scoreboard
	// index (-1 after a RouteAvoiding recompile).
	cur      *pathAlt
	curIdx   int
	nextSend int
	acked    int
	dupAcks  int
	inflight int
	cwnd     float64
	ssthresh float64
	rto      float64
	timerGen int32
	done     bool
	start    float64
	finish   float64

	planEpoch    int32
	timeouts     int
	aborted      bool
	started      bool
	dataJn       int32 // data journeys launched (key assignment)
	ecnHoldUntil int

	// Multipath scoreboard (nil alts when the layer is off); alts aliases the
	// shared multipathPlan and is never mutated.
	alts     []pathAlt
	probing  []bool
	probeGen []int32
	backoff  []float64

	// Receiver (owned by dstShard).
	rcvNext int
	buffer  map[int]bool
	rcvCE   bool
	ackJn   int32 // ACK journeys launched (key assignment)
}

// stShard is one shard of the transport engine: its heap, failure view, and
// local tallies.
type stShard struct {
	id  int
	win windowShard[stevent]
	fs  *faultState
	now float64

	retransmit, ecnMarks, reroutes int
	faultDrops, failedFlows        int
	failovers, pathSwitches        int
	probeOK, probeFail             int
}

// stRun is the shared immutable-or-partitioned state of a sharded transport
// run. linkFree is written only by each resource's owner shard; the obs
// instruments are atomic (or mutex-protected, for the tracer).
type stRun struct {
	cfg        TransportConfig
	flows      []stflow
	shards     []*stShard
	linkFree   []float64
	nodeShard  []int32
	localFlows [][]int32 // flow indices by source shard, ascending

	net     *topology.Network
	g       *graph.Graph
	frouter topology.FaultRouter
	mpK     int
	nf      int64

	cRtx, cECN, cDone, cDrops              *obs.Counter
	cFault, cReroute, cFailed              *obs.Counter
	cDataSent, cDataArr, cAckSent, cAckArr *obs.Counter
	cFailover, cSwitch                     *obs.Counter
	cProbeOK, cProbeFail                   *obs.Counter
	cPathBytes                             []*obs.Counter
	hQueue                                 *obs.Histogram
	tracer                                 *obs.Tracer
	st                                     seriesTracks
}

// pktKey returns the event key of one packet journey: journey jn of the
// flow, ackBit 1 for ACK journeys. Injective in (jn, ackBit, flow) and
// disjoint from the start-key range [0, nf).
func (r *stRun) pktKey(jn int32, ackBit int64, flow int32) int64 {
	return r.nf + (int64(jn)*2+ackBit)*r.nf + int64(flow)
}

// RunTransportSharded simulates the same transport as RunTransport across
// opts.Shards topology shards. The result is byte-identical for every shard
// count and GOMAXPROCS; against the serial RunTransport it is equivalent up
// to the same-time tie-break rule and the two in-flight-path modeling
// differences documented at the top of this file (bit-identical whenever no
// reroute happens mid-flight; the tolerance tests in shard_test.go pin the
// rest). Trace-event order across concurrent shards is nondeterministic; use
// ShardOpts{Workers: 1} for a stable trace.
func RunTransportSharded(t topology.Topology, flows []traffic.Flow, cfg TransportConfig, opts ShardOpts) (TransportResult, error) {
	if err := cfg.Validate(); err != nil {
		return TransportResult{}, err
	}
	if cfg.OnFlowDone != nil {
		// Shards drain their windows in parallel, so cross-shard callback
		// order would depend on the worker schedule; closed-loop layers
		// need the serial engine's total event order.
		return TransportResult{}, fmt.Errorf("packetsim: OnFlowDone requires the serial engine (RunTransport)")
	}
	plan, err := planFor(t, flows)
	if err != nil {
		return TransportResult{}, err
	}
	net := t.Network()
	numShards, workers := opts.normalized(net.Graph().NumNodes())

	run := &stRun{
		cfg:       cfg,
		linkFree:  make([]float64, plan.numRes),
		nodeShard: topology.ShardNodes(t, numShards),
		net:       net,
		g:         net.Graph(),
		cRtx:      cfg.Link.Metrics.Counter(MetricRetransmits),
		cECN:      cfg.Link.Metrics.Counter(MetricECNMarks),
		cDone:     cfg.Link.Metrics.Counter(MetricCompletedFlows),
		cDrops:    cfg.Link.Metrics.Counter(MetricTransportDrops),
		cFault:    cfg.Link.Metrics.Counter(MetricTransportFaultDrops),
		cReroute:  cfg.Link.Metrics.Counter(MetricReroutes),
		cFailed:   cfg.Link.Metrics.Counter(MetricFailedFlows),
		cDataSent: cfg.Link.Metrics.Counter(MetricDataSent),
		cDataArr:  cfg.Link.Metrics.Counter(MetricDataArrived),
		cAckSent:  cfg.Link.Metrics.Counter(MetricAckSent),
		cAckArr:   cfg.Link.Metrics.Counter(MetricAckArrived),
		hQueue:    cfg.Link.Metrics.Histogram(MetricQueueDepth),
		tracer:    cfg.Link.Trace,
		st:        newSeriesTracks(cfg.Link.Series),
	}

	var mpPlan *multipathPlan
	if cfg.Multipath && cfg.Faults != nil {
		run.mpK = cfg.MultipathPaths
		if run.mpK <= 0 {
			run.mpK = DefaultMultipathPaths
		}
		if mpPlan, err = plan.multipathFor(t, run.mpK); err != nil {
			return TransportResult{}, err
		}
		run.cFailover = cfg.Link.Metrics.Counter(MetricFailovers)
		run.cSwitch = cfg.Link.Metrics.Counter(MetricPathSwitches)
		run.cProbeOK = cfg.Link.Metrics.Counter(MetricProbeSuccess)
		run.cProbeFail = cfg.Link.Metrics.Counter(MetricProbeFailure)
		run.cPathBytes = make([]*obs.Counter, run.mpK+1)
		for j := range run.cPathBytes {
			run.cPathBytes[j] = cfg.Link.Metrics.Counter(pathGoodputMetric(j, run.mpK))
		}
	}

	run.shards = make([]*stShard, numShards)
	winArr := make([]*windowShard[stevent], numShards)
	run.localFlows = make([][]int32, numShards)
	for s := range run.shards {
		sh := &stShard{id: s}
		sh.win.q = *eventq.New[stevent](64)
		sh.win.out = make([][]handoff[stevent], numShards)
		run.shards[s] = sh
		winArr[s] = &sh.win
	}

	// Build the compacted flow table (local flows never transport, matching
	// the serial engine's indexing) with a stable primary pathAlt per flow.
	prims := make([]pathAlt, 0, len(flows))
	for i, f := range flows {
		if len(plan.paths[i]) < 2 {
			continue
		}
		prims = append(prims, pathAlt{fwd: plan.paths[i], res: plan.flowRes(i)})
		p := plan.paths[i]
		fl := stflow{
			total:    int((f.Bytes + int64(cfg.Link.MTU) - 1) / int64(cfg.Link.MTU)),
			srcShard: run.nodeShard[p[0]],
			dstShard: run.nodeShard[p[len(p)-1]],
			cwnd:     cfg.InitCwnd,
			ssthresh: cfg.MaxCwnd,
			rto:      cfg.RTOSec,
			start:    f.StartSec,
		}
		if mpPlan != nil {
			fl.alts = mpPlan.alts[i]
			fl.probing = make([]bool, len(fl.alts))
			fl.probeGen = make([]int32, len(fl.alts))
			fl.backoff = make([]float64, len(fl.alts))
			for j := range fl.backoff {
				fl.backoff[j] = cfg.RTOSec
			}
		}
		run.flows = append(run.flows, fl)
	}
	run.nf = int64(len(run.flows))
	for k := range run.flows {
		f := &run.flows[k]
		if f.alts != nil {
			f.cur = &f.alts[0] // aliases the shared plan's primary
		} else {
			f.cur = &prims[k]
		}
		s := int(f.srcShard)
		run.localFlows[s] = append(run.localFlows[s], int32(k))
		// Flows open at their arrival time, on their source shard.
		run.shards[s].win.q.Push(f.start, int64(k), stevent{flow: int32(k), kind: tevStart})
	}

	// Fault plans replicate into every shard's queue (negative keys: a
	// transition at time T applies before any packet event at T, in plan
	// order), so all per-shard failure views agree at every instant.
	var faultStates []*faultState
	if cfg.Faults != nil {
		faultStates, err = newShardFaultStates(cfg.Faults, net, numShards,
			cfg.Timeline != nil, cfg.Link.Metrics, cfg.Link.Trace)
		if err != nil {
			return TransportResult{}, err
		}
		run.frouter, _ = t.(topology.FaultRouter)
		for s, sh := range run.shards {
			for i, fe := range cfg.Faults.Events {
				sh.win.q.Push(fe.TimeSec, int64(i)-int64(len(cfg.Faults.Events)),
					stevent{kind: tevFault, seq: int32(i)})
			}
			sh.fs = faultStates[s]
		}
	}

	// Lookahead: the cheapest hop any cross-shard packet can take is one ACK
	// transmit time plus the propagation delay.
	minBytes := cfg.Link.MTU
	if cfg.AckBytes < minBytes {
		minBytes = cfg.AckBytes
	}
	lookahead := float64(minBytes)/cfg.Link.LinkBandwidthBps + cfg.Link.LinkDelaySec

	drain := func(s int, end float64) {
		sh := run.shards[s]
		for sh.win.q.Len() > 0 {
			if t, _, _ := sh.win.q.Peek(); t >= end {
				return
			}
			now, _, ev := sh.win.q.Pop()
			sh.win.processed++
			sh.now = now
			switch ev.kind {
			case tevStart:
				run.flows[ev.flow].started = true
				run.pump(sh, int(ev.flow))
			case tevTimer:
				run.onTimer(sh, int(ev.flow), ev.gen)
			case tevFault:
				sh.fs.apply(now, int(ev.seq))
				run.onFaultEvent(sh)
			case tevProbe:
				run.onProbe(sh, int(ev.flow), int(ev.seq), ev.gen)
			default:
				run.onArrival(sh, ev)
			}
		}
	}

	driver := newShardDriver(numShards, workers, cfg.Link.Metrics, cfg.Link.Trace, opts.Profile)
	if err := runWindows(driver, winArr, lookahead, drain, cfg.MaxEvents); err != nil {
		return TransportResult{}, err
	}
	return run.results(faultStates)
}

// pump sends new data while the window allows.
func (r *stRun) pump(sh *stShard, flow int) {
	f := &r.flows[flow]
	if f.aborted {
		return
	}
	for !f.done && f.inflight < int(f.cwnd) && f.nextSend < f.total {
		r.sendData(sh, flow, f.nextSend, false)
		f.nextSend++
		f.inflight++
	}
	if !f.done && f.acked < f.total {
		r.armTimer(sh, flow)
	}
}

// armTimer (re)schedules the flow's retransmission timer (always local: the
// timer lives on the sender's shard).
func (r *stRun) armTimer(sh *stShard, flow int) {
	f := &r.flows[flow]
	f.timerGen++
	key := stTimerKeyBase + int64(f.timerGen)*r.nf + int64(flow)
	sh.win.push(sh.id, sh.id, sh.now+f.rto,
		key, stevent{flow: int32(flow), gen: f.timerGen, kind: tevTimer})
}

// sendData launches one data-packet journey on the flow's active path.
func (r *stRun) sendData(sh *stShard, flow, seq int, rtx bool) {
	f := &r.flows[flow]
	if rtx {
		sh.retransmit++
		r.cRtx.Inc()
		if r.st.armed {
			r.st.rtx.Add(int64(sh.now*1e9), 1)
		}
		if sh.fs != nil {
			sh.fs.cur.Retransmits++
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "retransmit",
				ID: int64(flow), Node: f.cur.fwd[0], Hop: seq})
		}
	}
	key := r.pktKey(f.dataJn, 0, int32(flow))
	f.dataJn++
	r.transmit(sh, stevent{path: f.cur, key: key, flow: int32(flow), seq: int32(seq), kind: tevData}, 0)
}

// transmit pushes packet ev onto the link at position idx of its path —
// exactly the serial engine's queueing model, except the path comes from the
// event, not the flow. The transmitter node is always local to sh, so its
// linkFree element is only ever written here, by its owner shard.
func (r *stRun) transmit(sh *stShard, ev stevent, idx int) {
	p := ev.path
	isAck := ev.kind == tevAck
	bytes := r.cfg.Link.MTU
	last := len(p.fwd) - 2 // index of the final hop on either direction
	var res int32
	var u, v int
	if isAck {
		bytes = r.cfg.AckBytes
		res = p.res[last-idx] ^ 1
		u = p.fwd[len(p.fwd)-1-idx]
		v = p.fwd[len(p.fwd)-2-idx]
	} else {
		res = p.res[idx]
		u = p.fwd[idx]
		v = p.fwd[idx+1]
	}
	if idx == 0 {
		// Conservation probe: a packet journey begins (see MetricDataSent).
		if isAck {
			r.cAckSent.Inc()
		} else {
			r.cDataSent.Inc()
		}
	}
	if sh.fs != nil && !sh.fs.hopAlive(u, v, res) {
		sh.faultDrops++
		r.cFault.Inc()
		sh.fs.cur.DroppedFault++
		if r.st.armed {
			r.st.dropFault.Add(int64(sh.now*1e9), 1)
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "drop",
				ID: int64(ev.flow), Node: u, Hop: idx, Detail: DropCauseFault})
		}
		return
	}
	txTime := float64(bytes) / r.cfg.Link.LinkBandwidthBps
	backlog := (r.linkFree[res] - sh.now) / txTime
	if r.hQueue != nil {
		r.hQueue.Observe(int64(math.Max(backlog, 0)))
	}
	if r.st.armed {
		r.st.queue.Add(int64(sh.now*1e9), int64(math.Max(backlog, 0)))
	}
	if backlog > float64(r.cfg.Link.QueueLimitPackets) {
		r.cDrops.Inc()
		if sh.fs != nil {
			sh.fs.cur.DroppedTail++
		}
		if r.st.armed {
			r.st.dropTail.Add(int64(sh.now*1e9), 1)
		}
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "drop",
				ID: int64(ev.flow), Node: u, Hop: idx, Detail: DropCauseTail})
		}
		return // drop-tail: the transport's loss recovery will handle it
	}
	if r.cfg.ECN && !isAck && backlog > float64(r.cfg.ECNThresholdPackets) && !ev.ce {
		ev.ce = true
		sh.ecnMarks++
		r.cECN.Inc()
	}
	start := math.Max(sh.now, r.linkFree[res])
	done := start + txTime
	r.linkFree[res] = done
	ev.idx = int16(idx + 1)
	sh.win.push(int(r.nodeShard[v]), sh.id, done+r.cfg.Link.LinkDelaySec, ev.key, ev)
}

// onArrival advances a packet along its carried path or hands it to the
// endpoint. There is no stale-route check: a packet rides the path it was
// launched on to the end (see the package comment).
func (r *stRun) onArrival(sh *stShard, ev stevent) {
	if int(ev.idx) < len(ev.path.fwd)-1 {
		r.transmit(sh, ev, int(ev.idx))
		return
	}
	if ev.kind == tevAck {
		r.cAckArr.Inc()
		r.onAck(sh, int(ev.flow), int(ev.seq), ev.ce)
		return
	}
	r.cDataArr.Inc()
	r.onData(sh, int(ev.flow), int(ev.seq), ev.ce, ev.path)
}

// onData is the receiver: buffer/advance and emit a cumulative ACK over the
// reverse of the path the data packet arrived on, echoing congestion marks.
func (r *stRun) onData(sh *stShard, flow, seq int, ce bool, path *pathAlt) {
	f := &r.flows[flow]
	if seq == f.rcvNext && f.buffer == nil {
		f.rcvNext++ // in-order fast path
	} else if seq >= f.rcvNext {
		if f.buffer == nil {
			f.buffer = make(map[int]bool)
		}
		f.buffer[seq] = true
		for f.buffer[f.rcvNext] {
			delete(f.buffer, f.rcvNext)
			f.rcvNext++
		}
	}
	echo := f.rcvCE || ce
	f.rcvCE = false
	key := r.pktKey(f.ackJn, 1, int32(flow))
	f.ackJn++
	r.transmit(sh, stevent{path: path, key: key, flow: int32(flow), seq: int32(f.rcvNext), kind: tevAck, ce: echo}, 0)
}

// onAck is the sender: slide the window, grow/shrink cwnd, pump. Identical
// to the serial engine except the dead-path check reads the active path
// snapshot.
func (r *stRun) onAck(sh *stShard, flow, ackNo int, ce bool) {
	f := &r.flows[flow]
	if f.done || f.aborted {
		return
	}
	if r.cfg.ECN && ce && ackNo >= f.ecnHoldUntil {
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.ecnHoldUntil = f.nextSend
	}
	switch {
	case ackNo > f.acked:
		newly := ackNo - f.acked
		f.acked = ackNo
		f.dupAcks = 0
		f.timeouts = 0 // forward progress: reset the give-up counter
		f.inflight -= newly
		if f.inflight < 0 {
			f.inflight = 0
		}
		if sh.fs != nil {
			sh.fs.cur.Delivered += int64(newly)
			sh.fs.cur.DeliveredBytes += int64(newly) * int64(r.cfg.Link.MTU)
		}
		if r.st.armed {
			r.st.goodput.Add(int64(sh.now*1e9), int64(newly)*int64(r.cfg.Link.MTU))
		}
		if f.alts != nil {
			idx := f.curIdx
			if idx < 0 {
				idx = len(r.cPathBytes) - 1
			}
			r.cPathBytes[idx].Add(int64(newly) * int64(r.cfg.Link.MTU))
		}
		for i := 0; i < newly; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++ // slow start
			} else {
				f.cwnd += 1 / f.cwnd // congestion avoidance
			}
		}
		if f.cwnd > r.cfg.MaxCwnd {
			f.cwnd = r.cfg.MaxCwnd
		}
		f.rto = r.cfg.RTOSec
		if f.acked >= f.total {
			f.done = true
			f.finish = sh.now
			f.timerGen++ // cancel the timer
			r.cDone.Inc()
			if sh.fs != nil {
				sh.fs.cur.CompletedFlows++
			}
			if r.tracer != nil {
				r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "flow_done",
					ID: int64(flow), Node: f.cur.fwd[len(f.cur.fwd)-1], Hop: f.total})
			}
			return
		}
		r.armTimer(sh, flow)
	case ackNo == f.acked:
		f.dupAcks++
		if f.dupAcks == r.cfg.DupAckThreshold {
			if f.alts != nil && !f.cur.fwd.Alive(r.net, sh.fs.view) {
				r.failover(sh, flow)
			} else {
				f.ssthresh = math.Max(f.cwnd/2, 2)
				f.cwnd = f.ssthresh
				f.dupAcks = 0
				if f.inflight > 0 {
					f.inflight--
				}
				r.sendData(sh, flow, f.acked, true)
			}
		}
	}
	r.pump(sh, flow)
}

// onTimer fires a retransmission timeout: collapse the window, reroute if
// the failure set changed, abort after MaxFlowTimeouts without progress.
func (r *stRun) onTimer(sh *stShard, flow int, gen int32) {
	f := &r.flows[flow]
	if f.done || f.aborted || gen != f.timerGen {
		return // stale timer
	}
	if sh.fs != nil {
		f.timeouts++
		if r.cfg.MaxFlowTimeouts > 0 && f.timeouts >= r.cfg.MaxFlowTimeouts {
			f.aborted = true
			sh.failedFlows++
			r.cFailed.Inc()
			if r.tracer != nil {
				r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "flow_abort",
					ID: int64(flow), Node: f.cur.fwd[0], Hop: f.acked})
			}
			return // no rearm: the flow's remaining events drain
		}
		if f.planEpoch != sh.fs.epoch {
			r.reroute(sh, flow)
		}
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inflight = 1
	f.dupAcks = 0
	f.rto = math.Min(f.rto*2, 64*r.cfg.RTOSec)
	r.sendData(sh, flow, f.acked, true)
	r.armTimer(sh, flow)
}

// reroute revalidates a flow's route against the current failure view,
// preferring the multipath scoreboard and falling back to RouteAvoiding.
// Unlike the serial engine nothing is orphaned: packets in flight keep their
// carried path (see the package comment). The new pathAlt is a fresh
// allocation — packets already launched keep pointing at the old one.
func (r *stRun) reroute(sh *stShard, flow int) {
	f := &r.flows[flow]
	f.planEpoch = sh.fs.epoch
	if f.cur.fwd.Alive(r.net, sh.fs.view) {
		return // current route survived this failure set
	}
	if f.alts != nil {
		r.probation(sh, flow, f.curIdx)
		if j := r.pickPath(sh, flow); j >= 0 {
			r.switchPath(sh, flow, j)
			return
		}
	}
	if r.frouter == nil {
		return // no fault router: keep timing out until repair
	}
	p, err := r.frouter.RouteAvoiding(f.cur.fwd[0], f.cur.fwd[len(f.cur.fwd)-1], sh.fs.view)
	if err != nil || len(p) < 2 {
		return // unroutable under this failure set: wait for the next epoch
	}
	res, err := appendPathRes(make([]int32, 0, len(p)-1), r.g, p)
	if err != nil {
		return
	}
	f.cur = &pathAlt{fwd: p, res: res}
	if f.alts != nil {
		f.curIdx = -1 // off the scoreboard; probes can pull it back on
	}
	sh.reroutes++
	r.cReroute.Inc()
	sh.fs.cur.Reroutes++
	if r.st.armed {
		r.st.reroute.Add(int64(sh.now*1e9), 1)
	}
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "reroute",
			ID: int64(flow), Node: f.cur.fwd[0], Hop: len(p) - 1})
	}
}

// pickPath returns the lowest-indexed scoreboard path that is alive and not
// in probation; with none, the lowest-indexed alive one; -1 when the whole
// scoreboard is dead (multipath.go's rule exactly).
func (r *stRun) pickPath(sh *stShard, flow int) int {
	f := &r.flows[flow]
	benched := -1
	for j := range f.alts {
		if !f.alts[j].fwd.Alive(r.net, sh.fs.view) {
			continue
		}
		if f.probing[j] {
			if benched < 0 {
				benched = j
			}
			continue
		}
		return j
	}
	return benched
}

// switchPath activates scoreboard path j. Packets in flight on the old path
// ride it out (no route-epoch orphaning here).
func (r *stRun) switchPath(sh *stShard, flow, j int) {
	f := &r.flows[flow]
	f.curIdx = j
	f.cur = &f.alts[j]
	sh.pathSwitches++
	r.cSwitch.Inc()
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "path_switch",
			ID: int64(flow), Node: f.cur.fwd[0], Hop: j})
	}
}

// probation benches scoreboard path j; a probe (local: probes live on the
// sender's shard) re-tests it after the path's exponential backoff.
func (r *stRun) probation(sh *stShard, flow, j int) {
	f := &r.flows[flow]
	if j < 0 || f.probing[j] {
		return
	}
	f.probing[j] = true
	f.probeGen[j]++
	key := stProbeKeyBase + (int64(f.probeGen[j])*int64(r.mpK+1)+int64(j))*r.nf + int64(flow)
	sh.win.push(sh.id, sh.id, sh.now+f.backoff[j],
		key, stevent{flow: int32(flow), seq: int32(j), gen: f.probeGen[j], kind: tevProbe})
	f.backoff[j] = math.Min(f.backoff[j]*2, 64*r.cfg.RTOSec)
}

// onProbe re-tests benched path j against the live failure view.
func (r *stRun) onProbe(sh *stShard, flow, j int, gen int32) {
	f := &r.flows[flow]
	if f.alts == nil || gen != f.probeGen[j] || !f.probing[j] {
		return // superseded probe
	}
	if f.done || f.aborted {
		f.probing[j] = false
		return // flow over: stop probing so the run can drain
	}
	if f.alts[j].fwd.Alive(r.net, sh.fs.view) {
		f.probing[j] = false
		f.probeGen[j]++
		f.backoff[j] = r.cfg.RTOSec
		sh.probeOK++
		r.cProbeOK.Inc()
		if r.tracer != nil {
			r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "probe",
				ID: int64(flow), Node: f.alts[j].fwd[0], Hop: j, Detail: "up"})
		}
		if f.curIdx < 0 || j < f.curIdx {
			r.switchPath(sh, flow, j)
			if f.started {
				r.restartPipe(sh, flow)
			}
		}
		return
	}
	sh.probeFail++
	r.cProbeFail.Inc()
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "probe",
			ID: int64(flow), Node: f.alts[j].fwd[0], Hop: j, Detail: "down"})
	}
	f.probeGen[j]++
	key := stProbeKeyBase + (int64(f.probeGen[j])*int64(r.mpK+1)+int64(j))*r.nf + int64(flow)
	sh.win.push(sh.id, sh.id, sh.now+f.backoff[j],
		key, stevent{flow: int32(flow), seq: int32(j), gen: f.probeGen[j], kind: tevProbe})
	f.backoff[j] = math.Min(f.backoff[j]*2, 64*r.cfg.RTOSec)
}

// failover is the fast-signal recovery path: recover a route via the
// scoreboard (or RouteAvoiding) and restart the pipe immediately. The active
// path is an immutable snapshot, so "did reroute change anything" is a
// pointer comparison.
func (r *stRun) failover(sh *stShard, flow int) {
	f := &r.flows[flow]
	if f.done || f.aborted {
		return
	}
	old := f.cur
	r.reroute(sh, flow)
	if f.cur == old {
		return // nowhere to go under this failure set
	}
	sh.failovers++
	r.cFailover.Inc()
	sh.fs.cur.Failovers++
	if r.st.armed {
		r.st.failover.Add(int64(sh.now*1e9), 1)
	}
	if r.tracer != nil {
		r.tracer.Record(obs.Event{TimeNs: int64(sh.now * 1e9), Kind: "failover",
			ID: int64(flow), Node: f.cur.fwd[0], Hop: f.curIdx})
	}
	if f.started {
		r.restartPipe(sh, flow)
	}
}

// restartPipe restarts the sender on a freshly activated path (one loss
// event, not a full RTO collapse).
func (r *stRun) restartPipe(sh *stShard, flow int) {
	f := &r.flows[flow]
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = f.ssthresh
	f.dupAcks = 0
	f.inflight = 1
	r.sendData(sh, flow, f.acked, true)
	r.pump(sh, flow)
}

// onFaultEvent is the proactive failover trigger. Every shard applies every
// fault transition, but each scans only the flows whose sender it owns (in
// ascending flow order, so the scan is deterministic), and a failover's
// first-hop transmission uses the sender's own outgoing links — same-time
// failovers on different shards can never contend.
func (r *stRun) onFaultEvent(sh *stShard) {
	if r.mpK == 0 {
		return
	}
	for _, fi := range r.localFlows[sh.id] {
		f := &r.flows[fi]
		if f.done || f.aborted || f.alts == nil {
			continue
		}
		if !f.cur.fwd.Alive(r.net, sh.fs.view) {
			r.failover(sh, int(fi))
		}
	}
}

// results aggregates the run: integer tallies sum across shards, flow
// completion times are read in flow-index order (deterministic regardless of
// which shard finished each flow), and the timelines merge epoch-wise.
func (r *stRun) results(faultStates []*faultState) (TransportResult, error) {
	var res TransportResult
	for _, sh := range r.shards {
		res.Retransmits += sh.retransmit
		res.ECNMarks += sh.ecnMarks
		res.Reroutes += sh.reroutes
		res.DroppedFault += sh.faultDrops
		res.FailedFlows += sh.failedFlows
		res.Failovers += sh.failovers
		res.PathSwitches += sh.pathSwitches
		res.ProbeSuccesses += sh.probeOK
		res.ProbeFailures += sh.probeFail
	}
	fcts := make([]float64, 0, len(r.flows))
	var payload int64
	for i := range r.flows {
		f := &r.flows[i]
		if !f.done {
			continue
		}
		res.CompletedFlows++
		fcts = append(fcts, f.finish-f.start)
		payload += int64(f.total) * int64(r.cfg.Link.MTU)
		if f.finish > res.MakespanSec {
			res.MakespanSec = f.finish
		}
	}
	if len(fcts) > 0 {
		sum := 0.0
		for _, t := range fcts {
			sum += t
		}
		res.MeanFCTSec = sum / float64(len(fcts))
		res.P99FCTSec = quantile(fcts, 0.99)
	}
	if res.MakespanSec > 0 {
		res.GoodputBps = float64(payload) / res.MakespanSec
	}
	if faultStates != nil {
		if r.cfg.Timeline != nil {
			if err := finishShardTimelines(r.cfg.Timeline, faultStates, res.MakespanSec); err != nil {
				return TransportResult{}, err
			}
		} else {
			for _, fs := range faultStates {
				fs.finish(res.MakespanSec)
			}
		}
	}
	return res, nil
}
