package packetsim

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// primarySwitch returns the last switch on the structure's default route for
// the flow — the component whose death blackholes the primary path. Killing
// the far end (rather than the first hop) keeps pre-fault ACKs flowing back,
// so a reactive sender keeps pumping data into the hole until its RTO while
// a proactive one switches away instantly — the difference under test.
func primarySwitch(t *testing.T, tp topology.Topology, src, dst int) int {
	t.Helper()
	p, err := tp.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	sw := -1
	for _, id := range p {
		if tp.Network().Kind(id) == topology.Switch {
			sw = id
		}
	}
	if sw < 0 {
		t.Fatalf("route %v crosses no switch", p)
	}
	return sw
}

// TestMultipathFailoverBeatsRTOOnly is the acceptance test for the proactive
// layer: one flow, one mid-flow switch death on its primary path, repaired
// 5 ms later. The victim is deep in the path, where ABCCC's greedy
// RouteAvoiding has a documented miss — the reactive baseline can only sit
// out the outage on RTO backoff (retransmitting into the hole), while the
// multipath run fails over to a precompiled disjoint path at the fault
// instant. It must therefore lose measurably fewer packets and finish
// sooner. Both runs are deterministic.
func TestMultipathFailoverBeatsRTOOnly(t *testing.T) {
	tp := faultTopo(t)
	flows := []traffic.Flow{{Src: 0, Dst: 21, Bytes: 256 << 10}}
	sw := primarySwitch(t, tp, tp.Network().Server(0), tp.Network().Server(21))
	plan := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 1e-3, Kind: failure.Switches, Index: sw},
		{TimeSec: 6e-3, Kind: failure.Switches, Index: sw, Up: true},
	}}

	run := func(multipath bool) TransportResult {
		cfg := DefaultTransport()
		cfg.MaxCwnd = 16 // keep the lost in-flight window small in both modes
		cfg.Faults = plan
		cfg.Multipath = multipath
		res, err := RunTransport(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletedFlows != 1 {
			t.Fatalf("multipath=%v: flow did not complete: %+v", multipath, res)
		}
		return res
	}

	reactive := run(false)
	mp := run(true)

	if mp.Failovers == 0 {
		t.Error("no fast failover despite a fault on the primary path")
	}
	if mp.PathSwitches == 0 {
		t.Error("no scoreboard path switch recorded")
	}
	if reactive.Failovers != 0 || reactive.PathSwitches != 0 {
		t.Errorf("reactive run reports multipath activity: %+v", reactive)
	}
	lostMP := mp.DroppedFault + mp.DroppedStale
	lostReactive := reactive.DroppedFault + reactive.DroppedStale
	if lostMP >= lostReactive {
		t.Errorf("multipath lost %d packets, reactive lost %d — failover saved nothing",
			lostMP, lostReactive)
	}
	if mp.MakespanSec >= reactive.MakespanSec {
		t.Errorf("multipath makespan %v not below reactive %v — no faster recovery",
			mp.MakespanSec, reactive.MakespanSec)
	}

	if again := run(true); again != mp {
		t.Errorf("same plan, different multipath results:\n %+v\n %+v", mp, again)
	}
}

// TestMultipathTimelineFailovers pins the per-epoch surfacing: failovers land
// in the epoch stats, epochs stay contiguous, and the sums match the result.
func TestMultipathTimelineFailovers(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 41, 64<<10)
	net := tp.Network()
	plan, err := failure.Burst(net, failure.Switches, len(net.Switches())/4, 5e-4, 4e-3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = true
	cfg.Timeline = &Timeline{}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("burst killed a quarter of the switches but no flow failed over")
	}
	checkTimeline(t, cfg.Timeline)
	var sum int64
	for _, e := range cfg.Timeline.Epochs {
		sum += e.Failovers
	}
	if sum != int64(res.Failovers) {
		t.Errorf("timeline failover sum %d != result %d", sum, res.Failovers)
	}
}

// TestMultipathProbeRevert pins the probation machinery: after the outage is
// repaired, backed-off probes must find the benched primary alive again and
// revert flows to it.
func TestMultipathProbeRevert(t *testing.T) {
	tp := faultTopo(t)
	flows := []traffic.Flow{{Src: 0, Dst: 21, Bytes: 1 << 20}}
	sw := primarySwitch(t, tp, tp.Network().Server(0), tp.Network().Server(21))
	plan := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 1e-3, Kind: failure.Switches, Index: sw},
		{TimeSec: 45e-4, Kind: failure.Switches, Index: sw, Up: true},
	}}
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = true
	reg := obs.NewRegistry()
	cfg.Link.Metrics = reg
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows != 1 {
		t.Fatalf("flow did not complete: %+v", res)
	}
	if res.ProbeFailures == 0 {
		t.Error("probes during the outage should have failed at least once")
	}
	if res.ProbeSuccesses == 0 {
		t.Error("no probe succeeded after the repair; flow never offered its primary back")
	}
	if res.PathSwitches < 2 {
		t.Errorf("PathSwitches = %d, want >= 2 (failover away plus revert)", res.PathSwitches)
	}
	if got := reg.Counter(MetricProbeSuccess).Value(); got != int64(res.ProbeSuccesses) {
		t.Errorf("probe-success counter %d != result %d", got, res.ProbeSuccesses)
	}
	if got := reg.Counter(MetricFailovers).Value(); got != int64(res.Failovers) {
		t.Errorf("failover counter %d != result %d", got, res.Failovers)
	}
	// Per-path goodput: with a mid-run outage both the primary and at least
	// one alternative must have carried acknowledged bytes.
	if reg.Counter(pathGoodputMetric(0, DefaultMultipathPaths)).Value() == 0 {
		t.Error("primary path carried no goodput")
	}
	var altBytes int64
	for j := 1; j <= DefaultMultipathPaths; j++ {
		altBytes += reg.Counter(pathGoodputMetric(j, DefaultMultipathPaths)).Value()
	}
	if altBytes == 0 {
		t.Error("no alternative path carried goodput during the outage")
	}
}

// multipathConservation mirrors transportConservation with the proactive
// layer armed: the packet-journey ledger must hold through failovers, path
// switches, probes, and reverts.
func multipathConservation(t *testing.T, tp topology.Topology, flows []traffic.Flow, plan *failure.FaultPlan) TransportResult {
	t.Helper()
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Multipath = true
	cfg.MaxFlowTimeouts = 8
	reg := obs.NewRegistry()
	cfg.Link.Metrics = reg
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sent := reg.Counter(MetricDataSent).Value() + reg.Counter(MetricAckSent).Value()
	arrived := reg.Counter(MetricDataArrived).Value() + reg.Counter(MetricAckArrived).Value()
	dropped := reg.Counter(MetricTransportDrops).Value() +
		reg.Counter(MetricTransportFaultDrops).Value() +
		reg.Counter(MetricTransportStaleDrops).Value()
	if sent != arrived+dropped {
		t.Errorf("conservation: sent %d != arrived %d + dropped %d", sent, arrived, dropped)
	}
	return res
}

// TestMultipathConservationUnderRandomFaults churns servers, switches and
// links while the scoreboard is live: conservation and determinism must
// survive arbitrary schedules, exactly like the single-path property test.
func TestMultipathConservationUnderRandomFaults(t *testing.T) {
	tp := faultTopo(t)
	net := tp.Network()
	for seed := int64(1); seed <= 5; seed++ {
		flows := faultFlows(t, tp, seed+40, 16<<10)
		plan, err := failure.Schedule(net, failure.ScheduleConfig{
			Kinds:      []failure.Kind{failure.Servers, failure.Switches, failure.Links},
			MTBFSec:    3e-4,
			MTTRSec:    8e-4,
			HorizonSec: 6e-3,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		first := multipathConservation(t, tp, flows, plan)
		second := multipathConservation(t, tp, flows, plan)
		if first != second {
			t.Errorf("seed %d: same plan, different results:\n %+v\n %+v", seed, first, second)
		}
	}
}

// TestMultipathConfigValidation rejects a negative path cap.
func TestMultipathConfigValidation(t *testing.T) {
	cfg := DefaultTransport()
	cfg.MultipathPaths = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative MultipathPaths accepted")
	}
}
