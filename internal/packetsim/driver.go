// Closed-loop driving of the transport engine. RunTransport takes a fixed
// workload known up front; layers that react to completions — retrying RPCs,
// dependency chains, anything with a control loop — need to inject flows and
// schedule their own callbacks *while* the event loop runs. TransportEngine
// wraps the same transportRun state behind three calls: InjectFlow adds a
// flow mid-run (routed on demand, route cached per server pair), Schedule
// registers a timer callback riding the event queue (tevWake), and Run
// drains to completion. Combined with TransportConfig.OnFlowDone this gives
// a deterministic single-threaded reactor: callbacks fire in event order and
// everything they inject lands on the same totally-ordered queue.

package packetsim

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// engineRoute is one cached per-server-pair route: the healthy primary and,
// when multipath is armed, the precompiled scoreboard alternatives. Shared
// read-only by every flow injected for the pair (per-flow probation state
// lives on the tflow).
type engineRoute struct {
	fwd  topology.Path
	res  []int32
	alts []pathAlt
}

// TransportEngine is the closed-loop variant of RunTransport. Construct
// with a validated config, inject at least one flow or schedule a wake,
// then Run. Not safe for concurrent use: all calls — including those made
// from OnFlowDone and Schedule callbacks — must come from the single
// goroutine driving Run.
type TransportEngine struct {
	t      topology.Topology
	run    *transportRun
	routes map[int64]*engineRoute
	ran    bool
}

// NewTransportEngine validates cfg and builds an idle engine on t. The
// fault plan's transition events (if any) are queued immediately, so a
// subsequent Run with no injected flows still plays the plan out.
func NewTransportEngine(t topology.Topology, cfg TransportConfig) (*TransportEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	run, err := newTransportRun(t, cfg, 2*t.Network().Graph().NumEdges())
	if err != nil {
		return nil, err
	}
	return &TransportEngine{t: t, run: run, routes: make(map[int64]*engineRoute)}, nil
}

// Now returns the current simulation time (0 before Run).
func (e *TransportEngine) Now() float64 { return e.run.now }

// Schedule registers fn to fire at atSec simulation time. Callbacks run at
// a safe point in the event loop and may inject flows or schedule further
// wakes; same-time wakes fire in registration order.
func (e *TransportEngine) Schedule(atSec float64, fn func(nowSec float64)) error {
	if fn == nil {
		return fmt.Errorf("packetsim: Schedule requires a callback")
	}
	if math.IsNaN(atSec) || atSec < e.run.now {
		return fmt.Errorf("packetsim: wake at %g is before now %g", atSec, e.run.now)
	}
	r := e.run
	var slot int32
	if n := len(r.wakeFree); n > 0 {
		slot = r.wakeFree[n-1]
		r.wakeFree = r.wakeFree[:n-1]
		r.wakes[slot] = fn
	} else {
		slot = int32(len(r.wakes))
		r.wakes = append(r.wakes, fn)
	}
	r.push(atSec, tevent{kind: tevWake, seq: slot})
	return nil
}

// InjectFlow adds a flow of bytes from server src to server dst (indices
// into Network.Servers()) opening at startSec, and returns its flow id —
// the id OnFlowDone reports back. Routes compile on first use per server
// pair against the healthy topology (exactly like RunTransport's pre-run
// compile; flows injected mid-fault reroute on RTO like any other). A local
// flow (src == dst) has nothing to transport: it completes at startSec and
// the OnFlowDone hook still fires, so closed-loop callers need no special
// case for co-located endpoints.
func (e *TransportEngine) InjectFlow(src, dst int, bytes int64, startSec float64) (int, error) {
	r := e.run
	servers := r.net.Servers()
	if src < 0 || src >= len(servers) || dst < 0 || dst >= len(servers) {
		return 0, fmt.Errorf("packetsim: inject endpoints %d->%d out of range", src, dst)
	}
	if bytes <= 0 {
		return 0, fmt.Errorf("packetsim: inject needs positive bytes, got %d", bytes)
	}
	if math.IsNaN(startSec) || startSec < r.now {
		return 0, fmt.Errorf("packetsim: inject at %g is before now %g", startSec, r.now)
	}
	id := len(r.flows)
	if src == dst {
		r.flows = append(r.flows, tflow{fwd: topology.Path{servers[src]}, start: startSec})
		err := e.Schedule(startSec, func(now float64) {
			f := &r.flows[id]
			f.started, f.done, f.finish = true, true, now
			r.cDone.Inc()
			if r.fs != nil {
				r.fs.cur.CompletedFlows++
			}
			if r.cfg.OnFlowDone != nil {
				r.doneq = append(r.doneq, flowDone{flow: int32(id), at: now, completed: true})
			}
		})
		return id, err
	}
	rt, err := e.routeFor(src, dst)
	if err != nil {
		return 0, err
	}
	r.flows = append(r.flows, tflow{
		fwd:      rt.fwd,
		res:      rt.res,
		total:    int((bytes + int64(r.cfg.Link.MTU) - 1) / int64(r.cfg.Link.MTU)),
		cwnd:     r.cfg.InitCwnd,
		ssthresh: r.cfg.MaxCwnd,
		rto:      r.cfg.RTOSec,
		start:    startSec,
	})
	if rt.alts != nil {
		f := &r.flows[id]
		f.alts = rt.alts
		f.probing = make([]bool, len(f.alts))
		f.probeGen = make([]int32, len(f.alts))
		f.backoff = make([]float64, len(f.alts))
		for j := range f.backoff {
			f.backoff[j] = r.cfg.RTOSec
		}
	}
	r.push(startSec, tevent{flow: int32(id), kind: tevStart})
	return id, nil
}

// routeFor compiles (or returns the cached) route for a server pair,
// including the multipath scoreboard when the layer is armed.
func (e *TransportEngine) routeFor(src, dst int) (*engineRoute, error) {
	key := int64(src)<<32 | int64(dst)
	if rt, ok := e.routes[key]; ok {
		return rt, nil
	}
	r := e.run
	u, v := r.net.Server(src), r.net.Server(dst)
	p, err := e.t.Route(u, v)
	if err != nil {
		return nil, fmt.Errorf("packetsim: route %d->%d: %w", src, dst, err)
	}
	if len(p) < 2 {
		return nil, fmt.Errorf("packetsim: route %d->%d too short", src, dst)
	}
	res, err := appendPathRes(make([]int32, 0, len(p)-1), r.g, p)
	if err != nil {
		return nil, fmt.Errorf("packetsim: route %d->%d: %w", src, dst, err)
	}
	rt := &engineRoute{fwd: p, res: res}
	if r.mpK > 0 {
		alts := []pathAlt{{fwd: p, res: res}}
		if mrouter, ok := e.t.(topology.MultipathRouter); ok {
			for _, ap := range mrouter.ParallelPaths(u, v) {
				if len(alts) >= r.mpK {
					break
				}
				if len(ap) < 2 || samePath(ap, p) {
					continue
				}
				ares, err := appendPathRes(make([]int32, 0, len(ap)-1), r.g, ap)
				if err != nil {
					return nil, fmt.Errorf("packetsim: route %d->%d multipath: %w", src, dst, err)
				}
				alts = append(alts, pathAlt{fwd: ap, res: ares})
			}
		}
		rt.alts = alts
	}
	e.routes[key] = rt
	return rt, nil
}

// Run drains the event queue — injected flows, scheduled wakes, fault
// transitions, and everything callbacks add along the way — and returns the
// aggregate result. Single-shot: a second call is an error.
func (e *TransportEngine) Run() (TransportResult, error) {
	if e.ran {
		return TransportResult{}, fmt.Errorf("packetsim: TransportEngine.Run called twice")
	}
	e.ran = true
	if err := e.run.drain(); err != nil {
		return TransportResult{}, err
	}
	return e.run.results(), nil
}
