package packetsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// faultTopo builds the ABCCC instance the fault tests run on.
func faultTopo(t testing.TB) *core.ABCCC {
	t.Helper()
	return core.MustBuild(core.Config{N: 4, K: 1, P: 2})
}

// faultFlows builds a deterministic shuffle workload with every flow sized.
func faultFlows(t testing.TB, tp topology.Topology, seed int64, bytes int64) []traffic.Flow {
	t.Helper()
	n := tp.Network().NumServers()
	flows, err := traffic.Shuffle(n, n/2, n/2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sized(flows, bytes)
}

// injectedPackets is the packet-engine offered load: every non-local flow
// injects ceil(Bytes/MTU) packets regardless of faults.
func injectedPackets(flows []traffic.Flow, mtu int) int {
	total := 0
	for _, f := range flows {
		if f.Src == f.Dst {
			continue
		}
		total += int((f.Bytes + int64(mtu) - 1) / int64(mtu))
	}
	return total
}

// checkTimeline asserts the structural invariants of a fault timeline:
// epochs start at 0, tile the run contiguously, and never run backwards.
func checkTimeline(t *testing.T, tl *Timeline) {
	t.Helper()
	if len(tl.Epochs) == 0 {
		t.Fatal("timeline has no epochs")
	}
	if tl.Epochs[0].StartSec != 0 {
		t.Errorf("first epoch starts at %v, want 0", tl.Epochs[0].StartSec)
	}
	for i, e := range tl.Epochs {
		if e.EndSec < e.StartSec {
			t.Errorf("epoch %d runs backwards: [%v, %v)", i, e.StartSec, e.EndSec)
		}
		if i > 0 && e.StartSec != tl.Epochs[i-1].EndSec {
			t.Errorf("epoch %d starts at %v, previous ended at %v", i, e.StartSec, tl.Epochs[i-1].EndSec)
		}
	}
}

// TestRunFaultDropsAndConservation kills one quarter of the switches forever
// mid-run: the packet engine must drop across the holes, keep delivering on
// surviving paths, and account for every injected packet.
func TestRunFaultDropsAndConservation(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 17, 64<<10)
	net := tp.Network()
	nKill := len(net.Switches()) / 4
	plan, err := failure.Burst(net, failure.Switches, nKill, 1e-4, 1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	cfg := Default()
	cfg.Faults = plan
	cfg.Timeline = &Timeline{}
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.DroppedFault == 0 {
		t.Error("killing a quarter of the switches dropped nothing")
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered despite surviving paths")
	}
	injected := injectedPackets(flows, cfg.MTU)
	if got := res.Delivered + res.Dropped + res.DroppedFault; got != injected {
		t.Errorf("conservation: delivered+dropped = %d, injected = %d", got, injected)
	}
	if got := reg.Counter(MetricDroppedFault).Value(); got != int64(res.DroppedFault) {
		t.Errorf("fault counter %d != result %d", got, res.DroppedFault)
	}
	if got := reg.Counter(MetricFaultEvents).Value(); got != int64(plan.Len()) {
		t.Errorf("applied %d fault events, plan has %d", got, plan.Len())
	}

	checkTimeline(t, cfg.Timeline)
	var sumDel, sumTail, sumFault int64
	for _, e := range cfg.Timeline.Epochs {
		sumDel += e.Delivered
		sumTail += e.DroppedTail
		sumFault += e.DroppedFault
	}
	if sumDel != int64(res.Delivered) || sumTail != int64(res.Dropped) || sumFault != int64(res.DroppedFault) {
		t.Errorf("timeline sums (%d, %d, %d) != result (%d, %d, %d)",
			sumDel, sumTail, sumFault, res.Delivered, res.Dropped, res.DroppedFault)
	}
}

// TestRunRepairWindow pins the down-then-up cycle: a link burst with a repair
// inside the run window must show fault drops during the outage and
// deliveries resuming afterwards, visible as distinct timeline epochs.
func TestRunRepairWindow(t *testing.T) {
	tp := faultTopo(t)
	net := tp.Network()
	// Slow injection stretches the run well past the repair at 2 ms.
	cfg := Default()
	cfg.FlowRateBps = cfg.LinkBandwidthBps / 50
	flows := faultFlows(t, tp, 23, 128<<10)

	nKill := net.Graph().NumEdges() / 3
	plan, err := failure.Burst(net, failure.Links, nKill, 5e-4, 2e-3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.Timeline = &Timeline{}
	res, err := Run(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedFault == 0 {
		t.Fatal("outage dropped nothing")
	}
	checkTimeline(t, cfg.Timeline)
	if len(cfg.Timeline.Epochs) != 3 {
		t.Fatalf("down+up burst should carve 3 epochs, got %d", len(cfg.Timeline.Epochs))
	}
	pre, during, post := cfg.Timeline.Epochs[0], cfg.Timeline.Epochs[1], cfg.Timeline.Epochs[2]
	if pre.DroppedFault != 0 {
		t.Errorf("fault drops before the burst: %d", pre.DroppedFault)
	}
	if during.DroppedFault == 0 {
		t.Error("no fault drops during the outage epoch")
	}
	if post.DroppedFault != 0 {
		t.Errorf("fault drops after repair: %d", post.DroppedFault)
	}
	if post.Delivered == 0 {
		t.Error("no deliveries after repair")
	}
	if during.Availability() >= pre.Availability() {
		t.Errorf("outage availability %v not below pre-fault %v",
			during.Availability(), pre.Availability())
	}
}

// TestTransportReroutesAroundFailures kills a quarter of the switches for a
// 3 ms window: flows whose routes die recompile around the holes via the
// structure's RouteAvoiding; flows the greedy router misses (it has a
// documented miss rate) keep backing off until the repair restores their
// path. Either way every flow must complete — failures cost time, not data.
func TestTransportReroutesAroundFailures(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 32<<10)
	net := tp.Network()
	nKill := len(net.Switches()) / 4
	plan, err := failure.Burst(net, failure.Switches, nKill, 1e-4, 3e-3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Timeline = &Timeline{}
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reroutes == 0 {
		t.Error("no flow rerouted around the dead switches")
	}
	if res.DroppedFault == 0 {
		t.Error("no packet hit a dead component")
	}
	if res.FailedFlows != 0 {
		t.Errorf("%d flows failed despite reroute + repair", res.FailedFlows)
	}
	if res.CompletedFlows != len(flows) {
		t.Errorf("completed %d of %d flows", res.CompletedFlows, len(flows))
	}

	checkTimeline(t, cfg.Timeline)
	var sumRtx, sumRr, sumDone int64
	for _, e := range cfg.Timeline.Epochs {
		sumRtx += e.Retransmits
		sumRr += e.Reroutes
		sumDone += e.CompletedFlows
	}
	if sumRtx != int64(res.Retransmits) || sumRr != int64(res.Reroutes) || sumDone != int64(res.CompletedFlows) {
		t.Errorf("timeline sums (rtx %d, rr %d, done %d) != result (%d, %d, %d)",
			sumRtx, sumRr, sumDone, res.Retransmits, res.Reroutes, res.CompletedFlows)
	}
}

// TestTransportAbortsStrandedFlow kills a destination server permanently:
// its flow can never finish and must give up after MaxFlowTimeouts, letting
// the run terminate.
func TestTransportAbortsStrandedFlow(t *testing.T) {
	tp := faultTopo(t)
	net := tp.Network()
	flows := []traffic.Flow{
		{Src: 0, Dst: 5, Bytes: 64 << 10},
		{Src: 1, Dst: 6, Bytes: 64 << 10},
	}
	victim := net.Servers()[5]
	plan := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 1e-5, Kind: failure.Servers, Index: victim},
	}}

	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.MaxFlowTimeouts = 5 // give up fast; the default just takes longer
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFlows != 1 {
		t.Errorf("FailedFlows = %d, want 1 (dead destination)", res.FailedFlows)
	}
	if res.CompletedFlows != 1 {
		t.Errorf("CompletedFlows = %d, want 1 (untouched flow)", res.CompletedFlows)
	}
}

// transportConservation runs one fault schedule and checks the packet-journey
// ledger: every data and ACK packet that entered the network is accounted for
// by exactly one terminal outcome.
func transportConservation(t *testing.T, tp topology.Topology, flows []traffic.Flow, plan *failure.FaultPlan) TransportResult {
	t.Helper()
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.MaxFlowTimeouts = 8
	reg := obs.NewRegistry()
	cfg.Link.Metrics = reg
	res, err := RunTransport(tp, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sent := reg.Counter(MetricDataSent).Value() + reg.Counter(MetricAckSent).Value()
	arrived := reg.Counter(MetricDataArrived).Value() + reg.Counter(MetricAckArrived).Value()
	dropped := reg.Counter(MetricTransportDrops).Value() +
		reg.Counter(MetricTransportFaultDrops).Value() +
		reg.Counter(MetricTransportStaleDrops).Value()
	if sent != arrived+dropped {
		t.Errorf("conservation: sent %d != arrived %d + dropped %d", sent, arrived, dropped)
	}
	if got := reg.Counter(MetricTransportFaultDrops).Value(); got != int64(res.DroppedFault) {
		t.Errorf("fault-drop counter %d != result %d", got, res.DroppedFault)
	}
	if got := reg.Counter(MetricTransportStaleDrops).Value(); got != int64(res.DroppedStale) {
		t.Errorf("stale-drop counter %d != result %d", got, res.DroppedStale)
	}
	return res
}

// TestTransportConservationUnderRandomFaults is the property test: across
// arbitrary seeded fault schedules — servers, switches and links churning
// down and up — no packet is ever double-counted or lost without a cause.
func TestTransportConservationUnderRandomFaults(t *testing.T) {
	tp := faultTopo(t)
	net := tp.Network()
	for seed := int64(1); seed <= 5; seed++ {
		flows := faultFlows(t, tp, seed, 16<<10)
		plan, err := failure.Schedule(net, failure.ScheduleConfig{
			Kinds:      []failure.Kind{failure.Servers, failure.Switches, failure.Links},
			MTBFSec:    3e-4,
			MTTRSec:    8e-4,
			HorizonSec: 6e-3,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		first := transportConservation(t, tp, flows, plan)
		second := transportConservation(t, tp, flows, plan)
		if first != second {
			t.Errorf("seed %d: same plan, different results:\n %+v\n %+v", seed, first, second)
		}
	}
}

// TestRunConservationUnderRandomFaults is the packet-engine counterpart:
// injected == delivered + droptail + fault for arbitrary schedules.
func TestRunConservationUnderRandomFaults(t *testing.T) {
	tp := faultTopo(t)
	net := tp.Network()
	for seed := int64(1); seed <= 5; seed++ {
		flows := faultFlows(t, tp, seed+100, 32<<10)
		plan, err := failure.Schedule(net, failure.ScheduleConfig{
			Kinds:      []failure.Kind{failure.Switches, failure.Links},
			MTBFSec:    2e-4,
			MTTRSec:    5e-4,
			HorizonSec: 4e-3,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default()
		cfg.Faults = plan
		res, err := Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		injected := injectedPackets(flows, cfg.MTU)
		if got := res.Delivered + res.Dropped + res.DroppedFault; got != injected {
			t.Errorf("seed %d: delivered+dropped = %d, injected = %d", seed, got, injected)
		}
		again, err := Run(tp, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res != again {
			t.Errorf("seed %d: same plan, different results", seed)
		}
	}
}

// TestFaultTraceEvents checks the trace stream carries the fault lifecycle:
// fault, repair, fault-cause drops, reroutes.
func TestFaultTraceEvents(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 31, 32<<10)
	net := tp.Network()
	plan, err := failure.Burst(net, failure.Switches, len(net.Switches())/4, 1e-4, 3e-3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTransport()
	cfg.Faults = plan
	cfg.Link.Trace = obs.NewTracer(1 << 16)
	if _, err := RunTransport(tp, flows, cfg); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	drops := make(map[string]int)
	for _, ev := range cfg.Link.Trace.Events() {
		kinds[ev.Kind]++
		if ev.Kind == "drop" {
			drops[ev.Detail]++
		}
	}
	for _, want := range []string{"fault", "repair", "reroute"} {
		if kinds[want] == 0 {
			t.Errorf("no %q trace events recorded", want)
		}
	}
	if drops[DropCauseFault] == 0 {
		t.Error("no fault-cause drop events recorded")
	}
}

// TestRunRejectsInvalidPlan: a plan naming a bogus component must fail fast,
// not corrupt the run.
func TestRunRejectsInvalidPlan(t *testing.T) {
	tp := faultTopo(t)
	flows := faultFlows(t, tp, 7, 16<<10)
	bad := &failure.FaultPlan{Events: []failure.FaultEvent{
		{TimeSec: 1e-3, Kind: failure.Links, Index: 1 << 30},
	}}
	cfg := Default()
	cfg.Faults = bad
	if _, err := Run(tp, flows, cfg); err == nil {
		t.Error("packet engine accepted an invalid fault plan")
	}
	tcfg := DefaultTransport()
	tcfg.Faults = bad
	if _, err := RunTransport(tp, flows, tcfg); err == nil {
		t.Error("transport engine accepted an invalid fault plan")
	}
}
