package packetsim

import (
	"math/rand"
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The overhauled engines (eventq 4-ary heap, compiled routes, lazy
// injection) are keyed so their pop sequence matches the pre-overhaul
// engines event for event; every float operation then happens in the same
// order and the results must be bit-identical, not merely close. These
// tests pin exactly that across the workload shapes the experiments run.

// equivCases builds (topology, workload) pairs covering every experiment
// shape: synchronized starts, staggered Poisson arrivals, overload with
// drops, fan-in, heavy shuffle, size-distribution sampling, local flows,
// and empty workloads.
func equivCases(t testing.TB) []struct {
	name  string
	topo  topology.Topology
	flows []traffic.Flow
} {
	t.Helper()
	abccc := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	abccc4 := core.MustBuild(core.Config{N: 4, K: 1, P: 3})
	bc := bcube.MustBuild(bcube.Config{N: 4, K: 1})
	ft := fattree.MustBuild(fattree.Config{K: 4})

	var cases []struct {
		name  string
		topo  topology.Topology
		flows []traffic.Flow
	}
	add := func(name string, topo topology.Topology, flows []traffic.Flow) {
		cases = append(cases, struct {
			name  string
			topo  topology.Topology
			flows []traffic.Flow
		}{name, topo, flows})
	}

	for _, tp := range []struct {
		name string
		topo topology.Topology
	}{{"abccc", abccc}, {"abccc4", abccc4}, {"bcube", bc}, {"fattree", ft}} {
		n := tp.topo.Network().NumServers()
		rng := rand.New(rand.NewSource(11))
		add(tp.name+"/uniform", tp.topo, sized(traffic.Uniform(n, n, rng), 64<<10))
		shuffle, err := traffic.Shuffle(n, n/4, n/4, rng)
		if err != nil {
			t.Fatal(err)
		}
		add(tp.name+"/shuffle", tp.topo, sized(shuffle, 128<<10))
		incast, err := traffic.Incast(n, 0, n/2, rng)
		if err != nil {
			t.Fatal(err)
		}
		add(tp.name+"/incast", tp.topo, sized(incast, 96<<10))
		poisson, err := traffic.Poisson(n, 200*float64(n), 0.002, rng)
		if err != nil {
			t.Fatal(err)
		}
		add(tp.name+"/poisson", tp.topo, sized(poisson, 32<<10))
		add(tp.name+"/websearch", tp.topo,
			traffic.ApplySizes(traffic.Uniform(n, n/2, rng), traffic.WebSearch(), rng))
	}
	// Degenerate shapes on one structure.
	add("abccc/self-flows", abccc, []traffic.Flow{
		{Src: 0, Dst: 0, Bytes: 4500}, {Src: 1, Dst: 5, Bytes: 4500}, {Src: 3, Dst: 3, Bytes: 1500},
	})
	add("abccc/empty", abccc, nil)
	add("abccc/single-packet", abccc, []traffic.Flow{{Src: 0, Dst: 7, Bytes: 1}})
	return cases
}

// sized sets every flow's byte count (the generators default to 1 MB, too
// slow to sweep across this many cases).
func sized(flows []traffic.Flow, bytes int64) []traffic.Flow {
	for i := range flows {
		flows[i].Bytes = bytes
	}
	return flows
}

func TestRunMatchesReferenceEngine(t *testing.T) {
	cfgs := map[string]func() Config{
		"default": Default,
		"overload": func() Config {
			c := Default()
			c.QueueLimitPackets = 4 // force drop-path divergence opportunities
			return c
		},
		"slow-injection": func() Config {
			c := Default()
			c.FlowRateBps = c.LinkBandwidthBps / 7
			return c
		},
		// An armed but empty fault plan must not perturb a single float op:
		// the fault machinery only acts when events actually fire.
		"empty-faults": func() Config {
			c := Default()
			c.Faults = &failure.FaultPlan{}
			return c
		},
	}
	for cname, mk := range cfgs {
		for _, tc := range equivCases(t) {
			t.Run(cname+"/"+tc.name, func(t *testing.T) {
				got, err := Run(tc.topo, tc.flows, mk())
				if err != nil {
					t.Fatal(err)
				}
				want, err := referenceRun(tc.topo, tc.flows, mk())
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("engine diverged from reference:\n new %+v\n old %+v", got, want)
				}
			})
		}
	}
}

func TestRunTransportMatchesReferenceEngine(t *testing.T) {
	cfgs := map[string]func() TransportConfig{
		"default": DefaultTransport,
		"ecn": func() TransportConfig {
			c := DefaultTransport()
			c.ECN = true
			return c
		},
		"lossy": func() TransportConfig {
			c := DefaultTransport()
			c.Link.QueueLimitPackets = 4 // exercise retransmission paths
			return c
		},
		// Armed-but-empty plan: route-epoch stamping and the timeout counter
		// are live, but with no fault events they must change nothing.
		"empty-faults": func() TransportConfig {
			c := DefaultTransport()
			c.Faults = &failure.FaultPlan{}
			return c
		},
		// Multipath without a fault plan: the layer never arms and must be
		// invisible.
		"multipath-no-faults": func() TransportConfig {
			c := DefaultTransport()
			c.Multipath = true
			c.MultipathPaths = 3
			return c
		},
		// Multipath armed (scoreboards compiled, probes and failover hooks
		// live) over an empty plan: nothing ever dies, so no scoreboard
		// action may fire and every float op must match the single-path
		// reference.
		"multipath-empty-faults": func() TransportConfig {
			c := DefaultTransport()
			c.Multipath = true
			c.Faults = &failure.FaultPlan{}
			return c
		},
	}
	for cname, mk := range cfgs {
		for _, tc := range equivCases(t) {
			t.Run(cname+"/"+tc.name, func(t *testing.T) {
				got, err := RunTransport(tc.topo, tc.flows, mk())
				if err != nil {
					t.Fatal(err)
				}
				want, err := referenceRunTransport(tc.topo, tc.flows, mk())
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("transport engine diverged from reference:\n new %+v\n old %+v", got, want)
				}
			})
		}
	}
}

// TestRouteCacheReuseAcrossLoadPoints drives the sweep shape the cache
// exists for — same topology and flows slice, Bytes mutated between runs —
// and checks results still match a cold-cache reference run.
func TestRouteCacheReuseAcrossLoadPoints(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.Uniform(n, n, rand.New(rand.NewSource(3)))
	for _, bytes := range []int64{16 << 10, 64 << 10, 256 << 10} {
		sized(flows, bytes)
		got, err := Run(tp, flows, Default())
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceRun(tp, flows, Default())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("bytes=%d: cached-route run diverged:\n new %+v\n old %+v", bytes, got, want)
		}
	}
}

// TestRouteCacheRecompilesOnEndpointChange rewrites Src/Dst in place in the
// same backing array — the cache must notice and recompile, not alias the
// stale plan.
func TestRouteCacheRecompilesOnEndpointChange(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := []traffic.Flow{{Src: 0, Dst: 5, Bytes: 15000}}
	first, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	flows[0].Dst = 9 // same slice identity, different route
	second, err := Run(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	want, err := referenceRun(tp, flows, Default())
	if err != nil {
		t.Fatal(err)
	}
	if second != want {
		t.Errorf("after endpoint rewrite:\n new %+v\n old %+v", second, want)
	}
	if first == second {
		t.Error("rerouted run produced the original route's result; stale plan served")
	}
}

func TestCompileRoutesRejectsBadEndpoints(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	if _, err := RunTransport(tp, []traffic.Flow{{Src: 0, Dst: 10_000}}, DefaultTransport()); err == nil {
		t.Error("out-of-range transport flow accepted")
	}
}

// benchWorkload is the shared heavy benchmark shape: a quarter-shuffle at
// full injection rate, enough traffic to queue and drop.
func benchWorkload(b *testing.B, scale int) (topology.Topology, []traffic.Flow) {
	b.Helper()
	tp := core.MustBuild(core.Config{N: scale, K: 1, P: 2})
	n := tp.Network().NumServers()
	rng := rand.New(rand.NewSource(13))
	flows, err := traffic.Shuffle(n, n/4, n/4, rng)
	if err != nil {
		b.Fatal(err)
	}
	return tp, sized(flows, 256<<10)
}

func benchEngine(b *testing.B, run func(topology.Topology, []traffic.Flow, Config) (Result, error)) {
	tp, flows := benchWorkload(b, 4)
	cfg := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunShuffle(b *testing.B)          { benchEngine(b, Run) }
func BenchmarkRunShuffleReference(b *testing.B) { benchEngine(b, referenceRun) }

func benchTransport(b *testing.B, run func(topology.Topology, []traffic.Flow, TransportConfig) (TransportResult, error)) {
	tp, flows := benchWorkload(b, 3)
	cfg := DefaultTransport()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportShuffleEngine(b *testing.B)    { benchTransport(b, RunTransport) }
func BenchmarkTransportShuffleReference(b *testing.B) { benchTransport(b, referenceRunTransport) }

// BenchmarkRunAllToAll exercises the lazy-injection win directly: the eager
// engine materializes every packet of every flow up front, the lazy one
// keeps one pending event per flow.
func BenchmarkRunAllToAll(b *testing.B) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	flows := sized(traffic.AllToAll(tp.Network().NumServers()), 64<<10)
	cfg := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tp, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
