package metrics

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// forEachIndex runs body(worker, i) for every i in [0, n) over `workers`
// goroutines (non-positive: GOMAXPROCS). Each worker has a stable worker id
// in [0, workers) so callers can give workers private scratch. Work is
// handed out dynamically, so callers must not depend on the order of calls;
// determinism comes from writing results into per-index slots.
func forEachIndex(workers, n int, body func(worker, i int)) {
	workers = graph.Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// firstError returns the lowest-index non-nil error, making parallel sweeps
// report the same failure a serial left-to-right loop would.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
