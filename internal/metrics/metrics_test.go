package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestDiameterLinksMatchesAnalytic(t *testing.T) {
	tests := []struct {
		name  string
		build func() (topology.Topology, int)
	}{
		{name: "abccc", build: func() (topology.Topology, int) {
			tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
			return tp, tp.Properties().DiameterLinks
		}},
		{name: "bcube", build: func() (topology.Topology, int) {
			tp := bcube.MustBuild(bcube.Config{N: 3, K: 1})
			return tp, tp.Properties().DiameterLinks
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tp, want := tt.build()
			got, err := DiameterLinks(tp.Network())
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("DiameterLinks = %d, want %d", got, want)
			}
		})
	}
}

func TestDiameterLinksDisconnected(t *testing.T) {
	net := topology.NewNetwork("broken")
	net.AddServer("a")
	net.AddServer("b")
	if _, err := DiameterLinks(net); err == nil {
		t.Error("DiameterLinks on disconnected net succeeded")
	}
}

func TestSampledDiameterNeverExceedsExact(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 2, P: 2})
	exact, err := DiameterLinks(tp.Network())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sampled, err := SampledDiameterLinks(tp.Network(), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sampled > exact {
		t.Errorf("sampled %d > exact %d", sampled, exact)
	}
	// Full sample falls back to the exact computation.
	full, err := SampledDiameterLinks(tp.Network(), 1<<30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full != exact {
		t.Errorf("full-sample diameter %d != exact %d", full, exact)
	}
}

func TestASPLBounds(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	aspl, err := ASPL(tp.Network(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiameterLinks(tp.Network())
	if err != nil {
		t.Fatal(err)
	}
	if aspl < 2 || aspl > float64(d) {
		t.Errorf("ASPL = %f out of (2, %d)", aspl, d)
	}
	// Sampled ASPL is close to exact on a symmetric structure.
	rng := rand.New(rand.NewSource(7))
	sampled, err := ASPL(tp.Network(), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sampled-aspl) > 1.0 {
		t.Errorf("sampled ASPL %f far from exact %f", sampled, aspl)
	}
}

func TestASPLDisconnected(t *testing.T) {
	net := topology.NewNetwork("broken")
	net.AddServer("a")
	net.AddServer("b")
	if _, err := ASPL(net, 0, nil); err == nil {
		t.Error("ASPL on disconnected net succeeded")
	}
}

func TestAvgRoutedLengthAgainstRoute(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	pairs := [][2]int{
		{net.Server(0), net.Server(5)},
		{net.Server(1), net.Server(9)},
	}
	avg, worst, err := AvgRoutedLength(tp, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 || worst <= 0 || float64(worst) < avg {
		t.Errorf("avg %f worst %d inconsistent", avg, worst)
	}
	if avg2, worst2, err := AvgRoutedLength(tp, nil); err != nil || avg2 != 0 || worst2 != 0 {
		t.Errorf("empty pairs: %f %d %v", avg2, worst2, err)
	}
}

func TestBisectionCutMatchesAnalyticABCCC(t *testing.T) {
	// For even n the canonical halves align exactly with the top-digit cut,
	// so the exact min-cut must equal the formula (n/2)*n^k. For odd n the
	// halves split a digit group and the formula is only a lower estimate.
	for _, cfg := range []core.Config{{N: 2, K: 1, P: 2}, {N: 4, K: 1, P: 2}, {N: 4, K: 1, P: 3}} {
		tp := core.MustBuild(cfg)
		got := BisectionCut(tp.Network())
		want := tp.Properties().BisectionLinks
		if got != want {
			t.Errorf("%s: BisectionCut = %d, analytic %d", tp.Network().Name(), got, want)
		}
	}
	odd := core.MustBuild(core.Config{N: 3, K: 1, P: 3})
	if got, est := BisectionCut(odd.Network()), odd.Properties().BisectionLinks; got < est {
		t.Errorf("odd-n BisectionCut = %d below estimate %d", got, est)
	}
}

func TestBisectionCutMatchesAnalyticBCube(t *testing.T) {
	tp := bcube.MustBuild(bcube.Config{N: 4, K: 1})
	if got, want := BisectionCut(tp.Network()), tp.Properties().BisectionLinks; got != want {
		t.Errorf("BisectionCut = %d, analytic %d", got, want)
	}
}

func TestCanonicalHalvesBalanced(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	a, b := CanonicalHalves(tp.Network())
	if len(a) != len(b) {
		t.Errorf("halves %d vs %d", len(a), len(b))
	}
}

func TestLinkLoads(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	p1, err := tp.Route(net.Server(0), net.Server(7))
	if err != nil {
		t.Fatal(err)
	}
	rep := LinkLoads(net, []topology.Path{p1, p1})
	if rep.MaxLoad != 2 {
		t.Errorf("MaxLoad = %d, want 2 (duplicated path)", rep.MaxLoad)
	}
	if rep.UsedLinks != p1.Len() {
		t.Errorf("UsedLinks = %d, want %d", rep.UsedLinks, p1.Len())
	}
	if rep.AvgLoad != 2 {
		t.Errorf("AvgLoad = %f, want 2", rep.AvgLoad)
	}
	if empty := LinkLoads(net, nil); empty.MaxLoad != 0 || empty.UsedLinks != 0 {
		t.Errorf("empty loads = %+v", empty)
	}
}

func TestPathLengthHistogram(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	pairs := [][2]int{
		{net.Server(0), net.Server(0)},
		{net.Server(0), net.Server(1)},
		{net.Server(0), net.Server(17)},
	}
	hist, err := PathLengthHistogram(tp, pairs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != len(pairs) {
		t.Errorf("histogram total %d, want %d", total, len(pairs))
	}
	if hist[0] != 1 {
		t.Errorf("hist[0] = %d, want 1 (the self pair)", hist[0])
	}
}

func TestConnectionFailureRatio(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	pairs := [][2]int{
		{net.Server(0), net.Server(5)},
		{net.Server(1), net.Server(9)},
		{net.Server(2), net.Server(10)},
	}
	route := func(src, dst int, view *graph.View) (topology.Path, error) {
		return tp.RouteAvoiding(src, dst, view)
	}
	// No failures: zero miss, zero disconnects.
	view := graph.NewView(net.Graph())
	miss, disc := ConnectionFailureRatio(net, view, route, pairs)
	if miss != 0 || disc != 0 {
		t.Errorf("no failures: miss %f disc %f", miss, disc)
	}
	// Destination down: that pair is disconnected and missed.
	view.FailNode(net.Server(5))
	miss, disc = ConnectionFailureRatio(net, view, route, pairs)
	if disc == 0 || miss < disc {
		t.Errorf("with failure: miss %f disc %f", miss, disc)
	}
	if m, d := ConnectionFailureRatio(net, view, route, nil); m != 0 || d != 0 {
		t.Errorf("empty pairs: %f %f", m, d)
	}
}

func TestJainFairness(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		want   float64
	}{
		{name: "empty", values: nil, want: 1},
		{name: "all zero", values: []float64{0, 0}, want: 1},
		{name: "even", values: []float64{2, 2, 2, 2}, want: 1},
		{name: "one hog", values: []float64{4, 0, 0, 0}, want: 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainFairness(tt.values); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("JainFairness = %f, want %f", got, tt.want)
			}
		})
	}
	// Uneven loads score strictly below even ones.
	if JainFairness([]float64{1, 3}) >= JainFairness([]float64{2, 2}) {
		t.Error("uneven >= even")
	}
}

func TestLinkLoadVectorMatchesReport(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	p1, err := tp.Route(net.Server(0), net.Server(7))
	if err != nil {
		t.Fatal(err)
	}
	vec := LinkLoadVector(net, []topology.Path{p1, p1})
	rep := LinkLoads(net, []topology.Path{p1, p1})
	if len(vec) != rep.UsedLinks {
		t.Errorf("vector length %d != used links %d", len(vec), rep.UsedLinks)
	}
	for _, v := range vec {
		if v != 2 {
			t.Errorf("load %f, want 2", v)
		}
	}
	if got := LinkLoadVector(net, nil); got != nil {
		t.Errorf("empty paths vector = %v", got)
	}
}
