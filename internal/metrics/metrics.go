// Package metrics computes the empirical quantities behind the paper's
// comparison tables and figures: diameters, average path lengths, bisection
// cuts, link loads, and path-length histograms. Everything is measured on the
// built graph, so analytic formulas in the topology packages can be
// cross-checked against reality.
package metrics

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// DiameterLinks returns the worst-case shortest-path distance in links
// between any two servers.
func DiameterLinks(net *topology.Network) (int, error) {
	servers := net.Servers()
	worst := 0
	for _, src := range servers {
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			return 0, fmt.Errorf("metrics: network %s is disconnected", net.Name())
		}
		if ecc > worst {
			worst = ecc
		}
	}
	return worst, nil
}

// SampledDiameterLinks lower-bounds the diameter by running BFS from a
// random sample of servers; exact when sample >= number of servers.
func SampledDiameterLinks(net *topology.Network, sample int, rng *rand.Rand) (int, error) {
	servers := net.Servers()
	if sample >= len(servers) {
		return DiameterLinks(net)
	}
	worst := 0
	for i := 0; i < sample; i++ {
		src := servers[rng.Intn(len(servers))]
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			return 0, fmt.Errorf("metrics: network %s is disconnected", net.Name())
		}
		if ecc > worst {
			worst = ecc
		}
	}
	return worst, nil
}

// ASPL returns the average shortest-path length in links over server pairs.
// With sample <= 0 every server is used as a BFS source; otherwise `sample`
// random sources are used.
func ASPL(net *topology.Network, sample int, rng *rand.Rand) (float64, error) {
	servers := net.Servers()
	sources := servers
	if sample > 0 && sample < len(servers) {
		sources = make([]int, sample)
		for i := range sources {
			sources[i] = servers[rng.Intn(len(servers))]
		}
	}
	isServer := make(map[int]bool, len(servers))
	for _, s := range servers {
		isServer[s] = true
	}
	var total float64
	var count int
	for _, src := range sources {
		res := net.Graph().BFS(src, nil)
		for _, dst := range servers {
			if dst == src {
				continue
			}
			d := res.Dist[dst]
			if d == graph.Unreachable {
				return 0, fmt.Errorf("metrics: %s unreachable from %s", net.Label(dst), net.Label(src))
			}
			total += float64(d)
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

// AvgRoutedLength returns the average length in links of the structure's own
// routed paths over the given server pairs, plus the worst observed length.
func AvgRoutedLength(t topology.Topology, pairs [][2]int) (avg float64, worst int, err error) {
	if len(pairs) == 0 {
		return 0, 0, nil
	}
	total := 0
	for _, pr := range pairs {
		p, err := t.Route(pr[0], pr[1])
		if err != nil {
			return 0, 0, fmt.Errorf("metrics: route: %w", err)
		}
		total += p.Len()
		if p.Len() > worst {
			worst = p.Len()
		}
	}
	return float64(total) / float64(len(pairs)), worst, nil
}

// CanonicalHalves splits the servers into two contiguous halves in creation
// order. For every structure in this repository creation order follows the
// top address digit (ABCCC/BCCC/BCube crossbar vectors, fat-tree pods, DCell
// top-level copies), so this is the canonical worst-case bisection partition
// the analytic formulas describe.
func CanonicalHalves(net *topology.Network) (a, b []int) {
	servers := net.Servers()
	half := len(servers) / 2
	return servers[:half], servers[half:]
}

// BisectionCut returns the exact minimum number of links whose removal
// disconnects the canonical server halves (max-flow between the halves).
func BisectionCut(net *topology.Network) int {
	a, b := CanonicalHalves(net)
	return net.Graph().MinCutBetween(a, b)
}

// LoadReport summarizes per-link usage induced by a set of paths.
type LoadReport struct {
	// MaxLoad is the number of paths on the busiest link.
	MaxLoad int
	// AvgLoad is the mean number of paths per used link.
	AvgLoad float64
	// UsedLinks is the number of links carrying at least one path.
	UsedLinks int
}

// LinkLoads counts how many of the given paths traverse each link.
func LinkLoads(net *topology.Network, paths []topology.Path) LoadReport {
	loads := make([]int, net.Graph().NumEdges())
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			loads[net.Graph().EdgeBetween(p[i-1], p[i])]++
		}
	}
	var rep LoadReport
	total := 0
	for _, l := range loads {
		if l == 0 {
			continue
		}
		rep.UsedLinks++
		total += l
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
	}
	if rep.UsedLinks > 0 {
		rep.AvgLoad = float64(total) / float64(rep.UsedLinks)
	}
	return rep
}

// LinkLoadVector returns the per-link path counts for the links that carry
// at least one path, as floats ready for fairness scoring.
func LinkLoadVector(net *topology.Network, paths []topology.Path) []float64 {
	loads := make([]int, net.Graph().NumEdges())
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			loads[net.Graph().EdgeBetween(p[i-1], p[i])]++
		}
	}
	var out []float64
	for _, l := range loads {
		if l > 0 {
			out = append(out, float64(l))
		}
	}
	return out
}

// PathLengthHistogram returns counts of routed path lengths (in links) over
// the given pairs, indexed by length.
func PathLengthHistogram(t topology.Topology, pairs [][2]int) ([]int, error) {
	var hist []int
	for _, pr := range pairs {
		p, err := t.Route(pr[0], pr[1])
		if err != nil {
			return nil, fmt.Errorf("metrics: route: %w", err)
		}
		for p.Len() >= len(hist) {
			hist = append(hist, 0)
		}
		hist[p.Len()]++
	}
	return hist, nil
}

// ConnectionFailureRatio measures, over sampled server pairs under the given
// failure view, the fraction of pairs for which `route` finds no path even
// though (graph-wise) connectivity may remain. It returns the ratio of
// routing misses and the ratio of genuinely disconnected pairs.
func ConnectionFailureRatio(
	net *topology.Network,
	view *graph.View,
	route func(src, dst int, view *graph.View) (topology.Path, error),
	pairs [][2]int,
) (missRatio, disconnectedRatio float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	miss, disc := 0, 0
	for _, pr := range pairs {
		src, dst := pr[0], pr[1]
		if !view.NodeUp(src) || !view.NodeUp(dst) || net.Graph().ShortestPath(src, dst, view) == nil {
			disc++
			miss++
			continue
		}
		if _, err := route(src, dst, view); err != nil {
			miss++
		}
	}
	return float64(miss) / float64(len(pairs)), float64(disc) / float64(len(pairs))
}
