// Package metrics computes the empirical quantities behind the paper's
// comparison tables and figures: diameters, average path lengths, bisection
// cuts, link loads, and path-length histograms. Everything is measured on the
// built graph, so analytic formulas in the topology packages can be
// cross-checked against reality.
package metrics

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// DiameterLinks returns the worst-case shortest-path distance in links
// between any two servers. The BFS sources fan out over all CPUs.
func DiameterLinks(net *topology.Network) (int, error) {
	return diameterFrom(net, net.Servers())
}

// SampledDiameterLinks lower-bounds the diameter by running BFS from a
// random sample of servers; exact when sample >= number of servers.
func SampledDiameterLinks(net *topology.Network, sample int, rng *rand.Rand) (int, error) {
	servers := net.Servers()
	if sample >= len(servers) {
		return DiameterLinks(net)
	}
	// Draw the sources serially so the sample is reproducible for a given
	// rng regardless of how the BFS sweep is scheduled.
	sources := make([]int, sample)
	for i := range sources {
		sources[i] = servers[rng.Intn(len(servers))]
	}
	return diameterFrom(net, sources)
}

// diameterFrom runs the eccentricity sweep from the given BFS sources in
// parallel and reduces deterministically over per-source slots.
func diameterFrom(net *topology.Network, sources []int) (int, error) {
	servers := net.Servers()
	eccs := make([]int, len(sources))
	ok := make([]bool, len(sources))
	net.Graph().ForEachBFS(sources, nil, 0, func(i int, res graph.BFSResult) {
		eccs[i], ok[i] = res.Eccentricity(servers)
	})
	worst := 0
	for i, ecc := range eccs {
		if !ok[i] {
			return 0, fmt.Errorf("metrics: network %s is disconnected", net.Name())
		}
		if ecc > worst {
			worst = ecc
		}
	}
	return worst, nil
}

// ASPL returns the average shortest-path length in links over server pairs.
// With sample <= 0 every server is used as a BFS source; otherwise `sample`
// random sources are used.
func ASPL(net *topology.Network, sample int, rng *rand.Rand) (float64, error) {
	servers := net.Servers()
	sources := servers
	if sample > 0 && sample < len(servers) {
		sources = make([]int, sample)
		for i := range sources {
			sources[i] = servers[rng.Intn(len(servers))]
		}
	}
	// Per-source partial sums land in per-index slots and are reduced in
	// source order, so the result is bit-identical to the serial sweep no
	// matter how the workers interleave.
	totals := make([]float64, len(sources))
	counts := make([]int, len(sources))
	badDst := make([]int, len(sources))
	net.Graph().ForEachBFS(sources, nil, 0, func(i int, res graph.BFSResult) {
		badDst[i] = -1
		for _, dst := range servers {
			if dst == res.Source {
				continue
			}
			d := res.Dist[dst]
			if d == graph.Unreachable {
				if badDst[i] == -1 {
					badDst[i] = dst
				}
				continue
			}
			totals[i] += float64(d)
			counts[i]++
		}
	})
	var total float64
	var count int
	for i := range sources {
		if badDst[i] != -1 {
			return 0, fmt.Errorf("metrics: %s unreachable from %s", net.Label(badDst[i]), net.Label(sources[i]))
		}
		total += totals[i]
		count += counts[i]
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

// AvgRoutedLength returns the average length in links of the structure's own
// routed paths over the given server pairs, plus the worst observed length.
func AvgRoutedLength(t topology.Topology, pairs [][2]int) (avg float64, worst int, err error) {
	if len(pairs) == 0 {
		return 0, 0, nil
	}
	lens := make([]int, len(pairs))
	errs := make([]error, len(pairs))
	forEachIndex(0, len(pairs), func(_, i int) {
		p, err := t.Route(pairs[i][0], pairs[i][1])
		if err != nil {
			errs[i] = fmt.Errorf("metrics: route: %w", err)
			return
		}
		lens[i] = p.Len()
	})
	if err := firstError(errs); err != nil {
		return 0, 0, err
	}
	total := 0
	for _, l := range lens {
		total += l
		if l > worst {
			worst = l
		}
	}
	return float64(total) / float64(len(pairs)), worst, nil
}

// CanonicalHalves splits the servers into two contiguous halves in creation
// order. For every structure in this repository creation order follows the
// top address digit (ABCCC/BCCC/BCube crossbar vectors, fat-tree pods, DCell
// top-level copies), so this is the canonical worst-case bisection partition
// the analytic formulas describe.
func CanonicalHalves(net *topology.Network) (a, b []int) {
	servers := net.Servers()
	half := len(servers) / 2
	return servers[:half], servers[half:]
}

// BisectionCut returns the exact minimum number of links whose removal
// disconnects the canonical server halves (max-flow between the halves).
func BisectionCut(net *topology.Network) int {
	a, b := CanonicalHalves(net)
	return net.Graph().MinCutBetween(a, b)
}

// LoadReport summarizes per-link usage induced by a set of paths.
type LoadReport struct {
	// MaxLoad is the number of paths on the busiest link.
	MaxLoad int
	// AvgLoad is the mean number of paths per used link.
	AvgLoad float64
	// UsedLinks is the number of links carrying at least one path.
	UsedLinks int
}

// LinkLoads counts how many of the given paths traverse each link.
func LinkLoads(net *topology.Network, paths []topology.Path) LoadReport {
	loads := make([]int, net.Graph().NumEdges())
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			loads[net.Graph().EdgeBetween(p[i-1], p[i])]++
		}
	}
	var rep LoadReport
	total := 0
	for _, l := range loads {
		if l == 0 {
			continue
		}
		rep.UsedLinks++
		total += l
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
	}
	if rep.UsedLinks > 0 {
		rep.AvgLoad = float64(total) / float64(rep.UsedLinks)
	}
	return rep
}

// LinkLoadVector returns the per-link path counts for the links that carry
// at least one path, as floats ready for fairness scoring.
func LinkLoadVector(net *topology.Network, paths []topology.Path) []float64 {
	loads := make([]int, net.Graph().NumEdges())
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			loads[net.Graph().EdgeBetween(p[i-1], p[i])]++
		}
	}
	var out []float64
	for _, l := range loads {
		if l > 0 {
			out = append(out, float64(l))
		}
	}
	return out
}

// PathLengthHistogram returns counts of routed path lengths (in links) over
// the given pairs, indexed by length.
func PathLengthHistogram(t topology.Topology, pairs [][2]int) ([]int, error) {
	lens := make([]int, len(pairs))
	errs := make([]error, len(pairs))
	forEachIndex(0, len(pairs), func(_, i int) {
		p, err := t.Route(pairs[i][0], pairs[i][1])
		if err != nil {
			errs[i] = fmt.Errorf("metrics: route: %w", err)
			return
		}
		lens[i] = p.Len()
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var hist []int
	for _, l := range lens {
		for l >= len(hist) {
			hist = append(hist, 0)
		}
		hist[l]++
	}
	return hist, nil
}

// ConnectionFailureRatio measures, over sampled server pairs under the given
// failure view, the fraction of pairs for which `route` finds no path even
// though (graph-wise) connectivity may remain. It returns the ratio of
// routing misses and the ratio of genuinely disconnected pairs.
func ConnectionFailureRatio(
	net *topology.Network,
	view *graph.View,
	route func(src, dst int, view *graph.View) (topology.Path, error),
	pairs [][2]int,
) (missRatio, disconnectedRatio float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	// One BFS scratch per worker: the reachability probe is the hot path of
	// the failure sweeps and must not allocate per pair.
	workers := graph.Workers(0, len(pairs))
	scratch := make([]*graph.BFSScratch, workers)
	for w := range scratch {
		scratch[w] = graph.NewBFSScratch(net.Graph().NumNodes())
	}
	missed := make([]bool, len(pairs))
	disconnected := make([]bool, len(pairs))
	forEachIndex(workers, len(pairs), func(worker, i int) {
		src, dst := pairs[i][0], pairs[i][1]
		if !view.NodeUp(src) || !view.NodeUp(dst) ||
			net.Graph().BFSScratched(src, view, scratch[worker]).Dist[dst] == graph.Unreachable {
			disconnected[i] = true
			missed[i] = true
			return
		}
		if _, err := route(src, dst, view); err != nil {
			missed[i] = true
		}
	})
	miss, disc := 0, 0
	for i := range pairs {
		if missed[i] {
			miss++
		}
		if disconnected[i] {
			disc++
		}
	}
	return float64(miss) / float64(len(pairs)), float64(disc) / float64(len(pairs))
}
