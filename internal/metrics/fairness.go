package metrics

// JainFairness returns Jain's fairness index over the values:
// (sum x)^2 / (n * sum x^2), in (0, 1], where 1 means perfectly even.
// Used to score how evenly a routing policy spreads load across links and
// how evenly an allocator shares rate across flows.
func JainFairness(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
