package planner

import (
	"testing"

	"repro/internal/cost"
)

func TestRequirementsValidate(t *testing.T) {
	tests := []struct {
		name    string
		req     Requirements
		wantErr bool
	}{
		{name: "ok", req: Requirements{MinServers: 100, MaxServerPorts: 3, MaxSwitchPorts: 16}},
		{name: "zero servers", req: Requirements{MaxServerPorts: 2, MaxSwitchPorts: 8}, wantErr: true},
		{name: "one port", req: Requirements{MinServers: 10, MaxServerPorts: 1, MaxSwitchPorts: 8}, wantErr: true},
		{name: "tiny switch", req: Requirements{MinServers: 10, MaxServerPorts: 2, MaxSwitchPorts: 1}, wantErr: true},
		{name: "negative budget", req: Requirements{MinServers: 10, MaxServerPorts: 2, MaxSwitchPorts: 8, MaxBudget: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.req.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlanMeetsRequirements(t *testing.T) {
	req := Requirements{MinServers: 500, MaxServerPorts: 4, MaxSwitchPorts: 24}
	frontier, err := Plan(req, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, c := range frontier {
		if c.Props.Servers < req.MinServers {
			t.Errorf("%s hosts %d servers < %d", c.Props.Name, c.Props.Servers, req.MinServers)
		}
		if c.Config.P > req.MaxServerPorts || c.Config.N > req.MaxSwitchPorts {
			t.Errorf("%s violates hardware limits", c.Props.Name)
		}
		if c.PerServer <= 0 {
			t.Errorf("%s has non-positive cost", c.Props.Name)
		}
	}
}

func TestPlanFrontierIsNonDominated(t *testing.T) {
	frontier, err := Plan(Requirements{MinServers: 200, MaxServerPorts: 5, MaxSwitchPorts: 16}, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range frontier {
		for j, b := range frontier {
			if i != j && dominates(a, b) {
				t.Errorf("%s dominates %s but both on frontier", a.Props.Name, b.Props.Name)
			}
		}
	}
}

func TestPlanFrontierSpansTheTradeoff(t *testing.T) {
	// With generous hardware limits the frontier must include both a
	// cheap/slow configuration (p=2) and a faster/more expensive one (p>2).
	frontier, err := Plan(Requirements{MinServers: 300, MaxServerPorts: 4, MaxSwitchPorts: 24}, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	sawCheap, sawFast := false, false
	for _, c := range frontier {
		if c.Config.P == 2 {
			sawCheap = true
		}
		if c.Config.P > 2 {
			sawFast = true
		}
	}
	if !sawCheap || !sawFast {
		t.Errorf("frontier lacks trade-off spread: cheap=%v fast=%v (%d entries)",
			sawCheap, sawFast, len(frontier))
	}
}

func TestPlanBudgetFilters(t *testing.T) {
	req := Requirements{MinServers: 500, MaxServerPorts: 3, MaxSwitchPorts: 24}
	all, err := Plan(req, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no candidates")
	}
	// Cap the budget below the most expensive frontier candidate.
	maxTotal := 0.0
	for _, c := range all {
		if c.CapEx.Total() > maxTotal {
			maxTotal = c.CapEx.Total()
		}
	}
	req.MaxBudget = maxTotal * 0.5
	cheap, err := Plan(req, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cheap {
		if c.CapEx.Total() > req.MaxBudget {
			t.Errorf("%s exceeds budget", c.Props.Name)
		}
	}
}

func TestPlanImpossibleRequirements(t *testing.T) {
	// A population no config under the limits can reach.
	frontier, err := Plan(Requirements{MinServers: 1 << 20, MaxServerPorts: 2, MaxSwitchPorts: 4}, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 0 {
		t.Errorf("impossible requirements produced %d candidates", len(frontier))
	}
	if _, err := Plan(Requirements{}, cost.Default()); err == nil {
		t.Error("invalid requirements accepted")
	}
}
