// Package planner turns the paper's "suits many different applications by
// fine tuning its parameters" claim into a tool: given deployment
// requirements (server population, available NIC/switch hardware, budget),
// it enumerates the feasible ABCCC configurations and returns the Pareto
// frontier over interconnect cost per server, diameter, and per-server
// bisection bandwidth.
package planner

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/topology"
)

// Requirements constrain the search.
type Requirements struct {
	// MinServers is the population the deployment must reach.
	MinServers int
	// MaxServerPorts bounds p (NIC ports available per server).
	MaxServerPorts int
	// MaxSwitchPorts bounds n (largest commodity switch radix available).
	MaxSwitchPorts int
	// MaxBudget caps total interconnect CapEx; 0 means unlimited.
	MaxBudget float64
	// MaxOversize discards configurations whose population exceeds
	// MinServers by more than this factor (default 4: paying for a network
	// 4x the requirement is rarely the plan the operator wants).
	MaxOversize float64
}

// Validate reports whether the requirements are searchable.
func (r Requirements) Validate() error {
	if r.MinServers < 1 {
		return fmt.Errorf("planner: MinServers = %d, need >= 1", r.MinServers)
	}
	if r.MaxServerPorts < 2 {
		return fmt.Errorf("planner: MaxServerPorts = %d, need >= 2", r.MaxServerPorts)
	}
	if r.MaxSwitchPorts < 2 {
		return fmt.Errorf("planner: MaxSwitchPorts = %d, need >= 2", r.MaxSwitchPorts)
	}
	if r.MaxBudget < 0 || r.MaxOversize < 0 {
		return fmt.Errorf("planner: negative budget or oversize factor")
	}
	return nil
}

// Candidate is one feasible configuration with its figures of merit.
type Candidate struct {
	Config    core.Config
	Props     topology.Properties
	CapEx     cost.Breakdown
	PerServer float64
	// BisectionPerServer is bisection links divided by servers (line-rate
	// fraction available across the worst cut, per server).
	BisectionPerServer float64
}

// Plan enumerates feasible configurations and returns the Pareto frontier:
// no returned candidate is dominated (worse or equal on per-server cost,
// diameter, and per-server bisection, strictly worse somewhere) by another.
// Results are sorted by per-server cost.
func Plan(req Requirements, model cost.Model) ([]Candidate, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	oversize := req.MaxOversize
	if oversize == 0 {
		oversize = 4
	}
	var candidates []Candidate
	for n := 2; n <= req.MaxSwitchPorts; n++ {
		for p := 2; p <= req.MaxServerPorts; p++ {
			for k := 0; ; k++ {
				cfg := core.Config{N: n, K: k, P: p}
				if cfg.Validate() != nil {
					break // larger k only gets worse for this (n, p)
				}
				props := cfg.Properties()
				if float64(props.Servers) > oversize*float64(req.MinServers) {
					break
				}
				if props.Servers < req.MinServers {
					continue
				}
				bill := model.CapEx(props)
				if req.MaxBudget > 0 && bill.Total() > req.MaxBudget {
					continue
				}
				candidates = append(candidates, Candidate{
					Config:             cfg,
					Props:              props,
					CapEx:              bill,
					PerServer:          bill.PerServer(props.Servers),
					BisectionPerServer: float64(props.BisectionLinks) / float64(props.Servers),
				})
			}
		}
	}
	frontier := paretoFilter(candidates)
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].PerServer != frontier[j].PerServer {
			return frontier[i].PerServer < frontier[j].PerServer
		}
		return frontier[i].Props.Diameter < frontier[j].Props.Diameter
	})
	return frontier, nil
}

// paretoFilter removes dominated candidates.
func paretoFilter(cands []Candidate) []Candidate {
	var out []Candidate
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if dominates(d, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// dominates reports whether a is at least as good as b everywhere and
// strictly better somewhere (cheaper per server, shorter diameter, more
// bisection per server).
func dominates(a, b Candidate) bool {
	if a.PerServer > b.PerServer || a.Props.Diameter > b.Props.Diameter ||
		a.BisectionPerServer < b.BisectionPerServer {
		return false
	}
	return a.PerServer < b.PerServer || a.Props.Diameter < b.Props.Diameter ||
		a.BisectionPerServer > b.BisectionPerServer
}
