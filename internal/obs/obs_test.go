package obs

import (
	"bytes"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	var tr *Tracer
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	tr.Record(Event{Kind: "hop"})
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 {
		t.Error("nil instruments must read zero")
	}
	if hs := h.Snapshot(); hs.Count != 0 {
		t.Error("nil histogram must snapshot empty")
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer must read empty")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry must snapshot empty")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if r.Counter("pkts") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(3)
	g.Add(-6)
	if g.Value() != 2 || g.Max() != 8 {
		t.Errorf("gauge value/max = %d/%d, want 2/8", g.Value(), g.Max())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-500.5) > 1e-9 {
		t.Errorf("mean = %f, want 500.5", mean)
	}
	// Power-of-two buckets bound each quantile estimate by the next power of
	// two above the true quantile.
	if q := s.Quantile(0.5); q < 500 || q > 1023 {
		t.Errorf("p50 = %d, want within [500, 1023]", q)
	}
	if q := s.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", q)
	}
	if q := s.Quantile(0.0); q < 1 {
		t.Errorf("p0 = %d, want >= 1", q)
	}
	total := int64(0)
	last := int64(math.MinInt64)
	for _, b := range s.Buckets {
		if b.Lo > b.Hi || b.Lo <= last {
			t.Errorf("bucket [%d,%d] out of order", b.Lo, b.Hi)
		}
		last = b.Hi
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistogramNonPositiveValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(0)
	h.Observe(7)
	s := h.Snapshot()
	if s.Count != 3 || s.Min != -5 || s.Max != 7 || s.Sum != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("want 2 buckets (non-positive, [4,7]), got %+v", s.Buckets)
	}
	if s.Buckets[0].Count != 2 || s.Buckets[0].Hi != 0 {
		t.Errorf("non-positive bucket = %+v", s.Buckets[0])
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{TimeNs: int64(i), Kind: "hop", ID: int64(i)})
	}
	if tr.Recorded() != 10 || tr.Dropped() != 6 {
		t.Fatalf("recorded/dropped = %d/%d, want 10/6", tr.Recorded(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != int64(6+i) {
			t.Errorf("event %d has ID %d, want %d (oldest-first)", i, ev.ID, 6+i)
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	want := []Event{
		{TimeNs: 100, Kind: "hop", ID: 1, Node: 0, Hop: 0},
		{TimeNs: 250, Kind: "hop", ID: 1, Node: 3, Hop: 1, Detail: "queued"},
		{TimeNs: 300, Kind: "drop", ID: 2, Node: 5, Hop: 2, Detail: "droptail"},
	}
	for _, ev := range want {
		tr.Record(ev)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no instruments") {
		t.Errorf("empty summary = %q", buf.String())
	}
	r := NewRegistry()
	r.Counter("drops").Add(3)
	r.Gauge("inflight").Set(7)
	r.Histogram("latency_ns").Observe(1500)
	buf.Reset()
	if err := WriteSummary(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drops", "3", "inflight", "7", "latency_ns", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestStartPprof(t *testing.T) {
	addr, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}
