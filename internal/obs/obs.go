// Package obs is the instrumentation substrate of the repository: a
// dependency-free (stdlib-only), allocation-conscious metrics registry with
// atomic counters and gauges, lock-free power-of-two-bucket histograms, a
// ring-buffer event recorder for per-packet hop traces, and pluggable sinks
// (a human-readable summary table and JSONL trace export).
//
// Instrumentation is disabled by default and costs almost nothing when off:
// every hot-path method (Counter.Inc, Gauge.Set, Histogram.Observe,
// Tracer.Record) is safe to call on a nil receiver, and a nil *Registry
// hands out nil instruments. Instrumented code therefore never branches on
// an "enabled" flag — it just calls through possibly-nil instruments, and
// the disabled path is a single pointer test (see the package benchmarks,
// which put the no-op calls at well under a nanosecond).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that also tracks its high-water
// mark. The zero value is ready to use; a nil *Gauge discards all updates.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add adjusts the gauge by delta (which may be negative) and raises the
// high-water mark if the new value exceeds it.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(v int64) {
	for {
		old := g.max.Load()
		if v <= old || g.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Registry is a named collection of instruments. Instruments are created on
// first use and shared thereafter; registration takes a mutex but updates
// are lock-free. A nil *Registry hands out nil instruments, so a single
// nilable registry pointer turns a whole subsystem's instrumentation on or
// off.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use
// (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use
// (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use
// (nil on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// NamedCounter, NamedGauge and NamedHistogram pair an instrument's name with
// its snapshotted state.
type NamedCounter struct {
	Name  string
	Value int64
}

// NamedGauge is a gauge's snapshot.
type NamedGauge struct {
	Name       string
	Value, Max int64
}

// NamedHistogram is a histogram's snapshot.
type NamedHistogram struct {
	Name     string
	Snapshot HistogramSnapshot
}

// RegistrySnapshot is a point-in-time copy of every instrument, each section
// sorted by name.
type RegistrySnapshot struct {
	Counters   []NamedCounter
	Gauges     []NamedGauge
	Histograms []NamedHistogram
}

// Snapshot copies the current state of every instrument. It is safe to call
// while writers are updating instruments concurrently: values are read with
// atomic loads, so the snapshot is internally consistent per instrument
// (though not a global atomic cut). A nil registry snapshots empty.
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.Unlock()

	for n, c := range counters {
		s.Counters = append(s.Counters, NamedCounter{Name: n, Value: c.Value()})
	}
	for n, g := range gauges {
		s.Gauges = append(s.Gauges, NamedGauge{Name: n, Value: g.Value(), Max: g.Max()})
	}
	for n, h := range hists {
		s.Histograms = append(s.Histograms, NamedHistogram{Name: n, Snapshot: h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
