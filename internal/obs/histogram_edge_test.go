package obs

import (
	"math"
	"testing"
)

// Edge cases for HistogramSnapshot.Quantile and Mean: empty snapshot,
// single sample, and every observation landing in one bucket. These pin the
// documented zero-value behavior — an empty snapshot answers 0 for every
// statistic, never NaN or a stale bucket edge.
func TestHistogramEmptySnapshot(t *testing.T) {
	for _, s := range []HistogramSnapshot{
		{},                        // zero value
		NewHistogram().Snapshot(), // freshly built, nothing observed
		(*Histogram)(nil).Snapshot(),
	} {
		if got := s.Mean(); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Mean = %v, want exactly 0", got)
		}
		for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
			if got := s.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
		if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
			t.Errorf("empty snapshot carries values: %+v", s)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	s := h.Snapshot()
	if got := s.Mean(); got != 42 {
		t.Errorf("Mean = %v, want 42", got)
	}
	// Every quantile of a single observation is that observation.
	for _, q := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %d, want 42", q, got)
		}
	}
	if s.Min != 42 || s.Max != 42 || s.Count != 1 || s.Sum != 42 {
		t.Errorf("snapshot = %+v, want min=max=42 count=1 sum=42", s)
	}
}

func TestHistogramAllOneBucket(t *testing.T) {
	// 100, 101, ..., 127 all land in bucket [64, 127].
	h := NewHistogram()
	var sum int64
	for v := int64(100); v <= 127; v++ {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("got %d buckets, want 1: %+v", len(s.Buckets), s.Buckets)
	}
	// The bucket is clamped to the observed range.
	if b := s.Buckets[0]; b.Lo != 100 || b.Hi != 127 || b.Count != 28 {
		t.Errorf("bucket = %+v, want [100,127] count 28", b)
	}
	if got, want := s.Mean(), float64(sum)/28; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Any quantile resolves to the single bucket's clamped upper edge.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 127 {
			t.Errorf("Quantile(%v) = %d, want 127", q, got)
		}
	}
}

// TestHistogramObserveN pins that a batched fold is indistinguishable from
// the equivalent sequence of single observations, and that the degenerate
// calls (nil receiver, non-positive count) record nothing.
func TestHistogramObserveN(t *testing.T) {
	single := NewHistogram()
	batched := NewHistogram()
	folds := map[int64]int64{0: 2, 1: 3, 7: 5, 4096: 1, 1 << 40: 4}
	for v, n := range folds {
		for i := int64(0); i < n; i++ {
			single.Observe(v)
		}
		batched.ObserveN(v, n)
	}
	a, b := single.Snapshot(), batched.Snapshot()
	if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max {
		t.Errorf("batched snapshot %+v, single %+v", b, a)
	}
	if len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("bucket shapes differ: %v vs %v", a.Buckets, b.Buckets)
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Errorf("bucket %d: batched %+v, single %+v", i, b.Buckets[i], a.Buckets[i])
		}
	}

	(*Histogram)(nil).ObserveN(5, 10) // must not panic
	empty := NewHistogram()
	empty.ObserveN(5, 0)
	empty.ObserveN(5, -3)
	if s := empty.Snapshot(); s.Count != 0 {
		t.Errorf("non-positive n recorded %d observations", s.Count)
	}
}
