package obs

import (
	"sync"
	"testing"
)

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	if got := s.WindowNs(); got != 0 {
		t.Errorf("nil series WindowNs = %d, want 0", got)
	}
	tr := s.Track("goodput")
	if tr != nil {
		t.Fatalf("nil series handed out non-nil track")
	}
	tr.Add(123, 456) // must not panic
	if got := tr.Clamped(); got != 0 {
		t.Errorf("nil track Clamped = %d, want 0", got)
	}
	if pts := s.Points(); pts != nil {
		t.Errorf("nil series Points = %v, want nil", pts)
	}
}

func TestSeriesWindowing(t *testing.T) {
	s := NewSeries(100) // 100 ns windows
	tr := s.Track("bytes")
	tr.Add(0, 10)    // window 0
	tr.Add(99, 5)    // window 0
	tr.Add(100, 7)   // window 1
	tr.Add(250, 3)   // window 2
	tr.Add(-50, 100) // negative time clamps into window 0

	pts := s.Points()
	want := []SeriesPoint{
		{Track: "bytes", Window: 0, T0Ns: 0, T1Ns: 100, Count: 3, Sum: 115, Max: 100},
		{Track: "bytes", Window: 1, T0Ns: 100, T1Ns: 200, Count: 1, Sum: 7, Max: 7},
		{Track: "bytes", Window: 2, T0Ns: 200, T1Ns: 300, Count: 1, Sum: 3, Max: 3},
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestSeriesDefaultWindow(t *testing.T) {
	s := NewSeries(0)
	if got := s.WindowNs(); got != DefaultSeriesWindowNs {
		t.Errorf("WindowNs = %d, want default %d", got, DefaultSeriesWindowNs)
	}
}

func TestSeriesTrackSharedByName(t *testing.T) {
	s := NewSeries(10)
	a := s.Track("x")
	b := s.Track("x")
	if a != b {
		t.Fatalf("Track(\"x\") returned distinct tracks")
	}
	a.Add(0, 1)
	b.Add(0, 1)
	pts := s.Points()
	if len(pts) != 1 || pts[0].Count != 2 {
		t.Fatalf("shared track points = %+v, want one window with count 2", pts)
	}
}

func TestSeriesClampPastBound(t *testing.T) {
	s := NewSeries(1) // 1 ns windows: window index == tNs
	tr := s.Track("x")
	farNs := int64(DefaultSeriesMaxWindows) * 10
	tr.Add(farNs, 1)
	tr.Add(farNs+1, 2)
	if got := tr.Clamped(); got != 2 {
		t.Errorf("Clamped = %d, want 2", got)
	}
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %+v, want 1 clamped window", pts)
	}
	if pts[0].Window != DefaultSeriesMaxWindows-1 || pts[0].Count != 2 || pts[0].Sum != 3 {
		t.Errorf("clamped window = %+v, want last window with count 2 sum 3", pts[0])
	}
}

// TestSeriesChunkGrowth crosses several chunk boundaries and verifies no
// update is lost and empty windows stay absent from Points.
func TestSeriesChunkGrowth(t *testing.T) {
	s := NewSeries(1)
	tr := s.Track("x")
	// One update every 3 windows across 4 chunks' worth of windows.
	n := int64(seriesChunkWindows * 4)
	var added int64
	for w := int64(0); w < n; w += 3 {
		tr.Add(w, 1)
		added++
	}
	pts := s.Points()
	if int64(len(pts)) != added {
		t.Fatalf("got %d points, want %d", len(pts), added)
	}
	for i, pt := range pts {
		if pt.Window != int64(i)*3 {
			t.Fatalf("point %d at window %d, want %d", i, pt.Window, i*3)
		}
		if pt.Count != 1 || pt.Sum != 1 {
			t.Errorf("point %d = %+v, want count 1 sum 1", i, pt)
		}
	}
}

// TestSeriesPointsDeterministic pins the flattening order: (window, track).
func TestSeriesPointsDeterministic(t *testing.T) {
	build := func() []SeriesPoint {
		s := NewSeries(10)
		// Create tracks in varying orders; the flattening must not care.
		for _, name := range []string{"zeta", "alpha", "mid"} {
			tr := s.Track(name)
			tr.Add(25, 1)
			tr.Add(5, 2)
		}
		return s.Points()
	}
	a, b := build(), build()
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("got %d / %d points, want 6 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across builds: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Windows ascend; track names ascend within a window.
	for i := 1; i < len(a); i++ {
		prev, cur := a[i-1], a[i]
		if cur.Window < prev.Window {
			t.Errorf("windows out of order at %d: %+v after %+v", i, cur, prev)
		}
		if cur.Window == prev.Window && cur.Track <= prev.Track {
			t.Errorf("tracks out of order at %d: %q after %q", i, cur.Track, prev.Track)
		}
	}
}

// TestSeriesConcurrentAdds hammers one track from many goroutines spanning
// chunk growth; totals must be exact — the property the sharded engines
// rely on for byte-identical series. Run under -race via make race.
func TestSeriesConcurrentAdds(t *testing.T) {
	const (
		writers = 8
		perG    = 4000
	)
	s := NewSeries(1)
	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			tr := s.Track("x")
			for i := 0; i < perG; i++ {
				// Spread across many windows to force concurrent growth.
				tr.Add(int64(i*7%2048), int64(g))
			}
		}(g)
	}
	// Concurrent reader while writers are live.
	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = s.Points()
		}
	}()
	wg.Wait()
	close(done)
	readerWG.Wait()

	var count, sum int64
	for _, pt := range s.Points() {
		count += pt.Count
		sum += pt.Sum
	}
	if count != writers*perG {
		t.Errorf("total count = %d, want %d", count, writers*perG)
	}
	wantSum := int64(perG) * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)
	if sum != wantSum {
		t.Errorf("total sum = %d, want %d", sum, wantSum)
	}
}

func TestShardProfileNilSafe(t *testing.T) {
	var p *ShardProfile
	p.RecordWindow([]ShardWindow{{Window: 0, Shard: 0}}) // must not panic
	if got := p.Windows(); got != nil {
		t.Errorf("nil profile Windows = %v, want nil", got)
	}
	if got := p.Summary(); got != nil {
		t.Errorf("nil profile Summary = %v, want nil", got)
	}
	if got := p.ImbalanceIndex(); got != 0 {
		t.Errorf("nil profile ImbalanceIndex = %v, want 0", got)
	}
}

func TestShardProfileSummaryAndImbalance(t *testing.T) {
	p := NewShardProfile()
	p.RecordWindow([]ShardWindow{
		{Window: 0, Shard: 0, BusyNs: 300, WaitNs: 0, Events: 30, HandoffOut: 3},
		{Window: 0, Shard: 1, BusyNs: 100, WaitNs: 200, Events: 10, HandoffIn: 3},
	})
	p.RecordWindow([]ShardWindow{
		{Window: 1, Shard: 0, BusyNs: 100, WaitNs: 100, Events: 10},
		{Window: 1, Shard: 1, BusyNs: 100, WaitNs: 100, Events: 10},
	})
	sum := p.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d shards, want 2", len(sum))
	}
	if sum[0].Shard != 0 || sum[0].BusyNs != 400 || sum[0].Events != 40 || sum[0].HandoffOut != 3 {
		t.Errorf("shard 0 summary = %+v", sum[0])
	}
	if sum[1].Shard != 1 || sum[1].BusyNs != 200 || sum[1].WaitNs != 300 || sum[1].HandoffIn != 3 {
		t.Errorf("shard 1 summary = %+v", sum[1])
	}
	// Window 0: max=300, sum=400, n=2 -> 1.5. Window 1: balanced -> 1.0.
	// Mean = 1.25.
	if got := p.ImbalanceIndex(); got < 1.249 || got > 1.251 {
		t.Errorf("ImbalanceIndex = %v, want 1.25", got)
	}
}

func BenchmarkTrackAddDisabled(b *testing.B) {
	var tr *Track
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(int64(i), 1)
	}
}

func BenchmarkTrackAddEnabled(b *testing.B) {
	tr := NewSeries(100).Track("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(int64(i%1_000_000), 1)
	}
}
