package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers bucket 0 (values <= 0) plus one bucket per bit position
// of a positive int64 (bits.Len64 of a positive int64 is 1..63).
const numBuckets = 64

// Histogram is a lock-free histogram with power-of-two bucket boundaries:
// bucket 0 counts non-positive observations and bucket i (i >= 1) counts
// values in [2^(i-1), 2^i - 1]. Observations are a couple of atomic adds —
// no locks, no allocation — so it is safe and cheap to update from many
// goroutines on a hot path. A nil *Histogram discards observations.
//
// Power-of-two buckets give a fixed 64-slot footprint over the whole int64
// range with at most a 2x relative quantile error, which is plenty for the
// latency/occupancy distributions the simulators record (values are expected
// in a unit-suffixed scale such as nanoseconds or packets).
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLowerBound returns the smallest value in bucket i.
func BucketLowerBound(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return 1 << (i - 1)
}

// BucketUpperBound returns the largest value in bucket i.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveN records n identical observations of v in one shot: three atomic
// adds plus the min/max races, however large n is. Batched engines fold
// per-shard tallies locally and flush them here at merge time, so an armed
// histogram costs nothing on their per-message path. n <= 0 records nothing.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.buckets[bucketIndex(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Bucket is one non-empty histogram bucket: Count observations fell in the
// value range [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count, Sum, Min, Max int64
	Buckets              []Bucket
}

// Mean returns the arithmetic mean of the observations. An empty snapshot
// returns exactly 0 (never NaN), so callers can print it unconditionally.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile from the bucket
// boundaries: the upper edge of the bucket containing the ceil(q*Count)-th
// observation (1-based nearest-rank), clamped to the observed maximum.
// q is clamped to [0, 1] (NaN behaves as 0). An empty snapshot returns
// exactly 0 for every q — there is no observation to bound, and 0 is the
// same value an empty snapshot reports for Min, Max, and Mean.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if !(q > 0) { // also catches NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Hi > s.Max {
				return s.Max
			}
			return b.Hi
		}
	}
	return s.Max
}

// Snapshot copies the histogram's current state. Safe to call concurrently
// with writers; per-field reads are atomic, so totals can be transiently
// off-by-a-few relative to the buckets while writers are mid-flight.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo := BucketLowerBound(i)
		hi := BucketUpperBound(i)
		if s.Count > 0 {
			if lo < s.Min {
				lo = s.Min
			}
			if hi > s.Max {
				hi = s.Max
			}
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}
