package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves net/http/pprof profiling endpoints on addr (host:port;
// use port 0 for an ephemeral port) for the duration of a run. It returns
// the bound address and a stop function that shuts the server down. Only the
// /debug/pprof/ endpoints are exposed — the handler is an explicit mux, not
// http.DefaultServeMux.
func StartPprof(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), srv.Close, nil
}
