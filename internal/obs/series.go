package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Series is the sim-time-windowed telemetry layer: a named set of Tracks,
// each accumulating (count, sum, max) cells over fixed-width time windows.
// Unlike the whole-run counters and histograms, a Track keys every update by
// the producer's timestamp, so after a run the per-window cells reconstruct
// time-resolved curves — goodput over a fault epoch, drop bursts, queue
// depth — instead of a single end-of-run total.
//
// Writers are lock-free on the hot path, exactly like Histogram: a window
// update is a chunk-pointer load plus three atomic adds, and window storage
// grows by appending fixed-size chunks whose cells never move, so concurrent
// writers racing a growth still land every update. Because cells only ever
// accumulate commutative quantities (integer sums and maxima), the per-window
// values are a pure function of the multiset of updates — the property that
// keeps a sharded engine's series byte-identical for every shard and worker
// count.
//
// A nil *Series hands out nil Tracks and a nil *Track discards updates, so
// the disabled path costs one pointer test per update site, the same
// contract as the rest of the package.
type Series struct {
	widthNs    int64
	maxWindows int64

	mu     sync.Mutex
	byName map[string]*Track
}

// DefaultSeriesWindowNs is the window width used when NewSeries is given a
// non-positive width: 100 us of simulated time.
const DefaultSeriesWindowNs = 100_000

// DefaultSeriesMaxWindows bounds a track's window range (64k windows; at the
// default width that is 6.5 s of simulated time). Updates past the bound
// clamp into the final window and are counted by Clamped, so a pathological
// run cannot grow telemetry without limit.
const DefaultSeriesMaxWindows = 1 << 16

// seriesChunkWindows is the growth granularity of a track's window storage.
// Chunks are allocated whole and never moved, which is what lets writers
// keep lock-free access across growth.
const seriesChunkWindows = 256

// seriesCell is one (track, window) accumulator.
type seriesCell struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// seriesChunk is a fixed block of consecutive window cells.
type seriesChunk [seriesChunkWindows]seriesCell

// NewSeries returns an empty series with the given window width in
// nanoseconds (DefaultSeriesWindowNs when non-positive).
func NewSeries(widthNs int64) *Series {
	if widthNs <= 0 {
		widthNs = DefaultSeriesWindowNs
	}
	return &Series{
		widthNs:    widthNs,
		maxWindows: DefaultSeriesMaxWindows,
		byName:     make(map[string]*Track),
	}
}

// WindowNs returns the window width in nanoseconds (0 on a nil series).
func (s *Series) WindowNs() int64 {
	if s == nil {
		return 0
	}
	return s.widthNs
}

// Track returns the named track, creating it on first use (nil on a nil
// series). Like Registry instruments, tracks are shared by name.
func (s *Series) Track(name string) *Track {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.byName[name]
	if !ok {
		tr = &Track{name: name, widthNs: s.widthNs, maxWindows: s.maxWindows}
		s.byName[name] = tr
	}
	return tr
}

// Track is one named windowed accumulator of a Series. Add routes an update
// to the window containing its timestamp; each window keeps the update
// count, the value sum, and the value maximum (maxima assume non-negative
// values, like every instrument in this package).
type Track struct {
	name       string
	widthNs    int64
	maxWindows int64

	mu      sync.Mutex // guards chunk-list growth only
	chunks  atomic.Pointer[[]*seriesChunk]
	clamped atomic.Int64
}

// Add records one update of value v at time tNs (nanoseconds, the
// producer's epoch — simulators stamp simulated time). Negative times land
// in window 0; times past the window bound clamp into the final window.
func (tr *Track) Add(tNs, v int64) {
	if tr == nil {
		return
	}
	w := tNs / tr.widthNs
	if tNs < 0 {
		w = 0
	}
	if w >= tr.maxWindows {
		w = tr.maxWindows - 1
		tr.clamped.Add(1)
	}
	chunk := tr.cell(int(w / seriesChunkWindows))
	cell := &chunk[w%seriesChunkWindows]
	cell.count.Add(1)
	cell.sum.Add(v)
	for {
		old := cell.max.Load()
		if v <= old || cell.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Clamped returns how many updates were clamped into the final window
// because their time exceeded the window bound (0 on a nil track).
func (tr *Track) Clamped() int64 {
	if tr == nil {
		return 0
	}
	return tr.clamped.Load()
}

// cell returns chunk ci, growing the chunk list if needed. The fast path is
// one atomic pointer load; growth copies only the slice of chunk pointers —
// cells themselves never move, so writers mid-update are unaffected.
func (tr *Track) cell(ci int) *seriesChunk {
	chunks := tr.chunks.Load()
	if chunks == nil || ci >= len(*chunks) {
		tr.grow(ci)
		chunks = tr.chunks.Load()
	}
	return (*chunks)[ci]
}

func (tr *Track) grow(ci int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var cur []*seriesChunk
	if p := tr.chunks.Load(); p != nil {
		cur = *p
	}
	if ci < len(cur) {
		return // another writer grew past us while we waited
	}
	next := make([]*seriesChunk, ci+1)
	copy(next, cur)
	for i := len(cur); i <= ci; i++ {
		next[i] = new(seriesChunk)
	}
	tr.chunks.Store(&next)
}

// SeriesPoint is one non-empty (track, window) cell: Count updates totalling
// Sum with maximum Max landed in [T0Ns, T1Ns).
type SeriesPoint struct {
	Track  string `json:"track"`
	Window int64  `json:"win"`
	T0Ns   int64  `json:"t0_ns"`
	T1Ns   int64  `json:"t1_ns"`
	Count  int64  `json:"count"`
	Sum    int64  `json:"sum"`
	Max    int64  `json:"max"`
}

// Points snapshots every non-empty window cell of every track, sorted by
// (window, track name) — a deterministic flattening of the whole series.
// Safe to call while writers are live (per-cell fields are read atomically,
// so a point is internally consistent up to in-flight updates); a nil series
// snapshots empty.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	tracks := make([]*Track, 0, len(s.byName))
	for _, tr := range s.byName {
		tracks = append(tracks, tr)
	}
	s.mu.Unlock()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].name < tracks[j].name })

	var pts []SeriesPoint
	for _, tr := range tracks {
		chunks := tr.chunks.Load()
		if chunks == nil {
			continue
		}
		for ci, ch := range *chunks {
			for off := range ch {
				c := ch[off].count.Load()
				if c == 0 {
					continue
				}
				w := int64(ci)*seriesChunkWindows + int64(off)
				pts = append(pts, SeriesPoint{
					Track:  tr.name,
					Window: w,
					T0Ns:   w * s.widthNs,
					T1Ns:   (w + 1) * s.widthNs,
					Count:  c,
					Sum:    ch[off].sum.Load(),
					Max:    ch[off].max.Load(),
				})
			}
		}
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Window != pts[j].Window {
			return pts[i].Window < pts[j].Window
		}
		return pts[i].Track < pts[j].Track
	})
	return pts
}
