package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ShardWindow is one shard's runtime profile for one conservative time
// window of a sharded engine run: how long the shard's event loop actually
// ran (BusyNs) versus sat at the window barrier (WaitNs), how many events it
// processed, and how much handoff traffic it exchanged. Times are wall-clock
// nanoseconds; T0Ns/LookaheadNs are simulated nanoseconds describing the
// window itself.
type ShardWindow struct {
	// Window is the window's ordinal within the run (0-based).
	Window int64 `json:"win"`
	// Shard is the shard index.
	Shard int `json:"shard"`
	// T0Ns is the window's start in simulated nanoseconds.
	T0Ns int64 `json:"t0_ns"`
	// LookaheadNs is the window width in simulated nanoseconds (-1 for the
	// unbounded final window of a single-shard run).
	LookaheadNs int64 `json:"lookahead_ns"`
	// BusyNs is wall-clock time the shard spent draining its heap.
	BusyNs int64 `json:"busy_ns"`
	// WaitNs is wall-clock time the shard spent stalled: from the start of
	// the parallel drain phase until its own drain began plus until the
	// barrier released (with fewer workers than shards this includes
	// worker-slot queueing, which is exactly the stall being measured).
	WaitNs int64 `json:"wait_ns"`
	// Events is how many events the shard processed in the window.
	Events int64 `json:"events"`
	// HandoffOut / HandoffIn count cross-shard events sent and received at
	// the window barrier.
	HandoffOut int64 `json:"out"`
	HandoffIn  int64 `json:"in"`
}

// ShardProfile collects per-shard per-window runtime measurements from a
// sharded engine run. The engine records one batch per barrier (the whole
// window's rows at once, under one short mutex), so profiling adds no
// per-event cost; a nil *ShardProfile discards batches, keeping the
// disabled path a single pointer test.
type ShardProfile struct {
	mu      sync.Mutex
	windows []ShardWindow
}

// NewShardProfile returns an empty profile.
func NewShardProfile() *ShardProfile {
	return &ShardProfile{}
}

// RecordWindow appends one window's per-shard rows.
func (p *ShardProfile) RecordWindow(rows []ShardWindow) {
	if p == nil || len(rows) == 0 {
		return
	}
	p.mu.Lock()
	p.windows = append(p.windows, rows...)
	p.mu.Unlock()
}

// Windows returns a copy of all recorded rows in (window, shard) order.
func (p *ShardProfile) Windows() []ShardWindow {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]ShardWindow, len(p.windows))
	copy(out, p.windows)
	p.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Window != out[j].Window {
			return out[i].Window < out[j].Window
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// ShardSummary is one shard's totals over a whole run.
type ShardSummary struct {
	Shard      int
	BusyNs     int64
	WaitNs     int64
	Events     int64
	HandoffOut int64
	HandoffIn  int64
}

// Summary aggregates the profile per shard, ordered by shard index.
func (p *ShardProfile) Summary() []ShardSummary {
	rows := p.Windows()
	if len(rows) == 0 {
		return nil
	}
	byShard := map[int]*ShardSummary{}
	for _, r := range rows {
		s, ok := byShard[r.Shard]
		if !ok {
			s = &ShardSummary{Shard: r.Shard}
			byShard[r.Shard] = s
		}
		s.BusyNs += r.BusyNs
		s.WaitNs += r.WaitNs
		s.Events += r.Events
		s.HandoffOut += r.HandoffOut
		s.HandoffIn += r.HandoffIn
	}
	out := make([]ShardSummary, 0, len(byShard))
	for _, s := range byShard {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// ImbalanceIndex measures load imbalance: the mean over windows of
// max(busy) * nShards / sum(busy). 1.0 means perfectly balanced shards;
// N means one shard did all the work. Windows where no shard was busy are
// skipped; an empty profile returns 0.
func (p *ShardProfile) ImbalanceIndex() float64 {
	rows := p.Windows()
	if len(rows) == 0 {
		return 0
	}
	type acc struct {
		max, sum int64
		n        int
	}
	byWin := map[int64]*acc{}
	for _, r := range rows {
		a, ok := byWin[r.Window]
		if !ok {
			a = &acc{}
			byWin[r.Window] = a
		}
		if r.BusyNs > a.max {
			a.max = r.BusyNs
		}
		a.sum += r.BusyNs
		a.n++
	}
	var total float64
	var windows int
	for _, a := range byWin {
		if a.sum == 0 {
			continue
		}
		total += float64(a.max) * float64(a.n) / float64(a.sum)
		windows++
	}
	if windows == 0 {
		return 0
	}
	return total / float64(windows)
}

// WriteJSONL writes the profile rows as JSON Lines in (window, shard) order.
func (p *ShardProfile) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, row := range p.Windows() {
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("obs: write shard window %d: %w", i, err)
		}
	}
	return bw.Flush()
}
