package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteSummary renders a human-readable table of every instrument in the
// registry: counters and gauges with their values, histograms with count,
// mean, bucket-estimated quantiles, and extrema. An empty (or nil) registry
// writes a single placeholder line so callers can always print the section.
func WriteSummary(w io.Writer, r *Registry) error {
	s := r.Snapshot()
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		_, err := fmt.Fprintln(w, "(no instruments recorded)")
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue\tmax")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%d\t%d\n", g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99\tmin\tmax")
		for _, h := range s.Histograms {
			hs := h.Snapshot
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d\n",
				h.Name, hs.Count, hs.Mean(),
				hs.Quantile(0.50), hs.Quantile(0.90), hs.Quantile(0.99),
				hs.Min, hs.Max)
		}
	}
	return tw.Flush()
}
