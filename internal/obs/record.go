package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Run-record JSONL: a single file format carrying everything one run
// produced — a metadata header, trace events, series points, and shard
// profile rows — one JSON object per line, discriminated by a "type" field:
//
//	{"type":"meta", ...RunMeta}
//	{"type":"event", ...Event}
//	{"type":"series", ...SeriesPoint}
//	{"type":"shard_window", ...ShardWindow}
//
// Lines WITHOUT a "type" field are legacy PR 2 trace lines and parse as
// events, so every trace file ever written by Tracer.WriteJSONL still loads;
// lines with an unrecognized type are counted and skipped, so files written
// by a future schema still yield everything this version understands.

// Record type discriminators.
const (
	RecordMeta        = "meta"
	RecordEvent       = "event"
	RecordSeries      = "series"
	RecordShardWindow = "shard_window"
)

// RunMetaSchema is the current run-record schema version.
const RunMetaSchema = 1

// RunMeta describes the run that produced a record file: which engine and
// inputs, and which telemetry layers were armed. All fields are optional —
// a zero RunMeta is a valid header.
type RunMeta struct {
	// Schema is the record-format version (RunMetaSchema at write time).
	Schema int `json:"schema"`
	// Label is a free-form run name, e.g. "F26/abccc(4,1,2)".
	Label string `json:"label,omitempty"`
	// Engine names the producer, e.g. "packetsim", "transport-sharded".
	Engine string `json:"engine,omitempty"`
	// Topology / Workload describe the simulated input.
	Topology string `json:"topology,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Shards / Workers are the sharded-engine parameters (0 for serial).
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// SeriesWindowNs is the series window width (0 when series was off).
	SeriesWindowNs int64 `json:"series_window_ns,omitempty"`
	// Metrics/Trace/Series/Profile record which obs layers were armed.
	Metrics bool `json:"metrics,omitempty"`
	Trace   bool `json:"trace,omitempty"`
	Series  bool `json:"series,omitempty"`
	Profile bool `json:"profile,omitempty"`
}

// Typed wrappers flatten the payload next to the discriminator so a line
// reads {"type":"series","track":...} rather than nesting the payload.
type metaRecord struct {
	Type string `json:"type"`
	RunMeta
}

type eventRecord struct {
	Type string `json:"type"`
	Event
}

type seriesRecord struct {
	Type string `json:"type"`
	SeriesPoint
}

type shardWindowRecord struct {
	Type string `json:"type"`
	ShardWindow
}

// RunRecords is everything loaded from one run-record file.
type RunRecords struct {
	// Meta is the first meta record, or a zero RunMeta if the file has none
	// (HasMeta distinguishes).
	Meta    RunMeta
	HasMeta bool
	// Events holds trace events, both typed and legacy untyped lines,
	// in file order.
	Events []Event
	// Series holds the series points in file order.
	Series []SeriesPoint
	// ShardWindows holds the shard profile rows in file order.
	ShardWindows []ShardWindow
	// Unknown counts lines with an unrecognized "type" (skipped).
	Unknown int
}

// WriteRun writes a complete run-record file: the meta header, then every
// retained trace event, series point, and shard profile row. Nil tracer,
// series, or profile sections are simply omitted.
func WriteRun(w io.Writer, meta RunMeta, tracer *Tracer, series *Series, profile *ShardProfile) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta.Schema = RunMetaSchema
	if err := enc.Encode(metaRecord{Type: RecordMeta, RunMeta: meta}); err != nil {
		return fmt.Errorf("obs: write run meta: %w", err)
	}
	for i, ev := range tracer.Events() {
		if err := enc.Encode(eventRecord{Type: RecordEvent, Event: ev}); err != nil {
			return fmt.Errorf("obs: write run event %d: %w", i, err)
		}
	}
	for i, pt := range series.Points() {
		if err := enc.Encode(seriesRecord{Type: RecordSeries, SeriesPoint: pt}); err != nil {
			return fmt.Errorf("obs: write run series point %d: %w", i, err)
		}
	}
	for i, row := range profile.Windows() {
		if err := enc.Encode(shardWindowRecord{Type: RecordShardWindow, ShardWindow: row}); err != nil {
			return fmt.Errorf("obs: write run shard window %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses a run-record JSONL stream. It accepts files written by
// WriteRun, raw Tracer.WriteJSONL traces (no "type" field: every line loads
// as an event), and mixed or future files (unknown types are counted in
// Unknown, not errors). Malformed JSON is an error identifying the line.
func ReadRecords(r io.Reader) (*RunRecords, error) {
	out := &RunRecords{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(trimSpace(raw)) == 0 {
			continue
		}
		var probe struct {
			Type *string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("obs: read records line %d: %w", line, err)
		}
		kind := RecordEvent // legacy lines have no "type" field
		if probe.Type != nil {
			kind = *probe.Type
		}
		switch kind {
		case RecordMeta:
			var rec metaRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("obs: read records line %d (meta): %w", line, err)
			}
			if !out.HasMeta {
				out.Meta = rec.RunMeta
				out.HasMeta = true
			}
		case RecordEvent:
			var rec eventRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("obs: read records line %d (event): %w", line, err)
			}
			out.Events = append(out.Events, rec.Event)
		case RecordSeries:
			var rec seriesRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("obs: read records line %d (series): %w", line, err)
			}
			out.Series = append(out.Series, rec.SeriesPoint)
		case RecordShardWindow:
			var rec shardWindowRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("obs: read records line %d (shard_window): %w", line, err)
			}
			out.ShardWindows = append(out.ShardWindows, rec.ShardWindow)
		default:
			out.Unknown++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read records: %w", err)
	}
	return out, nil
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}
