package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunRecordRoundTrip writes a full run-record file (meta + events +
// series + shard windows) and reads it back unchanged.
func TestRunRecordRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{TimeNs: 10, Kind: "hop", ID: 1, Node: 2, Hop: 0})
	tr.Record(Event{TimeNs: 20, Kind: "drop", ID: 1, Node: 3, Hop: 1, Detail: "fault"})

	s := NewSeries(100)
	g := s.Track("goodput_bytes")
	g.Add(10, 1500)
	g.Add(150, 1500)
	s.Track("drops").Add(20, 1)

	p := NewShardProfile()
	p.RecordWindow([]ShardWindow{
		{Window: 0, Shard: 0, T0Ns: 0, LookaheadNs: 100, BusyNs: 900, WaitNs: 100, Events: 12, HandoffOut: 2},
		{Window: 0, Shard: 1, T0Ns: 0, LookaheadNs: 100, BusyNs: 500, WaitNs: 500, Events: 6, HandoffIn: 2},
	})

	meta := RunMeta{
		Label: "F26/abccc(4,1,2)", Engine: "transport-sharded",
		Topology: "abccc(4,1,2)", Workload: "256KB flows",
		Shards: 2, Workers: 1, SeriesWindowNs: 100,
		Metrics: true, Trace: true, Series: true, Profile: true,
	}

	var buf bytes.Buffer
	if err := WriteRun(&buf, meta, tr, s, p); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}

	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if !got.HasMeta {
		t.Fatal("round trip lost the meta record")
	}
	wantMeta := meta
	wantMeta.Schema = RunMetaSchema
	if got.Meta != wantMeta {
		t.Errorf("meta = %+v, want %+v", got.Meta, wantMeta)
	}
	if len(got.Events) != 2 || got.Events[1].Detail != "fault" {
		t.Errorf("events = %+v, want the 2 recorded events", got.Events)
	}
	wantPts := s.Points()
	if len(got.Series) != len(wantPts) {
		t.Fatalf("series has %d points, want %d", len(got.Series), len(wantPts))
	}
	for i := range wantPts {
		if got.Series[i] != wantPts[i] {
			t.Errorf("series point %d = %+v, want %+v", i, got.Series[i], wantPts[i])
		}
	}
	wantRows := p.Windows()
	if len(got.ShardWindows) != len(wantRows) {
		t.Fatalf("profile has %d rows, want %d", len(got.ShardWindows), len(wantRows))
	}
	for i := range wantRows {
		if got.ShardWindows[i] != wantRows[i] {
			t.Errorf("shard window %d = %+v, want %+v", i, got.ShardWindows[i], wantRows[i])
		}
	}
	if got.Unknown != 0 {
		t.Errorf("Unknown = %d, want 0", got.Unknown)
	}
}

// TestRunRecordNilSections writes a run with no tracer, series, or profile:
// just the meta header.
func TestRunRecordNilSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRun(&buf, RunMeta{Label: "empty"}, nil, nil, nil); err != nil {
		t.Fatalf("WriteRun with nil sections: %v", err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if !got.HasMeta || got.Meta.Label != "empty" {
		t.Errorf("meta = %+v (has=%v), want label \"empty\"", got.Meta, got.HasMeta)
	}
	if len(got.Events)+len(got.Series)+len(got.ShardWindows) != 0 {
		t.Errorf("empty run produced payload records: %+v", got)
	}
}

// TestReadRecordsLegacyTrace loads a PR 2-era trace file — raw Event lines
// with no "type" field, as written by Tracer.WriteJSONL — and checks every
// line surfaces as an event.
func TestReadRecordsLegacyTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{TimeNs: 5, Kind: "hop", ID: 7, Node: 1})
	tr.Record(Event{TimeNs: 9, Kind: "deliver", ID: 7, Node: 2, Hop: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords on legacy trace: %v", err)
	}
	if got.HasMeta {
		t.Error("legacy trace produced a meta record")
	}
	want := tr.Events()
	if len(got.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(want))
	}
	for i := range want {
		if got.Events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], want[i])
		}
	}
}

// TestReadRecordsMixedVersions feeds a file interleaving legacy untyped
// lines, typed records, blank lines, and an unknown future type.
func TestReadRecordsMixedVersions(t *testing.T) {
	input := strings.Join([]string{
		`{"type":"meta","schema":1,"label":"mixed"}`,
		`{"t_ns":1,"kind":"hop","id":1,"node":0,"hop":0}`, // legacy, no type
		``,
		`{"type":"event","t_ns":2,"kind":"drop","id":1,"node":3,"hop":1,"detail":"fault"}`,
		`{"type":"series","track":"goodput","win":0,"t0_ns":0,"t1_ns":100,"count":2,"sum":3000,"max":1500}`,
		`{"type":"hologram","payload":"from the future"}`,
		`{"type":"shard_window","win":0,"shard":1,"t0_ns":0,"lookahead_ns":100,"busy_ns":5,"wait_ns":6,"events":7,"out":1,"in":2}`,
	}, "\n") + "\n"

	got, err := ReadRecords(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if !got.HasMeta || got.Meta.Label != "mixed" || got.Meta.Schema != 1 {
		t.Errorf("meta = %+v", got.Meta)
	}
	if len(got.Events) != 2 {
		t.Fatalf("got %d events, want 2 (legacy + typed): %+v", len(got.Events), got.Events)
	}
	if got.Events[0].Kind != "hop" || got.Events[1].Detail != "fault" {
		t.Errorf("events = %+v", got.Events)
	}
	if len(got.Series) != 1 || got.Series[0].Track != "goodput" || got.Series[0].Sum != 3000 {
		t.Errorf("series = %+v", got.Series)
	}
	if len(got.ShardWindows) != 1 || got.ShardWindows[0].Shard != 1 || got.ShardWindows[0].HandoffIn != 2 {
		t.Errorf("shard windows = %+v", got.ShardWindows)
	}
	if got.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1 (the hologram line)", got.Unknown)
	}
}

// TestReadRecordsMalformed: broken JSON must error, naming the line.
func TestReadRecordsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, input string }{
		{"truncated", `{"type":"meta","label":"x"}` + "\n" + `{"type":"series","track":`},
		{"not json", "this is not json\n"},
		{"bad payload", `{"type":"series","track":1234}` + "\n"}, // track must be a string
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadRecords(strings.NewReader(tc.input)); err == nil {
				t.Errorf("ReadRecords accepted malformed input %q", tc.input)
			}
		})
	}
}
