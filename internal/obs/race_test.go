package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentWritersAndSnapshots hammers one registry from many writer
// goroutines while a reader snapshots continuously — the contract that makes
// obs safe to wire into the goroutine-per-device emulator and the parallel
// experiment pool. Run under -race (make race) this is the detector's meal.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	const (
		writers = 8
		perG    = 2000
	)
	r := NewRegistry()
	tr := NewTracer(256)
	done := make(chan struct{})

	// Reader: snapshot registry, histogram quantiles, tracer, and the
	// summary sink while writers are live.
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s := r.Snapshot()
			for _, h := range s.Histograms {
				_ = h.Snapshot.Quantile(0.99)
			}
			_ = tr.Events()
			_ = WriteSummary(io.Discard, r)
		}
	}()

	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			c := r.Counter("ops")
			ga := r.Gauge("depth")
			h := r.Histogram("lat_ns")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(int64(g*perG + i))
				tr.Record(Event{TimeNs: int64(i), Kind: "hop", ID: int64(g)})
				ga.Add(-1)
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()

	if got := r.Counter("ops").Value(); got != writers*perG {
		t.Errorf("ops counter = %d, want %d", got, writers*perG)
	}
	if got := r.Histogram("lat_ns").Snapshot().Count; got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("depth gauge = %d, want 0 after balanced adds", got)
	}
	if got := tr.Recorded(); got != writers*perG {
		t.Errorf("tracer recorded %d, want %d", got, writers*perG)
	}
}
