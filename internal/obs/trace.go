package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one trace record: a packet (or flow, or experiment) doing
// something at a node at a point in time. Time is an int64 nanosecond value
// whose epoch the producer chooses — simulators stamp simulated time,
// real-time components stamp time since run start — so traces stay
// deterministic where the producer is.
type Event struct {
	// TimeNs is the event time in nanoseconds (producer-defined epoch).
	TimeNs int64 `json:"t_ns"`
	// Kind names the event, e.g. "hop", "deliver", "drop", "exp_start".
	Kind string `json:"kind"`
	// ID identifies the traced entity (packet, flow, experiment index).
	ID int64 `json:"id"`
	// Node is the node at which the event happened (-1 when not applicable).
	Node int `json:"node"`
	// Hop is the entity's hop index at the event (0 at the source).
	Hop int `json:"hop"`
	// Detail is an optional free-form annotation (e.g. a drop cause).
	Detail string `json:"detail,omitempty"`
}

// DefaultTracerCapacity is the ring size used when NewTracer is given a
// non-positive capacity: 64k events, about 4 MiB.
const DefaultTracerCapacity = 1 << 16

// Tracer records events into a fixed-capacity ring buffer: recording never
// allocates and never blocks on I/O, and once the ring is full the oldest
// events are overwritten (Dropped reports how many). A nil *Tracer discards
// events, so the disabled path is a single pointer test. Recording takes a
// short mutex — event recording is orders of magnitude rarer than counter
// updates, and the mutex keeps snapshots exact.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	total uint64
}

// NewTracer returns a tracer holding the most recent `capacity` events
// (DefaultTracerCapacity when non-positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is full.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = ev
	t.total++
	t.mu.Unlock()
}

// Recorded returns the total number of events recorded, including any that
// have since been overwritten.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many recorded events were overwritten by wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capacity := uint64(len(t.ring))
	if n <= capacity {
		out := make([]Event, n)
		copy(out, t.ring[:n])
		return out
	}
	out := make([]Event, capacity)
	start := n % capacity
	copy(out, t.ring[start:])
	copy(out[capacity-start:], t.ring[:start])
	return out
}

// WriteJSONL writes the retained events as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: write trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSON Lines trace back into events, the inverse of
// WriteJSONL.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for i := 0; ; i++ {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: read trace event %d: %w", i, err)
		}
		events = append(events, ev)
	}
	return events, nil
}
