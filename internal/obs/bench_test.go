package obs

import "testing"

// The disabled path is the one every simulator pays on every packet when no
// registry is attached: it must stay at roughly the cost of a nil check.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTracerRecordDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{TimeNs: int64(i), Kind: "hop"})
	}
}

func BenchmarkTracerRecordEnabled(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{TimeNs: int64(i), Kind: "hop"})
	}
}
