// Package eventq provides the discrete-event priority queue shared by the
// packet-level simulators: a 4-ary min-heap of inline (time, seq, payload)
// entries ordered by time with a sequence-number tiebreak.
//
// Compared with container/heap it removes two costs from the simulators'
// inner loops: the interface boxing allocation on every Push/Pop (heap.Push
// takes `any`, so every event escapes), and one level of pointer chasing per
// comparison. The 4-ary layout halves tree height versus a binary heap, so
// sift-down — the dominant operation in a drain-heavy discrete-event loop —
// touches fewer cache lines per level for the same number of comparisons.
//
// Because (time, seq) is a strict total order whenever callers hand out
// unique sequence numbers, pop order is fully determined by the pushed keys:
// two simulators pushing the same keyed events pop them identically no
// matter how their pushes interleave. The simulator equivalence tests lean
// on exactly this property.
package eventq

// Queue is a min-heap of T payloads keyed by (time, then seq). The zero
// value is an empty queue ready for use.
type Queue[T any] struct {
	entries []entry[T]
}

type entry[T any] struct {
	time float64
	seq  int64
	val  T
}

// less orders entries by time, breaking ties deterministically by seq.
func less[T any](a, b *entry[T]) bool {
	return a.time < b.time || (a.time == b.time && a.seq < b.seq)
}

// New returns an empty queue with room for capacity entries before the
// backing array regrows.
func New[T any](capacity int) *Queue[T] {
	return &Queue[T]{entries: make([]entry[T], 0, capacity)}
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.entries) }

// Push inserts v keyed by (time, seq). Callers that need deterministic pop
// order must never reuse a (time, seq) pair.
func (q *Queue[T]) Push(time float64, seq int64, v T) {
	q.entries = append(q.entries, entry[T]{time: time, seq: seq, val: v})
	q.siftUp(len(q.entries) - 1)
}

// Pop removes and returns the entry with the smallest (time, seq) key.
// It panics on an empty queue, like indexing an empty slice.
func (q *Queue[T]) Pop() (time float64, seq int64, v T) {
	top := q.entries[0]
	n := len(q.entries) - 1
	q.entries[0] = q.entries[n]
	q.entries[n] = entry[T]{} // release anything the payload references
	q.entries = q.entries[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top.time, top.seq, top.val
}

// Peek returns the smallest-keyed entry without removing it.
func (q *Queue[T]) Peek() (time float64, seq int64, v T) {
	top := &q.entries[0]
	return top.time, top.seq, top.val
}

// Reset empties the queue, keeping the backing array for reuse.
func (q *Queue[T]) Reset() {
	clear(q.entries)
	q.entries = q.entries[:0]
}

// Grow ensures the queue can absorb n more pushes without reallocating. The
// sharded simulators call it before draining a window's handoff batch into a
// shard heap, so steady-state windows stay allocation-free.
func (q *Queue[T]) Grow(n int) {
	if n <= cap(q.entries)-len(q.entries) {
		return
	}
	grown := make([]entry[T], len(q.entries), len(q.entries)+n)
	copy(grown, q.entries)
	q.entries = grown
}

// siftUp restores heap order along the path from leaf i to the root, moving
// the (single) displaced entry rather than swapping pairwise.
func (q *Queue[T]) siftUp(i int) {
	e := q.entries[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(&e, &q.entries[p]) {
			break
		}
		q.entries[i] = q.entries[p]
		i = p
	}
	q.entries[i] = e
}

// siftDown restores heap order from node i toward the leaves.
func (q *Queue[T]) siftDown(i int) {
	e := q.entries[i]
	n := len(q.entries)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Select the smallest of the up-to-four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&q.entries[j], &q.entries[m]) {
				m = j
			}
		}
		if !less(&q.entries[m], &e) {
			break
		}
		q.entries[i] = q.entries[m]
		i = m
	}
	q.entries[i] = e
}
