package eventq

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestPopOrderIsSortedByTimeThenSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type key struct {
		t   float64
		seq int64
	}
	var q Queue[int]
	var want []key
	for i := 0; i < 5000; i++ {
		// Coarse times force plenty of ties for the seq tiebreak.
		k := key{t: float64(rng.Intn(50)), seq: int64(i)}
		want = append(want, k)
		q.Push(k.t, k.seq, i)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].t != want[j].t {
			return want[i].t < want[j].t
		}
		return want[i].seq < want[j].seq
	})
	for i, k := range want {
		tm, seq, v := q.Pop()
		if tm != k.t || seq != k.seq {
			t.Fatalf("pop %d: got (%g,%d), want (%g,%d)", i, tm, seq, k.t, k.seq)
		}
		if int64(v) != k.seq {
			t.Fatalf("pop %d: payload %d does not match seq %d", i, v, k.seq)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// oracle is a reference container/heap implementation with the same ordering.
type oracleItem struct {
	t   float64
	seq int64
	v   int
}

type oracle []oracleItem

func (o oracle) Len() int { return len(o) }
func (o oracle) Less(i, j int) bool {
	if o[i].t != o[j].t {
		return o[i].t < o[j].t
	}
	return o[i].seq < o[j].seq
}
func (o oracle) Swap(i, j int)        { o[i], o[j] = o[j], o[i] }
func (o *oracle) Push(x any)          { *o = append(*o, x.(oracleItem)) }
func (o *oracle) Pop() any            { old := *o; n := len(old); e := old[n-1]; *o = old[:n-1]; return e }
func (o *oracle) popItem() oracleItem { return heap.Pop(o).(oracleItem) }

func TestInterleavedAgainstContainerHeap(t *testing.T) {
	// Random interleaving of pushes and pops must match container/heap
	// exactly — the discrete-event loop is precisely this access pattern
	// (pop one, push zero or more slightly-later events).
	rng := rand.New(rand.NewSource(7))
	var q Queue[int]
	var o oracle
	var seq int64
	now := 0.0
	for step := 0; step < 20000; step++ {
		if q.Len() != o.Len() {
			t.Fatalf("step %d: length mismatch %d vs %d", step, q.Len(), o.Len())
		}
		if q.Len() == 0 || rng.Intn(3) > 0 {
			dt := float64(rng.Intn(4)) // frequent exact ties
			q.Push(now+dt, seq, int(seq))
			heap.Push(&o, oracleItem{t: now + dt, seq: seq, v: int(seq)})
			seq++
			continue
		}
		tm, s, v := q.Pop()
		want := o.popItem()
		if tm != want.t || s != want.seq || v != want.v {
			t.Fatalf("step %d: pop (%g,%d,%d), oracle (%g,%d,%d)",
				step, tm, s, v, want.t, want.seq, want.v)
		}
		if tm < now {
			t.Fatalf("step %d: time went backwards %g < %g", step, tm, now)
		}
		now = tm
	}
}

func TestPeek(t *testing.T) {
	var q Queue[string]
	q.Push(2, 0, "late")
	q.Push(1, 1, "early")
	tm, seq, v := q.Peek()
	if tm != 1 || seq != 1 || v != "early" {
		t.Fatalf("Peek = (%g,%d,%q)", tm, seq, v)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed an entry: len %d", q.Len())
	}
}

func TestResetReuse(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 10; i++ {
		q.Push(float64(10-i), int64(i), i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	q.Push(5, 0, 42)
	if tm, _, v := q.Pop(); tm != 5 || v != 42 {
		t.Fatalf("pop after Reset = (%g, %d)", tm, v)
	}
}

func TestPointerPayloadsReleasedOnPop(t *testing.T) {
	// Pop must clear the vacated slot so payload pointers do not pin
	// otherwise-dead memory in the backing array.
	q := New[*int](1)
	x := new(int)
	q.Push(1, 0, x)
	if _, _, got := q.Pop(); got != x {
		t.Fatal("payload identity lost")
	}
	if e := q.entries[:1][0]; e.val != nil {
		t.Error("popped slot still references the payload")
	}
}

func BenchmarkPushPop4ary(b *testing.B) {
	// Steady-state discrete-event pattern: pop one, push one slightly later.
	type payload struct {
		flow, id, idx int32
		sentAt        float64
	}
	rng := rand.New(rand.NewSource(1))
	var q Queue[payload]
	var seq int64
	for i := 0; i < 1024; i++ {
		q.Push(rng.Float64(), seq, payload{})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, _, v := q.Pop()
		q.Push(tm+rng.Float64(), seq, v)
		seq++
	}
}

func BenchmarkPushPopContainerHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var o oracle
	var seq int64
	for i := 0; i < 1024; i++ {
		heap.Push(&o, oracleItem{t: rng.Float64(), seq: seq})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := o.popItem()
		it.t += rng.Float64()
		it.seq = seq
		heap.Push(&o, it)
		seq++
	}
}

func TestGrowReservesCapacity(t *testing.T) {
	q := New[int](2)
	q.Push(1, 0, 1)
	q.Grow(100)
	if got := cap(q.entries) - q.Len(); got < 100 {
		t.Fatalf("Grow(100) left room for %d", got)
	}
	// Contents survive the regrow.
	if tm, _, v := q.Pop(); tm != 1 || v != 1 {
		t.Fatalf("pop after Grow = (%g, %d)", tm, v)
	}
	// A no-op Grow must not shrink or reallocate.
	before := cap(q.entries)
	q.Grow(1)
	if cap(q.entries) != before {
		t.Errorf("no-op Grow changed capacity %d -> %d", before, cap(q.entries))
	}
}

// TestWindowReuseAllocatesNothing pins the sharded simulators' steady state:
// once Grow has sized the backing array, a Reset + Grow + refill + drain
// cycle — one synchronization window — performs zero allocations.
func TestWindowReuseAllocatesNothing(t *testing.T) {
	const batch = 256
	q := New[int64](batch)
	allocs := testing.AllocsPerRun(100, func() {
		q.Reset()
		q.Grow(batch)
		for i := int64(0); i < batch; i++ {
			q.Push(float64(batch-i), i, i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("window cycle allocates %v times, want 0", allocs)
	}
}

func BenchmarkWindowReuse(b *testing.B) {
	// The sharded engines' barrier pattern: Reset, Grow for the incoming
	// handoff batch, refill, drain. Must report 0 allocs/op.
	const batch = 512
	q := New[int64](batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		q.Grow(batch)
		for j := int64(0); j < batch; j++ {
			q.Push(float64(batch-j), j, j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
