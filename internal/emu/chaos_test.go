package emu

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestChaosControlPlaneAlwaysMatchesConnectivity(t *testing.T) {
	// The chaos-monkey audit: through 40 random kill/revive events over
	// switches AND servers, the DV plane must serve exactly the connected
	// pairs of live servers after every convergence.
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	log, err := Chaos(tp, 40, rand.New(rand.NewSource(2015)))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 40 {
		t.Fatalf("log has %d events", len(log))
	}
	net := tp.Network()
	kills, revives, serverHits, switchHits := 0, 0, 0, 0
	for i, ev := range log {
		if ev.Served != ev.Connected {
			t.Fatalf("event %d (%+v): served %d != connected %d",
				i, ev, ev.Served, ev.Connected)
		}
		if ev.Kill {
			kills++
		} else {
			revives++
		}
		if net.Kind(ev.Node) == topology.Server {
			serverHits++
		} else {
			switchHits++
		}
		if ev.Rounds < 1 {
			t.Fatalf("event %d converged in %d rounds", i, ev.Rounds)
		}
	}
	if kills == 0 || revives == 0 {
		t.Errorf("schedule not mixed: %d kills, %d revives", kills, revives)
	}
	if serverHits == 0 || switchHits == 0 {
		t.Errorf("schedule spared a device class: %d server hits, %d switch hits",
			serverHits, switchHits)
	}
}

func TestChaosDeadServersExcludedFromAudit(t *testing.T) {
	// Kill one server directly: the session must refuse to deliver to or
	// from it, and the chaos audit over the remaining n-1 live servers must
	// still balance (ground truth for the exclusion rule in Chaos).
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	dead := 0
	if err := sess.FailNode(tp.Network().Server(dead)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	n := tp.Network().NumServers()
	for i := 0; i < n; i++ {
		if i == dead {
			continue
		}
		if _, ok := sess.Deliver(i, dead); ok {
			t.Fatalf("delivered to dead server from %d", i)
		}
		if _, ok := sess.Deliver(dead, i); ok {
			t.Fatalf("delivered from dead server to %d", i)
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	a, err := Chaos(tp, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(tp, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChaosZeroEvents(t *testing.T) {
	// Zero events: an empty log and no error, with the session still built
	// and converged once.
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	log, err := Chaos(tp, 0, rand.New(rand.NewSource(1)))
	if err != nil || len(log) != 0 {
		t.Errorf("zero events: %v, %v", log, err)
	}
}
