package emu

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestChaosControlPlaneAlwaysMatchesConnectivity(t *testing.T) {
	// The chaos-monkey audit: through 30 random kill/revive events, the DV
	// plane must serve exactly the connected pairs after every convergence.
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	log, err := Chaos(tp, 30, rand.New(rand.NewSource(2015)))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 30 {
		t.Fatalf("log has %d events", len(log))
	}
	kills, revives := 0, 0
	for i, ev := range log {
		if ev.Served != ev.Connected {
			t.Fatalf("event %d (%+v): served %d != connected %d",
				i, ev, ev.Served, ev.Connected)
		}
		if ev.Kill {
			kills++
		} else {
			revives++
		}
		if ev.Rounds < 1 {
			t.Fatalf("event %d converged in %d rounds", i, ev.Rounds)
		}
	}
	if kills == 0 || revives == 0 {
		t.Errorf("schedule not mixed: %d kills, %d revives", kills, revives)
	}
}

func TestChaosDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	a, err := Chaos(tp, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(tp, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChaosNeedsSwitches(t *testing.T) {
	// A hypercube-like Forwarder without switches would error; all our
	// Forwarders have switches, so exercise the zero-events path instead.
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	log, err := Chaos(tp, 0, rand.New(rand.NewSource(1)))
	if err != nil || len(log) != 0 {
		t.Errorf("zero events: %v, %v", log, err)
	}
}
