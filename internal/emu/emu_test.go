package emu

import (
	"math/rand"
	"testing"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/traffic"
)

func build(t *testing.T, cfg core.Config) *core.ABCCC {
	t.Helper()
	tp, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestHealthyRunDeliversEverything(t *testing.T) {
	tp := build(t, core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(n, rng)
	stats, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) {
		t.Errorf("delivered %d of %d", stats.Delivered, len(flows))
	}
	if !stats.Accounted() {
		t.Errorf("packets unaccounted: %+v", stats)
	}
	if stats.HelloAcks != 2*tp.Network().NumLinks() {
		t.Errorf("HelloAcks = %d, want %d (2x cables)", stats.HelloAcks, 2*tp.Network().NumLinks())
	}
}

func TestHopCountsWithinForwardingBound(t *testing.T) {
	tp := build(t, core.Config{N: 3, K: 2, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.AllToAll(n)
	stats, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) {
		t.Fatalf("delivered %d of %d", stats.Delivered, len(flows))
	}
	bound := 2*tp.Config().Digits() + 1
	if stats.MaxHops > bound {
		t.Errorf("MaxHops = %d, forwarding bound %d", stats.MaxHops, bound)
	}
	total := 0
	for _, c := range stats.HopHistogram {
		total += c
	}
	if total != stats.Delivered {
		t.Errorf("histogram total %d != delivered %d", total, stats.Delivered)
	}
}

func TestHopsMatchForwardingWalk(t *testing.T) {
	// The emulated hop count of a single packet must equal the statically
	// computed forwarding walk's switch hops.
	tp := build(t, core.Config{N: 4, K: 1, P: 3})
	net := tp.Network()
	src, dst := 0, net.NumServers()-1
	walk, err := tp.ForwardingWalk(net.Servers()[src], net.Servers()[dst])
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(tp, []traffic.Flow{{Src: src, Dst: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 {
		t.Fatalf("not delivered: %+v", stats)
	}
	if stats.MaxHops != walk.SwitchHops(net) {
		t.Errorf("emulated hops %d, static walk %d", stats.MaxHops, walk.SwitchHops(net))
	}
}

func TestFailedNodeDropsTraffic(t *testing.T) {
	tp := build(t, core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	// Fail the destination server: its packet must be accounted as a
	// failed-node drop, and its hellos never answered.
	dstIdx := net.NumServers() - 1
	stats, err := Run(tp, []traffic.Flow{{Src: 0, Dst: dstIdx}},
		WithFailedNodes(net.Servers()[dstIdx]))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 0 || stats.DroppedFailed != 1 {
		t.Errorf("stats = %+v, want 1 failed drop", stats)
	}
	if !stats.Accounted() {
		t.Errorf("unaccounted: %+v", stats)
	}
	deg := net.Graph().Degree(net.Servers()[dstIdx])
	if want := 2*net.NumLinks() - 2*deg; stats.HelloAcks != want {
		t.Errorf("HelloAcks = %d, want %d", stats.HelloAcks, want)
	}
}

func TestFailedSwitchDropsOnPath(t *testing.T) {
	tp := build(t, core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	src, dst := net.Servers()[0], net.Servers()[net.NumServers()-1]
	walk, err := tp.ForwardingWalk(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var sw int
	for _, node := range walk {
		if !net.IsServer(node) {
			sw = node
			break
		}
	}
	stats, err := Run(tp, []traffic.Flow{{Src: 0, Dst: net.NumServers() - 1}},
		WithFailedNodes(sw))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 0 || stats.DroppedFailed != 1 {
		t.Errorf("stats = %+v, want the packet dropped at the dead switch", stats)
	}
}

func TestTTLDropsLoopedPackets(t *testing.T) {
	tp := build(t, core.Config{N: 3, K: 2, P: 2})
	n := tp.Network().NumServers()
	// TTL 1 cannot cover the multi-hop pairs.
	flows := traffic.AllToAll(n)[:50]
	stats, err := Run(tp, flows, WithTTL(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedTTL == 0 {
		t.Error("TTL 1 dropped nothing")
	}
	if !stats.Accounted() {
		t.Errorf("unaccounted: %+v", stats)
	}
}

func TestOverflowAccounting(t *testing.T) {
	tp := build(t, core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	// Tiny inboxes under an incast must overflow somewhere.
	flows, err := traffic.Incast(n, 0, n-1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		flows = append(flows, flows...) // amplify the burst
	}
	stats, err := Run(tp, flows, WithInboxSize(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedOverflow == 0 {
		t.Errorf("no overflow drops with inbox size 1: %+v", stats)
	}
	if !stats.Accounted() {
		t.Errorf("unaccounted: %+v", stats)
	}
}

func TestRunErrors(t *testing.T) {
	tp := build(t, core.Config{N: 2, K: 0, P: 2})
	if _, err := Run(tp, []traffic.Flow{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if _, err := Run(tp, nil, WithTTL(0)); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := Run(tp, nil, WithInboxSize(0)); err == nil {
		t.Error("zero inbox accepted")
	}
	if _, err := Run(tp, nil, WithFailedNodes(-1)); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}

func TestDeterministicCounts(t *testing.T) {
	tp := build(t, core.Config{N: 3, K: 1, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.AllToAll(n)
	a, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.MaxHops != b.MaxHops || a.HelloAcks != b.HelloAcks {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEmptyWorkload(t *testing.T) {
	tp := build(t, core.Config{N: 2, K: 0, P: 2})
	stats, err := Run(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Injected != 0 || !stats.Accounted() {
		t.Errorf("empty workload stats: %+v", stats)
	}
}

func TestEmulatorRunsBCubeToo(t *testing.T) {
	// The emulator is generic over Forwarder: BCube's hop-by-hop policy
	// must deliver a permutation exactly like ABCCC's does.
	tp, err := bcube.Build(bcube.Config{N: 4, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	flows := traffic.Permutation(tp.Network().NumServers(), rand.New(rand.NewSource(3)))
	stats, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) || !stats.Accounted() {
		t.Errorf("BCube emulation: %+v", stats)
	}
	if stats.MaxHops > tp.Config().K+1 {
		t.Errorf("BCube hops %d > diameter %d", stats.MaxHops, tp.Config().K+1)
	}
}

func TestEmulatorRunsFatTreeToo(t *testing.T) {
	tp, err := fattree.Build(fattree.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows := traffic.Permutation(tp.Network().NumServers(), rand.New(rand.NewSource(4)))
	stats, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) || !stats.Accounted() {
		t.Errorf("fat-tree emulation: %+v", stats)
	}
	// Hops counted in switch traversals: at most 5 (edge-agg-core-agg-edge).
	if stats.MaxHops > 5 {
		t.Errorf("fat-tree hops %d > 5", stats.MaxHops)
	}
}

func TestEmulatorRunsBCCCToo(t *testing.T) {
	tp, err := bccc.Build(bccc.Config{N: 3, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	flows := traffic.Permutation(tp.Network().NumServers(), rand.New(rand.NewSource(5)))
	stats, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) || !stats.Accounted() {
		t.Errorf("BCCC emulation: %+v", stats)
	}
}
