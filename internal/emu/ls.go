package emu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/traffic"
)

// LSStats is the outcome of a link-state run.
type LSStats struct {
	// Rounds is the number of synchronous flooding rounds until no node
	// learned anything new; Messages counts LSA transmissions (the flooding
	// cost that distinguishes LS from DV).
	Rounds, Messages int
	// Injected/Delivered/Dropped account the data phase.
	Injected, Delivered, Dropped int
	// MaxHops is the largest cable-hop count among delivered packets.
	MaxHops int
}

// lsNode is the per-device protocol state: the link-state database (learned
// adjacency lists) and the LSAs to forward next round.
type lsNode struct {
	db      map[int][]int // originator -> its live adjacency
	pending []int         // originators learned this round, to flood next
}

// RunLS emulates a link-state control plane: every live node originates a
// link-state advertisement (its live adjacency — dead neighbors detected by
// hello timeout are excluded), LSAs flood in synchronous rounds until
// quiescence, and every node then computes shortest-path next hops over its
// learned map by BFS. The workload is delivered by per-node table lookup.
//
// Compared to distance-vector (RunDV), convergence takes only ~eccentricity
// rounds and failures never count to infinity, but the flooding volume and
// the per-node database are larger — the classic LS/DV trade, quantified by
// the control-plane experiment. Loop freedom of hop-by-hop delivery follows
// from every node holding the complete map: each hop strictly decreases the
// true shortest distance regardless of tie-breaking.
func RunLS(t Forwarder, flows []traffic.Flow, failedNodes ...int) (LSStats, error) {
	net := t.Network()
	g := net.Graph()
	servers := net.Servers()
	for _, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return LSStats{}, fmt.Errorf("emu: ls flow endpoints (%d,%d) out of %d servers",
				f.Src, f.Dst, len(servers))
		}
	}
	failed := make([]bool, g.NumNodes())
	for _, node := range failedNodes {
		if node < 0 || node >= g.NumNodes() {
			return LSStats{}, fmt.Errorf("emu: ls failed node %d out of range", node)
		}
		failed[node] = true
	}

	// Live adjacency and per-node state.
	adj := make([][]int, g.NumNodes())
	nodes := make([]*lsNode, g.NumNodes())
	for id := range nodes {
		if failed[id] {
			continue
		}
		for _, nb := range g.Neighbors(id, nil) {
			if !failed[nb] {
				adj[id] = append(adj[id], nb)
			}
		}
		nodes[id] = &lsNode{db: map[int][]int{id: adj[id]}, pending: []int{id}}
	}

	stats := LSStats{Injected: len(flows)}
	var messages atomic.Int64

	// Synchronous flooding: each round, every node forwards the LSAs it
	// learned last round to all live neighbors; receivers store unknown
	// ones. Two-phase (snapshot pending, then deliver) keeps it
	// deterministic.
	for round := 1; ; round++ {
		if round > 2*g.NumNodes() {
			return LSStats{}, fmt.Errorf("emu: ls flooding failed to quiesce")
		}
		type batch struct {
			origin int
			links  []int
		}
		outbox := make([][]batch, g.NumNodes())
		busy := false
		for id, n := range nodes {
			if n == nil || len(n.pending) == 0 {
				continue
			}
			busy = true
			for _, origin := range n.pending {
				outbox[id] = append(outbox[id], batch{origin: origin, links: n.db[origin]})
			}
			n.pending = nil
		}
		if !busy {
			stats.Rounds = round - 1
			break
		}
		var wg sync.WaitGroup
		for id := range nodes {
			if nodes[id] == nil {
				continue
			}
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := nodes[id]
				// Pull from every live neighbor's outbox, fixed order.
				for _, nb := range adj[id] {
					for _, b := range outbox[nb] {
						messages.Add(1)
						if _, known := n.db[b.origin]; !known {
							n.db[b.origin] = b.links
							n.pending = append(n.pending, b.origin)
						}
					}
				}
			}()
		}
		wg.Wait()
	}
	stats.Messages = int(messages.Load())

	// Data phase: every node's complete database yields true shortest
	// distances on the live graph; a packet hops to any neighbor strictly
	// closer to the destination, which is loop-free regardless of
	// tie-breaking. Distances are precomputed per destination.
	distTo := make(map[int][]int32, len(servers))
	ttl := 2 * g.NumNodes()
	for _, f := range flows {
		dst := servers[f.Dst]
		if _, ok := distTo[dst]; !ok {
			distTo[dst] = bfsLive(g, adj, dst, failed)
		}
		src := servers[f.Src]
		hops, ok := lsDeliver(adj, distTo[dst], src, dst, failed, ttl)
		if !ok {
			stats.Dropped++
			continue
		}
		stats.Delivered++
		if hops > stats.MaxHops {
			stats.MaxHops = hops
		}
	}
	return stats, nil
}

// bfsLive computes hop distances to dst over the live adjacency.
func bfsLive(g interface{ NumNodes() int }, adj [][]int, dst int, failed []bool) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if failed[dst] {
		return dist
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// lsDeliver walks hop-by-hop: at each node, pick the first live neighbor
// strictly closer to the destination (the node's own Dijkstra result).
func lsDeliver(adj [][]int, dist []int32, src, dst int, failed []bool, ttl int) (int, bool) {
	if failed[src] || failed[dst] || dist[src] < 0 {
		return 0, false
	}
	cur := src
	for hops := 0; hops <= ttl; hops++ {
		if cur == dst {
			return hops, true
		}
		next := -1
		for _, nb := range adj[cur] {
			if dist[nb] >= 0 && dist[nb] == dist[cur]-1 {
				next = nb
				break
			}
		}
		if next == -1 {
			return 0, false
		}
		cur = next
	}
	return 0, false
}
