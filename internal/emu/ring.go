package emu

// slot is the wire format of the sharded engine: one message in a node's
// ring-buffer inbox. It is deliberately 16 bytes — four bytes smaller than
// the old engine's channel message — because every node owns a ring of
// these and the serving emulator boots millions of nodes: slot size scales
// the whole resident footprint (a 1M-server ABCCC with 64-slot rings is
// ~1.4 GB of rings at 16 B/slot). The size is pinned by a regression test.
//
// Field use by kind:
//
//	slotHello: from = greeting node
//	slotAck:   from = acknowledging node
//	slotData:  dst = destination server node, id = packet id, hops = switch hops
//	slotReq:   dst = backend server node, id = request index, from = client node
//	slotResp:  dst = client server node, id = request index, from = backend node
type slot struct {
	dst  int32
	id   int32
	from int32
	hops uint8
	kind uint8
	_    [2]byte
}

// Message kinds of the sharded engine. Hello/ack drive the discovery sweep;
// data is the one-shot flow phase; req/resp are the serving workloads' RPC
// legs (handled by the workload hooks at their destination server).
const (
	slotHello uint8 = iota + 1
	slotAck
	slotData
	slotReq
	slotResp
)

// ring is a power-of-two ring-buffer inbox. It is intentionally not
// concurrency-safe: a node's ring is written and drained only by the shard
// worker that owns the node (cross-shard senders go through outboxes flushed
// at round barriers), so pushes and pops are plain loads and stores — no
// atomics, no channel ops, no scheduler wakeups on the per-message path.
type ring struct {
	buf  []slot // len(buf) is a power of two
	head uint32 // index of the oldest queued slot
	n    uint32 // queued slots
}

// ringCap rounds capacity up to the next power of two (minimum 2) so the
// ring can mask instead of mod.
func ringCap(n int) int {
	c := 2
	for c < n {
		c <<= 1
	}
	return c
}

// push appends m, reporting false when the ring is full (the caller defers
// or drops with accounting — the ring itself never loses a message).
func (r *ring) push(m slot) bool {
	if r.n == uint32(len(r.buf)) {
		return false
	}
	r.buf[(r.head+r.n)&uint32(len(r.buf)-1)] = m
	r.n++
	return true
}

// pop removes and returns the oldest slot; callers check len first.
func (r *ring) pop() slot {
	m := r.buf[r.head&uint32(len(r.buf)-1)]
	r.head++
	r.n--
	return m
}

// len returns the number of queued slots.
func (r *ring) len() int { return int(r.n) }

// space returns the number of free slots.
func (r *ring) space() int { return len(r.buf) - int(r.n) }
