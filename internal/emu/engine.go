package emu

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// This file is the emulator's second execution core: a sharded actor engine
// built for throughput. The goroutine-per-node engine in emu.go remains the
// reference oracle — it demonstrates operability with real concurrency — but
// it pays a channel operation and a scheduler wakeup per message, which caps
// it far below the 100k–1M-server regime the sharded packet engine already
// reaches. The actor engine removes both costs:
//
//   - Nodes are partitioned across a fixed worker pool using the same
//     topology.Sharder locality cuts as packetsim (ABCCC crossbar blocks,
//     BCube level-0 groups, fat-tree pods), so most traffic stays inside its
//     shard.
//   - Every node owns a power-of-two ring-buffer inbox written and drained
//     only by its shard's worker: pushes and pops are plain array stores.
//   - Cross-shard sends append to per-(src,dst)-shard outboxes that are
//     exchanged at round barriers, so shards never contend on rings.
//   - Execution is round-based (bulk-synchronous): each round every shard
//     first imports deferred and handed-off messages into rings (phase A),
//     then drains each dirty node's ring down to its start-of-round length
//     (phase B). A message sent in round r is handled in round r+1-or-later,
//     which makes accounting independent of the shard count whenever no ring
//     overflows — the property the equivalence tests pin.
//   - Full rings exert backpressure instead of silently relying on channel
//     buffering: a blocked message is re-offered for WithRetryRounds rounds
//     and then dropped as an accounted overflow; workload injection simply
//     waits for space (admission control), so offered load is shaped rather
//     than lost at the first queue.
//
// Divergences from the goroutine oracle are confined to timing-dependent
// behavior: overflow victims under saturation (the oracle's depend on the Go
// scheduler; the engine's are deterministic per shard count), trace
// timestamps (wall-clock nanoseconds there, round numbers here), and the
// inbox-occupancy histogram (sampled per send there, per drain batch here).
// Delivery, failure, TTL and hop accounting are identical and pinned by
// TestEngineMatchesReference.

// DefaultShards is the engine's default partition width. It is a fixed
// constant, not GOMAXPROCS, so results are reproducible across machines;
// the worker count adapts to the hardware instead.
const DefaultShards = 8

// defaultRingSize is the default per-node ring capacity (slots). Much
// smaller than the oracle's 1024-message channels because rings are
// preallocated for every node and the engine boots millions of them: at 64
// slots (1 KB) a 1M-node arena stays near a gigabyte, and — the part that
// shows up in benchmarks — the round-0 hello sweep's first touch of every
// ring faults in proportionally fewer fresh pages. 256-slot rings cost a
// 100k-node RPC run ~10x its wall clock in page faults alone. Bursts past
// the capacity are absorbed by the deferred-retry path, not lost.
const defaultRingSize = 64

// defaultRetryRounds is how many rounds a message blocked on a full ring is
// re-offered before it is dropped as an accounted overflow.
const defaultRetryRounds = 8

// maxEngineTTL bounds WithTTL for the sharded engine: hop counts ride in a
// packed byte (see slot).
const maxEngineTTL = math.MaxUint8

type shardsOption int

func (o shardsOption) apply(opts *options) { opts.shards = int(o) }

// WithShards sets the number of node partitions of the sharded engine
// (default DefaultShards). Accounting is identical for every shard count as
// long as no ring overflows; under saturation the totals are deterministic
// per shard count. Ignored by the goroutine engine.
func WithShards(n int) Option { return shardsOption(n) }

type workersOption int

func (o workersOption) apply(opts *options) { opts.workers = int(o) }

// WithWorkers sets the goroutines driving the shards (default
// min(shards, GOMAXPROCS)). Results never depend on the worker count.
func WithWorkers(n int) Option { return workersOption(n) }

type retryOption int

func (o retryOption) apply(opts *options) { opts.retryRounds = int(o) }

// WithRetryRounds sets how many rounds a message blocked on a full ring is
// re-offered before being dropped as overflow (default 8). Ignored by the
// goroutine engine, which drops on the first full inbox.
func WithRetryRounds(n int) Option { return retryOption(n) }

type seriesOption struct{ s *obs.Series }

func (o seriesOption) apply(opts *options) { opts.series = o.s }

// WithSeries attaches a time-windowed telemetry series to the sharded
// engine. The engine's time axis is its round number (one round = one
// drain-and-exchange sweep), recorded once per round by the coordinator, so
// the resulting points are deterministic. Ignored by the goroutine engine.
func WithSeries(s *obs.Series) Option { return seriesOption{s} }

// Instrument and series names specific to the sharded engine. The engine
// reuses the Metric* names of the goroutine engine for shared concepts
// (delivered, drop causes, hello acks, hops, inbox occupancy).
const (
	MetricMessages  = "emu_messages"
	MetricRounds    = "emu_rounds"
	MetricHandoffs  = "emu_cross_shard_handoffs"
	MetricRetries   = "emu_backpressure_retries"
	SeriesDelivered = "emu_delivered"
	SeriesDropped   = "emu_dropped"
	SeriesQueued    = "emu_queued_msgs"
	SeriesDeferred  = "emu_deferred_msgs"
)

// outMsg is one cross-shard handoff: a slot plus the node it is addressed
// to (the slot's dst is the packet's final destination, not the next hop).
type outMsg struct {
	to int32
	m  slot
}

// deferredSend is a message blocked on a full ring, re-offered each round.
type deferredSend struct {
	to    int32
	tries int32
	m     slot
}

// engineHooks is the seam the serving-workload layer plugs into. All hooks
// run on shard workers between barriers and may touch only their shard.
type engineHooks struct {
	// deliver is invoked when a req/resp message arrives at its destination
	// server (after the engine's own delivered accounting).
	deliver func(s *shard, node int32, m slot)
	// tick runs once per shard per round at the start of phase B, before
	// draining; it injects due application messages via shard.inject.
	tick func(s *shard, round int64)
	// pending reports the shard's outstanding application work (requests in
	// flight or waiting to start); the run continues while any remains.
	pending func(s *shard) int64
	// nextTick returns the earliest future round the shard's application
	// needs a tick (deadline checks, injections), or math.MaxInt64. The
	// coordinator fast-forwards idle rounds to the minimum.
	nextTick func(s *shard) int64
}

// engine is a booted sharded run.
type engine struct {
	topo    Forwarder
	net     *topology.Network
	opts    options
	hooks   engineHooks
	ttl     int
	shardOf []int32
	failed  []bool
	rings   []ring
	dirtyIn []bool // node is queued in its shard's dirty list
	shards  []*shard
	servers []int

	// Hoisted nilable instruments, as in the goroutine engine.
	cDelivered, cFailed, cTTL, cOverflow, cAcks *obs.Counter
	cMessages, cRounds, cHandoffs, cRetries     *obs.Counter
	hInbox, hHops                               *obs.Histogram
	tracer                                      *obs.Tracer
	serDelivered, serDropped                    *obs.Track
	serQueued, serDeferred                      *obs.Track
	prevDelivered, prevDropped                  int64
}

// shard owns a contiguous-by-locality set of nodes. Only its worker touches
// its fields (and its nodes' rings) during a phase; coordination happens at
// the barriers between phases.
type shard struct {
	eng   *engine
	id    int32
	nodes []int32 // owned node ids, ascending
	round int64   // current round, for trace timestamps and workload timers

	dirty    []int32 // nodes with queued messages, examined next drain
	spare    []int32 // recycled backing for the next dirty list
	counts   []int32 // per-drain snapshot of ring lengths
	outbox   [][]outMsg
	deferred []deferredSend
	injectQ  []outMsg // one-shot flow backlog, admitted as rings allow
	queued   int64    // slots currently held in this shard's rings

	// appInjected counts workload messages this shard put into the network
	// (request legs, retries, responses) — each is an accounted injection,
	// so Stats.Accounted audits serving runs end to end too.
	appInjected int64

	// Accounting, folded into Stats (and the armed registry) at the end so
	// the per-message path carries no atomics.
	delivered, droppedFailed, droppedTTL int64
	droppedOverflow, helloAcks           int64
	messages, handoffs, retries          int64
	hopHist                              []int64

	app *shardApp // serving-workload state, nil for one-shot runs
}

// RunSharded executes the same contract as Run — discovery sweep, one data
// packet per flow, full per-cause accounting — on the sharded actor engine.
// On any healthy-or-failed configuration where no ring overflows, the
// returned Stats match Run exactly (equivalence is pinned by tests); under
// saturation the totals are deterministic for a fixed shard count.
func RunSharded(t Forwarder, flows []traffic.Flow, opts ...Option) (Stats, error) {
	e, err := newEngine(t, engineHooks{}, opts)
	if err != nil {
		return Stats{}, err
	}
	if err := e.loadFlows(flows); err != nil {
		return Stats{}, err
	}
	return e.run(len(flows))
}

// newEngine validates options and boots rings, shard tables and instruments.
func newEngine(t Forwarder, hooks engineHooks, optList []Option) (*engine, error) {
	o := options{
		ttl:         2 * (t.Properties().DiameterLinks + 3),
		inboxSize:   defaultRingSize,
		shards:      DefaultShards,
		retryRounds: defaultRetryRounds,
	}
	for _, opt := range optList {
		opt.apply(&o)
	}
	if o.ttl < 1 || o.inboxSize < 1 {
		return nil, fmt.Errorf("emu: ttl and inbox size must be positive")
	}
	if o.ttl > maxEngineTTL {
		return nil, fmt.Errorf("emu: sharded engine ttl %d exceeds %d", o.ttl, maxEngineTTL)
	}
	if o.shards < 1 {
		return nil, fmt.Errorf("emu: shard count must be positive")
	}
	if o.retryRounds < 1 {
		return nil, fmt.Errorf("emu: retry rounds must be positive")
	}
	net := t.Network()
	n := net.Graph().NumNodes()
	e := &engine{
		topo:       t,
		net:        net,
		opts:       o,
		hooks:      hooks,
		ttl:        o.ttl,
		shardOf:    topology.ShardNodes(t, o.shards),
		failed:     make([]bool, n),
		rings:      make([]ring, n),
		dirtyIn:    make([]bool, n),
		servers:    net.Servers(),
		cDelivered: o.metrics.Counter(MetricDelivered),
		cFailed:    o.metrics.Counter(MetricDroppedFailed),
		cTTL:       o.metrics.Counter(MetricDroppedTTL),
		cOverflow:  o.metrics.Counter(MetricDroppedOverflow),
		cAcks:      o.metrics.Counter(MetricHelloAcks),
		cMessages:  o.metrics.Counter(MetricMessages),
		cRounds:    o.metrics.Counter(MetricRounds),
		cHandoffs:  o.metrics.Counter(MetricHandoffs),
		cRetries:   o.metrics.Counter(MetricRetries),
		hInbox:     o.metrics.Histogram(MetricInboxOccupancy),
		hHops:      o.metrics.Histogram(MetricHops),
		tracer:     o.trace,
	}
	if o.series != nil {
		e.serDelivered = o.series.Track(SeriesDelivered)
		e.serDropped = o.series.Track(SeriesDropped)
		e.serQueued = o.series.Track(SeriesQueued)
		e.serDeferred = o.series.Track(SeriesDeferred)
	}
	for _, node := range o.failed {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("emu: failed node %d out of range", node)
		}
		e.failed[node] = true
	}

	e.shards = make([]*shard, o.shards)
	perShard := make([][]int32, o.shards)
	for id := 0; id < n; id++ {
		sh := e.shardOf[id]
		perShard[sh] = append(perShard[sh], int32(id))
	}
	rc := ringCap(o.inboxSize)
	for i := range e.shards {
		s := &shard{
			eng:     e,
			id:      int32(i),
			nodes:   perShard[i], // ascending: built by increasing node id
			outbox:  make([][]outMsg, o.shards),
			hopHist: make([]int64, o.ttl+1),
		}
		// One arena per shard keeps ring storage contiguous and cheap for
		// the garbage collector (slots hold no pointers).
		arena := make([]slot, len(s.nodes)*rc)
		for j, node := range s.nodes {
			e.rings[node].buf = arena[j*rc : (j+1)*rc]
		}
		e.shards[i] = s
	}
	return e, nil
}

// loadFlows validates the one-shot workload and queues each flow's packet on
// its source shard's injection backlog, preserving flow order.
func (e *engine) loadFlows(flows []traffic.Flow) error {
	for i, f := range flows {
		if f.Src < 0 || f.Src >= len(e.servers) || f.Dst < 0 || f.Dst >= len(e.servers) {
			return fmt.Errorf("emu: flow endpoints (%d,%d) out of %d servers",
				f.Src, f.Dst, len(e.servers))
		}
		src := int32(e.servers[f.Src])
		s := e.shards[e.shardOf[src]]
		s.injectQ = append(s.injectQ, outMsg{to: src, m: slot{
			kind: slotData,
			dst:  int32(e.servers[f.Dst]),
			id:   int32(i),
		}})
	}
	return nil
}

// run executes rounds to quiescence and merges the per-shard accounting.
func (e *engine) run(injected int) (Stats, error) {
	workers := e.opts.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(e.shards) {
		workers = len(e.shards)
	}

	var (
		round     int64
		rounds    int64
		discovery = true
	)
	// Generous livelock guard: every round drains every queued message and
	// deferred messages expire, so a run that exceeds this is a bug, not a
	// big workload.
	maxRound := int64(1) << 42
	for {
		if round > 0 {
			e.runPhase(workers, func(s *shard) { s.phaseImport(round) })
		}
		e.runPhase(workers, func(s *shard) { s.phaseProcess(round, discovery) })
		rounds++

		var queued, deferred, boxed, backlog, appPending int64
		nextTick := int64(math.MaxInt64)
		for _, s := range e.shards {
			queued += s.queued
			deferred += int64(len(s.deferred))
			for _, box := range s.outbox {
				boxed += int64(len(box))
			}
			backlog += int64(len(s.injectQ))
			if e.hooks.pending != nil {
				appPending += e.hooks.pending(s)
			}
			if e.hooks.nextTick != nil {
				if nr := e.hooks.nextTick(s); nr < nextTick {
					nextTick = nr
				}
			}
		}
		e.recordSeries(round, queued, deferred)

		inFlight := queued + deferred + boxed
		if discovery && inFlight == 0 {
			// The control sweep has quiesced; the data/serving phase starts
			// next round, mirroring the oracle's drain barrier.
			discovery = false
			round++
			if backlog == 0 && appPending == 0 && e.hooks.tick == nil {
				break
			}
			continue
		}
		if inFlight == 0 && backlog == 0 {
			if appPending == 0 {
				break
			}
			// Only timers remain: fast-forward to the next deadline.
			if nextTick == math.MaxInt64 {
				return Stats{}, fmt.Errorf("emu: engine stalled with %d requests outstanding and no pending tick", appPending)
			}
			if nextTick <= round {
				nextTick = round + 1
			}
			round = nextTick
			continue
		}
		round++
		if round > maxRound {
			return Stats{}, fmt.Errorf("emu: engine exceeded %d rounds", maxRound)
		}
	}

	stats := Stats{Injected: injected, Rounds: int(rounds)}
	for _, s := range e.shards {
		stats.Injected += int(s.appInjected)
		stats.Delivered += int(s.delivered)
		stats.DroppedFailed += int(s.droppedFailed)
		stats.DroppedTTL += int(s.droppedTTL)
		stats.DroppedOverflow += int(s.droppedOverflow)
		stats.HelloAcks += int(s.helloAcks)
		stats.Messages += int(s.messages)
		e.cHandoffs.Add(s.handoffs)
		e.cRetries.Add(s.retries)
		for h, c := range s.hopHist {
			if c == 0 {
				continue
			}
			if h > stats.MaxHops {
				stats.MaxHops = h
			}
			for h >= len(stats.HopHistogram) {
				stats.HopHistogram = append(stats.HopHistogram, 0)
			}
			stats.HopHistogram[h] += int(c)
			// Batched fold: the armed histogram costs nothing per delivery.
			e.hHops.ObserveN(int64(h), c)
		}
	}
	e.cDelivered.Add(int64(stats.Delivered))
	e.cFailed.Add(int64(stats.DroppedFailed))
	e.cTTL.Add(int64(stats.DroppedTTL))
	e.cOverflow.Add(int64(stats.DroppedOverflow))
	e.cAcks.Add(int64(stats.HelloAcks))
	e.cMessages.Add(int64(stats.Messages))
	e.cRounds.Add(rounds)
	return stats, nil
}

// recordSeries emits the per-round telemetry points from the coordinator,
// so the series content never depends on worker scheduling.
func (e *engine) recordSeries(round, queued, deferred int64) {
	if e.opts.series == nil {
		return
	}
	var delivered, dropped int64
	for _, s := range e.shards {
		delivered += s.delivered
		dropped += s.droppedFailed + s.droppedTTL + s.droppedOverflow
	}
	// Delivered/dropped are recorded as per-round deltas so the windowed
	// sums stay additive; queue depths are instantaneous gauges.
	e.serDelivered.Add(round, delivered-e.prevDelivered)
	e.serDropped.Add(round, dropped-e.prevDropped)
	e.prevDelivered, e.prevDropped = delivered, dropped
	e.serQueued.Add(round, queued)
	e.serDeferred.Add(round, deferred)
}

// runPhase runs fn once per shard on the worker pool and waits. Shards are
// dispensed by an atomic counter; each shard's state is touched by exactly
// one worker, and the WaitGroup barrier orders the phases.
func (e *engine) runPhase(workers int, fn func(*shard)) {
	if workers <= 1 {
		for _, s := range e.shards {
			fn(s)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.shards) {
					return
				}
				fn(e.shards[i])
			}
		}()
	}
	wg.Wait()
}

// phaseImport re-offers deferred messages and imports last round's
// cross-shard handoffs into this shard's rings. It reads other shards'
// outboxes addressed to this shard — disjoint from what their own phase A
// touches — and resets them for the next process phase.
func (s *shard) phaseImport(round int64) {
	s.round = round
	if len(s.deferred) > 0 {
		keep := s.deferred[:0]
		for _, d := range s.deferred {
			s.retries++
			if s.enqueue(d.to, d.m) {
				continue
			}
			d.tries++
			if int(d.tries) >= s.eng.opts.retryRounds {
				s.dropOverflow(d.to, d.m)
				continue
			}
			keep = append(keep, d)
		}
		s.deferred = keep
	}
	for _, src := range s.eng.shards {
		box := src.outbox[s.id]
		if len(box) == 0 {
			continue
		}
		s.handoffs += int64(len(box))
		for _, om := range box {
			if !s.enqueue(om.to, om.m) {
				s.deferred = append(s.deferred, deferredSend{to: om.to, m: om.m})
			}
		}
		src.outbox[s.id] = box[:0]
	}
}

// phaseProcess injects due work and drains every dirty node's ring down to
// its start-of-round length (messages pushed during the round wait for the
// next one — the rule that keeps results shard-count independent).
func (s *shard) phaseProcess(round int64, discovery bool) {
	e := s.eng
	s.round = round
	if round == 0 {
		s.sendHellos()
	}
	if !discovery {
		if e.hooks.tick != nil {
			e.hooks.tick(s, round)
		}
		s.injectFlows()
	}

	work := s.dirty
	s.dirty = s.spare[:0]
	if len(work) > 1 {
		sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	}
	if cap(s.counts) < len(work) {
		s.counts = make([]int32, len(work))
	}
	counts := s.counts[:len(work)]
	for i, node := range work {
		counts[i] = int32(e.rings[node].len())
	}
	for i, node := range work {
		r := &e.rings[node]
		k := counts[i]
		e.hInbox.Observe(int64(k)) // per drain batch, not per message
		for j := int32(0); j < k; j++ {
			m := r.pop()
			s.queued--
			s.handle(node, m)
		}
		if r.len() > 0 {
			s.dirty = append(s.dirty, node)
		} else {
			e.dirtyIn[node] = false
		}
	}
	s.spare = work[:0]
}

// sendHellos starts the discovery sweep: every live owned node greets every
// neighbor, exactly like the oracle's boot.
func (s *shard) sendHellos() {
	e := s.eng
	g := e.net.Graph()
	var scratch []int
	for _, node := range s.nodes {
		if e.failed[node] {
			continue
		}
		scratch = g.Neighbors(int(node), scratch[:0])
		for _, nb := range scratch {
			s.send(int32(nb), slot{kind: slotHello, from: node})
		}
	}
}

// injectFlows admits queued one-shot packets while their source rings have
// space. Injection order is flow order; a full source ring pauses admission
// (backpressure on the injector) instead of dropping.
func (s *shard) injectFlows() {
	for len(s.injectQ) > 0 {
		om := s.injectQ[0]
		if !s.enqueue(om.to, om.m) {
			return
		}
		s.injectQ = s.injectQ[1:]
	}
}

// enqueue pushes m onto an owned node's ring, maintaining the dirty list.
// It reports false when the ring is full; callers defer, drop or stall.
func (s *shard) enqueue(to int32, m slot) bool {
	e := s.eng
	if !e.rings[to].push(m) {
		return false
	}
	s.queued++
	if !e.dirtyIn[to] {
		e.dirtyIn[to] = true
		s.dirty = append(s.dirty, to)
	}
	return true
}

// send routes a message to its next node: straight into the ring when the
// target is owned (deferring on overflow), through the outbox otherwise.
func (s *shard) send(to int32, m slot) {
	if ds := s.eng.shardOf[to]; ds != s.id {
		s.outbox[ds] = append(s.outbox[ds], outMsg{to: to, m: m})
		return
	}
	if !s.enqueue(to, m) {
		s.deferred = append(s.deferred, deferredSend{to: to, m: m})
	}
}

// handle processes one message at an owned node — the same state machine as
// the oracle's handle/forward, minus the channel plumbing.
func (s *shard) handle(node int32, m slot) {
	e := s.eng
	s.messages++
	if e.failed[node] {
		if m.kind >= slotData {
			s.droppedFailed++
			if e.tracer != nil {
				e.tracer.Record(obs.Event{TimeNs: s.roundNow(), Kind: "drop",
					ID: int64(m.id), Node: int(node), Hop: int(m.hops), Detail: "failed"})
			}
		}
		return
	}
	switch m.kind {
	case slotHello:
		s.send(m.from, slot{kind: slotAck, from: node})
	case slotAck:
		s.helloAcks++
	default:
		s.forward(node, m)
	}
}

// forward applies the hop-by-hop policy at a live node.
func (s *shard) forward(node int32, m slot) {
	e := s.eng
	if node == m.dst && e.net.IsServer(int(node)) {
		s.delivered++
		s.hopHist[m.hops]++
		if e.tracer != nil {
			e.tracer.Record(obs.Event{TimeNs: s.roundNow(), Kind: "deliver",
				ID: int64(m.id), Node: int(node), Hop: int(m.hops)})
		}
		if m.kind != slotData && e.hooks.deliver != nil {
			e.hooks.deliver(s, node, m)
		}
		return
	}
	if int(m.hops) >= e.ttl {
		s.droppedTTL++
		if e.tracer != nil {
			e.tracer.Record(obs.Event{TimeNs: s.roundNow(), Kind: "drop",
				ID: int64(m.id), Node: int(node), Hop: int(m.hops), Detail: "ttl"})
		}
		return
	}
	next, err := e.topo.NextHop(int(node), int(m.dst))
	if err != nil {
		// Unroutable destination: impossible after validation, but a real
		// device would also discard such a packet.
		s.droppedTTL++
		return
	}
	if e.tracer != nil {
		e.tracer.Record(obs.Event{TimeNs: s.roundNow(), Kind: "hop",
			ID: int64(m.id), Node: int(node), Hop: int(m.hops)})
	}
	if !e.net.IsServer(int(node)) {
		m.hops++ // leaving a switch completes one switch hop
	}
	s.send(int32(next), m)
}

// dropOverflow accounts a message that exhausted its backpressure budget.
// Control messages vanish silently, exactly like the oracle's full-channel
// path.
func (s *shard) dropOverflow(to int32, m slot) {
	if m.kind < slotData {
		return
	}
	s.droppedOverflow++
	if s.eng.tracer != nil {
		s.eng.tracer.Record(obs.Event{TimeNs: s.roundNow(), Kind: "drop",
			ID: int64(m.id), Node: int(to), Hop: int(m.hops), Detail: "overflow"})
	}
}

// roundNow stamps trace events with the shard's current round. The engine
// has no wall clock on its hot path; rounds are its time axis.
func (s *shard) roundNow() int64 { return s.round }
