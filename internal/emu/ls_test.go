package emu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func TestLSDeliversShortestPaths(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	flows := traffic.AllToAll(net.NumServers())
	stats, err := RunLS(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) || stats.Dropped != 0 {
		t.Fatalf("delivered %d/%d, dropped %d", stats.Delivered, len(flows), stats.Dropped)
	}
	servers := net.Servers()
	worst := 0
	for _, src := range servers {
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			t.Fatal("disconnected")
		}
		if ecc > worst {
			worst = ecc
		}
	}
	if stats.MaxHops != worst {
		t.Errorf("LS max hops %d, graph diameter %d", stats.MaxHops, worst)
	}
}

func TestLSConvergesFasterThanDVWithMoreMessages(t *testing.T) {
	// The classic trade: LS quiesces in about the network eccentricity
	// (plus the quiet detection round), while DV needs distance-many rounds;
	// LS floods more messages.
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	ls, err := RunLS(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := RunDV(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Rounds > dv.Rounds {
		t.Errorf("LS rounds %d > DV rounds %d", ls.Rounds, dv.Rounds)
	}
	if ls.Messages <= dv.Messages {
		t.Errorf("LS messages %d <= DV messages %d — flooding should cost more",
			ls.Messages, dv.Messages)
	}
}

func TestLSServesExactlyConnectedPairsUnderFailures(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	victim := net.Switches()[2]
	view := graph.NewView(net.Graph())
	view.FailNode(victim)

	flows := traffic.AllToAll(net.NumServers())
	servers := net.Servers()
	connected := 0
	for _, f := range flows {
		if net.Graph().ShortestPath(servers[f.Src], servers[f.Dst], view) != nil {
			connected++
		}
	}
	stats, err := RunLS(tp, flows, victim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != connected {
		t.Errorf("LS delivered %d, want %d connected pairs", stats.Delivered, connected)
	}
}

func TestLSFailedEndpoints(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	dead := tp.Network().Servers()[0]
	stats, err := RunLS(tp, []traffic.Flow{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 0 || stats.Dropped != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestLSDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := traffic.AllToAll(tp.Network().NumServers())
	a, err := RunLS(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLS(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic LS: %+v vs %+v", a, b)
	}
}

func TestLSErrors(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RunLS(tp, []traffic.Flow{{Src: 0, Dst: 9}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if _, err := RunLS(tp, nil, -2); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}
