package emu

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestWorkloadRPCHealthyCompletesEverything(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	ws, err := RunWorkload(tp, Workload{
		Kind: RPCFanout, Requests: 60, Fanout: 3, RetryBudget: 1, Seed: 21,
	}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed != ws.Requests || ws.TimedOut != 0 {
		t.Errorf("healthy RPC: %d/%d completed, %d timed out", ws.Completed, ws.Requests, ws.TimedOut)
	}
	if !ws.Accounted() {
		t.Errorf("unaccounted serving run: %+v", ws.Stats)
	}
	// Every leg and every response is a delivered message on a healthy net.
	if want := 2 * ws.Requests * 3; ws.Delivered != want {
		t.Errorf("delivered %d messages, want %d (legs + responses)", ws.Delivered, want)
	}
	total := 0
	for _, c := range ws.LatencyHistogram {
		total += c
	}
	if total != ws.Completed {
		t.Errorf("latency histogram sums to %d, completed %d", total, ws.Completed)
	}
	if ws.MaxLatencyRounds < 1 {
		t.Errorf("completed requests report latency %d rounds", ws.MaxLatencyRounds)
	}
}

// TestWorkloadRPCDeterministic pins seeded reproducibility across worker
// counts — the property that makes the serving benchmarks comparable.
func TestWorkloadRPCDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	w := Workload{Kind: RPCFanout, Requests: 40, Fanout: 2, RetryBudget: 1, Seed: 5}
	a, err := RunWorkload(tp, w, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(tp, w, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.TimedOut != b.TimedOut ||
		a.Delivered != b.Delivered || a.MaxLatencyRounds != b.MaxLatencyRounds {
		t.Errorf("worker count changed the run: %+v vs %+v", a, b)
	}
}

// TestWorkloadRPCDeadBackendsTimeOut kills servers so that some requests
// have dead backends: those must exhaust their retry budget and be counted
// timed out, with message conservation intact (retried legs are fresh
// injections that end as failed-node drops).
func TestWorkloadRPCDeadBackendsTimeOut(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	net := tp.Network()
	servers := net.Servers()
	var dead []int
	for i := 0; i < len(servers); i += 2 {
		dead = append(dead, servers[i]) // kill half the fleet
	}
	reg := obs.NewRegistry()
	ws, err := RunWorkload(tp, Workload{
		Kind: RPCFanout, Requests: 40, Fanout: 3, RetryBudget: 1, Seed: 31,
	}, WithFailedNodes(dead...), WithWorkers(2), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed+ws.TimedOut != ws.Requests {
		t.Errorf("requests unaccounted: %d completed + %d timed out != %d",
			ws.Completed, ws.TimedOut, ws.Requests)
	}
	if ws.TimedOut == 0 {
		t.Error("half the fleet is dead but nothing timed out")
	}
	if ws.RetriesSent == 0 {
		t.Error("timeouts with a retry budget produced no retries")
	}
	if !ws.Accounted() {
		t.Errorf("message conservation broken: %+v", ws.Stats)
	}
	if got := reg.Counter(MetricDroppedFailed).Value(); got != int64(ws.DroppedFailed) {
		t.Errorf("registry failed drops %d, stats %d", got, ws.DroppedFailed)
	}
}

// Requests issued from a dead client never complete; their legs die at the
// client node itself and the deadline machinery must still retire them.
func TestWorkloadRPCDeadClientStillRetires(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	dead := append([]int(nil), net.Servers()...) // everything dead
	ws, err := RunWorkload(tp, Workload{
		Kind: RPCFanout, Requests: 10, Fanout: 2, Seed: 3, DeadlineRounds: 8,
	}, WithFailedNodes(dead...))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed != 0 || ws.TimedOut != ws.Requests {
		t.Errorf("dead fleet: %+v", ws)
	}
	if !ws.Accounted() {
		t.Errorf("unaccounted: %+v", ws.Stats)
	}
}

func TestWorkloadIncastWaves(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	ws, err := RunWorkload(tp, Workload{
		Kind: IncastWave, Requests: 5, Fanout: n - 1, RetryBudget: 2, Seed: 8,
	}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed+ws.TimedOut != ws.Requests {
		t.Errorf("waves unaccounted: %+v", ws)
	}
	if !ws.Accounted() {
		t.Errorf("message conservation broken: %+v", ws.Stats)
	}
	// Default rings absorb this fan-in on a healthy fabric.
	if ws.Completed != ws.Requests {
		t.Errorf("healthy incast: %d/%d waves completed", ws.Completed, ws.Requests)
	}
}

// TestWorkloadIncastStarvedRings pins the interesting incast regime: rings
// far smaller than the fan-in force overflow drops on the response wave, the
// retry budget recovers some waves, and conservation still holds.
func TestWorkloadIncastStarvedRings(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	ws, err := RunWorkload(tp, Workload{
		Kind: IncastWave, Requests: 4, Fanout: n - 1, RetryBudget: 1, Seed: 8,
		DeadlineRounds: 64,
	}, WithInboxSize(2), WithRetryRounds(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Completed+ws.TimedOut != ws.Requests {
		t.Errorf("waves unaccounted: %+v", ws)
	}
	if !ws.Accounted() {
		t.Errorf("message conservation broken under incast saturation: %+v", ws.Stats)
	}
	if ws.DroppedOverflow == 0 {
		t.Errorf("2-slot rings under %d-way incast dropped nothing: %+v", n-1, ws.Stats)
	}
}

func TestWorkloadShuffleDeliversAllChunks(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	ws, err := RunWorkload(tp, Workload{
		Kind: StorageShuffle, Mappers: 6, Reducers: 4, Seed: 12,
	}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Requests != 6*4 {
		t.Fatalf("shuffle generated %d chunks, want 24", ws.Requests)
	}
	if ws.Completed != ws.Requests || !ws.Accounted() {
		t.Errorf("shuffle run: %+v", ws)
	}
}

func TestWorkloadErrors(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RunWorkload(tp, Workload{Kind: RPCFanout, Requests: 0, Fanout: 1}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := RunWorkload(tp, Workload{Kind: RPCFanout, Requests: 1, Fanout: 99}); err == nil {
		t.Error("fanout beyond the fleet accepted")
	}
	if _, err := RunWorkload(tp, Workload{Kind: StorageShuffle}); err == nil {
		t.Error("shuffle without mappers/reducers accepted")
	}
	if _, err := RunWorkload(tp, Workload{Kind: WorkloadKind(99), Requests: 1, Fanout: 1}); err == nil {
		t.Error("unknown workload kind accepted")
	}
}

// TestWorkloadKindNames keeps the report labels stable — benchsuite encodes
// them into BENCH json rows.
func TestWorkloadKindNames(t *testing.T) {
	names := map[WorkloadKind]string{RPCFanout: "rpc", IncastWave: "incast", StorageShuffle: "shuffle"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("kind %d named %q, want %q", int(k), got, want)
		}
	}
	sorted := make([]string, 0, len(names))
	for _, v := range names {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	if len(sorted) != 3 {
		t.Fatal("workload kinds changed; update benchsuite")
	}
}
