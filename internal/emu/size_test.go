package emu

import (
	"testing"
	"unsafe"
)

// The emulators boot one inbox per node, so the wire-format struct sizes
// directly scale resident memory at the 100k–1M-server scales the engines
// target. Packing message from 32 to 20 bytes measurably sped the goroutine
// engine up, and slot was designed at 16 bytes for the same reason; these
// pins make any silent regrowth (field reordering, a widened field, an added
// pointer) a test failure with an explicit decision attached.
func TestWireStructSizes(t *testing.T) {
	if got := unsafe.Sizeof(message{}); got != 20 {
		t.Errorf("message size = %d bytes, want 20 (packed layout regressed)", got)
	}
	if got := unsafe.Sizeof(slot{}); got != 16 {
		t.Errorf("slot size = %d bytes, want 16 (packed layout regressed)", got)
	}
}
