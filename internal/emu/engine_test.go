package emu

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// compareStats asserts the sharded engine's accounting equals the goroutine
// oracle's. Everything except Rounds (meaningless for the oracle) must
// match: on configurations where no inbox overflows, per-packet forwarding
// is schedule-independent, so the totals are exactly equal.
func compareStats(t *testing.T, name string, ref, got Stats) {
	t.Helper()
	ref.Rounds, got.Rounds = 0, 0
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("%s: sharded engine diverged from oracle:\n  oracle:  %+v\n  sharded: %+v", name, ref, got)
	}
}

// TestEngineMatchesReference is the equivalence matrix of the tentpole:
// the same accounting as the goroutine oracle across every topology family
// the emulator supports, healthy and with dead devices.
func TestEngineMatchesReference(t *testing.T) {
	type tc struct {
		name string
		topo Forwarder
	}
	cases := []tc{
		{"abccc-4-1-2", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"abccc-3-2-2", core.MustBuild(core.Config{N: 3, K: 2, P: 2})},
	}
	if tp, err := bcube.Build(bcube.Config{N: 4, K: 1}); err == nil {
		cases = append(cases, tc{"bcube-4-1", tp})
	} else {
		t.Fatal(err)
	}
	if tp, err := fattree.Build(fattree.Config{K: 4}); err == nil {
		cases = append(cases, tc{"fattree-4", tp})
	} else {
		t.Fatal(err)
	}
	if tp, err := bccc.Build(bccc.Config{N: 3, K: 1}); err == nil {
		cases = append(cases, tc{"bccc-3-1", tp})
	} else {
		t.Fatal(err)
	}

	for _, c := range cases {
		rng := rand.New(rand.NewSource(7))
		n := c.topo.Network().NumServers()
		flows := traffic.Uniform(n, 3*n, rng)

		ref, err := Run(c.topo, flows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSharded(c.topo, flows, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		compareStats(t, c.name+"/healthy", ref, got)

		// Kill a third of the switches and a few servers (dead destinations
		// included): per-cause drop totals must still match exactly.
		net := c.topo.Network()
		var dead []int
		for i, sw := range net.Switches() {
			if i%3 == 0 {
				dead = append(dead, sw)
			}
		}
		for i := 0; i < 3 && i < n; i++ {
			dead = append(dead, net.Servers()[rng.Intn(n)])
		}
		ref, err = Run(c.topo, flows, WithFailedNodes(dead...))
		if err != nil {
			t.Fatal(err)
		}
		got, err = RunSharded(c.topo, flows, WithFailedNodes(dead...), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		compareStats(t, c.name+"/failed", ref, got)
	}
}

// TestEngineShardCountInvariance pins the BSP design property: because a
// message sent in round r is always handled in a later round, the entire
// accounting is independent of how nodes are partitioned and how many
// workers drive them.
func TestEngineShardCountInvariance(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 2, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.Uniform(n, 4*n, rand.New(rand.NewSource(11)))

	base, err := RunSharded(tp, flows, WithShards(1), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8, 32} {
		for _, workers := range []int{1, 2, 4} {
			got, err := RunSharded(tp, flows, WithShards(shards), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			got.Rounds = base.Rounds // rounds may differ only via fast-forward gaps, never here
			if !reflect.DeepEqual(base, got) {
				t.Errorf("shards=%d workers=%d: %+v != %+v", shards, workers, got, base)
			}
		}
	}
}

// TestEngineTTLAndWalkAgreement reuses the oracle's single-packet ground
// truth: the sharded hop count must equal the static forwarding walk.
func TestEngineTTLAndWalkAgreement(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 3})
	net := tp.Network()
	src, dst := 0, net.NumServers()-1
	walk, err := tp.ForwardingWalk(net.Servers()[src], net.Servers()[dst])
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunSharded(tp, []traffic.Flow{{Src: src, Dst: dst}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 || stats.MaxHops != walk.SwitchHops(net) {
		t.Errorf("sharded walk: %+v, want hops %d", stats, walk.SwitchHops(net))
	}

	tight, err := RunSharded(tp, traffic.AllToAll(net.NumServers())[:50], WithTTL(1))
	if err != nil {
		t.Fatal(err)
	}
	if tight.DroppedTTL == 0 || !tight.Accounted() {
		t.Errorf("TTL 1 sharded run: %+v", tight)
	}
}

// TestEngineBackpressureSaturation starves the rings under an amplified
// incast: the engine must retry, then drop with overflow accounting, and
// conservation must hold exactly. The totals are deterministic per shard
// count, pinned by running twice.
func TestEngineBackpressureSaturation(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	flows, err := traffic.Incast(n, 0, n-1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		flows = append(flows, flows...)
	}
	reg := obs.NewRegistry()
	stats, err := RunSharded(tp, flows, WithInboxSize(1), WithRetryRounds(2),
		WithWorkers(2), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedOverflow == 0 {
		t.Errorf("no overflow under saturation: %+v", stats)
	}
	if !stats.Accounted() {
		t.Errorf("unaccounted under saturation: %+v", stats)
	}
	if reg.Counter(MetricRetries).Value() == 0 {
		t.Error("backpressure produced no retry attempts")
	}
	again, err := RunSharded(tp, flows, WithInboxSize(1), WithRetryRounds(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	again.Rounds = stats.Rounds
	stats.Messages, again.Messages = 0, 0 // equal too, but keep the assert focused
	if stats.Delivered != again.Delivered || stats.DroppedOverflow != again.DroppedOverflow {
		t.Errorf("saturation run not deterministic: %+v vs %+v", stats, again)
	}
}

// TestEngineConservationUnderChaosSchedule drives the same chaos-monkey
// schedule the control plane is audited with, and after every kill/revive
// step runs the sharded engine against the surviving set with starved rings:
// every injected packet must be delivered or dropped with a cause, and the
// armed registry must mirror the internal accounting exactly.
func TestEngineConservationUnderChaosSchedule(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	rng := rand.New(rand.NewSource(9))
	events, err := Chaos(tp, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	down := map[int]bool{}
	for i, ev := range events {
		if ev.Kill {
			down[ev.Node] = true
		} else {
			delete(down, ev.Node)
		}
		dead := make([]int, 0, len(down))
		for node := range down {
			dead = append(dead, node)
		}
		sort.Ints(dead)

		n := tp.Network().NumServers()
		flows := traffic.Uniform(n, 4*n, rng)
		reg := obs.NewRegistry()
		stats, err := RunSharded(tp, flows, WithFailedNodes(dead...),
			WithInboxSize(2), WithRetryRounds(2), WithWorkers(2), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Accounted() {
			t.Fatalf("step %d (%d dead): unaccounted: %+v", i, len(dead), stats)
		}
		for name, want := range map[string]int{
			MetricDelivered:       stats.Delivered,
			MetricDroppedFailed:   stats.DroppedFailed,
			MetricDroppedTTL:      stats.DroppedTTL,
			MetricDroppedOverflow: stats.DroppedOverflow,
			MetricHelloAcks:       stats.HelloAcks,
			MetricMessages:        stats.Messages,
			MetricRounds:          stats.Rounds,
		} {
			if got := reg.Counter(name).Value(); got != int64(want) {
				t.Errorf("step %d: %s = %d, want %d", i, name, got, want)
			}
		}
	}
}

// TestEngineSeriesDeterministic pins the round-stamped telemetry: series
// points are recorded by the coordinator on the round axis, so two identical
// runs produce byte-identical points regardless of worker count, and the
// delivered track folds to the run total.
func TestEngineSeriesDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.Uniform(n, 3*n, rand.New(rand.NewSource(13)))

	runOnce := func(workers int) ([]obs.SeriesPoint, Stats) {
		ser := obs.NewSeries(1) // 1 ns windows: one window per round
		stats, err := RunSharded(tp, flows, WithSeries(ser), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return ser.Points(), stats
	}
	p1, s1 := runOnce(1)
	p2, s2 := runOnce(4)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("series points differ across worker counts:\n%v\n%v", p1, p2)
	}
	var delivered int64
	for _, p := range p1 {
		if p.Track == SeriesDelivered {
			delivered += p.Sum
		}
	}
	if delivered != int64(s1.Delivered) || s1.Delivered != s2.Delivered {
		t.Errorf("delivered track sums to %d, run delivered %d", delivered, s1.Delivered)
	}
}

func TestEngineTraceCoversTerminals(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	n := tp.Network().NumServers()
	flows := traffic.Uniform(n, 2*n, rand.New(rand.NewSource(17)))
	tr := obs.NewTracer(1 << 14)
	stats, err := RunSharded(tp, flows, WithTrace(tr), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatal("trace ring wrapped; enlarge for this test")
	}
	terminal := 0
	for _, ev := range tr.Events() {
		if ev.Kind == "deliver" || ev.Kind == "drop" {
			terminal++
		}
	}
	if want := stats.Delivered + stats.DroppedFailed + stats.DroppedTTL + stats.DroppedOverflow; terminal != want {
		t.Errorf("%d terminal trace events, want %d", terminal, want)
	}
}

func TestEngineErrors(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RunSharded(tp, []traffic.Flow{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if _, err := RunSharded(tp, nil, WithTTL(0)); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := RunSharded(tp, nil, WithTTL(300)); err == nil {
		t.Error("TTL beyond the packed hop byte accepted")
	}
	if _, err := RunSharded(tp, nil, WithShards(0)); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := RunSharded(tp, nil, WithRetryRounds(0)); err == nil {
		t.Error("zero retry rounds accepted")
	}
	if _, err := RunSharded(tp, nil, WithFailedNodes(-1)); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}

func TestRingBasics(t *testing.T) {
	var r ring
	r.buf = make([]slot, ringCap(3)) // rounds up to 4
	if len(r.buf) != 4 {
		t.Fatalf("ringCap(3) = %d, want 4", len(r.buf))
	}
	for i := 0; i < 4; i++ {
		if !r.push(slot{id: int32(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if r.push(slot{}) {
		t.Error("push into full ring accepted")
	}
	if r.space() != 0 || r.len() != 4 {
		t.Errorf("len/space = %d/%d, want 4/0", r.len(), r.space())
	}
	for i := 0; i < 4; i++ {
		if got := r.pop(); got.id != int32(i) {
			t.Fatalf("pop %d returned id %d (FIFO violated)", i, got.id)
		}
	}
	// Wrap across the boundary a few times.
	for i := 0; i < 10; i++ {
		r.push(slot{id: int32(100 + i)})
		if got := r.pop(); got.id != int32(100+i) {
			t.Fatalf("wrap pop returned %d", got.id)
		}
	}
}

func benchSharded(b *testing.B, opts ...Option) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := RunSharded(tp, flows, opts...)
		if err != nil || !stats.Accounted() {
			b.Fatalf("stats %+v err %v", stats, err)
		}
	}
}

// BenchmarkShardedRun vs BenchmarkRunInstrumentationOff is the engine
// comparison in miniature; vs BenchmarkShardedRunMetrics it pins that armed
// metrics cost only the end-of-run fold.
func BenchmarkShardedRun(b *testing.B) { benchSharded(b) }

func BenchmarkShardedRunMetrics(b *testing.B) {
	benchSharded(b, WithMetrics(obs.NewRegistry()))
}
