package emu

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/traffic"
)

// This file is the serving-workload layer on top of the sharded actor
// engine: production-shaped clients that exercise the fabric with
// application traffic — request/response RPC fan-out with deadlines and
// retries, partition-aggregate incast, and storage shuffle — instead of the
// one-shot synthetic flows RunSharded injects. Clients are closed-loop and
// co-located at server nodes; all of a request's client-side state lives on
// the shard that owns its client node, so the workload adds no shared
// mutable state to the engine's concurrency story.

// WorkloadKind selects a client pattern.
type WorkloadKind int

const (
	// RPCFanout is a request/response serving workload: each request is
	// scattered from a random client to Fanout distinct random backends,
	// which respond immediately; the request completes when every response
	// is back, times out past DeadlineRounds, and is retried (unanswered
	// legs only) up to RetryBudget times.
	RPCFanout WorkloadKind = iota
	// IncastWave is partition-aggregate: one client scatters every request
	// to the same Fanout senders, whose synchronized responses converge on
	// the client — the classic incast wave. Waves run with concurrency 1.
	IncastWave
	// StorageShuffle is a MapReduce shuffle: Mappers×Reducers one-way chunk
	// transfers drawn from traffic.Shuffle, admitted under backpressure.
	StorageShuffle
)

// String names the kind for reports.
func (k WorkloadKind) String() string {
	switch k {
	case RPCFanout:
		return "rpc"
	case IncastWave:
		return "incast"
	case StorageShuffle:
		return "shuffle"
	}
	return fmt.Sprintf("workload(%d)", int(k))
}

// Workload parameterizes a serving run. All randomness derives from Seed, so
// runs are reproducible; request endpoints come from the traffic generators
// (Uniform for RPC clients, Incast for wave senders, Shuffle for chunks).
type Workload struct {
	Kind WorkloadKind
	// Requests is the request count (RPC) or wave count (incast). Ignored
	// by shuffle, whose chunk count is Mappers*Reducers.
	Requests int
	// Fanout is backends per RPC request / senders per incast wave.
	Fanout int
	// Mappers and Reducers size the shuffle.
	Mappers, Reducers int
	// DeadlineRounds is the per-attempt deadline in engine rounds
	// (default 4x the TTL — a round bounds one queue traversal, so this
	// comfortably covers a request/response round trip plus queueing).
	DeadlineRounds int
	// RetryBudget is how many times a timed-out request is re-attempted
	// (unanswered legs only) before it is abandoned. 0 means no retries.
	RetryBudget int
	// Concurrency caps requests in flight per shard (closed loop);
	// default 8, forced to 1 for incast.
	Concurrency int
	Seed        int64
}

// WorkloadStats extends the engine accounting with request-level outcomes.
// The message-level Stats include the workload's traffic: every request leg
// (retries included) and every response counts as one injected message, so
// Accounted still audits conservation end to end.
type WorkloadStats struct {
	Stats
	// Requests counts requests issued (waves for incast, chunks for
	// shuffle); Completed those that gathered every response in time,
	// TimedOut those abandoned after the retry budget.
	Requests, Completed, TimedOut int
	// RetriesSent counts re-attempts after per-request deadlines expired.
	RetriesSent int
	// MaxLatencyRounds / LatencyHistogram describe completed requests'
	// issue-to-last-response latency in rounds; LatencyHistogram[r] counts
	// requests that completed in r rounds.
	MaxLatencyRounds int
	LatencyHistogram []int
}

// request is one RPC/incast request. Leg arrays live in flat per-run slices
// (see workloadRun) so a million requests are three allocations, not three
// million.
type request struct {
	client    int32
	remaining int32 // unanswered legs; -1 once completed or abandoned
	attempt   int32 // attempts used (1 on first issue)
	issued    int64 // round of first issue
	deadline  int64 // round the current attempt expires
}

// dlEntry is one deadline-FIFO entry. Deadlines are monotone in insertion
// order (every entry is round+DeadlineRounds at insertion), so expiry checks
// pop from the head; entries whose request completed or re-armed since are
// stale and skipped.
type dlEntry struct {
	req      int32
	deadline int64
}

// workloadRun is the shared, immutable-after-boot request table. Mutable
// request state is only ever touched by the shard owning the client node.
type workloadRun struct {
	w        Workload
	reqs     []request
	backends []int32 // flat: request i's legs at [i*Fanout, (i+1)*Fanout)
	done     []bool  // flat leg flags, same indexing
	fanout   int
}

// shardApp is one shard's slice of the workload: the requests whose client
// it owns, in global issue order.
type shardApp struct {
	run      *workloadRun
	order    []int32 // owned request indices, ascending
	next     int     // first unissued entry of order
	inflight int     // issued, not yet completed/abandoned
	dl       []dlEntry
	dlHead   int
	maxIn    int

	completed, timedOut, retries int64
	latHist                      []int64
}

// RunWorkload executes a serving workload on the sharded engine: the
// discovery sweep first, then closed-loop clients until every request has
// completed or exhausted its retry budget (shuffle: until every chunk is
// delivered or dropped).
func RunWorkload(t Forwarder, w Workload, opts ...Option) (WorkloadStats, error) {
	if w.Kind == StorageShuffle {
		return runShuffle(t, w, opts)
	}

	run := &workloadRun{w: w}
	hooks := engineHooks{
		deliver:  func(s *shard, node int32, m slot) { workloadDeliver(s, node, m) },
		tick:     func(s *shard, round int64) { s.app.tick(s, round) },
		pending:  func(s *shard) int64 { return int64(len(s.app.order)-s.app.next) + int64(s.app.inflight) },
		nextTick: func(s *shard) int64 { return s.app.nextTick() },
	}
	e, err := newEngine(t, hooks, opts)
	if err != nil {
		return WorkloadStats{}, err
	}
	if w.DeadlineRounds <= 0 {
		run.w.DeadlineRounds = 4 * e.ttl
	}
	if w.Concurrency <= 0 {
		run.w.Concurrency = 8
	}
	if w.Kind == IncastWave {
		run.w.Concurrency = 1 // waves are sequential by definition
	}
	if err := run.generate(e); err != nil {
		return WorkloadStats{}, err
	}

	// Partition requests by client-node shard, preserving global order.
	apps := make([]*shardApp, len(e.shards))
	for i, s := range e.shards {
		apps[i] = &shardApp{run: run, maxIn: run.w.Concurrency}
		s.app = apps[i]
	}
	for i := range run.reqs {
		sh := e.shardOf[run.reqs[i].client]
		apps[sh].order = append(apps[sh].order, int32(i))
	}

	stats, err := e.run(0)
	if err != nil {
		return WorkloadStats{}, err
	}
	out := WorkloadStats{Stats: stats, Requests: len(run.reqs)}
	for _, a := range apps {
		out.Completed += int(a.completed)
		out.TimedOut += int(a.timedOut)
		out.RetriesSent += int(a.retries)
		for r, c := range a.latHist {
			if c == 0 {
				continue
			}
			if r > out.MaxLatencyRounds {
				out.MaxLatencyRounds = r
			}
			for r >= len(out.LatencyHistogram) {
				out.LatencyHistogram = append(out.LatencyHistogram, 0)
			}
			out.LatencyHistogram[r] += int(c)
		}
	}
	return out, nil
}

// runShuffle maps the shuffle onto the engine's one-shot flow path: chunks
// are plain data packets admitted under injection backpressure, with no
// response leg, so the engine's flow machinery is exactly the right tool.
func runShuffle(t Forwarder, w Workload, opts []Option) (WorkloadStats, error) {
	if w.Mappers < 1 || w.Reducers < 1 {
		return WorkloadStats{}, fmt.Errorf("emu: shuffle needs mappers and reducers")
	}
	e, err := newEngine(t, engineHooks{}, opts)
	if err != nil {
		return WorkloadStats{}, err
	}
	rng := rand.New(rand.NewSource(w.Seed))
	flows, err := traffic.Shuffle(len(e.servers), w.Mappers, w.Reducers, rng)
	if err != nil {
		return WorkloadStats{}, err
	}
	if err := e.loadFlows(flows); err != nil {
		return WorkloadStats{}, err
	}
	stats, err := e.run(len(flows))
	if err != nil {
		return WorkloadStats{}, err
	}
	return WorkloadStats{Stats: stats, Requests: len(flows), Completed: stats.Delivered}, nil
}

// generate builds the request table from the traffic generators.
func (run *workloadRun) generate(e *engine) error {
	w := run.w
	n := len(e.servers)
	if w.Requests < 1 {
		return fmt.Errorf("emu: workload needs at least one request")
	}
	if w.Fanout < 1 || w.Fanout > n-1 {
		return fmt.Errorf("emu: fanout %d out of range for %d servers", w.Fanout, n)
	}
	rng := rand.New(rand.NewSource(w.Seed))
	run.fanout = w.Fanout
	run.reqs = make([]request, w.Requests)
	run.backends = make([]int32, w.Requests*w.Fanout)
	run.done = make([]bool, w.Requests*w.Fanout)

	switch w.Kind {
	case RPCFanout:
		// Uniform picks each request's client (Src) and first backend (Dst);
		// the remaining legs are distinct uniform picks avoiding the client.
		pairs := traffic.Uniform(n, w.Requests, rng)
		for i, p := range pairs {
			run.reqs[i].client = int32(e.servers[p.Src])
			legs := run.backends[i*w.Fanout : (i+1)*w.Fanout]
			legs[0] = int32(e.servers[p.Dst])
			for j := 1; j < w.Fanout; j++ {
				b := rng.Intn(n - 1)
				if b >= p.Src {
					b++ // never call yourself
				}
				legs[j] = int32(e.servers[b])
			}
		}
	case IncastWave:
		// One client (the incast target), the same sender set every wave.
		target := rng.Intn(n)
		flows, err := traffic.Incast(n, target, w.Fanout, rng)
		if err != nil {
			return err
		}
		client := int32(e.servers[target])
		for i := range run.reqs {
			run.reqs[i].client = client
			legs := run.backends[i*w.Fanout : (i+1)*w.Fanout]
			for j, f := range flows {
				legs[j] = int32(e.servers[f.Src])
			}
		}
	default:
		return fmt.Errorf("emu: unknown workload kind %v", w.Kind)
	}
	return nil
}

// tick runs on the owning shard each round: expire deadlines, retry or
// abandon, and issue new requests up to the concurrency cap.
func (a *shardApp) tick(s *shard, round int64) {
	run := a.run
	// Expire: the FIFO head has the earliest live deadline.
	for a.dlHead < len(a.dl) {
		ent := a.dl[a.dlHead]
		if ent.deadline > round {
			break
		}
		a.dlHead++
		r := &run.reqs[ent.req]
		if r.remaining < 0 || r.deadline != ent.deadline {
			continue // completed, abandoned, or re-armed since
		}
		if int(r.attempt) > run.w.RetryBudget {
			r.remaining = -1
			a.inflight--
			a.timedOut++
			continue
		}
		r.attempt++
		a.retries++
		a.rearm(s, ent.req, round, true)
	}
	if a.dlHead == len(a.dl) {
		a.dl = a.dl[:0]
		a.dlHead = 0
	}
	// Issue: closed loop up to the cap.
	for a.inflight < a.maxIn && a.next < len(a.order) {
		ri := a.order[a.next]
		a.next++
		a.inflight++
		r := &run.reqs[ri]
		r.remaining = int32(run.fanout)
		r.attempt = 1
		r.issued = round
		a.rearm(s, ri, round, false)
	}
}

// rearm sends the request's unanswered legs (all of them on first issue) and
// schedules its next deadline. Legs enter the network at the client node —
// one queue pass there models send-side serialization — and each send is an
// accounted injection.
func (a *shardApp) rearm(s *shard, ri int32, round int64, retryOnly bool) {
	run := a.run
	r := &run.reqs[ri]
	lo := int(ri) * run.fanout
	for j := 0; j < run.fanout; j++ {
		if retryOnly && run.done[lo+j] {
			continue
		}
		s.appInjected++
		s.send(r.client, slot{
			kind: slotReq,
			dst:  run.backends[lo+j],
			from: r.client,
			id:   ri,
		})
	}
	r.deadline = round + int64(run.w.DeadlineRounds)
	a.dl = append(a.dl, dlEntry{req: ri, deadline: r.deadline})
}

// nextTick reports the earliest round this shard's clients need the engine
// to run even if the network is idle: immediately if requests can be issued,
// else the earliest live deadline.
func (a *shardApp) nextTick() int64 {
	if a.inflight < a.maxIn && a.next < len(a.order) {
		return 0 // issue on the very next round
	}
	for i := a.dlHead; i < len(a.dl); i++ {
		ent := a.dl[i]
		r := &a.run.reqs[ent.req]
		if r.remaining >= 0 && r.deadline == ent.deadline {
			return ent.deadline
		}
	}
	return math.MaxInt64
}

// workloadDeliver runs on the destination node's shard when a req or resp
// arrives. Backends respond from their own node (one queue pass = service
// time); clients retire legs and complete or ignore-late.
func workloadDeliver(s *shard, node int32, m slot) {
	switch m.kind {
	case slotReq:
		s.appInjected++
		s.send(node, slot{kind: slotResp, dst: m.from, from: node, id: m.id})
	case slotResp:
		a := s.app
		run := a.run
		r := &run.reqs[m.id]
		if r.remaining < 0 {
			return // late response after completion or abandonment
		}
		lo := int(m.id) * run.fanout
		for j := 0; j < run.fanout; j++ {
			if run.backends[lo+j] == m.from && !run.done[lo+j] {
				run.done[lo+j] = true
				r.remaining--
				break
			}
		}
		if r.remaining == 0 {
			r.remaining = -1
			a.inflight--
			a.completed++
			lat := s.round - r.issued
			for int(lat) >= len(a.latHist) {
				a.latHist = append(a.latHist, 0)
			}
			a.latHist[lat]++
		}
	}
}
