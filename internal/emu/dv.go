package emu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/traffic"
)

// DVStats is the outcome of a distance-vector run.
type DVStats struct {
	// Rounds is the number of synchronous exchange rounds until no node's
	// table changed; Messages counts vector advertisements sent.
	Rounds, Messages int
	// Injected/Delivered/Dropped account the data phase (Dropped covers
	// packets whose destination had no learned route or whose TTL expired).
	Injected, Delivered, Dropped int
	// MaxHops is the largest cable-hop count among delivered packets.
	MaxHops int
}

// dvNode is the per-device protocol state. During a round, only the node's
// own goroutine mutates it (advertisements are read from immutable
// snapshots), so no lock is needed.
type dvNode struct {
	dist    []int32 // dist[server index] in cable hops
	nextHop []int32 // neighbor node id to forward toward each server
}

// dvEngine runs the protocol over the network. inf is the RIP-style
// unreachable metric: any distance at or above it counts as "no route",
// which bounds count-to-infinity after failures.
type dvEngine struct {
	topo      Forwarder
	nodes     []*dvNode
	neighbors [][]int
	failed    []bool
	serverIdx map[int]int // server node id -> dense index
	inf       int32
	changed   atomic.Int64
	messages  atomic.Int64
}

// RunDV emulates a distance-vector control plane (synchronous Bellman-Ford
// rounds: every live node advertises its distance table to its neighbors
// until quiescence) and then delivers the workload hop by hop using only the
// learned per-node forwarding tables. Unlike the static NextHop policy, the
// learned tables steer around failed devices, so connected pairs are served
// even under failures — at the cost of O(#servers) state per device and a
// convergence phase. Flow endpoints index the server list.
func RunDV(t Forwarder, flows []traffic.Flow, failedNodes ...int) (DVStats, error) {
	servers := t.Network().Servers()
	for _, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return DVStats{}, fmt.Errorf("emu: dv flow endpoints (%d,%d) out of %d servers",
				f.Src, f.Dst, len(servers))
		}
	}
	sess, err := NewDVSession(t)
	if err != nil {
		return DVStats{}, err
	}
	for _, node := range failedNodes {
		if err := sess.FailNode(node); err != nil {
			return DVStats{}, err
		}
	}
	stats := DVStats{Injected: len(flows)}
	if stats.Rounds, stats.Messages, err = sess.Converge(); err != nil {
		return DVStats{}, err
	}
	for _, f := range flows {
		hops, ok := sess.Deliver(f.Src, f.Dst)
		if !ok {
			stats.Dropped++
			continue
		}
		stats.Delivered++
		if hops > stats.MaxHops {
			stats.MaxHops = hops
		}
	}
	return stats, nil
}

// DVSession is a long-lived distance-vector control plane: converge, inject
// failures, reconverge, and deliver at any point. It models RIP-style
// dynamics — failure detection by neighbors, route invalidation, and
// bounded count-to-infinity via the unreachable metric.
type DVSession struct {
	e       *dvEngine
	servers []int
}

// NewDVSession prepares the protocol state for a built instance.
func NewDVSession(t Forwarder) (*DVSession, error) {
	net := t.Network()
	g := net.Graph()
	servers := net.Servers()
	e := &dvEngine{
		topo:      t,
		nodes:     make([]*dvNode, g.NumNodes()),
		neighbors: make([][]int, g.NumNodes()),
		failed:    make([]bool, g.NumNodes()),
		serverIdx: make(map[int]int, len(servers)),
		// Detours around failures can exceed the healthy diameter, so the
		// unreachable metric leaves room for them (RIP's 16 plays the same
		// role for diameter-15 networks).
		inf: 2 * (int32(t.Properties().DiameterLinks) + 2),
	}
	for i, s := range servers {
		e.serverIdx[s] = i
	}
	for id := range e.nodes {
		n := &dvNode{
			dist:    make([]int32, len(servers)),
			nextHop: make([]int32, len(servers)),
		}
		for i := range n.dist {
			n.dist[i] = e.inf
			n.nextHop[i] = -1
		}
		if idx, ok := e.serverIdx[id]; ok {
			n.dist[idx] = 0
			n.nextHop[idx] = int32(id)
		}
		e.nodes[id] = n
		e.neighbors[id] = g.Neighbors(id, nil)
	}
	return &DVSession{e: e, servers: servers}, nil
}

// Converge runs advertisement rounds until a quiet round, returning the
// round and message counts.
func (s *DVSession) Converge() (rounds, messages int, err error) {
	e := s.e
	before := e.messages.Load()
	maxRounds := 8 * int(e.inf)
	for round := 1; ; round++ {
		if round > maxRounds {
			return 0, 0, fmt.Errorf("emu: dv failed to converge in %d rounds", maxRounds)
		}
		e.changed.Store(0)
		e.round()
		if e.changed.Load() == 0 {
			return round, int(e.messages.Load() - before), nil
		}
	}
}

// FailNode powers a node off. Its neighbors detect the silence (modeled as
// an immediate hello timeout) and invalidate every route through it; the
// next Converge propagates the withdrawal.
func (s *DVSession) FailNode(node int) error {
	e := s.e
	if node < 0 || node >= len(e.failed) {
		return fmt.Errorf("emu: dv failed node %d out of range", node)
	}
	if e.failed[node] {
		return nil
	}
	e.failed[node] = true
	if idx, ok := e.serverIdx[node]; ok {
		// A dead server is unreachable even from itself.
		for _, n := range e.nodes {
			n.dist[idx] = e.inf
			n.nextHop[idx] = -1
		}
	}
	for _, nb := range e.neighbors[node] {
		n := e.nodes[nb]
		for i := range n.dist {
			if n.nextHop[i] == int32(node) {
				n.dist[i] = e.inf
				n.nextHop[i] = -1
			}
		}
	}
	return nil
}

// ReviveNode powers a node (back) on: it rejoins with a fresh vector (its
// own server entry if it is one) and its neighbors relearn routes through
// it on the next Converge — good news travels fast, so integrating new
// hardware reconverges quicker than withdrawing dead hardware.
func (s *DVSession) ReviveNode(node int) error {
	e := s.e
	if node < 0 || node >= len(e.failed) {
		return fmt.Errorf("emu: dv revive node %d out of range", node)
	}
	if !e.failed[node] {
		return nil
	}
	e.failed[node] = false
	n := e.nodes[node]
	for i := range n.dist {
		n.dist[i] = e.inf
		n.nextHop[i] = -1
	}
	if idx, ok := e.serverIdx[node]; ok {
		n.dist[idx] = 0
		n.nextHop[idx] = int32(node)
		// Other nodes marked the dead server unreachable; they relearn from
		// its advertisements.
	}
	return nil
}

// Deliver walks the learned tables between two server indices, returning the
// cable-hop count.
func (s *DVSession) Deliver(srcIdx, dstIdx int) (int, bool) {
	if srcIdx < 0 || srcIdx >= len(s.servers) || dstIdx < 0 || dstIdx >= len(s.servers) {
		return 0, false
	}
	return s.e.deliver(s.servers[srcIdx], s.servers[dstIdx], 4*int(s.e.inf))
}

// round runs one synchronous exchange in two phases: first every live node
// publishes an immutable snapshot of its vector (the advertisement), then
// every live node — concurrently, but reading only snapshots and writing
// only its own table in fixed neighbor order — relaxes. The result is
// deterministic: distances, next hops and the round count never depend on
// goroutine scheduling.
func (e *dvEngine) round() {
	snaps := make([][]int32, len(e.nodes))
	for id, n := range e.nodes {
		if e.failed[id] {
			continue
		}
		snap := make([]int32, len(n.dist))
		copy(snap, n.dist)
		snaps[id] = snap
	}
	var wg sync.WaitGroup
	for id := range e.nodes {
		if e.failed[id] {
			continue
		}
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := e.nodes[id]
			for _, nb := range e.neighbors[id] {
				if e.failed[nb] {
					continue
				}
				e.messages.Add(1)
				for i, d := range snaps[nb] {
					cand := d + 1
					if cand > e.inf {
						cand = e.inf
					}
					switch {
					case n.nextHop[i] == int32(nb):
						// Follow the successor even when its cost worsens
						// (the rule that propagates withdrawals).
						if n.dist[i] != cand {
							n.dist[i] = cand
							if cand >= e.inf {
								n.nextHop[i] = -1
							}
							e.changed.Add(1)
						}
					case cand < n.dist[i]:
						n.dist[i] = cand
						n.nextHop[i] = int32(nb)
						e.changed.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// deliver walks the learned tables from src to dst, returning the cable-hop
// count.
func (e *dvEngine) deliver(src, dst, ttl int) (int, bool) {
	dstIdx := e.serverIdx[dst]
	cur := src
	for hops := 0; hops <= ttl; hops++ {
		if cur == dst {
			return hops, true
		}
		if e.failed[cur] {
			return 0, false
		}
		n := e.nodes[cur]
		if n.dist[dstIdx] >= e.inf || n.nextHop[dstIdx] < 0 {
			return 0, false
		}
		cur = int(n.nextHop[dstIdx])
	}
	return 0, false
}
