package emu

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ChaosEvent is one step of a chaos schedule.
type ChaosEvent struct {
	// Kill is true for a failure, false for a revival.
	Kill bool
	// Node is the device affected.
	Node int
	// Rounds the control plane needed to reconverge after the event.
	Rounds int
	// Served is the count of ordered server pairs deliverable afterwards;
	// Connected is the ground-truth count from BFS. A correct control plane
	// keeps them equal at every step.
	Served, Connected int
}

// Chaos drives a DV session through `events` seeded random kill/revive
// steps against switches and servers alike (the chaos-monkey test for the
// control plane), reconverging and auditing delivery against ground-truth
// connectivity after every event. Dead servers are excluded from the audit
// as sources and destinations — the contract covers only pairs that could
// possibly talk. It returns the event log; the caller asserts
// Served == Connected throughout.
func Chaos(t Forwarder, events int, rng *rand.Rand) ([]ChaosEvent, error) {
	net := t.Network()
	sess, err := NewDVSession(t)
	if err != nil {
		return nil, err
	}
	if _, _, err := sess.Converge(); err != nil {
		return nil, err
	}
	pool := append(append([]int(nil), net.Switches()...), net.Servers()...)
	if len(pool) == 0 {
		return nil, fmt.Errorf("emu: chaos needs devices to torment")
	}
	down := map[int]bool{}
	view := graph.NewView(net.Graph())
	servers := net.Servers()

	log := make([]ChaosEvent, 0, events)
	for i := 0; i < events; i++ {
		ev := ChaosEvent{Node: pool[rng.Intn(len(pool))]}
		// Bias toward killing when few are down, reviving when many are.
		ev.Kill = rng.Float64() > float64(len(down))/float64(len(pool))*2
		if ev.Kill {
			if down[ev.Node] {
				ev.Kill = false // already down: revive instead
			}
		} else if !down[ev.Node] {
			ev.Kill = true // already up: kill instead
		}
		if ev.Kill {
			if err := sess.FailNode(ev.Node); err != nil {
				return nil, err
			}
			down[ev.Node] = true
			view.FailNode(ev.Node)
		} else {
			if err := sess.ReviveNode(ev.Node); err != nil {
				return nil, err
			}
			delete(down, ev.Node)
			// Views cannot un-fail; rebuild from the surviving set.
			view = graph.NewView(net.Graph())
			for node := range down {
				view.FailNode(node)
			}
		}
		if ev.Rounds, _, err = sess.Converge(); err != nil {
			return nil, err
		}
		for si := range servers {
			if down[servers[si]] {
				continue
			}
			res := net.Graph().BFS(servers[si], view)
			for di := range servers {
				if si == di || down[servers[di]] {
					continue
				}
				if res.Dist[servers[di]] != graph.Unreachable {
					ev.Connected++
				}
				if _, ok := sess.Deliver(si, di); ok {
					ev.Served++
				}
			}
		}
		log = append(log, ev)
	}
	return log, nil
}
