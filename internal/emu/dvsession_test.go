package emu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestDVSessionReconvergesAfterFailure(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	// Kill one level switch and reconverge.
	victim := net.Switches()[len(net.Switches())-1]
	if err := sess.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	rounds, msgs, err := sess.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 || msgs < 1 {
		t.Errorf("reconvergence did nothing: %d rounds, %d msgs", rounds, msgs)
	}
	// After reconvergence every still-connected pair must be served.
	view := graph.NewView(net.Graph())
	view.FailNode(victim)
	servers := net.Servers()
	for si := range servers {
		for di := range servers {
			if si == di {
				continue
			}
			wantOK := net.Graph().ShortestPath(servers[si], servers[di], view) != nil
			_, ok := sess.Deliver(si, di)
			if ok != wantOK {
				t.Fatalf("pair %s->%s: delivered=%v, connected=%v",
					net.Label(servers[si]), net.Label(servers[di]), ok, wantOK)
			}
		}
	}
}

func TestDVSessionFailedServerWithdrawn(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	dead := tp.Network().Servers()[3]
	if err := sess.FailNode(dead); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Deliver(0, 3); ok {
		t.Error("delivered to a dead server")
	}
	if _, ok := sess.Deliver(0, 2); !ok {
		t.Error("live pair unserved after unrelated server death")
	}
}

func TestDVSessionFailNodeIdempotentAndRange(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := sess.FailNode(0); err != nil {
		t.Errorf("second FailNode errored: %v", err)
	}
	if err := sess.FailNode(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, ok := sess.Deliver(-1, 0); ok {
		t.Error("out-of-range Deliver succeeded")
	}
}

func TestDVSessionSequentialFailures(t *testing.T) {
	// Kill switches one at a time, reconverging after each; delivery must
	// always match true connectivity.
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	view := graph.NewView(net.Graph())
	servers := net.Servers()
	for _, victim := range net.Switches()[:3] {
		if err := sess.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		view.FailNode(victim)
		if _, _, err := sess.Converge(); err != nil {
			t.Fatal(err)
		}
		for si := range servers {
			for di := range servers {
				if si == di {
					continue
				}
				wantOK := net.Graph().ShortestPath(servers[si], servers[di], view) != nil
				if _, ok := sess.Deliver(si, di); ok != wantOK {
					t.Fatalf("after killing %s: pair %d->%d delivered=%v connected=%v",
						net.Label(victim), si, di, ok, wantOK)
				}
			}
		}
	}
}

func TestDVSessionReviveNode(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	dead := net.Servers()[3]
	if err := sess.FailNode(dead); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Deliver(0, 3); ok {
		t.Fatal("delivered to dead server")
	}
	if err := sess.ReviveNode(dead); err != nil {
		t.Fatal(err)
	}
	if err := sess.ReviveNode(dead); err != nil {
		t.Errorf("double revive errored: %v", err)
	}
	if err := sess.ReviveNode(-1); err == nil {
		t.Error("out-of-range revive accepted")
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Deliver(0, 3); !ok {
		t.Error("revived server unreachable after reconvergence")
	}
	if _, ok := sess.Deliver(3, 0); !ok {
		t.Error("revived server cannot send after reconvergence")
	}
}

func TestDVSessionReviveIsFasterThanWithdrawal(t *testing.T) {
	// Good news travels fast: integrating a node must take no more rounds
	// than withdrawing it did.
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	sess, err := NewDVSession(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Converge(); err != nil {
		t.Fatal(err)
	}
	victim := tp.Network().Switches()[3]
	if err := sess.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	killRounds, _, err := sess.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ReviveNode(victim); err != nil {
		t.Fatal(err)
	}
	reviveRounds, _, err := sess.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if reviveRounds > killRounds {
		t.Errorf("revive took %d rounds > withdrawal's %d", reviveRounds, killRounds)
	}
}
