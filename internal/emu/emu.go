// Package emu runs a built ABCCC network as a distributed system in
// miniature: every server and switch is a goroutine, every NIC port a
// channel, and forwarding uses only the O(1) local state of the hop-by-hop
// policy (core.NextHop) — nothing consults a global view at runtime.
//
// The emulator demonstrates that the structure is *operable*, not merely
// well-shaped: a hello/ack sweep discovers live adjacencies the way a real
// control plane would, and the data phase delivers workloads hop by hop,
// with TTL protection, bounded inboxes, and per-cause drop accounting.
// Message handling is concurrent and the run is fully accounted: every
// injected packet is eventually counted as delivered or dropped, and all
// goroutines are joined before Run returns.
package emu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// Forwarder is a built structure whose devices can make hop-by-hop
// forwarding decisions from local state — what the emulator needs to run it
// as a distributed system. core.ABCCC and bcube.BCube implement it.
type Forwarder interface {
	Network() *topology.Network
	Properties() topology.Properties
	// NextHop returns the next node for a packet at cur heading to server
	// dst, using only cur's identity and the destination address.
	NextHop(cur, dst int) (int, error)
}

// Option configures an emulation run.
type Option interface {
	apply(*options)
}

type options struct {
	ttl       int
	inboxSize int
	failed    []int
}

type ttlOption int

func (o ttlOption) apply(opts *options) { opts.ttl = int(o) }

// WithTTL overrides the hop budget after which packets are discarded.
// The default is twice the structure's forwarding bound.
func WithTTL(hops int) Option { return ttlOption(hops) }

type inboxOption int

func (o inboxOption) apply(opts *options) { opts.inboxSize = int(o) }

// WithInboxSize overrides the per-node inbox capacity (default 1024).
// Packets arriving at a full inbox are dropped and accounted.
func WithInboxSize(n int) Option { return inboxOption(n) }

type failedOption []int

func (o failedOption) apply(opts *options) { opts.failed = append(opts.failed, o...) }

// WithFailedNodes marks nodes as failed: they drop every message silently,
// like powered-off hardware.
func WithFailedNodes(nodes ...int) Option { return failedOption(nodes) }

// Stats is the fully-accounted outcome of a run.
type Stats struct {
	// Injected counts data packets offered (one per flow).
	Injected int
	// Delivered counts packets that reached their destination server.
	Delivered int
	// DroppedFailed, DroppedTTL, DroppedOverflow count packets lost to dead
	// nodes, hop-budget exhaustion, and full inboxes respectively.
	DroppedFailed, DroppedTTL, DroppedOverflow int
	// HelloAcks counts adjacencies confirmed by the discovery sweep; on a
	// healthy network this is exactly 2x the number of cables.
	HelloAcks int
	// MaxHops is the largest switch-hop count among delivered packets;
	// HopHistogram[h] counts deliveries that took h hops.
	MaxHops      int
	HopHistogram []int
}

// Accounted reports whether every injected packet was delivered or dropped.
func (s Stats) Accounted() bool {
	return s.Injected == s.Delivered+s.DroppedFailed+s.DroppedTTL+s.DroppedOverflow
}

type msgKind uint8

const (
	msgHello msgKind = iota + 1
	msgAck
	msgData
)

type message struct {
	kind msgKind
	from int // sender node (hello/ack)
	dst  int // destination server (data)
	hops int // switch hops so far (data)
}

// emulator is the per-run state; one goroutine per node.
type emulator struct {
	topo   Forwarder
	inbox  []chan message
	failed []bool
	opts   options

	nodes    sync.WaitGroup
	inflight sync.WaitGroup

	delivered       atomic.Int64
	droppedFailed   atomic.Int64
	droppedTTL      atomic.Int64
	droppedOverflow atomic.Int64
	helloAcks       atomic.Int64

	mu   sync.Mutex
	hops map[int]int // delivered hop count -> packets
}

// Run boots the network, performs the hello/ack discovery sweep, injects one
// data packet per flow (flow endpoints index the server list), drains the
// system, shuts every node down, and returns the accounting.
func Run(t Forwarder, flows []traffic.Flow, opts ...Option) (Stats, error) {
	o := options{
		ttl:       2 * (t.Properties().DiameterLinks + 3),
		inboxSize: 1024,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.ttl < 1 || o.inboxSize < 1 {
		return Stats{}, fmt.Errorf("emu: ttl and inbox size must be positive")
	}
	net := t.Network()
	servers := net.Servers()
	for _, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return Stats{}, fmt.Errorf("emu: flow endpoints (%d,%d) out of %d servers",
				f.Src, f.Dst, len(servers))
		}
	}

	e := &emulator{
		topo:   t,
		inbox:  make([]chan message, net.Graph().NumNodes()),
		failed: make([]bool, net.Graph().NumNodes()),
		opts:   o,
		hops:   make(map[int]int),
	}
	for _, node := range o.failed {
		if node < 0 || node >= len(e.failed) {
			return Stats{}, fmt.Errorf("emu: failed node %d out of range", node)
		}
		e.failed[node] = true
	}
	for id := range e.inbox {
		e.inbox[id] = make(chan message, o.inboxSize)
		e.nodes.Add(1)
		go e.nodeLoop(id)
	}

	// Discovery sweep: every live node greets every neighbor.
	g := net.Graph()
	for id := range e.inbox {
		if e.failed[id] {
			continue
		}
		for _, nb := range g.Neighbors(id, nil) {
			e.send(nb, message{kind: msgHello, from: id})
		}
	}
	e.inflight.Wait()

	// Data phase: one packet per flow, injected at its source server.
	for _, f := range flows {
		e.send(servers[f.Src], message{kind: msgData, dst: servers[f.Dst]})
	}
	e.inflight.Wait()

	// Shutdown: no messages are in flight, so closing inboxes is safe.
	for id := range e.inbox {
		close(e.inbox[id])
	}
	e.nodes.Wait()

	stats := Stats{
		Injected:        len(flows),
		Delivered:       int(e.delivered.Load()),
		DroppedFailed:   int(e.droppedFailed.Load()),
		DroppedTTL:      int(e.droppedTTL.Load()),
		DroppedOverflow: int(e.droppedOverflow.Load()),
		HelloAcks:       int(e.helloAcks.Load()),
	}
	for h, c := range e.hops {
		if h > stats.MaxHops {
			stats.MaxHops = h
		}
		for h >= len(stats.HopHistogram) {
			stats.HopHistogram = append(stats.HopHistogram, 0)
		}
		stats.HopHistogram[h] += c
	}
	return stats, nil
}

// nodeLoop consumes the node's inbox until shutdown.
func (e *emulator) nodeLoop(id int) {
	defer e.nodes.Done()
	for m := range e.inbox[id] {
		e.handle(id, m)
		e.inflight.Done()
	}
}

// handle processes one message at node id. Any messages it emits are added
// to the in-flight count before this one is released, so the drain barrier
// in Run never fires early.
func (e *emulator) handle(id int, m message) {
	if e.failed[id] {
		if m.kind == msgData {
			e.droppedFailed.Add(1)
		}
		return
	}
	switch m.kind {
	case msgHello:
		e.send(m.from, message{kind: msgAck, from: id})
	case msgAck:
		e.helloAcks.Add(1)
	case msgData:
		e.forward(id, m)
	}
}

// forward applies the hop-by-hop policy at a live node.
func (e *emulator) forward(id int, m message) {
	net := e.topo.Network()
	if net.IsServer(id) && id == m.dst {
		e.delivered.Add(1)
		e.mu.Lock()
		e.hops[m.hops]++
		e.mu.Unlock()
		return
	}
	if m.hops >= e.opts.ttl {
		e.droppedTTL.Add(1)
		return
	}
	next, err := e.topo.NextHop(id, m.dst)
	if err != nil {
		// Unroutable destination: impossible after Run's validation, but a
		// real device would also discard such a packet.
		e.droppedTTL.Add(1)
		return
	}
	hops := m.hops
	if !net.IsServer(id) {
		hops++ // leaving a switch completes one switch hop
	}
	e.send(next, message{kind: msgData, dst: m.dst, hops: hops})
}

// send enqueues a message, dropping (with accounting for data packets) when
// the receiver's inbox is full.
func (e *emulator) send(to int, m message) {
	e.inflight.Add(1)
	select {
	case e.inbox[to] <- m:
	default:
		e.inflight.Done()
		if m.kind == msgData {
			e.droppedOverflow.Add(1)
		}
	}
}
