// Package emu runs a built ABCCC network as a distributed system in
// miniature: every server and switch is a goroutine, every NIC port a
// channel, and forwarding uses only the O(1) local state of the hop-by-hop
// policy (core.NextHop) — nothing consults a global view at runtime.
//
// The emulator demonstrates that the structure is *operable*, not merely
// well-shaped: a hello/ack sweep discovers live adjacencies the way a real
// control plane would, and the data phase delivers workloads hop by hop,
// with TTL protection, bounded inboxes, and per-cause drop accounting.
// Message handling is concurrent and the run is fully accounted: every
// injected packet is eventually counted as delivered or dropped, and all
// goroutines are joined before Run returns.
package emu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Forwarder is a built structure whose devices can make hop-by-hop
// forwarding decisions from local state — what the emulator needs to run it
// as a distributed system. core.ABCCC and bcube.BCube implement it.
type Forwarder interface {
	Network() *topology.Network
	Properties() topology.Properties
	// NextHop returns the next node for a packet at cur heading to server
	// dst, using only cur's identity and the destination address.
	NextHop(cur, dst int) (int, error)
}

// Option configures an emulation run.
type Option interface {
	apply(*options)
}

type options struct {
	ttl       int
	inboxSize int
	failed    []int
	metrics   *obs.Registry
	trace     *obs.Tracer

	// Sharded-engine knobs (engine.go); the goroutine engine ignores them.
	shards      int
	workers     int
	retryRounds int
	series      *obs.Series
}

type ttlOption int

func (o ttlOption) apply(opts *options) { opts.ttl = int(o) }

// WithTTL overrides the hop budget after which packets are discarded.
// The default is twice the structure's forwarding bound.
func WithTTL(hops int) Option { return ttlOption(hops) }

type inboxOption int

func (o inboxOption) apply(opts *options) { opts.inboxSize = int(o) }

// WithInboxSize overrides the per-node inbox capacity (default 1024).
// Packets arriving at a full inbox are dropped and accounted.
func WithInboxSize(n int) Option { return inboxOption(n) }

type failedOption []int

func (o failedOption) apply(opts *options) { opts.failed = append(opts.failed, o...) }

// WithFailedNodes marks nodes as failed: they drop every message silently,
// like powered-off hardware.
func WithFailedNodes(nodes ...int) Option { return failedOption(nodes) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(opts *options) { opts.metrics = o.reg }

// WithMetrics attaches an instrumentation registry: the run records
// per-cause drop counters, delivered/ack counters, an inbox-occupancy
// histogram sampled at every send, and a delivered hop-count histogram (see
// the Metric* constants). The default (nil) costs one pointer test per
// update.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg} }

type traceOption struct{ tr *obs.Tracer }

func (o traceOption) apply(opts *options) { opts.trace = o.tr }

// WithTrace attaches an event tracer: every data packet records "hop",
// "deliver" and per-cause "drop" events stamped with wall-clock nanoseconds
// since the run started. Packet IDs are the flow indices.
func WithTrace(tr *obs.Tracer) Option { return traceOption{tr} }

// Instrument names registered by Run on the WithMetrics registry.
const (
	MetricDelivered       = "emu_delivered"
	MetricDroppedFailed   = "emu_dropped_failed"
	MetricDroppedTTL      = "emu_dropped_ttl"
	MetricDroppedOverflow = "emu_dropped_overflow"
	MetricHelloAcks       = "emu_hello_acks"
	MetricInboxOccupancy  = "emu_inbox_occupancy_msgs"
	MetricHops            = "emu_hops"
)

// Stats is the fully-accounted outcome of a run.
type Stats struct {
	// Injected counts data packets offered (one per flow).
	Injected int
	// Delivered counts packets that reached their destination server.
	Delivered int
	// DroppedFailed, DroppedTTL, DroppedOverflow count packets lost to dead
	// nodes, hop-budget exhaustion, and full inboxes respectively.
	DroppedFailed, DroppedTTL, DroppedOverflow int
	// HelloAcks counts adjacencies confirmed by the discovery sweep; on a
	// healthy network this is exactly 2x the number of cables.
	HelloAcks int
	// MaxHops is the largest switch-hop count among delivered packets;
	// HopHistogram[h] counts deliveries that took h hops.
	MaxHops      int
	HopHistogram []int
	// Messages counts every message handled at a node — hellos, acks, data
	// and serving traffic alike. It is the emulator's throughput unit:
	// messages handled per wall second is what the engine comparison in
	// cmd/benchsuite reports.
	Messages int
	// Rounds counts the sharded engine's execution rounds (including
	// fast-forwarded idle gaps as one round each); 0 for the goroutine
	// engine, whose schedule is scheduler-driven rather than round-based.
	Rounds int
}

// Accounted reports whether every injected packet was delivered or dropped.
func (s Stats) Accounted() bool {
	return s.Injected == s.Delivered+s.DroppedFailed+s.DroppedTTL+s.DroppedOverflow
}

type msgKind uint8

const (
	msgHello msgKind = iota + 1
	msgAck
	msgData
)

// message is the wire format between device goroutines. Fields are int32 to
// keep the struct at 20 bytes — every node's inbox channel buffers
// inboxSize of these, so message size directly scales the emulator's
// boot-time allocation footprint (node ids and hop counts are far below
// 2^31 at any buildable scale).
type message struct {
	from int32 // sender node (hello/ack)
	dst  int32 // destination server (data)
	hops int32 // switch hops so far (data)
	id   int32 // packet id for tracing (data: the flow index)
	kind msgKind
}

// emulator is the per-run state; one goroutine per node.
type emulator struct {
	topo   Forwarder
	inbox  []chan message
	failed []bool
	opts   options

	// sendFn is selected once at boot: the occupancy-sampling variant only
	// when the histogram is armed, so uninstrumented runs carry no per-send
	// metrics branch on the hot path.
	sendFn func(to int, m message)

	// handled[id] is node id's message count, written once when its loop
	// exits — per-node tallies instead of a shared atomic on the hot path.
	handled []int64

	nodes    sync.WaitGroup
	inflight sync.WaitGroup

	delivered       atomic.Int64
	droppedFailed   atomic.Int64
	droppedTTL      atomic.Int64
	droppedOverflow atomic.Int64
	helloAcks       atomic.Int64

	mu   sync.Mutex
	hops map[int]int // delivered hop count -> packets

	// Hoisted nil-able instruments (WithMetrics / WithTrace); updates are
	// nil-check no-ops when instrumentation is off.
	cDelivered, cFailed, cTTL, cOverflow, cAcks *obs.Counter
	hInbox, hHops                               *obs.Histogram
	tracer                                      *obs.Tracer
	start                                       time.Time
}

// sinceNs stamps trace events with wall-clock time since the run booted.
func (e *emulator) sinceNs() int64 { return int64(time.Since(e.start)) }

// Run boots the network, performs the hello/ack discovery sweep, injects one
// data packet per flow (flow endpoints index the server list), drains the
// system, shuts every node down, and returns the accounting.
func Run(t Forwarder, flows []traffic.Flow, opts ...Option) (Stats, error) {
	o := options{
		ttl:       2 * (t.Properties().DiameterLinks + 3),
		inboxSize: 1024,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.ttl < 1 || o.inboxSize < 1 {
		return Stats{}, fmt.Errorf("emu: ttl and inbox size must be positive")
	}
	net := t.Network()
	servers := net.Servers()
	for _, f := range flows {
		if f.Src < 0 || f.Src >= len(servers) || f.Dst < 0 || f.Dst >= len(servers) {
			return Stats{}, fmt.Errorf("emu: flow endpoints (%d,%d) out of %d servers",
				f.Src, f.Dst, len(servers))
		}
	}

	e := &emulator{
		topo:       t,
		inbox:      make([]chan message, net.Graph().NumNodes()),
		failed:     make([]bool, net.Graph().NumNodes()),
		handled:    make([]int64, net.Graph().NumNodes()),
		opts:       o,
		hops:       make(map[int]int),
		cDelivered: o.metrics.Counter(MetricDelivered),
		cFailed:    o.metrics.Counter(MetricDroppedFailed),
		cTTL:       o.metrics.Counter(MetricDroppedTTL),
		cOverflow:  o.metrics.Counter(MetricDroppedOverflow),
		cAcks:      o.metrics.Counter(MetricHelloAcks),
		hInbox:     o.metrics.Histogram(MetricInboxOccupancy),
		hHops:      o.metrics.Histogram(MetricHops),
		tracer:     o.trace,
		start:      time.Now(),
	}
	for _, node := range o.failed {
		if node < 0 || node >= len(e.failed) {
			return Stats{}, fmt.Errorf("emu: failed node %d out of range", node)
		}
		e.failed[node] = true
	}
	e.sendFn = e.sendPlain
	if e.hInbox != nil {
		e.sendFn = e.sendObserved
	}
	for id := range e.inbox {
		e.inbox[id] = make(chan message, o.inboxSize)
		e.nodes.Add(1)
		go e.nodeLoop(id)
	}

	// Discovery sweep: every live node greets every neighbor.
	g := net.Graph()
	for id := range e.inbox {
		if e.failed[id] {
			continue
		}
		for _, nb := range g.Neighbors(id, nil) {
			e.sendFn(nb, message{kind: msgHello, from: int32(id)})
		}
	}
	e.inflight.Wait()

	// Data phase: one packet per flow, injected at its source server.
	for i, f := range flows {
		e.sendFn(servers[f.Src], message{kind: msgData, dst: int32(servers[f.Dst]), id: int32(i)})
	}
	e.inflight.Wait()

	// Shutdown: no messages are in flight, so closing inboxes is safe.
	for id := range e.inbox {
		close(e.inbox[id])
	}
	e.nodes.Wait()

	stats := Stats{
		Injected:        len(flows),
		Delivered:       int(e.delivered.Load()),
		DroppedFailed:   int(e.droppedFailed.Load()),
		DroppedTTL:      int(e.droppedTTL.Load()),
		DroppedOverflow: int(e.droppedOverflow.Load()),
		HelloAcks:       int(e.helloAcks.Load()),
	}
	for _, n := range e.handled {
		stats.Messages += int(n)
	}
	for h, c := range e.hops {
		if h > stats.MaxHops {
			stats.MaxHops = h
		}
		for h >= len(stats.HopHistogram) {
			stats.HopHistogram = append(stats.HopHistogram, 0)
		}
		stats.HopHistogram[h] += c
	}
	return stats, nil
}

// nodeLoop consumes the node's inbox until shutdown.
func (e *emulator) nodeLoop(id int) {
	defer e.nodes.Done()
	var n int64
	for m := range e.inbox[id] {
		e.handle(id, m)
		e.inflight.Done()
		n++
	}
	e.handled[id] = n
}

// handle processes one message at node id. Any messages it emits are added
// to the in-flight count before this one is released, so the drain barrier
// in Run never fires early.
func (e *emulator) handle(id int, m message) {
	if e.failed[id] {
		if m.kind == msgData {
			e.droppedFailed.Add(1)
			e.cFailed.Inc()
			if e.tracer != nil {
				e.tracer.Record(obs.Event{TimeNs: e.sinceNs(), Kind: "drop",
					ID: int64(m.id), Node: id, Hop: int(m.hops), Detail: "failed"})
			}
		}
		return
	}
	switch m.kind {
	case msgHello:
		e.sendFn(int(m.from), message{kind: msgAck, from: int32(id)})
	case msgAck:
		e.helloAcks.Add(1)
		e.cAcks.Inc()
	case msgData:
		e.forward(id, m)
	}
}

// forward applies the hop-by-hop policy at a live node.
func (e *emulator) forward(id int, m message) {
	net := e.topo.Network()
	if net.IsServer(id) && id == int(m.dst) {
		e.delivered.Add(1)
		e.cDelivered.Inc()
		e.hHops.Observe(int64(m.hops))
		if e.tracer != nil {
			e.tracer.Record(obs.Event{TimeNs: e.sinceNs(), Kind: "deliver",
				ID: int64(m.id), Node: id, Hop: int(m.hops)})
		}
		e.mu.Lock()
		e.hops[int(m.hops)]++
		e.mu.Unlock()
		return
	}
	if int(m.hops) >= e.opts.ttl {
		e.droppedTTL.Add(1)
		e.cTTL.Inc()
		if e.tracer != nil {
			e.tracer.Record(obs.Event{TimeNs: e.sinceNs(), Kind: "drop",
				ID: int64(m.id), Node: id, Hop: int(m.hops), Detail: "ttl"})
		}
		return
	}
	next, err := e.topo.NextHop(id, int(m.dst))
	if err != nil {
		// Unroutable destination: impossible after Run's validation, but a
		// real device would also discard such a packet.
		e.droppedTTL.Add(1)
		e.cTTL.Inc()
		return
	}
	if e.tracer != nil {
		e.tracer.Record(obs.Event{TimeNs: e.sinceNs(), Kind: "hop",
			ID: int64(m.id), Node: id, Hop: int(m.hops)})
	}
	hops := m.hops
	if !net.IsServer(id) {
		hops++ // leaving a switch completes one switch hop
	}
	e.sendFn(next, message{kind: msgData, dst: m.dst, hops: hops, id: m.id})
}

// sendObserved is the armed-metrics send path: it samples the receiver's
// inbox occupancy, then delegates. Selected at boot only when the histogram
// exists, so sendPlain never re-tests it per message.
func (e *emulator) sendObserved(to int, m message) {
	e.hInbox.Observe(int64(len(e.inbox[to])))
	e.sendPlain(to, m)
}

// sendPlain enqueues a message, dropping (with accounting for data packets)
// when the receiver's inbox is full.
func (e *emulator) sendPlain(to int, m message) {
	e.inflight.Add(1)
	select {
	case e.inbox[to] <- m:
	default:
		e.inflight.Done()
		if m.kind == msgData {
			e.droppedOverflow.Add(1)
			e.cOverflow.Inc()
			if e.tracer != nil {
				e.tracer.Record(obs.Event{TimeNs: e.sinceNs(), Kind: "drop",
					ID: int64(m.id), Node: to, Hop: int(m.hops), Detail: "overflow"})
			}
		}
	}
}
