package emu

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestChaosRunAccountedWithTracing is the satellite contract: under chaotic
// conditions (random dead switches, starved inboxes, tight TTL) with full
// instrumentation attached, every injected packet must still be accounted as
// delivered or dropped, and the obs counters must agree with the Stats the
// emulator computes internally.
func TestChaosRunAccountedWithTracing(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	net := tp.Network()
	rng := rand.New(rand.NewSource(42))

	for round := 0; round < 5; round++ {
		// Kill a random third of the switches.
		switches := net.Switches()
		var dead []int
		for _, sw := range switches {
			if rng.Intn(3) == 0 {
				dead = append(dead, sw)
			}
		}
		flows := traffic.Uniform(net.NumServers(), 4*net.NumServers(), rng)

		reg := obs.NewRegistry()
		tracer := obs.NewTracer(1 << 14)
		stats, err := Run(tp, flows,
			WithFailedNodes(dead...),
			WithInboxSize(2), // starved inboxes force overflow drops
			WithMetrics(reg),
			WithTrace(tracer))
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Accounted() {
			t.Fatalf("round %d: not accounted: %+v", round, stats)
		}
		if stats.Injected != len(flows) {
			t.Fatalf("round %d: injected %d, want %d", round, stats.Injected, len(flows))
		}

		// The registry must mirror the internal accounting exactly.
		for name, want := range map[string]int{
			MetricDelivered:       stats.Delivered,
			MetricDroppedFailed:   stats.DroppedFailed,
			MetricDroppedTTL:      stats.DroppedTTL,
			MetricDroppedOverflow: stats.DroppedOverflow,
			MetricHelloAcks:       stats.HelloAcks,
		} {
			if got := reg.Counter(name).Value(); got != int64(want) {
				t.Errorf("round %d: %s = %d, want %d", round, name, got, want)
			}
		}
		if got := reg.Histogram(MetricHops).Snapshot().Count; got != int64(stats.Delivered) {
			t.Errorf("round %d: hop histogram count %d, want %d", round, got, stats.Delivered)
		}

		// Trace events must cover every terminal outcome (the ring is sized
		// not to wrap; verify that assumption holds).
		if tracer.Dropped() != 0 {
			t.Fatalf("round %d: trace ring wrapped; enlarge for this test", round)
		}
		terminal := map[string]int{}
		for _, ev := range tracer.Events() {
			if ev.Kind == "deliver" || ev.Kind == "drop" {
				terminal[ev.Kind]++
			}
		}
		wantTerminal := stats.Delivered + stats.DroppedFailed + stats.DroppedTTL + stats.DroppedOverflow
		if got := terminal["deliver"] + terminal["drop"]; got != wantTerminal {
			t.Errorf("round %d: %d terminal trace events, want %d", round, got, wantTerminal)
		}
	}
}

// TestRunStatsUnchangedByInstrumentation pins that attaching obs does not
// perturb the emulator's observable accounting on a healthy network.
func TestRunStatsUnchangedByInstrumentation(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(5))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)

	plain, err := Run(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	instrumented, err := Run(tp, flows, WithMetrics(reg), WithTrace(obs.NewTracer(1<<14)))
	if err != nil {
		t.Fatal(err)
	}
	// Delivery on a healthy network is deterministic even though message
	// interleaving is not.
	if plain.Delivered != instrumented.Delivered || plain.HelloAcks != instrumented.HelloAcks {
		t.Errorf("instrumentation changed accounting: %+v vs %+v", plain, instrumented)
	}
	occ := reg.Histogram(MetricInboxOccupancy).Snapshot()
	if occ.Count == 0 {
		t.Error("inbox occupancy histogram recorded nothing")
	}
}

func benchEmuRun(b *testing.B, opts ...Option) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	rng := rand.New(rand.NewSource(1))
	flows := traffic.Permutation(tp.Network().NumServers(), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Run(tp, flows, opts...)
		if err != nil || !stats.Accounted() {
			b.Fatalf("stats %+v err %v", stats, err)
		}
	}
}

// BenchmarkRunInstrumentationOff is the emulator hot path with telemetry
// disabled; compare against BenchmarkRunMetrics for the enabled cost.
func BenchmarkRunInstrumentationOff(b *testing.B) { benchEmuRun(b) }

func BenchmarkRunMetrics(b *testing.B) {
	benchEmuRun(b, WithMetrics(obs.NewRegistry()))
}

// benchSendPath isolates the old engine's per-send cost: one sink node
// whose loop drains the channel while the benchmark loop sends. The
// armed-off variant pins that uninstrumented sends do no histogram work at
// all — occupancy sampling exists only on the sendObserved path selected
// once at boot, not as a branch inside the send loop.
func benchSendPath(b *testing.B, armed bool) {
	e := &emulator{
		inbox:   []chan message{make(chan message, 1024)},
		failed:  make([]bool, 1),
		handled: make([]int64, 1),
	}
	if armed {
		e.hInbox = obs.NewRegistry().Histogram(MetricInboxOccupancy)
	}
	e.sendFn = e.sendPlain
	if e.hInbox != nil {
		e.sendFn = e.sendObserved
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range e.inbox[0] {
			e.inflight.Done()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sendFn(0, message{kind: msgAck, from: 0})
	}
	e.inflight.Wait()
	b.StopTimer()
	close(e.inbox[0])
	<-done
}

func BenchmarkSendPathArmedOff(b *testing.B) { benchSendPath(b, false) }
func BenchmarkSendPathArmedOn(b *testing.B)  { benchSendPath(b, true) }
