package emu

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func TestDVLearnsShortestPaths(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	n := net.NumServers()
	flows := traffic.AllToAll(n)
	stats, err := RunDV(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(flows) || stats.Dropped != 0 {
		t.Fatalf("delivered %d/%d, dropped %d", stats.Delivered, len(flows), stats.Dropped)
	}
	// Learned tables must give exactly shortest paths: max hop equals the
	// graph diameter between servers.
	servers := net.Servers()
	worst := 0
	for _, src := range servers {
		ecc, ok := net.Graph().Eccentricity(src, servers, nil)
		if !ok {
			t.Fatal("disconnected")
		}
		if ecc > worst {
			worst = ecc
		}
	}
	if stats.MaxHops != worst {
		t.Errorf("DV max hops %d, graph diameter %d", stats.MaxHops, worst)
	}
}

func TestDVConvergesWithinDiameterRounds(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	stats, err := RunDV(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bellman-Ford needs at most diameter rounds to stabilize plus one
	// quiet round to detect it.
	bound := tp.Properties().DiameterLinks + 1
	if stats.Rounds > bound {
		t.Errorf("converged in %d rounds, bound %d", stats.Rounds, bound)
	}
	if stats.Messages == 0 {
		t.Error("no advertisements counted")
	}
}

func TestDVDeterministic(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	flows := traffic.Permutation(tp.Network().NumServers(), rand.New(rand.NewSource(1)))
	a, err := RunDV(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDV(tp, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic DV: %+v vs %+v", a, b)
	}
}

func TestDVRoutesAroundFailuresUnlikeStaticPolicy(t *testing.T) {
	// Kill one level switch. The static NextHop policy drops every packet
	// whose deterministic path crosses it (see TestFailedSwitchDropsOnPath);
	// the learned tables must still serve every connected pair.
	tp := core.MustBuild(core.Config{N: 3, K: 1, P: 2})
	net := tp.Network()
	victim := net.Switches()[len(net.Switches())-1]

	view := graph.NewView(net.Graph())
	view.FailNode(victim)
	n := net.NumServers()
	flows := traffic.AllToAll(n)
	servers := net.Servers()
	connected := 0
	for _, f := range flows {
		if net.Graph().ShortestPath(servers[f.Src], servers[f.Dst], view) != nil {
			connected++
		}
	}

	stats, err := RunDV(tp, flows, victim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != connected {
		t.Errorf("DV delivered %d, want every connected pair %d", stats.Delivered, connected)
	}

	// Contrast: the static policy loses traffic through the dead switch.
	static, err := Run(tp, flows, WithFailedNodes(victim))
	if err != nil {
		t.Fatal(err)
	}
	if static.DroppedFailed == 0 {
		t.Error("static policy unexpectedly lost nothing")
	}
	if stats.Delivered <= static.Delivered {
		t.Errorf("DV (%d) should out-deliver static policy (%d) under failures",
			stats.Delivered, static.Delivered)
	}
}

func TestDVFailedEndpointsDrop(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 1, P: 2})
	net := tp.Network()
	dead := net.Servers()[0]
	stats, err := RunDV(tp, []traffic.Flow{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 0 || stats.Dropped != 2 {
		t.Errorf("stats = %+v, want both flows dropped", stats)
	}
}

func TestDVErrors(t *testing.T) {
	tp := core.MustBuild(core.Config{N: 2, K: 0, P: 2})
	if _, err := RunDV(tp, []traffic.Flow{{Src: 0, Dst: 42}}); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if _, err := RunDV(tp, nil, 999); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}
