package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// failureRates is the sweep of the fault-tolerance figures (0% .. 20%).
var failureRates = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20}

// faultSubject is a structure under test plus its fault-routing function.
type faultSubject struct {
	name  string
	t     topology.Topology
	route func(src, dst int, view *graph.View) (topology.Path, error)
}

func faultSubjects() []faultSubject {
	a := core.MustBuild(core.Config{N: 4, K: 2, P: 3}) // 128 servers
	b := bcube.MustBuild(bcube.Config{N: 4, K: 2})     // 64 servers
	return []faultSubject{
		{name: "ABCCC(4,2,3) adaptive", t: a, route: a.RouteAvoiding},
		{name: "ABCCC(4,2,3) multipath", t: a, route: a.RouteAvoidingMultipath},
		{name: "BCube(4,2)", t: b, route: b.RouteAvoiding},
	}
}

// F7ServerFailures regenerates the server-failure figure: the fraction of
// sampled server pairs whose fault-tolerant route fails ("miss") and the
// fraction genuinely disconnected (or with a failed endpoint), as server
// failure rates sweep 0-20%. Server-centric structures lose pairs mostly
// through endpoint failure; the gap between miss and disconnected is the
// routing algorithm's own inefficiency.
func F7ServerFailures(w io.Writer) error {
	return failureSweep(w, failure.Servers)
}

// F8SwitchFailures regenerates the switch-failure figure.
func F8SwitchFailures(w io.Writer) error {
	return failureSweep(w, failure.Switches)
}

// F9LinkFailures regenerates the link-failure figure.
func F9LinkFailures(w io.Writer) error {
	return failureSweep(w, failure.Links)
}

func failureSweep(w io.Writer, kind failure.Kind) error {
	const (
		pairsPerTrial = 200
		trials        = 3
	)
	tw := table(w)
	fmt.Fprintln(tw, "structure\tfail rate\tmiss ratio\tdisconnected")
	for _, sub := range faultSubjects() {
		net := sub.t.Network()
		for _, rate := range failureRates {
			var missSum, discSum float64
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*rate) + int64(trial)))
				view := failure.Inject(net, kind, rate, rng)
				pairs := failure.SamplePairs(net, pairsPerTrial, rng)
				miss, disc := metrics.ConnectionFailureRatio(net, view, sub.route, pairs)
				missSum += miss
				discSum += disc
			}
			fmt.Fprintf(tw, "%s\t%.0f%%\t%.4f\t%.4f\n",
				sub.name, rate*100, missSum/trials, discSum/trials)
		}
	}
	return tw.Flush()
}
