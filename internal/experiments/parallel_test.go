package experiments

import (
	"bytes"
	"testing"
)

// TestRunAllParallelMatchesSerial is the determinism contract of the
// parallel engine: for every worker count the parallel runner's output must
// be byte-for-byte identical to the serial RunAll over all experiments.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	var serial bytes.Buffer
	if err := RunAll(&serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		var par bytes.Buffer
		if err := RunAllParallel(&par, workers); err != nil {
			t.Fatalf("RunAllParallel(%d): %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Fatalf("RunAllParallel(%d) output differs from serial RunAll (%d vs %d bytes)",
				workers, par.Len(), serial.Len())
		}
	}
}

func TestRunAllTimedCoversEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	timings, err := RunAllTimed(nullWriter{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := All()
	if len(timings) != len(all) {
		t.Fatalf("got %d timings, want %d", len(timings), len(all))
	}
	for i, tm := range timings {
		if tm.ID != all[i].ID {
			t.Errorf("timing %d is %s, want %s (presentation order)", i, tm.ID, all[i].ID)
		}
		if tm.Seconds < 0 {
			t.Errorf("timing %s negative: %f", tm.ID, tm.Seconds)
		}
	}
}

func TestAllReturnsACopy(t *testing.T) {
	a := All()
	a[0] = Experiment{ID: "clobbered"}
	if b := All(); b[0].ID == "clobbered" {
		t.Error("mutating All()'s result leaked into the registry")
	}
	if NumExperiments() != len(All()) {
		t.Errorf("NumExperiments %d != len(All()) %d", NumExperiments(), len(All()))
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
