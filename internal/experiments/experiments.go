// Package experiments implements the paper's evaluation suite. Each
// experiment regenerates one table or figure of the reconstructed evaluation
// as a plain-text table (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results). The same functions back the
// cmd/benchsuite binary and the repository-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (T1..T2, F1..F14).
	ID string
	// Title is the paper-style caption.
	Title string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer) error
}

// registry holds the experiment list in presentation order plus an ID index.
// It is built exactly once: All() used to rebuild the slice on every call and
// ByID scanned it linearly, which put a few thousand allocations on the hot
// path of every benchmark loop.
type registry struct {
	list []Experiment
	byID map[string]Experiment
}

var experimentRegistry = sync.OnceValue(func() *registry {
	list := []Experiment{
		{ID: "T1", Title: "Topological properties of ABCCC vs existing structures", Run: T1Properties},
		{ID: "T2", Title: "Network size vs (n, k, p)", Run: T2NetworkSize},
		{ID: "T3", Title: "Wiring complexity (cables and ports per server)", Run: T3WiringComplexity},
		{ID: "F1", Title: "Diameter vs number of servers", Run: F1Diameter},
		{ID: "F2", Title: "Average path length (BFS vs routed)", Run: F2ASPL},
		{ID: "F3", Title: "Bisection width: analytic vs exact min-cut", Run: F3Bisection},
		{ID: "F4", Title: "Interconnect CapEx vs number of servers", Run: F4CapEx},
		{ID: "F5", Title: "Permutation strategy: path length and link load", Run: F5Permutation},
		{ID: "F6", Title: "Aggregate bottleneck throughput (ABT)", Run: F6ABT},
		{ID: "F7", Title: "Connection failure ratio vs server failures", Run: F7ServerFailures},
		{ID: "F8", Title: "Connection failure ratio vs switch failures", Run: F8SwitchFailures},
		{ID: "F9", Title: "Connection failure ratio vs link failures", Run: F9LinkFailures},
		{ID: "F10", Title: "Path-length distribution and parallel paths", Run: F10ParallelPaths},
		{ID: "F11", Title: "Expansion cost: ABCCC vs BCube", Run: F11Expansion},
		{ID: "F12", Title: "Packet-level latency and loss", Run: F12PacketSim},
		{ID: "F13", Title: "Port-count (p) trade-off ablation", Run: F13PortTradeoff},
		{ID: "F14", Title: "One-to-all broadcast", Run: F14Broadcast},
		{ID: "F15", Title: "Distributed emulation (goroutine-per-device)", Run: F15Emulation},
		{ID: "F16", Title: "Load balance of repeated flows vs permutation policy", Run: F16LoadBalance},
		{ID: "F17", Title: "Incremental deployment: crossbar-by-crossbar growth", Run: F17Incremental},
		{ID: "F18", Title: "Shuffle flow-completion times (fluid model)", Run: F18ShuffleFCT},
		{ID: "F19", Title: "Reliable transport (Reno-like): shuffle and incast", Run: F19Transport},
		{ID: "F20", Title: "Control planes: static forwarding vs DV tables vs LS flooding", Run: F20ControlPlane},
		{ID: "F21", Title: "DV reconvergence after switch failures", Run: F21Reconvergence},
		{ID: "F22", Title: "Single points of failure (articulation points)", Run: F22SinglePointsOfFailure},
		{ID: "F23", Title: "Collective operations: broadcast, gather, multicast, forest", Run: F23Collectives},
		{ID: "F24", Title: "Grow while serving: live expansion under the DV plane", Run: F24GrowWhileServing},
		{ID: "F25", Title: "Latency vs offered load (Poisson arrivals, transport)", Run: F25LatencyVsLoad},
		{ID: "F26", Title: "Recovery timeline: goodput through a switch burst and repair", Run: F26RecoveryTimeline},
		{ID: "F27", Title: "Graceful degradation: goodput vs permanent switch failures, reactive vs multipath", Run: F27GracefulDegradation},
		{ID: "F28", Title: "Sharded engine equivalence: shuffle results across shard counts", Run: F28ShardScaling},
		{ID: "F29", Title: "Serving workloads on the actor engine: RPC fan-out, incast, shuffle", Run: F29ServingWorkloads},
		{ID: "F30", Title: "Retry storms: service-graph collapse and mitigation under switch outages", Run: F30RetryStorm},
		{ID: "F31", Title: "Survivability: MTTF to partition, criticality, reliability-vs-CapEx Pareto front", Run: F31Survivability},
	}
	byID := make(map[string]Experiment, len(list))
	for _, e := range list {
		byID[e.ID] = e
	}
	return &registry{list: list, byID: byID}
})

// All returns every experiment in presentation order. The returned slice is
// a fresh copy; callers may reorder it freely.
func All() []Experiment {
	reg := experimentRegistry()
	out := make([]Experiment, len(reg.list))
	copy(out, reg.list)
	return out
}

// NumExperiments returns the number of registered experiments without
// copying the registry.
func NumExperiments() int {
	return len(experimentRegistry().list)
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	e, ok := experimentRegistry().byID[id]
	return e, ok
}

// RunAll executes every experiment, writing a titled section for each.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one experiment with its section header.
func RunOne(w io.Writer, e Experiment) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title); err != nil {
		return err
	}
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// table starts an aligned writer; callers must Flush it.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
