package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
)

// F17Incremental regenerates the finest-grained expandability result: an
// ABCCC deployed one crossbar at a time. At every intermediate size the
// network must be connected and routable (packets detour around the
// not-yet-built address space), and every growth step adds components
// without touching a single installed cable or server.
func F17Incremental(w io.Writer) error {
	cfg := core.Config{N: 4, K: 1, P: 2} // grows to 16 crossbars / 32 servers
	tw := table(w)
	fmt.Fprintln(tw, "crossbars\tservers\tswitches\tlinks\tavg route(links)\tworst\trewired\tupgraded")

	p, err := core.BuildPartial(cfg, 1)
	if err != nil {
		return err
	}
	for {
		net := p.Network()
		pairs := allPairsCapped(net, 600, rand.New(rand.NewSource(int64(p.Crossbars()))))
		avg, worst := 0.0, 0
		if len(pairs) > 0 {
			if avg, worst, err = metrics.AvgRoutedLength(p, pairs); err != nil {
				return err
			}
		}
		rewired, upgraded := "-", "-"
		if p.Crossbars() < cfg.NumVectors() {
			bigger, report, err := core.Grow(p)
			if err != nil {
				return err
			}
			rewired = fmt.Sprintf("%d", report.RewiredLinks)
			upgraded = fmt.Sprintf("%d", report.UpgradedServers)
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\t%d\t%s\t%s\n",
				p.Crossbars(), net.NumServers(), net.NumSwitches(), net.NumLinks(),
				avg, worst, rewired, upgraded)
			p = bigger
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\t%d\t%s\t%s\n",
			p.Crossbars(), net.NumServers(), net.NumSwitches(), net.NumLinks(),
			avg, worst, rewired, upgraded)
		break
	}
	return tw.Flush()
}
