package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/fattree"
	"repro/internal/flowsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// F18ShuffleFCT regenerates the job-completion view of throughput: a
// MapReduce shuffle's flow-completion times under the fluid max-min model
// (GbE line rate, 64 MB per flow). The makespan — when the last flow
// finishes and the job can proceed — is the number operators feel; it is
// the per-flow inverse of the ABT ordering in F6.
func F18ShuffleFCT(w io.Writer) error {
	builds := []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"ABCCC(4,1,3)", core.MustBuild(core.Config{N: 4, K: 1, P: 3})},
		{"ABCCC(4,2,3)", core.MustBuild(core.Config{N: 4, K: 2, P: 3})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
	const (
		lineRate  = 125e6    // bytes/sec (GbE)
		flowBytes = 64 << 20 // 64 MB shuffle chunks
	)
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tflows\tmean FCT(s)\tp99 FCT(s)\tmakespan(s)")
	for _, b := range builds {
		n := b.t.Network().NumServers()
		flows, err := traffic.Shuffle(n, n/4, n/4, rand.New(rand.NewSource(23)))
		if err != nil {
			return err
		}
		for i := range flows {
			flows[i].Bytes = flowBytes
		}
		paths, err := flowsim.RoutePaths(b.t, flows)
		if err != nil {
			return err
		}
		asg, err := flowsim.MaxMinFair(b.t.Network(), paths)
		if err != nil {
			return err
		}
		rep, err := flowsim.CompletionTimes(flows, paths, asg, lineRate)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			b.name, n, len(flows), rep.MeanSec, rep.P99Sec, rep.MakespanSec)
	}
	return tw.Flush()
}
