package experiments

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Timing records one experiment's wall clock, ready for machine-readable
// benchmark trajectories (cmd/benchsuite -json).
type Timing struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// RunAllParallel executes every experiment on a pool of `workers` goroutines
// (non-positive: GOMAXPROCS), rendering each into its own buffer, and emits
// the sections in presentation order — its output is byte-for-byte identical
// to the serial RunAll. On failure the sections preceding (and the partial
// section of) the first failing experiment are still written, as they would
// be serially.
func RunAllParallel(w io.Writer, workers int) error {
	_, err := RunAllTimed(w, workers)
	return err
}

// RunAllTimed is RunAllParallel returning per-experiment wall-clock timings
// in presentation order. Timings of experiments after a failing one are
// still measured and returned alongside the error.
func RunAllTimed(w io.Writer, workers int) ([]Timing, error) {
	reg := experimentRegistry()
	n := len(reg.list)
	bufs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	timings := make([]Timing, n)

	workers = graph.Workers(workers, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for p := 0; p < workers; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e := reg.list[i]
				start := time.Now()
				errs[i] = RunOne(&bufs[i], e)
				timings[i] = Timing{ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds()}
			}
		}()
	}
	wg.Wait()

	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return timings, err
		}
		if errs[i] != nil {
			return timings, errs[i]
		}
	}
	return timings, nil
}
