package experiments

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Instrument names registered by RunAllObserved.
const (
	// MetricCompleted and MetricFailed count finished experiments.
	MetricCompleted = "experiments_completed"
	MetricFailed    = "experiments_failed"
	// MetricExperimentNs is a histogram of per-experiment wall clock.
	MetricExperimentNs = "experiment_wall_ns"
)

// Timing records one experiment's wall clock, ready for machine-readable
// benchmark trajectories (cmd/benchsuite -json).
type Timing struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// RunAllParallel executes every experiment on a pool of `workers` goroutines
// (non-positive: GOMAXPROCS), rendering each into its own buffer, and emits
// the sections in presentation order — its output is byte-for-byte identical
// to the serial RunAll. On failure the sections preceding (and the partial
// section of) the first failing experiment are still written, as they would
// be serially.
func RunAllParallel(w io.Writer, workers int) error {
	_, err := RunAllTimed(w, workers)
	return err
}

// RunAllTimed is RunAllParallel returning per-experiment wall-clock timings
// in presentation order. Timings of experiments after a failing one are
// still measured and returned alongside the error.
func RunAllTimed(w io.Writer, workers int) ([]Timing, error) {
	return RunAllObserved(w, workers, nil, nil)
}

// RunAllObserved is RunAllTimed with live instrumentation: each experiment
// records "exp_start"/"exp_done" ("exp_fail" on error) events into tr —
// stamped with wall-clock nanoseconds since the call started, ID = registry
// index, Detail = experiment ID — and completion counters plus a wall-clock
// histogram into m (see the Metric* constants). The per-experiment seconds
// come from the same clock the Timing machinery reports, so the trace and
// the -json timings agree. Both m and tr may be nil.
func RunAllObserved(w io.Writer, workers int, m *obs.Registry, tr *obs.Tracer) ([]Timing, error) {
	reg := experimentRegistry()
	n := len(reg.list)
	bufs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	timings := make([]Timing, n)

	cCompleted := m.Counter(MetricCompleted)
	cFailed := m.Counter(MetricFailed)
	hWall := m.Histogram(MetricExperimentNs)
	began := time.Now()

	workers = graph.Workers(workers, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for p := 0; p < workers; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e := reg.list[i]
				if tr != nil {
					tr.Record(obs.Event{TimeNs: int64(time.Since(began)), Kind: "exp_start",
						ID: int64(i), Node: -1, Detail: e.ID})
				}
				start := time.Now()
				errs[i] = RunOne(&bufs[i], e)
				elapsed := time.Since(start)
				timings[i] = Timing{ID: e.ID, Title: e.Title, Seconds: elapsed.Seconds()}
				hWall.Observe(int64(elapsed))
				kind := "exp_done"
				if errs[i] != nil {
					kind = "exp_fail"
					cFailed.Inc()
				} else {
					cCompleted.Inc()
				}
				if tr != nil {
					tr.Record(obs.Event{TimeNs: int64(time.Since(began)), Kind: kind,
						ID: int64(i), Node: -1, Detail: e.ID})
				}
			}
		}()
	}
	wg.Wait()

	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return timings, err
		}
		if errs[i] != nil {
			return timings, errs[i]
		}
	}
	return timings, nil
}
