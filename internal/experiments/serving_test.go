package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestServingWorkloadsAccounted pins F29's audit column: every scenario —
// healthy, dead servers, starved rings — must conserve messages end to end.
// A single "false" cell means workload traffic leaked out of the accounting.
func TestServingWorkloadsAccounted(t *testing.T) {
	var buf bytes.Buffer
	if err := F29ServingWorkloads(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "false") {
		t.Errorf("a serving scenario broke message conservation:\n%s", out)
	}
	for _, want := range []string{"rpc fanout=4 healthy", "servers dead", "incast", "4-slot rings", "shuffle"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q scenario:\n%s", want, out)
		}
	}
}

// TestServingWorkloadsDeterministic: same seeds, byte-identical table.
func TestServingWorkloadsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := F29ServingWorkloads(&a); err != nil {
		t.Fatal(err)
	}
	if err := F29ServingWorkloads(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two F29 runs differ byte-for-byte")
	}
}
