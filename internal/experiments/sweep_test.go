package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestSweepRowsMatchesSerialOrder(t *testing.T) {
	job := func(i int) (string, error) {
		return fmt.Sprintf("row %d\n", i), nil
	}
	var serial []string
	for i := 0; i < 37; i++ {
		row, err := job(i)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, row)
	}
	got, err := sweepRows(37, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(serial) {
		t.Fatalf("got %d rows, want %d", len(got), len(serial))
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], serial[i])
		}
	}
}

func TestSweepRowsStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	rows, err := sweepRows(10, func(i int) (string, error) {
		if i == 4 || i == 7 {
			return "", fmt.Errorf("job %d: %w", i, boom)
		}
		return fmt.Sprintf("row %d\n", i), nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if err.Error() != "job 4: boom" {
		t.Errorf("err = %v, want the first failing index", err)
	}
	if len(rows) != 4 {
		t.Errorf("got %d rows before the failure, want 4", len(rows))
	}
}

func TestSweepRowsEmpty(t *testing.T) {
	rows, err := sweepRows(0, func(int) (string, error) { return "", errors.New("never") })
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty sweep = (%v, %v)", rows, err)
	}
}

// TestSweepExperimentsDeterministic re-renders the parallel-sweep
// experiments and requires byte-identical output — the pool must not leak
// scheduling order into the figures.
func TestSweepExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"F12", "F19", "F25"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var a, b bytes.Buffer
		if err := e.Run(&a); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Run(&b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: parallel sweep output differs between runs:\n%s\n---\n%s", id, a.String(), b.String())
		}
	}
}
