package experiments

import (
	"fmt"
	"io"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fattree"
)

// F11Expansion regenerates the headline expandability result: growing each
// structure one order (k -> k+1), how many components are added, how many
// existing cables move, how many existing servers need hardware changes, and
// what the expansion costs under the price model. ABCCC touches nothing
// that already exists; BCube must open every server for an extra NIC.
func F11Expansion(w io.Writer) error {
	model := cost.Default()
	tw := table(w)
	fmt.Fprintln(tw, "expansion\tservers\tnew srv\tnew sw\tnew links\trewired\tupgraded srv\treplaced sw\ttouched\texpansion $/new srv")

	// ABCCC chains at two port counts.
	for _, p := range []int{2, 3} {
		tp := core.MustBuild(core.Config{N: 6, K: 0, P: p})
		for tp.Config().K < 2 {
			bigger, rep, err := core.Expand(tp)
			if err != nil {
				return err
			}
			dollars := model.ExpansionCost(rep, bigger.Config().N, bigger.Config().P)
			fmt.Fprintf(tw, "%s->%s\t%d->%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%.0f\n",
				rep.Before, rep.After, rep.ServersBefore, rep.ServersAfter,
				rep.NewServers, rep.NewSwitches, rep.NewLinks,
				rep.RewiredLinks, rep.UpgradedServers, rep.ReplacedSwitches,
				100*rep.TouchedFraction(), dollars/float64(rep.NewServers))
			tp = bigger
		}
	}

	// BCube chain.
	bt := bcube.MustBuild(bcube.Config{N: 6, K: 0})
	for bt.Config().K < 2 {
		bigger, rep, err := bcube.Expand(bt)
		if err != nil {
			return err
		}
		dollars := model.ExpansionCost(rep, bigger.Config().N, bigger.Config().K+1)
		fmt.Fprintf(tw, "%s->%s\t%d->%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%.0f\n",
			rep.Before, rep.After, rep.ServersBefore, rep.ServersAfter,
			rep.NewServers, rep.NewSwitches, rep.NewLinks,
			rep.RewiredLinks, rep.UpgradedServers, rep.ReplacedSwitches,
			100*rep.TouchedFraction(), dollars/float64(rep.NewServers))
		bt = bigger
	}

	// Fat-tree contrast: growth means a bigger radix everywhere.
	ft := fattree.MustBuild(fattree.Config{K: 4})
	for ft.Config().K < 8 {
		bigger, rep, err := fattree.Expand(ft)
		if err != nil {
			return err
		}
		// Replaced switches are scrap (no resale modeled); their successors
		// are part of NewSwitches and priced by ExpansionCost.
		dollars := model.ExpansionCost(rep, bigger.Config().K, 1)
		fmt.Fprintf(tw, "%s->%s\t%d->%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%.0f\n",
			rep.Before, rep.After, rep.ServersBefore, rep.ServersAfter,
			rep.NewServers, rep.NewSwitches, rep.NewLinks,
			rep.RewiredLinks, rep.UpgradedServers, rep.ReplacedSwitches,
			100*rep.TouchedFraction(), dollars/float64(rep.NewServers))
		ft = bigger
	}
	return tw.Flush()
}
