package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardScalingAllIdentical pins the figure's whole point: every row of
// every block reports results identical to shards=1. A single "NO" cell
// means the sharded engine's equivalence contract broke.
func TestShardScalingAllIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("shard sweep runs are slow; skipped with -short")
	}
	var buf bytes.Buffer
	if err := F28ShardScaling(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NO") {
		t.Errorf("a shard count diverged from serial:\n%s", out)
	}
	for _, want := range []string{"packet", "transport", "burst", "burst+mp"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q block:\n%s", want, out)
		}
	}
	rows := strings.Count(out, "yes")
	if want := 4 * len(scaleShardCounts); rows != want {
		t.Errorf("%d identical rows, want %d", rows, want)
	}
}

// TestShardScalingDeterministic: same seed, byte-identical figure.
func TestShardScalingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("shard sweep runs are slow; skipped with -short")
	}
	var a, b bytes.Buffer
	if err := F28ShardScaling(&a); err != nil {
		t.Fatal(err)
	}
	if err := F28ShardScaling(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two F28 runs differ byte-for-byte")
	}
}
