package experiments

import (
	"fmt"
	"io"

	"repro/internal/bccc"
	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/dcell"
	"repro/internal/fattree"
	"repro/internal/topology"
)

// T3WiringComplexity regenerates the deployment-burden table: cables,
// cables per server, total switch ports and NIC ports per server — the
// columns an operator prices labor and sparing from. Server-centric
// structures trade switch ports for NIC ports and server-side cabling.
func T3WiringComplexity(w io.Writer) error {
	rows := []topology.Properties{
		core.Config{N: 16, K: 2, P: 2}.Properties(),
		core.Config{N: 16, K: 2, P: 3}.Properties(),
		core.Config{N: 16, K: 2, P: 4}.Properties(),
		bccc.Config{N: 16, K: 2}.Properties(),
		bcube.Config{N: 16, K: 2}.Properties(),
		dcell.Config{N: 16, K: 1}.Properties(),
		fattree.Config{K: 24}.Properties(),
	}
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tcables\tcables/srv\tswitch ports\tports/srv\tNICs/srv")
	for _, p := range rows {
		switchPorts := p.Switches * p.SwitchPorts
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%d\t%.2f\t%d\n",
			p.Name, p.Servers, p.Links,
			float64(p.Links)/float64(p.Servers),
			switchPorts, float64(switchPorts)/float64(p.Servers),
			p.ServerPorts)
	}
	return tw.Flush()
}
