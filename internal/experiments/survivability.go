package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dcell"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/hypercube"
	"repro/internal/obs"
	"repro/internal/surv"
	"repro/internal/topology"
)

// Survivability scenario parameters. Wear-out lifetimes are the 2015-era
// hardware-reliability folklore numbers — switches fail around 5 years,
// cables around 10 — and the 30-year horizon comfortably covers every
// structure's first partition, so no MTTF sample is censored at full scale.
const (
	survSeed           = 31
	secondsPerYear     = 31536000.0
	survSwitchMTBFSec  = 5 * secondsPerYear
	survLinkMTBFSec    = 10 * secondsPerYear
	survHorizonSec     = 30 * secondsPerYear
	survCurveSampleSec = 5 * secondsPerYear
	// survFullTrials is the MTTF sample size per family; survSmokeScale
	// divides it (and the curve trials) for the CI smoke run.
	survFullTrials  = 24
	survCurveTrials = 8
	survSmokeScale  = 4
)

// survWearClasses is the shared wear-out model. Families without switches
// (the hypercube) simply have an empty pool for the first class.
func survWearClasses() []failure.ClassRate {
	return []failure.ClassRate{
		{Kind: failure.Switches, MTBFSec: survSwitchMTBFSec},
		{Kind: failure.Links, MTBFSec: survLinkMTBFSec},
	}
}

// survFamily is one comparison-structure row: MTTF trials plus the CapEx
// side of the Pareto plot.
type survFamily struct {
	t     topology.Topology
	stats *surv.Stats
}

// survFamilies builds the five compared structures at matched small scale.
func survFamilies() []survFamily {
	return []survFamily{
		{t: core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{t: bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{t: fattree.MustBuild(fattree.Config{K: 4})},
		{t: dcell.MustBuild(dcell.Config{N: 4, K: 1})},
		{t: hypercube.MustBuild(hypercube.Config{D: 5})},
	}
}

// fmtYears renders a seconds quantity in years, "-" for NaN (no samples).
func fmtYears(sec float64) string {
	if math.IsNaN(sec) {
		return "-"
	}
	return fmt.Sprintf("%.2f", sec/secondsPerYear)
}

// f31 renders the whole figure at the given scale divisor (1 = full).
func f31(w io.Writer, scale int) error {
	trials := survFullTrials / scale
	curveTrials := survCurveTrials / scale
	if trials < 2 {
		trials = 2
	}
	if curveTrials < 2 {
		curveTrials = 2
	}

	// Section 1: MTTF-to-partition per family, wear-out, StopAtPartition.
	fams := survFamilies()
	for i := range fams {
		st, err := surv.RunTrials(fams[i].t.Network(), surv.TrialConfig{
			Classes:         survWearClasses(),
			HorizonSec:      survHorizonSec,
			Trials:          trials,
			Seed:            survSeed,
			StopAtPartition: true,
		})
		if err != nil {
			return err
		}
		fams[i].stats = st
	}
	fmt.Fprintf(w, "wear-out lifetimes: switches Exp(%gy), links Exp(%gy); %d trials, %gy horizon, 95%% CI\n",
		survSwitchMTBFSec/secondsPerYear, survLinkMTBFSec/secondsPerYear, trials,
		survHorizonSec/secondsPerYear)
	tw := table(w)
	fmt.Fprintln(tw, "structure\tservers\tswitches\tlinks\tpartitioned\tMTTF(y)\tCI lo\tCI hi")
	for _, f := range fams {
		net := f.t.Network()
		m := f.stats.MTTF
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d/%d\t%s\t%s\t%s\n",
			net.Name(), net.NumServers(), net.NumSwitches(), net.NumLinks(),
			m.N, m.N+m.Censored, fmtYears(m.Mean), fmtYears(m.Lo), fmtYears(m.Hi))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Section 2: reliability vs CapEx Pareto front. A structure is on the
	// front iff no other is at once no more expensive and no less reliable
	// (strictly better in one coordinate).
	model := cost.Default()
	fmt.Fprintln(w, "\nreliability vs interconnect CapEx (per server, 2015-era prices):")
	tw = table(w)
	fmt.Fprintln(tw, "structure\t$/server\tMTTF(y)\tpareto")
	for _, f := range fams {
		props := f.t.Properties()
		perServer := model.CapEx(props).PerServer(props.Servers)
		mttf := f.stats.MTTF.Mean
		verdict := "front"
		for _, g := range fams {
			if g.t == f.t {
				continue
			}
			gp := g.t.Properties()
			gCost := model.CapEx(gp).PerServer(gp.Servers)
			gMTTF := g.stats.MTTF.Mean
			if math.IsNaN(mttf) {
				mttf = math.Inf(-1)
			}
			if math.IsNaN(gMTTF) {
				gMTTF = math.Inf(-1)
			}
			if gCost <= perServer && gMTTF >= mttf && (gCost < perServer || gMTTF > mttf) {
				verdict = "dominated by " + gp.Name
				break
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%s\n", props.Name, perServer, fmtYears(f.stats.MTTF.Mean), verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Section 3: mean survivability-vs-time curves, full-horizon wear-out
	// replays (no early stop), ABCCC vs BCube at matched size.
	curveNets := []*topology.Network{fams[0].t.Network(), fams[1].t.Network()}
	curves := make([]*surv.Stats, len(curveNets))
	for i, net := range curveNets {
		st, err := surv.RunTrials(net, surv.TrialConfig{
			Classes:        survWearClasses(),
			HorizonSec:     survHorizonSec,
			Trials:         curveTrials,
			Seed:           survSeed + 1,
			SampleEverySec: survCurveSampleSec,
			Thresholds:     []float64{0.99},
		})
		if err != nil {
			return err
		}
		curves[i] = st
	}
	fmt.Fprintf(w, "\nmean survivability vs time (%d full-horizon trials, reachable server-pair fraction / largest component):\n", curveTrials)
	tw = table(w)
	fmt.Fprintf(tw, "t(y)\t%s reach\tlargest\t%s reach\tlargest\n",
		curveNets[0].Name(), curveNets[1].Name())
	for j := range curves[0].MeanCurve {
		a, b := curves[0].MeanCurve[j], curves[1].MeanCurve[j]
		fmt.Fprintf(tw, "%.0f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			a.TimeSec/secondsPerYear, a.ReachableFrac, a.LargestFrac, b.ReachableFrac, b.LargestFrac)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for i, st := range curves {
		fmt.Fprintf(w, "mean first time below 99%% reachability: %s = %sy (%d/%d trials crossed)\n",
			curveNets[i].Name(), fmtYears(st.Below[0].Mean), st.Below[0].N, st.Below[0].N+st.Below[0].Censored)
	}

	// Section 4: component criticality. The pristine ABCCC is 2-connected —
	// zero critical components — so the ranking that matters is the degraded
	// snapshot: 10% of links already down, survivors ranked by the server
	// pairs their loss would sever.
	net := fams[0].t.Network()
	pristine, err := surv.Criticality(net, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncriticality on %s: pristine %d critical components (graph: %d articulation points, %d bridges)\n",
		net.Name(), pristine.CriticalServers+pristine.CriticalSwitches+pristine.CriticalLinks,
		pristine.GraphAPs, pristine.GraphBridges)
	view := failure.Inject(net, failure.Links, 0.10, rand.New(rand.NewSource(survSeed)))
	degraded, err := surv.Criticality(net, view)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after 10%% link loss: %d/%d server pairs connected; %d critical switches, %d critical servers, %d critical links\n",
		degraded.ConnectedPairs, pristine.ConnectedPairs,
		degraded.CriticalSwitches, degraded.CriticalServers, degraded.CriticalLinks)
	tw = table(w)
	fmt.Fprintln(tw, "rank\tcomponent\tpairs lost\tfraction")
	rank := 1
	for _, it := range degraded.Nodes {
		if rank > 5 {
			break
		}
		fmt.Fprintf(tw, "%d\tnode %s\t%d\t%.4f\n", rank, it.Label, it.PairsLost, it.Frac)
		rank++
	}
	for _, it := range degraded.Links {
		if rank > 10 {
			break
		}
		fmt.Fprintf(tw, "%d\tlink %s\t%d\t%.4f\n", rank, it.Label, it.PairsLost, it.Frac)
		rank++
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Section 5: the 100k-server scale point — one multi-year wear-out
	// replay of ABCCC(8,4,3) to its first partition. At this scale the
	// statistics flip: with ~10^5 two-port servers the first isolation
	// arrives within days, which is the paper-level argument for repair
	// (churn) rather than wear-out operation.
	big := core.MustBuild(core.Config{N: 8, K: 4, P: 3})
	bigNet := big.Network()
	rng := rand.New(rand.NewSource(survSeed))
	plan, err := failure.Wearout(bigNet, survWearClasses(), survHorizonSec, rng)
	if err != nil {
		return err
	}
	res, err := surv.Lifetime(bigNet, plan, surv.Config{HorizonSec: survHorizonSec, StopAtPartition: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nscale: %s — %d servers, %d switches, %d links, %d scheduled deaths over %gy\n",
		bigNet.Name(), bigNet.NumServers(), bigNet.NumSwitches(), bigNet.NumLinks(),
		len(plan.Events), survHorizonSec/secondsPerYear)
	fmt.Fprintf(w, "first partition after %d deaths at %.1f days; largest component still %.6f of servers\n",
		res.Events, res.FirstPartitionSec/86400, res.FinalLargestFrac)
	return nil
}

// F31Survivability regenerates the survivability figure: per-family MTTF to
// first partition under component wear-out (with Student-t confidence
// intervals), the reliability-vs-CapEx Pareto front across five structures,
// mean survivability-vs-time curves, component-criticality rankings on a
// degraded snapshot, and a 100k-server scale point. Everything is replayed
// at connectivity level by the incremental tracker in internal/surv, so the
// whole figure — including the 98,304-server trial — regenerates in seconds.
func F31Survivability(w io.Writer) error {
	return f31(w, 1)
}

// WriteSurvRun executes one full-horizon wear-out lifetime replay on
// ABCCC(4,1,2) with the series layer armed and writes the run record JSONL
// to w. The record carries only surv_* tracks — gauge-style series points
// with no metrics registry behind them — so cmd/obsreport's generic
// track-rendering fallback is what its committed fixture exercises.
func WriteSurvRun(w io.Writer) error {
	tp := core.MustBuild(core.Config{N: 4, K: 1, P: 2})
	net := tp.Network()
	rng := rand.New(rand.NewSource(survSeed))
	plan, err := failure.Wearout(net, survWearClasses(), survHorizonSec, rng)
	if err != nil {
		return err
	}
	windowNs := int64(secondsPerYear * 1e9) // 1-year windows
	series := obs.NewSeries(windowNs)
	if _, err := surv.Lifetime(net, plan, surv.Config{
		HorizonSec:     survHorizonSec,
		SampleEverySec: secondsPerYear,
		Series:         series,
	}); err != nil {
		return err
	}
	meta := obs.RunMeta{
		Label:          "F31/ABCCC(4,1,2)",
		Engine:         "surv",
		Topology:       net.Name(),
		Workload:       fmt.Sprintf("wear-out lifetime, switches 5y links 10y, seed %d", survSeed),
		SeriesWindowNs: windowNs,
		Series:         true,
	}
	return obs.WriteRun(w, meta, nil, series, nil)
}
