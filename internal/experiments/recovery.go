package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/bcube"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fattree"
	"repro/internal/packetsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Recovery-timeline scenario parameters: a quarter of the switches fail
// together at 2 ms and all come back at 6 ms, while a half-shuffle of
// transport flows is in progress.
const (
	recoveryBurstAtSec = 2e-3
	recoveryRepairSec  = 6e-3
	recoveryFlowBytes  = 256 << 10
	recoverySeed       = 26
)

// recoverySubjects are the structures the recovery figure compares. All three
// implement topology.FaultRouter, so timed-out flows recompile routes around
// the dead switches.
func recoverySubjects() []struct {
	name string
	t    topology.Topology
} {
	return []struct {
		name string
		t    topology.Topology
	}{
		{"ABCCC(4,1,2)", core.MustBuild(core.Config{N: 4, K: 1, P: 2})},
		{"BCube(4,1)", bcube.MustBuild(bcube.Config{N: 4, K: 1})},
		{"FatTree(4)", fattree.MustBuild(fattree.Config{K: 4})},
	}
}

// runRecovery executes the scenario on one structure and returns the result
// together with its per-epoch timeline (pre-fault, outage, post-repair).
func runRecovery(t topology.Topology) (packetsim.TransportResult, *packetsim.Timeline, error) {
	net := t.Network()
	n := net.NumServers()
	rng := rand.New(rand.NewSource(recoverySeed))
	flows, err := traffic.Shuffle(n, n/2, n/2, rng)
	if err != nil {
		return packetsim.TransportResult{}, nil, err
	}
	for i := range flows {
		flows[i].Bytes = recoveryFlowBytes
	}
	nKill := len(net.Switches()) / 4
	if nKill < 1 {
		nKill = 1
	}
	plan, err := failure.Burst(net, failure.Switches, nKill, recoveryBurstAtSec, recoveryRepairSec, rng)
	if err != nil {
		return packetsim.TransportResult{}, nil, err
	}
	cfg := packetsim.DefaultTransport()
	cfg.Faults = plan
	cfg.Timeline = &packetsim.Timeline{}
	res, err := packetsim.RunTransport(t, flows, cfg)
	return res, cfg.Timeline, err
}

// F26RecoveryTimeline regenerates the recovery figure: goodput and
// availability per fault epoch as a switch burst hits mid-run and is later
// repaired. The outage epoch shows the goodput dip and the fault/stale drop
// burst; the post-repair epoch shows the recovery, with the reroute count
// separating structures that route around the holes from ones that just wait.
func F26RecoveryTimeline(w io.Writer) error {
	subjects := recoverySubjects()
	type out struct {
		res packetsim.TransportResult
		tl  *packetsim.Timeline
	}
	outs := make([]out, len(subjects))
	// The pool runs the simulations; formatting stays serial because the
	// rows-per-subject count varies with each timeline's epoch count.
	if _, err := sweepRows(len(subjects), func(i int) (string, error) {
		res, tl, err := runRecovery(subjects[i].t)
		outs[i] = out{res, tl}
		return "", err
	}); err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintln(tw, "structure\tepoch\twindow(ms)\tgoodput(Gb/s)\tavail\tdrops fault/stale/tail\treroutes\trtx\tflows done")
	labels := []string{"pre-fault", "outage", "post-repair"}
	for i, sub := range subjects {
		for j, e := range outs[i].tl.Epochs {
			label := fmt.Sprintf("epoch %d", j)
			if j < len(labels) {
				label = labels[j]
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f-%.2f\t%.3f\t%.4f\t%d/%d/%d\t%d\t%d\t%d\n",
				sub.name, label, e.StartSec*1e3, e.EndSec*1e3,
				e.GoodputBps()*8/1e9, e.Availability(),
				e.DroppedFault, e.DroppedStale, e.DroppedTail,
				e.Reroutes, e.Retransmits, e.CompletedFlows)
		}
		res := outs[i].res
		fmt.Fprintf(tw, "%s\ttotal\t0.00-%.2f\t%.3f\t\t%d/%d/-\t%d\t%d\t%d (%d failed)\n",
			sub.name, res.MakespanSec*1e3, res.GoodputBps*8/1e9,
			res.DroppedFault, res.DroppedStale, res.Reroutes, res.Retransmits,
			res.CompletedFlows, res.FailedFlows)
	}
	return tw.Flush()
}
